(* The point of the paper's method: it handles ANY memoryless
   nonlinearity. Here we analyse an asymmetric, piecewise device that no
   closed-form treatment covers - a soft negative resistance with a
   one-sided clipping diode - and validate against time-domain
   simulation.

   Run with:  dune exec examples/custom_nonlinearity.exe *)

let () =
  (* a van der Pol-ish cell plus a clipping diode on positive swings *)
  let f v =
    let core = (-.2e-3 *. v) +. (0.6e-3 *. v *. v *. v) in
    let clip = if v > 0.8 then 5e-3 *. (v -. 0.8) ** 2.0 else 0.0 in
    core +. clip
  in
  let nl = Shil.Nonlinearity.make ~name:"asymmetric_custom" f in
  let tank =
    let wc = 2.0 *. Float.pi *. 2e6 in
    Shil.Tank.make ~r:1.2e3 ~l:(150.0 /. wc) ~c:(1.0 /. (150.0 *. wc))
  in
  (* terminal plot of the nonlinearity *)
  let vs, is = Shil.Nonlinearity.sample nl ~v_min:(-1.5) ~v_max:1.5 ~n:200 in
  Plotkit.Ascii_render.print ~rows:14
    (Plotkit.Fig.add_line
       (Plotkit.Fig.create ~title:"custom i = f(v) (note the asymmetric clip)"
          ~xlabel:"v (V)" ())
       ~xs:vs ~ys:is);
  (* full SHIL analysis at n = 2 (divide-by-2, the classic ILFD use) *)
  let report = Shil.Analysis.run { nl; tank } ~n:2 ~vi:0.06 in
  Format.printf "@.%a@.@." Shil.Analysis.pp report;
  (* compare divide-by-2 against divide-by-3 on the same cell *)
  let report3 = Shil.Analysis.run { nl; tank } ~n:3 ~vi:0.06 in
  Format.printf "n = 2 lock range: %.6g Hz@." report.lock_range.delta_f_inj;
  Format.printf "n = 3 lock range: %.6g Hz@." report3.lock_range.delta_f_inj;
  (* time-domain spot check. Caveat (an honest limit of the paper's
     filtering assumption): an ASYMMETRIC f generates its own second
     harmonic, which returns through H(j 2w) as extra self-injection and
     shifts the real n = 2 band slightly; probe inside the lower half of
     the predicted band where both effects agree. See EXPERIMENTS.md. *)
  let lr = report.lock_range in
  let f_inj = lr.f_inj_low +. (0.25 *. lr.delta_f_inj) in
  let locked =
    Shil.Simulate.locked ~cycles:600.0 nl ~tank
      ~injection:{ vi = 0.06; n = 2; f_inj; phase = 0.0 }
  in
  Format.printf "time-domain check (n = 2, 25%% into the band): %s@."
    (if locked then "locked" else "NOT locked")
