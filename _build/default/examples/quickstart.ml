(* Quickstart: analyse sub-harmonic injection locking of a negative-tanh
   LC oscillator in ~20 lines.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. describe the oscillator: a memoryless negative-resistance
     nonlinearity i = f(v) and a parallel RLC tank *)
  let nl = Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3 in
  let tank =
    (* 1 MHz centre, Q = 10 *)
    let wc = 2.0 *. Float.pi *. 1e6 in
    Shil.Tank.make ~r:1000.0 ~l:(100.0 /. wc) ~c:(1.0 /. (100.0 *. wc))
  in
  (* 2. one call: natural oscillation, lock points, lock range for
     3rd-sub-harmonic injection with |Vi| = 0.05 V *)
  let report = Shil.Analysis.run { nl; tank } ~n:3 ~vi:0.05 in
  Format.printf "%a@." Shil.Analysis.pp report;
  (* 3. sanity-check the prediction with the built-in time-domain
     simulator: inject at the centre of the predicted band and watch the
     oscillator lock *)
  let f_inj = 0.5 *. (report.lock_range.f_inj_low +. report.lock_range.f_inj_high) in
  let locked =
    Shil.Simulate.locked nl ~tank ~injection:{ vi = 0.05; n = 3; f_inj; phase = 0.0 }
  in
  Format.printf "time-domain check at %.6g Hz: %s@." f_inj
    (if locked then "locked (as predicted)" else "NOT locked");
  (* ... and just outside the band, where it must not lock *)
  let f_out = report.lock_range.f_inj_high +. report.lock_range.delta_f_inj in
  let locked_out =
    Shil.Simulate.locked nl ~tank ~injection:{ vi = 0.05; n = 3; f_inj = f_out; phase = 0.0 }
  in
  Format.printf "time-domain check at %.6g Hz: %s@." f_out
    (if locked_out then "locked (unexpected!)" else "unlocked (as predicted)")
