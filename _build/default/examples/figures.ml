(* Regenerates every SVG figure of the reproduction into out/figures/
   without the slow transient searches.

   Run with:  dune exec examples/figures.exe [output-dir] *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "out/figures" in
  let show out =
    let paths = Experiments.Output.write_figures ~dir out in
    List.iter (Printf.printf "wrote %s\n%!") paths
  in
  let ts = Experiments.Tanh_experiments.default_setup in
  show (Experiments.Tanh_experiments.fig3_natural ~validate:false ts);
  show (Experiments.Tanh_experiments.fig6_tank ts);
  show (Experiments.Tanh_experiments.fig7_solutions ts);
  show (Experiments.Tanh_experiments.fig9_states ts);
  show (Experiments.Tanh_experiments.fig10_lock_range ts);
  let dp = Experiments.Osc_experiments.diff_pair () in
  show (Experiments.Osc_experiments.fig_fv dp);
  show (Experiments.Osc_experiments.fig_natural_prediction dp);
  show (Experiments.Osc_experiments.fig_transient ~cycles:120.0 dp);
  show (Experiments.Osc_experiments.fig_lock_range_curves dp);
  let td = Experiments.Osc_experiments.tunnel () in
  show (Experiments.Osc_experiments.fig_fv td);
  show (Experiments.Osc_experiments.fig_natural_prediction td);
  show (Experiments.Osc_experiments.fig_transient ~cycles:120.0 td);
  show (Experiments.Osc_experiments.fig_lock_range_curves td)
