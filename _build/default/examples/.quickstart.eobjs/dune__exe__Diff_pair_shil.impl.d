examples/diff_pair_shil.ml: Array Circuits Format Plotkit Shil Spice Waveform
