examples/custom_nonlinearity.ml: Float Format Plotkit Shil
