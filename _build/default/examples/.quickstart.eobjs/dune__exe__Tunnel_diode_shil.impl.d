examples/tunnel_diode_shil.ml: Circuits Format List Shil
