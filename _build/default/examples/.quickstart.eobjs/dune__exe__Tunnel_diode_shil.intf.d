examples/tunnel_diode_shil.mli:
