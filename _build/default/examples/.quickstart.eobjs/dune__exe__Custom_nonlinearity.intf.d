examples/custom_nonlinearity.mli:
