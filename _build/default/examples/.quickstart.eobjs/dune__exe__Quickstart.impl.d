examples/quickstart.ml: Float Format Shil
