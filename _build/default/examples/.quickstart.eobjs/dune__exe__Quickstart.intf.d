examples/quickstart.mli:
