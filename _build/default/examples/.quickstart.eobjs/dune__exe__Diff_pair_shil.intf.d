examples/diff_pair_shil.mli:
