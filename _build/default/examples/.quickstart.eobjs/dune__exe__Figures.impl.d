examples/figures.ml: Array Experiments List Printf Sys
