examples/figures.mli:
