(* The paper's §IV-B flow on the tunnel-diode UHF oscillator: bias the
   diode into its negative-resistance region, extract the shifted f(v),
   predict natural oscillation and the 3rd-SHIL lock range, and show the
   n = 3 lock states.

   Run with:  dune exec examples/tunnel_diode_shil.exe *)

let () =
  let params = Circuits.Tunnel_osc.default in
  Format.printf "tunnel diode: bias %.3g V (middle of the negative-resistance region)@."
    params.vbias;
  let nl = Circuits.Tunnel_osc.nonlinearity params in
  let tank = Circuits.Tunnel_osc.tank params in
  Format.printf "  f'(0) = %.4g S after the bias shift@."
    (Shil.Nonlinearity.deriv nl 0.0);
  let report = Shil.Analysis.run { nl; tank } ~n:3 ~vi:0.03 in
  Format.printf "@.%a@.@." Shil.Analysis.pp report;
  (* n states: each stable lock corresponds to 3 oscillator phases *)
  (match
     List.find_opt
       (fun (p : Shil.Solutions.point) -> p.stable)
       report.locks_at_center
   with
  | Some p ->
    Format.printf "the stable lock (phi = %.4f, A = %.4g V) has %d states:@."
      p.phi p.a 3;
    List.iter
      (fun (psi, a) ->
        Format.printf "  oscillator phase %.4f rad (A = %.4g V)@." psi a)
      (Shil.Solutions.n_states p ~n:3)
  | None -> Format.printf "no stable lock at the centre frequency@.");
  (* reduced-model time-domain validation of the band edges (fast) *)
  let lr = report.lock_range in
  Format.printf "@.validating the predicted band [%.8g, %.8g] Hz in the time domain...@."
    lr.f_inj_low lr.f_inj_high;
  let probe name f_inj =
    let locked =
      Shil.Simulate.locked ~cycles:600.0 nl ~tank
        ~injection:{ vi = 0.03; n = 3; f_inj; phase = 0.0 }
    in
    Format.printf "  %-14s f_inj = %.8g Hz: %s@." name f_inj
      (if locked then "locked" else "unlocked")
  in
  probe "centre" (0.5 *. (lr.f_inj_low +. lr.f_inj_high));
  probe "inside low" (lr.f_inj_low +. (0.15 *. lr.delta_f_inj));
  probe "inside high" (lr.f_inj_high -. (0.15 *. lr.delta_f_inj));
  probe "outside low" (lr.f_inj_low -. (0.5 *. lr.delta_f_inj));
  probe "outside high" (lr.f_inj_high +. (0.5 *. lr.delta_f_inj))
