(* The paper's §IV-A flow on the cross-coupled BJT differential pair:

   1. extract i = f(v) from the device-level netlist with a DC sweep
      (Fig. 11b / 12a),
   2. predict the natural oscillation amplitude (Fig. 12b),
   3. predict the 3rd-sub-harmonic lock range at |Vi| = 30 mV (Fig. 14),
   4. confirm a lock with one device-level transient.

   Run with:  dune exec examples/diff_pair_shil.exe *)

let () =
  let params = Circuits.Diff_pair.default in
  Format.printf "extracting f(v) from the diff-pair netlist (DC sweep)...@.";
  let vs, is = Circuits.Diff_pair.extraction_fv params in
  let nl = Shil.Nonlinearity.of_table ~name:"diff_pair" ~vs ~is () in
  let tank = Circuits.Diff_pair.tank params in
  Format.printf "  %d points, f'(0) = %.4g S (negative resistance)@."
    (Array.length vs)
    (Shil.Nonlinearity.deriv nl 0.0);
  (* quick look at the curve in the terminal *)
  let fig =
    Plotkit.Fig.add_line
      (Plotkit.Fig.create ~title:"diff-pair i = f(v)" ~xlabel:"v (V)" ())
      ~xs:vs ~ys:is
  in
  Plotkit.Ascii_render.print ~rows:16 fig;
  (* describing-function analysis *)
  let report = Shil.Analysis.run { nl; tank } ~n:3 ~vi:0.03 in
  Format.printf "@.%a@.@." Shil.Analysis.pp report;
  (* device-level confirmation: transient with injection at band centre *)
  let f_inj = 0.5 *. (report.lock_range.f_inj_low +. report.lock_range.f_inj_high) in
  Format.printf "running a device-level transient at f_inj = %.6g Hz...@." f_inj;
  let circuit =
    Circuits.Diff_pair.circuit ~injection:{ vi = 0.03; n = 3; f_inj; phase = 0.0 }
      params
  in
  let fc = Shil.Tank.f_c tank in
  let opts =
    Spice.Transient.default_options
      ~dt:(1.0 /. (fc *. 180.0))
      ~t_stop:(500.0 /. fc)
  in
  let res = Spice.Transient.run circuit ~probes:[ Circuits.Diff_pair.osc_probe ] opts in
  let s =
    Waveform.Signal.make ~times:res.times
      ~values:(Spice.Transient.signal res Circuits.Diff_pair.osc_probe)
  in
  let s = Waveform.Signal.shift_values s (-.Waveform.Signal.mean s) in
  let v = Waveform.Lock.analyze s ~f_target:(f_inj /. 3.0) in
  Format.printf
    "  locked: %b; oscillator frequency %.8g Hz (= f_inj / 3 = %.8g); A = %.4g V@."
    v.locked v.freq_measured (f_inj /. 3.0) v.amplitude
