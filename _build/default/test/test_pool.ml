(* Tests for the multicore execution layer (Numerics.Pool) and the shared
   trig-table cache it feeds. *)

module Pool = Numerics.Pool
module Trig_tables = Numerics.Trig_tables

(* Reference sequential implementations to compare against. *)
let seq_map f xs = Array.map f xs

let heavy_f x =
  (* a pure float kernel with enough rounding structure that any ordering
     or chunking bug shows up as a bit difference *)
  let acc = ref x in
  for k = 1 to 50 do
    acc := !acc +. (sin (!acc *. float_of_int k) /. float_of_int (k * k))
  done;
  !acc

let with_pool size f =
  let p = Pool.create ~size in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_map_deterministic () =
  let xs = Array.init 1000 (fun k -> 0.01 *. float_of_int k) in
  let expect = seq_map heavy_f xs in
  with_pool 4 (fun p ->
      let got = Pool.parallel_map_array ~pool:p heavy_f xs in
      Alcotest.(check bool) "bit-identical to Array.map" true (expect = got);
      (* odd chunk size exercising a ragged tail *)
      let got = Pool.parallel_map_array ~pool:p ~chunk:7 heavy_f xs in
      Alcotest.(check bool) "bit-identical with chunk=7" true (expect = got))

let test_for_covers_all_indices () =
  let n = 3571 in
  let hits = Array.make n 0 in
  with_pool 4 (fun p ->
      Pool.parallel_for ~pool:p ~chunk:13 ~n (fun i -> hits.(i) <- hits.(i) + 1));
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (( = ) 1) hits)

let test_reduce_matches_sequential () =
  let n = 512 in
  let map i = heavy_f (0.02 *. float_of_int i) in
  let expect = ref 0.0 in
  for i = 0 to n - 1 do
    expect := !expect +. map i
  done;
  with_pool 3 (fun p ->
      let got =
        Pool.parallel_reduce ~pool:p ~n ~init:0.0 ~map ~fold:( +. ) ()
      in
      (* fold runs in index order, so this is equality, not approximation *)
      Alcotest.(check bool) "reduce bit-identical" true (!expect = got))

exception Boom of int

let test_exception_propagation () =
  with_pool 4 (fun p ->
      let raised =
        try
          Pool.parallel_for ~pool:p ~chunk:5 ~n:200 (fun i ->
              if i >= 40 then raise (Boom i));
          None
        with Boom i -> Some i
      in
      (match raised with
      | Some i ->
        (* the lowest failing chunk wins: chunk 8 = indices 40..44 *)
        Alcotest.(check bool) "exception from lowest failing chunk" true
          (i >= 40 && i < 45)
      | None -> Alcotest.fail "exception was swallowed");
      (* the pool must still be usable after a failed submission *)
      let xs = Array.init 64 float_of_int in
      let got = Pool.parallel_map_array ~pool:p (fun x -> x *. 2.0) xs in
      Alcotest.(check bool) "pool survives exceptions" true
        (got = Array.map (fun x -> x *. 2.0) xs))

let test_nested_calls_fall_back () =
  with_pool 4 (fun p ->
      let inner_flags =
        Pool.parallel_map_array ~pool:p ~chunk:1
          (fun _ ->
            (* inside a task: nested parallel calls must degrade to
               sequential, not deadlock or spawn into the same pool *)
            let was_worker = Pool.in_worker () in
            let inner =
              Pool.parallel_map_array ~pool:p (fun x -> x + 1)
                (Array.init 100 Fun.id)
            in
            was_worker && inner = Array.init 100 (fun i -> i + 1))
          (Array.init 8 Fun.id)
      in
      Alcotest.(check bool) "nested calls run sequentially and correctly" true
        (Array.for_all Fun.id inner_flags));
  Alcotest.(check bool) "flag cleared outside tasks" false (Pool.in_worker ())

let test_jobs_one_is_sequential () =
  (* OSHIL_JOBS=1 must mean: no default pool at all. No set_jobs has
     happened yet in this process, so default_size reads the env. *)
  Unix.putenv "OSHIL_JOBS" "1";
  Alcotest.(check int) "default size honours OSHIL_JOBS=1" 1 (Pool.default_size ());
  Alcotest.(check bool) "no default pool at size 1" true
    (Pool.get_default () = None);
  (* parallel entry points still work, running inline *)
  let xs = Array.init 257 (fun k -> float_of_int k /. 7.0) in
  let got = Pool.parallel_map_array heavy_f xs in
  Alcotest.(check bool) "sequential degeneration correct" true
    (got = seq_map heavy_f xs);
  Pool.set_jobs 4;
  Alcotest.(check int) "set_jobs overrides env" 4 (Pool.default_size ());
  (match Pool.get_default () with
  | Some p -> Alcotest.(check int) "default pool sized by set_jobs" 4 (Pool.size p)
  | None -> Alcotest.fail "default pool expected at jobs=4");
  Pool.set_jobs 1

let test_empty_and_tiny () =
  with_pool 4 (fun p ->
      Alcotest.(check bool) "empty map" true
        (Pool.parallel_map_array ~pool:p (fun x -> x) [||] = [||]);
      Pool.parallel_for ~pool:p ~n:0 (fun _ -> Alcotest.fail "must not run");
      let one = Pool.parallel_init ~pool:p 1 (fun i -> i * 3) in
      Alcotest.(check bool) "singleton init" true (one = [| 0 |]))

let test_trig_tables_shared_and_exact () =
  let points = 384 and k = 3 in
  let cos_t, sin_t = Trig_tables.get ~points ~k in
  Alcotest.(check int) "cos table length" points (Array.length cos_t);
  let ok = ref true in
  for s = 0 to points - 1 do
    let theta = 2.0 *. Float.pi *. float_of_int (k * s) /. float_of_int points in
    if cos_t.(s) <> cos theta || sin_t.(s) <> sin theta then ok := false
  done;
  Alcotest.(check bool) "tables bit-match the direct expression" true !ok;
  let cos_t', _ = Trig_tables.get ~points ~k in
  Alcotest.(check bool) "second get returns the cached array" true
    (cos_t == cos_t');
  Trig_tables.clear ();
  let cos_t'', _ = Trig_tables.get ~points ~k in
  Alcotest.(check bool) "recomputed table equal after clear" true
    (cos_t = cos_t'')

let test_fourier_uses_tables () =
  (* coeff of cos(k theta) at harmonic k is 1/2; table-backed quadrature
     must keep the historical accuracy *)
  let c = Numerics.Fourier.coeff ~n:1024 ~f:cos ~k:1 () in
  Alcotest.(check (float 1e-12)) "X1 of cos" 0.5 (Numerics.Cx.re c);
  Alcotest.(check (float 1e-12)) "X1 imag" 0.0 (Numerics.Cx.im c);
  let f theta = cos (3.0 *. theta) in
  let c3 = Numerics.Fourier.coeff ~n:1024 ~f ~k:3 () in
  Alcotest.(check (float 1e-12)) "X3 of cos 3t" 0.5 (Numerics.Cx.re c3);
  (* coeff and coeff_sampled agree exactly: same samples, same tables *)
  let samples = Array.init 1024 (fun s -> f (2.0 *. Float.pi *. float_of_int s /. 1024.0)) in
  let cs = Numerics.Fourier.coeff_sampled samples ~k:3 in
  Alcotest.(check (float 1e-15)) "coeff vs coeff_sampled re"
    (Numerics.Cx.re c3) (Numerics.Cx.re cs)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map deterministic" `Quick test_map_deterministic;
          Alcotest.test_case "for covers all indices" `Quick test_for_covers_all_indices;
          Alcotest.test_case "reduce matches sequential" `Quick test_reduce_matches_sequential;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "nested fallback" `Quick test_nested_calls_fall_back;
          Alcotest.test_case "jobs=1 sequential" `Quick test_jobs_one_is_sequential;
          Alcotest.test_case "empty and tiny inputs" `Quick test_empty_and_tiny;
        ] );
      ( "trig_tables",
        [
          Alcotest.test_case "shared exact tables" `Quick test_trig_tables_shared_and_exact;
          Alcotest.test_case "fourier on tables" `Quick test_fourier_uses_tables;
        ] );
    ]
