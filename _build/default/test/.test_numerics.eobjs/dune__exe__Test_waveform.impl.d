test/test_waveform.ml: Alcotest Array Float Numerics QCheck QCheck_alcotest Waveform
