test/test_ppv.ml: Alcotest Array Float Lazy Numerics Ppv Shil
