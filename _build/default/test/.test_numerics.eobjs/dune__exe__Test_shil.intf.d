test/test_shil.mli:
