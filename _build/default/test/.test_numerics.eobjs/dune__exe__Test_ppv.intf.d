test/test_ppv.mli:
