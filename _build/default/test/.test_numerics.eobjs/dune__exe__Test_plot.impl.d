test/test_plot.ml: Alcotest Ascii_render Fig Filename Float List Plotkit QCheck QCheck_alcotest Scale String Svg_render Sys
