test/test_circuits.ml: Alcotest Array Circuits Float Lazy List QCheck QCheck_alcotest Shil Spice
