test/test_spice.mli:
