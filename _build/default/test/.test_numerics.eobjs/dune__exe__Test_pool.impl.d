test/test_pool.ml: Alcotest Array Float Fun Numerics Unix
