test/test_pool.mli:
