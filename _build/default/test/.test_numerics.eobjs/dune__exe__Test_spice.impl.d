test/test_spice.ml: Ac Alcotest Array Circuit Dc_sweep Device Float List Mna Netlist Numerics Op Printf QCheck QCheck_alcotest Result Shil Spice Transient Wave Waveform
