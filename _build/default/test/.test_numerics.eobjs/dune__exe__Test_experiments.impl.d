test/test_experiments.ml: Alcotest Circuits Experiments Filename Float Format List Plotkit Printf String Sys
