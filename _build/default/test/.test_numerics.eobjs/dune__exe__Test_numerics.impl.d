test/test_numerics.ml: Alcotest Angle Array Cx Fft Float Fourier Interp Linalg List Numerics Ode Printf QCheck QCheck_alcotest Quad Roots Stats String
