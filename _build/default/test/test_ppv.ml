(* Tests for the PPV baseline library (orbit finding, adjoint phase
   sensitivity, generalized-Adler lock range). *)

let check_float ?(eps = 1e-9) msg expected got =
  Alcotest.(check (float eps)) msg expected got

(* canonical fixture: the tanh LC oscillator used across the test suites *)
let nl = Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3
let tank =
  let wc = 2.0 *. Float.pi *. 1e6 in
  Shil.Tank.make ~r:1e3 ~l:(100.0 /. wc) ~c:(1.0 /. (100.0 *. wc))

let f_sys =
  let { Shil.Tank.r; l; c } = tank in
  fun _t (y : float array) ->
    let v = y.(0) and il = y.(1) in
    [| ((-.v /. r) -. il -. Shil.Nonlinearity.eval nl v) /. c; v /. l |]

let orbit = lazy
  (Ppv.Orbit.from_transient ~f:f_sys ~x_start:[| 1e-3; 0.0 |]
     ~period_estimate:1e-6 ())

(* Orbit *)

let test_orbit_period () =
  let orb = Lazy.force orbit in
  (* period ~ 1/fc (small Groszkowski shift allowed) *)
  check_float ~eps:2e-9 "period near 1 us" 1e-6 orb.period

let test_orbit_amplitude () =
  let orb = Lazy.force orbit in
  let vmax =
    Array.fold_left (fun acc s -> Float.max acc s.(0)) neg_infinity orb.states
  in
  (* matches the describing-function amplitude *)
  check_float ~eps:3e-3 "orbit amplitude" 1.1582 vmax

let test_orbit_closure () =
  let orb = Lazy.force orbit in
  let x_end =
    Numerics.Ode.rk4_final f_sys ~t0:0.0 ~t1:orb.period
      ~dt:(orb.period /. 4000.0) ~y0:orb.x0
  in
  check_float ~eps:1e-6 "closure v" orb.x0.(0) x_end.(0);
  check_float ~eps:1e-6 "closure il" (orb.x0.(1) *. 1e3) (x_end.(1) *. 1e3)

let test_orbit_anchor () =
  (* phase pin: dv/dt = 0 at t = 0 *)
  let orb = Lazy.force orbit in
  let fx = f_sys 0.0 orb.x0 in
  Alcotest.(check bool) "v at extremum" true
    (Float.abs fx.(0) < 1e-4 *. Float.abs fx.(1))

let test_orbit_state_at_periodicity () =
  let orb = Lazy.force orbit in
  let a = Ppv.Orbit.state_at orb 0.3e-6 in
  let b = Ppv.Orbit.state_at orb (0.3e-6 +. orb.period) in
  check_float ~eps:1e-12 "periodic interp v" a.(0) b.(0);
  check_float ~eps:1e-12 "periodic interp il" a.(1) b.(1)

(* Sensitivity (PPV) *)

let ppv = lazy (Ppv.Sensitivity.compute ~f:f_sys (Lazy.force orbit))

let test_ppv_normalization () =
  let p = Lazy.force ppv in
  Alcotest.(check bool) "v1 . xdot = 1 everywhere" true
    (Ppv.Sensitivity.normalization_error p < 0.02)

let test_ppv_floquet_stable () =
  let p = Lazy.force ppv in
  Alcotest.(check bool) "second multiplier inside unit circle" true
    (Float.abs p.floquet_mu < 1.0 && p.floquet_mu > 0.0)

let test_ppv_periodicity () =
  let p = Lazy.force ppv in
  let a = Ppv.Sensitivity.at p 0.0 in
  let orb = Lazy.force orbit in
  let b = Ppv.Sensitivity.at p orb.period in
  (* adjoint solution with the unit multiplier must close on itself *)
  check_float ~eps:(1e-3 *. Float.abs a.(0)) "ppv closes (v)" a.(0) b.(0)

let test_ppv_fundamental_dominates () =
  let p = Lazy.force ppv in
  let v1 = Ppv.Sensitivity.fourier_component p ~component:0 ~k:1 in
  let v3 = Ppv.Sensitivity.fourier_component p ~component:0 ~k:3 in
  Alcotest.(check bool) "V1 > V3 for a mildly nonlinear oscillator" true
    (Numerics.Cx.abs v1 > Numerics.Cx.abs v3)

(* Lock baseline *)

let test_baseline_matches_rigorous_weak () =
  let baseline = Ppv.Lock_baseline.predict nl ~tank ~n:3 ~vi:0.01 in
  let report = Shil.Analysis.run { nl; tank } ~n:3 ~vi:0.01 in
  let rel =
    Float.abs (baseline.delta_f_inj -. report.lock_range.delta_f_inj)
    /. report.lock_range.delta_f_inj
  in
  Alcotest.(check bool) "weak injection: PPV within 2% of rigorous" true (rel < 0.02)

let test_baseline_linear_in_vi () =
  let b1 = Ppv.Lock_baseline.predict nl ~tank ~n:3 ~vi:0.01 in
  let b2 = Ppv.Lock_baseline.predict nl ~tank ~n:3 ~vi:0.02 in
  check_float ~eps:1e-3 "first-order theory scales linearly" 2.0
    (b2.delta_f_inj /. b1.delta_f_inj)

let test_baseline_overestimates_strong () =
  (* the documented failure mode of the first-order baseline, and the
     rigorous method's advantage (paper §I) *)
  let baseline = Ppv.Lock_baseline.predict nl ~tank ~n:3 ~vi:0.2 in
  let report = Shil.Analysis.run { nl; tank } ~n:3 ~vi:0.2 in
  Alcotest.(check bool) "strong injection: PPV drifts above rigorous" true
    (baseline.delta_f_inj > 1.04 *. report.lock_range.delta_f_inj)


(* Refined (orbit-recentred) predictions *)

let test_refined_f0_close_to_fc_for_odd_cell () =
  (* odd-symmetric tanh: tiny Groszkowski shift *)
  let f0 = Ppv.Refined.free_running_frequency nl ~tank in
  Alcotest.(check bool) "within 0.1% of fc" true
    (Float.abs (f0 -. 1e6) /. 1e6 < 1e-3)

let test_refined_recenter_scales () =
  let report = Shil.Analysis.run { nl; tank } ~n:3 ~vi:0.05 in
  let lr = report.lock_range in
  let rc = Ppv.Refined.recenter lr ~f0:1.01e6 ~tank in
  check_float ~eps:1.0 "low edge scaled" (lr.f_inj_low *. 1.01) rc.f_inj_low;
  check_float ~eps:1.0 "width scaled" (lr.delta_f_inj *. 1.01) rc.delta_f_inj

let test_refined_fixes_asymmetric_cell () =
  (* the asymmetric clipped cell: the recentred band must sit below the
     plain band (negative Groszkowski shift), by several kHz *)
  let f v =
    let core = (-.2e-3 *. v) +. (0.6e-3 *. v *. v *. v) in
    let clip = if v > 0.8 then 5e-3 *. ((v -. 0.8) ** 2.0) else 0.0 in
    core +. clip
  in
  let nl2 = Shil.Nonlinearity.make ~name:"asym" f in
  let tank2 =
    let wc = 2.0 *. Float.pi *. 2e6 in
    Shil.Tank.make ~r:1.2e3 ~l:(150.0 /. wc) ~c:(1.0 /. (150.0 *. wc))
  in
  let f0 = Ppv.Refined.free_running_frequency nl2 ~tank:tank2 in
  Alcotest.(check bool) "f0 below fc" true (f0 < 2e6 -. 5e3);
  let rc = Ppv.Refined.lock_range nl2 ~tank:tank2 ~n:2 ~vi:0.06 in
  let report = Shil.Analysis.run { nl = nl2; tank = tank2 } ~n:2 ~vi:0.06 in
  Alcotest.(check bool) "recentred band sits lower" true
    (rc.f_inj_low < report.lock_range.f_inj_low -. 5e3)

let () =
  Alcotest.run "ppv"
    [
      ( "orbit",
        [
          Alcotest.test_case "period" `Quick test_orbit_period;
          Alcotest.test_case "amplitude" `Quick test_orbit_amplitude;
          Alcotest.test_case "closure" `Quick test_orbit_closure;
          Alcotest.test_case "anchor" `Quick test_orbit_anchor;
          Alcotest.test_case "state_at periodic" `Quick test_orbit_state_at_periodicity;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "normalization" `Quick test_ppv_normalization;
          Alcotest.test_case "floquet stable" `Quick test_ppv_floquet_stable;
          Alcotest.test_case "periodicity" `Quick test_ppv_periodicity;
          Alcotest.test_case "fundamental dominates" `Quick test_ppv_fundamental_dominates;
        ] );
      ( "refined",
        [
          Alcotest.test_case "f0 near fc (odd cell)" `Quick test_refined_f0_close_to_fc_for_odd_cell;
          Alcotest.test_case "recenter scales" `Slow test_refined_recenter_scales;
          Alcotest.test_case "fixes asymmetric cell" `Slow test_refined_fixes_asymmetric_cell;
        ] );
      ( "lock_baseline",
        [
          Alcotest.test_case "matches rigorous (weak)" `Slow test_baseline_matches_rigorous_weak;
          Alcotest.test_case "linear in vi" `Quick test_baseline_linear_in_vi;
          Alcotest.test_case "overestimates (strong)" `Slow test_baseline_overestimates_strong;
        ] );
    ]
