lib/experiments/speedup.mli: Osc_experiments Output
