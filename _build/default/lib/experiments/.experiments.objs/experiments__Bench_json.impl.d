lib/experiments/bench_json.ml: Buffer Char Float Fun List Printf String
