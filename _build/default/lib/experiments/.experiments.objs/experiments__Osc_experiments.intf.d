lib/experiments/osc_experiments.mli: Circuits Output Shil Spice
