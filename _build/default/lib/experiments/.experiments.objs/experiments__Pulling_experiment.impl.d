lib/experiments/pulling_experiment.ml: Circuits List Output Printf Shil
