lib/experiments/osc_experiments.ml: Array Circuits Float List Numerics Option Output Plotkit Printf Shil Spice
