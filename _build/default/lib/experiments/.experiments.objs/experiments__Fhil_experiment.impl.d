lib/experiments/fhil_experiment.ml: Circuits List Output Printf Shil
