lib/experiments/output.mli: Format Plotkit
