lib/experiments/baseline_cmp.mli: Output Shil
