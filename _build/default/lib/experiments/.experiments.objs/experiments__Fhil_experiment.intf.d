lib/experiments/fhil_experiment.mli: Output
