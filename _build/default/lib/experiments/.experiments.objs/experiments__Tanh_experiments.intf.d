lib/experiments/tanh_experiments.mli: Circuits Output
