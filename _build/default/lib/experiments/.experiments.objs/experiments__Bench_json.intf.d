lib/experiments/bench_json.mli:
