lib/experiments/cmos_experiment.ml: Circuits Output Printf Shil
