lib/experiments/pulling_experiment.mli: Output
