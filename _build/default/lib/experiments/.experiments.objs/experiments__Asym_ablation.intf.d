lib/experiments/asym_ablation.mli: Output Shil
