lib/experiments/baseline_cmp.ml: List Output Ppv Printf Shil
