lib/experiments/cmos_experiment.mli: Output
