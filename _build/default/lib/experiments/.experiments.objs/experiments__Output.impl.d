lib/experiments/output.ml: Filename Format List Plotkit Printf String
