lib/experiments/tanh_experiments.ml: Array Circuits Float List Numerics Output Plotkit Printf Shil Waveform
