lib/experiments/tongue_experiment.mli: Output Shil
