lib/experiments/tongue_experiment.ml: Array Circuits List Output Plotkit Printf Shil
