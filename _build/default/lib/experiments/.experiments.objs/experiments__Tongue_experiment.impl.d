lib/experiments/tongue_experiment.ml: Array Circuits List Numerics Output Plotkit Printf Shil
