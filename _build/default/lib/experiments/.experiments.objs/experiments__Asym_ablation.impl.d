lib/experiments/asym_ablation.ml: Float Output Ppv Printf Shil
