lib/experiments/speedup.ml: Circuits Option Osc_experiments Output Printf Shil Unix
