(** Common output container for reproduced experiments: key/value rows for
    the terminal tables and named figures for the SVG writer. *)

type t = {
  id : string;  (** paper item, e.g. "F3" or "T1" *)
  title : string;
  rows : (string * string) list;  (** printable findings, in order *)
  figures : (string * Plotkit.Fig.t) list;  (** file stem -> figure *)
}

val make :
  id:string -> title:string -> ?rows:(string * string) list ->
  ?figures:(string * Plotkit.Fig.t) list -> unit -> t

val row_f : string -> float -> string * string
(** Formats a float with 8 significant digits. *)

val print : Format.formatter -> t -> unit
(** Banner, then one aligned [key: value] line per row. *)

val write_figures : dir:string -> t -> string list
(** Writes each figure as [dir/<id>_<stem>.svg]; returns the paths. *)
