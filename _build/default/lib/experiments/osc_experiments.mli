(** Shared §IV experiment drivers, parameterised over a benchmark circuit:
    both the diff-pair (§IV-A) and the tunnel-diode (§IV-B) sections run
    the same five experiments (f(v) extraction, natural-oscillation
    prediction + transient validation, SHIL lock-range prediction +
    simulated table, and the n-states demonstration). *)

type bench = {
  name : string;
  fc : float;  (** tank centre frequency *)
  natural_target : float;  (** the paper's reported amplitude *)
  oscillator : Shil.Analysis.oscillator;  (** extracted nl + tank *)
  fv_table : float array * float array;  (** raw extraction table *)
  circuit : unit -> Spice.Circuit.t;
  circuit_injected : f_inj:float -> Spice.Circuit.t;
  circuit_with_extra : extra:Spice.Device.t list -> Spice.Circuit.t;
      (** injected at the centre of the predicted band *)
  state_pulse : at:float -> Spice.Device.t;
  state_pulse_offsets : float * float;
      (** fractional-cycle offsets of the two state-flip kicks (tuned per
          circuit so the deterministic simulation visits distinct
          states) *)
  probe : Spice.Transient.probe;
  vi : float;
  n : int;
  lock_cycles : float;
      (** transient length per lock decision; long for high-Q tanks *)
  paper_table : (string * float) list;
      (** the paper's own table rows, for side-by-side printing *)
}

val diff_pair : ?params:Circuits.Diff_pair.params -> unit -> bench
(** Builds the §IV-A bench (extracts [f(v)] via the MNA DC sweep: a few
    hundred operating-point solves). *)

val tunnel : ?params:Circuits.Tunnel_osc.params -> unit -> bench
(** Builds the §IV-B bench. *)

val fig_fv : bench -> Output.t
(** Figs. 12a / 16b: the extracted [i = f(v)] curve. *)

val fig_natural_prediction : bench -> Output.t
(** Figs. 12b / 16c: [T_f(A) = 1] graphical prediction. *)

val fig_transient : ?cycles:float -> bench -> Output.t
(** Figs. 13 / 17: start-up transient on the device netlist; measured
    steady amplitude and frequency against the prediction. *)

val table_lock_range :
  ?cycles:float -> ?predict_only:bool -> bench -> Output.t * Shil.Lock_range.t
(** Tables §IV-A / §IV-B: predicted vs simulated lock limits
    (simulation = binary search of transient lock edges; skipped when
    [predict_only]). [cycles] defaults to the bench's [lock_cycles]. Also
    returns the prediction for reuse. *)

val fig_lock_range_curves : bench -> Output.t
(** Figs. 14 / 18: the isoline picture at the calibrated [V_i]. *)

val fig_states : ?window_cycles:float -> bench -> Output.t
(** Figs. 15 / 19: phase-flipping pulses move the oscillator between the
    [n] states; reports the relative phase in each inter-pulse window. *)
