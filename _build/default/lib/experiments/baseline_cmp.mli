(** Ablation: the rigorous graphical method vs the PPV (generalized
    Adler) baseline vs brute-force time-domain lock edges, across
    injection strengths. Reproduces the paper's §I claim that the
    graphical method "matches results from PPV-based analysis but
    provides greater accuracy" — the two agree for weak injection and the
    PPV estimate drifts as [V_i] grows. *)

type point = {
  vi : float;
  rigorous : float;  (** predicted lock range, Hz *)
  ppv : float;
  simulated : float option;  (** time-domain (reduced ODE); None when skipped *)
}

val sweep :
  ?vis:float list -> ?simulate:bool -> Shil.Nonlinearity.t ->
  tank:Shil.Tank.t -> n:int -> point list
(** Defaults: [vis = [0.01; 0.02; 0.05; 0.1; 0.2]], [simulate = false]
    (the ODE edge searches dominate the runtime when on). *)

val output : point list -> Output.t
