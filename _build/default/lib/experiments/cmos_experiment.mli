(** Extension experiment X1: the paper's flow on a modern 2.4 GHz CMOS
    cross-coupled VCO (the topology §I motivates but §IV does not
    evaluate). Extraction, natural-oscillation validation against the
    device-level transient, 3rd-SHIL lock range, and a time-domain lock
    spot check. *)

val run : ?validate:bool -> unit -> Output.t
(** [validate] (default true) runs the device-level transient and the
    reduced-model lock checks. *)
