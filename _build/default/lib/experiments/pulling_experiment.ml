let run ?(fracs = [ 0.25; 0.5; 1.0; 2.0 ]) ?(simulate = true) () =
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  let vi = 0.05 and n = 3 in
  let report = Shil.Analysis.run osc ~n ~vi in
  let lr = report.lock_range in
  let rows =
    List.map
      (fun frac ->
        let f_inj = lr.f_inj_high +. (frac *. lr.delta_f_inj) in
        let pred = Shil.Pulling.beat_frequency ~lock_range:lr ~n ~f_inj in
        let line =
          if simulate then begin
            let meas = Shil.Pulling.measure_beat osc.nl ~tank:osc.tank ~vi ~n ~f_inj in
            Printf.sprintf "beat predicted %.5g Hz / measured %.5g Hz" pred meas
          end
          else Printf.sprintf "beat predicted %.5g Hz" pred
        in
        (Printf.sprintf "f_inj = edge + %.2g ranges" frac, line))
      fracs
  in
  Output.make ~id:"X2"
    ~title:"extension: injection pulling (beat note) beyond the lock range"
    ~rows:
      (rows
      @ [
          ( "reading",
            "the sqrt(delta^2 - wL^2) Adler beat law, fed with the rigorous \
             lock range, tracks the simulated phase-slip rate; accuracy \
             improves away from the band edge where the sinusoidal phase \
             model is exact" );
        ])
    ()
