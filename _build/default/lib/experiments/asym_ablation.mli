(** Ablation A2 (beyond the paper): the filtering assumption on an
    asymmetric nonlinearity.

    The paper's examples are odd-symmetric, so the oscillator's own
    n-th-harmonic current barely perturbs the analysis. An asymmetric
    cell at n = 2 breaks that: the plain prediction's band is offset.
    This experiment compares, on a clipped asymmetric cell,

    - the plain graphical prediction (the paper's method),
    - the self-consistent-harmonic extension ({!Shil.Self_consistent}),
    - the orbit-recentred prediction ({!Ppv.Refined}),
    - brute-force time-domain lock edges (when [simulate]). *)

val cell : unit -> Shil.Analysis.oscillator
(** The asymmetric demonstration cell (van der Pol core + one-sided
    clipping diode), 2 MHz tank. *)

val run : ?simulate:bool -> ?self_consistent:bool -> unit -> Output.t
(** [simulate] (default false) adds the ODE edge searches; the
    self-consistent solve (default true) costs ~2 min. *)
