(** Machine-readable benchmark records.

    The bench harness emits one small JSON object per tracked kernel
    (e.g. [BENCH_grid.json], [BENCH_lockrange.json]) so the performance
    trajectory is comparable across PRs. Schema:

    {v
    {
      "name": "grid_sample_121x101x512",
      "jobs": 4,
      "wall_s": 0.31,
      "speedup_vs_seq": 2.7,
      ... further numeric fields (seq_wall_s, sizes, flags) ...
    }
    v}

    [parse] / [read] implement just enough JSON (a flat object of
    strings and numbers) to round-trip that schema, so CI can verify the
    emitted files without external dependencies. *)

type entry = {
  name : string;
  jobs : int;  (** pool size the timed run used *)
  wall_s : float;  (** wall-clock seconds of the timed run *)
  speedup_vs_seq : float;  (** sequential wall time / [wall_s] *)
  extra : (string * float) list;  (** any further numeric fields *)
}

exception Parse_error of string

val to_json : entry -> string
val write : path:string -> entry -> unit

val parse : string -> entry
(** Raises {!Parse_error} on malformed input or missing required
    fields. NaN round-trips as JSON [null]. *)

val read : path:string -> entry
