(** Extension experiment X3: the Arnold tongue.

    Sweeping the injection strength traces the classic V-shaped locking
    region (lock band edges vs [V_i]) — the global picture of which the
    paper's lock-range tables are single vertical slices. The tongue is
    predicted entirely from describing-function grids (one per [V_i]),
    reusing the [C_{T_f,1}]-invariance economy at each strength. *)

type point = {
  vi : float;
  f_inj_low : float;
  f_inj_high : float;
  delta_f_inj : float;
}

val compute :
  ?points:int -> ?vis:float list -> Shil.Analysis.oscillator -> n:int ->
  point list
(** Default [vis]: 12 strengths from 0.005 to 0.3 (logarithmic-ish). *)

val run : ?vis:float list -> unit -> Output.t
(** Tongue of the tanh oscillator at n = 3; writes the tongue figure. *)
