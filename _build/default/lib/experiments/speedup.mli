(** §IV speed comparison: describing-function prediction vs brute-force
    transient simulation of the lock range (the paper reports 25x for the
    diff-pair and 50x for the tunnel diode). Wall-clock, single run. *)

type result = {
  bench_name : string;
  predict_s : float;  (** grid + boundary bisection + frequency mapping *)
  simulate_s : float;  (** transient binary search of both edges *)
  speedup : float;
}

val run : ?cycles:float -> Osc_experiments.bench -> result
(** [cycles] is the transient length per lock trial (defaults to the
    bench's [lock_cycles]). *)

val output : result -> paper_speedup:float -> Output.t
