type t = {
  id : string;
  title : string;
  rows : (string * string) list;
  figures : (string * Plotkit.Fig.t) list;
}

let make ~id ~title ?(rows = []) ?(figures = []) () = { id; title; rows; figures }
let row_f key v = (key, Printf.sprintf "%.8g" v)

let print ppf t =
  let open Format in
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 t.rows
  in
  fprintf ppf "@[<v>=== [%s] %s@," t.id t.title;
  List.iter
    (fun (k, v) -> fprintf ppf "  %-*s  %s@," width k v)
    t.rows;
  fprintf ppf "@]"

let write_figures ~dir t =
  List.map
    (fun (stem, fig) ->
      let path = Filename.concat dir (Printf.sprintf "%s_%s.svg" t.id stem) in
      Plotkit.Svg_render.write_file ~path fig;
      path)
    t.figures
