type point = {
  vi : float;
  rigorous : float;
  ppv : float;
  simulated : float option;
}

let sweep ?(vis = [ 0.01; 0.02; 0.05; 0.1; 0.2 ]) ?(simulate = false) nl ~tank
    ~n =
  List.map
    (fun vi ->
      let report = Shil.Analysis.run { nl; tank } ~n ~vi in
      let rigorous = report.lock_range.delta_f_inj in
      let baseline = Ppv.Lock_baseline.predict nl ~tank ~n ~vi in
      let simulated =
        if not simulate then None
        else begin
          let lr = report.lock_range in
          let low =
            Shil.Simulate.lock_edge nl ~tank ~vi ~n
              ~f_lo:(lr.f_inj_low -. (0.5 *. lr.delta_f_inj))
              ~f_hi:(lr.f_inj_low +. (0.5 *. lr.delta_f_inj))
              ~side:`Low
          in
          let high =
            Shil.Simulate.lock_edge nl ~tank ~vi ~n
              ~f_lo:(lr.f_inj_high -. (0.5 *. lr.delta_f_inj))
              ~f_hi:(lr.f_inj_high +. (0.5 *. lr.delta_f_inj))
              ~side:`High
          in
          Some (high -. low)
        end
      in
      { vi; rigorous; ppv = baseline.delta_f_inj; simulated })
    vis

let output points =
  let rows =
    List.concat_map
      (fun p ->
        let base =
          Printf.sprintf "rigorous %.6g Hz | PPV %.6g Hz (%+.2f%%)" p.rigorous
            p.ppv
            (100.0 *. (p.ppv -. p.rigorous) /. p.rigorous)
        in
        let line =
          match p.simulated with
          | Some s -> Printf.sprintf "%s | simulated %.6g Hz" base s
          | None -> base
        in
        [ (Printf.sprintf "Vi = %.3g" p.vi, line) ])
      points
  in
  Output.make ~id:"A1"
    ~title:"ablation: rigorous graphical method vs PPV baseline"
    ~rows:
      (rows
      @ [
          ( "reading",
            "PPV (first-order) matches for weak injection and drifts for \
             strong injection; the graphical method tracks simulation \
             throughout (paper SI claim)" );
        ])
    ()
