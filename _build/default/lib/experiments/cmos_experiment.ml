let run ?(validate = true) () =
  let p = Circuits.Cmos_pair.default in
  let osc = Circuits.Cmos_pair.oscillator p in
  let vi = 0.05 and n = 3 in
  let report = Shil.Analysis.run osc ~n ~vi in
  let lr = report.lock_range in
  let rows =
    [
      Output.row_f "tank f_c (Hz)" (Shil.Tank.f_c osc.tank);
      Output.row_f "tank Q" (Shil.Tank.q osc.tank);
      ( "predicted natural A (V)",
        match report.natural_amplitude with
        | Some a -> Printf.sprintf "%.6g" a
        | None -> "none" );
      Output.row_f "prediction lower lock limit (Hz)" lr.f_inj_low;
      Output.row_f "prediction upper lock limit (Hz)" lr.f_inj_high;
      Output.row_f "prediction lock range (Hz)" lr.delta_f_inj;
      Output.row_f "prediction phi_d_max (rad)" lr.phi_d_max;
    ]
  in
  let rows =
    if not validate then rows
    else begin
      let cmp =
        Circuits.Validate.natural ~cycles:300.0
          ~circuit:(Circuits.Cmos_pair.circuit p)
          ~probe:Circuits.Cmos_pair.osc_probe ~osc ()
      in
      let centre = 0.5 *. (lr.f_inj_low +. lr.f_inj_high) in
      let locked_in =
        Shil.Simulate.locked ~cycles:1500.0 osc.nl ~tank:osc.tank
          ~injection:{ vi; n; f_inj = centre; phase = 0.0 }
      in
      let locked_out =
        Shil.Simulate.locked ~cycles:1500.0 osc.nl ~tank:osc.tank
          ~injection:
            { vi; n; f_inj = lr.f_inj_high +. lr.delta_f_inj; phase = 0.0 }
      in
      rows
      @ [
          Output.row_f "simulated natural A (V)" cmp.simulated_a;
          Output.row_f "simulated natural f (Hz)" cmp.simulated_f;
          ( "lock check (band centre)",
            if locked_in then "locked, as predicted" else "NOT locked" );
          ( "lock check (outside band)",
            if locked_out then "locked (unexpected)" else "unlocked, as predicted" );
        ]
    end
  in
  Output.make ~id:"X1"
    ~title:"extension: 2.4 GHz CMOS cross-coupled VCO under 3rd-SHIL"
    ~rows ()
