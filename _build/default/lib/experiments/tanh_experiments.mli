(** Reproductions of the paper's §II–III illustration figures, all on the
    negative-tanh LC oscillator (Figs. 3, 6, 7, 9, 10), each validated
    against the reduced time-domain simulator where meaningful. *)

type setup = {
  params : Circuits.Tanh_osc.params;
  vi : float;  (** injection magnitude used by F7/F9/F10 *)
  n : int;  (** sub-harmonic order (3, as in the paper's examples) *)
}

val default_setup : setup

val fig3_natural : ?validate:bool -> setup -> Output.t
(** [T_f(A)] against [y = 1]: predicted natural amplitude, optionally
    cross-checked against the reduced ODE (default true). *)

val fig6_tank : setup -> Output.t
(** Tank [|H|] and phase vs frequency; peak and +-45 degree points. *)

val fig7_solutions : ?phi_d:float -> setup -> Output.t
(** The [(phi, A)]-plane curves [C_{T_f,1}] and [C_{angle(-I1),-phi_d}]
    with their intersections and stability (default [phi_d = 0.1]). *)

val fig9_states : setup -> Output.t
(** The [n] oscillator states of the stable centre-frequency lock, spaced
    [2 pi / n], drawn as phasors. *)

val fig10_lock_range : ?validate:bool -> setup -> Output.t
(** Isolines of [angle(-I1)] over the [T_f = 1] curve; the lock-range
    boundary [phi_d_max], mapped to the injection-frequency band;
    optionally validated against time-domain lock edges (slow). *)
