(** Ablation A3: fundamental-harmonic injection locking (n = 1, §III-B).

    The SHIL machinery subsumes FHIL as its n = 1 special case; Adler's
    classical formula is the textbook baseline. The rigorous lock range
    must approach Adler for weak injection and depart as the injection
    grows (Adler assumes a fixed amplitude and a sinusoidal phase
    characteristic). *)

val run : ?vis:float list -> unit -> Output.t
(** Sweeps injection strengths (default [0.01; 0.05; 0.1; 0.2] on the
    tanh oscillator) comparing the rigorous n = 1 range with Adler's. *)
