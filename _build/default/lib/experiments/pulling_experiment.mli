(** Extension experiment X2: injection pulling outside the lock range.

    Sweeps the injection frequency beyond the predicted band edge and
    compares the measured phase-slip (beat) frequency of the pulled
    oscillator against the Adler-type prediction
    [sqrt (delta^2 - w_L^2)] fed with the rigorous lock range — turning
    the paper's lock-range analysis into a quantitative quasi-lock
    prediction. *)

val run : ?fracs:float list -> ?simulate:bool -> unit -> Output.t
(** [fracs] are offsets beyond the upper band edge in units of the lock
    range (default [0.25; 0.5; 1.0; 2.0]); [simulate] (default true)
    adds the measured beats. *)
