(** Injection-lock detection from transient waveforms.

    An oscillator is locked to [f_target] when the phase of its
    fundamental, measured against an ideal reference at [f_target], stops
    drifting: the residual phase slope corresponds to a frequency error
    far below the candidate/neighbour spacing. An unlocked (pulled)
    oscillator beats, showing a secular phase drift. *)

type verdict = {
  locked : bool;
  freq_measured : float;  (** zero-crossing frequency of the tail *)
  phase_drift : float;  (** rad/s residual slope against the reference *)
  phase_sigma : float;  (** rad, rms deviation of the phase profile *)
  amplitude : float;
}

val analyze :
  ?steady_fraction:float -> ?windows:int -> ?drift_tol:float ->
  Signal.t -> f_target:float -> verdict
(** [analyze s ~f_target] inspects the last [steady_fraction] (default
    0.5) of [s]. Locked iff the unwrapped phase-vs-reference profile over
    [windows] (default 16) spans has |slope| < [drift_tol] (default: the
    slope corresponding to a frequency error of 1e-4 of [f_target]) and
    the measured zero-crossing frequency is within 0.2%% of [f_target]. *)

val relative_phase : Signal.t -> f_target:float -> float
(** Steady-state phase (radians, wrapped to (-pi, pi]) of the oscillation
    fundamental against a [cos(2 pi f_target t)] reference — the quantity
    whose [n] distinct values distinguish the [n] SHIL states. *)
