type t = { times : float array; values : float array }

let make ~times ~values =
  let n = Array.length times in
  if n <> Array.length values then invalid_arg "Signal.make: length mismatch";
  if n = 0 then invalid_arg "Signal.make: empty signal";
  for i = 0 to n - 2 do
    if not (times.(i) < times.(i + 1)) then
      invalid_arg "Signal.make: times must be strictly increasing"
  done;
  { times; values }

let length s = Array.length s.times
let duration s = s.times.(length s - 1) -. s.times.(0)

let slice s ~t_min ~t_max =
  let keep = ref [] in
  for i = length s - 1 downto 0 do
    if s.times.(i) >= t_min && s.times.(i) <= t_max then
      keep := i :: !keep
  done;
  let idx = Array.of_list !keep in
  if Array.length idx = 0 then invalid_arg "Signal.slice: empty window";
  {
    times = Array.map (fun i -> s.times.(i)) idx;
    values = Array.map (fun i -> s.values.(i)) idx;
  }

let tail_fraction s frac =
  let t1 = s.times.(length s - 1) in
  let t0 = t1 -. (frac *. duration s) in
  slice s ~t_min:t0 ~t_max:t1

let value_at s t =
  let n = length s in
  if t <= s.times.(0) then s.values.(0)
  else if t >= s.times.(n - 1) then s.values.(n - 1)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if s.times.(mid) <= t then lo := mid else hi := mid
    done;
    let ta = s.times.(!lo) and tb = s.times.(!hi) in
    let va = s.values.(!lo) and vb = s.values.(!hi) in
    va +. ((vb -. va) *. (t -. ta) /. (tb -. ta))
  end

let map f s = { s with values = Array.map f s.values }
let shift_values s c = map (fun v -> v +. c) s

let mean s =
  let n = length s in
  if n = 1 then s.values.(0)
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 2 do
      let dt = s.times.(i + 1) -. s.times.(i) in
      acc := !acc +. (0.5 *. dt *. (s.values.(i) +. s.values.(i + 1)))
    done;
    !acc /. duration s
  end
