type verdict = {
  locked : bool;
  freq_measured : float;
  phase_drift : float;
  phase_sigma : float;
  amplitude : float;
}

let analyze ?(steady_fraction = 0.5) ?(windows = 16) ?drift_tol s ~f_target =
  let tail = Signal.tail_fraction s steady_fraction in
  let drift_tol =
    match drift_tol with
    | Some d -> d
    | None -> 2.0 *. Float.pi *. 1e-4 *. f_target
  in
  let phases = Measure.phase_vs_reference tail ~freq:f_target ~windows in
  let span = Signal.duration tail in
  let ts =
    Array.init windows (fun k ->
        (float_of_int k +. 0.5) *. span /. float_of_int windows)
  in
  let slope, _ = Numerics.Stats.linear_fit ~xs:ts ~ys:phases in
  let detrended =
    Array.mapi (fun k p -> p -. (slope *. ts.(k))) phases
  in
  let sigma = Numerics.Stats.stddev detrended in
  let freq_measured =
    match Measure.frequency_opt tail with Some f -> f | None -> 0.0
  in
  let freq_ok =
    freq_measured > 0.0 && Float.abs (freq_measured -. f_target) /. f_target < 2e-3
  in
  {
    locked = Float.abs slope < drift_tol && freq_ok;
    freq_measured;
    phase_drift = slope;
    phase_sigma = sigma;
    amplitude = Measure.amplitude tail;
  }

let relative_phase s ~f_target =
  let tail = Signal.tail_fraction s 0.3 in
  let x = Measure.fundamental tail ~freq:f_target in
  Numerics.Angle.wrap_pi (Numerics.Cx.arg x)
