lib/waveform/measure.ml: Array Float List Numerics Signal
