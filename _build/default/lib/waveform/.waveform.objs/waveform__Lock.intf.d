lib/waveform/lock.mli: Signal
