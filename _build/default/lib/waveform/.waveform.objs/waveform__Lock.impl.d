lib/waveform/lock.ml: Array Float Measure Numerics Signal
