lib/waveform/spectrum.ml: Array Float Numerics Signal
