lib/waveform/signal.ml: Array
