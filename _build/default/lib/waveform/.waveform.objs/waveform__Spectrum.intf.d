lib/waveform/spectrum.mli: Signal
