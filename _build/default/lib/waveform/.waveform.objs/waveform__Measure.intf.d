lib/waveform/measure.mli: Numerics Signal
