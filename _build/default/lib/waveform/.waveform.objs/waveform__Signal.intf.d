lib/waveform/signal.mli:
