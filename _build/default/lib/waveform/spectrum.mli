(** FFT-based spectrum estimation. *)

type t = {
  freqs : float array;  (** one-sided frequency bins, Hz *)
  mags : float array;  (** amplitude-normalised magnitudes *)
}

val compute : ?hann:bool -> Signal.t -> t
(** Resamples the signal uniformly onto the next power-of-two grid (the
    transient mesh is already uniform in practice), optionally applies a
    Hann window (default true), and returns the one-sided amplitude
    spectrum (coherent-gain corrected). *)

val compute_many : ?hann:bool -> Signal.t array -> t array
(** Batch {!compute} over independent signals, one pool task per signal
    (each inner {!compute} then runs sequentially); result order matches
    the input order. *)

val dominant : t -> float * float
(** [(frequency, magnitude)] of the largest non-DC bin, with parabolic
    interpolation between bins. *)

val magnitude_at : t -> float -> float
(** Linear interpolation of the magnitude at a frequency. *)
