(** A sampled real signal: paired time and value arrays of equal length,
    times strictly increasing. *)

type t = { times : float array; values : float array }

val make : times:float array -> values:float array -> t
(** Validates lengths and monotonicity. *)

val length : t -> int
val duration : t -> float

val slice : t -> t_min:float -> t_max:float -> t
(** Sub-signal with [t_min <= t <= t_max]; raises [Invalid_argument] when
    empty. *)

val tail_fraction : t -> float -> t
(** [tail_fraction s 0.3] keeps the last 30% of the time span — the usual
    "steady state" window. *)

val value_at : t -> float -> float
(** Linear interpolation; clamped at the ends. *)

val map : (float -> float) -> t -> t
val shift_values : t -> float -> t
(** Adds a constant to every value (DC removal). *)

val mean : t -> float
(** Time-weighted (trapezoid) mean. *)
