(** Natural (free-running) oscillation prediction — §II and §III-A.

    The oscillator oscillates at the tank centre frequency with amplitude
    [A] solving [T_f(A) = -R I_1(A) / (A/2) = 1]; a solution is stable iff
    the [T_f] curve cuts [y = 1] from above ([dT_f/dA < 0]). *)

type solution = {
  a : float;  (** oscillation amplitude, V *)
  slope : float;  (** [dT_f/dA] at the solution *)
  stable : bool;
}

val small_signal_gain : ?points:int -> Nonlinearity.t -> r:float -> float
(** [lim A->0 T_f(A) = -R f'(0)]: start-up condition is [> 1]. *)

val solve :
  ?points:int -> ?a_min:float -> ?a_max:float -> ?scan:int ->
  Nonlinearity.t -> r:float -> solution list
(** All solutions of [T_f(A) = 1] on [[a_min, a_max]] (defaults
    [1e-4 .. 10]), located by scanning [scan] (default 400) intervals and
    refining each bracket with Brent; sorted by amplitude. *)

val predicted_amplitude :
  ?points:int -> ?a_min:float -> ?a_max:float -> ?scan:int ->
  Nonlinearity.t -> r:float -> float option
(** Largest stable solution (the observable steady state), when any. *)

val oscillates : ?points:int -> Nonlinearity.t -> r:float -> bool
(** Start-up check: [small_signal_gain > 1]. *)
