(** Extension beyond the paper: self-consistent n-th-harmonic analysis.

    The paper's model takes the n-th-harmonic drive at the nonlinearity
    input to be the external injection alone. But the nonlinearity's own
    n-th-harmonic current [I_n] also flows through the tank and returns
    as an additional n-th-harmonic voltage [-I_n H(j n w_i)]. For
    odd-symmetric cells at n = 3 this is small (the paper's examples);
    for asymmetric cells at n = 2 it rivals the injection and visibly
    shifts the lock band (see examples/custom_nonlinearity.ml).

    This module closes the loop: the effective harmonic phasor solves the
    fixed point [V = V_inj - I_n(A, V) H(j n w_i)], embedded in the lock
    equations. Unknowns are the injection phase [chi] (relative to the
    pinned fundamental) and the amplitude [A]. *)

type point = {
  chi : float;  (** external injection phase, rad *)
  a : float;
  v_eff : Numerics.Cx.t;  (** effective n-th harmonic phasor at the input *)
  stable : bool;
  trace : float;
  det : float;
}

val effective_v :
  ?points:int -> ?max_iter:int -> ?tol:float -> Nonlinearity.t -> n:int ->
  a:float -> v_inj:Numerics.Cx.t -> h_n:Numerics.Cx.t -> Numerics.Cx.t
(** Fixed-point solve of [V = V_inj - I_n(A, V) h_n]; converges
    geometrically when [|dI_n/dV h_n| < 1] (always, for realistic
    tanks). *)

val find :
  ?points:int -> ?chi_scan:int -> ?a_range:float * float ->
  Nonlinearity.t -> tank:Tank.t -> n:int -> vi:float -> omega_i:float ->
  point list
(** Lock points at the given oscillator frequency, with the harmonic
    feedback included. [a_range] defaults to 25%%–130%% of the natural
    amplitude. *)

val lock_range :
  ?points:int -> ?tol:float -> Nonlinearity.t -> tank:Tank.t -> n:int ->
  vi:float -> Lock_range.t
(** Like {!Lock_range.predict} but self-consistent. The returned
    [at_center] field holds the plain-model points for comparison. *)
