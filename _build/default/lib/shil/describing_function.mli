(** Describing functions: Fourier coefficients of a nonlinearity driven by
    one or two tones — the computational heart of the paper.

    Conventions (paper eq. 1): for input [x(theta)] with fundamental
    period [2 pi] in [theta = w_i t], the current [i = f(x)] has series
    [i = sum_k I_k exp(j k theta)]. A single tone [A cos theta] makes
    every [I_k] real; the two-tone SHIL input
    [A cos theta + 2 V_i cos (n theta + phi)] makes [I_1] complex and a
    function of [(A, V_i, phi)]. *)

val default_points : int
(** Quadrature points per period (1024). Spectral accuracy: doubling the
    count is only needed for extremely sharp nonlinearities. *)

val i1 : ?points:int -> Nonlinearity.t -> a:float -> float
(** Single-tone fundamental coefficient [I_1(A)] — real by symmetry
    (footnote 3 of the paper). *)

val ik : ?points:int -> Nonlinearity.t -> a:float -> k:int -> Numerics.Cx.t
(** Single-tone [k]-th coefficient. *)

val i1_two_tone :
  ?points:int -> Nonlinearity.t -> n:int -> a:float -> vi:float ->
  phi:float -> Numerics.Cx.t
(** [I_1(A, V_i, phi)] for the input
    [A cos theta + 2 V_i cos (n theta + phi)] (Fig. 8). [n >= 1]. *)

val ik_two_tone :
  ?points:int -> Nonlinearity.t -> n:int -> a:float -> vi:float ->
  phi:float -> k:int -> Numerics.Cx.t

val t_f_free : ?points:int -> Nonlinearity.t -> r:float -> a:float -> float
(** Free-running loop gain (eq. 2): [T_f(A) = -R I_1(A) / (A/2)].
    [A > 0]. *)

val t_f : ?points:int -> Nonlinearity.t -> n:int -> r:float -> a:float ->
  vi:float -> phi:float -> float
(** Injected loop gain (eq. 3):
    [T_f(A,V_i,phi) = -R Re(I_1(A,V_i,phi)) / (A/2)]. *)

val t_cap_f :
  ?points:int -> Nonlinearity.t -> n:int -> r:float -> a:float -> vi:float ->
  phi:float -> phi_d:float -> float
(** The magnitude form (eq. 5):
    [T_F = |R I_1 cos(phi_d) / (A/2)|]. *)

val arg_minus_i1 :
  ?points:int -> Nonlinearity.t -> n:int -> a:float -> vi:float ->
  phi:float -> float
(** [angle (-I_1(A, V_i, phi))], the left side of eq. 4. *)
