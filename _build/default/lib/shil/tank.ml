module Cx = Numerics.Cx

type t = { r : float; l : float; c : float }

let make ~r ~l ~c =
  if r <= 0.0 || l <= 0.0 || c <= 0.0 then
    invalid_arg "Tank.make: r, l, c must be positive";
  { r; l; c }

let with_r t r = make ~r ~l:t.l ~c:t.c
let omega_c t = 1.0 /. sqrt (t.l *. t.c)
let f_c t = omega_c t /. (2.0 *. Float.pi)
let q t = t.r *. sqrt (t.c /. t.l)

let beta t omega =
  let wc = omega_c t in
  q t *. ((omega /. wc) -. (wc /. omega))

let h t ~omega =
  let b = beta t omega in
  Cx.div (Cx.of_float t.r) (Cx.make 1.0 b)

let mag t ~omega = Cx.abs (h t ~omega)
let phase t ~omega = -.atan (beta t omega)

let omega_of_phase t ~phi_d =
  if Float.abs phi_d >= Float.pi /. 2.0 then
    invalid_arg "Tank.omega_of_phase: |phi_d| must be < pi/2";
  (* solve Q (w/wc - wc/w) = -tan phi_d for w > 0 *)
  let b = -.tan phi_d /. q t in
  let x = (b +. sqrt ((b *. b) +. 4.0)) /. 2.0 in
  x *. omega_c t

let circle_point _t ~b_center ~phi_d =
  Cx.mul b_center (Cx.scale (cos phi_d) (Cx.exp_j phi_d))

let circle_locus t ~b_center ~n =
  Array.init n (fun k ->
      let phi_d =
        -.(Float.pi /. 2.0)
        +. (Float.pi *. (float_of_int k +. 0.5) /. float_of_int n)
      in
      circle_point t ~b_center ~phi_d)

let pp ppf t =
  Format.fprintf ppf "RLC(R=%g, L=%g, C=%g; fc=%g Hz, Q=%.3g)" t.r t.l t.c
    (f_c t) (q t)
