(** Fundamental-harmonic injection locking: the [n = 1] special case
    (§III-B), plus Adler's classical lock-range estimate as a baseline.

    For FHIL the injection phasor adds directly at the oscillation
    frequency, so the generic SHIL machinery applies with [n = 1]; Adler's
    small-injection formula
    [delta_omega = omega_c / (2 Q) * V_i_total / A] (total single-sided
    half-range) is the widely used first-order baseline the rigorous
    method should reduce to for weak injection. *)

val grid :
  ?points:int -> ?n_phi:int -> ?n_amp:int -> Nonlinearity.t -> r:float ->
  vi:float -> a_range:float * float -> Grid.t
(** Convenience: {!Grid.sample} with [n = 1]. *)

val adler_half_range : tank:Tank.t -> a:float -> vi:float -> float
(** Adler half lock range in Hz (oscillator-referred): [f_c/(2Q) * (2 V_i
    / A)] — [2 V_i] because the injected waveform amplitude is [2 V_i] in
    this paper's phasor convention. *)

val adler_range : tank:Tank.t -> a:float -> vi:float -> float * float
(** [(f_low, f_high)] around the tank centre frequency. *)
