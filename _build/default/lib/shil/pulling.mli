(** Injection pulling: the quasi-lock regime just outside the lock range
    (the phenomenon of [5] in the paper; §I "IL and the related
    phenomenon of injection pulling").

    Outside the lock band the phase error obeys the Adler-type equation
    [dpsi/dt = delta - w_L sin psi] (with [delta] the detuning and [w_L]
    the half lock range, both in oscillator-referred rad/s), whose
    solutions slip cyclically with the classic beat frequency
    [w_beat = sqrt (delta^2 - w_L^2)]. The predicted SHIL lock range
    supplies [w_L], turning the lock-range analysis into a quantitative
    beat-note prediction. *)

val beat_frequency : lock_range:Lock_range.t -> n:int -> f_inj:float -> float
(** Predicted beat frequency (Hz, oscillator-referred) of the slipping
    phase for an injection at [f_inj] outside the band:
    [sqrt (delta^2 - w_L^2) / 2 pi] with [delta] measured from the band
    centre. Returns [0.] inside the band. *)

val measure_beat :
  ?cycles:float -> Nonlinearity.t -> tank:Tank.t -> vi:float -> n:int ->
  f_inj:float -> float
(** Brute-force counterpart: simulate the injected oscillator (reduced
    model) and return the measured mean phase-slip rate (Hz,
    oscillator-referred) against the [f_inj / n] reference. *)
