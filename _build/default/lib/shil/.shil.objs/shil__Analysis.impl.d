lib/shil/analysis.ml: Float Format Grid List Lock_range Natural Nonlinearity Solutions Tank
