lib/shil/contour.mli:
