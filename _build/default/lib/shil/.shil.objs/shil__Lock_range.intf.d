lib/shil/lock_range.mli: Format Grid Solutions Tank
