lib/shil/self_consistent.mli: Lock_range Nonlinearity Numerics Tank
