lib/shil/harmonic_balance.ml: Array Float Natural Nonlinearity Numerics Printf Tank
