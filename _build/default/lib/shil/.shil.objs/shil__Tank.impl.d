lib/shil/tank.ml: Array Float Format Numerics
