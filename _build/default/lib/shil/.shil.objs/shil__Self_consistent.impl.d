lib/shil/self_consistent.ml: Describing_function Float List Lock_range Natural Numerics Tank
