lib/shil/natural.ml: Describing_function List Nonlinearity Numerics
