lib/shil/grid.mli: Nonlinearity Numerics
