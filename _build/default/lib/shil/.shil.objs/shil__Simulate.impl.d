lib/shil/simulate.ml: Array Float Nonlinearity Numerics Tank Waveform
