lib/shil/contour.ml: Array Float List
