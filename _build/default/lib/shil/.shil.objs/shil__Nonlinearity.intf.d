lib/shil/nonlinearity.mli:
