lib/shil/nonlinearity.ml: Array Float Numerics
