lib/shil/fhil.ml: Grid Tank
