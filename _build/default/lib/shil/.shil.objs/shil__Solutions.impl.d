lib/shil/solutions.ml: Array Describing_function Float Fun Grid List Numerics
