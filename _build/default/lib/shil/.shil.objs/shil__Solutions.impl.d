lib/shil/solutions.ml: Array Describing_function Float Grid List Numerics
