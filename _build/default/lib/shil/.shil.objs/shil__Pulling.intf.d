lib/shil/pulling.mli: Lock_range Nonlinearity Tank
