lib/shil/analysis.mli: Format Grid Lock_range Natural Nonlinearity Solutions Tank
