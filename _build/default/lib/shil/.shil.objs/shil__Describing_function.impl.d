lib/shil/describing_function.ml: Float Nonlinearity Numerics
