lib/shil/pulling.ml: Array Float Lock_range Numerics Simulate Waveform
