lib/shil/simulate.mli: Nonlinearity Tank Waveform
