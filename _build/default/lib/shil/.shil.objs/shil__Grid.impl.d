lib/shil/grid.ml: Array Contour Describing_function Float Nonlinearity Numerics
