lib/shil/natural.mli: Nonlinearity
