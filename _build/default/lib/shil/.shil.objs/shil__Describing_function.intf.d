lib/shil/describing_function.mli: Nonlinearity Numerics
