lib/shil/fhil.mli: Grid Nonlinearity Tank
