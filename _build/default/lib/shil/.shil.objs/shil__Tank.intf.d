lib/shil/tank.mli: Format Numerics
