lib/shil/solutions.mli: Grid Nonlinearity
