lib/shil/harmonic_balance.mli: Nonlinearity Numerics Tank
