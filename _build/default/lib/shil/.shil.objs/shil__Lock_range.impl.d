lib/shil/lock_range.ml: Float Format Grid Solutions Tank
