let beat_frequency ~(lock_range : Lock_range.t) ~n ~f_inj =
  let nf = float_of_int n in
  let f_centre = 0.5 *. (lock_range.f_inj_low +. lock_range.f_inj_high) /. nf in
  let half = 0.5 *. lock_range.delta_f_inj /. nf in
  let delta = (f_inj /. nf) -. f_centre in
  if Float.abs delta <= half then 0.0
  else sqrt ((delta *. delta) -. (half *. half))

let measure_beat ?(cycles = 1200.0) nl ~tank ~vi ~n ~f_inj =
  let res =
    Simulate.injected ~cycles nl ~tank ~injection:{ vi; n; f_inj; phase = 0.0 }
  in
  let tail = Waveform.Signal.tail_fraction res.signal 0.6 in
  let f_target = f_inj /. float_of_int n in
  (* many short windows keep each inter-window phase step below pi so the
     unwrap cannot alias even for fast beats *)
  let windows = 400 in
  let phases = Waveform.Measure.phase_vs_reference tail ~freq:f_target ~windows in
  let span = Waveform.Signal.duration tail in
  let ts =
    Array.init windows (fun k ->
        (float_of_int k +. 0.5) *. span /. float_of_int windows)
  in
  let slope, _ = Numerics.Stats.linear_fit ~xs:ts ~ys:phases in
  Float.abs slope /. (2.0 *. Float.pi)
