type segment = { x1 : float; y1 : float; x2 : float; y2 : float }

(* Linear interpolation of the level crossing between two grid corners. *)
let cross v1 v2 c1 c2 level =
  let t = (level -. v1) /. (v2 -. v1) in
  c1 +. (t *. (c2 -. c1))

let segments ~xs ~ys ~field ~level =
  let ni = Array.length xs and nj = Array.length ys in
  if Array.length field <> ni then invalid_arg "Contour.segments: field size";
  let out = ref [] in
  for i = 0 to ni - 2 do
    if Array.length field.(i) <> nj then invalid_arg "Contour.segments: field size";
    for j = 0 to nj - 2 do
      (* corners: a=(i,j) b=(i+1,j) c=(i+1,j+1) d=(i,j+1) *)
      let va = field.(i).(j)
      and vb = field.(i + 1).(j)
      and vc = field.(i + 1).(j + 1)
      and vd = field.(i).(j + 1) in
      if
        Float.is_finite va && Float.is_finite vb && Float.is_finite vc
        && Float.is_finite vd
      then begin
        let xa = xs.(i) and xb = xs.(i + 1) in
        let ya = ys.(j) and yb = ys.(j + 1) in
        let above v = v > level in
        let code =
          (if above va then 1 else 0)
          lor (if above vb then 2 else 0)
          lor (if above vc then 4 else 0)
          lor if above vd then 8 else 0
        in
        (* edge crossing points; evaluated lazily per case *)
        let bottom () = (cross va vb xa xb level, ya) in
        let right () = (xb, cross vb vc ya yb level) in
        let top () = (cross vd vc xa xb level, yb) in
        let left () = (xa, cross va vd ya yb level) in
        let add (x1, y1) (x2, y2) = out := { x1; y1; x2; y2 } :: !out in
        match code with
        | 0 | 15 -> ()
        | 1 | 14 -> add (left ()) (bottom ())
        | 2 | 13 -> add (bottom ()) (right ())
        | 4 | 11 -> add (right ()) (top ())
        | 8 | 7 -> add (top ()) (left ())
        | 3 | 12 -> add (left ()) (right ())
        | 6 | 9 -> add (bottom ()) (top ())
        | 5 | 10 ->
          (* saddle: use the centre average to pick the pairing *)
          let centre = 0.25 *. (va +. vb +. vc +. vd) in
          let centre_above = centre > level in
          if (code = 5) = centre_above then begin
            add (left ()) (top ());
            add (bottom ()) (right ())
          end
          else begin
            add (left ()) (bottom ());
            add (right ()) (top ())
          end
        | _ -> assert false
      end
    done
  done;
  List.rev !out

let filter_segments pred segs =
  List.filter
    (fun s -> pred (0.5 *. (s.x1 +. s.x2), 0.5 *. (s.y1 +. s.y2)))
    segs

(* Chain segments into polylines by greedy endpoint matching. *)
let chain ?(tol = 1e-12) all =
  (* drop degenerate segments (contour through a grid node) - they only
     confuse the endpoint chaining *)
  let significant (s : segment) =
    Float.abs (s.x2 -. s.x1) > 0.0 || Float.abs (s.y2 -. s.y1) > 0.0
  in
  let segs = Array.of_list (List.filter significant all) in
  let n = Array.length segs in
  let used = Array.make n false in
  let close (x1, y1) (x2, y2) =
    Float.abs (x1 -. x2) <= tol && Float.abs (y1 -. y2) <= tol
  in
  let find_next pt =
    let found = ref None in
    let k = ref 0 in
    while !found = None && !k < n do
      if not used.(!k) then begin
        let s = segs.(!k) in
        if close pt (s.x1, s.y1) then found := Some (!k, (s.x2, s.y2))
        else if close pt (s.x2, s.y2) then found := Some (!k, (s.x1, s.y1))
      end;
      incr k
    done;
    !found
  in
  let out = ref [] in
  for start = 0 to n - 1 do
    if not used.(start) then begin
      used.(start) <- true;
      let s = segs.(start) in
      (* grow forward from (x2,y2) and backward from (x1,y1) *)
      let grow pt0 =
        let acc = ref [] and pt = ref pt0 in
        let continue = ref true in
        while !continue do
          match find_next !pt with
          | Some (k, nxt) ->
            used.(k) <- true;
            acc := nxt :: !acc;
            pt := nxt
          | None -> continue := false
        done;
        List.rev !acc
      in
      let fwd = grow (s.x2, s.y2) in
      let bwd = grow (s.x1, s.y1) in
      let pts = List.rev_append bwd ((s.x1, s.y1) :: (s.x2, s.y2) :: fwd) in
      let arr = Array.of_list pts in
      out :=
        (Array.map fst arr, Array.map snd arr) :: !out
    end
  done;
  List.rev !out

let polylines ~xs ~ys ~field ~level =
  let all = segments ~xs ~ys ~field ~level in
  let xspan =
    if Array.length xs >= 2 then Float.abs (xs.(Array.length xs - 1) -. xs.(0))
    else 1.0
  in
  let yspan =
    if Array.length ys >= 2 then Float.abs (ys.(Array.length ys - 1) -. ys.(0))
    else 1.0
  in
  chain ~tol:(1e-7 *. Float.max xspan yspan) all
