let grid ?points ?n_phi ?n_amp nl ~r ~vi ~a_range =
  Grid.sample ?points ?n_phi ?n_amp nl ~n:1 ~r ~vi ~a_range ()

let adler_half_range ~tank ~a ~vi =
  Tank.f_c tank /. (2.0 *. Tank.q tank) *. (2.0 *. vi /. a)

let adler_range ~tank ~a ~vi =
  let half = adler_half_range ~tank ~a ~vi in
  let fc = Tank.f_c tank in
  (fc -. half, fc +. half)
