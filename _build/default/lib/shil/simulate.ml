module Ode = Numerics.Ode

type injection = { vi : float; n : int; f_inj : float; phase : float }

let injection_current ~tank inj =
  2.0 *. inj.vi /. Tank.mag tank ~omega:(2.0 *. Float.pi *. inj.f_inj)

type result = { signal : Waveform.Signal.t; i_l : float array }

let integrate ?(cycles = 300.0) ?(steps_per_cycle = 200) ?(v0 = 1e-3) nl
    ~(tank : Tank.t) ~drive =
  let fc = Tank.f_c tank in
  let r = tank.r and l = tank.l and c = tank.c in
  let f t y =
    let v = y.(0) and il = y.(1) in
    [|
      ((-.v /. r) -. il -. Nonlinearity.eval nl v +. drive t) /. c;
      v /. l;
    |]
  in
  let t1 = cycles /. fc in
  let dt = 1.0 /. (fc *. float_of_int steps_per_cycle) in
  let times, states = Ode.rk4 f ~t0:0.0 ~t1 ~dt ~y0:[| v0; 0.0 |] in
  let vs = Ode.sample ~times ~states ~component:0 in
  let ils = Ode.sample ~times ~states ~component:1 in
  { signal = Waveform.Signal.make ~times ~values:vs; i_l = ils }

let free_run ?cycles ?steps_per_cycle ?v0 nl ~tank =
  integrate ?cycles ?steps_per_cycle ?v0 nl ~tank ~drive:(fun _ -> 0.0)

let injected ?cycles ?steps_per_cycle ?v0 nl ~tank ~injection =
  let im = injection_current ~tank injection in
  let w = 2.0 *. Float.pi *. injection.f_inj in
  let drive t = im *. cos ((w *. t) +. injection.phase) in
  integrate ?cycles ?steps_per_cycle ?v0 nl ~tank ~drive

let locked ?cycles ?steps_per_cycle nl ~tank ~injection =
  let res = injected ?cycles ?steps_per_cycle nl ~tank ~injection in
  let f_target = injection.f_inj /. float_of_int injection.n in
  (Waveform.Lock.analyze res.signal ~f_target).locked

let lock_edge ?(cycles = 800.0) ?tol nl ~tank ~vi ~n ~f_lo ~f_hi ~side =
  let tol = match tol with Some t -> t | None -> 1e-5 *. f_lo in
  let is_locked f_inj =
    locked ~cycles nl ~tank ~injection:{ vi; n; f_inj; phase = 0.0 }
  in
  let want_lo_locked = match side with `Low -> false | `High -> true in
  let lo = ref f_lo and hi = ref f_hi in
  if is_locked !lo <> want_lo_locked then
    invalid_arg "Simulate.lock_edge: bad bracket (low end)";
  if is_locked !hi = want_lo_locked then
    invalid_arg "Simulate.lock_edge: bad bracket (high end)";
  while !hi -. !lo > tol do
    let mid = 0.5 *. (!lo +. !hi) in
    if is_locked mid = want_lo_locked then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)
