module Df = Describing_function
module Roots = Numerics.Roots

type solution = { a : float; slope : float; stable : bool }

(* [?points] is accepted for signature uniformity with the other
   describing-function entry points; the small-signal limit is analytic
   and needs no quadrature. *)
let small_signal_gain ?points:_ nl ~r = -.r *. Nonlinearity.deriv nl 0.0

let solve ?points ?(a_min = 1e-4) ?(a_max = 10.0) ?(scan = 400) nl ~r =
  let g a = Df.t_f_free ?points nl ~r ~a -. 1.0 in
  let roots = Roots.find_all ~f:g ~a:a_min ~b:a_max ~n:scan () in
  List.map
    (fun a ->
      let h = 1e-5 *. (1.0 +. a) in
      let slope = (g (a +. h) -. g (a -. h)) /. (2.0 *. h) in
      { a; slope; stable = slope < 0.0 })
    roots

let predicted_amplitude ?points ?a_min ?a_max ?scan nl ~r =
  let sols = solve ?points ?a_min ?a_max ?scan nl ~r in
  List.fold_left
    (fun acc s -> if s.stable then Some s.a else acc)
    None sols

let oscillates ?points nl ~r = small_signal_gain ?points nl ~r > 1.0
