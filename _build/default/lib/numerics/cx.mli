(** Helpers over the standard [Complex] type.

    Phasor conventions used throughout the project: a real waveform
    [x(t) = 2 * |X| * cos(w t + arg X)] is represented by the one-sided
    phasor [X], i.e. the Fourier-series coefficient of [exp(j w t)]. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val i : t
val make : float -> float -> t
val of_float : float -> t
val polar : float -> float -> t
(** [polar r theta] is the complex number with modulus [r] and argument
    [theta]. *)

val re : t -> float
val im : t -> float
val abs : t -> float
val arg : t -> float
val conj : t -> t
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val scale : float -> t -> t
val exp_j : float -> t
(** [exp_j theta] is [exp (j * theta)]. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [tol] (default
    [1e-9]). *)

val pp : Format.formatter -> t -> unit
(** Prints as [a+bi] with 6 significant digits. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
