(** Angle arithmetic: wrapping, unwrapping and conversions.

    All angles are in radians unless a function name says otherwise. *)

val pi : float
val two_pi : float

val wrap_pi : float -> float
(** [wrap_pi a] maps [a] into [(-pi, pi]]. *)

val wrap_two_pi : float -> float
(** [wrap_two_pi a] maps [a] into [[0, 2*pi)]. *)

val unwrap : float array -> float array
(** [unwrap a] removes jumps larger than [pi] between consecutive samples by
    adding multiples of [2*pi], as MATLAB's [unwrap]. The input is not
    modified. *)

val dist : float -> float -> float
(** [dist a b] is the absolute angular distance between [a] and [b], wrapped
    into [[0, pi]]. *)

val deg_of_rad : float -> float
val rad_of_deg : float -> float

val approx_equal : ?tol:float -> float -> float -> bool
(** [approx_equal a b] is true when the wrapped distance between the two
    angles is below [tol] (default [1e-9]). *)
