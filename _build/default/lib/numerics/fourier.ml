let two_pi = 2.0 *. Float.pi

let coeffs ?(n = 1024) ~f ~kmax () =
  assert (n >= 1 && kmax >= 0);
  let samples = Array.init n (fun s -> f (two_pi *. float_of_int s /. float_of_int n)) in
  Array.init (kmax + 1) (fun k ->
      let re = ref 0.0 and im = ref 0.0 in
      for s = 0 to n - 1 do
        let theta = two_pi *. float_of_int (k * s) /. float_of_int n in
        re := !re +. (samples.(s) *. cos theta);
        im := !im -. (samples.(s) *. sin theta)
      done;
      Cx.make (!re /. float_of_int n) (!im /. float_of_int n))

let coeff ?(n = 1024) ~f ~k () =
  assert (n >= 1);
  let re = ref 0.0 and im = ref 0.0 in
  for s = 0 to n - 1 do
    let phase = two_pi *. float_of_int s /. float_of_int n in
    let v = f phase in
    let theta = float_of_int k *. phase in
    re := !re +. (v *. cos theta);
    im := !im -. (v *. sin theta)
  done;
  Cx.make (!re /. float_of_int n) (!im /. float_of_int n)

let coeff_sampled x ~k =
  let n = Array.length x in
  assert (n >= 1);
  let re = ref 0.0 and im = ref 0.0 in
  for s = 0 to n - 1 do
    let theta = two_pi *. float_of_int (k * s) /. float_of_int n in
    re := !re +. (x.(s) *. cos theta);
    im := !im -. (x.(s) *. sin theta)
  done;
  Cx.make (!re /. float_of_int n) (!im /. float_of_int n)

let of_time_series ~t ~x ~freq ~k =
  let n = Array.length t in
  assert (n = Array.length x && n >= 2);
  let w = two_pi *. freq *. float_of_int k in
  let g i =
    let theta = w *. t.(i) in
    Cx.scale x.(i) (Cx.exp_j (-.theta))
  in
  let acc = ref Cx.zero in
  for i = 0 to n - 2 do
    let dt = t.(i + 1) -. t.(i) in
    acc := Cx.add !acc (Cx.scale (0.5 *. dt) (Cx.add (g i) (g (i + 1))))
  done;
  let span = t.(n - 1) -. t.(0) in
  Cx.scale (1.0 /. span) !acc

let reconstruct cs ~theta =
  let n = Array.length cs in
  if n = 0 then 0.0
  else begin
    let s = ref (Cx.re cs.(0)) in
    for k = 1 to n - 1 do
      s := !s +. (2.0 *. Cx.re (Cx.mul cs.(k) (Cx.exp_j (float_of_int k *. theta))))
    done;
    !s
  end
