(** One-dimensional quadrature.

    The describing-function integrals of the SHIL theory are integrals of
    smooth periodic functions over one period, for which the trapezoidal
    rule converges spectrally; {!periodic} is therefore the workhorse.
    {!adaptive_simpson} covers non-periodic integrands (waveform energy,
    model calibration). *)

val trapezoid : f:(float -> float) -> a:float -> b:float -> n:int -> float
(** Composite trapezoidal rule with [n] intervals ([n >= 1]). *)

val simpson : f:(float -> float) -> a:float -> b:float -> n:int -> float
(** Composite Simpson rule; [n] is rounded up to the next even count. *)

val periodic : f:(float -> float) -> period:float -> n:int -> float
(** [periodic ~f ~period ~n] integrates [f] over [[0, period)] using the
    [n]-point rectangle (= trapezoid, by periodicity) rule. Spectrally
    accurate for smooth periodic [f]. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> f:(float -> float) -> a:float -> b:float ->
  unit -> float
(** Adaptive Simpson quadrature with absolute tolerance [tol] (default
    [1e-10]) and recursion cap [max_depth] (default 50). *)

val romberg : ?levels:int -> f:(float -> float) -> a:float -> b:float -> unit -> float
(** Romberg extrapolation of the trapezoid rule, [levels] refinement steps
    (default 12). *)
