type mat = float array array

let create rows cols = Array.make_matrix rows cols 0.0

let identity n =
  let m = create n n in
  for k = 0 to n - 1 do
    m.(k).(k) <- 1.0
  done;
  m

let copy a = Array.map Array.copy a

let dims a =
  let rows = Array.length a in
  if rows = 0 then (0, 0) else (rows, Array.length a.(0))

let mat_vec a x =
  let rows, cols = dims a in
  assert (cols = Array.length x);
  Array.init rows (fun r ->
      let row = a.(r) in
      let s = ref 0.0 in
      for c = 0 to cols - 1 do
        s := !s +. (row.(c) *. x.(c))
      done;
      !s)

let mat_mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  assert (ca = rb);
  let m = create ra cb in
  for r = 0 to ra - 1 do
    for k = 0 to ca - 1 do
      let aik = a.(r).(k) in
      if aik <> 0.0 then
        for c = 0 to cb - 1 do
          m.(r).(c) <- m.(r).(c) +. (aik *. b.(k).(c))
        done
    done
  done;
  m

let transpose a =
  let rows, cols = dims a in
  Array.init cols (fun c -> Array.init rows (fun r -> a.(r).(c)))

let vec_add x y = Array.mapi (fun k xi -> xi +. y.(k)) x
let vec_sub x y = Array.mapi (fun k xi -> xi -. y.(k)) x
let vec_scale s x = Array.map (fun xi -> s *. xi) x

let dot x y =
  let s = ref 0.0 in
  Array.iteri (fun k xi -> s := !s +. (xi *. y.(k))) x;
  !s

let norm_inf x = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0.0 x
let norm2 x = sqrt (dot x x)

exception Singular

type lu = { lu : mat; perm : int array; sign : float }

let lu_factor a =
  let n, cols = dims a in
  assert (n = cols);
  let m = copy a in
  let perm = Array.init n Fun.id in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* partial pivoting: bring the largest remaining |entry| of column k up *)
    let piv = ref k in
    for r = k + 1 to n - 1 do
      if Float.abs m.(r).(k) > Float.abs m.(!piv).(k) then piv := r
    done;
    if !piv <> k then begin
      let tmp = m.(k) in
      m.(k) <- m.(!piv);
      m.(!piv) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tp;
      sign := -. !sign
    end;
    let pivot = m.(k).(k) in
    if Float.abs pivot < 1e-300 then raise Singular;
    for r = k + 1 to n - 1 do
      let factor = m.(r).(k) /. pivot in
      m.(r).(k) <- factor;
      if factor <> 0.0 then
        for c = k + 1 to n - 1 do
          m.(r).(c) <- m.(r).(c) -. (factor *. m.(k).(c))
        done
    done
  done;
  { lu = m; perm; sign = !sign }

let lu_solve { lu = m; perm; _ } b =
  let n = Array.length perm in
  assert (Array.length b = n);
  let x = Array.init n (fun r -> b.(perm.(r))) in
  for r = 1 to n - 1 do
    let s = ref x.(r) in
    for c = 0 to r - 1 do
      s := !s -. (m.(r).(c) *. x.(c))
    done;
    x.(r) <- !s
  done;
  for r = n - 1 downto 0 do
    let s = ref x.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (m.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. m.(r).(r)
  done;
  x

let lu_det { lu = m; perm; sign } =
  let n = Array.length perm in
  let d = ref sign in
  for k = 0 to n - 1 do
    d := !d *. m.(k).(k)
  done;
  !d

let solve a b = lu_solve (lu_factor a) b

let solve_many a bs =
  let f = lu_factor a in
  List.map (lu_solve f) bs

let solve_complex a b =
  let n = Array.length b in
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    let piv = ref k in
    for r = k + 1 to n - 1 do
      if Cx.abs m.(r).(k) > Cx.abs m.(!piv).(k) then piv := r
    done;
    if !piv <> k then begin
      let tmp = m.(k) in
      m.(k) <- m.(!piv);
      m.(!piv) <- tmp;
      let tb = x.(k) in
      x.(k) <- x.(!piv);
      x.(!piv) <- tb
    end;
    let pivot = m.(k).(k) in
    if Cx.abs pivot < 1e-300 then raise Singular;
    for r = k + 1 to n - 1 do
      let factor = Cx.div m.(r).(k) pivot in
      if Cx.abs factor <> 0.0 then begin
        for c = k to n - 1 do
          m.(r).(c) <- Cx.sub m.(r).(c) (Cx.mul factor m.(k).(c))
        done;
        x.(r) <- Cx.sub x.(r) (Cx.mul factor x.(k))
      end
    done
  done;
  for r = n - 1 downto 0 do
    let s = ref x.(r) in
    for c = r + 1 to n - 1 do
      s := Cx.sub !s (Cx.mul m.(r).(c) x.(c))
    done;
    x.(r) <- Cx.div !s m.(r).(r)
  done;
  x

let residual a x b = norm_inf (vec_sub (mat_vec a x) b)
