let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  assert (n >= 1);
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* In-place iterative radix-2 Cooley-Tukey; [sign] = -1 forward, +1 inverse
   (without the 1/N factor). *)
let radix2_inplace sign (re : float array) (im : float array) =
  let n = Array.length re in
  (* bit reversal permutation *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wr = cos theta and wi = sin theta in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = !i to !i + half - 1 do
        let k2 = k + half in
        let tr = (!cr *. re.(k2)) -. (!ci *. im.(k2)) in
        let ti = (!cr *. im.(k2)) +. (!ci *. re.(k2)) in
        re.(k2) <- re.(k) -. tr;
        im.(k2) <- im.(k) -. ti;
        re.(k) <- re.(k) +. tr;
        im.(k) <- im.(k) +. ti;
        let ncr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := ncr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let of_arrays re im = Array.init (Array.length re) (fun k -> Cx.make re.(k) im.(k))

let radix2 sign x =
  let re = Array.map Cx.re x and im = Array.map Cx.im x in
  radix2_inplace sign re im;
  of_arrays re im

(* Bluestein chirp-z: express an arbitrary-length DFT as a convolution,
   evaluated with power-of-two FFTs. *)
let bluestein sign x =
  let n = Array.length x in
  let m = next_power_of_two ((2 * n) + 1) in
  let chirp =
    Array.init n (fun k ->
        let angle =
          sign *. Float.pi *. float_of_int k *. float_of_int k /. float_of_int n
        in
        Cx.exp_j angle)
  in
  let a = Array.make m Cx.zero in
  for k = 0 to n - 1 do
    a.(k) <- Cx.mul x.(k) chirp.(k)
  done;
  let b = Array.make m Cx.zero in
  b.(0) <- Cx.conj chirp.(0);
  for k = 1 to n - 1 do
    let v = Cx.conj chirp.(k) in
    b.(k) <- v;
    b.(m - k) <- v
  done;
  let fa = radix2 (-1.0) a and fb = radix2 (-1.0) b in
  let prod = Array.init m (fun k -> Cx.mul fa.(k) fb.(k)) in
  let conv = radix2 1.0 prod in
  Array.init n (fun k ->
      Cx.mul (Cx.scale (1.0 /. float_of_int m) conv.(k)) chirp.(k))

let transform sign x =
  let n = Array.length x in
  if n = 0 then [||]
  else if n = 1 then [| x.(0) |]
  else if is_power_of_two n then radix2 sign x
  else bluestein sign x

let dft x = transform (-1.0) x

let idft x =
  let n = Array.length x in
  if n = 0 then [||]
  else Array.map (Cx.scale (1.0 /. float_of_int n)) (transform 1.0 x)

let rdft x = dft (Array.map Cx.of_float x)
let magnitudes x = Array.map Cx.abs x
