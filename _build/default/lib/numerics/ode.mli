(** Initial-value ODE solvers for systems [dy/dt = f t y].

    Used for the reduced (nonlinearity + tank) oscillator model and for the
    PPV baseline: orbit finding, monodromy and adjoint integration. *)

type system = float -> float array -> float array
(** [f t y] returns [dy/dt]; must not retain or mutate [y]. *)

val rk4_step : system -> t:float -> dt:float -> float array -> float array
(** One classical Runge–Kutta 4 step. *)

val rk4 :
  system -> t0:float -> t1:float -> dt:float -> y0:float array ->
  (float array * float array array)
(** [rk4 f ~t0 ~t1 ~dt ~y0] integrates with fixed step (the last step is
    shortened to land on [t1]) and returns [(times, states)] including both
    endpoints. *)

val rk4_final : system -> t0:float -> t1:float -> dt:float -> y0:float array -> float array
(** As {!rk4} but returns only the final state (no trajectory storage). *)

type dopri_stats = { steps : int; rejected : int }

val dopri5 :
  ?rtol:float -> ?atol:float -> ?dt0:float -> ?max_steps:int ->
  system -> t0:float -> t1:float -> y0:float array ->
  (float array * float array array * dopri_stats)
(** Adaptive Dormand–Prince 5(4) with PI step control. Returns the accepted
    mesh, states, and step statistics. Raises [Failure] if [max_steps]
    (default [2_000_000]) is exceeded. *)

val sample :
  times:float array -> states:float array array -> component:int ->
  float array
(** Extracts one state component across a trajectory. *)
