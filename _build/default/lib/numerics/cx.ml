type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let make re im = { re; im }
let of_float re = { re; im = 0.0 }
let polar r theta = Complex.polar r theta
let re z = z.re
let im z = z.im
let abs = Complex.norm
let arg = Complex.arg
let conj = Complex.conj
let neg = Complex.neg
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let scale k z = { re = k *. z.re; im = k *. z.im }
let exp_j theta = { re = cos theta; im = sin theta }

let approx_equal ?(tol = 1e-9) a b =
  Float.abs (a.re -. b.re) <= tol && Float.abs (a.im -. b.im) <= tol

let pp ppf z = Format.fprintf ppf "%.6g%+.6gi" z.re z.im
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
