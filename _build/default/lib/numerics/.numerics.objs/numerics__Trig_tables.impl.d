lib/numerics/trig_tables.ml: Array Float Hashtbl Mutex
