lib/numerics/interp.mli:
