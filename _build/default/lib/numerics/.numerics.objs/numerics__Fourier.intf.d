lib/numerics/fourier.mli: Cx
