lib/numerics/interp.ml: Array Float
