lib/numerics/angle.mli:
