lib/numerics/ode.ml: Array Float List
