lib/numerics/stats.ml: Array Float
