lib/numerics/cx.ml: Complex Float Format
