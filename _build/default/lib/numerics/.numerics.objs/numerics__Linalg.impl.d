lib/numerics/linalg.ml: Array Cx Float Fun List
