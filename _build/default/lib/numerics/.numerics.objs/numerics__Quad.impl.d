lib/numerics/quad.ml: Array Float
