lib/numerics/quad.mli:
