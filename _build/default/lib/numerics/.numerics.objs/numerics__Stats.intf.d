lib/numerics/stats.mli:
