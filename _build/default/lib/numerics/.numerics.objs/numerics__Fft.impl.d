lib/numerics/fft.ml: Array Cx Float
