lib/numerics/linalg.mli: Cx
