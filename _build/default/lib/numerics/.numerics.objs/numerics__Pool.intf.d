lib/numerics/pool.mli:
