lib/numerics/fourier.ml: Array Cx Float
