lib/numerics/fourier.ml: Array Cx Float Trig_tables
