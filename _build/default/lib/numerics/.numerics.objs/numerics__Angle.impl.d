lib/numerics/angle.ml: Array Float
