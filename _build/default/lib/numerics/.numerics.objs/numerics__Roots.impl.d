lib/numerics/roots.ml: Float List
