lib/numerics/fft.mli: Cx
