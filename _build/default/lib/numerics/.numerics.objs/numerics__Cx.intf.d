lib/numerics/cx.mli: Complex Format
