lib/numerics/trig_tables.mli:
