lib/numerics/ode.mli:
