lib/numerics/roots.mli:
