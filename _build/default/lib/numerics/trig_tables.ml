let two_pi = 2.0 *. Float.pi

(* Keyed by (points, harmonic). Every caller of an N-point quadrature at
   harmonic k wants the same table, and a SHIL analysis asks for it
   millions of times (once per describing-function sample), so the cache
   hit rate is effectively 1. Guarded by a mutex because grid rows are
   sampled from worker domains. *)
let cache : (int * int, float array * float array) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()

(* Signals of arbitrary length also land here (coeff_sampled on a
   transient tail), so bound the footprint; a reset is cheap next to
   recomputing one table. *)
let max_entries = 64

let compute ~points ~k =
  let cos_t =
    Array.init points (fun s ->
        cos (two_pi *. float_of_int (k * s) /. float_of_int points))
  and sin_t =
    Array.init points (fun s ->
        sin (two_pi *. float_of_int (k * s) /. float_of_int points))
  in
  (cos_t, sin_t)

let get ~points ~k =
  if points < 1 then invalid_arg "Trig_tables.get: points must be >= 1";
  let key = (points, k) in
  Mutex.lock cache_mutex;
  match Hashtbl.find_opt cache key with
  | Some v ->
    Mutex.unlock cache_mutex;
    v
  | None ->
    (* compute outside the lock; a racing duplicate computes the exact
       same floats, so whichever insertion wins is equivalent *)
    Mutex.unlock cache_mutex;
    let v = compute ~points ~k in
    Mutex.lock cache_mutex;
    if Hashtbl.length cache >= max_entries then Hashtbl.reset cache;
    if not (Hashtbl.mem cache key) then Hashtbl.add cache key v;
    let v' = match Hashtbl.find_opt cache key with Some v' -> v' | None -> v in
    Mutex.unlock cache_mutex;
    v'

let clear () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex
