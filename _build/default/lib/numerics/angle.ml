let pi = Float.pi
let two_pi = 2.0 *. Float.pi

let wrap_two_pi a =
  let r = Float.rem a two_pi in
  if r < 0.0 then r +. two_pi else r

let wrap_pi a =
  let r = wrap_two_pi a in
  if r > pi then r -. two_pi else r

let unwrap a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n a.(0) in
    let offset = ref 0.0 in
    for i = 1 to n - 1 do
      let d = a.(i) -. a.(i - 1) in
      if d > pi then offset := !offset -. two_pi
      else if d < -.pi then offset := !offset +. two_pi;
      out.(i) <- a.(i) +. !offset
    done;
    out
  end

let dist a b = Float.abs (wrap_pi (a -. b))
let deg_of_rad a = a *. 180.0 /. pi
let rad_of_deg a = a *. pi /. 180.0
let approx_equal ?(tol = 1e-9) a b = dist a b <= tol
