let trapezoid ~f ~a ~b ~n =
  assert (n >= 1);
  let h = (b -. a) /. float_of_int n in
  let s = ref (0.5 *. (f a +. f b)) in
  for k = 1 to n - 1 do
    s := !s +. f (a +. (float_of_int k *. h))
  done;
  !s *. h

let simpson ~f ~a ~b ~n =
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (b -. a) /. float_of_int n in
  let s = ref (f a +. f b) in
  for k = 1 to n - 1 do
    let w = if k mod 2 = 1 then 4.0 else 2.0 in
    s := !s +. (w *. f (a +. (float_of_int k *. h)))
  done;
  !s *. h /. 3.0

let periodic ~f ~period ~n =
  assert (n >= 1);
  let h = period /. float_of_int n in
  let s = ref 0.0 in
  for k = 0 to n - 1 do
    s := !s +. f (float_of_int k *. h)
  done;
  !s *. h

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 50) ~f ~a ~b () =
  let simpson_3 a fa b fb =
    let m = 0.5 *. (a +. b) in
    let fm = f m in
    (m, fm, (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb))
  in
  let rec go a fa b fb m fm whole tol depth =
    let lm, flm, left = simpson_3 a fa m fm in
    let rm, frm, right = simpson_3 m fm b fb in
    let delta = left +. right -. whole in
    if depth >= max_depth || Float.abs delta <= 15.0 *. tol then
      left +. right +. (delta /. 15.0)
    else
      go a fa m fm lm flm left (tol /. 2.0) (depth + 1)
      +. go m fm b fb rm frm right (tol /. 2.0) (depth + 1)
  in
  let fa = f a and fb = f b in
  let m, fm, whole = simpson_3 a fa b fb in
  go a fa b fb m fm whole tol 0

let romberg ?(levels = 12) ~f ~a ~b () =
  let r = Array.make_matrix (levels + 1) (levels + 1) 0.0 in
  r.(0).(0) <- 0.5 *. (b -. a) *. (f a +. f b);
  let h = ref (b -. a) in
  for i = 1 to levels do
    h := !h /. 2.0;
    (* trapezoid refinement: add midpoints of the previous level *)
    let count = 1 lsl (i - 1) in
    let s = ref 0.0 in
    for k = 1 to count do
      s := !s +. f (a +. ((float_of_int ((2 * k) - 1)) *. !h))
    done;
    r.(i).(0) <- (0.5 *. r.(i - 1).(0)) +. (!h *. !s);
    for j = 1 to i do
      let pow = Float.pow 4.0 (float_of_int j) in
      r.(i).(j) <-
        ((pow *. r.(i).(j - 1)) -. r.(i - 1).(j - 1)) /. (pow -. 1.0)
    done
  done;
  r.(levels).(levels)
