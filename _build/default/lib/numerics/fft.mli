(** Discrete Fourier transforms.

    Radix-2 Cooley–Tukey for power-of-two lengths, Bluestein's chirp-z
    algorithm for everything else, so {!dft} accepts any length. Forward
    transform convention: [X[k] = sum_n x[n] exp(-2 pi j k n / N)] (no
    normalisation); {!idft} divides by [N]. *)

val dft : Cx.t array -> Cx.t array
val idft : Cx.t array -> Cx.t array

val rdft : float array -> Cx.t array
(** [rdft x] is [dft] of the real signal [x] (full spectrum, length [n]). *)

val magnitudes : Cx.t array -> float array

val is_power_of_two : int -> bool

val next_power_of_two : int -> int
(** Smallest power of two [>= n] (for [n >= 1]). *)
