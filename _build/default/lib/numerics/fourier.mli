(** Fourier-series coefficients of periodic functions and sampled signals.

    Convention: for a real periodic signal [x(t)] of angular frequency [w],
    [coeff k] is the two-sided Fourier-series coefficient [X_k] in
    [x(t) = sum_k X_k exp(j k w t)], so the real waveform
    [2 |X_1| cos(w t + arg X_1)] is the fundamental component and
    [X_{-k} = conj X_k]. This is exactly the [I_k] of the paper (eq. 1). *)

val coeff : ?n:int -> f:(float -> float) -> k:int -> unit -> Cx.t
(** [coeff ~f ~k ()] is the [k]-th Fourier coefficient of the 2π-periodic
    function [f] of phase [theta], computed with [n]-point (default 1024)
    periodic trapezoid quadrature:
    [X_k = 1/2π ∫ f(θ) exp(-j k θ) dθ]. *)

val coeffs : ?n:int -> f:(float -> float) -> kmax:int -> unit -> Cx.t array
(** [coeffs ~f ~kmax ()] is [[|X_0; X_1; ...; X_kmax|]], sharing the [n]
    samples of [f] across all harmonics. *)

val coeff_sampled : float array -> k:int -> Cx.t
(** [coeff_sampled x ~k] treats [x] as [n] uniform samples over exactly one
    period and returns [X_k]. *)

val of_time_series :
  t:float array -> x:float array -> freq:float -> k:int -> Cx.t
(** [of_time_series ~t ~x ~freq ~k] estimates the [k]-th coefficient of a
    (possibly non-uniformly sampled) signal assumed periodic with frequency
    [freq], by trapezoid integration of [x(t) exp(-j k 2π freq t)] over the
    span of [t], normalised by that span. The span should cover an integer
    number of periods for best accuracy. *)

val reconstruct : Cx.t array -> theta:float -> float
(** [reconstruct cs ~theta] evaluates the real series
    [X_0 + sum_{k>=1} 2 Re (X_k exp(j k θ))] where [cs.(k) = X_k]. *)
