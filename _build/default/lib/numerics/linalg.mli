(** Small dense linear algebra: the workhorse of the MNA circuit solver.

    Matrices are dense [float array array] in row-major layout; all
    operations allocate fresh results unless documented otherwise. Sizes are
    the handful-of-nodes systems that lumped circuits produce, so no blocking
    or pivot-growth heroics are attempted beyond partial pivoting. *)

type mat = float array array

val create : int -> int -> mat
(** [create rows cols] is a zero matrix. *)

val identity : int -> mat
val copy : mat -> mat
val dims : mat -> int * int

val mat_vec : mat -> float array -> float array
val mat_mul : mat -> mat -> mat
val transpose : mat -> mat

val vec_add : float array -> float array -> float array
val vec_sub : float array -> float array -> float array
val vec_scale : float -> float array -> float array
val dot : float array -> float array -> float
val norm_inf : float array -> float
val norm2 : float array -> float

exception Singular
(** Raised by factorisations and solvers when a pivot underflows. *)

type lu
(** A packed LU factorisation with partial pivoting. *)

val lu_factor : mat -> lu
(** [lu_factor a] factorises a copy of [a]. Raises {!Singular} if a pivot
    magnitude falls below [1e-300]. *)

val lu_solve : lu -> float array -> float array
val lu_det : lu -> float

val solve : mat -> float array -> float array
(** [solve a b] solves [a x = b] by LU with partial pivoting. *)

val solve_many : mat -> float array list -> float array list
(** Solves against several right-hand sides with a single factorisation. *)

val solve_complex : Cx.t array array -> Cx.t array -> Cx.t array
(** Complex Gaussian elimination with partial pivoting (by modulus); used by
    small-signal AC analysis. *)

val residual : mat -> float array -> float array -> float
(** [residual a x b] is [||a x - b||_inf]. *)
