type t = { d0 : float; d1 : float; r0 : float; r1 : float }

let widen (d0, d1) =
  if d0 <> d1 then (d0, d1)
  else begin
    let pad = if d0 = 0.0 then 1.0 else 0.1 *. Float.abs d0 in
    (d0 -. pad, d1 +. pad)
  end

let make ~domain ~range =
  let d0, d1 = widen domain in
  let r0, r1 = range in
  { d0; d1; r0; r1 }

let apply { d0; d1; r0; r1 } x = r0 +. ((x -. d0) /. (d1 -. d0) *. (r1 -. r0))
let invert { d0; d1; r0; r1 } p = d0 +. ((p -. r0) /. (r1 -. r0) *. (d1 -. d0))
let domain { d0; d1; _ } = (d0, d1)

let nice_step raw =
  (* snap to 1/2/5 x 10^k *)
  let mag = Float.pow 10.0 (Float.floor (Float.log10 raw)) in
  let frac = raw /. mag in
  let snapped =
    if frac <= 1.0 then 1.0
    else if frac <= 2.0 then 2.0
    else if frac <= 5.0 then 5.0
    else 10.0
  in
  snapped *. mag

let nice_ticks ~lo ~hi ~count =
  if lo = hi || count < 1 then [ lo ]
  else begin
    let lo, hi = if lo < hi then (lo, hi) else (hi, lo) in
    let step = nice_step ((hi -. lo) /. float_of_int count) in
    let first = Float.ceil (lo /. step) *. step in
    let rec go x acc =
      if x > hi +. (step *. 1e-9) then List.rev acc
      else go (x +. step) ((if Float.abs x < step *. 1e-9 then 0.0 else x) :: acc)
    in
    go first []
  end

let tick_label v =
  let a = Float.abs v in
  if v = 0.0 then "0"
  else if a >= 1e6 || a < 1e-4 then Printf.sprintf "%.2e" v
  else begin
    let s = Printf.sprintf "%.6g" v in
    s
  end
