type color = { r : int; g : int; b : int }

let black = { r = 20; g = 20; b = 20 }
let red = { r = 204; g = 37; b = 41 }
let blue = { r = 57; g = 106; b = 177 }
let green = { r = 62; g = 150; b = 81 }
let orange = { r = 218; g = 124; b = 48 }
let purple = { r = 107; g = 76; b = 154 }
let gray = { r = 140; g = 140; b = 140 }

type line_style = { color : color; width : float; dash : float list }

let solid ?(width = 1.5) color = { color; width; dash = [] }
let dashed ?(width = 1.5) color = { color; width; dash = [ 6.0; 4.0 ] }

type marker = Circle | Cross | Square

type series =
  | Line of { xs : float array; ys : float array; style : line_style; label : string option }
  | Scatter of { xs : float array; ys : float array; marker : marker; color : color; size : float; label : string option }
  | Polylines of { curves : (float array * float array) list; style : line_style; label : string option }
  | Hline of { y : float; style : line_style }
  | Vline of { x : float; style : line_style }
  | Text of { x : float; y : float; text : string; color : color }

type t = {
  title : string;
  xlabel : string;
  ylabel : string;
  x_range : (float * float) option;
  y_range : (float * float) option;
  series : series list;
}

let create ?(title = "") ?(xlabel = "") ?(ylabel = "") () =
  { title; xlabel; ylabel; x_range = None; y_range = None; series = [] }

let with_x_range t r = { t with x_range = Some r }
let with_y_range t r = { t with y_range = Some r }
let push t s = { t with series = t.series @ [ s ] }

let add_line ?label ?(style = solid blue) t ~xs ~ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Fig.add_line: length mismatch";
  push t (Line { xs; ys; style; label })

let add_fun ?label ?(style = solid blue) ?(n = 256) t ~f ~a ~b =
  let xs = Array.init n (fun i -> a +. ((b -. a) *. float_of_int i /. float_of_int (n - 1))) in
  let ys = Array.map f xs in
  push t (Line { xs; ys; style; label })

let add_scatter ?label ?(marker = Circle) ?(color = red) ?(size = 3.0) t ~xs ~ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Fig.add_scatter: length mismatch";
  push t (Scatter { xs; ys; marker; color; size; label })

let add_polylines ?label ?(style = solid green) t ~curves =
  push t (Polylines { curves; style; label })

let add_hline ?(style = dashed gray) t ~y = push t (Hline { y; style })
let add_vline ?(style = dashed gray) t ~x = push t (Vline { x; style })
let add_text ?(color = black) t ~x ~y ~text = push t (Text { x; y; text; color })

let finite v = Float.is_finite v

let data_bounds t =
  let xlo = ref infinity and xhi = ref neg_infinity in
  let ylo = ref infinity and yhi = ref neg_infinity in
  let see_x x = if finite x then begin xlo := Float.min !xlo x; xhi := Float.max !xhi x end in
  let see_y y = if finite y then begin ylo := Float.min !ylo y; yhi := Float.max !yhi y end in
  let see_arrays xs ys =
    Array.iter see_x xs;
    Array.iter see_y ys
  in
  let see = function
    | Line { xs; ys; _ } | Scatter { xs; ys; _ } -> see_arrays xs ys
    | Polylines { curves; _ } -> List.iter (fun (xs, ys) -> see_arrays xs ys) curves
    | Hline { y; _ } -> see_y y
    | Vline { x; _ } -> see_x x
    | Text { x; y; _ } ->
      see_x x;
      see_y y
  in
  List.iter see t.series;
  let default lo hi = if !lo > !hi then (0.0, 1.0) else (!lo, !hi) in
  let xb = match t.x_range with Some r -> r | None -> default xlo xhi in
  let yb = match t.y_range with Some r -> r | None -> default ylo yhi in
  (xb, yb)
