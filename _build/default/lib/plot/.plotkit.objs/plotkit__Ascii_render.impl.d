lib/plot/ascii_render.ml: Array Buffer Fig Float List Printf Scale String
