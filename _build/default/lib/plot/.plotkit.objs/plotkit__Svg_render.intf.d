lib/plot/svg_render.mli: Fig
