lib/plot/fig.ml: Array Float List
