lib/plot/fig.mli:
