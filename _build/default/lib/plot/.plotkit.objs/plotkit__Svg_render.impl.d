lib/plot/svg_render.ml: Array Buffer Fig Filename Float Fun List Printf Scale String Sys
