lib/plot/scale.mli:
