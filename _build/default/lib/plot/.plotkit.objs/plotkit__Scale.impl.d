lib/plot/scale.ml: Float List Printf
