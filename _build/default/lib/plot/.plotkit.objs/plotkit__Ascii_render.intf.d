lib/plot/ascii_render.mli: Fig
