(** Axis scaling: data-to-pixel mapping and "nice" tick generation. *)

type t
(** A linear mapping from a data interval to a pixel interval. *)

val make : domain:float * float -> range:float * float -> t
(** [make ~domain:(d0, d1) ~range:(r0, r1)]: maps [d0 -> r0], [d1 -> r1].
    A degenerate domain ([d0 = d1]) is widened by 1 (or 10% of magnitude)
    so the mapping stays well defined. *)

val apply : t -> float -> float
val invert : t -> float -> float
val domain : t -> float * float

val nice_ticks : lo:float -> hi:float -> count:int -> float list
(** Round tick positions covering [[lo, hi]] at 1/2/5×10^k spacing, aiming
    for about [count] ticks. *)

val tick_label : float -> string
(** Compact label: trims trailing zeros, switches to scientific notation
    outside [1e-4, 1e6). *)
