(** SVG renderer for {!Fig.t}. *)

val to_string : ?width:int -> ?height:int -> Fig.t -> string
(** Renders a complete standalone SVG document (default 640x480). Axes,
    ticks, labels and a legend (when any series is labelled) are drawn
    automatically; data is clipped to the plot area. *)

val write_file : ?width:int -> ?height:int -> path:string -> Fig.t -> unit
(** Writes {!to_string} output to [path], creating parent directories as
    needed. *)
