(** Terminal renderer for {!Fig.t}: a coarse character-cell plot, handy for
    CLI output and quick looks at describing-function curves. *)

val to_string : ?cols:int -> ?rows:int -> Fig.t -> string
(** Renders into a [cols] x [rows] character grid (default 72 x 24) with a
    simple frame and min/max annotations. Different series cycle through
    the glyphs [*, +, o, x, #, @]. *)

val print : ?cols:int -> ?rows:int -> Fig.t -> unit
(** [to_string] to stdout. *)
