let css_color (c : Fig.color) = Printf.sprintf "rgb(%d,%d,%d)" c.r c.g c.b

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dash_attr (st : Fig.line_style) =
  match st.dash with
  | [] -> ""
  | ds ->
    Printf.sprintf " stroke-dasharray=\"%s\""
      (String.concat "," (List.map (Printf.sprintf "%g") ds))

let style_attrs (st : Fig.line_style) =
  Printf.sprintf "stroke=\"%s\" stroke-width=\"%g\" fill=\"none\"%s"
    (css_color st.color) st.width (dash_attr st)

(* Emit one <polyline> per finite run of points (NaN/inf break the line). *)
let add_polyline buf xscale yscale style xs ys =
  let n = Array.length xs in
  let runs = ref [] and cur = ref [] in
  for i = 0 to n - 1 do
    let x = xs.(i) and y = ys.(i) in
    if Float.is_finite x && Float.is_finite y then
      cur := (Scale.apply xscale x, Scale.apply yscale y) :: !cur
    else begin
      if !cur <> [] then runs := List.rev !cur :: !runs;
      cur := []
    end
  done;
  if !cur <> [] then runs := List.rev !cur :: !runs;
  List.iter
    (fun run ->
      if List.length run >= 2 then begin
        Buffer.add_string buf "<polyline points=\"";
        List.iter
          (fun (x, y) ->
            Buffer.add_string buf (Printf.sprintf "%.2f,%.2f " x y))
          run;
        Buffer.add_string buf (Printf.sprintf "\" %s/>\n" (style_attrs style))
      end)
    (List.rev !runs)

let marker_svg marker color size x y =
  match (marker : Fig.marker) with
  | Circle ->
    Printf.sprintf "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%g\" fill=\"%s\"/>\n" x y
      size (css_color color)
  | Square ->
    Printf.sprintf
      "<rect x=\"%.2f\" y=\"%.2f\" width=\"%g\" height=\"%g\" fill=\"%s\"/>\n"
      (x -. size) (y -. size) (2.0 *. size) (2.0 *. size) (css_color color)
  | Cross ->
    Printf.sprintf
      "<path d=\"M %.2f %.2f L %.2f %.2f M %.2f %.2f L %.2f %.2f\" \
       stroke=\"%s\" stroke-width=\"1.5\"/>\n"
      (x -. size) (y -. size) (x +. size) (y +. size) (x -. size) (y +. size)
      (x +. size) (y -. size) (css_color color)

let legend_entries (fig : Fig.t) =
  List.filter_map
    (fun s ->
      match (s : Fig.series) with
      | Line { label = Some l; style; _ } -> Some (l, style.color)
      | Scatter { label = Some l; color; _ } -> Some (l, color)
      | Polylines { label = Some l; style; _ } -> Some (l, style.color)
      | Line _ | Scatter _ | Polylines _ | Hline _ | Vline _ | Text _ -> None)
    fig.series

let to_string ?(width = 640) ?(height = 480) (fig : Fig.t) =
  let margin_left = 70.0
  and margin_right = 20.0
  and margin_top = if fig.title = "" then 20.0 else 40.0
  and margin_bottom = 55.0 in
  let w = float_of_int width and h = float_of_int height in
  let px0 = margin_left and px1 = w -. margin_right in
  let py0 = h -. margin_bottom and py1 = margin_top in
  let (xlo, xhi), (ylo, yhi) = Fig.data_bounds fig in
  let pad lo hi =
    if lo = hi then (lo -. 1.0, hi +. 1.0)
    else (lo -. (0.03 *. (hi -. lo)), hi +. (0.03 *. (hi -. lo)))
  in
  let xlo, xhi = match fig.x_range with Some (a, b) -> (a, b) | None -> pad xlo xhi in
  let ylo, yhi = match fig.y_range with Some (a, b) -> (a, b) | None -> pad ylo yhi in
  let xscale = Scale.make ~domain:(xlo, xhi) ~range:(px0, px1) in
  let yscale = Scale.make ~domain:(ylo, yhi) ~range:(py0, py1) in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"Helvetica,Arial,sans-serif\">\n\
        <rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
       width height width height width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<defs><clipPath id=\"plotarea\"><rect x=\"%.1f\" y=\"%.1f\" \
        width=\"%.1f\" height=\"%.1f\"/></clipPath></defs>\n"
       px0 py1 (px1 -. px0) (py0 -. py1));
  let xticks = Scale.nice_ticks ~lo:xlo ~hi:xhi ~count:8 in
  let yticks = Scale.nice_ticks ~lo:ylo ~hi:yhi ~count:8 in
  List.iter
    (fun tx ->
      let px = Scale.apply xscale tx in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
            stroke=\"#e0e0e0\"/>\n"
           px py0 px py1);
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" \
            text-anchor=\"middle\">%s</text>\n"
           px (py0 +. 16.0)
           (escape (Scale.tick_label tx))))
    xticks;
  List.iter
    (fun ty ->
      let py = Scale.apply yscale ty in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
            stroke=\"#e0e0e0\"/>\n"
           px0 py px1 py);
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" \
            text-anchor=\"end\">%s</text>\n"
           (px0 -. 6.0) (py +. 4.0)
           (escape (Scale.tick_label ty))))
    yticks;
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
        fill=\"none\" stroke=\"black\"/>\n"
       px0 py1 (px1 -. px0) (py0 -. py1));
  Buffer.add_string buf "<g clip-path=\"url(#plotarea)\">\n";
  let draw_series (s : Fig.series) =
    match s with
    | Line { xs; ys; style; _ } -> add_polyline buf xscale yscale style xs ys
    | Polylines { curves; style; _ } ->
      List.iter (fun (xs, ys) -> add_polyline buf xscale yscale style xs ys) curves
    | Scatter { xs; ys; marker; color; size; _ } ->
      Array.iteri
        (fun i x ->
          let y = ys.(i) in
          if Float.is_finite x && Float.is_finite y then
            Buffer.add_string buf
              (marker_svg marker color size (Scale.apply xscale x)
                 (Scale.apply yscale y)))
        xs
    | Hline { y; style } ->
      let py = Scale.apply yscale y in
      Buffer.add_string buf
        (Printf.sprintf "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" %s/>\n"
           px0 py px1 py (style_attrs style))
    | Vline { x; style } ->
      let px = Scale.apply xscale x in
      Buffer.add_string buf
        (Printf.sprintf "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" %s/>\n"
           px py0 px py1 (style_attrs style))
    | Text { x; y; text; color } ->
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" fill=\"%s\">%s</text>\n"
           (Scale.apply xscale x) (Scale.apply yscale y) (css_color color)
           (escape text))
  in
  List.iter draw_series fig.series;
  Buffer.add_string buf "</g>\n";
  if fig.title <> "" then
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"22\" font-size=\"14\" font-weight=\"bold\" \
          text-anchor=\"middle\">%s</text>\n"
         (0.5 *. (px0 +. px1))
         (escape fig.title));
  if fig.xlabel <> "" then
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"%.1f\" font-size=\"12\" \
          text-anchor=\"middle\">%s</text>\n"
         (0.5 *. (px0 +. px1))
         (h -. 12.0) (escape fig.xlabel));
  if fig.ylabel <> "" then
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"16\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\" \
          transform=\"rotate(-90 16 %.1f)\">%s</text>\n"
         (0.5 *. (py0 +. py1))
         (0.5 *. (py0 +. py1))
         (escape fig.ylabel));
  let entries = legend_entries fig in
  if entries <> [] then begin
    let lx = px1 -. 150.0 and ly = ref (py1 +. 14.0) in
    List.iter
      (fun (label, color) ->
        Buffer.add_string buf
          (Printf.sprintf
             "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
              stroke=\"%s\" stroke-width=\"2\"/>\n\
              <text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%s</text>\n"
             lx !ly (lx +. 22.0) !ly (css_color color) (lx +. 28.0) (!ly +. 4.0)
             (escape label));
        ly := !ly +. 16.0)
      entries
  end;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_file ?width ?height ~path fig =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?width ?height fig))
