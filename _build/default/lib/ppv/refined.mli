(** Orbit-corrected lock-range prediction: an extension combining the
    paper's graphical method with the exact free-running frequency.

    The describing-function analysis assumes the oscillator free-runs at
    the tank centre frequency [f_c]; harmonic currents detune the real
    oscillation to [f_0 != f_c] (Groszkowski). The lock band's WIDTH is
    predicted accurately either way, but its CENTRE tracks [f_0]. This
    module computes [f_0] from the periodic orbit (shooting) and rescales
    the predicted band by [f_0 / f_c] — for asymmetric cells this removes
    nearly all of the residual error against brute-force simulation (see
    the A2 ablation in bench/main.ml). *)

val free_running_frequency :
  ?settle_periods:float -> Shil.Nonlinearity.t -> tank:Shil.Tank.t -> float
(** Exact free-running frequency of the reduced model, from the shooting
    orbit. *)

val recenter : Shil.Lock_range.t -> f0:float -> tank:Shil.Tank.t -> Shil.Lock_range.t
(** Scales all band edges by [f0 /. f_c tank]. *)

val lock_range :
  ?points:int -> Shil.Nonlinearity.t -> tank:Shil.Tank.t -> n:int ->
  vi:float -> Shil.Lock_range.t
(** Plain graphical prediction ({!Shil.Lock_range.predict}) recentred at
    the orbit frequency. *)
