lib/ppv/orbit.mli: Numerics
