lib/ppv/refined.ml: Array Orbit Shil
