lib/ppv/lock_baseline.mli: Format Shil
