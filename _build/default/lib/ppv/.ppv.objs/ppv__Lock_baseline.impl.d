lib/ppv/lock_baseline.ml: Array Float Format Numerics Orbit Sensitivity Shil
