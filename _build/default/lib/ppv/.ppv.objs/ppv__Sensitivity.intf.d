lib/ppv/sensitivity.mli: Numerics Orbit
