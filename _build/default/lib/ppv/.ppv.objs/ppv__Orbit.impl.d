lib/ppv/orbit.ml: Array Float Numerics
