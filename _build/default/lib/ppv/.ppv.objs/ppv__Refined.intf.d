lib/ppv/refined.mli: Shil
