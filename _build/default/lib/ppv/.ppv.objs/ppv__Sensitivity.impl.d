lib/ppv/sensitivity.ml: Array Float Numerics Orbit Printf
