type t = {
  f0 : float;
  vn_mag : float;
  f_inj_low : float;
  f_inj_high : float;
  delta_f_inj : float;
  floquet_mu : float;
  ppv_norm_error : float;
}

let predict ?(settle_periods = 300.0) nl ~tank ~n ~vi =
  let { Shil.Tank.r; l; c } = tank in
  let f_sys _t y =
    let v = y.(0) and il = y.(1) in
    [| ((-.v /. r) -. il -. Shil.Nonlinearity.eval nl v) /. c; v /. l |]
  in
  let period_estimate = 1.0 /. Shil.Tank.f_c tank in
  let orbit =
    Orbit.from_transient ~settle_periods ~f:f_sys ~x_start:[| 1e-3; 0.0 |]
      ~period_estimate ()
  in
  let ppv = Sensitivity.compute ~f:f_sys orbit in
  let f0 = 1.0 /. orbit.Orbit.period in
  let w0 = 2.0 *. Float.pi *. f0 in
  let vn = Sensitivity.fourier_component ppv ~component:0 ~k:n in
  let vn_mag = Numerics.Cx.abs vn in
  let i_m =
    2.0 *. vi /. Shil.Tank.mag tank ~omega:(float_of_int n *. w0)
  in
  (* half lock range (injection-referred, rad/s): n w0 (I_m / C) |V_n| *)
  let half = float_of_int n *. w0 *. i_m /. c *. vn_mag /. (2.0 *. Float.pi) in
  let f_center = float_of_int n *. f0 in
  {
    f0;
    vn_mag;
    f_inj_low = f_center -. half;
    f_inj_high = f_center +. half;
    delta_f_inj = 2.0 *. half;
    floquet_mu = ppv.Sensitivity.floquet_mu;
    ppv_norm_error = Sensitivity.normalization_error ppv;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>PPV baseline: f0 = %.8g Hz, |V_%s| = %.6g@,\
     injection band [%.8g, %.8g] Hz (delta = %.6g Hz)@,\
     floquet mu = %.4g, PPV normalisation error = %.3g@]"
    t.f0 "n" t.vn_mag t.f_inj_low t.f_inj_high t.delta_f_inj t.floquet_mu
    t.ppv_norm_error
