(** Generalized-Adler SHIL lock-range estimate from the PPV — the
    baseline theory ([17] in the paper) the rigorous graphical method is
    compared against.

    For a current injection [i(t) = I_m cos(w_inj t)] into the tank
    capacitor node with [w_inj ~ n w_0], the averaged phase model is
    [psi' = delta - n w_0 (I_m / C) |V_n| cos(psi - arg V_n)]
    where [V_n] is the n-th Fourier coefficient of the voltage component
    of the PPV; locking requires
    [|delta| <= n w_0 (I_m / C) |V_n|] (injection-referred). First-order
    in the injection, so accurate for weak injection only — which is
    exactly the regime where the paper's rigorous method and the PPV
    baseline should agree. *)

type t = {
  f0 : float;  (** free-running frequency from the orbit (Hz) *)
  vn_mag : float;  (** |V_n| of the PPV voltage component *)
  f_inj_low : float;
  f_inj_high : float;
  delta_f_inj : float;  (** total injection-referred lock range (Hz) *)
  floquet_mu : float;  (** orbit-stability multiplier, for diagnostics *)
  ppv_norm_error : float;
}

val predict :
  ?settle_periods:float -> Shil.Nonlinearity.t -> tank:Shil.Tank.t ->
  n:int -> vi:float -> t
(** Builds the reduced oscillator ODE from [nl] and [tank], finds the
    orbit, computes the PPV and evaluates the generalized-Adler range for
    the same injection convention as {!Shil.Simulate} ([I_m = 2 vi /
    |H(j n w0)|]). *)

val pp : Format.formatter -> t -> unit
