type params = { g0 : float; isat : float; r : float; l : float; c : float }

let default =
  let fc = 1e6 in
  let wc = 2.0 *. Float.pi *. fc in
  let z0 = 100.0 in
  { g0 = 2e-3; isat = 1e-3; r = 1e3; l = z0 /. wc; c = 1.0 /. (z0 *. wc) }

let nonlinearity p = Shil.Nonlinearity.neg_tanh ~g0:p.g0 ~isat:p.isat
let tank p = Shil.Tank.make ~r:p.r ~l:p.l ~c:p.c

let oscillator p : Shil.Analysis.oscillator =
  { nl = nonlinearity p; tank = tank p }

let circuit ?injection ?(kick = 1e-5) p =
  let nl = nonlinearity p in
  let fc = Shil.Tank.f_c (tank p) in
  let base =
    [
      Spice.Device.Resistor { name = "Rtank"; n1 = "t"; n2 = "0"; r = p.r };
      Spice.Device.Inductor { name = "Ltank"; n1 = "t"; n2 = "0"; l = p.l; ic = None };
      Spice.Device.Capacitor { name = "Ctank"; n1 = "t"; n2 = "0"; c = p.c; ic = None };
      Spice.Device.Nonlinear_cs
        {
          name = "Gneg";
          np = "t";
          nn = "0";
          f = Shil.Nonlinearity.eval nl;
          df = Some (Shil.Nonlinearity.deriv nl);
        };
      Spice.Device.Isource
        {
          name = "Ikick";
          np = "0";
          nn = "t";
          wave =
            Spice.Wave.Pulse
              {
                v1 = 0.0;
                v2 = kick;
                delay = 0.0;
                rise = 0.05 /. fc;
                fall = 0.05 /. fc;
                width = 0.25 /. fc;
                period = 0.0;
              };
        };
    ]
  in
  let inj =
    match injection with
    | None -> []
    | Some wave ->
      [ Spice.Device.Isource { name = "Iinj"; np = "0"; nn = "t"; wave } ]
  in
  Spice.Circuit.of_devices (base @ inj)
