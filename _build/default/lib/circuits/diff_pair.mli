(** Cross-coupled BJT differential-pair LC oscillator (paper §IV-A,
    Fig. 11a) and its [i = f(v)] extraction circuit (Fig. 11b).

    Topology: NPN pair with bases cross-coupled to the opposite
    collectors, emitters to a tail current sink, and the tank across the
    collectors as two [L/2] halves centre-tapped at VCC plus parallel
    [R] and [C]. Injection is a series voltage source between the tank
    and the nonlinear one-port — the literal [v_out + v_i] summing node
    of Figs. 4a/8a. The oscillation is the differential collector voltage
    [v(ncl) - v(ncr)]. *)

type params = {
  vcc : float;
  iee : float;  (** tail current, A *)
  bjt : Spice.Device.bjt_params;
  r : float;  (** differential tank resistance *)
  l : float;  (** total differential inductance (two L/2 halves) *)
  c : float;
  kick : float;  (** start-up pulse current, A *)
}

val default : params
(** Calibrated so the describing-function prediction of the natural
    amplitude is the paper's [A = 0.505 V] at the paper's centre
    frequency 0.5033 MHz, and the tank [Q] reproduces the paper's
    3rd-harmonic lock range [~0.0176 MHz] at [|V_i| = 0.03 V] (the paper
    does not print its R/L/C; see DESIGN.md §3). *)

val fc_paper : float
(** 0.5033 MHz: [1/(2 pi sqrt(100 uH * 1 nF))], the paper's diff-pair
    oscillation frequency. *)

val extraction_fv : ?v_span:float -> ?steps:int -> params -> float array * float array
(** The Fig. 11b flow on our MNA simulator: drive [v(ncl) = VCC + v/2],
    [v(ncr) = VCC - v/2] and read the differential port current
    [i = (i_ncl - i_ncr) / 2] over [v in [-v_span, v_span]] (default
    0.85 V — beyond that the ideal Ebers-Moll base-collector junction
    conducts unphysical kiloamps; 241 points). Returns [(v, i)]
    arrays. *)

val nonlinearity : ?v_span:float -> ?steps:int -> params -> Shil.Nonlinearity.t
(** PCHIP interpolation of {!extraction_fv}. *)

val tank : params -> Shil.Tank.t

val oscillator : ?v_span:float -> ?steps:int -> params -> Shil.Analysis.oscillator

type injection = { vi : float; n : int; f_inj : float; phase : float }

val circuit :
  ?injection:injection -> ?extra:Spice.Device.t list -> params ->
  Spice.Circuit.t
(** Oscillator netlist. The injection voltage source carries
    [2 vi cos(2 pi f_inj t + phase)]; [extra] appends devices (e.g.
    state-flipping pulse sources across [tl]-[ncr]). Probe the
    oscillation as [Diff ("ncl", "ncr")] (or the tank as
    [Diff ("tl", "ncr")]). *)

val osc_probe : Spice.Transient.probe
