(** The negative-tanh LC oscillator used throughout §II–III of the paper
    for illustration (Figs. 3, 7, 9, 10). Purely behavioural: the
    nonlinearity is analytic, so this oscillator exercises the theory and
    the reduced time-domain simulator without the device models. *)

type params = {
  g0 : float;  (** small-signal (negative) conductance magnitude, S *)
  isat : float;  (** saturation current, A *)
  r : float;
  l : float;
  c : float;
}

val default : params
(** [g0 = 2 mS, isat = 1 mA, R = 1 kOhm], tank centred at 1 MHz with
    [Q = 10] — a loop gain of 2 at start-up, the regime of Fig. 3. *)

val nonlinearity : params -> Shil.Nonlinearity.t
val tank : params -> Shil.Tank.t
val oscillator : params -> Shil.Analysis.oscillator

val circuit :
  ?injection:Spice.Wave.t -> ?kick:float -> params -> Spice.Circuit.t
(** Netlist realization with a behavioural current source for [f], for
    cross-validating the reduced model against the MNA simulator. The
    injection waveform, when given, drives a current source across the
    tank; [kick] (default [1e-5] A) is a short start-up pulse. Probe the
    oscillation on node ["t"]. *)
