(** Cross-coupled NMOS LC oscillator — the modern RFIC VCO cell the
    paper's introduction motivates (§I: "virtually all such applications
    use LC oscillator topologies"). Beyond the paper's two examples; same
    analysis flow: DC-sweep extraction of the one-port [i = f(v)], then
    the graphical SHIL machinery.

    Topology mirrors {!Diff_pair} with MOSFETs: gates cross-coupled to
    the opposite drains, sources to a tail current sink, tank across the
    drains as two [L/2] halves centre-tapped at VDD. *)

type params = {
  vdd : float;
  itail : float;
  mos : Spice.Device.mos_params;
  r : float;
  l : float;
  c : float;
  kick : float;
}

val default : params
(** 2.4 GHz tank (a Bluetooth/WiFi-band VCO), [Z0 = 50 Ohm], [Q = 30],
    2 mA tail, [kp = 2 mA/V^2], [vth = 0.5 V]: small-signal loop gain
    1.5. *)

val extraction_fv : ?v_span:float -> ?steps:int -> params -> float array * float array
(** Differential one-port current across the drain pair (same convention
    as {!Diff_pair.extraction_fv}). *)

val nonlinearity : ?v_span:float -> ?steps:int -> params -> Shil.Nonlinearity.t
val tank : params -> Shil.Tank.t
val oscillator : ?v_span:float -> ?steps:int -> params -> Shil.Analysis.oscillator

type injection = { vi : float; n : int; f_inj : float; phase : float }

val circuit :
  ?injection:injection -> ?extra:Spice.Device.t list -> params ->
  Spice.Circuit.t

val osc_probe : Spice.Transient.probe
