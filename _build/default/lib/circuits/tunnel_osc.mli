(** Tunnel-diode LC oscillator (paper §IV-B, Fig. 16a).

    The diode is biased at 0.25 V — the middle of its negative-resistance
    region — through the tank inductor; the tank ([R], [L], [C] from node
    ["t"] to ground) resonates near 0.5033 GHz. Injection is a series
    voltage source between the tank node and the diode. The oscillation
    is [v("t") - 0.25]. *)

type params = {
  vbias : float;
  tunnel : Spice.Device.tunnel_params;
  r : float;
  l : float;
  c : float;
  kick : float;
}

val default : params
(** Calibrated like {!Diff_pair.default}: natural amplitude 0.199 V,
    centre 0.5033 GHz, and the paper's 3rd-SHIL lock range
    [~5.109 MHz] at [|V_i| = 0.03 V]. *)

val fc_paper : float
(** 0.5033 GHz: [1/(2 pi sqrt(100 nH * 1 pF))]. *)

val nonlinearity : params -> Shil.Nonlinearity.t
(** The bias-shifted analytic model of the appendix. *)

val nonlinearity_extracted : ?v_span:float -> ?steps:int -> params -> Shil.Nonlinearity.t
(** Same curve but obtained with a DC sweep on the MNA simulator (the
    paper's Fig. 16b route) — tabulated + PCHIP. *)

val extraction_fv : ?v_span:float -> ?steps:int -> params -> float array * float array
(** Raw unshifted [i = f(v)] table of the diode (Fig. 16b). *)

val tank : params -> Shil.Tank.t
val oscillator : params -> Shil.Analysis.oscillator

type injection = { vi : float; n : int; f_inj : float; phase : float }

val circuit :
  ?injection:injection -> ?extra:Spice.Device.t list -> params ->
  Spice.Circuit.t
(** Probe the oscillation on node ["t"] (DC offset [vbias]). *)

val osc_probe : Spice.Transient.probe
