lib/circuits/tanh_osc.mli: Shil Spice
