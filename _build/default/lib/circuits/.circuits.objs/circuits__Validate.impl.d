lib/circuits/validate.ml: Float Format List Numerics Shil Spice Waveform
