lib/circuits/validate.ml: Array Float Format List Numerics Shil Spice Waveform
