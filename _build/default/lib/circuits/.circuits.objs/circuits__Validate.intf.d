lib/circuits/validate.mli: Format Shil Spice
