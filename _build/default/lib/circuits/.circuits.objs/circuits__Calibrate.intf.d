lib/circuits/calibrate.mli: Shil
