lib/circuits/tunnel_osc.ml: Array Float Shil Spice
