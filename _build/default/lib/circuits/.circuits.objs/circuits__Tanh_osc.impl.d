lib/circuits/tanh_osc.ml: Float Shil Spice
