lib/circuits/diff_pair.ml: Array Float Shil Spice
