lib/circuits/diff_pair.mli: Shil Spice
