lib/circuits/cmos_pair.mli: Shil Spice
