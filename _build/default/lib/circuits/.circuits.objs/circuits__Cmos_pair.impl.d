lib/circuits/cmos_pair.ml: Array Float Shil Spice
