lib/circuits/tunnel_osc.mli: Shil Spice
