lib/circuits/calibrate.ml: Float Numerics Shil
