(** Calibration of the benchmark circuits to the paper's reported numbers.

    The paper prints measured amplitudes, centre frequencies and lock
    ranges but not its component values, so we solve for them: the tank
    [R] from the natural-amplitude target (the amplitude depends only on
    [R] and the nonlinearity), then the characteristic impedance
    [Z0 = sqrt(L/C)] from the lock-range target using the exact identity
    [delta_f_osc = f_c tan(phi_d_max) / Q] (with [Q = R / Z0] and
    [phi_d_max] independent of [L], [C]). *)

val r_for_amplitude :
  ?r_lo:float -> ?r_hi:float -> nl:Shil.Nonlinearity.t -> target_a:float ->
  unit -> float
(** Solves [predicted_amplitude nl r = target_a] by bisection on
    [log r]. Raises [Failure] when the bracket does not contain a
    solution. *)

type tank_fit = { r : float; l : float; c : float; q : float; phi_d_max : float }

val fit_tank :
  ?points:int -> nl:Shil.Nonlinearity.t -> target_a:float -> f_c:float ->
  n:int -> vi:float -> target_delta_f_inj:float -> unit -> tank_fit
(** Full fit: [R] from amplitude, [phi_d_max] from one
    describing-function grid at that [R], then
    [Q = n f_c tan(phi_d_max) / target_delta_f_inj] and [L], [C] from
    [Z0 = R/Q] at centre [f_c]. *)
