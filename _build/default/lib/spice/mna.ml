(* Unknowns: node voltages then branch currents (V sources and inductors).
   KCL residual: sum of currents leaving the node; branch residuals follow.
   Nonlinear devices are linearized analytically; integration uses
   trapezoidal or backward-Euler companion models. *)

type inst =
  | IR of { i1 : int; i2 : int; g : float }
  | IC of { i1 : int; i2 : int; c : float; ic : float option; si : int }
  | IL of { i1 : int; i2 : int; l : float; ic : float option; br : int; si : int }
  | IV of { ip : int; inn : int; wave : Wave.t; br : int }
  | II of { ip : int; inn : int; wave : Wave.t }
  | ID of { ip : int; inn : int; p : Device.diode_params }
  | IQ of { nc : int; nb : int; ne : int; p : Device.bjt_params }
  | ITD of { ip : int; inn : int; p : Device.tunnel_params }
  | IM of { nd : int; ng : int; ns : int; p : Device.mos_params }
  | INL of { ip : int; inn : int; f : float -> float; df : (float -> float) option }

type compiled = {
  n_nodes : int;
  n_branches : int;
  insts : inst array;
  node_tbl : (string, int) Hashtbl.t;
  branch_tbl : (string, int) Hashtbl.t;  (* device name -> unknown index *)
  n_caps : int;
  n_inds : int;
}

let compile circuit =
  let node_tbl = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace node_tbl n i) (Circuit.node_names circuit);
  let n_nodes = Hashtbl.length node_tbl in
  if n_nodes = 0 then invalid_arg "Mna.compile: empty circuit";
  let idx n = if Circuit.is_ground n then -1 else Hashtbl.find node_tbl n in
  let branch_tbl = Hashtbl.create 8 in
  let next_branch = ref 0 and next_cap = ref 0 and next_ind = ref 0 in
  let insts =
    List.map
      (fun (d : Device.t) ->
        match d with
        | Resistor { n1; n2; r; _ } ->
          if r = 0.0 then invalid_arg "Mna.compile: zero-ohm resistor";
          IR { i1 = idx n1; i2 = idx n2; g = 1.0 /. r }
        | Capacitor { n1; n2; c; ic; _ } ->
          let si = !next_cap in
          incr next_cap;
          IC { i1 = idx n1; i2 = idx n2; c; ic; si }
        | Inductor { name; n1; n2; l; ic } ->
          let br = n_nodes + !next_branch in
          incr next_branch;
          Hashtbl.replace branch_tbl name br;
          let si = !next_ind in
          incr next_ind;
          IL { i1 = idx n1; i2 = idx n2; l; ic; br; si }
        | Vsource { name; np; nn; wave } ->
          let br = n_nodes + !next_branch in
          incr next_branch;
          Hashtbl.replace branch_tbl name br;
          IV { ip = idx np; inn = idx nn; wave; br }
        | Isource { np; nn; wave; _ } -> II { ip = idx np; inn = idx nn; wave }
        | Diode { np; nn; p; _ } -> ID { ip = idx np; inn = idx nn; p }
        | Bjt { nc; nb; ne; p; _ } -> IQ { nc = idx nc; nb = idx nb; ne = idx ne; p }
        | Tunnel_diode { np; nn; p; _ } -> ITD { ip = idx np; inn = idx nn; p }
        | Mosfet { nd; ng; ns; p; _ } -> IM { nd = idx nd; ng = idx ng; ns = idx ns; p }
        | Nonlinear_cs { np; nn; f; df; _ } -> INL { ip = idx np; inn = idx nn; f; df })
      (Circuit.devices circuit)
  in
  {
    n_nodes;
    n_branches = !next_branch;
    insts = Array.of_list insts;
    node_tbl;
    branch_tbl;
    n_caps = !next_cap;
    n_inds = !next_ind;
  }

let size c = c.n_nodes + c.n_branches
let n_nodes c = c.n_nodes

let node_index c name =
  if Circuit.is_ground name then -1 else Hashtbl.find c.node_tbl name

let branch_index c name = Hashtbl.find c.branch_tbl name

let node_voltage c x name =
  let i = node_index c name in
  if i < 0 then 0.0 else x.(i)

type integ = Trap | Backward_euler

type state = {
  cap_v : float array;
  cap_i : float array;
  ind_v : float array;
  ind_i : float array;
}

let v_at x i = if i < 0 then 0.0 else x.(i)

let init_state c ~use_ic ~x =
  let cap_v = Array.make (max c.n_caps 1) 0.0 in
  let cap_i = Array.make (max c.n_caps 1) 0.0 in
  let ind_v = Array.make (max c.n_inds 1) 0.0 in
  let ind_i = Array.make (max c.n_inds 1) 0.0 in
  Array.iter
    (fun inst ->
      match inst with
      | IC { i1; i2; ic; si; _ } ->
        let from_x = v_at x i1 -. v_at x i2 in
        cap_v.(si) <- (match ic with Some v when use_ic -> v | _ -> from_x)
      | IL { i1; i2; ic; si; br; _ } ->
        ind_v.(si) <- v_at x i1 -. v_at x i2;
        ind_i.(si) <- (match ic with Some i when use_ic -> i | _ -> x.(br))
      | IR _ | IV _ | II _ | ID _ | IQ _ | ITD _ | IM _ | INL _ -> ())
    c.insts;
  { cap_v; cap_i; ind_v; ind_i }

let update_state c ~integ ~h ~prev ~x =
  let cap_v = Array.copy prev.cap_v in
  let cap_i = Array.copy prev.cap_i in
  let ind_v = Array.copy prev.ind_v in
  let ind_i = Array.copy prev.ind_i in
  Array.iter
    (fun inst ->
      match inst with
      | IC { i1; i2; c = cval; si; _ } ->
        let v_new = v_at x i1 -. v_at x i2 in
        let i_new =
          match integ with
          | Trap ->
            (2.0 *. cval /. h *. (v_new -. prev.cap_v.(si))) -. prev.cap_i.(si)
          | Backward_euler -> cval /. h *. (v_new -. prev.cap_v.(si))
        in
        cap_v.(si) <- v_new;
        cap_i.(si) <- i_new
      | IL { i1; i2; si; br; _ } ->
        ind_v.(si) <- v_at x i1 -. v_at x i2;
        ind_i.(si) <- x.(br)
      | IR _ | IV _ | II _ | ID _ | IQ _ | ITD _ | IM _ | INL _ -> ())
    c.insts;
  { cap_v; cap_i; ind_v; ind_i }

type mode =
  | Dc of { gmin : float; source_scale : float }
  | Tran of { t : float; h : float; integ : integ; state : state; gmin : float }

let assemble c ~mode ~x ~jac ~res =
  let n = size c in
  for r = 0 to n - 1 do
    res.(r) <- 0.0;
    let row = jac.(r) in
    for cc = 0 to n - 1 do
      row.(cc) <- 0.0
    done
  done;
  (* helpers that ignore the ground index (-1) *)
  let add_res i v = if i >= 0 then res.(i) <- res.(i) +. v in
  let add_jac r cidx v = if r >= 0 && cidx >= 0 then jac.(r).(cidx) <- jac.(r).(cidx) +. v in
  let gmin, src_scale, time =
    match mode with
    | Dc { gmin; source_scale } -> (gmin, source_scale, 0.0)
    | Tran { gmin; t; _ } -> (gmin, 1.0, t)
  in
  (* gmin leak on every node keeps the matrix regular with floating caps *)
  if gmin > 0.0 then
    for k = 0 to c.n_nodes - 1 do
      res.(k) <- res.(k) +. (gmin *. x.(k));
      jac.(k).(k) <- jac.(k).(k) +. gmin
    done;
  let src_value wave =
    match mode with
    | Dc _ -> src_scale *. Wave.dc_value wave
    | Tran _ -> Wave.value wave time
  in
  let stamp_conductance i1 i2 g i0 =
    (* current i = g*(v1-v2) + i0 flowing i1 -> i2 *)
    let v = v_at x i1 -. v_at x i2 in
    let i = (g *. v) +. i0 in
    add_res i1 i;
    add_res i2 (-.i);
    add_jac i1 i1 g;
    add_jac i1 i2 (-.g);
    add_jac i2 i1 (-.g);
    add_jac i2 i2 g
  in
  let stamp_nonlinear i1 i2 i g =
    (* device current i (already evaluated at x) with slope g *)
    add_res i1 i;
    add_res i2 (-.i);
    add_jac i1 i1 g;
    add_jac i1 i2 (-.g);
    add_jac i2 i1 (-.g);
    add_jac i2 i2 g
  in
  Array.iter
    (fun inst ->
      match inst with
      | IR { i1; i2; g } -> stamp_conductance i1 i2 g 0.0
      | IC { i1; i2; c = cval; si; _ } -> begin
        match mode with
        | Dc _ -> () (* open circuit *)
        | Tran { h; integ; state; _ } ->
          let geq, ieq =
            match integ with
            | Trap ->
              let geq = 2.0 *. cval /. h in
              (geq, (-.geq *. state.cap_v.(si)) -. state.cap_i.(si))
            | Backward_euler ->
              let geq = cval /. h in
              (geq, -.geq *. state.cap_v.(si))
          in
          stamp_conductance i1 i2 geq ieq
      end
      | IL { i1; i2; l; br; si; _ } -> begin
        (* KCL: branch current leaves i1, enters i2 *)
        let ibr = x.(br) in
        add_res i1 ibr;
        add_res i2 (-.ibr);
        add_jac i1 br 1.0;
        add_jac i2 br (-1.0);
        (* branch equation:
           trap: v_new = (2L/h)(i_new - i_prev) - v_prev
           BE:   v_new = (L/h)(i_new - i_prev) *)
        match mode with
        | Dc _ ->
          res.(br) <- v_at x i1 -. v_at x i2;
          add_jac br i1 1.0;
          add_jac br i2 (-1.0)
        | Tran { h; integ; state; _ } ->
          let v = v_at x i1 -. v_at x i2 in
          let k, v_prev_term =
            match integ with
            | Trap -> (2.0 *. l /. h, state.ind_v.(si))
            | Backward_euler -> (l /. h, 0.0)
          in
          res.(br) <- v -. (k *. (ibr -. state.ind_i.(si))) +. v_prev_term;
          add_jac br i1 1.0;
          add_jac br i2 (-1.0);
          jac.(br).(br) <- jac.(br).(br) -. k
      end
      | IV { ip; inn; wave; br } ->
        let ibr = x.(br) in
        add_res ip ibr;
        add_res inn (-.ibr);
        add_jac ip br 1.0;
        add_jac inn br (-1.0);
        res.(br) <- v_at x ip -. v_at x inn -. src_value wave;
        add_jac br ip 1.0;
        add_jac br inn (-1.0)
      | II { ip; inn; wave } ->
        let i = src_value wave in
        add_res ip i;
        add_res inn (-.i)
      | ID { ip; inn; p } ->
        let v = v_at x ip -. v_at x inn in
        let i, g = Device.diode_iv p v in
        stamp_nonlinear ip inn i g
      | ITD { ip; inn; p } ->
        let v = v_at x ip -. v_at x inn in
        let i, g = Device.tunnel_iv p v in
        stamp_nonlinear ip inn i g
      | INL { ip; inn; f; df } ->
        let v = v_at x ip -. v_at x inn in
        let i = f v in
        let g =
          match df with
          | Some df -> df v
          | None ->
            let h = 1e-6 *. (1.0 +. Float.abs v) in
            (f (v +. h) -. f (v -. h)) /. (2.0 *. h)
        in
        stamp_nonlinear ip inn i g
      | IM { nd; ng; ns; p } ->
        let vg = v_at x ng and vd = v_at x nd and vs = v_at x ns in
        let lin = Device.mos_iv p ~vgs:(vg -. vs) ~vds:(vd -. vs) in
        (* drain current enters the drain terminal and leaves the source *)
        add_res nd lin.id;
        add_res ns (-.lin.id);
        (* d id: vgs = vg - vs, vds = vd - vs *)
        add_jac nd ng lin.gm;
        add_jac nd nd lin.gds;
        add_jac nd ns (-.(lin.gm +. lin.gds));
        add_jac ns ng (-.lin.gm);
        add_jac ns nd (-.lin.gds);
        add_jac ns ns (lin.gm +. lin.gds)
      | IQ { nc; nb; ne; p } ->
        let vb = v_at x nb and vc = v_at x nc and ve = v_at x ne in
        let lin = Device.bjt_iv p ~vbe:(vb -. ve) ~vbc:(vb -. vc) in
        let ie = -.(lin.ic +. lin.ib) in
        add_res nc lin.ic;
        add_res nb lin.ib;
        add_res ne ie;
        (* chain rule: vbe = vb - ve, vbc = vb - vc *)
        let dic_dvb = lin.dic_dvbe +. lin.dic_dvbc in
        let dic_dvc = -.lin.dic_dvbc in
        let dic_dve = -.lin.dic_dvbe in
        let dib_dvb = lin.dib_dvbe +. lin.dib_dvbc in
        let dib_dvc = -.lin.dib_dvbc in
        let dib_dve = -.lin.dib_dvbe in
        add_jac nc nb dic_dvb;
        add_jac nc nc dic_dvc;
        add_jac nc ne dic_dve;
        add_jac nb nb dib_dvb;
        add_jac nb nc dib_dvc;
        add_jac nb ne dib_dve;
        add_jac ne nb (-.(dic_dvb +. dib_dvb));
        add_jac ne nc (-.(dic_dvc +. dib_dvc));
        add_jac ne ne (-.(dic_dve +. dib_dve)))
    c.insts

let cap_count c = c.n_caps
let ind_count c = c.n_inds
