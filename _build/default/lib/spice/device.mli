(** Circuit devices and their model equations.

    Nodes are referred to by string names at this level; the engine maps
    them to indices. Node ["0"] (alias ["gnd"]) is ground. *)

type diode_params = {
  is : float;  (** saturation current, A *)
  n : float;  (** ideality factor *)
  vt : float;  (** thermal voltage, V *)
}

val default_diode : diode_params
(** [Is = 1e-14 A, n = 1, Vt = 0.025 V]. *)

type bjt_params = {
  is : float;  (** transport saturation current, A *)
  beta_f : float;  (** forward beta *)
  beta_r : float;  (** reverse beta *)
  vt : float;  (** thermal voltage, V *)
}

val default_npn : bjt_params
(** The NGSPICE default NPN used by the paper: [Is = 1e-12 A] (paper's
    value), [beta_f = 100], [beta_r = 1], [Vt = 0.025 V]. *)

type tunnel_params = {
  is : float;  (** p-n saturation current, A *)
  eta : float;  (** diode ideality *)
  vth : float;  (** thermal voltage, V *)
  r0 : float;  (** ohmic-region resistance, Ohm *)
  v0 : float;  (** tunnel voltage scale, V *)
  m : float;  (** tunnel exponent *)
}

val paper_tunnel : tunnel_params
(** The appendix §VI-C model: [Is = 1e-12, eta = 1, Vth = 0.025,
    R0 = 1000, V0 = 0.2, m = 2]. *)

type mos_params = {
  kp : float;  (** transconductance parameter [kp * W/L], A/V^2 *)
  vth : float;  (** threshold voltage, V (positive for NMOS) *)
  lambda : float;  (** channel-length modulation, 1/V *)
}

val default_nmos : mos_params
(** [kp = 200 uA/V^2 (W/L folded in), vth = 0.5 V, lambda = 0.02]. *)

type t =
  | Resistor of { name : string; n1 : string; n2 : string; r : float }
  | Capacitor of { name : string; n1 : string; n2 : string; c : float; ic : float option }
      (** [ic] is the initial voltage [v(n1) - v(n2)] for transient. *)
  | Inductor of { name : string; n1 : string; n2 : string; l : float; ic : float option }
      (** [ic] is the initial current flowing [n1 -> n2]. *)
  | Vsource of { name : string; np : string; nn : string; wave : Wave.t }
  | Isource of { name : string; np : string; nn : string; wave : Wave.t }
      (** Current flows [np -> nn] through the source (out of [nn]'s node
          into [np]'s node externally — SPICE convention: positive current
          is pulled out of [np] and pushed into [nn]). *)
  | Diode of { name : string; np : string; nn : string; p : diode_params }
  | Bjt of { name : string; nc : string; nb : string; ne : string; p : bjt_params }
      (** NPN Ebers–Moll transistor (collector, base, emitter). *)
  | Tunnel_diode of { name : string; np : string; nn : string; p : tunnel_params }
  | Mosfet of { name : string; nd : string; ng : string; ns : string; p : mos_params }
      (** Level-1 NMOS (drain, gate, source; bulk tied to source). For a
          PMOS, swap polarities externally (negate [kp] is NOT supported;
          build the complementary circuit instead). *)
  | Nonlinear_cs of {
      name : string;
      np : string;
      nn : string;
      f : float -> float;
      df : (float -> float) option;
    }
      (** Behavioural current source: [i(np -> nn) = f (v np - v nn)];
          the derivative is computed by central differences when [df] is
          not supplied. *)

val name : t -> string
val nodes : t -> string list

val diode_iv : diode_params -> float -> float * float
(** [(i, di/dv)] with overflow-safe exponential (linear continuation above
    [40 n Vt]). *)

val tunnel_iv : tunnel_params -> float -> float * float
(** Tunnel-diode current and slope, eqs. (11)–(13) of the paper. *)

val bjt_currents : bjt_params -> vbe:float -> vbc:float -> float * float
(** [(ic, ib)] of the Ebers–Moll model (ie = -(ic+ib)). *)

type bjt_linearization = {
  ic : float;
  ib : float;
  dic_dvbe : float;
  dic_dvbc : float;
  dib_dvbe : float;
  dib_dvbc : float;
}

val bjt_iv : bjt_params -> vbe:float -> vbc:float -> bjt_linearization
(** Currents and the four junction-voltage partials, for MNA stamping. *)

type mos_linearization = {
  id : float;  (** drain current (into the drain), A *)
  gm : float;  (** d id / d vgs *)
  gds : float;  (** d id / d vds *)
}

val mos_iv : mos_params -> vgs:float -> vds:float -> mos_linearization
(** Square-law level-1 model: cutoff / triode / saturation, with
    drain-source symmetry for [vds < 0] (the device conducts both
    ways). C1-continuous across the region boundaries. *)
