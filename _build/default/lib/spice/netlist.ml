type error = { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexical helpers *)

let strip_comment line =
  let cut_at c s = match String.index_opt s c with Some i -> String.sub s 0 i | None -> s in
  line |> cut_at ';' |> String.trim

let is_comment_line line =
  String.length line > 0 && (line.[0] = '*' || line.[0] = '#')

let suffixes =
  (* longest first so "meg" wins over "m" *)
  [ ("meg", 1e6); ("t", 1e12); ("g", 1e9); ("k", 1e3); ("m", 1e-3);
    ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15) ]

let parse_value s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "" then Error "empty value"
  else begin
    let num_part, mult =
      let rec try_suffix = function
        | [] -> (s, 1.0)
        | (suf, m) :: rest ->
          let ls = String.length suf and ln = String.length s in
          if ln > ls && String.sub s (ln - ls) ls = suf then
            (String.sub s 0 (ln - ls), m)
          else try_suffix rest
      in
      try_suffix suffixes
    in
    match float_of_string_opt num_part with
    | Some v -> Ok (v *. mult)
    | None -> Error (Printf.sprintf "cannot parse number %S" s)
  end

(* split a card into tokens, keeping (...) argument groups attached to
   their keyword: "SIN(0 1 1meg)" -> one token *)
let tokenize line =
  let n = String.length line in
  let tokens = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = line.[i] in
    match c with
    | '(' ->
      incr depth;
      Buffer.add_char buf c
    | ')' ->
      decr depth;
      Buffer.add_char buf c
    | ' ' | '\t' when !depth = 0 -> flush ()
    | c -> Buffer.add_char buf c
  done;
  flush ();
  List.rev !tokens

let key_values tokens =
  (* split ["IC=0.5"; "IS=1e-12"] style trailing parameters *)
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        Some
          ( String.uppercase_ascii (String.sub tok 0 i),
            String.sub tok (i + 1) (String.length tok - i - 1) )
      | None -> None)
    tokens

let positional tokens = List.filter (fun t -> not (String.contains t '=')) tokens

let ( let* ) = Result.bind

let lookup_value kvs key =
  match List.assoc_opt key kvs with
  | None -> Ok None
  | Some s ->
    let* v = parse_value s in
    Ok (Some v)

(* parse "SIN(a b c ...)" style source descriptions *)
let parse_source tokens =
  match tokens with
  | [ one ] when String.length one >= 4 -> begin
    let upper = String.uppercase_ascii one in
    let args_of prefix =
      let body =
        String.sub one (String.length prefix + 1)
          (String.length one - String.length prefix - 2)
      in
      let parts =
        String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) body)
        |> List.filter (fun s -> s <> "")
      in
      let rec all = function
        | [] -> Ok []
        | x :: rest ->
          let* v = parse_value x in
          let* vs = all rest in
          Ok (v :: vs)
      in
      all parts
    in
    if String.length upper > 4 && String.sub upper 0 4 = "SIN(" then begin
      let* args = args_of "SIN" in
      match args with
      | [ offset; ampl; freq ] ->
        Ok (Wave.Sine { offset; ampl; freq; phase = 0.0; delay = 0.0 })
      | [ offset; ampl; freq; delay ] ->
        Ok (Wave.Sine { offset; ampl; freq; phase = 0.0; delay })
      | [ offset; ampl; freq; delay; phase_deg ] ->
        Ok
          (Wave.Sine
             { offset; ampl; freq; delay;
               phase = phase_deg *. Float.pi /. 180.0 })
      | _ -> Error "SIN needs 3-5 arguments"
    end
    else if String.length upper > 6 && String.sub upper 0 6 = "PULSE(" then begin
      let* args = args_of "PULSE" in
      match args with
      | [ v1; v2; delay; rise; fall; width ] ->
        Ok (Wave.Pulse { v1; v2; delay; rise; fall; width; period = 0.0 })
      | [ v1; v2; delay; rise; fall; width; period ] ->
        Ok (Wave.Pulse { v1; v2; delay; rise; fall; width; period })
      | _ -> Error "PULSE needs 6-7 arguments"
    end
    else if String.length upper > 4 && String.sub upper 0 4 = "PWL(" then begin
      let* args = args_of "PWL" in
      let rec pairs = function
        | [] -> Ok []
        | t :: v :: rest ->
          let* tl = pairs rest in
          Ok ((t, v) :: tl)
        | [ _ ] -> Error "PWL needs an even number of arguments"
      in
      let* pts = pairs args in
      Ok (Wave.Pwl pts)
    end
    else begin
      let* v = parse_value one in
      Ok (Wave.Dc v)
    end
  end
  | [ dc; v ] when String.uppercase_ascii dc = "DC" ->
    let* value = parse_value v in
    Ok (Wave.Dc value)
  | [ v ] ->
    let* value = parse_value v in
    Ok (Wave.Dc value)
  | _ -> Error "cannot parse source value"

let parse_device tokens =
  match tokens with
  | [] -> Error "empty card"
  | name :: rest -> begin
    let kind = String.uppercase_ascii name in
    let kvs = key_values rest in
    let pos = positional rest in
    let starts_with p =
      String.length kind >= String.length p && String.sub kind 0 (String.length p) = p
    in
    if starts_with "TD" then begin
      match pos with
      | [ np; nn ] ->
        let d = Device.paper_tunnel in
        let* is = lookup_value kvs "IS" in
        let* r0 = lookup_value kvs "R0" in
        let* v0 = lookup_value kvs "V0" in
        let* m = lookup_value kvs "M" in
        let* eta = lookup_value kvs "ETA" in
        let p =
          {
            d with
            is = Option.value is ~default:d.is;
            r0 = Option.value r0 ~default:d.r0;
            v0 = Option.value v0 ~default:d.v0;
            m = Option.value m ~default:d.m;
            eta = Option.value eta ~default:d.eta;
          }
        in
        Ok (Device.Tunnel_diode { name; np; nn; p })
      | _ -> Error "tunnel diode needs 2 nodes"
    end
    else begin
      match kind.[0] with
      | 'R' -> begin
        match pos with
        | [ n1; n2; v ] ->
          let* r = parse_value v in
          Ok (Device.Resistor { name; n1; n2; r })
        | _ -> Error "resistor needs 2 nodes and a value"
      end
      | 'C' -> begin
        match pos with
        | [ n1; n2; v ] ->
          let* c = parse_value v in
          let* ic = lookup_value kvs "IC" in
          Ok (Device.Capacitor { name; n1; n2; c; ic })
        | _ -> Error "capacitor needs 2 nodes and a value"
      end
      | 'L' -> begin
        match pos with
        | [ n1; n2; v ] ->
          let* l = parse_value v in
          let* ic = lookup_value kvs "IC" in
          Ok (Device.Inductor { name; n1; n2; l; ic })
        | _ -> Error "inductor needs 2 nodes and a value"
      end
      | 'V' -> begin
        match pos with
        | np :: nn :: src when src <> [] ->
          let* wave = parse_source src in
          Ok (Device.Vsource { name; np; nn; wave })
        | _ -> Error "voltage source needs 2 nodes and a value"
      end
      | 'I' -> begin
        match pos with
        | np :: nn :: src when src <> [] ->
          let* wave = parse_source src in
          Ok (Device.Isource { name; np; nn; wave })
        | _ -> Error "current source needs 2 nodes and a value"
      end
      | 'D' -> begin
        match pos with
        | [ np; nn ] ->
          let d = Device.default_diode in
          let* is = lookup_value kvs "IS" in
          let* n = lookup_value kvs "N" in
          let p =
            { d with is = Option.value is ~default:d.is; n = Option.value n ~default:d.n }
          in
          Ok (Device.Diode { name; np; nn; p })
        | _ -> Error "diode needs 2 nodes"
      end
      | 'M' -> begin
        match pos with
        | [ nd; ng; ns ] ->
          let d = Device.default_nmos in
          let* kp = lookup_value kvs "KP" in
          let* vth = lookup_value kvs "VTH" in
          let* lambda = lookup_value kvs "LAMBDA" in
          let p =
            {
              Device.kp = Option.value kp ~default:d.kp;
              vth = Option.value vth ~default:d.vth;
              lambda = Option.value lambda ~default:d.lambda;
            }
          in
          Ok (Device.Mosfet { name; nd; ng; ns; p })
        | _ -> Error "mosfet needs 3 nodes (drain gate source)"
      end
      | 'Q' -> begin
        match pos with
        | [ nc; nb; ne ] ->
          let d = Device.default_npn in
          let* is = lookup_value kvs "IS" in
          let* bf = lookup_value kvs "BF" in
          let* br = lookup_value kvs "BR" in
          let p =
            {
              d with
              is = Option.value is ~default:d.is;
              beta_f = Option.value bf ~default:d.beta_f;
              beta_r = Option.value br ~default:d.beta_r;
            }
          in
          Ok (Device.Bjt { name; nc; nb; ne; p })
        | _ -> Error "bjt needs 3 nodes (collector base emitter)"
      end
      | _ -> Error (Printf.sprintf "unknown device kind %S" name)
    end
  end

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (Circuit.of_devices (List.rev acc))
    | raw :: rest -> begin
      let line = strip_comment raw in
      if line = "" || is_comment_line line then go (lineno + 1) acc rest
      else begin
        let lower = String.lowercase_ascii line in
        if lower = ".end" || lower = ".ends" then go (lineno + 1) acc rest
        else begin
          match parse_device (tokenize line) with
          | Ok d -> begin
            match
              List.exists (fun d' -> Device.name d' = Device.name d) acc
            with
            | true -> Error { line = lineno; message = "duplicate device name" }
            | false -> go (lineno + 1) (d :: acc) rest
          end
          | Error message -> Error { line = lineno; message }
        end
      end
    end
  in
  go 1 [] lines

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let wave_to_string = function
  | Wave.Dc v -> Printf.sprintf "DC %g" v
  | Wave.Sine { offset; ampl; freq; phase; delay } ->
    Printf.sprintf "SIN(%g %g %g %g %g)" offset ampl freq delay
      (phase *. 180.0 /. Float.pi)
  | Wave.Pulse { v1; v2; delay; rise; fall; width; period } ->
    Printf.sprintf "PULSE(%g %g %g %g %g %g %g)" v1 v2 delay rise fall width period
  | Wave.Pwl pts ->
    Printf.sprintf "PWL(%s)"
      (String.concat " " (List.map (fun (t, v) -> Printf.sprintf "%g %g" t v) pts))

let to_string circuit =
  let buf = Buffer.create 256 in
  List.iter
    (fun (d : Device.t) ->
      let line =
        match d with
        | Resistor { name; n1; n2; r } -> Printf.sprintf "%s %s %s %g" name n1 n2 r
        | Capacitor { name; n1; n2; c; ic } ->
          Printf.sprintf "%s %s %s %g%s" name n1 n2 c
            (match ic with Some v -> Printf.sprintf " IC=%g" v | None -> "")
        | Inductor { name; n1; n2; l; ic } ->
          Printf.sprintf "%s %s %s %g%s" name n1 n2 l
            (match ic with Some v -> Printf.sprintf " IC=%g" v | None -> "")
        | Vsource { name; np; nn; wave } | Isource { name; np; nn; wave } ->
          Printf.sprintf "%s %s %s %s" name np nn (wave_to_string wave)
        | Diode { name; np; nn; p } ->
          Printf.sprintf "%s %s %s IS=%g N=%g" name np nn p.is p.n
        | Bjt { name; nc; nb; ne; p } ->
          Printf.sprintf "%s %s %s %s IS=%g BF=%g BR=%g" name nc nb ne p.is
            p.beta_f p.beta_r
        | Tunnel_diode { name; np; nn; p } ->
          Printf.sprintf "%s %s %s IS=%g R0=%g V0=%g M=%g ETA=%g" name np nn
            p.is p.r0 p.v0 p.m p.eta
        | Mosfet { name; nd; ng; ns; p } ->
          Printf.sprintf "%s %s %s %s KP=%g VTH=%g LAMBDA=%g" name nd ng ns
            p.kp p.vth p.lambda
        | Nonlinear_cs { name; np; nn; _ } ->
          Printf.sprintf "* %s %s %s (behavioural source: no textual form)" name np nn
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (Circuit.devices circuit);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf
