lib/spice/netlist.ml: Buffer Circuit Device Float List Option Printf Result String Wave
