lib/spice/circuit.mli: Device Format
