lib/spice/dc_sweep.mli: Circuit Mna Newton
