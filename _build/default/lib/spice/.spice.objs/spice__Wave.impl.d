lib/spice/wave.ml: Float List
