lib/spice/op.mli: Circuit Format Mna Newton
