lib/spice/dc_sweep.ml: Array Circuit Device Mna Op Printf Wave
