lib/spice/mna.mli: Circuit Numerics
