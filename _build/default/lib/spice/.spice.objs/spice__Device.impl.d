lib/spice/device.ml: Float Wave
