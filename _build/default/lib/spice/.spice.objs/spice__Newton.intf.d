lib/spice/newton.mli: Numerics
