lib/spice/op.ml: Array Format Mna Newton
