lib/spice/wave.mli:
