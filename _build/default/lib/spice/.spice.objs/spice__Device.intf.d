lib/spice/device.mli: Wave
