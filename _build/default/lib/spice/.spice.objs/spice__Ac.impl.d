lib/spice/ac.ml: Array Circuit Device Float List Mna Numerics Op
