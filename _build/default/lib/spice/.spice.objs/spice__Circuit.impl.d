lib/spice/circuit.ml: Device Format Hashtbl List Printf String
