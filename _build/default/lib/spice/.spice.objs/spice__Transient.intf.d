lib/spice/transient.mli: Circuit Mna Newton
