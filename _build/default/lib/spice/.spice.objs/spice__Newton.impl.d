lib/spice/newton.ml: Array Float Numerics Printf
