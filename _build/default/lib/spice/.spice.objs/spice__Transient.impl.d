lib/spice/transient.ml: Array Circuit Device Float List Mna Newton Op Option Wave
