lib/spice/ac.mli: Circuit Mna Newton Numerics
