lib/spice/mna.ml: Array Circuit Device Float Hashtbl List Wave
