(** A circuit is an immutable collection of named devices. Ground is node
    ["0"] (alias ["gnd"], case-insensitive). *)

type t

val empty : t
val add : t -> Device.t -> t
(** Raises [Invalid_argument] on a duplicate device name. *)

val of_devices : Device.t list -> t
val devices : t -> Device.t list
(** In insertion order. *)

val find : t -> string -> Device.t option
val replace : t -> string -> Device.t -> t
(** [replace c name d] substitutes the device called [name]; raises
    [Not_found] when absent. Used by DC sweeps to re-value a source. *)

val node_names : t -> string list
(** All non-ground node names, sorted, after ground aliasing. *)

val is_ground : string -> bool

val pp : Format.formatter -> t -> unit
(** One line per device, netlist-like. *)
