(** Modified nodal analysis: compilation of a {!Circuit.t} into an indexed
    form and in-place assembly of the Newton residual/Jacobian.

    Unknown vector layout: node voltages [0 .. n_nodes-1] (ground excluded)
    followed by branch currents (one per voltage source and inductor, in
    device order). Residuals: KCL (sum of currents leaving each node,
    including a [gmin] leak to ground) followed by branch equations. *)

type compiled

val compile : Circuit.t -> compiled
(** Assigns node and branch indices. Raises [Invalid_argument] when the
    circuit has no ground-referenced device at all. *)

val size : compiled -> int
(** Number of unknowns (nodes + branches). *)

val n_nodes : compiled -> int
val node_index : compiled -> string -> int
(** Index of a node voltage in the unknown vector; raises [Not_found] for
    unknown names; ground yields [-1]. *)

val branch_index : compiled -> string -> int
(** Index (into the unknown vector) of the branch current of the named
    voltage source or inductor. Raises [Not_found] otherwise. *)

val node_voltage : compiled -> float array -> string -> float
(** Reads a node voltage from a solution vector ([0.] for ground). *)

type integ = Trap | Backward_euler

type state = {
  cap_v : float array;  (** capacitor voltages at the previous accepted step *)
  cap_i : float array;  (** capacitor currents at the previous accepted step *)
  ind_v : float array;  (** inductor voltages at the previous accepted step *)
  ind_i : float array;  (** inductor currents at the previous accepted step *)
}

val init_state : compiled -> use_ic:bool -> x:float array -> state
(** Builds the time-zero state: capacitor voltages and inductor currents
    come from the device [ic] when [use_ic] and one is present, else from
    the solution [x]; capacitor currents start at zero. *)

val update_state :
  compiled -> integ:integ -> h:float -> prev:state -> x:float array -> state
(** Advances the companion-model state after an accepted step to [x]. *)

type mode =
  | Dc of { gmin : float; source_scale : float }
      (** Capacitors open, inductors short; sources scaled by
          [source_scale] (for source stepping); [gmin] leak on every
          node. *)
  | Tran of { t : float; h : float; integ : integ; state : state; gmin : float }
      (** Assemble the step ending at time [t] with step size [h]. *)

val assemble :
  compiled -> mode:mode -> x:float array -> jac:Numerics.Linalg.mat ->
  res:float array -> unit
(** Zeroes and fills [jac] and [res] for the given candidate solution. *)

val cap_count : compiled -> int
val ind_count : compiled -> int
