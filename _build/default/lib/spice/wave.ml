type t =
  | Dc of float
  | Sine of { offset : float; ampl : float; freq : float; phase : float; delay : float }
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list

let two_pi = 2.0 *. Float.pi

let pulse_value ~v1 ~v2 ~rise ~fall ~width tau =
  if tau < 0.0 then v1
  else if tau < rise then
    if rise <= 0.0 then v2 else v1 +. ((v2 -. v1) *. tau /. rise)
  else if tau < rise +. width then v2
  else if tau < rise +. width +. fall then
    if fall <= 0.0 then v1
    else v2 +. ((v1 -. v2) *. (tau -. rise -. width) /. fall)
  else v1

let value w t =
  match w with
  | Dc v -> v
  | Sine { offset; ampl; freq; phase; delay } ->
    if t < delay then offset +. (ampl *. sin phase)
    else offset +. (ampl *. sin ((two_pi *. freq *. (t -. delay)) +. phase))
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
    let tau = t -. delay in
    let tau =
      if period > 0.0 && Float.is_finite period && tau >= 0.0 then
        Float.rem tau period
      else tau
    in
    pulse_value ~v1 ~v2 ~rise ~fall ~width tau
  | Pwl pts -> begin
    match pts with
    | [] -> 0.0
    | (t0, v0) :: _ ->
      if t <= t0 then v0
      else begin
        let rec go = function
          | [ (_, v) ] -> v
          | (ta, va) :: ((tb, vb) :: _ as rest) ->
            if t <= tb then va +. ((vb -. va) *. (t -. ta) /. (tb -. ta))
            else go rest
          | [] -> 0.0
        in
        go pts
      end
  end

let dc_value = function
  | Dc v -> v
  | Sine { offset; _ } -> offset
  | Pulse { v1; _ } -> v1
  | Pwl pts -> ( match pts with [] -> 0.0 | (_, v) :: _ -> v)

let scale w k =
  match w with
  | Dc v -> Dc (k *. v)
  | Sine s -> Sine { s with offset = k *. s.offset; ampl = k *. s.ampl }
  | Pulse p -> Pulse { p with v1 = k *. p.v1; v2 = k *. p.v2 }
  | Pwl pts -> Pwl (List.map (fun (t, v) -> (t, k *. v)) pts)
