(** Independent-source waveforms (the SPICE DC / SIN / PULSE / PWL set). *)

type t =
  | Dc of float
  | Sine of { offset : float; ampl : float; freq : float; phase : float; delay : float }
      (** [offset + ampl * sin (2 pi freq (t - delay) + phase)] for
          [t >= delay], [offset] before; [phase] in radians. *)
  | Pulse of {
      v1 : float;  (** initial value *)
      v2 : float;  (** pulsed value *)
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;  (** 0. or infinity = single pulse *)
    }
  | Pwl of (float * float) list
      (** Piecewise linear [(time, value)] points, strictly increasing in
          time; constant extrapolation outside. *)

val value : t -> float -> float
(** [value w t] evaluates the waveform at time [t]. *)

val dc_value : t -> float
(** Value used during DC analyses: the [t = 0] value except for [Sine],
    which contributes its offset. *)

val scale : t -> float -> t
(** [scale w k] multiplies the waveform's values by [k] (used by source
    stepping). *)
