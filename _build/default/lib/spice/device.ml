type diode_params = { is : float; n : float; vt : float }

let default_diode = { is = 1e-14; n = 1.0; vt = 0.025 }

type bjt_params = { is : float; beta_f : float; beta_r : float; vt : float }

let default_npn = { is = 1e-12; beta_f = 100.0; beta_r = 1.0; vt = 0.025 }

type tunnel_params = {
  is : float;
  eta : float;
  vth : float;
  r0 : float;
  v0 : float;
  m : float;
}

let paper_tunnel =
  { is = 1e-12; eta = 1.0; vth = 0.025; r0 = 1000.0; v0 = 0.2; m = 2.0 }

type mos_params = { kp : float; vth : float; lambda : float }

let default_nmos = { kp = 200e-6; vth = 0.5; lambda = 0.02 }

type t =
  | Resistor of { name : string; n1 : string; n2 : string; r : float }
  | Capacitor of { name : string; n1 : string; n2 : string; c : float; ic : float option }
  | Inductor of { name : string; n1 : string; n2 : string; l : float; ic : float option }
  | Vsource of { name : string; np : string; nn : string; wave : Wave.t }
  | Isource of { name : string; np : string; nn : string; wave : Wave.t }
  | Diode of { name : string; np : string; nn : string; p : diode_params }
  | Bjt of { name : string; nc : string; nb : string; ne : string; p : bjt_params }
  | Tunnel_diode of { name : string; np : string; nn : string; p : tunnel_params }
  | Mosfet of { name : string; nd : string; ng : string; ns : string; p : mos_params }
  | Nonlinear_cs of {
      name : string;
      np : string;
      nn : string;
      f : float -> float;
      df : (float -> float) option;
    }

let name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Inductor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Diode { name; _ }
  | Bjt { name; _ }
  | Tunnel_diode { name; _ }
  | Mosfet { name; _ }
  | Nonlinear_cs { name; _ } -> name

let nodes = function
  | Resistor { n1; n2; _ } | Capacitor { n1; n2; _ } | Inductor { n1; n2; _ } ->
    [ n1; n2 ]
  | Vsource { np; nn; _ }
  | Isource { np; nn; _ }
  | Diode { np; nn; _ }
  | Tunnel_diode { np; nn; _ }
  | Nonlinear_cs { np; nn; _ } -> [ np; nn ]
  | Bjt { nc; nb; ne; _ } -> [ nc; nb; ne ]
  | Mosfet { nd; ng; ns; _ } -> [ nd; ng; ns ]

(* Overflow-safe exponential: linear continuation above [cap] keeps the
   Newton iteration finite for wild intermediate voltages. *)
let safe_exp x =
  let cap = 40.0 in
  if x > cap then exp cap *. (1.0 +. (x -. cap)) else exp x

let safe_exp_deriv x =
  let cap = 40.0 in
  if x > cap then exp cap else exp x

let diode_iv { is; n; vt } v =
  let nvt = n *. vt in
  let x = v /. nvt in
  let i = is *. (safe_exp x -. 1.0) in
  let g = is *. safe_exp_deriv x /. nvt in
  (i, g)

let tunnel_iv { is; eta; vth; r0; v0; m } v =
  (* i_tunnel = (v/R0) exp(-(v/V0)^m); define |v/V0|^m with sign care so the
     curve stays odd-symmetric-ish below zero (paper uses v >= 0 region) *)
  let ratio = v /. v0 in
  let powm = Float.pow (Float.abs ratio) m in
  let e = exp (-.powm) in
  let i_tun = v /. r0 *. e in
  (* d/dv [v e^{-(v/V0)^m}] / R0 = e^{-p} (1 - m p) / R0 with p = (|v|/V0)^m *)
  let g_tun = e /. r0 *. (1.0 -. (m *. powm)) in
  let i_d, g_d = diode_iv { is; n = eta; vt = vth } v in
  (i_tun +. i_d, g_tun +. g_d)

let bjt_currents { is; beta_f; beta_r; vt } ~vbe ~vbc =
  let ef = safe_exp (vbe /. vt) and er = safe_exp (vbc /. vt) in
  let icc = is *. (ef -. er) in
  let ibe = is /. beta_f *. (ef -. 1.0) in
  let ibc = is /. beta_r *. (er -. 1.0) in
  let ic = icc -. ibc in
  let ib = ibe +. ibc in
  (ic, ib)

type mos_linearization = { id : float; gm : float; gds : float }

(* level-1 square law with drain/source symmetry for vds < 0 *)
let mos_iv_forward { kp; vth; lambda } ~vgs ~vds =
  let vov = vgs -. vth in
  if vov <= 0.0 then { id = 0.0; gm = 0.0; gds = 0.0 }
  else if vds < vov then begin
    (* triode *)
    let clm = 1.0 +. (lambda *. vds) in
    let core = (vov *. vds) -. (0.5 *. vds *. vds) in
    {
      id = kp *. core *. clm;
      gm = kp *. vds *. clm;
      gds = (kp *. (vov -. vds) *. clm) +. (kp *. core *. lambda);
    }
  end
  else begin
    (* saturation *)
    let clm = 1.0 +. (lambda *. vds) in
    let core = 0.5 *. vov *. vov in
    {
      id = kp *. core *. clm;
      gm = kp *. vov *. clm;
      gds = kp *. core *. lambda;
    }
  end

let mos_iv p ~vgs ~vds =
  if vds >= 0.0 then mos_iv_forward p ~vgs ~vds
  else begin
    (* swap drain and source: vgs' = vgd = vgs - vds, vds' = -vds *)
    let lin = mos_iv_forward p ~vgs:(vgs -. vds) ~vds:(-.vds) in
    (* id' flows source->drain; chain rule for the swapped variables *)
    { id = -.lin.id; gm = -.lin.gm; gds = lin.gds +. lin.gm }
  end

type bjt_linearization = {
  ic : float;
  ib : float;
  dic_dvbe : float;
  dic_dvbc : float;
  dib_dvbe : float;
  dib_dvbc : float;
}

let bjt_iv ({ is; beta_f; beta_r; vt } as p) ~vbe ~vbc =
  let ic, ib = bjt_currents p ~vbe ~vbc in
  let def = safe_exp_deriv (vbe /. vt) /. vt in
  let der = safe_exp_deriv (vbc /. vt) /. vt in
  {
    ic;
    ib;
    dic_dvbe = is *. def;
    dic_dvbc = (-.is *. der) -. (is /. beta_r *. der);
    dib_dvbe = is /. beta_f *. def;
    dib_dvbc = is /. beta_r *. der;
  }
