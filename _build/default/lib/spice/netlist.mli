(** Text netlists in a SPICE-like dialect.

    One device per line; [*] or [;] start comments; blank lines and a
    trailing [.end] are ignored; everything is case-insensitive except
    node names. Values accept the SPICE suffixes
    [f p n u m k meg g t] (e.g. [100u], [1.5k], [2meg]).

    Supported cards:
    {v
    Rname n1 n2 value
    Cname n1 n2 value [IC=v0]
    Lname n1 n2 value [IC=i0]
    Vname n+ n- DC value
    Vname n+ n- SIN(offset ampl freq [delay [phase_deg]])
    Vname n+ n- PULSE(v1 v2 delay rise fall width [period])
    Vname n+ n- PWL(t1 v1 t2 v2 ...)
    Iname n+ n- <same sources as V>
    Dname n+ n- [IS=..] [N=..]
    Qname nc nb ne [IS=..] [BF=..] [BR=..]
    TDname n+ n- [IS=..] [R0=..] [V0=..] [M=..] [ETA=..]
    v}
    The first letter(s) of the device name select the kind (R, C, L, V,
    I, D, Q, TD). *)

type error = { line : int; message : string }

val parse_value : string -> (float, string) result
(** SPICE number with optional suffix: [parse_value "100u" = Ok 1e-4]. *)

val parse_string : string -> (Circuit.t, error) result
val parse_file : string -> (Circuit.t, error) result

val to_string : Circuit.t -> string
(** Round-trippable rendering (behavioural sources are emitted as
    comments since they have no textual form). *)
