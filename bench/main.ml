(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (printed as rows; figures written as SVG under
   out/figures/), then runs the tracked perf benches (emitting
   BENCH_*.json) and Bechamel timing benches - one Test.make per
   experiment family.

   Flags:
     --fast          skip the transient binary searches (tables print the
                     prediction side plus the paper's reference numbers)
     --skip-bench    skip all benchmarks
     --only-bench    run only the benchmarks
     --skip-slow     small perf-bench problem sizes and no transient
                     micro-benchmarks (the CI smoke configuration)
     --jobs N        worker-pool size for the parallel kernels
                     (overrides OSHIL_JOBS)
     --trace FILE    record telemetry: Chrome trace_event JSON, or the
                     JSONL event log when FILE ends in .jsonl
     --check-json F...  parse previously emitted BENCH_*.json files and
                     exit non-zero if any is malformed *)

type opts = {
  fast : bool;
  skip_bench : bool;
  only_bench : bool;
  skip_slow : bool;
  jobs : int option;
  trace : string option;
  check_json : string list;
  compare : string list;
  fresh_dir : string;
}

let usage_lines =
  [
    "usage: bench/main.exe [OPTIONS]";
    "  --fast             skip the slow transient lock searches";
    "  --skip-bench       run experiments only, no benchmarks";
    "  --only-bench       run benchmarks only, no experiments";
    "  --skip-slow        small bench sizes, no transient micro-benches";
    "  --jobs N           pool size for parallel kernels (>= 1)";
    "  --trace FILE       write a telemetry trace (.jsonl = event log)";
    "  --check-json F...  validate emitted bench JSON files and exit";
    "  --fresh-dir DIR    directory holding fresh records for --compare";
    "                     (default: current directory; give it before";
    "                     --compare)";
    "  --compare F...     regression sentinel: compare each baseline";
    "                     record F against the same-named fresh record";
    "                     in --fresh-dir; exit 1 on any regression";
  ]

let usage_error msg =
  prerr_endline ("bench/main.exe: " ^ msg);
  List.iter prerr_endline usage_lines;
  exit 2

let parse_args () =
  let rec go o = function
    | [] -> o
    | "--fast" :: rest -> go { o with fast = true } rest
    | "--skip-bench" :: rest -> go { o with skip_bench = true } rest
    | "--only-bench" :: rest -> go { o with only_bench = true } rest
    | "--skip-slow" :: rest -> go { o with skip_slow = true } rest
    | "--jobs" :: v :: rest -> begin
      match int_of_string_opt v with
      | Some n when n >= 1 -> go { o with jobs = Some n } rest
      | _ -> usage_error (Printf.sprintf "--jobs expects a positive integer, got %S" v)
    end
    | [ "--jobs" ] -> usage_error "--jobs expects an argument"
    | "--trace" :: v :: rest -> go { o with trace = Some v } rest
    | [ "--trace" ] -> usage_error "--trace expects a file argument"
    | "--check-json" :: rest ->
      if rest = [] then usage_error "--check-json expects at least one file"
      else { o with check_json = rest }
    | "--fresh-dir" :: v :: rest -> go { o with fresh_dir = v } rest
    | [ "--fresh-dir" ] -> usage_error "--fresh-dir expects a directory"
    | "--compare" :: rest ->
      if rest = [] then usage_error "--compare expects at least one baseline"
      else { o with compare = rest }
    | ("--help" | "-h") :: _ ->
      List.iter print_endline usage_lines;
      exit 0
    | arg :: _ -> usage_error (Printf.sprintf "unknown argument %S" arg)
  in
  go
    { fast = false; skip_bench = false; only_bench = false; skip_slow = false;
      jobs = None; trace = None; check_json = []; compare = [];
      fresh_dir = Filename.current_dir_name }
    (List.tl (Array.to_list Sys.argv))

let figures_dir = "out/figures"

let show out =
  Format.printf "%a@." Experiments.Output.print out;
  let paths = Experiments.Output.write_figures ~dir:figures_dir out in
  List.iter (Format.printf "  figure: %s@.") paths;
  Format.printf "@."

let run_experiments ~fast () =
  Format.printf
    "oshil experiment harness - reproducing the tables and figures of@.\
     'A Rigorous Graphical Technique for Predicting Sub-harmonic Injection@.\
     Locking in LC Oscillators' (DAC 2014)%s@.@."
    (if fast then " [--fast: simulation searches skipped]" else "");
  (* ---- section II-III illustrations (tanh oscillator) ---- *)
  let ts = Experiments.Tanh_experiments.default_setup in
  show (Experiments.Tanh_experiments.fig3_natural ts);
  show (Experiments.Tanh_experiments.fig6_tank ts);
  show (Experiments.Tanh_experiments.fig7_solutions ts);
  show (Experiments.Tanh_experiments.fig9_states ts);
  show (Experiments.Tanh_experiments.fig10_lock_range ~validate:(not fast) ts);
  (* ---- ablation: rigorous vs PPV baseline (paper SI comparison) ---- *)
  let tanh_osc = Circuits.Tanh_osc.oscillator ts.params in
  show
    (Experiments.Baseline_cmp.output
       (Experiments.Baseline_cmp.sweep ~simulate:(not fast) tanh_osc.nl
          ~tank:tanh_osc.tank ~n:3));
  (* ---- section IV-A: cross-coupled BJT differential pair ---- *)
  let dp = Experiments.Osc_experiments.diff_pair () in
  show (Experiments.Osc_experiments.fig_fv dp);
  show (Experiments.Osc_experiments.fig_natural_prediction dp);
  show (Experiments.Osc_experiments.fig_transient dp);
  let t1, _ = Experiments.Osc_experiments.table_lock_range ~predict_only:fast dp in
  show t1;
  show (Experiments.Osc_experiments.fig_lock_range_curves dp);
  if not fast then show (Experiments.Osc_experiments.fig_states dp);
  (* ---- section IV-B: tunnel diode ---- *)
  let td = Experiments.Osc_experiments.tunnel () in
  show (Experiments.Osc_experiments.fig_fv td);
  show (Experiments.Osc_experiments.fig_natural_prediction td);
  show (Experiments.Osc_experiments.fig_transient td);
  let t2, _ = Experiments.Osc_experiments.table_lock_range ~predict_only:fast td in
  show t2;
  show (Experiments.Osc_experiments.fig_lock_range_curves td);
  if not fast then show (Experiments.Osc_experiments.fig_states td);
  (* ---- ablation A2: asymmetric cell, filtering assumption ---- *)
  show
    (Experiments.Asym_ablation.run ~simulate:(not fast)
       ~self_consistent:(not fast) ());
  (* ---- ablation A3: FHIL vs Adler ---- *)
  show (Experiments.Fhil_experiment.run ());
  (* ---- extension X3: Arnold tongue ---- *)
  show (Experiments.Tongue_experiment.run ());
  (* ---- extension X2: injection pulling outside the band ---- *)
  show (Experiments.Pulling_experiment.run ~simulate:(not fast) ());
  (* ---- extension X1: CMOS cross-coupled VCO ---- *)
  show (Experiments.Cmos_experiment.run ~validate:(not fast) ());
  (* ---- speedup (section IV: 25x and 50x) ---- *)
  if not fast then begin
    let s_dp = Experiments.Speedup.run dp in
    show (Experiments.Speedup.output s_dp ~paper_speedup:25.0);
    let s_td = Experiments.Speedup.run td in
    show (Experiments.Speedup.output s_td ~paper_speedup:50.0)
  end

(* ------------------------------------------------------------------ *)
(* Tracked perf benches: the parallel kernels, timed sequential vs
   pooled and written as machine-readable JSON so the perf trajectory
   is comparable across PRs. *)

let time_best ~repeats f =
  let best = ref infinity and result = ref None in
  for _ = 1 to repeats do
    let t0 = Obs.Clock.wall_s () in
    let r = f () in
    let dt = Obs.Clock.wall_s () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

(* Run [f] once with telemetry forced on and return the deltas of the
   named counters as bench-JSON extra fields (metric dots become
   underscores). Used outside the timed repeats so the timing numbers
   never include recording overhead. *)
let metered_counters names f =
  let was = Obs.enabled () in
  let before = List.map (fun n -> (n, Obs.Metrics.counter_value n)) names in
  Obs.set_enabled true;
  let finish () =
    Obs.set_enabled was;
    List.map
      (fun (n, v0) ->
        ( String.map (fun c -> if c = '.' then '_' else c) n,
          float_of_int (Obs.Metrics.counter_value n - v0) ))
      before
  in
  match f () with
  | _ -> finish ()
  | exception e ->
    ignore (finish ());
    raise e

(* Allocation footprint of one representative run, measured outside the
   timed repeats (a quick_stat pair brackets the run, so the timing
   numbers never include it). Word counts are per-run deltas of the
   calling domain; the explicit minor collections flush the allocation
   counter, which on OCaml 5.1 only updates at minor-GC boundaries.
   The regression sentinel tracks these with a 25% band. *)
let gc_fields f =
  Gc.minor ();
  let g0 = Gc.quick_stat () in
  ignore (f ());
  Gc.minor ();
  let g1 = Gc.quick_stat () in
  [
    ("gc_minor_words", g1.Gc.minor_words -. g0.Gc.minor_words);
    ("gc_promoted_words", g1.Gc.promoted_words -. g0.Gc.promoted_words);
    ("gc_major_words", g1.Gc.major_words -. g0.Gc.major_words);
    ( "gc_minor_collections",
      float_of_int (g1.Gc.minor_collections - g0.Gc.minor_collections) );
    ( "gc_major_collections",
      float_of_int (g1.Gc.major_collections - g0.Gc.major_collections) );
  ]

let emit_entry ~path (entry : Experiments.Bench_json.entry) =
  Experiments.Bench_json.write ~path entry;
  (* self-check: the file we just wrote must round-trip *)
  let back = Experiments.Bench_json.read ~path in
  assert (back.name = entry.name && back.jobs = entry.jobs);
  Printf.printf "  wrote %s (jobs=%d, wall=%.4fs, speedup_vs_seq=%.2fx)\n%!"
    path entry.jobs entry.wall_s entry.speedup_vs_seq

(* max relative disagreement between two grids, for pinning the
   symmetry-reduced quadrature against the exact one *)
let grid_max_rel_err (a : Shil.Grid.t) (b : Shil.Grid.t) =
  let err = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j za ->
          let zb = b.Shil.Grid.i1.(i).(j) in
          let d = Numerics.Cx.abs (Numerics.Cx.sub za zb) in
          let scale = Numerics.Cx.abs za +. 1e-18 in
          if d /. scale > !err then err := d /. scale)
        row)
    a.Shil.Grid.i1;
  !err

let run_perf_benches ~skip_slow ~jobs () =
  Printf.printf "=== tracked perf benches (parallel kernels; jobs=%d)\n%!" jobs;
  let tanh_nl = Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3 in
  let n_phi, n_amp, points, repeats =
    if skip_slow then (31, 21, 256, 2) else (121, 101, 512, 3)
  in
  let sample () =
    Shil.Grid.sample ~points ~n_phi ~n_amp tanh_nl ~n:3 ~r:1e3 ~vi:0.2
      ~a_range:(0.3, 1.45) ()
  in
  let sample_red () =
    Shil.Grid.sample ~reduction:`Symmetry ~points ~n_phi ~n_amp tanh_nl ~n:3
      ~r:1e3 ~vi:0.2 ~a_range:(0.3, 1.45) ()
  in
  (* warm the trig-table cache so no timed side pays table construction *)
  ignore (sample ());
  (* three tiers, slowest to fastest: the scalar closure fallback (the
     pre-batch-kernel code path), the bit-identical batch kernels, and
     the opt-in symmetry-reduced quadrature (tracked wall_s) *)
  Numerics.Kernel.set_batch_enabled false;
  let g_scalar, scalar_s = time_best ~repeats sample in
  Numerics.Kernel.set_batch_enabled true;
  let g_batch, batch_s = time_best ~repeats sample in
  let batch_identical = g_scalar.Shil.Grid.i1 = g_batch.Shil.Grid.i1 in
  if not batch_identical then
    failwith "perf bench: batch Grid.sample differs from the scalar fallback";
  ignore (sample_red ());
  Numerics.Pool.set_jobs 1;
  let g_seq, seq_s = time_best ~repeats sample_red in
  Numerics.Pool.set_jobs jobs;
  let g_par, par_s = time_best ~repeats sample_red in
  let identical = g_seq.Shil.Grid.i1 = g_par.Shil.Grid.i1 in
  if not identical then
    failwith "perf bench: parallel Grid.sample differs from sequential";
  let red_err = grid_max_rel_err g_batch g_par in
  if not (red_err < 1e-6) then
    failwith "perf bench: symmetry-reduced grid drifted from the exact grid";
  let grid_counters = metered_counters [ "shil.grid.f_evals" ] sample_red in
  let grid_gc = gc_fields sample_red in
  emit_entry ~path:"BENCH_grid.json"
    {
      name = Printf.sprintf "grid_sample_%dx%dx%d" n_phi n_amp points;
      jobs;
      wall_s = par_s;
      speedup_vs_seq = seq_s /. par_s;
      extra =
        [
          ("seq_wall_s", seq_s);
          ("n_phi", float_of_int n_phi);
          ("n_amp", float_of_int n_amp);
          ("points", float_of_int points);
          ("bit_identical_to_seq", if identical then 1.0 else 0.0);
          ("scalar_wall_s", scalar_s);
          ("batch_wall_s", batch_s);
          ("batch_bit_identical_to_scalar", if batch_identical then 1.0 else 0.0);
          ("speedup_batch_vs_scalar", scalar_s /. batch_s);
          ("speedup_vs_scalar", scalar_s /. par_s);
          ("reduced_max_rel_err", red_err);
          ("vec_tanh", if Numerics.Kernel.vec_tanh_available () then 1.0 else 0.0);
        ]
        @ grid_counters @ grid_gc;
      meta = Experiments.Bench_json.host_meta ();
    };
  (* lock-range boundary search: Solutions.find stability scans dominate;
     the quadratures inherit the grid's reduction mode *)
  let lr_grid_exact =
    if skip_slow then g_batch
    else
      Shil.Grid.sample ~points:256 ~n_phi:61 ~n_amp:51 tanh_nl ~n:3 ~r:1e3
        ~vi:0.2 ~a_range:(0.3, 1.45) ()
  in
  let lr_grid_red =
    if skip_slow then g_par
    else
      Shil.Grid.sample ~reduction:`Symmetry ~points:256 ~n_phi:61 ~n_amp:51
        tanh_nl ~n:3 ~r:1e3 ~vi:0.2 ~a_range:(0.3, 1.45) ()
  in
  let boundary g () = Shil.Lock_range.phi_d_boundary ~tol:1e-3 g in
  ignore (boundary lr_grid_exact ());
  Numerics.Kernel.set_batch_enabled false;
  let b_scalar, scalar_s = time_best ~repeats (boundary lr_grid_exact) in
  Numerics.Kernel.set_batch_enabled true;
  let b_batch, batch_s = time_best ~repeats (boundary lr_grid_exact) in
  if b_scalar <> b_batch then
    failwith "perf bench: batch phi_d_boundary differs from the scalar fallback";
  ignore (boundary lr_grid_red ());
  Numerics.Pool.set_jobs 1;
  let b_seq, seq_s = time_best ~repeats (boundary lr_grid_red) in
  Numerics.Pool.set_jobs jobs;
  let b_par, par_s = time_best ~repeats (boundary lr_grid_red) in
  if b_seq <> b_par then
    failwith "perf bench: parallel phi_d_boundary differs from sequential";
  if Float.abs (b_par -. b_batch) > 0.02 then
    failwith "perf bench: reduced-mode lock boundary drifted from exact";
  emit_entry ~path:"BENCH_lockrange.json"
    {
      name = "lock_range_phi_d_boundary";
      jobs;
      wall_s = par_s;
      speedup_vs_seq = seq_s /. par_s;
      extra =
        [
          ("seq_wall_s", seq_s);
          ("phi_d_max", b_par);
          ("tol", 1e-3);
          ("scalar_wall_s", scalar_s);
          ("batch_wall_s", batch_s);
          ("exact_phi_d_max", b_batch);
          ("speedup_batch_vs_scalar", scalar_s /. batch_s);
          ("speedup_vs_scalar", scalar_s /. par_s);
        ]
        @ gc_fields (boundary lr_grid_red);
      meta = Experiments.Bench_json.host_meta ();
    };
  (* spice transient on the behavioural tanh oscillator: sequential (the
     MNA inner loops don't use the pool), tracked for the solver-counter
     trajectory as much as for wall time *)
  let tanh_params = Circuits.Tanh_osc.default in
  let tanh_circuit = Circuits.Tanh_osc.circuit tanh_params in
  let fc = Shil.Tank.f_c (Circuits.Tanh_osc.tank tanh_params) in
  let cycles = if skip_slow then 5 else 20 in
  let dt = 1.0 /. (fc *. 120.0) in
  let t_stop = float_of_int cycles /. fc in
  let tran () =
    Spice.Transient.run tanh_circuit
      ~probes:[ Spice.Transient.Node "t" ]
      (Spice.Transient.default_options ~dt ~t_stop)
  in
  ignore (tran ());
  let tran_counters =
    metered_counters
      [
        "spice.newton.iters"; "spice.newton.solves";
        "spice.transient.steps_accepted";
      ]
      tran
  in
  let _, tran_s = time_best ~repeats tran in
  emit_entry ~path:"BENCH_transient.json"
    {
      name = Printf.sprintf "transient_tanh_%dcyc" cycles;
      jobs;
      wall_s = tran_s;
      speedup_vs_seq = 1.0;
      extra = [ ("dt", dt); ("t_stop", t_stop) ] @ tran_counters
              @ gc_fields tran;
      meta = Experiments.Bench_json.host_meta ();
    };
  (* harmonic balance vs transient SHIL verification: the full HB
     injected-tone lock range (free-running oscprobe, outward march,
     edge bisection) against the cost of verifying the same band with
     transient lock probes. Each HB probe is a warm Newton solve on the
     spectral residual; each transient probe must integrate hundreds of
     tank cycles before the lock detector is trustworthy, so the
     paper's headline speedup shows up here as wall clock. The
     transient-equivalent cost is one measured probe times the number
     of probes the HB search actually spent, with the probe integrated
     over the settling length the differential oracle requires for a
     trustworthy lock verdict (260 cycles at 80 steps/cycle) — a
     conservative costing, since probes near a bisected edge would
     need far longer to resolve the beat. K = 3 is the production
     lock-range truncation: the band edges match the K = 7 ones to
     under 5e-4 relative on this cell (the accuracy tests pin higher
     truncations separately). *)
  let tanh_p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator tanh_p in
  let tank = Circuits.Tanh_osc.tank tanh_p in
  let n_sub = 3 and vi = 0.03 in
  let hb_k, hb_samples = (3, 128) in
  let a_guess =
    match
      Shil.Natural.predicted_amplitude ~points osc.Shil.Analysis.nl
        ~r:tank.Shil.Tank.r
    with
    | Some a -> a
    | None -> failwith "perf bench: tanh cell must oscillate"
  in
  let guess_width =
    (Shil.Analysis.run osc ~n:n_sub ~vi).Shil.Analysis.lock_range
      .Shil.Lock_range.delta_f_inj
  in
  let inject ~f_inj =
    Api.hb_circuit
      ~injection:(Api.hb_injection_wave ~tank ~n:n_sub ~vi ~f_inj)
      osc
  in
  let hb () =
    let free =
      Hb.Driver.oscprobe ~k_max:hb_k ~samples:hb_samples
        ~f_guess:(Shil.Tank.f_c tank) ~a_guess (Api.hb_circuit osc)
    in
    Hb.Driver.lock_range ~free ~n:n_sub ~guess_width ~inject ()
  in
  let band = hb () in
  if band.Hb.Driver.holes <> 0 then
    failwith "perf bench: HB lock range has probe holes";
  let band_rerun, hb_s = time_best ~repeats hb in
  if band_rerun <> band then
    failwith "perf bench: HB lock range is not deterministic";
  let hb_counters =
    metered_counters
      [ "hb.newton_iters"; "hb.solves"; "hb.lockrange.probes" ]
      hb
  in
  let hb_gc = gc_fields hb in
  let tr_cycles, steps_per_cycle = (260.0, 80) in
  let fc = Shil.Tank.f_c tank in
  let f_center = band.Hb.Driver.f_center in
  let im =
    Shil.Simulate.injection_current ~tank
      { Shil.Simulate.vi; n = n_sub; f_inj = f_center; phase = 0.0 }
  in
  let inj_wave =
    Spice.Wave.Sine
      { offset = 0.0; ampl = im; freq = f_center; phase = 0.0; delay = 0.0 }
  in
  let inj_circuit = Circuits.Tanh_osc.circuit ~injection:inj_wave tanh_p in
  let tr_probe = Spice.Transient.Node "t" in
  let tran_probe () =
    let res =
      Spice.Transient.run inj_circuit ~probes:[ tr_probe ]
        (Spice.Transient.default_options
           ~dt:(1.0 /. (float_of_int steps_per_cycle *. fc))
           ~t_stop:(tr_cycles /. fc))
    in
    (match res.Spice.Transient.failure with
    | Some e -> failwith (Resilience.Oshil_error.to_string e)
    | None -> ());
    let s =
      Waveform.Signal.make ~times:res.Spice.Transient.times
        ~values:(Spice.Transient.signal res tr_probe)
    in
    (Waveform.Lock.analyze s ~f_target:(f_center /. float_of_int n_sub))
      .Waveform.Lock.locked
  in
  ignore (tran_probe ());
  let center_locked, tran_probe_s = time_best ~repeats tran_probe in
  if not center_locked then
    failwith "perf bench: transient probe at the HB band center did not lock";
  let tran_equiv_s = tran_probe_s *. float_of_int band.Hb.Driver.probes in
  emit_entry ~path:"BENCH_hb.json"
    {
      name = Printf.sprintf "hb_lockrange_n%d_k%d" n_sub hb_k;
      jobs;
      wall_s = hb_s;
      speedup_vs_seq = tran_equiv_s /. hb_s;
      extra =
        [
          ("tran_probe_wall_s", tran_probe_s);
          ("tran_equiv_wall_s", tran_equiv_s);
          ("speedup_vs_transient", tran_equiv_s /. hb_s);
          ("band_probes", float_of_int band.Hb.Driver.probes);
          ("band_holes", float_of_int band.Hb.Driver.holes);
          ("band_width_hz", band.Hb.Driver.f_hi -. band.Hb.Driver.f_lo);
          ("k_max", float_of_int hb_k);
          ("hb_samples", float_of_int hb_samples);
          ("n_sub", float_of_int n_sub);
          ("vi", vi);
          ("tran_cycles", tr_cycles);
        ]
        @ hb_counters @ hb_gc;
      meta = Experiments.Bench_json.host_meta ();
    };
  (* content-addressed cache: one cold populate of the grid against warm
     replays from the store. The cold run pays the full quadrature plus
     encode/disk-write; the warm runs are pure lookups. The cache is
     scoped to a throwaway directory and switched off again afterwards
     so no other bench sees it. *)
  let cache_dir = Filename.temp_dir "oshil-bench-cache" "" in
  Cache.Store.set_dir cache_dir;
  Cache.Store.clear_memory ();
  Cache.Store.set_enabled true;
  let t0 = Obs.Clock.wall_s () in
  let g_cold = sample () in
  let cold_s = Obs.Clock.wall_s () -. t0 in
  let g_warm, warm_s = time_best ~repeats sample in
  let identical = g_cold.Shil.Grid.i1 = g_warm.Shil.Grid.i1 in
  if not identical then
    failwith "perf bench: cached Grid.sample differs from cold computation";
  let cache_counters =
    metered_counters [ "cache.hits"; "cache.misses" ] sample
  in
  let cache_gc = gc_fields sample in
  Cache.Store.set_enabled false;
  Cache.Store.clear_memory ();
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  (try rm_rf cache_dir with Sys_error _ -> ());
  emit_entry ~path:"BENCH_cache.json"
    {
      name = Printf.sprintf "grid_sample_cached_%dx%dx%d" n_phi n_amp points;
      jobs;
      wall_s = warm_s;
      speedup_vs_seq = cold_s /. warm_s;
      extra =
        [
          ("cold_wall_s", cold_s);
          ("bit_identical_to_cold", if identical then 1.0 else 0.0);
        ]
        @ cache_counters @ cache_gc;
      meta = Experiments.Bench_json.host_meta ();
    }

(* Bechamel's full analysis pipeline is heavyweight; we use its sampler
   and report the OLS time-per-run estimate per test. *)
let run_benchmarks ~skip_slow () =
  let open Bechamel in
  print_endline "=== Bechamel micro-benchmarks (one per experiment family)";
  let tanh_nl = Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3 in
  let tanh_tank =
    let wc = 2.0 *. Float.pi *. 1e6 in
    Shil.Tank.make ~r:1e3 ~l:(100.0 /. wc) ~c:(1.0 /. (100.0 *. wc))
  in
  ignore tanh_tank;
  let grid =
    Shil.Grid.sample ~points:256 ~n_phi:61 ~n_amp:51 tanh_nl ~n:3 ~r:1e3
      ~vi:0.2 ~a_range:(0.3, 1.45) ()
  in
  let dp_params = Circuits.Diff_pair.default in
  let dp_circuit = Circuits.Diff_pair.circuit dp_params in
  let dp_fc = Shil.Tank.f_c (Circuits.Diff_pair.tank dp_params) in
  let td_params = Circuits.Tunnel_osc.default in
  let td_circuit = Circuits.Tunnel_osc.circuit td_params in
  let td_fc = Shil.Tank.f_c (Circuits.Tunnel_osc.tank td_params) in
  let synth_signal =
    let times = Array.init 20000 (fun k -> float_of_int k /. 2e6) in
    let values = Array.map (fun t -> cos (2.0 *. Float.pi *. 5.033e5 *. t)) times in
    Waveform.Signal.make ~times ~values
  in
  let fast_tests =
    [
      Test.make ~name:"fig3_natural_solve"
        (Staged.stage (fun () ->
             ignore (Shil.Natural.solve ~points:512 tanh_nl ~r:1e3)));
      Test.make ~name:"fig6_tank_sweep_500pts"
        (Staged.stage (fun () ->
             let acc = ref 0.0 in
             for k = 0 to 499 do
               let f = 0.5e6 +. (2e3 *. float_of_int k) in
               acc := !acc +. Shil.Tank.mag tanh_tank ~omega:(2.0 *. Float.pi *. f)
             done;
             ignore !acc));
      Test.make ~name:"fig7_two_tone_i1"
        (Staged.stage (fun () ->
             ignore
               (Shil.Describing_function.i1_two_tone ~points:512 tanh_nl ~n:3
                  ~a:1.0 ~vi:0.2 ~phi:1.0)));
      Test.make ~name:"fig7_lock_solutions"
        (Staged.stage (fun () -> ignore (Shil.Solutions.find grid ~phi_d:0.05)));
      Test.make ~name:"fig9_n_states"
        (Staged.stage (fun () ->
             let p =
               { Shil.Solutions.phi = 1.0; a = 1.0; stable = true;
                 trace = -1.0; det = 1.0 }
             in
             ignore (Shil.Solutions.n_states p ~n:3)));
      Test.make ~name:"fig10_contours"
        (Staged.stage (fun () -> ignore (Shil.Grid.t_f_curve grid)));
      Test.make ~name:"fig10_phi_d_boundary"
        (Staged.stage (fun () ->
             ignore (Shil.Lock_range.phi_d_boundary ~tol:1e-3 grid)));
    ]
  in
  let slow_tests =
    [
      Test.make ~name:"fig12a_diffpair_op"
        (Staged.stage (fun () -> ignore (Spice.Op.run dp_circuit)));
      Test.make ~name:"fig13_diffpair_tran_10cyc"
        (Staged.stage (fun () ->
             let dt = 1.0 /. (dp_fc *. 120.0) in
             ignore
               (Spice.Transient.run dp_circuit
                  ~probes:[ Circuits.Diff_pair.osc_probe ]
                  (Spice.Transient.default_options ~dt ~t_stop:(10.0 /. dp_fc)))));
      Test.make ~name:"fig13_diffpair_tran_adaptive"
        (Staged.stage (fun () ->
             let dt = 1.0 /. (dp_fc *. 120.0) in
             ignore
               (Spice.Transient.run dp_circuit
                  ~probes:[ Circuits.Diff_pair.osc_probe ]
                  (Spice.Transient.adaptive ~lte_tol:1e-4
                     (Spice.Transient.default_options ~dt
                        ~t_stop:(10.0 /. dp_fc))))));
      Test.make ~name:"fig16b_tunnel_op"
        (Staged.stage (fun () -> ignore (Spice.Op.run td_circuit)));
      Test.make ~name:"fig17_tunnel_tran_10cyc"
        (Staged.stage (fun () ->
             let dt = 1.0 /. (td_fc *. 120.0) in
             ignore
               (Spice.Transient.run td_circuit
                  ~probes:[ Circuits.Tunnel_osc.osc_probe ]
                  (Spice.Transient.default_options ~dt ~t_stop:(10.0 /. td_fc)))));
      Test.make ~name:"fig15_lock_detection"
        (Staged.stage (fun () ->
             ignore (Waveform.Lock.analyze synth_signal ~f_target:5.033e5)));
    ]
  in
  let tests =
    Test.make_grouped ~name:"oshil"
      (if skip_slow then fast_tests else fast_tests @ slow_tests)
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let quota = if skip_slow then Time.second 0.1 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota () in
  let raw_results = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw_results in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      match Hashtbl.find_opt results name with
      | Some r -> begin
        match Bechamel.Analyze.OLS.estimates r with
        | Some [ est ] ->
          Printf.printf "  %-32s %14.1f ns/run\n" name est
        | _ -> Printf.printf "  %-32s (no estimate)\n" name
      end
      | None -> ())
    (List.sort compare names)

(* Regression sentinel entry point: each baseline record is compared to
   the same-named record in [fresh_dir]. Exit 1 on any gated finding or
   unreadable record. *)
let run_compare ~fresh_dir baselines =
  Printf.printf "=== bench regression sentinel (fresh records from %s)\n%!"
    fresh_dir;
  let io_ok = ref true in
  let read_record path =
    match Experiments.Bench_json.read ~path with
    | e -> Some e
    | exception Experiments.Bench_json.Parse_error msg ->
      Printf.eprintf "%s: PARSE ERROR: %s\n" path msg;
      io_ok := false;
      None
    | exception Sys_error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      io_ok := false;
      None
  in
  let findings =
    List.concat_map
      (fun bpath ->
        let fpath = Filename.concat fresh_dir (Filename.basename bpath) in
        match read_record bpath with
        | None -> []
        | Some baseline -> begin
          match read_record fpath with
          | None -> []
          | Some fresh ->
            if baseline.Experiments.Bench_json.name <> fresh.name then
              Printf.printf
                "  note: %s: baseline bench %S vs fresh %S (problem size \
                 changed; comparing anyway)\n"
                (Filename.basename bpath)
                baseline.Experiments.Bench_json.name fresh.name;
            Experiments.Bench_compare.compare_entries ~baseline ~fresh
        end)
      baselines
  in
  Format.printf "%a@." Experiments.Bench_compare.pp findings;
  if not (Experiments.Bench_compare.gate findings && !io_ok) then exit 1

let check_json files =
  let ok = ref true in
  List.iter
    (fun path ->
      match Experiments.Bench_json.read ~path with
      | e ->
        Printf.printf "%s: ok (name=%s jobs=%d wall_s=%g speedup_vs_seq=%g)\n"
          path e.Experiments.Bench_json.name e.jobs e.wall_s e.speedup_vs_seq
      | exception Experiments.Bench_json.Parse_error msg ->
        Printf.eprintf "%s: PARSE ERROR: %s\n" path msg;
        ok := false
      | exception Sys_error msg ->
        if not (Sys.file_exists path) then
          Printf.eprintf
            "%s: MISSING BASELINE: the tracked bench record does not \
             exist. Generate it with `dune exec bench/main.exe -- \
             --only-bench --skip-slow` and commit the file.\n"
            path
        else Printf.eprintf "%s: %s\n" path msg;
        ok := false)
    files;
  if not !ok then exit 1

let () =
  let o = parse_args () in
  if o.check_json <> [] then check_json o.check_json
  else if o.compare <> [] then run_compare ~fresh_dir:o.fresh_dir o.compare
  else begin
    Obs.configure_from_env ();
    Option.iter Obs.trace_to_file o.trace;
    Option.iter Numerics.Pool.set_jobs o.jobs;
    let jobs =
      match o.jobs with Some n -> n | None -> Numerics.Pool.default_size ()
    in
    if not o.only_bench then run_experiments ~fast:o.fast ();
    if not o.skip_bench then begin
      run_perf_benches ~skip_slow:o.skip_slow ~jobs ();
      run_benchmarks ~skip_slow:o.skip_slow ()
    end;
    print_endline "done."
  end
