(* oshil: command-line front end for the SHIL analysis library.

   Subcommands: natural, shil, lockrange, dcsweep, transient, figures,
   experiments. Oscillators are selected with --osc
   (tanh | diffpair | tunnel) or described inline with --g0/--isat/--r/
   --fc/--q for a custom tanh cell. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Oscillator selection *)

type osc_choice = Tanh | Diffpair | Tunnel

let osc_conv =
  let parse = function
    | "tanh" -> Ok Tanh
    | "diffpair" | "diff-pair" | "dp" -> Ok Diffpair
    | "tunnel" | "td" -> Ok Tunnel
    | s -> Error (`Msg (Printf.sprintf "unknown oscillator %S" s))
  in
  let print ppf = function
    | Tanh -> Format.pp_print_string ppf "tanh"
    | Diffpair -> Format.pp_print_string ppf "diffpair"
    | Tunnel -> Format.pp_print_string ppf "tunnel"
  in
  Arg.conv (parse, print)

let osc_arg =
  let doc = "Oscillator: tanh (behavioural), diffpair (BJT, §IV-A) or tunnel (§IV-B)." in
  Arg.(value & opt osc_conv Tanh & info [ "osc" ] ~docv:"NAME" ~doc)

let custom_args =
  let g0 =
    Arg.(value & opt (some float) None
         & info [ "g0" ] ~docv:"S" ~doc:"Custom tanh: small-signal conductance magnitude.")
  in
  let isat =
    Arg.(value & opt (some float) None
         & info [ "isat" ] ~docv:"A" ~doc:"Custom tanh: saturation current.")
  in
  let r =
    Arg.(value & opt (some float) None
         & info [ "r" ] ~docv:"OHM" ~doc:"Custom tanh: tank resistance.")
  in
  let fc =
    Arg.(value & opt (some float) None
         & info [ "fc" ] ~docv:"HZ" ~doc:"Custom tanh: tank centre frequency.")
  in
  let q =
    Arg.(value & opt (some float) None
         & info [ "q" ] ~docv:"Q" ~doc:"Custom tanh: tank quality factor.")
  in
  Term.(const (fun a b c d e -> (a, b, c, d, e)) $ g0 $ isat $ r $ fc $ q)

(* the CLI flags reduced to the request-level oscillator description;
   Api owns the actual table so the daemon resolves identically *)
let osc_spec choice (g0, isat, r, fc, q) : Api.Request.osc_spec =
  match g0 with
  | Some g0 ->
    Api.Request.Custom
      {
        g0;
        isat = Option.value isat ~default:1e-3;
        r = Option.value r ~default:1e3;
        fc = Option.value fc ~default:1e6;
        q = Option.value q ~default:10.0;
      }
  | None ->
    Api.Request.Builtin
      (match choice with
      | Tanh -> "tanh"
      | Diffpair -> "diffpair"
      | Tunnel -> "tunnel")

let resolve_oscillator choice custom : Shil.Analysis.oscillator =
  Api.resolve_oscillator (osc_spec choice custom)

let jobs_arg =
  let doc =
    "Worker-pool size for the parallel kernels (grid sampling, sweeps, \
     lock searches). Defaults to $(b,OSHIL_JOBS) or the number of cores; \
     1 disables parallelism."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let apply_jobs = function
  | Some n when n >= 1 -> Numerics.Pool.set_jobs n
  | Some n ->
    Format.eprintf "oshil: --jobs must be >= 1 (got %d)@." n;
    exit 2
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Signal hygiene: SIGINT/SIGTERM mid-analysis must not lose the
   telemetry sinks or a half-finished batch report. The handler runs a
   registered partial-report hook (batch installs one), flushes the
   [--trace]/[--metrics] sinks and the disk cache, and exits with the
   conventional 128+signum code (130 for SIGINT, 143 for SIGTERM) so
   callers can tell an interrupted run from a failed one (exit 1-3).
   [oshil serve] replaces these handlers with drain-mode entry. *)

let signal_name s = if s = Sys.sigterm then "SIGTERM" else "SIGINT"
let signal_exit_code s = if s = Sys.sigterm then 143 else 130

(* what an interrupted long-running subcommand should salvage before
   exiting; at most one is active (the subcommands run sequentially) *)
let partial_report_hook : (signal:string -> unit) option ref = ref None

let install_signal_hygiene () =
  let handle s =
    (match !partial_report_hook with
    | Some hook -> ( try hook ~signal:(signal_name s) with _ -> ())
    | None -> ());
    Obs.flush ();
    exit (signal_exit_code s)
  in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* Telemetry flags, shared by every analysis subcommand. Environment
   defaults first, explicit flags override. *)
let obs_args =
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record runtime telemetry to $(docv): Chrome trace_event \
                   JSON (load in chrome://tracing or Perfetto), or the \
                   JSONL event log replayable with $(b,oshil stats) when \
                   $(docv) ends in .jsonl. $(b,OSHIL_TRACE) sets the \
                   default.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the telemetry summary (per-span totals, solver \
                   counters) on stderr at exit. $(b,OSHIL_METRICS=1) sets \
                   the default.")
  in
  let events =
    Arg.(value & flag
         & info [ "events" ]
             ~doc:"Also record the high-volume solver-introspection event \
                   stream (per-Newton-iteration residuals, step \
                   accept/reject, bisection probes, cache locality, pool \
                   utilization, GC samples) into the trace, for \
                   $(b,oshil stats report). Off by default — implies \
                   nothing about numerics: results stay bit-identical. \
                   $(b,OSHIL_EVENTS=1) sets the default.")
  in
  let inject =
    Arg.(value & opt (some string) None
         & info [ "inject-fault" ] ~docv:"PLAN"
             ~doc:"Arm deterministic fault injection. $(docv) is a \
                   comma-separated list of $(b,site[@START[xCOUNT]]) \
                   specs (e.g. $(b,newton-singular@0x2,tran-reject@5)); \
                   a bare site fires on every occurrence. \
                   $(b,OSHIL_FAULTS) sets the default. Zero faults \
                   armed leaves every result bit-identical.")
  in
  let fail_fast =
    Arg.(value & flag
         & info [ "fail-fast" ]
             ~doc:"Abort on the first failed grid point / probe / sweep \
                   cell instead of recording a typed hole and \
                   continuing with a partial result.")
  in
  let cache =
    Arg.(value & flag
         & info [ "cache" ]
             ~doc:"Enable the content-addressed result cache: \
                   describing-function grids, Fourier coefficients and \
                   complete transient waveforms are memoized on their \
                   full input (in-memory LRU plus an on-disk store) and \
                   replayed bit-identically. $(b,OSHIL_CACHE=1) sets \
                   the default.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"On-disk cache location (default $(b,out/cache); \
                   $(b,OSHIL_CACHE_DIR) sets the default).")
  in
  Term.(const (fun t m e p f c cd -> (t, m, e, p, f, c, cd)) $ trace
        $ metrics $ events $ inject $ fail_fast $ cache $ cache_dir)

let apply_obs (trace, metrics, events, fault_plan, fail_fast, cache, cache_dir)
    =
  install_signal_hygiene ();
  Obs.configure_from_env ();
  Option.iter Obs.trace_to_file trace;
  if metrics then Obs.configure ~summary:true ~enabled:true ();
  if events then Obs.configure ~events:true ();
  Cache.Store.configure_from_env ();
  if cache then Cache.Store.set_enabled true;
  Option.iter Cache.Store.set_dir cache_dir;
  Resilience.Fault.configure_from_env ();
  (match fault_plan with
  | None -> ()
  | Some plan -> (
    match Resilience.Fault.configure plan with
    | Ok () -> ()
    | Error msg ->
      Format.eprintf "oshil: bad --inject-fault plan: %s@." msg;
      exit 2));
  if fail_fast then Resilience.Policy.set_fail_fast true

let vi_arg =
  Arg.(value & opt float 0.03
       & info [ "vi" ] ~docv:"V" ~doc:"Injection phasor magnitude $(docv).")

let n_arg =
  Arg.(value & opt int 3
       & info [ "n" ] ~docv:"N" ~doc:"Sub-harmonic order (1 = FHIL).")

let ascii_arg =
  Arg.(value & flag & info [ "ascii" ] ~doc:"Draw terminal plots.")

(* ------------------------------------------------------------------ *)
(* natural *)

let natural_cmd =
  let run obs jobs choice custom ascii =
    apply_obs obs;
    apply_jobs jobs;
    let osc = resolve_oscillator choice custom in
    let r = (osc.tank : Shil.Tank.t).r in
    Format.printf "%a@." Shil.Tank.pp osc.tank;
    Format.printf "small-signal loop gain: %.4g (oscillates: %b)@."
      (Shil.Natural.small_signal_gain osc.nl ~r)
      (Shil.Natural.oscillates osc.nl ~r);
    let sols = Shil.Natural.solve osc.nl ~r in
    if sols = [] then Format.printf "no T_f(A) = 1 solutions@."
    else
      List.iter
        (fun (s : Shil.Natural.solution) ->
          Format.printf "A = %.6g V  (%s, dT_f/dA = %.4g)@." s.a
            (if s.stable then "stable" else "unstable")
            s.slope)
        sols;
    if ascii then begin
      let a_max =
        match Shil.Natural.predicted_amplitude osc.nl ~r with
        | Some a -> 1.6 *. a
        | None -> 1.0
      in
      let fig =
        Plotkit.Fig.add_hline
          (Plotkit.Fig.add_fun
             (Plotkit.Fig.create ~title:"T_f(A)" ~xlabel:"A (V)" ())
             ~f:(fun a -> Shil.Describing_function.t_f_free osc.nl ~r ~a)
             ~a:(1e-3 *. a_max) ~b:a_max)
          ~y:1.0
      in
      Plotkit.Ascii_render.print fig
    end
  in
  let term =
    Term.(const run $ obs_args $ jobs_arg $ osc_arg $ custom_args $ ascii_arg)
  in
  Cmd.v (Cmd.info "natural" ~doc:"Predict natural oscillation amplitude (§II).") term

(* ------------------------------------------------------------------ *)
(* shil *)

let shil_cmd =
  let finj_arg =
    Arg.(value & opt (some float) None
         & info [ "finj" ] ~docv:"HZ"
             ~doc:"Injection frequency; default n x f_c.")
  in
  let reduced_arg =
    Arg.(value & flag
         & info [ "reduced" ]
             ~doc:"Use the symmetry-reduced quadrature (faster, \
                   tolerance-grade; see Describing_function.reduction).")
  in
  let run obs jobs choice custom n vi finj reduced ascii =
    apply_obs obs;
    apply_jobs jobs;
    let osc = resolve_oscillator choice custom in
    (* the report text comes from lib/api — the same renderer the
       daemon serves, so CLI bytes == server bytes by construction *)
    let report = Api.shil_run ~osc ~n ~vi ~reduced in
    print_string (Api.shil_report_text report ~finj);
    if ascii then begin
      let fig =
        Plotkit.Fig.add_polylines
          (Plotkit.Fig.add_polylines
             (Plotkit.Fig.create ~title:"C_{T_f,1} (o) and phase curve (+)"
                ~xlabel:"phi (rad)" ())
             ~curves:(Shil.Grid.t_f_curve report.grid))
          ~curves:(Shil.Grid.phase_curve report.grid ~phi_d:0.0)
      in
      Plotkit.Ascii_render.print fig
    end
  in
  let term =
    Term.(const run $ obs_args $ jobs_arg $ osc_arg $ custom_args $ n_arg
          $ vi_arg $ finj_arg $ reduced_arg $ ascii_arg)
  in
  Cmd.v
    (Cmd.info "shil" ~doc:"Full SHIL analysis: locks, stability, states, lock range (§III).")
    term

(* ------------------------------------------------------------------ *)
(* lockrange *)

let lockrange_cmd =
  let validate_arg =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"Also binary-search the lock edges with transient simulation (slow).")
  in
  let run obs jobs choice custom n vi validate =
    apply_obs obs;
    apply_jobs jobs;
    let osc = resolve_oscillator choice custom in
    let report = Shil.Analysis.run osc ~n ~vi in
    Format.printf "%a@." Shil.Lock_range.pp report.lock_range;
    if validate then begin
      match choice with
      | Tanh ->
        let lr = report.lock_range in
        let low =
          Shil.Simulate.lock_edge osc.nl ~tank:osc.tank ~vi ~n
            ~f_lo:(lr.f_inj_low -. (0.4 *. lr.delta_f_inj))
            ~f_hi:(lr.f_inj_low +. (0.4 *. lr.delta_f_inj))
            ~side:`Low
        in
        let high =
          Shil.Simulate.lock_edge osc.nl ~tank:osc.tank ~vi ~n
            ~f_lo:(lr.f_inj_high -. (0.4 *. lr.delta_f_inj))
            ~f_hi:(lr.f_inj_high +. (0.4 *. lr.delta_f_inj))
            ~side:`High
        in
        Format.printf "simulated band: [%.8g, %.8g] Hz (delta %.6g)@." low high
          (high -. low)
      | Diffpair | Tunnel ->
        let bench =
          match choice with
          | Diffpair -> Experiments.Osc_experiments.diff_pair ()
          | Tunnel | Tanh -> Experiments.Osc_experiments.tunnel ()
        in
        let cmp =
          Circuits.Validate.lock_range
            ~make_circuit:(fun ~f_inj -> bench.circuit_injected ~f_inj)
            ~probe:bench.probe ~n:bench.n ~predicted:report.lock_range ()
        in
        Format.printf "%a@." Circuits.Validate.pp_lock cmp
    end
  in
  let term =
    Term.(const run $ obs_args $ jobs_arg $ osc_arg $ custom_args $ n_arg
          $ vi_arg $ validate_arg)
  in
  Cmd.v (Cmd.info "lockrange" ~doc:"Predict (and optionally validate) the SHIL lock range.") term

(* ------------------------------------------------------------------ *)
(* dcsweep *)

let dcsweep_cmd =
  let run choice =
    let vs, is =
      match choice with
      | Diffpair -> Circuits.Diff_pair.extraction_fv Circuits.Diff_pair.default
      | Tunnel -> Circuits.Tunnel_osc.extraction_fv Circuits.Tunnel_osc.default
      | Tanh ->
        Shil.Nonlinearity.sample
          (Circuits.Tanh_osc.nonlinearity Circuits.Tanh_osc.default)
          ~v_min:(-2.0) ~v_max:2.0 ~n:201
    in
    print_endline "v,i";
    Array.iteri (fun k v -> Printf.printf "%.9g,%.9g\n" v is.(k)) vs
  in
  let term = Term.(const run $ osc_arg) in
  Cmd.v
    (Cmd.info "dcsweep" ~doc:"Extract and print the i = f(v) table (CSV on stdout).")
    term

(* ------------------------------------------------------------------ *)
(* transient *)

let transient_cmd =
  let cycles_arg =
    Arg.(value & opt float 200.0
         & info [ "cycles" ] ~docv:"N" ~doc:"Simulated length in tank periods.")
  in
  let finj_arg =
    Arg.(value & opt (some float) None
         & info [ "finj" ] ~docv:"HZ" ~doc:"Add an injection tone at $(docv).")
  in
  let run obs jobs choice n vi cycles finj ascii =
    apply_obs obs;
    apply_jobs jobs;
    let circuit, probe, fc =
      match choice with
      | Tanh ->
        let p = Circuits.Tanh_osc.default in
        let injection =
          Option.map
            (fun f_inj ->
              Spice.Wave.Sine
                {
                  offset = 0.0;
                  ampl = 2.0 *. vi /. Shil.Tank.mag (Circuits.Tanh_osc.tank p)
                                        ~omega:(2.0 *. Float.pi *. f_inj);
                  freq = f_inj;
                  phase = 0.0;
                  delay = 0.0;
                })
            finj
        in
        ( Circuits.Tanh_osc.circuit ?injection p,
          Spice.Transient.Node "t",
          Shil.Tank.f_c (Circuits.Tanh_osc.tank p) )
      | Diffpair ->
        let p = Circuits.Diff_pair.default in
        let injection =
          Option.map (fun f_inj -> { Circuits.Diff_pair.vi; n; f_inj; phase = 0.0 }) finj
        in
        ( Circuits.Diff_pair.circuit ?injection p,
          Circuits.Diff_pair.osc_probe,
          Shil.Tank.f_c (Circuits.Diff_pair.tank p) )
      | Tunnel ->
        let p = Circuits.Tunnel_osc.default in
        let injection =
          Option.map (fun f_inj -> { Circuits.Tunnel_osc.vi; n; f_inj; phase = 0.0 }) finj
        in
        ( Circuits.Tunnel_osc.circuit ?injection p,
          Circuits.Tunnel_osc.osc_probe,
          Shil.Tank.f_c (Circuits.Tunnel_osc.tank p) )
    in
    let opts =
      Spice.Transient.default_options
        ~dt:(1.0 /. (fc *. 150.0))
        ~t_stop:(cycles /. fc)
    in
    let res = Spice.Transient.run circuit ~probes:[ probe ] opts in
    let values = Spice.Transient.signal res probe in
    if ascii then begin
      let s = Waveform.Signal.make ~times:res.times ~values in
      let tail = Waveform.Signal.tail_fraction s 0.25 in
      Format.printf "steady amplitude: %.6g V, frequency: %.8g Hz@."
        (Waveform.Measure.amplitude tail)
        (Waveform.Measure.frequency tail);
      Plotkit.Ascii_render.print
        (Plotkit.Fig.add_line
           (Plotkit.Fig.create ~title:"transient (last 10 cycles)" ~xlabel:"t (s)" ())
           ~xs:(Waveform.Signal.tail_fraction s (10.0 /. cycles)).times
           ~ys:(Waveform.Signal.tail_fraction s (10.0 /. cycles)).values)
    end
    else begin
      print_endline "t,v";
      Array.iteri (fun k t -> Printf.printf "%.9g,%.9g\n" t values.(k)) res.times
    end
  in
  let term =
    Term.(const run $ obs_args $ jobs_arg $ osc_arg $ n_arg $ vi_arg
          $ cycles_arg $ finj_arg $ ascii_arg)
  in
  Cmd.v
    (Cmd.info "transient" ~doc:"Device-level transient simulation (CSV or --ascii summary).")
    term

(* ------------------------------------------------------------------ *)
(* harmonics *)

let harmonics_cmd =
  let kmax_arg =
    Arg.(value & opt int 7 & info [ "kmax" ] ~docv:"K" ~doc:"Harmonics retained.")
  in
  let run obs choice custom k_max =
    apply_obs obs;
    let osc = resolve_oscillator choice custom in
    match Shil.Harmonic_balance.solve ~k_max osc.nl ~tank:osc.tank with
    | exception Resilience.Oshil_error.Error e ->
      Format.eprintf "harmonic balance failed: %a@." Resilience.Oshil_error.pp e;
      exit 3
    | hb ->
      Format.printf "harmonic balance (K = %d):@." k_max;
      Format.printf "  frequency: %.8g Hz (tank f_c %.8g Hz, shift %+.6g Hz)@."
        (Shil.Harmonic_balance.frequency hb)
        (Shil.Tank.f_c osc.tank)
        (Shil.Harmonic_balance.frequency hb -. Shil.Tank.f_c osc.tank);
      Format.printf "  fundamental amplitude: %.6g V@."
        (Shil.Harmonic_balance.amplitude hb);
      Format.printf "  THD: %.4g@." (Shil.Harmonic_balance.thd hb);
      Array.iteri
        (fun k v ->
          if k >= 1 then
            Format.printf "  |V_%d| = %.6g V, arg = %.4f rad@." k
              (Numerics.Cx.abs v) (Numerics.Cx.arg v))
        hb.coeffs
  in
  let term = Term.(const run $ obs_args $ osc_arg $ custom_args $ kmax_arg) in
  Cmd.v
    (Cmd.info "harmonics"
       ~doc:"Multi-harmonic balance of the free-running oscillator (K = 1 is the paper's describing function).")
    term

(* ------------------------------------------------------------------ *)
(* hb *)

let hb_cmd =
  let kmax_arg =
    Arg.(value & opt int 7
         & info [ "kmax" ] ~docv:"K" ~doc:"Harmonics retained per unknown.")
  in
  let samples_arg =
    Arg.(value & opt int 1024
         & info [ "samples" ] ~docv:"S"
             ~doc:"Time points per period for the nonlinear device \
                   evaluation (the spectral quadrature).")
  in
  let finj_arg =
    Arg.(value & opt (some float) None
         & info [ "finj" ] ~docv:"HZ"
             ~doc:"Solve the injection-locked spectrum at $(docv) \
                   (landing on harmonic n of $(docv)/n).")
  in
  let lockrange_arg =
    Arg.(value & flag
         & info [ "lockrange" ]
             ~doc:"March and bisect the HB lock band around n x f_osc \
                   (the DF prediction supplies the initial width and is \
                   reported alongside).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")
  in
  let run obs jobs choice custom n vi kmax samples finj lockrange json =
    apply_obs obs;
    apply_jobs jobs;
    if lockrange && finj <> None then begin
      Format.eprintf "oshil hb: --lockrange and --finj conflict@.";
      exit 2
    end;
    let osc = resolve_oscillator choice custom in
    let mode : Api.Request.hb_mode =
      if lockrange then Hb_lockrange
      else match finj with Some f -> Hb_injected f | None -> Hb_osc
    in
    (* the report text comes from lib/api — the same renderer the
       daemon serves, so CLI bytes == server bytes by construction *)
    let out = Api.hb_run ~osc ~n ~vi ~k_max:kmax ~samples ~mode in
    if json then print_endline (Api.hb_json out)
    else print_string (Api.hb_text out)
  in
  let term =
    Term.(const run $ obs_args $ jobs_arg $ osc_arg $ custom_args $ n_arg
          $ vi_arg $ kmax_arg $ samples_arg $ finj_arg $ lockrange_arg
          $ json_arg)
  in
  Cmd.v
    (Cmd.info "hb"
       ~doc:"Multi-harmonic frequency-domain analysis of the full MNA \
             system: oscprobe steady state, injected-tone SHIL solve \
             (--finj) or HB lock range (--lockrange).")
    term

(* ------------------------------------------------------------------ *)
(* netlist *)

let netlist_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"NETLIST" ~doc:"SPICE-like netlist file.")
  in
  let analysis_arg =
    Arg.(value & opt string "op"
         & info [ "analysis" ] ~docv:"KIND"
             ~doc:"Analysis to run: op (default), tran or print.")
  in
  let tstop_arg =
    Arg.(value & opt float 1e-3
         & info [ "tstop" ] ~docv:"S" ~doc:"Transient stop time.")
  in
  let dt_arg =
    Arg.(value & opt float 1e-6 & info [ "dt" ] ~docv:"S" ~doc:"Transient step.")
  in
  let probe_arg =
    Arg.(value & opt_all string []
         & info [ "probe" ] ~docv:"NODE" ~doc:"Node(s) to record in tran.")
  in
  let force_arg =
    Arg.(value & flag
         & info [ "force" ]
             ~doc:"Downgrade pre-flight check errors to warnings and run \
                   the analysis anyway.")
  in
  let run obs file analysis tstop dt probes force =
    apply_obs obs;
    let check = if force then `Warn else `Enforce in
    let reject ds =
      Format.eprintf "%s: rejected by pre-flight checks:@." file;
      List.iter (fun d -> Format.eprintf "  %a@." Check.Diagnostic.pp d) ds;
      Format.eprintf "(use --force to run anyway, or `oshil lint` to inspect)@.";
      exit 1
    in
    try
    match Spice.Netlist.parse_file file with
    | Error e ->
      Format.eprintf "%s:%d: %s@." file e.line e.message;
      exit 1
    | Ok circuit -> begin
      match analysis with
      | "print" -> print_string (Spice.Netlist.to_string circuit)
      | "op" ->
        let op = Spice.Op.run ~check circuit in
        print_string (Api.op_text ~circuit op)
      | "tran" ->
        let probes =
          match probes with
          | [] -> List.map (fun n -> Spice.Transient.Node n) (Spice.Circuit.node_names circuit)
          | ps -> List.map (fun n -> Spice.Transient.Node n) ps
        in
        let res =
          Spice.Transient.run ~check circuit ~probes
            (Spice.Transient.default_options ~dt ~t_stop:tstop)
        in
        print_string (Api.tran_csv res)
      | other ->
        Format.eprintf "unknown analysis %S@." other;
        exit 1
    end
    with Check.Diagnostic.Failed ds -> reject ds
  in
  let term =
    Term.(const run $ obs_args $ file_arg $ analysis_arg $ tstop_arg $ dt_arg
          $ probe_arg $ force_arg)
  in
  Cmd.v
    (Cmd.info "netlist" ~doc:"Parse a SPICE-like netlist and run op/tran on it.")
    term

(* ------------------------------------------------------------------ *)
(* lint *)

let lint_cmd =
  let files_arg =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"FILE"
             ~doc:"Netlist (.cir) or SHIL scenario (.scn) to analyze.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as errors.")
  in
  let run files json strict =
    let module D = Check.Diagnostic in
    let reports = List.map (fun f -> (f, Api.lint_file f)) files in
    if json then begin
      let entry (f, ds) = Api.lint_entry ~file:f ds in
      print_endline
        (Printf.sprintf "[%s]" (String.concat "," (List.map entry reports)))
    end
    else
      List.iter
        (fun (f, ds) ->
          if ds = [] then Format.printf "%s: OK@." f
          else begin
            Format.printf "%s:@." f;
            List.iter (fun d -> Format.printf "  %a@." D.pp d) ds;
            Format.printf "%s: %d error(s), %d warning(s), %d note(s)@." f
              (D.count_severity D.Error ds)
              (D.count_severity D.Warning ds)
              (D.count_severity D.Info ds)
          end)
        reports;
    let bad (_, ds) =
      D.errors ds <> [] || (strict && D.count_severity D.Warning ds > 0)
    in
    if List.exists bad reports then exit 1
  in
  let term = Term.(const run $ files_arg $ json_arg $ strict_arg) in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static pre-flight analysis of netlists and SHIL scenarios \
             (no simulation; non-zero exit on errors).")
    term

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_files_arg =
  Arg.(non_empty & pos_all string []
       & info [] ~docv:"TRACE"
           ~doc:"JSONL telemetry trace(s), as written by \
                 $(b,--trace FILE.jsonl) or $(b,OSHIL_TRACE). Several \
                 files merge: counters and histograms sum, spans and \
                 events interleave in timestamp order, gauges keep \
                 their maximum — the merge is independent of the order \
                 the files are listed in. Prefix with the keyword \
                 $(b,report) for the run-health report.")

let stats_load files =
  match Obs.Trace_read.load_many files with
  | exception Obs.Trace_read.Parse_error msg ->
    Format.eprintf "oshil stats: %s@." msg;
    exit 1
  | exception Sys_error msg ->
    Format.eprintf "oshil stats: %s@." msg;
    exit 1
  | s -> s

let stats_cmd =
  let assert_arg =
    Arg.(value & opt_all string []
         & info [ "assert-counter" ] ~docv:"NAME[:MIN]"
             ~doc:"Exit 1 unless counter $(b,NAME) appears in the merged \
                   trace with value >= MIN (default 1). Repeatable; the \
                   fault-injection smoke tests use this to pin each \
                   recovery path to its $(b,resilience.*) counter.")
  in
  let compare_arg =
    Arg.(value & flag
         & info [ "compare" ]
             ~doc:"Take exactly two $(b,TRACE) files and print a \
                   side-by-side run-health diff (counters, span time, \
                   quantiles, solver convergence) with relative deltas \
                   instead of merging them.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"With $(b,report): emit deterministic JSON instead of \
                   the human table (same trace always renders to the \
                   same bytes).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"With $(b,report): write the report to $(docv) instead \
                   of stdout.")
  in
  let run_report files json out =
    let r = Obs.Report.of_snapshot (stats_load files) in
    let body =
      if json then Obs.Report.to_json r
      else Format.asprintf "%a@." Obs.Report.pp r
    in
    match out with
    | None -> print_string body
    | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc body)
  in
  let run files asserts compare json out =
    (* [stats report T...] — the leading keyword selects the run-health
       report (cmdliner 1.3 sub-commands cannot coexist with a default
       term that takes positionals, so the dispatch is by hand) *)
    match files with
    | "report" :: rest ->
      if rest = [] then begin
        Format.eprintf "oshil stats report: no TRACE files given@.";
        exit 2
      end;
      run_report rest json out
    | _ ->
    if compare then begin
      match files with
      | [ fa; fb ] ->
        let ra = Obs.Report.of_snapshot (stats_load [ fa ]) in
        let rb = Obs.Report.of_snapshot (stats_load [ fb ]) in
        Obs.Report.pp_compare Format.std_formatter ~label_a:fa ~label_b:fb
          ra rb;
        Format.print_newline ()
      | _ ->
        Format.eprintf
          "oshil stats: --compare takes exactly two TRACE files (got %d)@."
          (List.length files);
        exit 2
    end
    else begin
      let s = stats_load files in
      Format.printf "%a@." Obs.Sink.summary s;
      let check spec =
        let name, min_v =
          match String.index_opt spec ':' with
          | None -> (spec, 1)
          | Some i -> (
            let name = String.sub spec 0 i in
            let m = String.sub spec (i + 1) (String.length spec - i - 1) in
            match int_of_string_opt m with
            | Some v -> (name, v)
            | None ->
              Format.eprintf "oshil stats: bad --assert-counter %S@." spec;
              exit 2)
        in
        let v =
          Option.value ~default:0
            (List.assoc_opt name s.Obs.Registry.counters)
        in
        if v >= min_v then begin
          Format.printf "assert %s: %d >= %d ok@." name v min_v;
          true
        end
        else begin
          Format.eprintf "oshil stats: counter %s = %d, wanted >= %d@." name
            v min_v;
          false
        end
      in
      if List.exists not (List.map check asserts) then exit 1
    end
  in
  let term =
    Term.(const run $ stats_files_arg $ assert_arg $ compare_arg $ json_arg
          $ out_arg)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Replay JSONL telemetry traces: summary table (default), \
             run-health report ($(b,oshil stats report TRACE...) — \
             per-solver convergence rates, worst-converging grid cells, \
             self/total span time, step control, brackets, cache \
             locality, allocation; record with $(b,--trace FILE.jsonl \
             --events) first), or two-trace $(b,--compare) diff.")
    term

(* ------------------------------------------------------------------ *)
(* batch *)

let batch_cmd =
  let dir_arg =
    Arg.(value & pos 0 dir "examples/scenarios"
         & info [] ~docv:"DIR"
             ~doc:"Directory of $(b,.scn) scenario files (searched \
                   non-recursively, run in name order).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the JSON report to $(docv) instead of stdout.")
  in
  let run obs jobs dir out =
    apply_obs obs;
    apply_jobs jobs;
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter Api.is_scenario_file
      |> List.sort String.compare
      |> List.map (Filename.concat dir)
      |> Array.of_list
    in
    if Array.length files = 0 then begin
      Format.eprintf "oshil batch: no .scn files in %s@." dir;
      exit 2
    end;
    let emit report =
      match out with
      | None -> print_string report
      | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc report)
    in
    (* finished per-scenario entries, recorded as the pool completes
       them: the SIGINT/SIGTERM handler salvages these into a partial
       report before flushing sinks and exiting 130/143 *)
    let slots = Array.make (Array.length files) None in
    partial_report_hook :=
      Some
        (fun ~signal ->
          let done_ = ref [] and n_done = ref 0 in
          Array.iter
            (function
              | Some entry ->
                incr n_done;
                done_ := ("  " ^ entry) :: !done_
              | None -> ())
            slots;
          emit
            (Printf.sprintf
               "{\"partial\":true,\"signal\":\"%s\",\"scenarios\":%d,\"completed\":%d,\"results\":[\n%s\n]}\n"
               signal (Array.length files) !n_done
               (String.concat ",\n" (List.rev !done_))));
    (* one scenario per pool task: a scenario that dies (no oscillation,
       solver blow-up, injected fault) becomes a typed error slot, the
       rest of the batch completes, and the shared cache stays warm
       across scenarios that hit the same grids *)
    let outcomes =
      Numerics.Pool.parallel_try_map_array ~subsystem:Shil ~phase:"batch"
        (fun i ->
          let outcome = Api.scenario_file_outcome files.(i) in
          slots.(i) <- Some (Api.scenario_entry ~file:files.(i) outcome);
          outcome)
        (Array.init (Array.length files) Fun.id)
    in
    partial_report_hook := None;
    let body file = function
      | Ok outcome -> Api.scenario_entry ~file outcome
      | Error e ->
        Printf.sprintf {|{"file":"%s","status":"error","error":"%s"}|}
          (Check.Diagnostic.json_escape file)
          (Check.Diagnostic.json_escape (Resilience.Oshil_error.to_string e))
    in
    let count p = Array.length (Array.of_seq (Seq.filter p (Array.to_seq outcomes))) in
    let n_ok = count (function Ok (Api.Scn_ok _) -> true | _ -> false) in
    let n_lint =
      count (function Ok (Api.Scn_lint_error _) -> true | _ -> false)
    in
    let n_err = count (function Error _ -> true | _ -> false) in
    let results =
      Array.to_list (Array.mapi (fun i o -> "  " ^ body files.(i) o) outcomes)
    in
    let report =
      Printf.sprintf
        "{\"scenarios\":%d,\"ok\":%d,\"lint_errors\":%d,\"errors\":%d,\"results\":[\n%s\n]}\n"
        (Array.length files) n_ok n_lint n_err
        (String.concat ",\n" results)
    in
    emit report;
    let failures =
      List.concat
        (Array.to_list
           (Array.mapi
              (fun i o ->
                match o with
                | Error e ->
                  [ { Resilience.Summary.site = files.(i); error = e } ]
                | Ok _ -> [])
              outcomes))
    in
    let summary =
      Resilience.Summary.make ~attempted:(Array.length files) failures
    in
    Format.eprintf "batch: %d scenario(s), %d ok, %d lint error(s), %d error(s)@."
      (Array.length files) n_ok n_lint n_err;
    if not (Resilience.Summary.is_clean summary) then
      Format.eprintf "%a@." Resilience.Summary.pp summary;
    if n_lint + n_err > 0 then exit 1
  in
  let term = Term.(const run $ obs_args $ jobs_arg $ dir_arg $ out_arg) in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run every .scn scenario in a directory through the SHIL \
             analysis pipeline (parallel, per-scenario failure \
             isolation, shared result cache) and emit a JSON report.")
    term

(* ------------------------------------------------------------------ *)
(* serve / call / api *)

(* Shared request-building flags: [oshil api] executes the request
   in-process, [oshil call] sends it to a daemon — both through the
   same [lib/api] entry points, so the two paths return identical
   bytes. *)
let request_term =
  let id_arg =
    Arg.(value & opt string "cli"
         & info [ "id" ] ~docv:"ID" ~doc:"Request id echoed in the response.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"S"
             ~doc:"Per-request wall-clock budget; overrunning work \
                   unwinds into a typed budget-exhausted error.")
  in
  let op_arg =
    Arg.(value & pos 0 string "ping"
         & info [] ~docv:"OP"
             ~doc:"Operation: ping, sleep, shil, hb, scenario, lint, \
                   netlist-op, netlist-tran, health or stats.")
  in
  let file_arg =
    Arg.(value & opt (some file) None
         & info [ "file" ] ~docv:"FILE"
             ~doc:"Input for scenario/lint/netlist ops; the contents \
                   travel inline in the request, the basename anchors \
                   diagnostics.")
  in
  let seconds_arg =
    Arg.(value & opt float 0.05
         & info [ "seconds" ] ~docv:"S"
             ~doc:"sleep: wall clock to burn (deadline-checked).")
  in
  let finj_arg =
    Arg.(value & opt (some float) None
         & info [ "finj" ] ~docv:"HZ" ~doc:"shil: injection frequency.")
  in
  let reduced_arg =
    Arg.(value & flag
         & info [ "reduced" ] ~doc:"shil: symmetry-reduced quadrature.")
  in
  let kmax_arg =
    Arg.(value & opt int 7
         & info [ "kmax" ] ~docv:"K" ~doc:"hb: harmonics retained.")
  in
  let samples_arg =
    Arg.(value & opt int 1024
         & info [ "samples" ] ~docv:"S" ~doc:"hb: time points per period.")
  in
  let lockrange_arg =
    Arg.(value & flag
         & info [ "lockrange" ] ~doc:"hb: march/bisect the HB lock band.")
  in
  let tstop_arg =
    Arg.(value & opt float 1e-3
         & info [ "tstop" ] ~docv:"S" ~doc:"netlist-tran: stop time.")
  in
  let dt_arg =
    Arg.(value & opt float 1e-6
         & info [ "dt" ] ~docv:"S" ~doc:"netlist-tran: step.")
  in
  let probe_arg =
    Arg.(value & opt_all string []
         & info [ "probe" ] ~docv:"NODE" ~doc:"netlist-tran: node(s) to record.")
  in
  let build id deadline op file seconds choice custom n vi finj reduced kmax
      samples lockrange tstop dt probes =
    let text () =
      match file with
      | Some f -> (f, In_channel.with_open_bin f In_channel.input_all)
      | None ->
        Format.eprintf "oshil: op %s needs --file@." op;
        exit 2
    in
    let payload =
      match op with
      | "ping" -> Api.Request.Ping
      | "health" -> Api.Request.Health
      | "stats" -> Api.Request.Stats
      | "sleep" -> Api.Request.Sleep { s = seconds }
      | "shil" ->
        Api.Request.Shil
          { osc = osc_spec choice custom; n; vi; reduced; finj }
      | "hb" ->
        let mode : Api.Request.hb_mode =
          match (lockrange, finj) with
          | true, Some _ ->
            Format.eprintf "oshil: --lockrange and --finj conflict@.";
            exit 2
          | true, None -> Hb_lockrange
          | false, Some f -> Hb_injected f
          | false, None -> Hb_osc
        in
        Api.Request.Hb
          { osc = osc_spec choice custom; n; vi; k_max = kmax; samples; mode }
      | "scenario" ->
        let name, text = text () in
        Api.Request.Scenario { name; text }
      | "lint" ->
        let name, text = text () in
        Api.Request.Lint { name; text }
      | "netlist-op" ->
        let name, text = text () in
        Api.Request.Netlist_op { name; text }
      | "netlist-tran" ->
        let name, text = text () in
        Api.Request.Netlist_tran { name; text; t_stop = tstop; dt; probes }
      | other ->
        Format.eprintf "oshil: unknown op %S@." other;
        exit 2
    in
    { Api.Request.id; deadline_s = deadline; payload }
  in
  Term.(const build $ id_arg $ deadline_arg $ op_arg $ file_arg $ seconds_arg
        $ osc_arg $ custom_args $ n_arg $ vi_arg $ finj_arg $ reduced_arg
        $ kmax_arg $ samples_arg $ lockrange_arg $ tstop_arg $ dt_arg
        $ probe_arg)

let parse_addr ~what s =
  match Serve.Addr.of_string s with
  | Ok a -> a
  | Error msg ->
    Format.eprintf "oshil %s: %s@." what msg;
    exit 2

let api_cmd =
  let run obs jobs req =
    apply_obs obs;
    apply_jobs jobs;
    print_endline
      (Api.response_of_outcome ~id:req.Api.Request.id (Api.handle req))
  in
  let term = Term.(const run $ obs_args $ jobs_arg $ request_term) in
  Cmd.v
    (Cmd.info "api"
       ~doc:"Execute one typed request in-process and print the wire \
             response — the reference bytes for the daemon's \
             byte-identity contract.")
    term

let call_cmd =
  let connect_arg =
    Arg.(required & opt (some string) None
         & info [ "connect"; "c" ] ~docv:"ADDR"
             ~doc:"Daemon address: unix:PATH, tcp:HOST:PORT, HOST:PORT \
                   or a bare socket path.")
  in
  let raw_arg =
    Arg.(value & opt (some string) None
         & info [ "raw" ] ~docv:"LINE"
             ~doc:"Send $(docv) verbatim instead of building a request \
                   (protocol testing, e.g. malformed JSON).")
  in
  let run connect raw req =
    let addr = parse_addr ~what:"call" connect in
    let line =
      match raw with Some l -> l | None -> Api.Request.to_string req
    in
    match Serve.Client.call addr line with
    | resp -> print_endline resp
    | exception Resilience.Oshil_error.Error e ->
      Format.eprintf "oshil call: %a@." Resilience.Oshil_error.pp e;
      exit 1
  in
  let term = Term.(const run $ connect_arg $ raw_arg $ request_term) in
  Cmd.v
    (Cmd.info "call"
       ~doc:"Send one request to a running $(b,oshil serve) daemon and \
             print the response line.")
    term

let serve_cmd =
  let listen_arg =
    Arg.(value & opt string "oshil.sock"
         & info [ "listen"; "l" ] ~docv:"ADDR"
             ~doc:"Listen address: unix:PATH, tcp:HOST:PORT, HOST:PORT \
                   or a bare socket path.")
  in
  let capacity_arg =
    Arg.(value & opt int 16
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Job-queue slots. A full queue is explicit \
                   backpressure: requests are rejected immediately \
                   with a typed overload error.")
  in
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Worker threads executing requests.")
  in
  let deadline_arg =
    Arg.(value & opt float 30.0
         & info [ "deadline" ] ~docv:"S"
             ~doc:"Default wall-clock budget for requests that carry \
                   no deadline_s of their own; 0 disables.")
  in
  let retries_arg =
    Arg.(value & opt int 2
         & info [ "retries" ] ~docv:"N"
             ~doc:"Extra attempts for transient-class failures \
                   (injected faults, solver divergence), inside the \
                   request's deadline.")
  in
  let backoff_arg =
    Arg.(value & opt float 0.05
         & info [ "backoff" ] ~docv:"S"
             ~doc:"Base retry backoff, doubled per attempt.")
  in
  let run obs jobs listen capacity workers deadline retries backoff =
    apply_obs obs;
    apply_jobs jobs;
    let addr = parse_addr ~what:"serve" listen in
    if capacity < 1 || workers < 1 then begin
      Format.eprintf "oshil serve: --capacity and --workers must be >= 1@.";
      exit 2
    end;
    (* replace the flush-and-exit hygiene handlers installed by
       [apply_obs]: for the daemon, SIGTERM/SIGINT mean graceful drain
       (stop accepting, finish in-flight work, flush, exit 0) *)
    List.iter
      (fun s ->
        try
          Sys.set_signal s
            (Sys.Signal_handle (fun _ -> Serve.Server.request_drain ()))
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ];
    let config =
      {
        Serve.Server.address = addr;
        capacity;
        workers;
        default_deadline_s = (if deadline <= 0.0 then None else Some deadline);
        max_retries = retries;
        retry_backoff_s = backoff;
      }
    in
    Serve.Server.run config
  in
  let term =
    Term.(const run $ obs_args $ jobs_arg $ listen_arg $ capacity_arg
          $ workers_arg $ deadline_arg $ retries_arg $ backoff_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident analysis daemon: newline-delimited JSON \
             requests over a Unix or TCP socket, bounded job queue \
             with typed overload rejections, per-request deadlines, \
             crash isolation and SIGTERM-drain (exit 0).")
    term

(* ------------------------------------------------------------------ *)
(* figures / experiments *)

let figures_cmd =
  let dir_arg =
    Arg.(value & opt string "out/figures"
         & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run obs jobs dir =
    apply_obs obs;
    apply_jobs jobs;
    let show out =
      let paths = Experiments.Output.write_figures ~dir out in
      List.iter (Printf.printf "wrote %s\n%!") paths
    in
    let ts = Experiments.Tanh_experiments.default_setup in
    show (Experiments.Tanh_experiments.fig3_natural ~validate:false ts);
    show (Experiments.Tanh_experiments.fig6_tank ts);
    show (Experiments.Tanh_experiments.fig7_solutions ts);
    show (Experiments.Tanh_experiments.fig9_states ts);
    show (Experiments.Tanh_experiments.fig10_lock_range ts);
    let dp = Experiments.Osc_experiments.diff_pair () in
    show (Experiments.Osc_experiments.fig_fv dp);
    show (Experiments.Osc_experiments.fig_natural_prediction dp);
    show (Experiments.Osc_experiments.fig_lock_range_curves dp);
    let td = Experiments.Osc_experiments.tunnel () in
    show (Experiments.Osc_experiments.fig_fv td);
    show (Experiments.Osc_experiments.fig_natural_prediction td);
    show (Experiments.Osc_experiments.fig_lock_range_curves td)
  in
  let term = Term.(const run $ obs_args $ jobs_arg $ dir_arg) in
  Cmd.v (Cmd.info "figures" ~doc:"Regenerate the paper's figures as SVG files.") term

let experiments_cmd =
  let fast_arg =
    Arg.(value & flag & info [ "fast" ] ~doc:"Skip the slow transient searches.")
  in
  let run obs jobs fast =
    apply_obs obs;
    apply_jobs jobs;
    let show out = Format.printf "%a@.@." Experiments.Output.print out in
    let ts = Experiments.Tanh_experiments.default_setup in
    show (Experiments.Tanh_experiments.fig3_natural ts);
    show (Experiments.Tanh_experiments.fig6_tank ts);
    show (Experiments.Tanh_experiments.fig7_solutions ts);
    show (Experiments.Tanh_experiments.fig9_states ts);
    show (Experiments.Tanh_experiments.fig10_lock_range ~validate:(not fast) ts);
    let dp = Experiments.Osc_experiments.diff_pair () in
    show (Experiments.Osc_experiments.fig_fv dp);
    show (Experiments.Osc_experiments.fig_natural_prediction dp);
    show (Experiments.Osc_experiments.fig_transient dp);
    show (fst (Experiments.Osc_experiments.table_lock_range ~predict_only:fast dp));
    let td = Experiments.Osc_experiments.tunnel () in
    show (Experiments.Osc_experiments.fig_fv td);
    show (Experiments.Osc_experiments.fig_natural_prediction td);
    show (Experiments.Osc_experiments.fig_transient td);
    show (fst (Experiments.Osc_experiments.table_lock_range ~predict_only:fast td))
  in
  let term = Term.(const run $ obs_args $ jobs_arg $ fast_arg) in
  Cmd.v (Cmd.info "experiments" ~doc:"Run the paper-reproduction experiments.") term

let () =
  (* route pre-flight warnings (oshil.preflight / oshil.shil sources) to
     stderr; errors surface as Check.Diagnostic.Failed instead *)
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let doc =
    "Graphical describing-function analysis of sub-harmonic injection \
     locking in LC oscillators (DAC 2014 reproduction)."
  in
  let info = Cmd.info "oshil" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        natural_cmd; shil_cmd; lockrange_cmd; harmonics_cmd; hb_cmd;
        dcsweep_cmd; transient_cmd; netlist_cmd; lint_cmd; stats_cmd;
        batch_cmd; serve_cmd; call_cmd; api_cmd; figures_cmd;
        experiments_cmd;
      ]
  in
  (* typed solver errors get a rendered diagnostic and a distinct exit
     code instead of an uncaught-exception backtrace *)
  exit
    (try Cmd.eval ~catch:false group with
     | Resilience.Oshil_error.Error e ->
       Format.eprintf "oshil: %a@." Resilience.Oshil_error.pp e;
       3
     | Check.Diagnostic.Failed ds ->
       List.iter (fun d -> Format.eprintf "oshil: %a@." Check.Diagnostic.pp d) ds;
       3)
