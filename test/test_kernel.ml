(* Batch-kernel correctness.

   The contract under test has two tiers (see Numerics.Kernel and
   Nonlinearity.eval_batch):

   - the default [`Exact] path must be BIT-IDENTICAL to the historical
     scalar implementation — same synthesis expressions, same summation
     order, same libm calls — so cached results and golden files survive
     the batch rewrite unchanged (cache keys stay at version 1);
   - the opt-in [`Symmetry] reduction is tolerance-grade and hashes
     under its own cache-key version.

   The scalar references below are written out longhand (per-sample
   closures and explicit loops) precisely so they cannot share code with
   the kernels they check. *)

module Cx = Numerics.Cx
module Kernel = Numerics.Kernel
module Trig = Numerics.Trig_tables
module Interp = Numerics.Interp
module Fourier = Numerics.Fourier
module Df = Shil.Describing_function
module Nl = Shil.Nonlinearity
module Grid = Shil.Grid

let qtest ?(count = 100) name gen prop = Qseed.qtest ~count name gen prop
let same_bits a b = Int64.bits_of_float a = Int64.bits_of_float b

let check_bits name a b =
  if not (same_bits a b) then Alcotest.failf "%s: %h <> %h" name a b

let check_close name ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  if not (Float.abs (a -. b) <= atol +. (rtol *. Float.abs b)) then
    Alcotest.failf "%s: %.17g vs %.17g" name a b

(* deterministic-but-unstructured probe voltages spanning the saturated
   and linear regions of every builtin *)
let probe_array len =
  Array.init len (fun i ->
      let x = float_of_int (i + 1) in
      3.0 *. sin (12.9898 *. x) *. cos (0.7 *. x))

let builtins =
  [
    ("neg_tanh", Nl.neg_tanh ~g0:2e-3 ~isat:1e-3);
    ("cubic", Nl.cubic ~g1:1.5e-3 ~g3:0.4e-3);
    ("tunnel_diode", Nl.tunnel_diode ~bias:0.065 ());
    ( "of_table",
      let vs = Kernel.linspace (-4.0) 4.0 41 in
      let is = Array.map (fun v -> -1e-3 *. tanh (2.0 *. v)) vs in
      Nl.of_table ~name:"test-table" ~vs ~is () );
    ("shift_bias", Nl.shift_bias (Nl.neg_tanh ~g0:2e-3 ~isat:1e-3) 0.3);
    ("scale_current", Nl.scale_current (Nl.cubic ~g1:1.5e-3 ~g3:0.4e-3) (-0.5));
  ]

(* --- eval_batch == eval, bit for bit, for every builtin ------------- *)

let test_eval_batch_bit_identical () =
  let src = probe_array 257 in
  let n = Array.length src in
  List.iter
    (fun (name, nl) ->
      let dst = Array.make n 42.0 in
      Nl.eval_batch nl ~src ~dst;
      Array.iteri
        (fun i v ->
          check_bits (Printf.sprintf "%s.(%d)" name i) (Nl.eval nl src.(i)) v)
        dst)
    builtins

(* the scalar fallback (batch kernels disabled) must agree too — this is
   the code path OSHIL_NO_BATCH=1 forces *)
let test_eval_batch_scalar_fallback () =
  let src = probe_array 63 in
  let n = Array.length src in
  Fun.protect
    ~finally:(fun () -> Kernel.set_batch_enabled true)
    (fun () ->
      Kernel.set_batch_enabled false;
      List.iter
        (fun (name, nl) ->
          let dst = Array.make n 0.0 in
          Nl.eval_batch nl ~src ~dst;
          Array.iteri
            (fun i v ->
              check_bits
                (Printf.sprintf "fallback %s.(%d)" name i)
                (Nl.eval nl src.(i)) v)
            dst)
        builtins)

(* eval_batch_fast may use the vectorized tanh: tolerance-grade only *)
let test_eval_batch_fast_close () =
  let src = probe_array 201 in
  let n = Array.length src in
  List.iter
    (fun (name, nl) ->
      let dst = Array.make n 0.0 in
      Nl.eval_batch_fast nl ~src ~dst;
      Array.iteri
        (fun i v ->
          check_close
            (Printf.sprintf "fast %s.(%d)" name i)
            ~rtol:1e-12 ~atol:1e-18 (Nl.eval nl src.(i)) v)
        dst)
    builtins

let test_eval_batch_prefix_and_alias () =
  let nl = Nl.neg_tanh ~g0:2e-3 ~isat:1e-3 in
  let src = probe_array 32 in
  (* ~n prefix: elements past n must be untouched *)
  let dst = Array.make 32 7.5 in
  Nl.eval_batch ~n:10 nl ~src ~dst;
  for i = 10 to 31 do
    check_bits "prefix untouched" 7.5 dst.(i)
  done;
  (* in-place: src == dst is part of the batch_fn contract *)
  let buf = Array.copy src in
  Nl.eval_batch nl ~src:buf ~dst:buf;
  Array.iteri
    (fun i v -> check_bits "in-place" (Nl.eval nl src.(i)) v)
    buf;
  (* wrappers compose in place too: shift_bias runs its inner batch on
     its own dst *)
  let shifted = Nl.shift_bias nl 0.25 in
  let buf = Array.copy src in
  Nl.eval_batch shifted ~src:buf ~dst:buf;
  Array.iteri
    (fun i v -> check_bits "shift in-place" (Nl.eval shifted src.(i)) v)
    buf

(* --- Interp.eval_batch --------------------------------------------- *)

let prop_interp_batch =
  qtest ~count:100 "interp: eval_batch == eval (incl. extrapolation)"
    QCheck.(list_of_size Gen.(int_range 2 40) (float_bound_exclusive 10.0))
    (fun qs ->
      let xs = Kernel.linspace (-2.0) 2.0 17 in
      let ys = Array.map (fun x -> sin (3.0 *. x) +. (0.2 *. x *. x)) xs in
      let itp = Interp.pchip ~xs ~ys in
      (* queries deliberately run past both table ends *)
      let src = Array.of_list qs in
      let dst = Array.make (Array.length src) 0.0 in
      Interp.eval_batch itp ~src ~dst;
      Array.iteri
        (fun i v -> check_bits "interp batch" (Interp.eval itp src.(i)) v)
        dst;
      (* aliasing *)
      let buf = Array.copy src in
      Interp.eval_batch itp ~src:buf ~dst:buf;
      Array.iteri
        (fun i v -> check_bits "interp alias" (Interp.eval itp src.(i)) v)
        buf;
      true)

(* --- kernel primitives --------------------------------------------- *)

let test_linspace () =
  let xs = Kernel.linspace 0.25 1.75 7 in
  Alcotest.(check int) "len" 7 (Array.length xs);
  check_bits "left endpoint" 0.25 xs.(0);
  Array.iteri
    (fun k v ->
      check_bits "linspace formula"
        (0.25 +. ((1.75 -. 0.25) *. float_of_int k /. float_of_int 6))
        v)
    xs

let test_dot2_seed_order () =
  let points = 129 in
  let cos_t, sin_t = Trig.get ~points ~k:1 in
  let x = probe_array points in
  let re = ref 0.0 and im = ref 0.0 in
  for s = 0 to points - 1 do
    re := !re +. (x.(s) *. cos_t.(s));
    im := !im -. (x.(s) *. sin_t.(s))
  done;
  let re', im' = Kernel.dot2 ~n:points x ~cos_t ~sin_t in
  check_bits "dot2 re" !re re';
  check_bits "dot2 im" !im im'

let test_with_bufs () =
  Kernel.with_bufs ~len:64 3 (fun bufs ->
      Alcotest.(check int) "buf count" 3 (Array.length bufs);
      Array.iter
        (fun b -> Alcotest.(check int) "buf len" 64 (Array.length b))
        bufs;
      Alcotest.(check bool) "bufs distinct" true
        (bufs.(0) != bufs.(1) && bufs.(1) != bufs.(2) && bufs.(0) != bufs.(2));
      (* a nested scope must not hand back the buffers the outer scope
         is still writing into *)
      bufs.(0).(0) <- 1.0;
      Kernel.with_bufs ~len:64 2 (fun inner ->
          Array.iter
            (fun ib ->
              Array.iter
                (fun ob ->
                  Alcotest.(check bool) "nested distinct" true (ib != ob))
                bufs)
            inner);
      check_bits "outer survives nesting" 1.0 bufs.(0).(0))

(* --- trig-table LRU (the eviction-wipes-everything regression) ----- *)

let test_trig_lru_keeps_hot_tables () =
  Trig.clear ();
  let hot_cos, _ = Trig.get ~points:48 ~k:1 in
  (* flood the cache far past its capacity with one-off tables while
     re-touching the hot one; LRU must keep the hot table alive (the old
     eviction reset the whole cache, so this returned a fresh array) *)
  for i = 0 to 199 do
    ignore (Trig.get ~points:(100 + (2 * i)) ~k:1);
    ignore (Trig.get ~points:48 ~k:1)
  done;
  let hot_cos', _ = Trig.get ~points:48 ~k:1 in
  Alcotest.(check bool) "hot table survived eviction" true
    (hot_cos == hot_cos');
  (* values are right regardless of identity *)
  check_bits "table value" (cos (2.0 *. Float.pi *. 5.0 /. 48.0)) hot_cos.(5)

(* --- describing function: exact path vs historical closures -------- *)

let tanh_nl = Nl.neg_tanh ~g0:2e-3 ~isat:1e-3

let prop_i1_two_tone_matches_closure =
  qtest ~count:60 "df: exact i1_two_tone == Fourier.coeff of the closure"
    QCheck.(
      triple (float_range 0.2 1.5) (float_range 0.0 0.4)
        (float_range 0.0 6.28))
    (fun (a, vi, phi) ->
      List.iter
        (fun (name, nl) ->
          let points = 256 in
          let z = Df.i1_two_tone ~points nl ~n:3 ~a ~vi ~phi in
          let z' =
            Fourier.coeff ~n:points
              ~f:(Df.two_tone_input nl ~n:3 ~a ~vi ~phi)
              ~k:1 ()
          in
          check_bits (name ^ " re") (Cx.re z') (Cx.re z);
          check_bits (name ^ " im") (Cx.im z') (Cx.im z))
        builtins;
      true)

let prop_ik_two_tone_matches_closure =
  qtest ~count:40 "df: exact ik_two_tone == Fourier.coeff of the closure"
    QCheck.(pair (float_range 0.3 1.2) (int_range 1 5))
    (fun (a, k) ->
      let points = 128 in
      let z = Df.ik_two_tone ~points tanh_nl ~n:3 ~a ~vi:0.15 ~phi:0.7 ~k in
      let z' =
        Fourier.coeff ~n:points
          ~f:(Df.two_tone_input tanh_nl ~n:3 ~a ~vi:0.15 ~phi:0.7)
          ~k ()
      in
      same_bits (Cx.re z') (Cx.re z) && same_bits (Cx.im z') (Cx.im z))

(* --- grid: batched row kernel vs longhand scalar quadrature -------- *)

(* the pre-batching Grid.sample cell, written out as the scalar loop it
   used to be: table-synthesized tones, fused sum, same order *)
let seed_grid_cell nl ~n ~points ~a ~vi ~phi =
  let cos_t, sin_t = Trig.get ~points ~k:1 in
  let cos_nt, sin_nt = Trig.get ~points ~k:n in
  let cp = 2.0 *. vi *. cos phi and sp = 2.0 *. vi *. sin phi in
  let re = ref 0.0 and im = ref 0.0 in
  for s = 0 to points - 1 do
    let x = Nl.eval nl ((a *. cos_t.(s)) +. (cp *. cos_nt.(s)) -. (sp *. sin_nt.(s))) in
    re := !re +. (x *. cos_t.(s));
    im := !im -. (x *. sin_t.(s))
  done;
  Cx.make (!re /. float_of_int points) (!im /. float_of_int points)

let small_grid ?reduction nl =
  Grid.sample ?reduction ~points:64 ~n_phi:9 ~n_amp:7 nl ~n:3 ~r:1e3 ~vi:0.2
    ~a_range:(0.3, 1.4) ()

let test_grid_matches_seed_kernel () =
  List.iter
    (fun (name, nl) ->
      let g = small_grid nl in
      Array.iteri
        (fun i phi ->
          Array.iteri
            (fun j a ->
              let z = g.Grid.i1.(i).(j) in
              let z' = seed_grid_cell nl ~n:3 ~points:64 ~a ~vi:0.2 ~phi in
              check_bits (Printf.sprintf "%s re (%d,%d)" name i j) (Cx.re z')
                (Cx.re z);
              check_bits (Printf.sprintf "%s im (%d,%d)" name i j) (Cx.im z')
                (Cx.im z))
            g.Grid.amps)
        g.Grid.phis)
    builtins

let test_grid_batch_equals_scalar_fallback () =
  let g = small_grid tanh_nl in
  let g' =
    Fun.protect
      ~finally:(fun () -> Kernel.set_batch_enabled true)
      (fun () ->
        Kernel.set_batch_enabled false;
        small_grid tanh_nl)
  in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j z ->
          let z' = g'.Grid.i1.(i).(j) in
          check_bits "re" (Cx.re z') (Cx.re z);
          check_bits "im" (Cx.im z') (Cx.im z))
        row)
    g.Grid.i1

(* --- symmetry reduction: tolerance contract ------------------------ *)

let test_grid_symmetry_close_to_exact () =
  (* odd nonlinearity: halved rows AND conjugate-mirrored rows *)
  List.iter
    (fun (name, nl) ->
      let exact = small_grid nl in
      let red = small_grid ~reduction:`Symmetry nl in
      Alcotest.(check bool) (name ^ " mode recorded") true
        (red.Grid.reduction = `Symmetry);
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j z ->
              let z' = red.Grid.i1.(i).(j) in
              let d = Cx.abs (Cx.sub z' z) in
              if not (d <= 1e-12 +. (1e-9 *. Cx.abs z)) then
                Alcotest.failf "%s (%d,%d): |%g|" name i j d)
            row)
        exact.Grid.i1)
    builtins

let prop_df_symmetry_close =
  qtest ~count:60 "df: `Symmetry i1_two_tone close to `Exact"
    QCheck.(
      triple (float_range 0.2 1.5) (float_range 0.0 0.4)
        (float_range 0.0 6.28))
    (fun (a, vi, phi) ->
      let z = Df.i1_two_tone ~points:512 tanh_nl ~n:3 ~a ~vi ~phi in
      let z' =
        Df.i1_two_tone ~points:512 ~reduction:`Symmetry tanh_nl ~n:3 ~a ~vi
          ~phi
      in
      Cx.abs (Cx.sub z' z) <= 1e-12 +. (1e-9 *. Cx.abs z))

let test_symmetry_no_halving_when_not_licensed () =
  (* even n breaks the half-period identity; the reduced result must
     still match (it silently keeps the full period) *)
  let z = Df.i1_two_tone ~points:256 tanh_nl ~n:2 ~a:0.8 ~vi:0.2 ~phi:1.1 in
  let z' =
    Df.i1_two_tone ~points:256 ~reduction:`Symmetry tanh_nl ~n:2 ~a:0.8
      ~vi:0.2 ~phi:1.1
  in
  if not (Cx.abs (Cx.sub z' z) <= 1e-12 +. (1e-9 *. Cx.abs z)) then
    Alcotest.failf "even-n reduced drifted: %g" (Cx.abs (Cx.sub z' z))

(* --- cache keys: version pinning ----------------------------------- *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_df_key_versions () =
  let key ?reduction () =
    Df.coeff_key ?reduction ~nl_key:"tanh|g0=2e-3" ~n:3 ~a:1.0 ~vi:0.2
      ~phi:0.5 ~k:1 ~points:512 ()
  in
  let exact = Cache.Key.preimage (key ()) in
  let reduced = Cache.Key.preimage (key ~reduction:`Symmetry ()) in
  (* v1 is the pre-batch scalar kernel's version: bit-identity means the
     batch path MUST keep producing it *)
  Alcotest.(check bool) "exact v1" true (has_prefix ~prefix:"shil.df/v1|" exact);
  Alcotest.(check bool) "exact has no red field" false
    (contains ~sub:"red=" exact);
  Alcotest.(check bool) "sym v2" true
    (has_prefix ~prefix:"shil.df/v2|" reduced);
  Alcotest.(check bool) "sym red field" true (contains ~sub:"red=sym" reduced);
  Alcotest.(check bool) "distinct digests" true
    (Cache.Key.digest (key ()) <> Cache.Key.digest (key ~reduction:`Symmetry ()))

let test_grid_key_versions () =
  let key reduction =
    Grid.cache_key ~reduction ~nl_key:"tanh|g0=2e-3" ~n:3 ~r:1e3 ~vi:0.2
      ~p_lo:0.0 ~p_hi:6.28 ~n_phi:9 ~n_amp:7 ~a_lo:0.3 ~a_hi:1.4 ~points:64
  in
  Alcotest.(check bool) "exact v1" true
    (has_prefix ~prefix:"shil.grid/v1|" (Cache.Key.preimage (key `Exact)));
  let reduced = Cache.Key.preimage (key `Symmetry) in
  Alcotest.(check bool) "sym v2" true
    (has_prefix ~prefix:"shil.grid/v2|" reduced);
  Alcotest.(check bool) "sym red field" true (contains ~sub:"red=sym" reduced)

(* --- cache: warm hit == cold compute, in both modes ----------------- *)

let test_cached_reduced_equals_cold () =
  let was = Cache.Store.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Cache.Store.clear_memory ();
      Cache.Store.set_enabled was)
    (fun () ->
      Cache.Store.set_enabled true;
      Cache.Store.clear_memory ();
      let probe reduction =
        Df.i1_two_tone ~points:256 ~reduction tanh_nl ~n:3 ~a:0.9 ~vi:0.2
          ~phi:0.4
      in
      let cold_exact = probe `Exact and cold_red = probe `Symmetry in
      let warm_exact = probe `Exact and warm_red = probe `Symmetry in
      check_bits "exact warm re" (Cx.re cold_exact) (Cx.re warm_exact);
      check_bits "exact warm im" (Cx.im cold_exact) (Cx.im warm_exact);
      check_bits "reduced warm re" (Cx.re cold_red) (Cx.re warm_red);
      check_bits "reduced warm im" (Cx.im cold_red) (Cx.im warm_red);
      (* the two modes must not have served each other's entries *)
      Alcotest.(check bool) "modes distinct" true
        (not (same_bits (Cx.im cold_exact) (Cx.im cold_red))
        || Cx.abs (Cx.sub cold_exact cold_red) = 0.0))

(* --- metrics: ik_two_tone counts under its own counter -------------- *)

let test_ik_evals_counter () =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let i1_before = Obs.Metrics.counter_value "shil.df.i1_evals" in
      let ik_before = Obs.Metrics.counter_value "shil.df.ik_evals" in
      ignore (Df.ik_two_tone ~points:64 tanh_nl ~n:3 ~a:0.8 ~vi:0.1 ~phi:0.2 ~k:3);
      Alcotest.(check int) "ik_evals +1" (ik_before + 1)
        (Obs.Metrics.counter_value "shil.df.ik_evals");
      Alcotest.(check int) "i1_evals untouched by ik" i1_before
        (Obs.Metrics.counter_value "shil.df.i1_evals");
      ignore (Df.i1_two_tone ~points:64 tanh_nl ~n:3 ~a:0.8 ~vi:0.1 ~phi:0.2);
      Alcotest.(check int) "i1_evals +1" (i1_before + 1)
        (Obs.Metrics.counter_value "shil.df.i1_evals"))

let () =
  Alcotest.run "kernel"
    [
      ( "eval_batch",
        [
          Alcotest.test_case "bit-identical" `Quick
            test_eval_batch_bit_identical;
          Alcotest.test_case "scalar fallback" `Quick
            test_eval_batch_scalar_fallback;
          Alcotest.test_case "fast close" `Quick test_eval_batch_fast_close;
          Alcotest.test_case "prefix and alias" `Quick
            test_eval_batch_prefix_and_alias;
          prop_interp_batch;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "dot2 seed order" `Quick test_dot2_seed_order;
          Alcotest.test_case "with_bufs" `Quick test_with_bufs;
          Alcotest.test_case "trig lru" `Quick test_trig_lru_keeps_hot_tables;
        ] );
      ( "exact-path",
        [
          prop_i1_two_tone_matches_closure;
          prop_ik_two_tone_matches_closure;
          Alcotest.test_case "grid vs seed kernel" `Quick
            test_grid_matches_seed_kernel;
          Alcotest.test_case "grid batch = scalar" `Quick
            test_grid_batch_equals_scalar_fallback;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "grid close to exact" `Quick
            test_grid_symmetry_close_to_exact;
          prop_df_symmetry_close;
          Alcotest.test_case "no halving w/o licence" `Quick
            test_symmetry_no_halving_when_not_licensed;
        ] );
      ( "cache",
        [
          Alcotest.test_case "df key versions" `Quick test_df_key_versions;
          Alcotest.test_case "grid key versions" `Quick test_grid_key_versions;
          Alcotest.test_case "warm = cold both modes" `Quick
            test_cached_reduced_equals_cold;
        ] );
      ( "metrics",
        [ Alcotest.test_case "ik counter" `Quick test_ik_evals_counter ] );
    ]
