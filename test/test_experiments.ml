(* Smoke and contract tests for the experiment drivers (prediction-side
   paths only; the heavy simulation paths run in bench/main.exe). *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let has_row (out : Experiments.Output.t) key =
  List.exists (fun (k, _) -> k = key) out.rows

let check_row out key =
  Alcotest.(check bool) (Printf.sprintf "row %S present" key) true (has_row out key)

let row_float (out : Experiments.Output.t) key =
  match List.assoc_opt key out.rows with
  | Some v -> float_of_string v
  | None -> Alcotest.failf "row %S missing" key

(* Bench record schema *)

let test_bench_json_meta_round_trip () =
  let entry =
    {
      Experiments.Bench_json.name = "rt_check";
      jobs = 4;
      wall_s = 0.25;
      speedup_vs_seq = 2.0;
      extra = [ ("newton_iters", 128.0) ];
      meta = [ ("host_domains", "8"); ("ocaml_version", "5.1.1") ];
    }
  in
  let back =
    Experiments.Bench_json.parse (Experiments.Bench_json.to_json entry)
  in
  Alcotest.(check string) "name" entry.name back.Experiments.Bench_json.name;
  Alcotest.(check (list (pair string (float 0.0))))
    "extra" entry.extra back.Experiments.Bench_json.extra;
  Alcotest.(check (list (pair string string)))
    "meta preserved" entry.meta back.Experiments.Bench_json.meta

let test_bench_json_host_meta () =
  let meta = Experiments.Bench_json.host_meta () in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k meta))
    [ "host_domains"; "ocaml_version"; "os_type" ];
  Unix.putenv "OSHIL_DSA_FINDINGS" "0";
  let with_env = Experiments.Bench_json.host_meta () in
  Unix.putenv "OSHIL_DSA_FINDINGS" "";
  Alcotest.(check (option string))
    "dsa_findings picked up from env" (Some "0")
    (List.assoc_opt "dsa_findings" with_env);
  let without = Experiments.Bench_json.host_meta () in
  Alcotest.(check (option string))
    "empty env var omitted" None
    (List.assoc_opt "dsa_findings" without)

(* Output plumbing *)

let test_output_print () =
  let out =
    Experiments.Output.make ~id:"T0" ~title:"demo"
      ~rows:[ ("alpha", "1"); ("beta long key", "2") ]
      ()
  in
  let text = Format.asprintf "%a" Experiments.Output.print out in
  Alcotest.(check bool) "banner" true (contains text "=== [T0] demo");
  Alcotest.(check bool) "keys aligned and present" true
    (contains text "alpha" && contains text "beta long key")

let test_output_write_figures () =
  let dir = Filename.temp_file "oshil" "figs" in
  Sys.remove dir;
  let fig = Plotkit.Fig.add_line (Plotkit.Fig.create ()) ~xs:[| 0.; 1. |] ~ys:[| 0.; 1. |] in
  let out =
    Experiments.Output.make ~id:"T0" ~title:"demo" ~figures:[ ("line", fig) ] ()
  in
  match Experiments.Output.write_figures ~dir out with
  | [ path ] ->
    Alcotest.(check bool) "file written" true (Sys.file_exists path);
    Alcotest.(check bool) "named by id and stem" true (contains path "T0_line.svg");
    Sys.remove path
  | _ -> Alcotest.fail "expected one figure path"

(* Tanh experiments (fast paths) *)

let test_fig3 () =
  let out =
    Experiments.Tanh_experiments.fig3_natural ~validate:false
      Experiments.Tanh_experiments.default_setup
  in
  Alcotest.(check (float 1e-3)) "predicted A" 1.1582
    (row_float out "predicted A (V)");
  Alcotest.(check bool) "one figure" true (List.length out.figures = 1)

let test_fig6 () =
  let out = Experiments.Tanh_experiments.fig6_tank Experiments.Tanh_experiments.default_setup in
  Alcotest.(check (float 1.0)) "fc" 1e6 (row_float out "f_c (Hz)");
  Alcotest.(check (float 1e-6)) "Q" 10.0 (row_float out "Q");
  Alcotest.(check int) "two figures" 2 (List.length out.figures)

let test_fig7 () =
  let out = Experiments.Tanh_experiments.fig7_solutions Experiments.Tanh_experiments.default_setup in
  check_row out "number of locks";
  Alcotest.(check string) "two locks" "2" (List.assoc "number of locks" out.rows)

let test_fig9 () =
  let out = Experiments.Tanh_experiments.fig9_states Experiments.Tanh_experiments.default_setup in
  Alcotest.(check (float 1e-6)) "spacing 2pi/3"
    (2.0 *. Float.pi /. 3.0)
    (row_float out "state spacing (rad)")

let test_fig10_prediction_only () =
  let out =
    Experiments.Tanh_experiments.fig10_lock_range ~validate:false
      Experiments.Tanh_experiments.default_setup
  in
  let lo = row_float out "f_inj low (Hz)" and hi = row_float out "f_inj high (Hz)" in
  Alcotest.(check bool) "band straddles 3 MHz" true (lo < 3e6 && 3e6 < hi)

(* Benches (construction + prediction side) *)

let test_diff_pair_bench () =
  let b = Experiments.Osc_experiments.diff_pair () in
  Alcotest.(check (float 1.0)) "fc" Circuits.Diff_pair.fc_paper b.fc;
  let out = Experiments.Osc_experiments.fig_fv b in
  Alcotest.(check string) "id F12a" "F12a" out.id;
  let out2, lr = Experiments.Osc_experiments.table_lock_range ~predict_only:true b in
  Alcotest.(check string) "id T1" "T1" out2.id;
  Alcotest.(check (float 100.0)) "calibrated lock range" 17670.0 lr.delta_f_inj

let test_tongue_monotone () =
  (* the lock band must widen monotonically with injection strength and
     contain 3 f_c at every strength *)
  let osc = Circuits.Tanh_osc.oscillator Circuits.Tanh_osc.default in
  let pts, failures =
    Experiments.Tongue_experiment.compute ~points:256
      ~vis:[ 0.01; 0.05; 0.15 ] osc ~n:3
  in
  Alcotest.(check bool) "no holes" true
    (Resilience.Summary.is_clean failures);
  let widths = List.map (fun (p : Experiments.Tongue_experiment.point) -> p.delta_f_inj) pts in
  (match widths with
  | [ a; b; c ] ->
    Alcotest.(check bool) "monotone widening" true (a < b && b < c)
  | _ -> Alcotest.fail "expected three points");
  List.iter
    (fun (p : Experiments.Tongue_experiment.point) ->
      Alcotest.(check bool) "band contains 3 fc" true
        (p.f_inj_low < 3e6 && 3e6 < p.f_inj_high))
    pts

let test_fhil_ablation () =
  let out = Experiments.Fhil_experiment.run ~vis:[ 0.01 ] () in
  Alcotest.(check string) "id" "A3" out.id;
  Alcotest.(check bool) "has the sweep row" true (has_row out "Vi = 0.01")

let () =
  Alcotest.run "experiments"
    [
      ( "bench_json",
        [
          Alcotest.test_case "meta round-trip" `Quick
            test_bench_json_meta_round_trip;
          Alcotest.test_case "host meta keys" `Quick test_bench_json_host_meta;
        ] );
      ( "output",
        [
          Alcotest.test_case "print" `Quick test_output_print;
          Alcotest.test_case "write figures" `Quick test_output_write_figures;
        ] );
      ( "tanh",
        [
          Alcotest.test_case "fig3" `Quick test_fig3;
          Alcotest.test_case "fig6" `Quick test_fig6;
          Alcotest.test_case "fig7" `Slow test_fig7;
          Alcotest.test_case "fig9" `Slow test_fig9;
          Alcotest.test_case "fig10 prediction" `Slow test_fig10_prediction_only;
        ] );
      ( "benches",
        [
          Alcotest.test_case "diff pair" `Slow test_diff_pair_bench;
          Alcotest.test_case "fhil ablation" `Slow test_fhil_ablation;
          Alcotest.test_case "arnold tongue" `Slow test_tongue_monotone;
        ] );
    ]
