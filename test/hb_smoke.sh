#!/usr/bin/env bash
# End-to-end smoke of the harmonic-balance stack: CLI/daemon
# byte-identity on the `hb` op, the solver-telemetry contract
# (hb.newton_iters / hb.solves land on a flushed trace), the
# fault-injection ladder at the hb-newton site (first-rung fault ->
# damped-Newton recovery with bit-identical output; all rungs faulted
# -> typed solver-divergence, exit 3), and daemon survival of a
# faulted hb request. Driven by `dune build @hb-smoke`; also in CI.
#
# Usage: hb_smoke.sh path/to/oshil.exe
set -u

OSHIL=${1:?usage: hb_smoke.sh OSHIL_EXE}
case "$OSHIL" in /*) ;; *) OSHIL=$PWD/$OSHIL ;; esac

# Unix socket paths are length-limited (~107 bytes); dune build dirs can
# exceed that, so the sockets live in a throwaway /tmp dir.
DIR=$(mktemp -d /tmp/oshil-hb-smoke.XXXXXX)
SOCK=$DIR/s.sock
SRV=
cleanup() {
  [ -n "$SRV" ] && kill "$SRV" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "hb-smoke: FAIL: $*" >&2
  exit 1
}

wait_sock() {
  for _ in $(seq 1 200); do
    [ -S "$1" ] && return 0
    sleep 0.05
  done
  return 1
}

drain() { # drain <pid> <what>: SIGTERM must be a clean exit-0 shutdown
  kill -TERM "$1" 2>/dev/null || fail "$2: daemon already gone"
  wait "$1"
  rc=$?
  [ "$rc" -eq 0 ] || fail "$2: drain exited $rc (want 0)"
  SRV=
}

# --- leg 1: CLI bytes == daemon bytes on the hb op -------------------

"$OSHIL" serve -l "unix:$SOCK" --trace "$DIR/t1.jsonl" \
  > "$DIR/srv1.log" 2>&1 &
SRV=$!
wait_sock "$SOCK" || fail "daemon socket never appeared"

"$OSHIL" api hb --kmax 3 --samples 128 --id smoke > "$DIR/local.out" \
  || fail "local api hb failed"
"$OSHIL" call -c "unix:$SOCK" hb --kmax 3 --samples 128 --id smoke \
  > "$DIR/wire.out" || fail "daemon hb call failed"
diff "$DIR/local.out" "$DIR/wire.out" \
  || fail "daemon hb response differs from local api"

# the injected-tone mode travels the wire too
"$OSHIL" call -c "unix:$SOCK" hb --kmax 3 --samples 128 --finj 2998000 \
  | grep -q '"status":"ok"' || fail "injected-tone hb op over the wire"

drain "$SRV" "leg1"

# --- leg 2: solver telemetry lands on the trace ----------------------

"$OSHIL" hb --kmax 3 --samples 128 --json --trace "$DIR/t2.jsonl" \
  > "$DIR/clean.json" || fail "traced hb run failed"
"$OSHIL" stats "$DIR/t2.jsonl" \
  --assert-counter hb.newton_iters:1 \
  --assert-counter hb.solves:1 > /dev/null \
  || fail "hb solver counters missing from flushed trace"

# --- leg 3: hb-newton fault ladder -----------------------------------

# first-rung fault: damped Newton recovers, output bit-identical
"$OSHIL" hb --kmax 3 --samples 128 --json \
  --inject-fault hb-newton@0 --trace "$DIR/t3.jsonl" > "$DIR/recov.json" \
  || fail "damped rung did not recover the faulted first attempt"
diff "$DIR/clean.json" "$DIR/recov.json" \
  || fail "recovered run is not bit-identical to the clean run"
"$OSHIL" stats "$DIR/t3.jsonl" \
  --assert-counter resilience.hb.rung.damped-newton \
  --assert-counter resilience.faults.hb-newton > /dev/null \
  || fail "recovery rung counters missing from flushed trace"

# every rung faulted: typed solver-divergence, exit 3
"$OSHIL" hb --kmax 3 --samples 128 --inject-fault hb-newton \
  > "$DIR/div.out" 2> "$DIR/div.err"
rc=$?
[ "$rc" -eq 3 ] || fail "exhausted ladder exited $rc (want 3)"
grep -q 'solver-divergence' "$DIR/div.err" \
  || fail "exhausted ladder did not surface a typed solver-divergence"

# --- leg 4: the daemon survives a faulted hb request -----------------

OSHIL_FAULTS=hb-newton "$OSHIL" serve -l "unix:$SOCK" --retries 0 \
  --trace "$DIR/t4.jsonl" > "$DIR/srv4.log" 2>&1 &
SRV=$!
wait_sock "$SOCK" || fail "leg4: daemon socket never appeared"

"$OSHIL" call -c "unix:$SOCK" hb --kmax 3 --samples 128 \
  | grep -q '"code":"solver-divergence"' \
  || fail "faulted hb request not surfaced as a typed error"
"$OSHIL" call -c "unix:$SOCK" ping | grep -q '"report":"pong"' \
  || fail "daemon did not survive the faulted hb request"

drain "$SRV" "leg4"

echo "hb-smoke: PASS"
