(* Tests for the content-addressed result cache (lib/cache): canonical
   keys, LRU tier semantics, two-tier store round-trips and corruption
   handling, and the bit-identity contract of the cached kernels. *)

module Key = Cache.Key
module Lru = Cache.Lru
module Store = Cache.Store
module Cx = Numerics.Cx

(* The store is process-global; every test starts disabled with an empty
   memory tier and a throwaway disk directory, and leaves it that way. *)
let fresh f () =
  let dir = Filename.temp_dir "oshil-test-cache" "" in
  Store.set_dir dir;
  Store.set_memory_capacity ();
  Store.set_enabled false;
  Fun.protect
    ~finally:(fun () ->
      Store.set_enabled false;
      Store.set_memory_capacity ();
      let rec rm_rf p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      try rm_rf dir with Sys_error _ -> ())
    f

let key ?(kind = "test.kind") ?(version = 1) fields = Key.v ~kind ~version fields

let sample_key ?version ?(a = 1.5) ?(n = 3) () =
  key ?version [ Key.float "a" a; Key.int "n" n; Key.str "nl" "neg_tanh" ]

(* ------------------------------------------------------------------ *)
(* Key *)

let test_key_deterministic () =
  let k1 = sample_key () and k2 = sample_key () in
  Alcotest.(check string) "equal preimages" (Key.preimage k1) (Key.preimage k2);
  Alcotest.(check string) "equal digests" (Key.digest k1) (Key.digest k2)

let test_key_perturbation () =
  let base = sample_key () in
  let differs k = Alcotest.(check bool) "digest differs" false
      (String.equal (Key.digest base) (Key.digest k))
  in
  differs (sample_key ~a:1.5000000000000002 ());  (* one ulp *)
  differs (sample_key ~n:4 ());
  differs (sample_key ~version:2 ());
  differs (key ~kind:"other.kind" [ Key.float "a" 1.5; Key.int "n" 3; Key.str "nl" "neg_tanh" ])

let test_key_float_bits () =
  let k v = Key.digest (key [ Key.float "x" v ]) in
  Alcotest.(check bool) "0.0 vs -0.0 distinct" false (String.equal (k 0.0) (k (-0.0)));
  Alcotest.(check bool) "nan stable" true (String.equal (k Float.nan) (k Float.nan));
  Alcotest.(check bool) "inf distinct from max_float" false
    (String.equal (k Float.infinity) (k Float.max_float))

let test_key_sanitization () =
  (* a hostile value must not be able to smuggle in a field separator
     and alias a different field list *)
  let k1 = key [ Key.str "a" "x;b=1"; Key.int "n" 1 ] in
  let k2 = key [ Key.str "a" "x"; Key.str "b" "1"; Key.int "n" 1 ] in
  Alcotest.(check bool) "no aliasing through ';'" false
    (String.equal (Key.digest k1) (Key.digest k2));
  let k3 = key [ Key.str "a" "x|y\nz" ] in
  Alcotest.(check bool) "preimage stays single-line" false
    (String.contains (Key.preimage k3) '\n')

let test_key_option_fields () =
  let some = key [ Key.float_opt "w" (Some 1.0) ] in
  let none = key [ Key.float_opt "w" None ] in
  Alcotest.(check bool) "Some vs None distinct" false
    (String.equal (Key.digest some) (Key.digest none))

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_eviction_order () =
  let l = Lru.create ~max_entries:2 () in
  Lru.add l "a" "1";
  Lru.add l "b" "2";
  Lru.add l "c" "3";
  Alcotest.(check bool) "a evicted" false (Lru.mem l "a");
  Alcotest.(check bool) "b kept" true (Lru.mem l "b");
  Alcotest.(check bool) "c kept" true (Lru.mem l "c");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions l)

let test_lru_find_refreshes () =
  let l = Lru.create ~max_entries:2 () in
  Lru.add l "a" "1";
  Lru.add l "b" "2";
  Alcotest.(check (option string)) "hit" (Some "1") (Lru.find l "a");
  Lru.add l "c" "3";
  (* "a" was refreshed by the find, so "b" is now the LRU victim *)
  Alcotest.(check bool) "a survives" true (Lru.mem l "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem l "b")

let test_lru_byte_cap () =
  let blob = String.make 200 'x' in
  let l = Lru.create ~max_entries:100 ~max_bytes:600 () in
  Lru.add l "a" blob;
  Lru.add l "b" blob;
  Lru.add l "c" blob;
  Alcotest.(check bool) "byte cap respected" true (Lru.bytes l <= 600);
  Alcotest.(check bool) "oldest gone" false (Lru.mem l "a")

let test_lru_oversized_blob () =
  let l = Lru.create ~max_entries:10 ~max_bytes:100 () in
  Lru.add l "big" (String.make 1000 'x');
  (* larger than the cap: degrades to a one-slot cache, no livelock *)
  Alcotest.(check int) "kept alone" 1 (Lru.length l);
  Alcotest.(check (option string)) "retrievable" (Some (String.make 1000 'x'))
    (Lru.find l "big")

let test_lru_replace_adjusts_bytes () =
  let l = Lru.create () in
  Lru.add l "a" (String.make 100 'x');
  let b1 = Lru.bytes l in
  Lru.add l "a" (String.make 10 'y');
  Alcotest.(check int) "still one entry" 1 (Lru.length l);
  Alcotest.(check int) "bytes shrank by 90" (b1 - 90) (Lru.bytes l);
  Lru.clear l;
  Alcotest.(check int) "clear empties" 0 (Lru.length l);
  Alcotest.(check int) "clear zeroes bytes" 0 (Lru.bytes l)

(* ------------------------------------------------------------------ *)
(* Store *)

let roundtrip_value = [| 1.0; Float.pi; -0.0; 1e-300 |]

let test_store_disabled_is_inert () =
  let k = sample_key () in
  Store.add ~key:k ~encode:Store.to_marshal roundtrip_value;
  Alcotest.(check bool) "find misses while disabled" true
    (Store.find ~key:k ~decode:Store.of_marshal () = (None : float array option));
  Alcotest.(check int) "memory untouched" 0 (Store.stats_bytes ());
  Alcotest.(check bool) "disk untouched" true
    (Sys.readdir (Store.dir ()) = [||])

let test_store_memory_roundtrip () =
  Store.set_enabled true;
  let k = sample_key () in
  Store.add ~disk:false ~key:k ~encode:Store.to_marshal roundtrip_value;
  match Store.find ~disk:false ~key:k ~decode:Store.of_marshal () with
  | None -> Alcotest.fail "expected a memory hit"
  | Some (v : float array) ->
    Alcotest.(check bool) "bit-identical floats" true
      (Array.for_all2
         (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
         roundtrip_value v)

let test_store_disk_roundtrip () =
  Store.set_enabled true;
  let k = sample_key () in
  Store.add ~key:k ~encode:Store.to_marshal roundtrip_value;
  Store.clear_memory ();
  (match Store.find ~key:k ~decode:Store.of_marshal () with
  | None -> Alcotest.fail "expected a disk hit"
  | Some (v : float array) ->
    Alcotest.(check bool) "bit-identical after disk trip" true
      (Array.for_all2
         (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
         roundtrip_value v));
  (* the disk hit promoted the entry back into the memory tier *)
  Alcotest.(check bool) "promoted to memory" true (Store.stats_bytes () > 0)

let test_store_version_invalidates () =
  Store.set_enabled true;
  Store.add ~key:(sample_key ~version:1 ()) ~encode:Store.to_marshal roundtrip_value;
  Store.clear_memory ();
  Alcotest.(check bool) "v2 key misses v1 entry" true
    (Store.find ~key:(sample_key ~version:2 ()) ~decode:Store.of_marshal ()
     = (None : float array option))

let test_store_corrupt_disk_entry () =
  Store.set_enabled true;
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
  @@ fun () ->
  let k = sample_key () in
  Store.add ~key:k ~encode:Store.to_marshal roundtrip_value;
  Store.clear_memory ();
  (* truncate the entry mid-blob: header verification + decode must turn
     it into a quarantined miss, never an exception or garbage *)
  let path =
    Filename.concat
      (Filename.concat (Store.dir ()) (Key.kind k))
      (Key.digest k ^ ".bin")
  in
  let contents = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub contents 0 (String.length contents / 2)));
  Alcotest.(check bool) "truncated entry is a miss" true
    (Store.find ~key:k ~decode:Store.of_marshal () = (None : float array option));
  Alcotest.(check bool) "truncated entry quarantined to .bad" true
    (Sys.file_exists (path ^ ".bad"));
  Alcotest.(check bool) "quarantined entry vacates the slot" false
    (Sys.file_exists path);
  Alcotest.(check int) "cache.corrupt bumped" 1
    (Obs.Metrics.counter_value "cache.corrupt");
  Sys.remove (path ^ ".bad");
  (* a garbage header too *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "oshil-cache/1 wrong-preimage\njunk");
  Alcotest.(check bool) "wrong header is a miss" true
    (Store.find ~key:k ~decode:Store.of_marshal () = (None : float array option));
  Alcotest.(check int) "wrong header also quarantined" 2
    (Obs.Metrics.counter_value "cache.corrupt");
  Sys.remove (path ^ ".bad");
  (* header intact but payload does not unmarshal: quarantined as well *)
  Store.add ~key:k ~encode:Store.to_marshal roundtrip_value;
  Store.clear_memory ();
  let good = In_channel.with_open_bin path In_channel.input_all in
  let header_len = 1 + String.index good '\n' in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub good 0 header_len);
      Out_channel.output_string oc "not-a-marshalled-blob");
  Alcotest.(check bool) "undecodable payload is a miss" true
    (Store.find ~key:k ~decode:Store.of_marshal () = (None : float array option));
  Alcotest.(check int) "undecodable payload quarantined" 3
    (Obs.Metrics.counter_value "cache.corrupt");
  (* the slot is writable again: recompute repopulates and hits *)
  Store.add ~key:k ~encode:Store.to_marshal roundtrip_value;
  Store.clear_memory ();
  Alcotest.(check bool) "recompute repopulates the slot" true
    (Store.find ~key:k ~decode:Store.of_marshal ()
    <> (None : float array option))

let test_store_find_or_compute () =
  Store.set_enabled true;
  let k = sample_key () in
  let calls = ref 0 in
  let f () = incr calls; 42 in
  let v1 =
    Store.find_or_compute ~key:k ~encode:Store.to_marshal
      ~decode:Store.of_marshal f
  in
  let v2 =
    Store.find_or_compute ~key:k ~encode:Store.to_marshal
      ~decode:Store.of_marshal f
  in
  Alcotest.(check int) "same value" v1 v2;
  Alcotest.(check int) "computed once" 1 !calls

let test_store_cache_if_rejects () =
  Store.set_enabled true;
  let k = sample_key () in
  let calls = ref 0 in
  let f () = incr calls; 42 in
  let fc () =
    Store.find_or_compute ~key:k ~cache_if:(fun _ -> false)
      ~encode:Store.to_marshal ~decode:Store.of_marshal f
  in
  ignore (fc ());
  ignore (fc ());
  Alcotest.(check int) "recomputed every call" 2 !calls

let test_store_metrics () =
  Store.set_enabled true;
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let k = sample_key () in
      Alcotest.(check bool) "miss" true
        (Store.find ~key:k ~decode:Store.of_marshal () = (None : int option));
      Store.add ~key:k ~encode:Store.to_marshal 1;
      ignore (Store.find ~key:k ~decode:(Store.of_marshal : string -> int option) ());
      Store.clear_memory ();
      ignore (Store.find ~key:k ~decode:(Store.of_marshal : string -> int option) ());
      Alcotest.(check int) "one miss" 1 (Obs.Metrics.counter_value "cache.misses");
      Alcotest.(check int) "two hits" 2 (Obs.Metrics.counter_value "cache.hits");
      Alcotest.(check int) "one memory hit" 1
        (Obs.Metrics.counter_value "cache.memory_hits");
      Alcotest.(check int) "one disk hit" 1
        (Obs.Metrics.counter_value "cache.disk_hits");
      Alcotest.(check int) "one disk write" 1
        (Obs.Metrics.counter_value "cache.disk_writes"))

let test_store_env_config () =
  (* configure_from_env only reads the environment; drive it via the
     documented variables using a child-free putenv *)
  Unix.putenv "OSHIL_CACHE" "1";
  Unix.putenv "OSHIL_CACHE_DIR" "/tmp/oshil-env-cache";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "OSHIL_CACHE" "";
      Unix.putenv "OSHIL_CACHE_DIR" "";
      Store.set_enabled false)
    (fun () ->
      Store.configure_from_env ();
      Alcotest.(check bool) "enabled from env" true (Store.enabled ());
      Alcotest.(check string) "dir from env" "/tmp/oshil-env-cache" (Store.dir ());
      (* empty values change nothing *)
      Unix.putenv "OSHIL_CACHE" "";
      Unix.putenv "OSHIL_CACHE_DIR" "";
      Store.configure_from_env ();
      Alcotest.(check bool) "still enabled" true (Store.enabled ());
      Unix.putenv "OSHIL_CACHE" "0";
      Store.configure_from_env ();
      Alcotest.(check bool) "0 disables" false (Store.enabled ()))

(* ------------------------------------------------------------------ *)
(* Nonlinearity identities *)

let test_nonlinearity_keys () =
  let open Shil.Nonlinearity in
  let k nl = cache_key nl in
  let same a b = Alcotest.(check (option string)) "equal keys" (k a) (k b) in
  let distinct a b =
    Alcotest.(check bool) "distinct keys" false (k a = k b || k a = None)
  in
  same (neg_tanh ~g0:2e-3 ~isat:1e-3) (neg_tanh ~g0:2e-3 ~isat:1e-3);
  distinct (neg_tanh ~g0:2e-3 ~isat:1e-3) (neg_tanh ~g0:3e-3 ~isat:1e-3);
  distinct (cubic ~g1:1e-3 ~g3:1e-4) (cubic ~g1:1e-3 ~g3:2e-4);
  distinct (neg_tanh ~g0:2e-3 ~isat:1e-3)
    (scale_current (neg_tanh ~g0:2e-3 ~isat:1e-3) 2.0);
  distinct (neg_tanh ~g0:2e-3 ~isat:1e-3)
    (shift_bias (neg_tanh ~g0:2e-3 ~isat:1e-3) 0.1);
  Alcotest.(check (option string)) "custom closures are uncacheable" None
    (k (make (fun v -> -.v)));
  Alcotest.(check (option string)) "custom tunnel params are uncacheable" None
    (k (tunnel_diode ~params:(fun v -> (v, 1.0)) ~bias:0.1 ()));
  Alcotest.(check bool) "default tunnel model is cacheable" true
    (k (tunnel_diode ~bias:0.1 ()) <> None);
  let t1 = of_table ~vs:[| 0.0; 1.0 |] ~is:[| 0.0; 1e-3 |] () in
  let t2 = of_table ~vs:[| 0.0; 1.0 |] ~is:[| 0.0; 1e-3 |] () in
  let t3 = of_table ~vs:[| 0.0; 1.0 |] ~is:[| 0.0; 2e-3 |] () in
  same t1 t2;
  distinct t1 t3

(* ------------------------------------------------------------------ *)
(* Kernel bit-identity: the hard guarantee of the tentpole *)

let i1_bits g =
  Array.map
    (Array.map (fun z -> (Int64.bits_of_float (Cx.re z), Int64.bits_of_float (Cx.im z))))
    g.Shil.Grid.i1

let small_grid () =
  Shil.Grid.sample ~points:128 ~n_phi:13 ~n_amp:9
    (Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3)
    ~n:3 ~r:1e3 ~vi:0.05 ~a_range:(0.3, 1.45) ()

let test_grid_cache_bit_identity () =
  let cold = small_grid () in
  Store.set_enabled true;
  let populate = small_grid () in
  let warm = small_grid () in
  Store.set_enabled false;
  let disabled_again = small_grid () in
  Alcotest.(check bool) "populate == cold" true (i1_bits populate = i1_bits cold);
  Alcotest.(check bool) "warm hit == cold" true (i1_bits warm = i1_bits cold);
  Alcotest.(check bool) "disabled again == cold" true
    (i1_bits disabled_again = i1_bits cold);
  Alcotest.(check bool) "warm grid is clean" true
    (Resilience.Summary.is_clean warm.failures)

let test_grid_cache_disk_only_hit () =
  Store.set_enabled true;
  ignore (small_grid ());
  Store.clear_memory ();
  let from_disk = small_grid () in
  Store.set_enabled false;
  let cold = small_grid () in
  Alcotest.(check bool) "disk replay == cold" true
    (i1_bits from_disk = i1_bits cold)

let test_uncacheable_nl_bypasses () =
  Store.set_enabled true;
  let nl = Shil.Nonlinearity.make (fun v -> -2e-3 *. v) in
  ignore
    (Shil.Grid.sample ~points:64 ~n_phi:5 ~n_amp:5 nl ~n:3 ~r:1e3 ~vi:0.05
       ~a_range:(0.3, 1.45) ());
  Alcotest.(check int) "nothing stored" 0 (Store.stats_bytes ());
  Alcotest.(check bool) "no disk shard" true
    (not (Sys.file_exists (Filename.concat (Store.dir ()) "shil.grid")))

let test_faulty_grid_not_cached () =
  Store.set_enabled true;
  (match Resilience.Fault.configure "grid-point@0" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Resilience.Fault.clear ();
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let holed = small_grid () in
      Alcotest.(check bool) "grid has holes" false
        (Resilience.Summary.is_clean holed.failures);
      Alcotest.(check int) "holed grid not stored" 0 (Store.stats_bytes ()))

let test_df_coeff_cache_identity () =
  let nl = Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3 in
  let probe () =
    Shil.Describing_function.i1_two_tone ~points:256 nl ~n:3 ~a:1.1 ~vi:0.07
      ~phi:0.9
  in
  let cold = probe () in
  Store.set_enabled true;
  ignore (probe ());
  let warm = probe () in
  Store.set_enabled false;
  Alcotest.(check bool) "coefficient bit-identical" true
    (Int64.bits_of_float (Cx.re cold) = Int64.bits_of_float (Cx.re warm)
    && Int64.bits_of_float (Cx.im cold) = Int64.bits_of_float (Cx.im warm));
  (* memory-only tier: no disk shard for shil.df *)
  Alcotest.(check bool) "no shil.df on disk" true
    (not (Sys.file_exists (Filename.concat (Store.dir ()) "shil.df")))

let test_transient_cache_identity () =
  (* the BJT differential pair is pure data (no behavioural device), so
     its transients are cacheable *)
  let params = Circuits.Diff_pair.default in
  let circuit = Circuits.Diff_pair.circuit params in
  let fc = Shil.Tank.f_c (Circuits.Diff_pair.tank params) in
  let dt = 1.0 /. (fc *. 80.0) in
  let opts = Spice.Transient.default_options ~dt ~t_stop:(3.0 /. fc) in
  let probes = [ Circuits.Diff_pair.osc_probe ] in
  let run () = Spice.Transient.run circuit ~probes opts in
  let cold = run () in
  Store.set_enabled true;
  ignore (run ());
  let warm = run () in
  Store.set_enabled false;
  let bits a = Array.map Int64.bits_of_float a in
  Alcotest.(check bool) "times bit-identical" true
    (bits cold.Spice.Transient.times = bits warm.Spice.Transient.times);
  List.iter2
    (fun (_, c) (_, w) ->
      Alcotest.(check bool) "signal bit-identical" true (bits c = bits w))
    cold.signals warm.signals;
  Alcotest.(check bool) "complete run was cached" true (Store.stats_bytes () > 0)

let test_transient_closure_circuit_bypasses () =
  (* a circuit with a behavioural Nonlinear_cs device must never be
     cached: its closure has no canonical identity *)
  Store.set_enabled true;
  let params = Circuits.Tanh_osc.default in
  let circuit = Circuits.Tanh_osc.circuit params in
  let has_closure =
    List.exists
      (function Spice.Device.Nonlinear_cs _ -> true | _ -> false)
      (Spice.Circuit.devices circuit)
  in
  (* Tanh_osc is precisely the behavioural cell, so the transient test
     above would only cache if the gate were broken -- assert the gate
     sees it *)
  Alcotest.(check bool) "tanh osc is behavioural" true has_closure;
  let fc = Shil.Tank.f_c (Circuits.Tanh_osc.tank params) in
  let dt = 1.0 /. (fc *. 80.0) in
  ignore
    (Spice.Transient.run circuit
       ~probes:[ Spice.Transient.Node "t" ]
       (Spice.Transient.default_options ~dt ~t_stop:(2.0 /. fc)));
  Alcotest.(check bool) "no spice.transient shard" true
    (not (Sys.file_exists (Filename.concat (Store.dir ()) "spice.transient")))

(* ------------------------------------------------------------------ *)
(* qcheck: key stability laws *)

let qtest = Qseed.qtest

let props =
  [
    qtest ~count:100 "key: equal inputs hash equal"
      QCheck.(triple (float_range (-10.0) 10.0) small_nat (float_range 0.0 6.3))
      (fun (a, n, phi) ->
        let mk () =
          Key.v ~kind:"t" ~version:1
            [ Key.float "a" a; Key.int "n" n; Key.float "phi" phi ]
        in
        String.equal (Key.digest (mk ())) (Key.digest (mk ())));
    qtest ~count:100 "key: ulp perturbation changes digest"
      QCheck.(float_range 0.1 10.0)
      (fun a ->
        let bumped = Int64.float_of_bits (Int64.add (Int64.bits_of_float a) 1L) in
        let d v = Key.digest (Key.v ~kind:"t" ~version:1 [ Key.float "a" v ]) in
        not (String.equal (d a) (d bumped)));
    qtest ~count:100 "key: field order is significant"
      QCheck.(pair (float_range 0.1 10.0) (float_range 0.1 10.0))
      (fun (a, b) ->
        (* same name=value pairs, different order: the preimage is a
           positional rendering, so the digests must differ *)
        let d fields = Key.digest (Key.v ~kind:"t" ~version:1 fields) in
        not
          (String.equal
             (d [ Key.float "a" a; Key.float "b" b ])
             (d [ Key.float "b" b; Key.float "a" a ])));
    qtest ~count:50 "lru: never exceeds caps"
      QCheck.(list_of_size Gen.(int_range 1 60) (string_of_size Gen.(int_range 1 40)))
      (fun blobs ->
        let l = Lru.create ~max_entries:16 ~max_bytes:2048 () in
        List.iteri (fun i b -> Lru.add l (string_of_int (i mod 24)) b) blobs;
        Lru.length l <= 16 && (Lru.bytes l <= 2048 || Lru.length l = 1));
    qtest ~count:50 "store: marshal round-trips float arrays bit-exactly"
      QCheck.(array_of_size Gen.(int_range 0 64) float)
      (fun xs ->
        match Store.of_marshal (Store.to_marshal xs) with
        | None -> false
        | Some (ys : float array) ->
          Array.length xs = Array.length ys
          && Array.for_all2
               (fun a b ->
                 Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
               xs ys);
  ]

let () =
  Alcotest.run "cache"
    [
      ( "key",
        [
          Alcotest.test_case "deterministic" `Quick (fresh test_key_deterministic);
          Alcotest.test_case "perturbation changes digest" `Quick
            (fresh test_key_perturbation);
          Alcotest.test_case "float fields are bit-exact" `Quick
            (fresh test_key_float_bits);
          Alcotest.test_case "separator sanitization" `Quick
            (fresh test_key_sanitization);
          Alcotest.test_case "option fields" `Quick (fresh test_key_option_fields);
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick (fresh test_lru_eviction_order);
          Alcotest.test_case "find refreshes recency" `Quick
            (fresh test_lru_find_refreshes);
          Alcotest.test_case "byte cap" `Quick (fresh test_lru_byte_cap);
          Alcotest.test_case "oversized blob degrades" `Quick
            (fresh test_lru_oversized_blob);
          Alcotest.test_case "replace adjusts bytes" `Quick
            (fresh test_lru_replace_adjusts_bytes);
        ] );
      ( "store",
        [
          Alcotest.test_case "disabled is inert" `Quick
            (fresh test_store_disabled_is_inert);
          Alcotest.test_case "memory round-trip" `Quick
            (fresh test_store_memory_roundtrip);
          Alcotest.test_case "disk round-trip + promotion" `Quick
            (fresh test_store_disk_roundtrip);
          Alcotest.test_case "version bump invalidates" `Quick
            (fresh test_store_version_invalidates);
          Alcotest.test_case "corrupt disk entries are misses" `Quick
            (fresh test_store_corrupt_disk_entry);
          Alcotest.test_case "find_or_compute memoizes" `Quick
            (fresh test_store_find_or_compute);
          Alcotest.test_case "cache_if gate" `Quick
            (fresh test_store_cache_if_rejects);
          Alcotest.test_case "cache.* metrics" `Quick (fresh test_store_metrics);
          Alcotest.test_case "env configuration" `Quick
            (fresh test_store_env_config);
        ] );
      ( "kernels",
        [
          Alcotest.test_case "nonlinearity cache keys" `Quick
            (fresh test_nonlinearity_keys);
          Alcotest.test_case "grid: cold/warm/disabled bit-identity" `Quick
            (fresh test_grid_cache_bit_identity);
          Alcotest.test_case "grid: disk-only replay" `Quick
            (fresh test_grid_cache_disk_only_hit);
          Alcotest.test_case "grid: custom nl bypasses cache" `Quick
            (fresh test_uncacheable_nl_bypasses);
          Alcotest.test_case "grid: holed grids are not stored" `Quick
            (fresh test_faulty_grid_not_cached);
          Alcotest.test_case "df: coefficient cache bit-identity" `Quick
            (fresh test_df_coeff_cache_identity);
          Alcotest.test_case "transient: waveform cache bit-identity" `Quick
            (fresh test_transient_cache_identity);
          Alcotest.test_case "transient: behavioural circuits bypass" `Quick
            (fresh test_transient_closure_circuit_bypasses);
        ] );
      ("properties", props);
    ]
