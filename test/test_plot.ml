(* Tests for the plotting library. *)

open Plotkit

let check_float ?(eps = 1e-9) msg expected got =
  Alcotest.(check (float eps)) msg expected got

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* Scale *)

let test_scale_apply_invert () =
  let s = Scale.make ~domain:(0.0, 10.0) ~range:(100.0, 200.0) in
  check_float "apply lo" 100.0 (Scale.apply s 0.0);
  check_float "apply hi" 200.0 (Scale.apply s 10.0);
  check_float "apply mid" 150.0 (Scale.apply s 5.0);
  check_float "invert" 5.0 (Scale.invert s 150.0)

let test_scale_degenerate () =
  let s = Scale.make ~domain:(3.0, 3.0) ~range:(0.0, 1.0) in
  Alcotest.(check bool) "finite output" true (Float.is_finite (Scale.apply s 3.0))

let test_nice_ticks () =
  let ticks = Scale.nice_ticks ~lo:0.0 ~hi:10.0 ~count:5 in
  Alcotest.(check bool) "covers range" true (List.length ticks >= 3);
  List.iter
    (fun t -> Alcotest.(check bool) "in range" true (t >= -1e-9 && t <= 10.0 +. 1e-9))
    ticks;
  (* spacing snapped to 1/2/5 decades *)
  match ticks with
  | a :: b :: _ ->
    let step = b -. a in
    let mant = step /. Float.pow 10.0 (Float.floor (Float.log10 step)) in
    Alcotest.(check bool) "125 spacing" true
      (List.exists (fun m -> Float.abs (mant -. m) < 1e-9) [ 1.0; 2.0; 5.0; 10.0 ])
  | _ -> Alcotest.fail "too few ticks"

let prop_ticks_sorted =
  Qseed.qtest ~count:100 "scale: ticks sorted and inside"
    QCheck.(pair (float_range (-100.0) 100.0) (float_range 0.1 100.0))
       (fun (lo, span) ->
         let hi = lo +. span in
         let ticks = Scale.nice_ticks ~lo ~hi ~count:8 in
         let rec sorted = function
           | a :: (b :: _ as rest) -> a < b && sorted rest
           | _ -> true
         in
         sorted ticks
         && List.for_all (fun t -> t >= lo -. 1e-6 && t <= hi +. 1e-6) ticks)

let test_tick_label () =
  Alcotest.(check string) "zero" "0" (Scale.tick_label 0.0);
  Alcotest.(check string) "int" "5" (Scale.tick_label 5.0);
  Alcotest.(check bool) "sci for big" true
    (contains (Scale.tick_label 3.2e8) "e")

(* Fig *)

let test_fig_bounds () =
  let fig =
    Fig.add_line (Fig.create ()) ~xs:[| 0.0; 2.0 |] ~ys:[| -1.0; 3.0 |]
  in
  let (xlo, xhi), (ylo, yhi) = Fig.data_bounds fig in
  check_float "xlo" 0.0 xlo;
  check_float "xhi" 2.0 xhi;
  check_float "ylo" (-1.0) ylo;
  check_float "yhi" 3.0 yhi

let test_fig_bounds_explicit_range () =
  let fig =
    Fig.with_x_range
      (Fig.add_line (Fig.create ()) ~xs:[| 0.0; 2.0 |] ~ys:[| 0.0; 1.0 |])
      (-5.0, 5.0)
  in
  let (xlo, xhi), _ = Fig.data_bounds fig in
  check_float "explicit xlo" (-5.0) xlo;
  check_float "explicit xhi" 5.0 xhi

let test_fig_bounds_ignores_nan () =
  let fig =
    Fig.add_line (Fig.create ()) ~xs:[| 0.0; 1.0; 2.0 |] ~ys:[| 1.0; Float.nan; 2.0 |]
  in
  let _, (ylo, yhi) = Fig.data_bounds fig in
  check_float "ylo skips nan" 1.0 ylo;
  check_float "yhi skips nan" 2.0 yhi

let test_fig_add_fun () =
  let fig = Fig.add_fun (Fig.create ()) ~f:(fun x -> x *. x) ~a:0.0 ~b:2.0 in
  let _, (ylo, yhi) = Fig.data_bounds fig in
  check_float ~eps:1e-6 "f min" 0.0 ylo;
  check_float ~eps:1e-6 "f max" 4.0 yhi

let test_fig_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Fig.add_line: length mismatch") (fun () ->
      ignore (Fig.add_line (Fig.create ()) ~xs:[| 0.0 |] ~ys:[| 0.0; 1.0 |]))

(* SVG *)

let sample_fig () =
  let fig = Fig.create ~title:"T<am>p" ~xlabel:"x" ~ylabel:"y" () in
  let fig = Fig.add_line ~label:"curve" fig ~xs:[| 0.0; 1.0; 2.0 |] ~ys:[| 0.0; 1.0; 0.0 |] in
  let fig = Fig.add_scatter fig ~xs:[| 0.5 |] ~ys:[| 0.5 |] in
  let fig = Fig.add_hline fig ~y:0.5 in
  let fig = Fig.add_vline fig ~x:1.0 in
  Fig.add_text fig ~x:1.0 ~y:0.8 ~text:"note"

let test_svg_structure () =
  let svg = Svg_render.to_string (sample_fig ()) in
  Alcotest.(check bool) "svg root" true (contains svg "<svg");
  Alcotest.(check bool) "polyline present" true (contains svg "<polyline");
  Alcotest.(check bool) "scatter present" true (contains svg "<circle");
  Alcotest.(check bool) "text escaped" true (contains svg "T&lt;am&gt;p");
  Alcotest.(check bool) "legend entry" true (contains svg "curve");
  Alcotest.(check bool) "closing tag" true (contains svg "</svg>")

let test_svg_size () =
  let svg = Svg_render.to_string ~width:800 ~height:300 (sample_fig ()) in
  Alcotest.(check bool) "width attr" true (contains svg "width=\"800\"");
  Alcotest.(check bool) "height attr" true (contains svg "height=\"300\"")

let test_svg_write_file () =
  let path = Filename.temp_file "oshil" ".svg" in
  Svg_render.write_file ~path (sample_fig ());
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 500)

let count_occurrences hay needle =
  let lh = String.length hay and ln = String.length needle in
  let count = ref 0 in
  for i = 0 to lh - ln do
    if String.sub hay i ln = needle then incr count
  done;
  !count

let test_svg_nan_breaks_line () =
  let fig =
    Fig.add_line (Fig.create ())
      ~xs:[| 0.0; 1.0; 2.0; 3.0; 4.0 |]
      ~ys:[| 0.0; 1.0; Float.nan; 1.0; 0.0 |]
  in
  let svg = Svg_render.to_string fig in
  (* the NaN splits the series into two polylines *)
  Alcotest.(check bool) "two runs" true (count_occurrences svg "<polyline" >= 2)

(* ASCII *)

let test_ascii_dimensions () =
  let out = Ascii_render.to_string ~cols:40 ~rows:10 (sample_fig ()) in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "enough rows" true (List.length lines >= 12)

let test_ascii_contains_glyph () =
  let out = Ascii_render.to_string (sample_fig ()) in
  Alcotest.(check bool) "glyph plotted" true (String.contains out '*')

let () =
  Alcotest.run "plot"
    [
      ( "scale",
        [
          Alcotest.test_case "apply/invert" `Quick test_scale_apply_invert;
          Alcotest.test_case "degenerate" `Quick test_scale_degenerate;
          Alcotest.test_case "nice ticks" `Quick test_nice_ticks;
          prop_ticks_sorted;
          Alcotest.test_case "tick label" `Quick test_tick_label;
        ] );
      ( "fig",
        [
          Alcotest.test_case "bounds" `Quick test_fig_bounds;
          Alcotest.test_case "explicit range" `Quick test_fig_bounds_explicit_range;
          Alcotest.test_case "nan skipped" `Quick test_fig_bounds_ignores_nan;
          Alcotest.test_case "add_fun" `Quick test_fig_add_fun;
          Alcotest.test_case "mismatch" `Quick test_fig_mismatch;
        ] );
      ( "svg",
        [
          Alcotest.test_case "structure" `Quick test_svg_structure;
          Alcotest.test_case "size" `Quick test_svg_size;
          Alcotest.test_case "write file" `Quick test_svg_write_file;
          Alcotest.test_case "nan breaks line" `Quick test_svg_nan_breaks_line;
        ] );
      ( "ascii",
        [
          Alcotest.test_case "dimensions" `Quick test_ascii_dimensions;
          Alcotest.test_case "glyph" `Quick test_ascii_contains_glyph;
        ] );
    ]
