(* Harmonic-balance engine tests.

   Four families:

   - fixed-point equivalence: the oscprobe solve at [k_max = 1] must
     reproduce the describing-function fixed point (same quadrature,
     same Trig tables), on every builtin cell and — property-tested
     from the pinned seed — across random custom tanh cells;
   - reduced cross-check: the MNA engine against the reduced
     [Shil.Harmonic_balance] solver at matched [k_max]/[samples],
     including the Groszkowski frequency shift the DF misses;
   - engine internals: the conversion-matrix Jacobian against finite
     differences, and the injected-tone branch structure (locked at
     the band center, suppressed far outside);
   - resilience and caching: the [hb-newton] fault site walks the
     policy ladder (recovery on the damped rung, typed
     [solver-divergence] when every rung is shot), and cached solves
     replay bit-identically. *)

module Cx = Numerics.Cx
module Nl = Shil.Nonlinearity
module Driver = Hb.Driver
module System = Hb.System

let close ?(tol = 1e-9) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= tol *. scale

let rel a b = Float.abs (a -. b) /. Float.max 1e-300 (Float.abs b)

let df_amplitude ?points nl ~r =
  match Shil.Natural.predicted_amplitude ?points nl ~r with
  | Some a -> a
  | None -> Alcotest.fail "cell must have a natural amplitude"

let free_solution ?(k_max = 5) ?(samples = 256) osc =
  let tank = (osc.Shil.Analysis.tank : Shil.Tank.t) in
  Driver.oscprobe ~k_max ~samples
    ~f_guess:(Shil.Tank.f_c tank)
    ~a_guess:(df_amplitude osc.Shil.Analysis.nl ~r:tank.r)
    (Api.hb_circuit osc)

(* ------------------------------------------------------------------ *)
(* oscprobe at K = 1 is the describing-function fixed point *)

let builtins =
  [
    ("tanh", Circuits.Tanh_osc.oscillator Circuits.Tanh_osc.default);
    ("diffpair", Circuits.Diff_pair.oscillator Circuits.Diff_pair.default);
    ("tunnel", Circuits.Tunnel_osc.oscillator Circuits.Tunnel_osc.default);
  ]

let test_k1_matches_df () =
  List.iter
    (fun (name, osc) ->
      let tank = (osc.Shil.Analysis.tank : Shil.Tank.t) in
      let a_df = df_amplitude osc.Shil.Analysis.nl ~r:tank.r in
      let sol = free_solution ~k_max:1 ~samples:1024 osc in
      Alcotest.(check bool)
        (name ^ ": K=1 amplitude = DF amplitude")
        true
        (rel (Driver.amplitude sol) a_df < 1e-9);
      (* one retained harmonic leaves no distortion to shift the
         frequency: the oscprobe lands on the tank resonance *)
      Alcotest.(check bool)
        (name ^ ": K=1 frequency = f_c")
        true
        (rel sol.Driver.f0 (Shil.Tank.f_c tank) < 1e-9);
      Alcotest.(check bool)
        (name ^ ": DC is forced to zero by the inductor")
        true
        (Float.abs (Cx.re sol.Driver.spectra.(sol.Driver.osc_node).(0))
        < 1e-12))
    builtins

let prop_k1_matches_df =
  (* random custom tanh cells through the same resolver the CLI and
     daemon use; 256-sample oscprobe vs the 256-point DF quadrature *)
  let gen =
    QCheck.Gen.(
      tup4 (float_range 1.3e-3 4e-3) (float_range 0.5e-3 2e-3)
        (float_range 0.5e6 2e6) (float_range 4.0 25.0))
  in
  let arb =
    QCheck.make gen ~print:(fun (g0, isat, fc, q) ->
        Printf.sprintf "g0=%.6g isat=%.6g fc=%.6g q=%.6g" g0 isat fc q)
  in
  Qseed.qtest ~count:25 "oscprobe K=1 = DF fixed point (custom cells)" arb
    (fun (g0, isat, fc, q) ->
      let osc =
        Api.resolve_oscillator
          (Api.Request.Custom { g0; isat; r = 1e3; fc; q })
      in
      let tank = (osc.Shil.Analysis.tank : Shil.Tank.t) in
      let a_df =
        df_amplitude ~points:256 osc.Shil.Analysis.nl ~r:tank.r
      in
      let sol = free_solution ~k_max:1 ~samples:256 osc in
      rel (Driver.amplitude sol) a_df < 1e-9
      && rel sol.Driver.f0 (Shil.Tank.f_c tank) < 1e-9)

(* ------------------------------------------------------------------ *)
(* MNA engine vs the reduced Shil.Harmonic_balance solver *)

let test_matches_reduced () =
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  List.iter
    (fun k_max ->
      let sol = free_solution ~k_max ~samples:256 osc in
      let red =
        Shil.Harmonic_balance.solve ~k_max ~samples:256
          osc.Shil.Analysis.nl ~tank:osc.Shil.Analysis.tank
      in
      let label what =
        Printf.sprintf "K=%d: %s matches reduced HB" k_max what
      in
      Alcotest.(check bool)
        (label "amplitude") true
        (rel (Driver.amplitude sol) (Shil.Harmonic_balance.amplitude red)
        < 1e-9);
      Alcotest.(check bool)
        (label "frequency (Groszkowski)")
        true
        (rel sol.Driver.f0 (Shil.Harmonic_balance.frequency red) < 1e-9);
      (* per-harmonic magnitudes, phase-reference independent *)
      let sp = sol.Driver.spectra.(sol.Driver.osc_node) in
      for k = 2 to k_max do
        Alcotest.(check bool)
          (Printf.sprintf "K=%d: |V_%d| matches reduced HB" k_max k)
          true
          (close ~tol:1e-9 (Cx.abs sp.(k))
             (Cx.abs red.Shil.Harmonic_balance.coeffs.(k)))
      done)
    [ 1; 3; 5; 7 ];
  (* the shift itself is real: K=7 frequency sits below f_c *)
  let sol = free_solution ~k_max:7 ~samples:256 osc in
  let fc = Shil.Tank.f_c osc.Shil.Analysis.tank in
  Alcotest.(check bool) "Groszkowski shift is negative" true
    (sol.Driver.f0 < fc -. 1.0)

(* ------------------------------------------------------------------ *)
(* conversion-matrix Jacobian vs finite differences *)

let test_jacobian_vs_fd () =
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  let f_inj = 3.0e6 in
  let circuit =
    Api.hb_circuit
      ~injection:
        (Api.hb_injection_wave ~tank:osc.Shil.Analysis.tank ~n:3 ~vi:0.05
           ~f_inj)
      osc
  in
  let sys = System.compile ~k_max:3 ~samples:64 circuit in
  let asm = System.assemble sys ~omega0:(2.0 *. Float.pi *. f_inj /. 3.0) in
  let n = System.size sys in
  let x = Array.init n (fun i -> 0.3 *. sin (float_of_int (i + 1))) in
  let jac = Numerics.Linalg.create n n and res = Array.make n 0.0 in
  System.eval asm ~x ~jac ~res;
  let jac0 = Array.map Array.copy jac in
  let rp = Array.make n 0.0 and rm = Array.make n 0.0 in
  let h = 1e-6 in
  let worst = ref 0.0 in
  for j = 0 to n - 1 do
    let xj = x.(j) in
    x.(j) <- xj +. h;
    System.eval asm ~x ~jac ~res;
    Array.blit res 0 rp 0 n;
    x.(j) <- xj -. h;
    System.eval asm ~x ~jac ~res;
    Array.blit res 0 rm 0 n;
    x.(j) <- xj;
    for i = 0 to n - 1 do
      let fd = (rp.(i) -. rm.(i)) /. (2.0 *. h) in
      let scale =
        Float.max 1e-3 (Float.max (Float.abs fd) (Float.abs jac0.(i).(j)))
      in
      let e = Float.abs (fd -. jac0.(i).(j)) /. scale in
      if e > !worst then worst := e
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "analytic Jacobian matches FD (worst %.3g)" !worst)
    true (!worst < 1e-6)

(* ------------------------------------------------------------------ *)
(* injected-tone branches *)

let test_injected_branches () =
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  let tank = (osc.Shil.Analysis.tank : Shil.Tank.t) in
  let free = free_solution osc in
  let n = 3 and vi = 0.03 in
  let solve_at f_inj =
    Driver.injected ~free ~n ~f_inj
      (Api.hb_circuit
         ~injection:(Api.hb_injection_wave ~tank ~n ~vi ~f_inj)
         osc)
  in
  let fc3 = 3.0 *. free.Driver.f0 in
  let center = solve_at fc3 in
  Alcotest.(check bool) "locks at the band center" true center.Driver.locked;
  Alcotest.(check bool) "locked amplitude is near the free-running one" true
    (rel center.Driver.amp (Driver.amplitude free) < 0.05);
  Alcotest.(check bool) "lock phase is finite" true
    (Float.is_finite center.Driver.lock_phase);
  (* 20% off the band center: far outside any lock range at this vi —
     the spectrum collapses onto the injection-driven subspace *)
  let far = solve_at (1.2 *. fc3) in
  Alcotest.(check bool) "no lock far outside the band" false far.Driver.locked;
  Alcotest.(check bool) "suppressed branch has a tiny fundamental" true
    (far.Driver.amp < 0.05 *. Driver.amplitude free)

(* ------------------------------------------------------------------ *)
(* resilience: the hb-newton fault site *)

let with_fault_plan plan f =
  (match Resilience.Fault.configure plan with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("bad fault plan: " ^ msg));
  Fun.protect ~finally:Resilience.Fault.clear f

let test_fault_recovery () =
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  let clean = free_solution osc in
  (* first attempt (plain newton) is shot; the damped rung recovers
     and the result is bit-identical to the clean run *)
  let recovered =
    with_fault_plan "hb-newton@0" (fun () -> free_solution osc)
  in
  Alcotest.(check bool) "recovered solve is bit-identical" true
    (clean.Driver.x = recovered.Driver.x);
  Alcotest.(check bool) "recovered frequency is bit-identical" true
    (clean.Driver.f0 = recovered.Driver.f0)

let test_fault_divergence () =
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  with_fault_plan "hb-newton" (fun () ->
      match free_solution osc with
      | _ -> Alcotest.fail "solve must not survive a bare hb-newton plan"
      | exception Resilience.Oshil_error.Error e ->
        Alcotest.(check string)
          "typed solver-divergence" "solver-divergence"
          (Resilience.Oshil_error.code e))

let test_lockrange_hole_degrades () =
  (* kill two probe windows mid-search: the probes become typed holes,
     classified unlocked — the band shrinks instead of aborting *)
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  let tank = (osc.Shil.Analysis.tank : Shil.Tank.t) in
  let free = free_solution osc in
  let n = 3 and vi = 0.03 in
  let inject ~f_inj =
    Api.hb_circuit ~injection:(Api.hb_injection_wave ~tank ~n ~vi ~f_inj) osc
  in
  let clean = Driver.lock_range ~free ~n ~guess_width:9e3 ~inject () in
  Alcotest.(check int) "clean search has no holes" 0 clean.Driver.holes;
  let faulted =
    (* occurrences 4-7: both rungs of two probes after the center
       solve (each probe burns a plain and a damped attempt) *)
    with_fault_plan "hb-newton@4x4" (fun () ->
        Driver.lock_range ~free ~n ~guess_width:9e3 ~inject ())
  in
  Alcotest.(check bool) "faulted probes become holes" true
    (faulted.Driver.holes >= 1);
  Alcotest.(check bool) "band only shrinks under holes" true
    (faulted.Driver.f_hi -. faulted.Driver.f_lo
    <= clean.Driver.f_hi -. clean.Driver.f_lo +. 1.0)

(* ------------------------------------------------------------------ *)
(* caching: hb/v1 replays bit-identically *)

let test_cache_roundtrip () =
  let dir = Filename.temp_file "oshil_hb_cache" "" in
  Sys.remove dir;
  Cache.Store.set_dir dir;
  Cache.Store.set_enabled true;
  Fun.protect ~finally:(fun () -> Cache.Store.set_enabled false)
  @@ fun () ->
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  let tank = (osc.Shil.Analysis.tank : Shil.Tank.t) in
  let ident =
    match Api.hb_ident osc with
    | Some id -> id
    | None -> Alcotest.fail "builtin tanh cell must have a cache identity"
  in
  let solve () =
    Driver.oscprobe ~ident ~k_max:5 ~samples:256
      ~f_guess:(Shil.Tank.f_c tank)
      ~a_guess:(df_amplitude osc.Shil.Analysis.nl ~r:tank.r)
      (Api.hb_circuit osc)
  in
  let cold = solve () in
  let warm = solve () in
  Alcotest.(check bool) "warm oscprobe replays bit-identically" true
    (cold = warm)

(* ------------------------------------------------------------------ *)
(* system guards *)

let test_compile_guards () =
  let p = Circuits.Tanh_osc.default in
  let circuit = Api.hb_circuit (Circuits.Tanh_osc.oscillator p) in
  (match System.compile ~k_max:0 circuit with
  | _ -> Alcotest.fail "k_max = 0 must be rejected"
  | exception Invalid_argument _ -> ());
  (match System.compile ~k_max:7 ~samples:16 circuit with
  | _ -> Alcotest.fail "samples < 4 k_max must be rejected"
  | exception Invalid_argument _ -> ());
  (* a BJT netlist has no harmonic-domain stamp: typed parse-failure *)
  match
    System.compile (Circuits.Diff_pair.circuit Circuits.Diff_pair.default)
  with
  | _ -> Alcotest.fail "device-level BJT netlist must be rejected"
  | exception Resilience.Oshil_error.Error e ->
    Alcotest.(check string)
      "typed parse-failure" "parse-failure"
      (Resilience.Oshil_error.code e)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "hb"
    [
      ( "fixed point",
        [
          Alcotest.test_case "K=1 oscprobe = DF (builtins)" `Quick
            test_k1_matches_df;
          prop_k1_matches_df;
        ] );
      ( "reduced cross-check",
        [
          Alcotest.test_case "MNA engine = reduced HB (K=1,3,5,7)" `Quick
            test_matches_reduced;
        ] );
      ( "engine",
        [
          Alcotest.test_case "Jacobian vs finite differences" `Quick
            test_jacobian_vs_fd;
          Alcotest.test_case "injected-tone branches" `Quick
            test_injected_branches;
          Alcotest.test_case "compile guards" `Quick test_compile_guards;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "hb-newton: damped rung recovers" `Quick
            test_fault_recovery;
          Alcotest.test_case "hb-newton: typed solver-divergence" `Quick
            test_fault_divergence;
          Alcotest.test_case "lock-range holes degrade, not abort" `Quick
            test_lockrange_hole_degrades;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hb/v1 replays bit-identically" `Quick
            test_cache_roundtrip;
        ] );
    ]
