(* Tests for the static verification layer: lib/check, the Spice
   pre-flight gates and the scenario files. The .cir/.scn fixtures under
   fixtures/ are each built to trigger exactly one diagnostic code; the
   same fixtures are run through `oshil lint` by the rule in ./dune to
   pin the CLI exit codes. *)

module D = Check.Diagnostic

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds
let error_codes ds = codes (D.errors ds)

let check_codes msg expected ds =
  Alcotest.(check (list string)) msg expected (List.sort_uniq String.compare ds)

let parse_netlist file =
  match Spice.Netlist.parse_file file with
  | Ok c -> c
  | Error e ->
    Alcotest.failf "%s:%d: parse error: %s" file e.Spice.Netlist.line
      e.Spice.Netlist.message

let fixture_netlist file expected () =
  let c = parse_netlist (Filename.concat "fixtures" file) in
  check_codes file [ expected ] (error_codes (Spice.Preflight.check c))

let fixture_scenario file expected () =
  let s, parse_ds = Check.Scenario.parse_file (Filename.concat "fixtures" file) in
  check_codes (file ^ " parse") [] (error_codes parse_ds);
  check_codes file [ expected ] (error_codes (Check.Scenario.check s))

(* ------------------------------------------------------------------ *)
(* Shipped examples must pass the linter clean. *)

let test_examples_netlists_clean () =
  List.iter
    (fun file ->
      let c = parse_netlist (Filename.concat "../examples/netlists" file) in
      check_codes file [] (codes (Spice.Preflight.check c)))
    [ "rc_filter.cir"; "colpitts_like.cir" ]

let test_examples_scenarios_clean () =
  let file = "../examples/scenarios/shil_tanh.scn" in
  let s, parse_ds = Check.Scenario.parse_file file in
  check_codes "parse" [] (codes parse_ds);
  let nl p = Shil.Nonlinearity.eval (Circuits.Tanh_osc.nonlinearity p) in
  check_codes "check" []
    (codes (Check.Scenario.check ~nl:(nl Circuits.Tanh_osc.default) s))

let test_builtin_circuits_clean () =
  List.iter
    (fun (name, c) ->
      check_codes name [] (error_codes (Spice.Preflight.check c)))
    [
      ("tanh_osc", Circuits.Tanh_osc.circuit Circuits.Tanh_osc.default);
      ("tunnel_osc", Circuits.Tunnel_osc.circuit Circuits.Tunnel_osc.default);
      ("diff_pair", Circuits.Diff_pair.circuit Circuits.Diff_pair.default);
      ("cmos_pair", Circuits.Cmos_pair.circuit Circuits.Cmos_pair.default);
    ]

(* ------------------------------------------------------------------ *)
(* Direct Check.Netlist unit tests (no SPICE layer involved). *)

module N = Check.Netlist

let test_netlist_clean_rlc () =
  let ds =
    N.check
      [
        N.vsource ~name:"V1" ~np:"in" ~nn:"0";
        N.resistor ~name:"R1" ~n1:"in" ~n2:"out" 1e3;
        N.capacitor ~name:"C1" ~n1:"out" ~n2:"0" 1e-9;
      ]
  in
  check_codes "clean RLC" [] (codes ds)

let test_netlist_dup_name () =
  let ds =
    N.check
      [
        N.resistor ~name:"R1" ~n1:"a" ~n2:"0" 1.0;
        N.resistor ~name:"R1" ~n1:"a" ~n2:"0" 2.0;
      ]
  in
  check_codes "dup" [ "dup-name" ] (error_codes ds)

let test_netlist_no_ground () =
  let ds =
    N.check
      [
        N.vsource ~name:"V1" ~np:"a" ~nn:"b";
        N.resistor ~name:"R1" ~n1:"a" ~n2:"b" 1.0;
      ]
  in
  check_codes "no ground" [ "no-ground" ] (error_codes ds)

let test_netlist_singular_structure () =
  (* two current sources in series: the shared node's KCL row has no
     matrix entry in the transient pattern, so the maximum matching is
     deficient — yet nothing is floating and there is no loop *)
  let ds =
    N.check
      [
        N.isource ~name:"I1" ~np:"a" ~nn:"0";
        N.isource ~name:"I2" ~np:"0" ~nn:"a";
      ]
  in
  Alcotest.(check bool)
    "singular-structure reported" true
    (List.mem "singular-structure" (error_codes ds))

let test_netlist_negative_r_warns () =
  let ds =
    N.check
      [
        N.vsource ~name:"V1" ~np:"a" ~nn:"0";
        N.resistor ~name:"R1" ~n1:"a" ~n2:"0" (-50.0);
      ]
  in
  check_codes "no errors" [] (error_codes ds);
  Alcotest.(check bool)
    "negative-value warning" true
    (List.mem "negative-value" (codes ds))

(* ------------------------------------------------------------------ *)
(* Check.Shil unit tests. *)

module S = Check.Shil

let test_shil_good_config () =
  let cfg = S.config ~r:1e3 ~l:1.59e-5 ~c:1.59e-9 ~n:3 ~vi:0.03 () in
  let nl v = -2e-3 *. 5e-1 *. tanh (v /. 5e-1) in
  check_codes "good config" [] (error_codes (S.check ~nl cfg))

let test_shil_bad_order_and_tank () =
  let cfg = S.config ~r:1e3 ~l:(-1.0) ~c:1.59e-9 ~n:0 ~vi:0.03 () in
  let ec = error_codes (S.check cfg) in
  Alcotest.(check bool) "order" true (List.mem "order" ec);
  Alcotest.(check bool) "tank-nonpositive" true (List.mem "tank-nonpositive" ec)

let test_shil_grid () =
  check_codes "inverted range" [ "grid-range" ]
    (error_codes (S.check_grid ~a_range:(2.0, 1.0) ()));
  check_codes "bad sizes" [ "grid-size" ]
    (error_codes (S.check_grid ~n_phi:0 ~n_amp:(-3) ()))

let test_shil_nl_probes () =
  (* a passive resistor i = v/R: not an oscillator nonlinearity *)
  let ds = S.check_nonlinearity (fun v -> v /. 50.0) in
  Alcotest.(check bool) "nl-passive" true (List.mem "nl-passive" (codes ds));
  (* a probe that raises must surface as nl-nonfinite, not escape *)
  let ds = S.check_nonlinearity (fun _ -> failwith "boom") in
  Alcotest.(check bool) "nl-nonfinite" true (List.mem "nl-nonfinite" (codes ds))

(* ------------------------------------------------------------------ *)
(* Gate behaviour on the analysis entry points. *)

let vloop_circuit () =
  parse_netlist (Filename.concat "fixtures" "vloop.cir")

let test_gate_enforce_raises () =
  match Spice.Op.run (vloop_circuit ()) with
  | exception D.Failed ds ->
    check_codes "carried errors" [ "vsource-loop" ] (error_codes ds)
  | _ -> Alcotest.fail "Op.run accepted a voltage-source loop"

let test_gate_off_skips () =
  (* zero-value C is a hard lint error, but a DC operating point never
     assembles the cap stamp — with the gate off the solve succeeds *)
  let c = parse_netlist (Filename.concat "fixtures" "zero_c.cir") in
  (match Spice.Op.run c with
  | exception D.Failed _ -> ()
  | _ -> Alcotest.fail "Op.run accepted a zero-value capacitor");
  let sol = Spice.Op.run ~check:`Off c in
  Alcotest.(check bool)
    "solved with gate off" true
    (Float.is_finite (Spice.Op.voltage sol "out"))

let test_shil_gate_raises () =
  let osc = Circuits.Tanh_osc.oscillator Circuits.Tanh_osc.default in
  match Shil.Analysis.run osc ~n:0 ~vi:0.03 with
  | exception D.Failed ds ->
    Alcotest.(check bool) "order error" true (List.mem "order" (error_codes ds))
  | _ -> Alcotest.fail "Analysis.run accepted n = 0"

(* ------------------------------------------------------------------ *)
(* Scenario parsing and diagnostics plumbing. *)

let test_scenario_parse () =
  let s, ds =
    Check.Scenario.parse_string ~name:"inline"
      "osc = tanh\nn = 5\nvi = 0.1\nbogus = 7\nr 1e3\n"
  in
  Alcotest.(check int) "n" 5 s.Check.Scenario.n;
  Alcotest.(check (float 0.0)) "vi" 0.1 s.Check.Scenario.vi;
  Alcotest.(check bool)
    "unknown key" true
    (List.mem "scenario-unknown-key" (codes ds));
  check_codes "missing =" [ "scenario-parse" ] (error_codes ds)

let test_scenario_unknown_osc () =
  let s, _ = Check.Scenario.parse_string ~name:"inline" "osc = warp9\n" in
  Alcotest.(check bool)
    "scenario-osc" true
    (List.mem "scenario-osc" (error_codes (Check.Scenario.check s)))

let test_diagnostic_json () =
  Alcotest.(check string) "escape quote" {|a \"b\"|} (D.json_escape {|a "b"|});
  Alcotest.(check string) "escape newline" {|line1\nline2|}
    (D.json_escape "line1\nline2");
  let d = D.error ~code:"x" ~loc:{|a "b"|} "line1\nline2" in
  Alcotest.(check string) "to_json"
    {|{"severity":"error","code":"x","loc":"a \"b\"","msg":"line1\nline2"}|}
    (D.to_json d)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "check"
    [
      ( "fixtures",
        [
          Alcotest.test_case "floating_node.cir" `Quick
            (fixture_netlist "floating_node.cir" "floating-node");
          Alcotest.test_case "vloop.cir" `Quick
            (fixture_netlist "vloop.cir" "vsource-loop");
          Alcotest.test_case "lloop.cir" `Quick
            (fixture_netlist "lloop.cir" "inductor-loop");
          Alcotest.test_case "zero_c.cir" `Quick
            (fixture_netlist "zero_c.cir" "zero-value");
          Alcotest.test_case "neg_q.scn" `Quick
            (fixture_scenario "neg_q.scn" "tank-nonpositive");
          Alcotest.test_case "order_zero.scn" `Quick
            (fixture_scenario "order_zero.scn" "order");
        ] );
      ( "examples-clean",
        [
          Alcotest.test_case "netlists" `Quick test_examples_netlists_clean;
          Alcotest.test_case "scenarios" `Quick test_examples_scenarios_clean;
          Alcotest.test_case "built-in circuits" `Quick test_builtin_circuits_clean;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "clean rlc" `Quick test_netlist_clean_rlc;
          Alcotest.test_case "dup name" `Quick test_netlist_dup_name;
          Alcotest.test_case "no ground" `Quick test_netlist_no_ground;
          Alcotest.test_case "singular structure" `Quick
            test_netlist_singular_structure;
          Alcotest.test_case "negative R warns" `Quick
            test_netlist_negative_r_warns;
        ] );
      ( "shil",
        [
          Alcotest.test_case "good config" `Quick test_shil_good_config;
          Alcotest.test_case "bad order and tank" `Quick
            test_shil_bad_order_and_tank;
          Alcotest.test_case "grid" `Quick test_shil_grid;
          Alcotest.test_case "nonlinearity probes" `Quick test_shil_nl_probes;
        ] );
      ( "gates",
        [
          Alcotest.test_case "op enforce raises" `Quick test_gate_enforce_raises;
          Alcotest.test_case "op gate off" `Quick test_gate_off_skips;
          Alcotest.test_case "shil enforce raises" `Quick test_shil_gate_raises;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "parse" `Quick test_scenario_parse;
          Alcotest.test_case "unknown osc" `Quick test_scenario_unknown_osc;
          Alcotest.test_case "json escape" `Quick test_diagnostic_json;
        ] );
    ]
