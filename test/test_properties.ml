(* Property and differential tests for the paper's limit cases.

   Three families:

   - qcheck limit-case laws (satellite a): with [V_i = 0] the SHIL
     machinery reduces to the free-running [Natural] theory, and with
     [n = 1] it agrees with the FHIL phasor picture (Adler regime).
   - metamorphic laws (satellite b): symmetries of [I_1(A, V_i, phi)]
     that hold for *any* nonlinearity — conjugation, 2 pi periodicity,
     current scaling, amplitude scaling for linear cells, and the
     [psi -> psi + 2 pi / n] state symmetry behind the paper's n
     distinct lock states (section VI-B4).
   - a coarse-budget differential test (satellite c): the DF-predicted
     lock range of the tanh oscillator cross-checked against
     [Spice.Transient] lock/unlock probes at the band edges.

   Every qcheck test runs from the pinned seed in [Qseed] and prints it
   in its case name, so failures replay with
   [QCHECK_SEED=<seed> dune runtest]. *)

module Cx = Numerics.Cx
module Df = Shil.Describing_function
module Nl = Shil.Nonlinearity

(* Quadrature points for property evaluations: 256 keeps each qcheck
   iteration cheap; the tanh/cubic cells here are smooth enough that
   the trapezoid rule is already at roundoff by then. *)
let pts = 256

let cx_close ?(tol = 1e-9) a b =
  let scale = Float.max 1.0 (Float.max (Cx.abs a) (Cx.abs b)) in
  Cx.abs (Cx.sub a b) <= tol *. scale

let close ?(tol = 1e-9) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= tol *. scale

(* ------------------------------------------------------------------ *)
(* Generators *)

(* tanh cells that actually oscillate in a 1 kOhm tank: g0 R in
   [1.3, 4], so Natural.solve always has a stable solution. *)
let gen_tanh_params =
  QCheck.Gen.(
    triple (float_range 1.3e-3 4e-3) (float_range 0.5e-3 2e-3)
      (float_range 0.6 1.8))

let arb_tanh =
  QCheck.make gen_tanh_params ~print:(fun (g0, isat, a) ->
      Printf.sprintf "g0=%.6g isat=%.6g a=%.6g" g0 isat a)

let gen_two_tone =
  QCheck.Gen.(
    tup5 (float_range 1.3e-3 4e-3) (float_range 0.5 1.5)
      (float_range 0.01 0.1)
      (float_range (-.Float.pi) Float.pi)
      (int_range 2 5))

let arb_two_tone =
  QCheck.make gen_two_tone ~print:(fun (g0, a, vi, phi, n) ->
      Printf.sprintf "g0=%.6g a=%.6g vi=%.6g phi=%.6g n=%d" g0 a vi phi n)

let tanh_cell g0 = Nl.neg_tanh ~g0 ~isat:1e-3

(* ------------------------------------------------------------------ *)
(* Limit case: V_i = 0 reduces SHIL to the free-running theory *)

let prop_vi_zero_i1 =
  Qseed.qtest ~count:60 "vi=0: I1(A,0,phi) = I1(A), real" arb_two_tone
    (fun (g0, a, _vi, phi, n) ->
      let nl = tanh_cell g0 in
      let two = Df.i1_two_tone ~points:pts nl ~n ~a ~vi:0.0 ~phi in
      let one = Df.i1 ~points:pts nl ~a in
      close two.Cx.re one && Float.abs two.Cx.im <= 1e-12 *. Float.abs one)

let prop_vi_zero_t_f =
  Qseed.qtest ~count:60 "vi=0: T_f(A,0,phi) = T_f_free(A)" arb_two_tone
    (fun (g0, a, _vi, phi, n) ->
      let nl = tanh_cell g0 in
      close
        (Df.t_f ~points:pts nl ~n ~r:1e3 ~a ~vi:0.0 ~phi)
        (Df.t_f_free ~points:pts nl ~r:1e3 ~a))

let prop_vi_zero_natural =
  Qseed.qtest ~count:25 "vi=0: injected gain is 1 at the natural amplitude"
    arb_tanh (fun (g0, isat, _a) ->
      let nl = Nl.neg_tanh ~g0 ~isat in
      match Shil.Natural.predicted_amplitude ~points:pts nl ~r:1e3 with
      | None -> QCheck.Test.fail_report "no natural solution"
      | Some a_star ->
        close ~tol:1e-6
          (Df.t_f ~points:pts nl ~n:3 ~r:1e3 ~a:a_star ~vi:0.0 ~phi:0.7)
          1.0)

(* ------------------------------------------------------------------ *)
(* Limit case: n = 1 is the FHIL phasor picture *)

(* For n = 1 the two tones add at the same frequency:
   A cos t + 2 V_i cos (t + phi) = B cos (t + psi) with
   B e^{j psi} = A + 2 V_i e^{j phi}, so
   I_1(A, V_i, phi) = e^{j psi} I_1(B). *)
let prop_fhil_phasor =
  Qseed.qtest ~count:60 "n=1: I1(A,vi,phi) = e^{j psi} I1(B)" arb_two_tone
    (fun (g0, a, vi, phi, _n) ->
      let nl = tanh_cell g0 in
      let b_phasor = Cx.add (Cx.of_float a) (Cx.polar (2.0 *. vi) phi) in
      let b = Cx.abs b_phasor and psi = Cx.arg b_phasor in
      cx_close
        (Df.i1_two_tone ~points:pts nl ~n:1 ~a ~vi ~phi)
        (Cx.scale (Df.i1 ~points:pts nl ~a:b) (Cx.exp_j psi)))

(* ------------------------------------------------------------------ *)
(* Metamorphic symmetries of I_1(A, V_i, phi) *)

let prop_conjugate =
  Qseed.qtest ~count:60 "I1(A,vi,-phi) = conj I1(A,vi,phi)" arb_two_tone
    (fun (g0, a, vi, phi, n) ->
      let nl = tanh_cell g0 in
      cx_close
        (Df.i1_two_tone ~points:pts nl ~n ~a ~vi ~phi:(-.phi))
        (Cx.conj (Df.i1_two_tone ~points:pts nl ~n ~a ~vi ~phi)))

let prop_periodic =
  Qseed.qtest ~count:60 "I1 is 2pi-periodic in phi" arb_two_tone
    (fun (g0, a, vi, phi, n) ->
      let nl = tanh_cell g0 in
      cx_close
        (Df.i1_two_tone ~points:pts nl ~n ~a ~vi ~phi:(phi +. 2.0 *. Float.pi))
        (Df.i1_two_tone ~points:pts nl ~n ~a ~vi ~phi))

let prop_current_scaling =
  Qseed.qtest ~count:60 "scale_current k => k * I1" arb_two_tone
    (fun (g0, a, vi, phi, n) ->
      let nl = tanh_cell g0 in
      let k = 0.25 +. Float.abs (Float.rem a 1.0) in
      cx_close
        (Df.i1_two_tone ~points:pts (Nl.scale_current nl k) ~n ~a ~vi ~phi)
        (Cx.scale k (Df.i1_two_tone ~points:pts nl ~n ~a ~vi ~phi)))

let prop_amplitude_scaling_linear =
  Qseed.qtest ~count:60 "linear cell: I1(cA, c vi, phi) = c I1(A, vi, phi)"
    arb_two_tone (fun (g0, a, vi, phi, n) ->
      let nl = Nl.make ~name:"linear" (fun v -> -.g0 *. v) in
      let c = 0.5 +. Float.abs (Float.rem (a *. 7.0) 2.0) in
      cx_close
        (Df.i1_two_tone ~points:pts nl ~n ~a:(c *. a) ~vi:(c *. vi) ~phi)
        (Cx.scale c (Df.i1_two_tone ~points:pts nl ~n ~a ~vi ~phi)))

(* State symmetry (section VI-B4): shifting the oscillator phase by
   2 pi / n leaves the injection tone invariant, so the fundamental
   coefficient K(psi) of f(A cos(theta+psi) + 2 V_i cos(n theta + phi0))
   obeys K(psi + 2 pi / n) = e^{j 2 pi / n} K(psi) — the n lock states
   are physically equivalent. *)
let prop_state_symmetry =
  Qseed.qtest ~count:40 "K(psi + 2pi/n) = e^{j 2pi/n} K(psi)" arb_two_tone
    (fun (g0, a, vi, phi0, n) ->
      let nl = tanh_cell g0 in
      let k_of psi =
        Numerics.Fourier.coeff ~n:pts
          ~f:(fun th ->
            Nl.eval nl
              ((a *. Float.cos (th +. psi))
              +. (2.0 *. vi *. Float.cos ((float_of_int n *. th) +. phi0))))
          ~k:1 ()
      in
      let psi = 0.3 and step = 2.0 *. Float.pi /. float_of_int n in
      cx_close (k_of (psi +. step)) (Cx.mul (Cx.exp_j step) (k_of psi)))

let prop_n_states_spacing =
  Qseed.qtest ~count:60 "n_states: n phases spaced 2pi/n at one amplitude"
    arb_two_tone (fun (_g0, a, _vi, phi, n) ->
      let point : Shil.Solutions.point =
        { phi; a; stable = true; trace = -1.0; det = 1.0 }
      in
      let states = Shil.Solutions.n_states point ~n in
      List.length states = n
      && List.for_all (fun (_, ai) -> ai = a) states
      && (* phases come back wrapped into [0, 2 pi): sorted, the n
            equally-spaced states show n - 1 internal gaps of 2 pi / n *)
      (let phases = List.sort Float.compare (List.map fst states) in
       let step = 2.0 *. Float.pi /. float_of_int n in
       List.for_all2
         (fun p q -> close ~tol:1e-9 (q -. p) step)
         (List.filteri (fun i _ -> i < n - 1) phases)
         (List.tl phases)))

(* ------------------------------------------------------------------ *)
(* Adler's law as a weak-injection oracle (n = 1) *)

let test_adler_vs_lock_range () =
  let p = Circuits.Tanh_osc.default in
  let nl = Circuits.Tanh_osc.nonlinearity p in
  let tank = Circuits.Tanh_osc.tank p in
  let vi = 0.01 in
  let a_star =
    match Shil.Natural.predicted_amplitude ~points:pts nl ~r:p.r with
    | Some a -> a
    | None -> Alcotest.fail "tanh cell must oscillate"
  in
  let grid =
    Shil.Fhil.grid ~points:pts ~n_phi:81 ~n_amp:61 nl ~r:p.r ~vi
      ~a_range:(0.5 *. a_star, 1.5 *. a_star)
  in
  let lr = Shil.Lock_range.predict ~points:pts grid ~tank in
  let f_lo, f_hi = Shil.Fhil.adler_range ~tank ~a:a_star ~vi in
  let adler_delta = f_hi -. f_lo in
  Alcotest.(check bool) "rigorous range positive" true (lr.delta_f_inj > 0.0);
  (* Adler is a first-order estimate: for weak injection (2 vi / A ~ 2%)
     the rigorous boundary agrees to well under 20%. *)
  Alcotest.(check bool) "within 20% of Adler" true
    (Float.abs (lr.delta_f_inj -. adler_delta) /. adler_delta < 0.2);
  Alcotest.(check bool) "band brackets f_c" true
    (lr.f_inj_low < Shil.Tank.f_c tank && lr.f_inj_high > Shil.Tank.f_c tank)

(* ------------------------------------------------------------------ *)
(* Differential oracle: DF vs full-MNA harmonic balance *)

(* The free-running HB solution every differential leg shares: K = 5
   harmonics, 256-sample quadrature — matched to [pts] so the DF and
   HB legs integrate the same nonlinearity samples. *)
let hb_free osc =
  let tank = (osc.Shil.Analysis.tank : Shil.Tank.t) in
  let a_guess =
    match
      Shil.Natural.predicted_amplitude ~points:pts osc.Shil.Analysis.nl
        ~r:tank.r
    with
    | Some a -> a
    | None -> Alcotest.fail "cell must oscillate"
  in
  Hb.Driver.oscprobe ~k_max:5 ~samples:256
    ~f_guess:(Shil.Tank.f_c tank)
    ~a_guess (Api.hb_circuit osc)

let hb_lock_range osc ~free ~n ~vi ~guess_width =
  let tank = (osc.Shil.Analysis.tank : Shil.Tank.t) in
  let inject ~f_inj =
    Api.hb_circuit ~injection:(Api.hb_injection_wave ~tank ~n ~vi ~f_inj) osc
  in
  Hb.Driver.lock_range ~free ~n ~guess_width ~inject ()

(* HB truncated to one harmonic is *the same fixed point* as the
   describing function (identical quadrature, identical Trig tables),
   reached through a completely different unknown layout — MNA node
   voltages and branch currents against the scalar amplitude root. *)
let test_hb_k1_is_df_fixed_point () =
  let osc = Circuits.Tanh_osc.oscillator Circuits.Tanh_osc.default in
  let tank = (osc.Shil.Analysis.tank : Shil.Tank.t) in
  let a_df =
    match Shil.Natural.predicted_amplitude osc.Shil.Analysis.nl ~r:tank.r with
    | Some a -> a
    | None -> Alcotest.fail "tanh cell must oscillate"
  in
  let sol =
    Hb.Driver.oscprobe ~k_max:1 ~samples:1024
      ~f_guess:(Shil.Tank.f_c tank)
      ~a_guess:(0.8 *. a_df) (Api.hb_circuit osc)
  in
  Alcotest.(check bool) "amplitude to 1e-9 relative" true
    (Float.abs (Hb.Driver.amplitude sol -. a_df) /. a_df < 1e-9);
  Alcotest.(check bool) "frequency is the tank resonance" true
    (close ~tol:1e-9 sol.Hb.Driver.f0 (Shil.Tank.f_c tank))

(* Lock-range agreement on canonical tanh scenarios (odd sub-harmonic
   orders; the tanh cell is odd, so even n couples only at second
   order). The two predictions come from independent machinery — the
   paper's graphical phase condition against Newton on the spectral
   residual — and must place both band edges within 1%. The small
   systematic offset that remains is real physics: HB centers the band
   on the Groszkowski-shifted f_osc, the DF on the tank resonance. *)
let canonical_scenarios = [ (3, 0.03); (3, 0.08); (5, 0.02) ]

let test_hb_vs_df_lock_range () =
  let osc = Circuits.Tanh_osc.oscillator Circuits.Tanh_osc.default in
  let free = hb_free osc in
  List.iter
    (fun (n, vi) ->
      let report = Shil.Analysis.run osc ~n ~vi in
      let lr = report.Shil.Analysis.lock_range in
      let band =
        hb_lock_range osc ~free ~n ~vi
          ~guess_width:lr.Shil.Lock_range.delta_f_inj
      in
      let label fmt =
        Printf.ksprintf
          (fun s -> Printf.sprintf "n=%d vi=%g: %s" n vi s)
          fmt
      in
      Alcotest.(check int) (label "no probe holes") 0 band.Hb.Driver.holes;
      Alcotest.(check bool)
        (label "low edge within 1%%")
        true
        (Float.abs (band.Hb.Driver.f_lo -. lr.Shil.Lock_range.f_inj_low)
         /. lr.Shil.Lock_range.f_inj_low
        < 0.01);
      Alcotest.(check bool)
        (label "high edge within 1%%")
        true
        (Float.abs (band.Hb.Driver.f_hi -. lr.Shil.Lock_range.f_inj_high)
         /. lr.Shil.Lock_range.f_inj_high
        < 0.01);
      Alcotest.(check bool)
        (label "band width within 1%%")
        true
        (Float.abs
           (band.Hb.Driver.f_hi -. band.Hb.Driver.f_lo
          -. lr.Shil.Lock_range.delta_f_inj)
         /. lr.Shil.Lock_range.delta_f_inj
        < 0.01))
    canonical_scenarios

(* ------------------------------------------------------------------ *)
(* Three-way differential oracle: DF vs HB vs MNA transient *)

(* Coarse transient budget on purpose: 4 transients of [cycles] tank
   periods on the 4-node tanh netlist. DF and HB each predict the band
   independently and must agree on both edges to 1%; the MNA
   simulation must then lock at probes 30% inside each edge of the
   band intersection and lose lock 70% outside the union — i.e. the
   three independent solvers agree on the edges to better than ~30% of
   the band width (the recorded transient tolerance; the paper's
   Table I reports ~1% agreement at full budget). *)
let test_lock_range_three_way () =
  let p = Circuits.Tanh_osc.default in
  let nl = Circuits.Tanh_osc.nonlinearity p in
  let tank = Circuits.Tanh_osc.tank p in
  let osc = Circuits.Tanh_osc.oscillator p in
  let n = 3 and vi = 0.08 in
  let a_star =
    match Shil.Natural.predicted_amplitude ~points:pts nl ~r:p.r with
    | Some a -> a
    | None -> Alcotest.fail "tanh cell must oscillate"
  in
  let grid =
    Shil.Grid.sample ~points:pts ~n_phi:81 ~n_amp:61 nl ~n ~r:p.r ~vi
      ~a_range:(0.5 *. a_star, 1.5 *. a_star)
      ()
  in
  let lr = Shil.Lock_range.predict ~points:pts grid ~tank in
  Alcotest.(check bool) "predicted band is non-trivial" true
    (lr.delta_f_inj > 1e3);
  (* leg 2: harmonic balance on the full MNA system *)
  let free = hb_free osc in
  Alcotest.(check bool) "HB free amplitude within 0.5% of DF" true
    (Float.abs (Hb.Driver.amplitude free -. a_star) /. a_star < 5e-3);
  let band =
    hb_lock_range osc ~free ~n ~vi ~guess_width:lr.delta_f_inj
  in
  Alcotest.(check bool) "HB/DF low edges within 1%" true
    (Float.abs (band.Hb.Driver.f_lo -. lr.f_inj_low) /. lr.f_inj_low < 0.01);
  Alcotest.(check bool) "HB/DF high edges within 1%" true
    (Float.abs (band.Hb.Driver.f_hi -. lr.f_inj_high) /. lr.f_inj_high
    < 0.01);
  let cycles = 260.0 and steps_per_cycle = 80 in
  let probe = Spice.Transient.Node "t" in
  let locked_at f_inj =
    let im =
      Shil.Simulate.injection_current ~tank { vi; n; f_inj; phase = 0.0 }
    in
    let wave =
      Spice.Wave.Sine { offset = 0.0; ampl = im; freq = f_inj; phase = 0.0; delay = 0.0 }
    in
    let circuit = Circuits.Tanh_osc.circuit ~injection:wave p in
    let dt = 1.0 /. (float_of_int steps_per_cycle *. Shil.Tank.f_c tank) in
    let opts =
      Spice.Transient.default_options ~dt
        ~t_stop:(cycles /. Shil.Tank.f_c tank)
    in
    let res = Spice.Transient.run circuit ~probes:[ probe ] opts in
    (match res.failure with
    | Some e ->
      Alcotest.fail ("transient probe failed: " ^ Resilience.Oshil_error.to_string e)
    | None -> ());
    let s =
      Waveform.Signal.make ~times:res.times
        ~values:(Spice.Transient.signal res probe)
    in
    (Waveform.Lock.analyze s ~f_target:(f_inj /. float_of_int n)).locked
  in
  (* leg 3: transient probes against the DF/HB band intersection
     (inside) and union (outside) — one set of probes checks both
     frequency-domain predictions at once *)
  let d = lr.delta_f_inj in
  let lo_in = Float.max lr.f_inj_low band.Hb.Driver.f_lo in
  let hi_in = Float.min lr.f_inj_high band.Hb.Driver.f_hi in
  let lo_out = Float.min lr.f_inj_low band.Hb.Driver.f_lo in
  let hi_out = Float.max lr.f_inj_high band.Hb.Driver.f_hi in
  Alcotest.(check bool) "locked 30% inside the low edge" true
    (locked_at (lo_in +. (0.3 *. d)));
  Alcotest.(check bool) "locked 30% inside the high edge" true
    (locked_at (hi_in -. (0.3 *. d)));
  Alcotest.(check bool) "unlocked 70% below the low edge" false
    (locked_at (lo_out -. (0.7 *. d)));
  Alcotest.(check bool) "unlocked 70% above the high edge" false
    (locked_at (hi_out +. (0.7 *. d)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "properties"
    [
      ( "limit: vi = 0",
        [ prop_vi_zero_i1; prop_vi_zero_t_f; prop_vi_zero_natural ] );
      ("limit: n = 1", [ prop_fhil_phasor ]);
      ( "metamorphic",
        [
          prop_conjugate;
          prop_periodic;
          prop_current_scaling;
          prop_amplitude_scaling_linear;
          prop_state_symmetry;
          prop_n_states_spacing;
        ] );
      ( "differential",
        [
          Alcotest.test_case "Adler oracle (weak FHIL)" `Quick
            test_adler_vs_lock_range;
          Alcotest.test_case "HB at K=1 is the DF fixed point" `Quick
            test_hb_k1_is_df_fixed_point;
          Alcotest.test_case "HB vs DF lock range (canonical scenarios)"
            `Quick test_hb_vs_df_lock_range;
          Alcotest.test_case "three-way: DF vs HB vs MNA transient" `Slow
            test_lock_range_three_way;
        ] );
    ]
