(* Unit and property tests for the numerics substrate. *)

open Numerics

let check_float ?(eps = 1e-9) msg expected got =
  Alcotest.(check (float eps)) msg expected got

let qtest ?(count = 200) name gen prop = Qseed.qtest ~count name gen prop

(* ------------------------------------------------------------------ *)
(* Angle *)

let test_wrap_ranges () =
  List.iter
    (fun a ->
      let w2 = Angle.wrap_two_pi a in
      Alcotest.(check bool) "wrap_two_pi in [0, 2pi)" true (w2 >= 0.0 && w2 < Angle.two_pi);
      let wp = Angle.wrap_pi a in
      Alcotest.(check bool) "wrap_pi in (-pi, pi]" true (wp > -.Angle.pi -. 1e-12 && wp <= Angle.pi +. 1e-12))
    [ 0.0; 1.0; -1.0; 7.0; -7.0; 100.0; -100.0; Angle.pi; -.Angle.pi; 2.0 *. Angle.pi ]

let test_wrap_identity () =
  check_float "wrap of 0.3" 0.3 (Angle.wrap_pi 0.3);
  check_float "wrap of 0.3 + 2pi" 0.3 (Angle.wrap_pi (0.3 +. Angle.two_pi));
  check_float "wrap of 0.3 - 4pi" 0.3 (Angle.wrap_pi (0.3 -. (2.0 *. Angle.two_pi)))

let test_unwrap () =
  (* a steadily increasing phase, wrapped, must unwrap to itself *)
  let truth = Array.init 50 (fun k -> 0.3 *. float_of_int k) in
  let wrapped = Array.map Angle.wrap_pi truth in
  let un = Angle.unwrap wrapped in
  Array.iteri
    (fun k v -> check_float ~eps:1e-9 "unwrap" (truth.(k) -. truth.(0) +. un.(0)) v)
    un

let test_dist () =
  check_float "dist symmetric wrap" 0.2 (Angle.dist 0.1 (-0.1));
  check_float "dist across seam" 0.2 (Angle.dist (Angle.pi -. 0.1) (-.Angle.pi +. 0.1))

let prop_wrap_dist_bounded =
  qtest "wrap: dist <= pi" QCheck.(pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0))
    (fun (a, b) -> Angle.dist a b <= Angle.pi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Cx *)

let test_cx_polar () =
  let z = Cx.polar 2.0 0.7 in
  check_float "polar abs" 2.0 (Cx.abs z);
  check_float "polar arg" 0.7 (Cx.arg z)

let test_cx_exp_j () =
  let z = Cx.exp_j (Float.pi /. 2.0) in
  check_float ~eps:1e-12 "exp_j re" 0.0 (Cx.re z);
  check_float ~eps:1e-12 "exp_j im" 1.0 (Cx.im z)

let prop_cx_mul_abs =
  qtest "cx: |ab| = |a||b|"
    QCheck.(quad (float_bound_exclusive 10.0) (float_bound_exclusive 6.0)
              (float_bound_exclusive 10.0) (float_bound_exclusive 6.0))
    (fun (r1, t1, r2, t2) ->
      let a = Cx.polar r1 t1 and b = Cx.polar r2 t2 in
      Float.abs (Cx.abs (Cx.mul a b) -. (r1 *. r2)) < 1e-9 *. (1.0 +. (r1 *. r2)))

let prop_cx_conj_involution =
  qtest "cx: conj (conj z) = z"
    QCheck.(pair (float_range (-100.) 100.) (float_range (-100.) 100.))
    (fun (re, im) ->
      let z = Cx.make re im in
      Cx.approx_equal (Cx.conj (Cx.conj z)) z)

(* ------------------------------------------------------------------ *)
(* Linalg *)

let random_system rng n =
  let a =
    Array.init n (fun _ ->
        Array.init n (fun _ -> QCheck.Gen.float_range (-5.0) 5.0 rng))
  in
  (* diagonal dominance keeps it well conditioned *)
  for k = 0 to n - 1 do
    a.(k).(k) <- a.(k).(k) +. (10.0 *. float_of_int n)
  done;
  let x = Array.init n (fun _ -> QCheck.Gen.float_range (-5.0) 5.0 rng) in
  (a, x)

let prop_lu_solve =
  let gen =
    QCheck.make
      ~print:(fun (n, _) -> Printf.sprintf "n=%d" n)
      (fun st ->
        let n = QCheck.Gen.int_range 1 12 st in
        (n, random_system st n))
  in
  qtest ~count:100 "linalg: solve recovers x" gen (fun (_, (a, x)) ->
      let b = Linalg.mat_vec a x in
      let x' = Linalg.solve a b in
      Linalg.norm_inf (Linalg.vec_sub x x') < 1e-8)

let test_lu_det () =
  let a = [| [| 2.0; 0.0 |]; [| 0.0; 3.0 |] |] in
  check_float "det diag" 6.0 (Linalg.lu_det (Linalg.lu_factor a));
  let b = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_float "det swap" (-1.0) (Linalg.lu_det (Linalg.lu_factor b))

let test_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular raises" Linalg.Singular (fun () ->
      ignore (Linalg.solve a [| 1.0; 1.0 |]))

let test_identity_solve () =
  let x = Linalg.solve (Linalg.identity 4) [| 1.0; 2.0; 3.0; 4.0 |] in
  Array.iteri (fun k v -> check_float "identity" (float_of_int (k + 1)) v) x

let test_mat_mul_assoc () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = [| [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let c = [| [| 2.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  let left = Linalg.mat_mul (Linalg.mat_mul a b) c in
  let right = Linalg.mat_mul a (Linalg.mat_mul b c) in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> check_float "assoc" right.(i).(j) v) row)
    left

let test_complex_solve () =
  (* (1 + j) x = 2 -> x = 1 - j *)
  let a = [| [| Cx.make 1.0 1.0 |] |] in
  let b = [| Cx.make 2.0 0.0 |] in
  let x = Linalg.solve_complex a b in
  check_float ~eps:1e-12 "re" 1.0 (Cx.re x.(0));
  check_float ~eps:1e-12 "im" (-1.0) (Cx.im x.(0))

let test_complex_solve_2x2 () =
  let j = Cx.i in
  let a = [| [| Cx.one; j |]; [| j; Cx.one |] |] in
  let x_true = [| Cx.make 1.0 2.0; Cx.make (-1.0) 0.5 |] in
  let b =
    Array.init 2 (fun r ->
        Cx.add (Cx.mul a.(r).(0) x_true.(0)) (Cx.mul a.(r).(1) x_true.(1)))
  in
  let x = Linalg.solve_complex a b in
  Array.iteri
    (fun k z -> Alcotest.(check bool) "complex 2x2" true (Cx.approx_equal ~tol:1e-10 z x_true.(k)))
    x

(* ------------------------------------------------------------------ *)
(* Quad *)

let test_trapezoid_linear () =
  check_float "trap on line" 0.5 (Quad.trapezoid ~f:(fun x -> x) ~a:0.0 ~b:1.0 ~n:1)

let test_simpson_cubic () =
  (* Simpson integrates cubics exactly *)
  check_float ~eps:1e-12 "simpson cubic" 0.25
    (Quad.simpson ~f:(fun x -> x ** 3.0) ~a:0.0 ~b:1.0 ~n:2)

let test_periodic_spectral () =
  (* integral of cos^2 over a period = pi; 16 points nail it *)
  let v = Quad.periodic ~f:(fun t -> cos t ** 2.0) ~period:(2.0 *. Float.pi) ~n:16 in
  check_float ~eps:1e-12 "periodic cos^2" Float.pi v

let test_adaptive_exp () =
  let v = Quad.adaptive_simpson ~f:exp ~a:0.0 ~b:1.0 () in
  check_float ~eps:1e-9 "adaptive e^x" (exp 1.0 -. 1.0) v

let test_romberg () =
  let v = Quad.romberg ~f:(fun x -> 1.0 /. (1.0 +. (x *. x))) ~a:0.0 ~b:1.0 () in
  check_float ~eps:1e-10 "romberg atan" (Float.pi /. 4.0) v

let prop_quad_agree =
  qtest ~count:50 "quad: simpson ~ adaptive on smooth f"
    QCheck.(pair (float_range 0.2 3.0) (float_range 0.2 3.0))
    (fun (w1, w2) ->
      let f x = sin (w1 *. x) *. cos (w2 *. x) +. x in
      let s = Quad.simpson ~f ~a:0.0 ~b:2.0 ~n:2000 in
      let a = Quad.adaptive_simpson ~f ~a:0.0 ~b:2.0 () in
      Float.abs (s -. a) < 1e-7)

(* ------------------------------------------------------------------ *)
(* Fft *)

let complex_array_gen n =
  QCheck.Gen.(
    array_size (return n)
      (map (fun (re, im) -> Cx.make re im)
         (pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))))

let prop_fft_roundtrip =
  let gen =
    QCheck.make
      ~print:(fun a -> Printf.sprintf "len=%d" (Array.length a))
      QCheck.Gen.(int_range 1 64 >>= complex_array_gen)
  in
  qtest ~count:100 "fft: idft (dft x) = x" gen (fun x ->
      let y = Fft.idft (Fft.dft x) in
      Array.for_all2 (fun a b -> Cx.approx_equal ~tol:1e-8 a b) x y)

let test_fft_delta () =
  let x = Array.make 8 Cx.zero in
  x.(0) <- Cx.one;
  let y = Fft.dft x in
  Array.iter (fun z -> check_float ~eps:1e-12 "delta flat" 1.0 (Cx.abs z)) y

let test_fft_sine_bin () =
  let n = 64 in
  let x =
    Array.init n (fun k ->
        Cx.of_float (cos (2.0 *. Float.pi *. 5.0 *. float_of_int k /. float_of_int n)))
  in
  let y = Fft.dft x in
  check_float ~eps:1e-9 "bin 5 magnitude" (float_of_int n /. 2.0) (Cx.abs y.(5));
  check_float ~eps:1e-9 "bin 6 empty" 0.0 (Cx.abs y.(6))

let test_fft_bluestein_matches_naive () =
  (* length 12 (non power of two) against the O(n^2) definition *)
  let n = 12 in
  let x = Array.init n (fun k -> Cx.make (float_of_int k) (float_of_int (k * k))) in
  let y = Fft.dft x in
  for k = 0 to n - 1 do
    let acc = ref Cx.zero in
    for s = 0 to n - 1 do
      let theta = -2.0 *. Float.pi *. float_of_int (k * s) /. float_of_int n in
      acc := Cx.add !acc (Cx.mul x.(s) (Cx.exp_j theta))
    done;
    Alcotest.(check bool) "bluestein vs naive" true (Cx.approx_equal ~tol:1e-7 !acc y.(k))
  done

let test_next_power_of_two () =
  Alcotest.(check int) "npot 1" 1 (Fft.next_power_of_two 1);
  Alcotest.(check int) "npot 5" 8 (Fft.next_power_of_two 5);
  Alcotest.(check int) "npot 8" 8 (Fft.next_power_of_two 8);
  Alcotest.(check bool) "ispot" true (Fft.is_power_of_two 64);
  Alcotest.(check bool) "not pot" false (Fft.is_power_of_two 48)

(* ------------------------------------------------------------------ *)
(* Fourier *)

let test_fourier_cos () =
  (* x = cos theta -> X_1 = 1/2 *)
  let c = Fourier.coeff ~f:cos ~k:1 () in
  check_float ~eps:1e-12 "X1 re" 0.5 (Cx.re c);
  check_float ~eps:1e-12 "X1 im" 0.0 (Cx.im c)

let test_fourier_odd_function () =
  (* tanh(cos theta) has no even harmonics *)
  let f theta = tanh (2.0 *. cos theta) in
  let c2 = Fourier.coeff ~f ~k:2 () in
  check_float ~eps:1e-12 "even harmonic vanishes" 0.0 (Cx.abs c2);
  let c3 = Fourier.coeff ~f ~k:3 () in
  Alcotest.(check bool) "odd harmonic present" true (Cx.abs c3 > 1e-4)

let test_fourier_coeffs_consistent () =
  let f theta = exp (cos theta) in
  let cs = Fourier.coeffs ~f ~kmax:5 () in
  for k = 0 to 5 do
    let single = Fourier.coeff ~f ~k () in
    Alcotest.(check bool) "coeffs = coeff" true (Cx.approx_equal ~tol:1e-10 cs.(k) single)
  done

let test_fourier_reconstruct () =
  let f theta = 1.0 +. (2.0 *. cos theta) +. (0.5 *. cos (3.0 *. theta)) in
  let cs = Fourier.coeffs ~f ~kmax:4 () in
  List.iter
    (fun theta ->
      check_float ~eps:1e-9 "reconstruct" (f theta) (Fourier.reconstruct cs ~theta))
    [ 0.0; 0.7; 2.0; 4.5 ]

let test_fourier_time_series () =
  let freq = 3.0 in
  let n = 3000 in
  let t = Array.init n (fun k -> float_of_int k /. float_of_int (n - 1)) in
  (* exactly 3 periods over [0, 1]; phasor of 2*0.4*cos(2 pi f t + 0.9) is
     0.4 e^{j 0.9} *)
  let x = Array.map (fun ti -> 0.8 *. cos ((2.0 *. Float.pi *. freq *. ti) +. 0.9)) t in
  let c = Fourier.of_time_series ~t ~x ~freq ~k:1 in
  check_float ~eps:1e-4 "ts abs" 0.4 (Cx.abs c);
  check_float ~eps:1e-3 "ts arg" 0.9 (Cx.arg c)

let prop_fourier_linearity =
  qtest ~count:50 "fourier: coeff is linear"
    QCheck.(pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0))
    (fun (a, b) ->
      let f1 theta = cos theta and f2 theta = cos (2.0 *. theta) in
      let combo theta = (a *. f1 theta) +. (b *. f2 theta) in
      let c = Fourier.coeff ~f:combo ~k:1 () in
      let c1 = Fourier.coeff ~f:f1 ~k:1 () in
      Cx.approx_equal ~tol:1e-9 c (Cx.scale a c1))

(* ------------------------------------------------------------------ *)
(* Roots *)

let test_bisect_sqrt2 () =
  let r = Roots.bisect ~f:(fun x -> (x *. x) -. 2.0) ~a:0.0 ~b:2.0 () in
  check_float ~eps:1e-9 "bisect sqrt2" (sqrt 2.0) r

let test_brent_cos () =
  let r = Roots.brent ~f:cos ~a:1.0 ~b:2.0 () in
  check_float ~eps:1e-9 "brent pi/2" (Float.pi /. 2.0) r

let test_newton_cbrt () =
  let r = Roots.newton ~f:(fun x -> (x ** 3.0) -. 8.0) ~df:(fun x -> 3.0 *. x *. x) ~x0:3.0 () in
  check_float ~eps:1e-9 "newton cbrt 8" 2.0 r

let test_secant () =
  let r = Roots.secant ~f:(fun x -> exp x -. 3.0) ~x0:0.5 ~x1:1.5 () in
  check_float ~eps:1e-8 "secant ln 3" (log 3.0) r

let test_no_bracket () =
  Alcotest.check_raises "no bracket" Roots.No_bracket (fun () ->
      ignore (Roots.bisect ~f:(fun x -> (x *. x) +. 1.0) ~a:(-1.0) ~b:1.0 ()))

let test_find_all_sin () =
  let roots = Roots.find_all ~f:sin ~a:0.5 ~b:10.0 ~n:200 () in
  Alcotest.(check int) "sin roots in (0.5, 10)" 3 (List.length roots);
  List.iteri
    (fun k r -> check_float ~eps:1e-9 "k pi" (float_of_int (k + 1) *. Float.pi) r)
    roots

let test_newton2d () =
  (* intersection of circle x^2+y^2=4 and line y=x: (sqrt 2, sqrt 2) *)
  let f (x, y) = ((x *. x) +. (y *. y) -. 4.0, y -. x) in
  let x, y = Roots.newton2d ~f ~x0:(1.0, 1.2) () in
  check_float ~eps:1e-8 "2d x" (sqrt 2.0) x;
  check_float ~eps:1e-8 "2d y" (sqrt 2.0) y

let prop_brent_polynomial =
  qtest ~count:100 "brent: root of (x-r)(x+r+1)"
    QCheck.(float_range 0.1 5.0)
    (fun r ->
      let f x = (x -. r) *. (x +. r +. 1.0) in
      let found = Roots.brent ~f ~a:0.0 ~b:6.0 () in
      Float.abs (found -. r) < 1e-8)

(* ------------------------------------------------------------------ *)
(* Interp *)

let test_linear_exact () =
  let itp = Interp.linear ~xs:[| 0.0; 1.0; 2.0 |] ~ys:[| 0.0; 2.0; 4.0 |] in
  check_float "linear mid" 1.0 (Interp.eval itp 0.5);
  check_float "linear deriv" 2.0 (Interp.eval_deriv itp 0.5);
  check_float "linear extrapolate" 6.0 (Interp.eval itp 3.0)

let test_spline_reproduces_knots () =
  let xs = [| 0.0; 0.5; 1.1; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> sin x) xs in
  let itp = Interp.cubic_spline ~xs ~ys in
  Array.iteri (fun k x -> check_float ~eps:1e-12 "spline knot" ys.(k) (Interp.eval itp x)) xs

let test_spline_accuracy () =
  let n = 30 in
  let xs = Array.init n (fun k -> float_of_int k /. float_of_int (n - 1) *. 3.0) in
  let ys = Array.map sin xs in
  let itp = Interp.cubic_spline ~xs ~ys in
  List.iter
    (fun x -> check_float ~eps:1e-4 "spline vs sin" (sin x) (Interp.eval itp x))
    [ 0.31; 1.17; 2.53 ]

let test_pchip_knots () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = [| 0.0; 1.0; 1.0; 2.0 |] in
  let itp = Interp.pchip ~xs ~ys in
  Array.iteri (fun k x -> check_float ~eps:1e-12 "pchip knot" ys.(k) (Interp.eval itp x)) xs

let prop_pchip_monotone =
  (* pchip must preserve monotonicity of the data *)
  let gen =
    QCheck.make
      ~print:(fun a -> String.concat "," (List.map string_of_float (Array.to_list a)))
      QCheck.Gen.(
        array_size (int_range 3 12) (float_range 0.01 2.0) >|= fun steps ->
        let acc = ref 0.0 in
        Array.map
          (fun s ->
            acc := !acc +. s;
            !acc)
          steps)
  in
  qtest ~count:100 "pchip: monotone data -> monotone interpolant" gen (fun ys ->
      let n = Array.length ys in
      let xs = Array.init n float_of_int in
      let itp = Interp.pchip ~xs ~ys in
      let ok = ref true in
      for k = 0 to (10 * (n - 1)) - 1 do
        let x1 = float_of_int k /. 10.0 in
        let x2 = x1 +. 0.1 in
        if Interp.eval itp x2 < Interp.eval itp x1 -. 1e-9 then ok := false
      done;
      !ok)

let test_shift_x () =
  let itp = Interp.linear ~xs:[| 0.0; 1.0 |] ~ys:[| 0.0; 1.0 |] in
  let shifted = Interp.shift_x itp 0.5 in
  check_float "shift" 0.75 (Interp.eval shifted 0.25)

let test_interp_deriv_fd () =
  let xs = Array.init 20 (fun k -> float_of_int k /. 5.0) in
  let ys = Array.map (fun x -> (x *. x) +. x) xs in
  let itp = Interp.cubic_spline ~xs ~ys in
  let x = 1.37 in
  let h = 1e-6 in
  let fd = (Interp.eval itp (x +. h) -. Interp.eval itp (x -. h)) /. (2.0 *. h) in
  check_float ~eps:1e-5 "deriv vs fd" fd (Interp.eval_deriv itp x)

let test_interp_invalid () =
  Alcotest.check_raises "non-monotone knots"
    (Invalid_argument "Interp: abscissae must be strictly increasing") (fun () ->
      ignore (Interp.linear ~xs:[| 0.0; 0.0 |] ~ys:[| 1.0; 2.0 |]))

(* ------------------------------------------------------------------ *)
(* Ode *)

let test_rk4_exponential () =
  let f _ y = [| -.y.(0) |] in
  let y = Ode.rk4_final f ~t0:0.0 ~t1:1.0 ~dt:0.01 ~y0:[| 1.0 |] in
  check_float ~eps:1e-8 "rk4 e^-1" (exp (-1.0)) y.(0)

let test_rk4_order () =
  (* halving dt should reduce the error ~16x *)
  let f _ y = [| y.(0) *. cos y.(0) |] in
  let solve dt = (Ode.rk4_final f ~t0:0.0 ~t1:1.0 ~dt ~y0:[| 0.5 |]).(0) in
  let fine = solve 1e-4 in
  let e1 = Float.abs (solve 0.02 -. fine) in
  let e2 = Float.abs (solve 0.01 -. fine) in
  Alcotest.(check bool) "order ~4" true (e1 /. e2 > 10.0)

let test_rk4_harmonic_energy () =
  let f _ y = [| y.(1); -.y.(0) |] in
  let times, states = Ode.rk4 f ~t0:0.0 ~t1:(4.0 *. Float.pi) ~dt:0.001 ~y0:[| 1.0; 0.0 |] in
  ignore times;
  let last = states.(Array.length states - 1) in
  let energy = (last.(0) *. last.(0)) +. (last.(1) *. last.(1)) in
  check_float ~eps:1e-8 "energy conserved" 1.0 energy

let test_dopri5 () =
  let f t _ = [| cos t |] in
  let _, states, stats = Ode.dopri5 ~rtol:1e-10 ~atol:1e-12 f ~t0:0.0 ~t1:2.0 ~y0:[| 0.0 |] in
  let last = states.(Array.length states - 1) in
  check_float ~eps:1e-8 "dopri5 sin 2" (sin 2.0) last.(0);
  Alcotest.(check bool) "used adaptive steps" true (stats.steps > 5)

let test_dopri5_stiffish () =
  let f _ y = [| -50.0 *. (y.(0) -. cos 0.0) |] in
  let _, states, _ = Ode.dopri5 f ~t0:0.0 ~t1:1.0 ~y0:[| 0.0 |] in
  let last = states.(Array.length states - 1) in
  check_float ~eps:1e-4 "relaxes to 1" 1.0 last.(0)

let prop_rk4_linear_exact_slope =
  qtest ~count:50 "ode: rk4 exact for dy/dt = a"
    QCheck.(float_range (-5.0) 5.0)
    (fun a ->
      let f _ _ = [| a |] in
      let y = Ode.rk4_final f ~t0:0.0 ~t1:2.0 ~dt:0.1 ~y0:[| 1.0 |] in
      Float.abs (y.(0) -. (1.0 +. (2.0 *. a))) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean x);
  check_float "variance" 1.25 (Stats.variance x);
  check_float "median even" 2.5 (Stats.median x);
  check_float "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  let lo, hi = Stats.min_max x in
  check_float "min" 1.0 lo;
  check_float "max" 4.0 hi;
  check_float "rms" (sqrt 7.5) (Stats.rms x)

let prop_linear_fit_exact =
  qtest ~count:100 "stats: fit recovers line"
    QCheck.(pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
    (fun (m, b) ->
      let xs = Array.init 10 float_of_int in
      let ys = Array.map (fun x -> (m *. x) +. b) xs in
      let m', b' = Stats.linear_fit ~xs ~ys in
      Float.abs (m -. m') < 1e-9 && Float.abs (b -. b') < 1e-8)

let test_max_abs_dev () =
  check_float "mad" 2.0 (Stats.max_abs_dev [| 1.0; 3.0; 5.0 |])

let () =
  Alcotest.run "numerics"
    [
      ( "angle",
        [
          Alcotest.test_case "wrap ranges" `Quick test_wrap_ranges;
          Alcotest.test_case "wrap identity" `Quick test_wrap_identity;
          Alcotest.test_case "unwrap" `Quick test_unwrap;
          Alcotest.test_case "dist" `Quick test_dist;
          prop_wrap_dist_bounded;
        ] );
      ( "cx",
        [
          Alcotest.test_case "polar" `Quick test_cx_polar;
          Alcotest.test_case "exp_j" `Quick test_cx_exp_j;
          prop_cx_mul_abs;
          prop_cx_conj_involution;
        ] );
      ( "linalg",
        [
          prop_lu_solve;
          Alcotest.test_case "det" `Quick test_lu_det;
          Alcotest.test_case "singular" `Quick test_singular;
          Alcotest.test_case "identity" `Quick test_identity_solve;
          Alcotest.test_case "mat_mul assoc" `Quick test_mat_mul_assoc;
          Alcotest.test_case "complex 1x1" `Quick test_complex_solve;
          Alcotest.test_case "complex 2x2" `Quick test_complex_solve_2x2;
        ] );
      ( "quad",
        [
          Alcotest.test_case "trapezoid line" `Quick test_trapezoid_linear;
          Alcotest.test_case "simpson cubic" `Quick test_simpson_cubic;
          Alcotest.test_case "periodic spectral" `Quick test_periodic_spectral;
          Alcotest.test_case "adaptive exp" `Quick test_adaptive_exp;
          Alcotest.test_case "romberg" `Quick test_romberg;
          prop_quad_agree;
        ] );
      ( "fft",
        [
          prop_fft_roundtrip;
          Alcotest.test_case "delta" `Quick test_fft_delta;
          Alcotest.test_case "sine bin" `Quick test_fft_sine_bin;
          Alcotest.test_case "bluestein vs naive" `Quick test_fft_bluestein_matches_naive;
          Alcotest.test_case "powers of two" `Quick test_next_power_of_two;
        ] );
      ( "fourier",
        [
          Alcotest.test_case "cos coefficient" `Quick test_fourier_cos;
          Alcotest.test_case "odd function" `Quick test_fourier_odd_function;
          Alcotest.test_case "coeffs consistent" `Quick test_fourier_coeffs_consistent;
          Alcotest.test_case "reconstruct" `Quick test_fourier_reconstruct;
          Alcotest.test_case "time series" `Quick test_fourier_time_series;
          prop_fourier_linearity;
        ] );
      ( "roots",
        [
          Alcotest.test_case "bisect" `Quick test_bisect_sqrt2;
          Alcotest.test_case "brent" `Quick test_brent_cos;
          Alcotest.test_case "newton" `Quick test_newton_cbrt;
          Alcotest.test_case "secant" `Quick test_secant;
          Alcotest.test_case "no bracket" `Quick test_no_bracket;
          Alcotest.test_case "find_all sin" `Quick test_find_all_sin;
          Alcotest.test_case "newton2d" `Quick test_newton2d;
          prop_brent_polynomial;
        ] );
      ( "interp",
        [
          Alcotest.test_case "linear" `Quick test_linear_exact;
          Alcotest.test_case "spline knots" `Quick test_spline_reproduces_knots;
          Alcotest.test_case "spline accuracy" `Quick test_spline_accuracy;
          Alcotest.test_case "pchip knots" `Quick test_pchip_knots;
          prop_pchip_monotone;
          Alcotest.test_case "shift_x" `Quick test_shift_x;
          Alcotest.test_case "deriv vs fd" `Quick test_interp_deriv_fd;
          Alcotest.test_case "invalid knots" `Quick test_interp_invalid;
        ] );
      ( "ode",
        [
          Alcotest.test_case "rk4 exponential" `Quick test_rk4_exponential;
          Alcotest.test_case "rk4 order" `Quick test_rk4_order;
          Alcotest.test_case "harmonic energy" `Quick test_rk4_harmonic_energy;
          Alcotest.test_case "dopri5" `Quick test_dopri5;
          Alcotest.test_case "dopri5 stiffish" `Quick test_dopri5_stiffish;
          prop_rk4_linear_exact_slope;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          prop_linear_fit_exact;
          Alcotest.test_case "max abs dev" `Quick test_max_abs_dev;
        ] );
    ]
