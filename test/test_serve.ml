(* Tests for the request/response layer (lib/api: Json, Request,
   execute/handle) and the daemon (lib/serve: Bq, Addr, Server,
   Client), plus the cooperative deadline plumbing they ride on.

   The server tests run a real daemon in-process on a Unix socket in a
   throwaway temp directory and talk to it over the wire — the same
   code path `oshil serve` / `oshil call` exercise. *)

module Json = Api.Json
module Request = Api.Request
module Deadline = Resilience.Deadline
module Server = Serve.Server
module Client = Serve.Client

let scenario_path = "../examples/scenarios/shil_tanh.scn"

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_parse_basics () =
  let ok s = match Json.parse s with Ok v -> v | Error m -> failwith m in
  Alcotest.(check bool) "null" true (ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (ok "true" = Json.Bool true);
  Alcotest.(check bool) "num" true (ok " 1.5 " = Json.Num 1.5);
  Alcotest.(check bool) "neg exp" true (ok "-2e3" = Json.Num (-2000.0));
  Alcotest.(check bool) "str" true (ok {|"a\nb"|} = Json.Str "a\nb");
  Alcotest.(check bool) "list" true
    (ok "[1,2]" = Json.List [ Json.Num 1.0; Json.Num 2.0 ]);
  Alcotest.(check bool) "obj" true
    (ok {|{"a":1,"b":[]}|}
    = Json.Obj [ ("a", Json.Num 1.0); ("b", Json.List []) ]);
  Alcotest.(check bool) "surrogate pair" true
    (ok {|"😀"|} = Json.Str "\xf0\x9f\x98\x80")

let test_json_parse_hostile () =
  let bad s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "trailing garbage" true (bad "1 2");
  Alcotest.(check bool) "bare word" true (bad "pong");
  Alcotest.(check bool) "unterminated string" true (bad {|"abc|});
  Alcotest.(check bool) "raw control char" true (bad "\"a\nb\"");
  Alcotest.(check bool) "missing colon" true (bad {|{"a" 1}|});
  Alcotest.(check bool) "trailing comma" true (bad "[1,]");
  (* depth bomb: must return Error, not overflow the stack *)
  let deep = String.concat "" [ String.make 100_000 '['; "1" ] in
  Alcotest.(check bool) "100k-deep nesting" true (bad deep)

let test_json_print () =
  Alcotest.(check string) "integral float" "3"
    (Json.to_string (Json.Num 3.0));
  Alcotest.(check string) "fraction" "1.5" (Json.to_string (Json.Num 1.5));
  Alcotest.(check string) "nan is null" "null"
    (Json.to_string (Json.Num Float.nan));
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|}
    (Json.to_string (Json.Str "a\"b\\c\nd"));
  Alcotest.(check string) "object bytes"
    {|{"a":1,"b":[true,null]}|}
    (Json.to_string
       (Json.Obj
          [
            ("a", Json.Num 1.0);
            ("b", Json.List [ Json.Bool true; Json.Null ]);
          ]))

(* ------------------------------------------------------------------ *)
(* Request codec *)

let sample_requests =
  [
    { Request.id = "r1"; deadline_s = None; payload = Request.Ping };
    { Request.id = "r2"; deadline_s = Some 1.5; payload = Request.Health };
    { Request.id = "r3"; deadline_s = None; payload = Request.Stats };
    { Request.id = "r4"; deadline_s = Some 0.25;
      payload = Request.Sleep { s = 0.125 } };
    { Request.id = "r5"; deadline_s = None;
      payload =
        Request.Shil
          { osc = Request.Builtin "tanh"; n = 3; vi = 0.03; reduced = true;
            finj = Some 3.1e6 } };
    { Request.id = "r6"; deadline_s = Some 9.0;
      payload =
        Request.Shil
          { osc =
              Request.Custom
                { g0 = 2e-3; isat = 1e-3; r = 1e3; fc = 1e6; q = 10.0 };
            n = 1; vi = 0.01; reduced = false; finj = None } };
    { Request.id = "r7"; deadline_s = None;
      payload = Request.Scenario { name = "a.scn"; text = "osc = tanh\n" } };
    { Request.id = "r8"; deadline_s = None;
      payload = Request.Lint { name = "a.cir"; text = "r1 a 0 1k\n.end\n" } };
    { Request.id = "r9"; deadline_s = None;
      payload = Request.Netlist_op { name = "b.cir"; text = "v1 a 0 1\n" } };
    { Request.id = "r10"; deadline_s = None;
      payload =
        Request.Netlist_tran
          { name = "c.cir"; text = "v1 a 0 1\n"; t_stop = 2e-3; dt = 1e-7;
            probes = [ "a"; "b" ] } };
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Request.of_string (Request.to_string req) with
      | Ok req' ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip %s" req.Request.id)
          true (req = req')
      | Error msg -> Alcotest.failf "decode %s: %s" req.Request.id msg)
    sample_requests

let test_request_defaults_and_errors () =
  (match Request.of_string {|{"op":"shil"}|} with
  | Ok { payload = Request.Shil { osc; n; vi; reduced; finj }; _ } ->
    Alcotest.(check bool) "default osc" true (osc = Request.Builtin "tanh");
    Alcotest.(check int) "default n" 3 n;
    Alcotest.(check (float 0.0)) "default vi" 0.03 vi;
    Alcotest.(check bool) "default reduced" false reduced;
    Alcotest.(check bool) "default finj" true (finj = None)
  | Ok _ -> Alcotest.fail "wrong payload"
  | Error msg -> Alcotest.failf "decode: %s" msg);
  let bad s =
    match Request.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "no op" true (bad {|{"id":"x"}|});
  Alcotest.(check bool) "unknown op" true (bad {|{"op":"frobnicate"}|});
  Alcotest.(check bool) "non-object" true (bad "[1,2,3]");
  Alcotest.(check bool) "malformed json" true (bad "{");
  Alcotest.(check bool) "scenario without text" true
    (bad {|{"op":"scenario"}|})

(* ------------------------------------------------------------------ *)
(* Bq *)

let test_bq_bounds () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Bq.create: capacity 0 < 1") (fun () ->
      ignore (Serve.Bq.create ~capacity:0));
  let q = Serve.Bq.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Serve.Bq.capacity q);
  Alcotest.(check bool) "push 1" true (Serve.Bq.try_push q 1);
  Alcotest.(check bool) "push 2" true (Serve.Bq.try_push q 2);
  Alcotest.(check bool) "push 3 rejected (full)" false (Serve.Bq.try_push q 3);
  Alcotest.(check int) "length" 2 (Serve.Bq.length q);
  Alcotest.(check bool) "fifo pop" true (Serve.Bq.pop q = Some 1);
  Alcotest.(check bool) "slot freed" true (Serve.Bq.try_push q 4);
  Serve.Bq.close q;
  Alcotest.(check bool) "closed" true (Serve.Bq.closed q);
  Alcotest.(check bool) "push after close rejected" false
    (Serve.Bq.try_push q 5);
  Alcotest.(check bool) "drains after close" true (Serve.Bq.pop q = Some 2);
  Alcotest.(check bool) "drains after close 2" true (Serve.Bq.pop q = Some 4);
  Alcotest.(check bool) "empty+closed is None" true (Serve.Bq.pop q = None)

let test_bq_blocking_pop () =
  let q = Serve.Bq.create ~capacity:4 in
  let got = ref None in
  let t = Thread.create (fun () -> got := Serve.Bq.pop q) () in
  Thread.delay 0.05;
  Alcotest.(check bool) "consumer still blocked" true (!got = None);
  ignore (Serve.Bq.try_push q 42);
  Thread.join t;
  Alcotest.(check bool) "woke with item" true (!got = Some 42)

(* ------------------------------------------------------------------ *)
(* Addr *)

let test_addr_parse () =
  let ok s expect =
    match Serve.Addr.of_string s with
    | Ok a -> Alcotest.(check bool) s true (a = expect)
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  ok "unix:/tmp/x.sock" (Serve.Addr.Unix_sock "/tmp/x.sock");
  ok "tcp:localhost:9900" (Serve.Addr.Tcp ("localhost", 9900));
  ok "127.0.0.1:8080" (Serve.Addr.Tcp ("127.0.0.1", 8080));
  ok "oshil.sock" (Serve.Addr.Unix_sock "oshil.sock");
  List.iter
    (fun s ->
      match Serve.Addr.of_string s with
      | Ok a ->
        Alcotest.(check string)
          (Printf.sprintf "round-trip %s" s)
          s
          (Serve.Addr.to_string a)
      | Error m -> Alcotest.failf "%s: %s" s m)
    [ "unix:/tmp/x.sock"; "tcp:localhost:9900" ]

(* ------------------------------------------------------------------ *)
(* Deadline *)

let test_deadline_scopes () =
  Alcotest.(check bool) "no ambient deadline" false (Deadline.expired ());
  Alcotest.(check bool) "no ambient save" true (Deadline.save () = None);
  Alcotest.(check bool) "check is a no-op" true
    (Deadline.check_result Shil ~phase:"t" = Ok ());
  Deadline.with_deadline ~seconds:60.0 (fun () ->
      Alcotest.(check bool) "fresh budget not expired" false
        (Deadline.expired ());
      Alcotest.(check bool) "save captures" true (Deadline.save () <> None);
      Deadline.with_deadline ~seconds:0.0 (fun () ->
          Alcotest.(check bool) "nested zero budget expired" true
            (Deadline.expired ());
          match Deadline.check_result Shil ~phase:"t" with
          | Ok () -> Alcotest.fail "expected Budget_exhausted"
          | Error e ->
            Alcotest.(check bool) "typed kind" true
              (e.Resilience.Oshil_error.kind
              = Resilience.Oshil_error.Budget_exhausted));
      Alcotest.(check bool) "outer budget restored" false
        (Deadline.expired ()));
  Alcotest.(check bool) "scope exit clears" false (Deadline.expired ());
  Alcotest.(check bool) "expired_abs None" false (Deadline.expired_abs None);
  Alcotest.(check bool) "expired_abs past" true
    (Deadline.expired_abs (Some (Obs.Clock.wall_s () -. 1.0)))

(* An expired budget at grid fan-out: every row becomes a typed hole
   (Budget_exhausted), the grid itself stays usable. *)
let test_grid_deadline_holes () =
  let nl = Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3 in
  let g =
    Deadline.with_deadline ~seconds:0.0 (fun () ->
        Shil.Grid.sample ~points:64 ~n_phi:5 ~n_amp:4 nl ~n:3 ~r:1e3 ~vi:0.03
          ~a_range:(0.5, 1.5) ())
  in
  Alcotest.(check int) "every row is a hole" 5
    (Resilience.Summary.failed g.failures);
  List.iter
    (fun (f : Resilience.Summary.failure) ->
      Alcotest.(check bool) "typed budget-exhausted" true
        (f.error.kind = Resilience.Oshil_error.Budget_exhausted))
    g.failures.failures

(* ------------------------------------------------------------------ *)
(* Server *)

let rm_rf dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> go (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  try go dir with Sys_error _ -> ()

let rec connect_retry ?(tries = 200) addr =
  match Client.connect addr with
  | conn -> conn
  | exception Resilience.Oshil_error.Error _ when tries > 0 ->
    Thread.delay 0.01;
    connect_retry ~tries:(tries - 1) addr

(* Run [f addr] against a live daemon; always drain and join on the way
   out (the same shutdown `oshil serve` runs on SIGTERM). *)
let with_server ?(capacity = 16) ?(workers = 2) ?default_deadline_s
    ?(max_retries = 2) f =
  let dir = Filename.temp_dir "oshil-serve-test" "" in
  let addr = Serve.Addr.Unix_sock (Filename.concat dir "s.sock") in
  let config =
    {
      (Server.default_config addr) with
      capacity;
      workers;
      default_deadline_s;
      max_retries;
      retry_backoff_s = 0.01;
    }
  in
  let runner = Thread.create Server.run config in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain ();
      Thread.join runner;
      rm_rf dir)
    (fun () ->
      (* wait until the listener actually accepts before handing the
         address to the test body — no connect races in the tests *)
      Client.close (connect_retry addr);
      f addr)

let expect_ok ~what resp =
  match Json.parse resp with
  | Ok j when Json.member "status" j = Some (Json.Str "ok") -> (
    match Json.member "report" j with
    | Some (Json.Str r) -> r
    | _ -> Alcotest.failf "%s: ok response without report: %s" what resp)
  | Ok _ -> Alcotest.failf "%s: not an ok response: %s" what resp
  | Error m -> Alcotest.failf "%s: unparseable response %s: %s" what resp m

let expect_error ~what ~code resp =
  match Json.parse resp with
  | Ok j when Json.member "status" j = Some (Json.Str "error") -> (
    match Option.bind (Json.member "error" j) (Json.member "code") with
    | Some (Json.Str c) ->
      Alcotest.(check string) (what ^ ": error code") code c
    | _ -> Alcotest.failf "%s: error response without code: %s" what resp)
  | Ok _ -> Alcotest.failf "%s: not an error response: %s" what resp
  | Error m -> Alcotest.failf "%s: unparseable response %s: %s" what resp m

let test_server_framing () =
  with_server @@ fun addr ->
  let conn = connect_retry addr in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  (* several requests on one connection, ids echoed in order *)
  List.iter
    (fun id ->
      let req = { Request.id; deadline_s = None; payload = Request.Ping } in
      let resp = Client.request conn (Request.to_string req) in
      (match Json.parse resp with
      | Ok j ->
        Alcotest.(check bool) "id echoed" true
          (Json.member "id" j = Some (Json.Str id))
      | Error m -> Alcotest.failf "bad response: %s" m);
      Alcotest.(check string) "ping report" "pong"
        (expect_ok ~what:"ping" resp))
    [ "a"; "b"; "c" ]

let test_server_malformed_then_alive () =
  with_server @@ fun addr ->
  let conn = connect_retry addr in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  expect_error ~what:"garbage line" ~code:"parse-failure"
    (Client.request conn "this is not json");
  expect_error ~what:"json non-object" ~code:"parse-failure"
    (Client.request conn "[1,2,3]");
  expect_error ~what:"unknown op" ~code:"parse-failure"
    (Client.request conn {|{"id":"x","op":"frobnicate"}|});
  (* the daemon survived all three protocol errors *)
  Alcotest.(check string) "still serving" "pong"
    (expect_ok ~what:"ping after garbage"
       (Client.request conn {|{"id":"x","op":"ping"}|}))

let test_server_queue_full_rejection () =
  with_server ~workers:1 ~capacity:1 @@ fun addr ->
  let sleep_req id =
    Request.to_string
      { Request.id; deadline_s = Some 10.0;
        payload = Request.Sleep { s = 0.4 } }
  in
  (* s1 occupies the single worker, s2 the single queue slot *)
  let r1 = ref "" and r2 = ref "" in
  let t1 =
    Thread.create (fun () -> r1 := Client.call addr (sleep_req "s1")) ()
  in
  Thread.delay 0.1;
  let t2 =
    Thread.create (fun () -> r2 := Client.call addr (sleep_req "s2")) ()
  in
  Thread.delay 0.1;
  (* the third concurrent request must be rejected immediately with the
     typed overload error — explicit backpressure, not blind queueing *)
  expect_error ~what:"overload" ~code:"overload"
    (Client.call addr (sleep_req "s3"));
  Thread.join t1;
  Thread.join t2;
  Alcotest.(check string) "s1 completed" "ok" (expect_ok ~what:"s1" !r1);
  Alcotest.(check string) "s2 completed" "ok" (expect_ok ~what:"s2" !r2);
  (* rejection did not wedge the daemon *)
  Alcotest.(check string) "post-overload ping" "pong"
    (expect_ok ~what:"ping"
       (Client.call addr
          (Request.to_string
             { Request.id = "p"; deadline_s = None; payload = Request.Ping })))

let test_server_deadline_expiry () =
  with_server @@ fun addr ->
  let conn = connect_retry addr in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  (* a request whose work overruns its own deadline comes back as a
     typed budget-exhausted error, and the worker survives *)
  expect_error ~what:"deadline" ~code:"budget-exhausted"
    (Client.request conn
       (Request.to_string
          { Request.id = "d"; deadline_s = Some 0.05;
            payload = Request.Sleep { s = 5.0 } }));
  Alcotest.(check string) "worker survived" "pong"
    (expect_ok ~what:"ping"
       (Client.request conn
          (Request.to_string
             { Request.id = "p"; deadline_s = None; payload = Request.Ping })))

let test_server_bit_identical_to_local () =
  (* concurrent wire requests return exactly the bytes the in-process
     Api path produces — the daemon adds nothing and loses nothing *)
  let text = In_channel.with_open_bin scenario_path In_channel.input_all in
  let requests =
    [
      { Request.id = "q1"; deadline_s = None; payload = Request.Ping };
      { Request.id = "q2"; deadline_s = None;
        payload = Request.Lint { name = "shil_tanh.scn"; text } };
      { Request.id = "q3"; deadline_s = None;
        payload = Request.Scenario { name = "shil_tanh.scn"; text } };
      { Request.id = "q4"; deadline_s = None;
        payload =
          Request.Netlist_op
            { name = "div.cir"; text = "v1 in 0 1\nr1 in out 1k\nr2 out 0 1k\n" }
      };
    ]
  in
  let expected =
    List.map
      (fun req ->
        Api.response_of_outcome ~id:req.Request.id (Api.handle req))
      requests
  in
  with_server @@ fun addr ->
  let results = Array.make (List.length requests) "" in
  let threads =
    List.mapi
      (fun i req ->
        Thread.create
          (fun () ->
            let conn = connect_retry addr in
            Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
            results.(i) <- Client.request conn (Request.to_string req))
          ())
      requests
  in
  List.iter Thread.join threads;
  List.iteri
    (fun i want ->
      Alcotest.(check string)
        (Printf.sprintf "response %d byte-identical" (i + 1))
        want
        results.(i))
    expected

let test_server_fault_injection_typed () =
  (* an injected fault at the serve-request site: typed error response,
     daemon keeps serving (retries disabled so the fault surfaces) *)
  (match Resilience.Fault.configure "serve-request" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "fault plan: %s" m);
  Fun.protect ~finally:(fun () -> Resilience.Fault.clear ())
  @@ fun () ->
  with_server ~max_retries:0 @@ fun addr ->
  let conn = connect_retry addr in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  expect_error ~what:"injected" ~code:"fault-injected"
    (Client.request conn
       (Request.to_string
          { Request.id = "f"; deadline_s = None; payload = Request.Ping }));
  (* health is answered inline, outside the faulted worker path *)
  Alcotest.(check string) "health still ok" {|{"status":"ok"}|}
    (expect_ok ~what:"health"
       (Client.request conn {|{"id":"h","op":"health"}|}))

let test_server_drain () =
  let dir = Filename.temp_dir "oshil-serve-test" "" in
  let path = Filename.concat dir "s.sock" in
  let addr = Serve.Addr.Unix_sock path in
  let config = { (Server.default_config addr) with workers = 1 } in
  let runner = Thread.create Server.run config in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let conn = connect_retry addr in
  Alcotest.(check string) "serving before drain" "pong"
    (expect_ok ~what:"ping"
       (Client.request conn {|{"id":"p","op":"ping"}|}));
  (* what the SIGTERM handler runs *)
  Server.request_drain ();
  Alcotest.(check bool) "draining" true (Server.draining ());
  (* run() returns: listener closed, workers joined, sinks flushed *)
  Thread.join runner;
  Alcotest.(check bool) "socket removed on drain" false
    (Sys.file_exists path);
  Client.close conn

(* ------------------------------------------------------------------ *)
(* stats golden snapshot *)

let test_stats_golden () =
  let s =
    {
      Server.draining = false;
      workers = 2;
      queue_depth = 1;
      queue_capacity = 16;
      in_flight = 2;
      connections = 3;
      received = 10;
      ok = 7;
      errors = 2;
      rejected_overload = 1;
      rejected_draining = 0;
      retries = 4;
      deadline_expired = 1;
      cache_hits = 5;
      cache_misses = 6;
      cache_corrupt = 0;
    }
  in
  let want =
    String.trim
      (In_channel.with_open_bin "golden/serve_stats.json"
         In_channel.input_all)
  in
  Alcotest.(check string) "stats_to_json byte layout" want
    (Server.stats_to_json s);
  (* the health payload splices in as raw JSON *)
  let with_health = Server.stats_to_json ~health:{|{"x":1}|} s in
  Alcotest.(check bool) "health spliced" true
    (match Json.parse with_health with
    | Ok j -> Json.member "health" j = Some (Json.Obj [ ("x", Json.Num 1.0) ])
    | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let qtest = Qseed.qtest

let json_gen =
  let open QCheck.Gen in
  (* finite floats only: non-finite prints as null by design *)
  let num = map (fun f -> Json.Num f) (float_range (-1e6) 1e6) in
  let str = map (fun s -> Json.Str s) (string_size ~gen:printable (0 -- 12)) in
  let base = oneof [ return Json.Null; map (fun b -> Json.Bool b) bool; num; str ] in
  let key = string_size ~gen:(char_range 'a' 'z') (1 -- 6) in
  sized
  @@ fix (fun self n ->
         if n <= 0 then base
         else
           frequency
             [
               (2, base);
               (1, map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2))));
               ( 1,
                 map
                   (fun l -> Json.Obj l)
                   (list_size (0 -- 4) (pair key (self (n / 2)))) );
             ])

let props =
  [
    qtest ~count:200 "json: print/parse round-trip"
      (QCheck.make ~print:Json.to_string json_gen)
      (fun v ->
        match Json.parse (Json.to_string v) with
        | Ok v' -> v = v'
        | Error _ -> false);
    qtest ~count:200 "json: parse never raises"
      QCheck.(string_of_size Gen.(0 -- 64))
      (fun s ->
        match Json.parse s with Ok _ -> true | Error _ -> true);
    qtest ~count:100 "request: sleep codec round-trips deadline"
      QCheck.(pair (float_range 0.001 100.0) (float_range 0.001 100.0))
      (fun (s, d) ->
        let req =
          { Request.id = "q"; deadline_s = Some d;
            payload = Request.Sleep { s } }
        in
        match Request.of_string (Request.to_string req) with
        | Ok req' -> req = req'
        | Error _ -> false);
  ]

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "hostile input" `Quick test_json_parse_hostile;
          Alcotest.test_case "printing" `Quick test_json_print;
        ] );
      ( "request",
        [
          Alcotest.test_case "codec round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "defaults and errors" `Quick
            test_request_defaults_and_errors;
        ] );
      ( "bq",
        [
          Alcotest.test_case "bounds and close" `Quick test_bq_bounds;
          Alcotest.test_case "blocking pop" `Quick test_bq_blocking_pop;
        ] );
      ("addr", [ Alcotest.test_case "parse" `Quick test_addr_parse ]);
      ( "deadline",
        [
          Alcotest.test_case "scopes" `Quick test_deadline_scopes;
          Alcotest.test_case "grid holes under expired budget" `Quick
            test_grid_deadline_holes;
        ] );
      ( "server",
        [
          Alcotest.test_case "framing round-trip" `Quick test_server_framing;
          Alcotest.test_case "malformed line, then alive" `Quick
            test_server_malformed_then_alive;
          Alcotest.test_case "queue-full typed rejection" `Quick
            test_server_queue_full_rejection;
          Alcotest.test_case "deadline expiry typed error" `Quick
            test_server_deadline_expiry;
          Alcotest.test_case "wire bytes == local Api bytes" `Quick
            test_server_bit_identical_to_local;
          Alcotest.test_case "injected fault is typed, not fatal" `Quick
            test_server_fault_injection_typed;
          Alcotest.test_case "drain (SIGTERM path)" `Quick test_server_drain;
        ] );
      ( "stats",
        [ Alcotest.test_case "golden JSON snapshot" `Quick test_stats_golden ]
      );
      ("properties", props);
    ]
