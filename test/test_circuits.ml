(* Tests for the benchmark circuits: extraction, calibration and (short)
   end-to-end validation runs. *)

let check_float ?(eps = 1e-9) msg expected got =
  Alcotest.(check (float eps)) msg expected got

let qtest ?(count = 50) name gen prop = Qseed.qtest ~count name gen prop

(* ------------------------------------------------------------------ *)
(* Tanh oscillator *)

let test_tanh_osc_parameters () =
  let p = Circuits.Tanh_osc.default in
  let tank = Circuits.Tanh_osc.tank p in
  check_float ~eps:1.0 "fc 1 MHz" 1e6 (Shil.Tank.f_c tank);
  check_float ~eps:1e-6 "Q 10" 10.0 (Shil.Tank.q tank);
  check_float ~eps:1e-12 "loop gain 2" 2.0
    (Shil.Natural.small_signal_gain (Circuits.Tanh_osc.nonlinearity p) ~r:p.r)

let test_tanh_osc_netlist_matches_reduced_model () =
  (* the MNA netlist and the reduced ODE must agree on the steady
     amplitude *)
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  let cmp =
    Circuits.Validate.natural ~cycles:250.0 ~circuit:(Circuits.Tanh_osc.circuit p)
      ~probe:(Spice.Transient.Node "t") ~osc ()
  in
  check_float ~eps:(cmp.predicted_a *. 0.01) "netlist vs DF amplitude"
    cmp.predicted_a cmp.simulated_a;
  check_float ~eps:(cmp.predicted_f *. 2e-3) "netlist vs DF frequency"
    cmp.predicted_f cmp.simulated_f

(* ------------------------------------------------------------------ *)
(* Diff pair *)

let dp_fv = lazy (Circuits.Diff_pair.extraction_fv ~steps:120 Circuits.Diff_pair.default)

let test_diff_pair_fv_shape () =
  let vs, is = Lazy.force dp_fv in
  let n = Array.length vs in
  (* f(0) = 0 by symmetry *)
  let mid = n / 2 in
  check_float ~eps:1e-12 "f(0) = 0" 0.0 is.(mid);
  (* negative differential resistance at the origin *)
  Alcotest.(check bool) "negative slope at 0" true (is.(mid + 1) < is.(mid - 1));
  (* odd symmetry *)
  for k = 0 to n - 1 do
    check_float ~eps:1e-8 "odd symmetry" (-.is.(k)) is.(n - 1 - k)
  done

let test_diff_pair_fv_tanh_region () =
  (* in the core region the curve follows -(IEE+2Ib) tanh(v/2vt)-ish:
     check the plateau level is ~ IEE *)
  let vs, is = Lazy.force dp_fv in
  let p = Circuits.Diff_pair.default in
  let at v =
    let best = ref 0 in
    Array.iteri (fun k x -> if Float.abs (x -. v) < Float.abs (vs.(!best) -. v) then best := k) vs;
    is.(!best)
  in
  ignore (at 0.0);
  Alcotest.(check bool) "plateau near -IEE/2-ish magnitude" true
    (Float.abs (at 0.3) > 0.3 *. p.iee && Float.abs (at 0.3) < 1.2 *. p.iee)

let test_diff_pair_tank_centre () =
  let tank = Circuits.Diff_pair.tank Circuits.Diff_pair.default in
  check_float ~eps:1.0 "paper centre frequency" Circuits.Diff_pair.fc_paper
    (Shil.Tank.f_c tank)

let test_diff_pair_predicted_amplitude_is_calibrated () =
  let vs, is = Lazy.force dp_fv in
  let nl = Shil.Nonlinearity.of_table ~vs ~is () in
  match Shil.Natural.predicted_amplitude nl ~r:Circuits.Diff_pair.default.r with
  | Some a -> check_float ~eps:5e-3 "calibrated amplitude 0.505" 0.505 a
  | None -> Alcotest.fail "no oscillation predicted"

let test_diff_pair_circuit_has_injection () =
  let c =
    Circuits.Diff_pair.circuit
      ~injection:{ vi = 0.03; n = 3; f_inj = 1.5e6; phase = 0.0 }
      Circuits.Diff_pair.default
  in
  match Spice.Circuit.find c "VINJ" with
  | Some (Spice.Device.Vsource { wave = Spice.Wave.Sine s; _ }) ->
    check_float ~eps:1e-12 "injection amplitude 2 vi" 0.06 s.ampl;
    check_float "injection frequency" 1.5e6 s.freq
  | _ -> Alcotest.fail "VINJ missing or not sinusoidal"

(* ------------------------------------------------------------------ *)
(* Tunnel oscillator *)

let test_tunnel_extraction_matches_analytic () =
  let p = Circuits.Tunnel_osc.default in
  let vs, is = Circuits.Tunnel_osc.extraction_fv ~steps:60 p in
  Array.iteri
    (fun k v ->
      let expected, _ = Spice.Device.tunnel_iv p.tunnel v in
      check_float ~eps:(1e-9 +. (1e-6 *. Float.abs expected)) "DC sweep = model" expected is.(k))
    vs

let test_tunnel_nonlinearity_extracted_agrees () =
  let p = Circuits.Tunnel_osc.default in
  let analytic = Circuits.Tunnel_osc.nonlinearity p in
  let extracted = Circuits.Tunnel_osc.nonlinearity_extracted ~steps:200 p in
  List.iter
    (fun v ->
      check_float ~eps:2e-7 "table vs analytic"
        (Shil.Nonlinearity.eval analytic v)
        (Shil.Nonlinearity.eval extracted v))
    [ -0.15; -0.05; 0.0; 0.05; 0.1; 0.18 ]

let test_tunnel_predicted_amplitude_is_calibrated () =
  let p = Circuits.Tunnel_osc.default in
  let nl = Circuits.Tunnel_osc.nonlinearity p in
  match Shil.Natural.predicted_amplitude nl ~r:p.r with
  | Some a -> check_float ~eps:2e-3 "calibrated amplitude 0.199" 0.199 a
  | None -> Alcotest.fail "no oscillation predicted"

let test_tunnel_bias_point () =
  (* the DC operating point of the oscillator sits at the 0.25 V bias *)
  let p = Circuits.Tunnel_osc.default in
  let op = Spice.Op.run (Circuits.Tunnel_osc.circuit p) in
  check_float ~eps:1e-6 "v(t) = vbias" p.vbias (Spice.Op.voltage op "t")

(* ------------------------------------------------------------------ *)
(* Calibration *)

let prop_calibrate_r_hits_target =
  qtest ~count:4 "calibrate: r_for_amplitude inverts predicted_amplitude"
    QCheck.(float_range 0.5 1.5)
    (fun target ->
      let nl = Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3 in
      let r = Circuits.Calibrate.r_for_amplitude ~nl ~target_a:target () in
      match Shil.Natural.predicted_amplitude nl ~r with
      | Some a -> Float.abs (a -. target) < 1e-4
      | None -> false)

let test_calibrate_unreachable () =
  let nl = Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3 in
  Alcotest.(check bool) "unreachable target raises typed Root_failure" true
    (try
       (* tanh amplitude is bounded by ~ 4/pi R isat; 1e9 V is absurd *)
       ignore (Circuits.Calibrate.r_for_amplitude ~nl ~target_a:1e9 ());
       false
     with Resilience.Oshil_error.Error e ->
       e.kind = Resilience.Oshil_error.Root_failure)

let test_fit_tank_consistency () =
  (* fit, then verify the fitted tank reproduces the requested range *)
  let nl = Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3 in
  let fit =
    Circuits.Calibrate.fit_tank ~points:256 ~nl ~target_a:1.1582 ~f_c:1e6 ~n:3
      ~vi:0.05 ~target_delta_f_inj:15e3 ()
  in
  let tank = Shil.Tank.make ~r:fit.r ~l:fit.l ~c:fit.c in
  check_float ~eps:1.0 "fc preserved" 1e6 (Shil.Tank.f_c tank);
  check_float ~eps:1e-6 "q consistent" fit.q (Shil.Tank.q tank);
  let grid =
    Shil.Grid.sample ~points:256 nl ~n:3 ~r:fit.r ~vi:0.05 ~a_range:(0.3, 1.45) ()
  in
  let lr = Shil.Lock_range.predict ~points:256 grid ~tank in
  check_float ~eps:100.0 "requested range reproduced" 15e3 lr.delta_f_inj

(* ------------------------------------------------------------------ *)
(* Validate plumbing *)

let test_validate_natural_on_tanh () =
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  let cmp =
    Circuits.Validate.natural ~cycles:200.0 ~steps_per_cycle:100
      ~circuit:(Circuits.Tanh_osc.circuit p)
      ~probe:(Spice.Transient.Node "t") ~osc ()
  in
  Alcotest.(check bool) "amplitude within 2%" true
    (Float.abs (cmp.simulated_a -. cmp.predicted_a) /. cmp.predicted_a < 0.02)


(* ------------------------------------------------------------------ *)
(* CMOS cross-coupled pair (extension circuit) *)

let cmos_fv = lazy (Circuits.Cmos_pair.extraction_fv ~steps:120 Circuits.Cmos_pair.default)

let test_cmos_fv_shape () =
  let vs, is = Lazy.force cmos_fv in
  let n = Array.length vs in
  let mid = n / 2 in
  check_float ~eps:1e-12 "f(0) = 0" 0.0 is.(mid);
  Alcotest.(check bool) "negative slope at 0" true (is.(mid + 1) < is.(mid - 1));
  for k = 0 to n - 1 do
    check_float ~eps:1e-9 "odd symmetry" (-.is.(k)) is.(n - 1 - k)
  done;
  (* the plateau is the full tail current steered to one side *)
  let p = Circuits.Cmos_pair.default in
  Alcotest.(check bool) "plateau ~ itail/2" true
    (Float.abs is.(n - 1) > 0.45 *. p.itail && Float.abs is.(n - 1) < 0.55 *. p.itail)

let test_cmos_natural_prediction_vs_transient () =
  let p = Circuits.Cmos_pair.default in
  let vs, is = Lazy.force cmos_fv in
  let nl = Shil.Nonlinearity.of_table ~vs ~is () in
  let osc = { Shil.Analysis.nl; tank = Circuits.Cmos_pair.tank p } in
  let cmp =
    Circuits.Validate.natural ~cycles:300.0 ~circuit:(Circuits.Cmos_pair.circuit p)
      ~probe:Circuits.Cmos_pair.osc_probe ~osc ()
  in
  Alcotest.(check bool) "amplitude within 1%" true
    (Float.abs (cmp.simulated_a -. cmp.predicted_a) /. cmp.predicted_a < 0.01);
  Alcotest.(check bool) "frequency within 0.2%" true
    (Float.abs (cmp.simulated_f -. cmp.predicted_f) /. cmp.predicted_f < 2e-3)

let () =
  Alcotest.run "circuits"
    [
      ( "tanh_osc",
        [
          Alcotest.test_case "parameters" `Quick test_tanh_osc_parameters;
          Alcotest.test_case "netlist vs reduced" `Slow test_tanh_osc_netlist_matches_reduced_model;
        ] );
      ( "diff_pair",
        [
          Alcotest.test_case "f(v) shape" `Slow test_diff_pair_fv_shape;
          Alcotest.test_case "f(v) tanh region" `Slow test_diff_pair_fv_tanh_region;
          Alcotest.test_case "tank centre" `Quick test_diff_pair_tank_centre;
          Alcotest.test_case "calibrated amplitude" `Slow test_diff_pair_predicted_amplitude_is_calibrated;
          Alcotest.test_case "injection device" `Quick test_diff_pair_circuit_has_injection;
        ] );
      ( "tunnel_osc",
        [
          Alcotest.test_case "extraction matches model" `Slow test_tunnel_extraction_matches_analytic;
          Alcotest.test_case "extracted nl agrees" `Slow test_tunnel_nonlinearity_extracted_agrees;
          Alcotest.test_case "calibrated amplitude" `Quick test_tunnel_predicted_amplitude_is_calibrated;
          Alcotest.test_case "bias point" `Quick test_tunnel_bias_point;
        ] );
      ( "cmos_pair",
        [
          Alcotest.test_case "f(v) shape" `Slow test_cmos_fv_shape;
          Alcotest.test_case "natural vs transient" `Slow test_cmos_natural_prediction_vs_transient;
        ] );
      ( "calibrate",
        [
          prop_calibrate_r_hits_target;
          Alcotest.test_case "unreachable" `Quick test_calibrate_unreachable;
          Alcotest.test_case "fit_tank consistency" `Slow test_fit_tank_consistency;
        ] );
      ( "validate",
        [ Alcotest.test_case "natural on tanh" `Slow test_validate_natural_on_tanh ] );
    ]
