(* Deterministic, reproducible qcheck plumbing shared by every test
   executable.

   Every property test runs from one pinned seed so failures reproduce
   exactly: the resolved seed is embedded in the Alcotest case name
   (`... [seed=3405691582]`), so a failing CI line already tells you how
   to rerun it locally:

     QCHECK_SEED=3405691582 dune runtest

   QCHECK_SEED overrides the pinned default; QCHECK_VERBOSE / QCHECK_LONG
   keep their stock qcheck-alcotest meaning. *)

let default_seed = 0xCAFE5EED

let seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None -> default_seed

(* Each test gets a state derived from (seed, test name), not a shared
   one: tests then reproduce individually, in any order, under any
   filter — rerunning one test does not need the whole suite's RNG
   history. *)
let rand_for name =
  Random.State.make [| seed; Hashtbl.hash (name : string) |]

let qtest ?(count = 100) name gen prop =
  let name = Printf.sprintf "%s [seed=%d]" name seed in
  QCheck_alcotest.to_alcotest ~rand:(rand_for name)
    (QCheck.Test.make ~count ~name gen prop)
