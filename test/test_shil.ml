(* Tests for the core SHIL theory library. *)

open Shil
module Cx = Numerics.Cx
module Angle = Numerics.Angle

let check_float ?(eps = 1e-9) msg expected got =
  Alcotest.(check (float eps)) msg expected got

let qtest ?(count = 100) name gen prop = Qseed.qtest ~count name gen prop

(* Shared fixtures: the paper's illustration oscillator (negative tanh). *)
let tanh_nl = Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3
let fixture_r = 1000.0
let fixture_tank =
  let fc = 1e6 in
  let wc = 2.0 *. Float.pi *. fc in
  let z0 = 100.0 in
  Tank.make ~r:fixture_r ~l:(z0 /. wc) ~c:(1.0 /. (z0 *. wc))

let fixture_grid =
  lazy
    (Grid.sample tanh_nl ~n:3 ~r:fixture_r ~vi:0.05 ~a_range:(0.3, 1.45) ())

(* ------------------------------------------------------------------ *)
(* Nonlinearity *)

let test_neg_tanh () =
  check_float "f(0)" 0.0 (Nonlinearity.eval tanh_nl 0.0);
  check_float ~eps:1e-12 "f'(0) = -g0" (-2e-3) (Nonlinearity.deriv tanh_nl 0.0);
  check_float ~eps:1e-6 "saturates to -isat" (-1e-3) (Nonlinearity.eval tanh_nl 100.0)

let test_cubic () =
  let nl = Nonlinearity.cubic ~g1:1e-3 ~g3:1e-4 in
  check_float ~eps:1e-15 "cubic value" ((-.1e-3 *. 2.0) +. (1e-4 *. 8.0))
    (Nonlinearity.eval nl 2.0);
  check_float ~eps:1e-15 "cubic deriv" (-.1e-3 +. (3.0 *. 1e-4 *. 4.0))
    (Nonlinearity.deriv nl 2.0)

let prop_numeric_df =
  qtest "nonlinearity: default df matches analytic"
    QCheck.(float_range (-2.0) 2.0)
    (fun v ->
      let f x = sin (3.0 *. x) in
      let nl = Nonlinearity.make f in
      Float.abs (Nonlinearity.deriv nl v -. (3.0 *. cos (3.0 *. v))) < 1e-5)

let prop_table_matches_function =
  qtest ~count:50 "nonlinearity: of_table reproduces tanh"
    QCheck.(float_range (-0.9) 0.9)
    (fun v ->
      let vs = Array.init 201 (fun k -> -1.0 +. (float_of_int k /. 100.0)) in
      let is = Array.map (Nonlinearity.eval tanh_nl) vs in
      let table = Nonlinearity.of_table ~vs ~is () in
      Float.abs (Nonlinearity.eval table v -. Nonlinearity.eval tanh_nl v) < 1e-6)

let test_shift_bias () =
  let nl = Nonlinearity.make (fun v -> v *. v) in
  let sh = Nonlinearity.shift_bias nl 1.0 in
  check_float "shifted zero" 0.0 (Nonlinearity.eval sh 0.0);
  check_float "shifted value" 3.0 (Nonlinearity.eval sh 1.0)

let test_scale_current () =
  let nl = Nonlinearity.scale_current tanh_nl (-2.0) in
  check_float ~eps:1e-15 "scaled"
    (-2.0 *. Nonlinearity.eval tanh_nl 0.3)
    (Nonlinearity.eval nl 0.3)

let test_tunnel_nl_negative_resistance () =
  let nl = Nonlinearity.tunnel_diode ~bias:0.25 () in
  check_float "f(0) = 0 after bias shift" 0.0 (Nonlinearity.eval nl 0.0);
  Alcotest.(check bool) "negative slope at bias" true (Nonlinearity.deriv nl 0.0 < 0.0)

let test_tunnel_nl_matches_spice_device () =
  let nl = Nonlinearity.tunnel_diode ~bias:0.0 () in
  List.iter
    (fun v ->
      let i_spice, _ = Spice.Device.tunnel_iv Spice.Device.paper_tunnel v in
      check_float ~eps:1e-15 "shil vs spice tunnel model" i_spice
        (Nonlinearity.eval nl v))
    [ 0.05; 0.15; 0.25; 0.4; 0.55 ]

let test_sample () =
  let vs, is = Nonlinearity.sample tanh_nl ~v_min:(-1.0) ~v_max:1.0 ~n:21 in
  Alcotest.(check int) "n points" 21 (Array.length vs);
  check_float "first" (-1.0) vs.(0);
  check_float "last" 1.0 vs.(20);
  check_float ~eps:1e-15 "value" (Nonlinearity.eval tanh_nl vs.(7)) is.(7)

(* ------------------------------------------------------------------ *)
(* Tank *)

let test_tank_basics () =
  check_float ~eps:1e-6 "fc" 1e6 (Tank.f_c fixture_tank);
  check_float ~eps:1e-9 "q" 10.0 (Tank.q fixture_tank);
  check_float ~eps:1e-12 "phase at wc" 0.0
    (Tank.phase fixture_tank ~omega:(Tank.omega_c fixture_tank));
  check_float ~eps:1e-9 "peak gain R" fixture_r
    (Tank.mag fixture_tank ~omega:(Tank.omega_c fixture_tank))

let test_tank_phase_sign () =
  let wc = Tank.omega_c fixture_tank in
  Alcotest.(check bool) "below resonance: positive phase" true
    (Tank.phase fixture_tank ~omega:(0.95 *. wc) > 0.0);
  Alcotest.(check bool) "above resonance: negative phase" true
    (Tank.phase fixture_tank ~omega:(1.05 *. wc) < 0.0)

let prop_tank_circle_identity =
  (* circle property: |H(jw)| = R cos(phi_d(w)) for every w *)
  qtest "tank: |H| = R cos phi_d"
    QCheck.(float_range 0.3 3.0)
    (fun ratio ->
      let omega = ratio *. Tank.omega_c fixture_tank in
      let mag = Tank.mag fixture_tank ~omega in
      let phi_d = Tank.phase fixture_tank ~omega in
      Float.abs (mag -. (fixture_r *. cos phi_d)) < 1e-9 *. fixture_r)

let prop_tank_phase_roundtrip =
  qtest "tank: omega_of_phase inverts phase"
    QCheck.(float_range (-1.5) 1.5)
    (fun phi_d ->
      let omega = Tank.omega_of_phase fixture_tank ~phi_d in
      Float.abs (Tank.phase fixture_tank ~omega -. phi_d) < 1e-9)

let test_tank_circle_point () =
  let b = Cx.make 2.0 0.0 in
  let p = Tank.circle_point fixture_tank ~b_center:b ~phi_d:0.5 in
  check_float ~eps:1e-12 "projection magnitude" (2.0 *. cos 0.5) (Cx.abs p);
  check_float ~eps:1e-12 "projection angle" 0.5 (Cx.arg p)

let test_tank_circle_locus () =
  (* every point of the locus lies on the circle with diameter b_center *)
  let b = Cx.make 1.0 1.0 in
  let centre = Cx.scale 0.5 b in
  let radius = 0.5 *. Cx.abs b in
  let pts = Tank.circle_locus fixture_tank ~b_center:b ~n:64 in
  Array.iter
    (fun p ->
      check_float ~eps:1e-9 "on circle" radius (Cx.abs (Cx.sub p centre)))
    pts

let test_tank_validation () =
  Alcotest.check_raises "negative R"
    (Invalid_argument "Tank.make: r, l, c must be positive") (fun () ->
      ignore (Tank.make ~r:(-1.0) ~l:1.0 ~c:1.0))

let test_tank_h_formula () =
  (* H = R / (1 + jQ(w/wc - wc/w)) checked against an explicit admittance
     computation 1/(1/R + jwC + 1/(jwL)) *)
  let omega = 1.23 *. Tank.omega_c fixture_tank in
  let h = Tank.h fixture_tank ~omega in
  let { Tank.r; l; c } = fixture_tank in
  let y =
    Cx.add
      (Cx.add (Cx.of_float (1.0 /. r)) (Cx.make 0.0 (omega *. c)))
      (Cx.div Cx.one (Cx.make 0.0 (omega *. l)))
  in
  let expected = Cx.div Cx.one y in
  Alcotest.(check bool) "h = 1/Y" true (Cx.abs (Cx.sub h expected) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Describing functions *)

let prop_df_linear_i1 =
  (* for f = g v: I1(A) = g A / 2 *)
  qtest ~count:50 "df: linear nonlinearity"
    QCheck.(pair (float_range (-5e-3) 5e-3) (float_range 0.1 3.0))
    (fun (g, a) ->
      let nl = Nonlinearity.make (fun v -> g *. v) in
      Float.abs (Describing_function.i1 nl ~a -. (g *. a /. 2.0)) < 1e-12)

let prop_df_cubic_closed_form =
  (* f = -g1 v + g3 v^3: I1(A) = (-g1 A + 3/4 g3 A^3) / 2 *)
  qtest ~count:50 "df: cubic closed form"
    QCheck.(pair (float_range 1e-4 5e-3) (float_range 0.1 2.0))
    (fun (g1, a) ->
      let g3 = 1e-3 in
      let nl = Nonlinearity.cubic ~g1 ~g3 in
      let expected = ((-.g1 *. a) +. (0.75 *. g3 *. (a ** 3.0))) /. 2.0 in
      Float.abs (Describing_function.i1 nl ~a -. expected) < 1e-12)

let test_df_even_harmonics_vanish () =
  (* odd f: even harmonics of f(A cos) vanish *)
  let i2 = Describing_function.ik tanh_nl ~a:1.0 ~k:2 in
  check_float ~eps:1e-12 "I2 = 0" 0.0 (Cx.abs i2);
  let i3 = Describing_function.ik tanh_nl ~a:1.0 ~k:3 in
  Alcotest.(check bool) "I3 nonzero" true (Cx.abs i3 > 1e-6)

let prop_df_two_tone_reduces_to_single =
  qtest ~count:30 "df: vi = 0 reduces to single tone"
    QCheck.(pair (float_range 0.2 2.0) (float_range 0.0 6.2))
    (fun (a, phi) ->
      let two = Describing_function.i1_two_tone tanh_nl ~n:3 ~a ~vi:0.0 ~phi in
      let one = Describing_function.i1 tanh_nl ~a in
      Cx.abs (Cx.sub two (Cx.of_float one)) < 1e-12)

let prop_df_two_tone_linear_no_leak =
  (* a linear f cannot mix the n-th harmonic down to the fundamental *)
  qtest ~count:30 "df: linear f has no intermodulation"
    QCheck.(pair (float_range 0.1 2.0) (float_range 0.0 6.2))
    (fun (a, phi) ->
      let nl = Nonlinearity.make (fun v -> 2e-3 *. v) in
      let i1 = Describing_function.i1_two_tone nl ~n:3 ~a ~vi:0.2 ~phi in
      Cx.abs (Cx.sub i1 (Cx.of_float (2e-3 *. a /. 2.0))) < 1e-12)

let prop_df_phi_periodicity =
  qtest ~count:30 "df: 2pi-periodic in phi"
    QCheck.(pair (float_range 0.3 1.4) (float_range 0.0 6.2))
    (fun (a, phi) ->
      let f p = Describing_function.i1_two_tone tanh_nl ~n:3 ~a ~vi:0.05 ~phi:p in
      Cx.abs (Cx.sub (f phi) (f (phi +. (2.0 *. Float.pi)))) < 1e-10)

let prop_df_conjugate_symmetry =
  (* time reversal: I1(A, Vi, -phi) = conj I1(A, Vi, phi) for real f *)
  qtest ~count:30 "df: conjugate symmetry in phi"
    QCheck.(pair (float_range 0.3 1.4) (float_range 0.0 6.2))
    (fun (a, phi) ->
      let ip = Describing_function.i1_two_tone tanh_nl ~n:3 ~a ~vi:0.05 ~phi in
      let im = Describing_function.i1_two_tone tanh_nl ~n:3 ~a ~vi:0.05 ~phi:(-.phi) in
      Cx.abs (Cx.sub im (Cx.conj ip)) < 1e-10)

let prop_df_rotation_identity =
  (* with the fundamental at phase psi, I1 = e^{j psi} g(phi - n psi):
     the lock equations depend only on the relative phase chi (section
     VI-B4's n-states argument) *)
  qtest ~count:30 "df: fundamental-phase rotation identity"
    QCheck.(pair (float_range 0.0 6.2) (float_range 0.0 6.2))
    (fun (psi, phi) ->
      let n = 3 and a = 1.0 and vi = 0.05 in
      let f_shifted theta =
        Nonlinearity.eval tanh_nl
          ((a *. cos (theta +. psi))
          +. (2.0 *. vi *. cos ((float_of_int n *. theta) +. phi)))
      in
      let lhs = Numerics.Fourier.coeff ~f:f_shifted ~k:1 () in
      let rhs =
        Cx.mul (Cx.exp_j psi)
          (Describing_function.i1_two_tone tanh_nl ~n ~a ~vi
             ~phi:(phi -. (float_of_int n *. psi)))
      in
      Cx.abs (Cx.sub lhs rhs) < 1e-9)

let test_df_t_f_free_small_signal () =
  (* T_f(A -> 0) = -R f'(0) *)
  let tf = Describing_function.t_f_free tanh_nl ~r:fixture_r ~a:1e-5 in
  check_float ~eps:1e-5 "small signal loop gain" 2.0 tf

let test_df_t_f_requires_positive_a () =
  Alcotest.check_raises "a > 0"
    (Invalid_argument "Describing_function.t_f_free: a must be > 0") (fun () ->
      ignore (Describing_function.t_f_free tanh_nl ~r:fixture_r ~a:0.0))

let test_df_t_cap_f_vs_t_f_on_solution () =
  (* on the phase condition, T_F = |T_f| *)
  let a = 1.0 and phi = 2.0 and vi = 0.05 in
  let i1 = Describing_function.i1_two_tone tanh_nl ~n:3 ~a ~vi ~phi in
  let phi_d = -.Cx.arg (Cx.neg i1) in
  let tf = Describing_function.t_f tanh_nl ~n:3 ~r:fixture_r ~a ~vi ~phi in
  let tcf =
    Describing_function.t_cap_f tanh_nl ~n:3 ~r:fixture_r ~a ~vi ~phi ~phi_d
  in
  check_float ~eps:1e-9 "T_F = |T_f| on eq. 4" (Float.abs tf) tcf

let test_df_quadrature_convergence () =
  (* 256 points already agree with 4096 to near machine precision *)
  let coarse = Describing_function.i1_two_tone ~points:256 tanh_nl ~n:3 ~a:1.1 ~vi:0.05 ~phi:1.0 in
  let fine = Describing_function.i1_two_tone ~points:4096 tanh_nl ~n:3 ~a:1.1 ~vi:0.05 ~phi:1.0 in
  Alcotest.(check bool) "spectral convergence" true (Cx.abs (Cx.sub coarse fine) < 1e-12)

(* ------------------------------------------------------------------ *)
(* Natural oscillation *)

let test_natural_tanh () =
  match Natural.solve tanh_nl ~r:fixture_r with
  | [ s ] ->
    Alcotest.(check bool) "stable" true s.stable;
    (* golden value validated against time-domain simulation *)
    check_float ~eps:1e-3 "tanh natural amplitude" 1.1582 s.a
  | sols -> Alcotest.failf "expected 1 solution, got %d" (List.length sols)

let prop_natural_cubic_closed_form =
  (* van der Pol: A = sqrt(4 (g1 - 1/R) / (3 g3)) *)
  qtest ~count:30 "natural: cubic closed form"
    QCheck.(float_range 1.5e-3 8e-3)
    (fun g1 ->
      let g3 = 1e-3 in
      let r = 1000.0 in
      let nl = Nonlinearity.cubic ~g1 ~g3 in
      let expected = sqrt (4.0 *. (g1 -. (1.0 /. r)) /. (3.0 *. g3)) in
      match Natural.predicted_amplitude nl ~r with
      | Some a -> Float.abs (a -. expected) < 1e-6 *. expected
      | None -> false)

let test_natural_no_oscillation () =
  (* loop gain below 1: no solutions *)
  let sols = Natural.solve tanh_nl ~r:400.0 in
  Alcotest.(check int) "no oscillation" 0 (List.length sols);
  Alcotest.(check bool) "oscillates predicate" false (Natural.oscillates tanh_nl ~r:400.0)

let test_small_signal_gain () =
  check_float ~eps:1e-12 "-R f'(0)" 2.0 (Natural.small_signal_gain tanh_nl ~r:fixture_r)

(* ------------------------------------------------------------------ *)
(* Contour *)

let circle_field xs ys radius =
  Array.map (fun x -> Array.map (fun y -> (x *. x) +. (y *. y) -. (radius *. radius)) ys) xs

let linspace = Numerics.Kernel.linspace

let test_contour_circle () =
  let xs = linspace (-2.0) 2.0 81 and ys = linspace (-2.0) 2.0 81 in
  let field = circle_field xs ys 1.0 in
  let segs = Contour.segments ~xs ~ys ~field ~level:0.0 in
  Alcotest.(check bool) "many segments" true (List.length segs > 20);
  (* every crossing point lies on the unit circle to grid accuracy *)
  List.iter
    (fun (s : Contour.segment) ->
      let r1 = sqrt ((s.x1 *. s.x1) +. (s.y1 *. s.y1)) in
      check_float ~eps:2e-3 "on circle" 1.0 r1)
    segs;
  (* total length approximates the circumference *)
  let len =
    List.fold_left
      (fun acc (s : Contour.segment) ->
        acc +. sqrt (((s.x2 -. s.x1) ** 2.0) +. ((s.y2 -. s.y1) ** 2.0)))
      0.0 segs
  in
  check_float ~eps:0.02 "circumference" (2.0 *. Float.pi) len

let test_contour_polyline_closed () =
  let xs = linspace (-2.0) 2.0 81 and ys = linspace (-2.0) 2.0 81 in
  (* radius chosen off the grid nodes so the loop is non-degenerate *)
  let field = circle_field xs ys 0.997 in
  match Contour.polylines ~xs ~ys ~field ~level:0.0 with
  | [ (cx, cy) ] ->
    let m = Array.length cx in
    Alcotest.(check bool) "rich polyline" true (m > 30);
    (* closed: endpoints coincide *)
    check_float ~eps:1e-6 "closed x" cx.(0) cx.(m - 1);
    check_float ~eps:1e-6 "closed y" cy.(0) cy.(m - 1)
  | ls -> Alcotest.failf "expected a single closed polyline, got %d" (List.length ls)

let test_contour_line () =
  (* field x - y: the contour is the diagonal *)
  let xs = linspace 0.0 1.0 11 and ys = linspace 0.0 1.0 11 in
  let field = Array.map (fun x -> Array.map (fun y -> x -. y) ys) xs in
  let segs = Contour.segments ~xs ~ys ~field ~level:0.0 in
  List.iter
    (fun (s : Contour.segment) ->
      check_float ~eps:1e-9 "on diagonal 1" s.x1 s.y1;
      check_float ~eps:1e-9 "on diagonal 2" s.x2 s.y2)
    segs

let test_contour_filter () =
  let segs =
    [ { Contour.x1 = 0.0; y1 = 0.0; x2 = 1.0; y2 = 0.0 };
      { Contour.x1 = 0.0; y1 = 2.0; x2 = 1.0; y2 = 2.0 } ]
  in
  let kept = Contour.filter_segments (fun (_, y) -> y < 1.0) segs in
  Alcotest.(check int) "filtered" 1 (List.length kept)

let test_contour_nan_skipped () =
  let xs = linspace 0.0 1.0 5 and ys = linspace 0.0 1.0 5 in
  let field = Array.map (fun x -> Array.map (fun y -> x +. y -. 1.0) ys) xs in
  field.(2).(2) <- Float.nan;
  (* must not raise *)
  ignore (Contour.segments ~xs ~ys ~field ~level:0.0)

(* ------------------------------------------------------------------ *)
(* Grid *)

let test_grid_t_f_field_consistency () =
  let g = Lazy.force fixture_grid in
  let field = Grid.t_f_field g in
  (* compare a few grid nodes against the direct evaluation *)
  List.iter
    (fun (i, j) ->
      let direct =
        Describing_function.t_f ~points:512 tanh_nl ~n:3 ~r:fixture_r
          ~a:g.amps.(j) ~vi:0.05 ~phi:g.phis.(i)
        -. 1.0
      in
      check_float ~eps:1e-9 "grid vs direct" direct field.(i).(j))
    [ (0, 0); (5, 7); (60, 50); (120, 100) ]

let prop_grid_interp_accuracy =
  qtest ~count:30 "grid: bilinear interp close to direct I1"
    QCheck.(pair (float_range 0.0 6.28) (float_range 0.35 1.4))
    (fun (phi, a) ->
      let g = Lazy.force fixture_grid in
      let interp = Grid.interp_i1 g ~phi ~a in
      let direct =
        Describing_function.i1_two_tone ~points:512 tanh_nl ~n:3 ~a ~vi:0.05 ~phi
      in
      Cx.abs (Cx.sub interp direct) < 5e-3 *. (Cx.abs direct +. 1e-6))

let test_grid_curves_nonempty () =
  let g = Lazy.force fixture_grid in
  Alcotest.(check bool) "T_f curve exists" true (Grid.t_f_curve g <> []);
  Alcotest.(check bool) "phase curve exists" true (Grid.phase_curve g ~phi_d:0.0 <> [])

let test_grid_validation () =
  Alcotest.check_raises "bad a_range" (Invalid_argument "Grid.sample: bad a_range")
    (fun () ->
      ignore (Grid.sample tanh_nl ~n:3 ~r:1.0 ~vi:0.0 ~a_range:(1.0, 0.5) ()))

let test_grid_parallel_equals_sequential () =
  (* the multicore grid sampler must be bit-identical to the sequential
     path: rows are pure and land in their own slots *)
  let sample () =
    Grid.sample ~points:256 ~n_phi:41 ~n_amp:31 tanh_nl ~n:3 ~r:fixture_r
      ~vi:0.05 ~a_range:(0.3, 1.45) ()
  in
  Numerics.Pool.set_jobs 1;
  let g_seq = sample () in
  Numerics.Pool.set_jobs 4;
  let g_par = sample () in
  Numerics.Pool.set_jobs 1;
  Alcotest.(check bool) "i1 grids bit-identical" true (g_seq.i1 = g_par.i1);
  Alcotest.(check bool) "axes bit-identical" true
    (g_seq.phis = g_par.phis && g_seq.amps = g_par.amps);
  (* the derived solution finder (parallel candidate refinement) must
     agree too *)
  let s_seq = Solutions.find g_seq ~phi_d:0.05 in
  Numerics.Pool.set_jobs 4;
  let s_par = Solutions.find g_par ~phi_d:0.05 in
  Numerics.Pool.set_jobs 1;
  Alcotest.(check int) "same solution count" (List.length s_seq)
    (List.length s_par);
  List.iter2
    (fun (p : Solutions.point) (q : Solutions.point) ->
      Alcotest.(check bool) "solution points bit-identical" true
        (p.phi = q.phi && p.a = q.a && p.stable = q.stable))
    s_seq s_par

(* ------------------------------------------------------------------ *)
(* Solutions *)

let test_solutions_at_center () =
  let g = Lazy.force fixture_grid in
  match Solutions.find g ~phi_d:0.0 with
  | [ s1; s2 ] ->
    (* phi = 0 unstable, phi = pi stable for the odd tanh (Fig. 7) *)
    check_float ~eps:1e-3 "unstable at phi=0" 0.0 s1.phi;
    Alcotest.(check bool) "s1 unstable" false s1.stable;
    check_float ~eps:1e-3 "stable at phi=pi" Float.pi s2.phi;
    Alcotest.(check bool) "s2 stable" true s2.stable;
    Alcotest.(check bool) "amplitudes near natural" true
      (Float.abs (s1.a -. 1.1582) < 0.1 && Float.abs (s2.a -. 1.1582) < 0.1)
  | sols -> Alcotest.failf "expected 2 locks, got %d" (List.length sols)

let test_solutions_residuals_vanish () =
  let g = Lazy.force fixture_grid in
  List.iter
    (fun (s : Solutions.point) ->
      let r1, r2 =
        Solutions.residuals tanh_nl ~n:3 ~r:fixture_r ~vi:0.05 ~phi_d:0.03
          (s.phi, s.a)
      in
      check_float ~eps:1e-7 "residual 1" 0.0 r1;
      check_float ~eps:1e-7 "residual 2" 0.0 r2)
    (Solutions.find g ~phi_d:0.03)

let test_solutions_mirror_symmetry () =
  (* (phi_s, A_s) at phi_d <-> (-phi_s, A_s) at -phi_d (§VI-B3) *)
  let g2 =
    Grid.sample tanh_nl ~n:3 ~r:fixture_r ~vi:0.05
      ~phi_range:(-.Float.pi, Float.pi) ~a_range:(0.3, 1.45) ()
  in
  let plus = Solutions.find g2 ~phi_d:0.02 in
  let minus = Solutions.find g2 ~phi_d:(-0.02) in
  Alcotest.(check int) "same count" (List.length plus) (List.length minus);
  List.iter
    (fun (p : Solutions.point) ->
      let mirrored =
        List.exists
          (fun (m : Solutions.point) ->
            Angle.dist m.phi (-.p.phi) < 1e-4
            && Float.abs (m.a -. p.a) < 1e-6
            && m.stable = p.stable)
          minus
      in
      Alcotest.(check bool) "mirror exists" true mirrored)
    plus

let test_solutions_disappear_past_boundary () =
  let g = Lazy.force fixture_grid in
  Alcotest.(check bool) "stable inside" true (Solutions.stable_exists g ~phi_d:0.045);
  Alcotest.(check bool) "gone outside" false (Solutions.stable_exists g ~phi_d:0.06)

let test_n_states () =
  let p = { Solutions.phi = 1.2; a = 1.0; stable = true; trace = -1.0; det = 1.0 } in
  let states = Solutions.n_states p ~n:3 in
  Alcotest.(check int) "three states" 3 (List.length states);
  (match states with
  | (psi0, _) :: rest ->
    List.iteri
      (fun k (psi, a) ->
        check_float ~eps:1e-12 "spacing 2pi/3"
          (Angle.wrap_two_pi (psi0 +. (2.0 *. Float.pi *. float_of_int (k + 1) /. 3.0)))
          psi;
        check_float "amplitude preserved" 1.0 a)
      rest
  | [] -> Alcotest.fail "empty states")

(* ------------------------------------------------------------------ *)
(* Lock range *)

let test_lock_range_tanh_golden () =
  let g = Lazy.force fixture_grid in
  let boundary = Lock_range.phi_d_boundary g in
  (* golden value; validated against time-domain simulation in
     test_simulate below and bin/scratch experiments *)
  check_float ~eps:2e-3 "phi_d boundary" 0.0500 boundary

let test_lock_range_predict () =
  let g = Lazy.force fixture_grid in
  let lr = Lock_range.predict g ~tank:fixture_tank in
  Alcotest.(check bool) "band straddles 3 fc" true
    (lr.f_inj_low < 3e6 && 3e6 < lr.f_inj_high);
  (* delta identity: delta_f_osc = fc tan(phi_max) / Q *)
  let expected_delta =
    3.0 *. Tank.f_c fixture_tank *. tan lr.phi_d_max /. Tank.q fixture_tank
  in
  check_float ~eps:(expected_delta *. 1e-9) "delta identity" expected_delta
    lr.delta_f_inj;
  Alcotest.(check bool) "has locks at centre" true (lr.at_center <> [])

let test_lock_range_r_mismatch () =
  let g = Lazy.force fixture_grid in
  let tank = Tank.make ~r:999.0 ~l:1e-5 ~c:1e-9 in
  Alcotest.check_raises "R mismatch"
    (Invalid_argument "Lock_range.predict: grid and tank R differ") (fun () ->
      ignore (Lock_range.predict g ~tank))

let test_lock_range_no_lock () =
  (* absurdly small injection at coarse grid: boundary ~ small but > 0;
     zero injection has marginal lock: check it does not crash and is finite *)
  let g = Grid.sample tanh_nl ~n:3 ~r:fixture_r ~vi:1e-6 ~a_range:(0.9, 1.4) () in
  let b = Lock_range.phi_d_boundary ~tol:1e-4 g in
  Alcotest.(check bool) "tiny injection -> tiny range" true (b < 0.01)

(* ------------------------------------------------------------------ *)
(* FHIL / Adler baseline *)

let test_fhil_matches_adler_weak_injection () =
  (* for weak injection the rigorous n=1 lock range approaches Adler *)
  let vi = 0.01 in
  let a_nat = 1.1582 in
  let g = Fhil.grid tanh_nl ~r:fixture_r ~vi ~a_range:(0.9, 1.4) in
  let lr = Lock_range.predict g ~tank:fixture_tank in
  let f_lo, f_hi = Fhil.adler_range ~tank:fixture_tank ~a:a_nat ~vi in
  let adler_delta = f_hi -. f_lo in
  Alcotest.(check bool) "within 15% of Adler" true
    (Float.abs (lr.delta_f_inj -. adler_delta) /. adler_delta < 0.15)

(* ------------------------------------------------------------------ *)
(* Simulate (reduced model, time domain) *)

let test_simulate_free_run_amplitude () =
  let res = Simulate.free_run tanh_nl ~tank:fixture_tank in
  let tail = Waveform.Signal.tail_fraction res.signal 0.2 in
  check_float ~eps:2e-3 "ODE amplitude matches DF" 1.1582
    (Waveform.Measure.amplitude tail);
  check_float ~eps:(1e6 *. 1e-3) "ODE frequency is fc" 1e6
    (Waveform.Measure.frequency tail)

let test_simulate_locks_inside_band () =
  let inj = { Simulate.vi = 0.05; n = 3; f_inj = 3.0e6; phase = 0.0 } in
  Alcotest.(check bool) "locks at centre" true
    (Simulate.locked ~cycles:400.0 tanh_nl ~tank:fixture_tank ~injection:inj)

let test_simulate_unlocked_outside_band () =
  let inj = { Simulate.vi = 0.05; n = 3; f_inj = 3.06e6; phase = 0.0 } in
  Alcotest.(check bool) "does not lock far out" false
    (Simulate.locked ~cycles:400.0 tanh_nl ~tank:fixture_tank ~injection:inj)

let test_injection_current () =
  let inj = { Simulate.vi = 0.05; n = 3; f_inj = 3.0e6; phase = 0.0 } in
  let im = Simulate.injection_current ~tank:fixture_tank inj in
  let h = Tank.mag fixture_tank ~omega:(2.0 *. Float.pi *. 3.0e6) in
  check_float ~eps:1e-12 "I = 2 vi / |H|" (2.0 *. 0.05 /. h) im

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_analysis_run () =
  let report = Analysis.run { nl = tanh_nl; tank = fixture_tank } ~n:3 ~vi:0.05 in
  (match report.natural_amplitude with
  | Some a -> check_float ~eps:1e-3 "natural amplitude" 1.1582 a
  | None -> Alcotest.fail "no natural oscillation");
  Alcotest.(check int) "two locks at centre" 2 (List.length report.locks_at_center);
  Alcotest.(check bool) "positive lock range" true
    (report.lock_range.delta_f_inj > 0.0)

let test_analysis_locks_at () =
  let report = Analysis.run { nl = tanh_nl; tank = fixture_tank } ~n:3 ~vi:0.05 in
  let inside = Analysis.locks_at report ~f_inj:3.0e6 in
  Alcotest.(check bool) "locks at centre frequency" true
    (List.exists (fun (p : Solutions.point) -> p.stable) inside);
  let outside = Analysis.locks_at report ~f_inj:3.1e6 in
  Alcotest.(check bool) "no stable lock far away" false
    (List.exists (fun (p : Solutions.point) -> p.stable) outside)

let test_analysis_requires_oscillation () =
  let dead = Nonlinearity.neg_tanh ~g0:1e-4 ~isat:1e-3 in
  Alcotest.(check bool) "raises typed No_oscillation without a_range" true
    (try
       ignore (Analysis.run { nl = dead; tank = fixture_tank } ~n:3 ~vi:0.05);
       false
     with Resilience.Oshil_error.Error e ->
       e.kind = Resilience.Oshil_error.No_oscillation)


(* ------------------------------------------------------------------ *)
(* Harmonic balance *)

let test_hb_tanh_matches_df () =
  let hb = Harmonic_balance.solve tanh_nl ~tank:fixture_tank in
  (* fundamental amplitude agrees with the describing function *)
  check_float ~eps:1e-4 "HB amplitude ~ DF" 1.1582 (Harmonic_balance.amplitude hb);
  (* tiny converged residual *)
  Alcotest.(check bool) "residual" true (hb.residual < 1e-10)

let test_hb_predicts_groszkowski_shift () =
  (* golden value: the long ODE run measures f0 = 999773.0 Hz for this
     cell; the DF predicts exactly 1 MHz. HB must recover the shift. *)
  let hb = Harmonic_balance.solve tanh_nl ~tank:fixture_tank in
  check_float ~eps:1.0 "HB frequency = ODE truth" 999773.1
    (Harmonic_balance.frequency hb)

let test_hb_k1_equals_df () =
  (* with a single harmonic, HB IS the describing-function analysis *)
  let hb = Harmonic_balance.solve ~k_max:1 tanh_nl ~tank:fixture_tank in
  check_float ~eps:1e-6 "K=1 amplitude = DF" 1.1581719 (Harmonic_balance.amplitude hb);
  check_float ~eps:1e-3 "K=1 frequency = fc" 1e6 (Harmonic_balance.frequency hb)

let test_hb_waveform_consistency () =
  let hb = Harmonic_balance.solve tanh_nl ~tank:fixture_tank in
  (* the reconstructed waveform peak matches the amplitude for a nearly
     sinusoidal cell *)
  let peak = ref 0.0 in
  for s = 0 to 499 do
    let theta = 2.0 *. Float.pi *. float_of_int s /. 500.0 in
    peak := Float.max !peak (Harmonic_balance.waveform hb ~theta)
  done;
  Alcotest.(check bool) "peak ~ amplitude" true
    (Float.abs (!peak -. Harmonic_balance.amplitude hb) < 0.02)

let test_hb_odd_cell_has_no_even_harmonics () =
  let hb = Harmonic_balance.solve tanh_nl ~tank:fixture_tank in
  Alcotest.(check bool) "V2 ~ 0 for odd f" true
    (Cx.abs hb.coeffs.(2) < 1e-9 *. Cx.abs hb.coeffs.(1));
  Alcotest.(check bool) "V3 finite" true
    (Cx.abs hb.coeffs.(3) > 1e-5 *. Cx.abs hb.coeffs.(1))

let test_hb_asymmetric_k_convergence () =
  (* golden: orbit truth for the asymmetric demo cell is 1991777 Hz *)
  let f v =
    let core = (-.2e-3 *. v) +. (0.6e-3 *. v *. v *. v) in
    let clip = if v > 0.8 then 5e-3 *. ((v -. 0.8) ** 2.0) else 0.0 in
    core +. clip
  in
  let nl2 = Nonlinearity.make ~name:"asym" f in
  let tank2 =
    let wc = 2.0 *. Float.pi *. 2e6 in
    Tank.make ~r:1.2e3 ~l:(150.0 /. wc) ~c:(1.0 /. (150.0 *. wc))
  in
  let f5 = Harmonic_balance.frequency (Harmonic_balance.solve ~k_max:5 nl2 ~tank:tank2) in
  let f11 = Harmonic_balance.frequency (Harmonic_balance.solve ~k_max:11 nl2 ~tank:tank2) in
  check_float ~eps:50.0 "K=5 near truth" 1991777.0 f5;
  check_float ~eps:5.0 "K=11 at truth" 1991777.0 f11;
  Alcotest.(check bool) "monotone convergence" true
    (Float.abs (f11 -. 1991777.0) <= Float.abs (f5 -. 1991777.0) +. 1.0)

let test_hb_no_oscillation_raises () =
  Alcotest.(check bool) "dead cell raises typed No_oscillation" true
    (try
       ignore (Harmonic_balance.solve tanh_nl ~tank:(Tank.with_r fixture_tank 400.0));
       false
     with Resilience.Oshil_error.Error e ->
       e.kind = Resilience.Oshil_error.No_oscillation
       && e.subsystem = Resilience.Oshil_error.Shil)

(* ------------------------------------------------------------------ *)
(* Self-consistent harmonic extension *)

let test_sc_effective_v_weak_feedback () =
  (* with a tank that kills the n-th harmonic, V_eff = V_inj *)
  let v_inj = Cx.polar 0.05 0.7 in
  let v =
    Self_consistent.effective_v tanh_nl ~n:3 ~a:1.0 ~v_inj ~h_n:Cx.zero
  in
  Alcotest.(check bool) "no feedback: V = Vinj" true
    (Cx.abs (Cx.sub v v_inj) < 1e-12)

let test_sc_matches_plain_for_odd_cell () =
  (* odd-symmetric tanh at n = 3: the self-harmonic is small, so the
     self-consistent locks are close to the plain ones *)
  let omega_i = Tank.omega_c fixture_tank in
  let pts =
    Self_consistent.find tanh_nl ~tank:fixture_tank ~n:3 ~vi:0.05 ~omega_i
  in
  let plain = Solutions.find (Lazy.force fixture_grid) ~phi_d:0.0 in
  Alcotest.(check int) "same lock count" (List.length plain) (List.length pts);
  let stable_sc = List.find (fun (p : Self_consistent.point) -> p.stable) pts in
  let stable_plain = List.find (fun (p : Solutions.point) -> p.stable) plain in
  Alcotest.(check bool) "amplitudes agree within 1%" true
    (Float.abs (stable_sc.a -. stable_plain.a) /. stable_plain.a < 0.01)

let test_sc_shifts_asymmetric_band_down () =
  let f v =
    let core = (-.2e-3 *. v) +. (0.6e-3 *. v *. v *. v) in
    let clip = if v > 0.8 then 5e-3 *. ((v -. 0.8) ** 2.0) else 0.0 in
    core +. clip
  in
  let nl2 = Nonlinearity.make ~name:"asym" f in
  let tank2 =
    let wc = 2.0 *. Float.pi *. 2e6 in
    Tank.make ~r:1.2e3 ~l:(150.0 /. wc) ~c:(1.0 /. (150.0 *. wc))
  in
  let sc = Self_consistent.lock_range ~points:256 ~tol:1e-3 nl2 ~tank:tank2 ~n:2 ~vi:0.06 in
  let report = Analysis.run { nl = nl2; tank = tank2 } ~n:2 ~vi:0.06 in
  Alcotest.(check bool) "SC band below plain band" true
    (sc.f_inj_low < report.lock_range.f_inj_low
    && sc.f_inj_high < report.lock_range.f_inj_high);
  Alcotest.(check bool) "width roughly preserved" true
    (Float.abs (sc.delta_f_inj -. report.lock_range.delta_f_inj)
     /. report.lock_range.delta_f_inj
    < 0.1)


(* ------------------------------------------------------------------ *)
(* Injection pulling *)

let test_pulling_zero_inside_band () =
  let report = Analysis.run { nl = tanh_nl; tank = fixture_tank } ~n:3 ~vi:0.05 in
  let lr = report.lock_range in
  let centre = 0.5 *. (lr.f_inj_low +. lr.f_inj_high) in
  check_float "no beat inside" 0.0
    (Pulling.beat_frequency ~lock_range:lr ~n:3 ~f_inj:centre)

let test_pulling_sqrt_law () =
  let report = Analysis.run { nl = tanh_nl; tank = fixture_tank } ~n:3 ~vi:0.05 in
  let lr = report.lock_range in
  let half = 0.5 *. lr.delta_f_inj /. 3.0 in
  (* at delta = 2 wL the beat is sqrt(3) wL *)
  let centre = 0.5 *. (lr.f_inj_low +. lr.f_inj_high) in
  let f_inj = centre +. (3.0 *. (2.0 *. half)) in
  check_float ~eps:(half *. 1e-6) "sqrt(3) wL"
    (sqrt 3.0 *. half)
    (Pulling.beat_frequency ~lock_range:lr ~n:3 ~f_inj)

let test_pulling_measured_tracks_prediction () =
  let report = Analysis.run { nl = tanh_nl; tank = fixture_tank } ~n:3 ~vi:0.05 in
  let lr = report.lock_range in
  let f_inj = lr.f_inj_high +. lr.delta_f_inj in
  let pred = Pulling.beat_frequency ~lock_range:lr ~n:3 ~f_inj in
  let meas = Pulling.measure_beat tanh_nl ~tank:fixture_tank ~vi:0.05 ~n:3 ~f_inj in
  Alcotest.(check bool) "within 10%" true (Float.abs (meas -. pred) /. pred < 0.1)

let () =
  Alcotest.run "shil"
    [
      ( "nonlinearity",
        [
          Alcotest.test_case "neg_tanh" `Quick test_neg_tanh;
          Alcotest.test_case "cubic" `Quick test_cubic;
          prop_numeric_df;
          prop_table_matches_function;
          Alcotest.test_case "shift_bias" `Quick test_shift_bias;
          Alcotest.test_case "scale_current" `Quick test_scale_current;
          Alcotest.test_case "tunnel negative resistance" `Quick test_tunnel_nl_negative_resistance;
          Alcotest.test_case "tunnel matches spice" `Quick test_tunnel_nl_matches_spice_device;
          Alcotest.test_case "sample" `Quick test_sample;
        ] );
      ( "tank",
        [
          Alcotest.test_case "basics" `Quick test_tank_basics;
          Alcotest.test_case "phase sign" `Quick test_tank_phase_sign;
          prop_tank_circle_identity;
          prop_tank_phase_roundtrip;
          Alcotest.test_case "circle point" `Quick test_tank_circle_point;
          Alcotest.test_case "circle locus" `Quick test_tank_circle_locus;
          Alcotest.test_case "validation" `Quick test_tank_validation;
          Alcotest.test_case "h formula" `Quick test_tank_h_formula;
        ] );
      ( "describing_function",
        [
          prop_df_linear_i1;
          prop_df_cubic_closed_form;
          Alcotest.test_case "even harmonics vanish" `Quick test_df_even_harmonics_vanish;
          prop_df_two_tone_reduces_to_single;
          prop_df_two_tone_linear_no_leak;
          prop_df_phi_periodicity;
          prop_df_conjugate_symmetry;
          prop_df_rotation_identity;
          Alcotest.test_case "small signal T_f" `Quick test_df_t_f_free_small_signal;
          Alcotest.test_case "a > 0 required" `Quick test_df_t_f_requires_positive_a;
          Alcotest.test_case "T_F vs T_f" `Quick test_df_t_cap_f_vs_t_f_on_solution;
          Alcotest.test_case "quadrature convergence" `Quick test_df_quadrature_convergence;
        ] );
      ( "natural",
        [
          Alcotest.test_case "tanh amplitude" `Quick test_natural_tanh;
          prop_natural_cubic_closed_form;
          Alcotest.test_case "no oscillation" `Quick test_natural_no_oscillation;
          Alcotest.test_case "small signal gain" `Quick test_small_signal_gain;
        ] );
      ( "contour",
        [
          Alcotest.test_case "circle" `Quick test_contour_circle;
          Alcotest.test_case "closed polyline" `Quick test_contour_polyline_closed;
          Alcotest.test_case "line" `Quick test_contour_line;
          Alcotest.test_case "filter" `Quick test_contour_filter;
          Alcotest.test_case "nan skipped" `Quick test_contour_nan_skipped;
        ] );
      ( "grid",
        [
          Alcotest.test_case "t_f field" `Quick test_grid_t_f_field_consistency;
          prop_grid_interp_accuracy;
          Alcotest.test_case "curves nonempty" `Quick test_grid_curves_nonempty;
          Alcotest.test_case "validation" `Quick test_grid_validation;
          Alcotest.test_case "parallel = sequential" `Quick
            test_grid_parallel_equals_sequential;
        ] );
      ( "solutions",
        [
          Alcotest.test_case "centre locks" `Quick test_solutions_at_center;
          Alcotest.test_case "residuals vanish" `Quick test_solutions_residuals_vanish;
          Alcotest.test_case "mirror symmetry" `Quick test_solutions_mirror_symmetry;
          Alcotest.test_case "boundary" `Quick test_solutions_disappear_past_boundary;
          Alcotest.test_case "n states" `Quick test_n_states;
        ] );
      ( "lock_range",
        [
          Alcotest.test_case "tanh golden boundary" `Quick test_lock_range_tanh_golden;
          Alcotest.test_case "predict" `Quick test_lock_range_predict;
          Alcotest.test_case "r mismatch" `Quick test_lock_range_r_mismatch;
          Alcotest.test_case "tiny injection" `Quick test_lock_range_no_lock;
        ] );
      ( "harmonic_balance",
        [
          Alcotest.test_case "matches DF" `Quick test_hb_tanh_matches_df;
          Alcotest.test_case "groszkowski shift" `Quick test_hb_predicts_groszkowski_shift;
          Alcotest.test_case "K=1 is the DF" `Quick test_hb_k1_equals_df;
          Alcotest.test_case "waveform" `Quick test_hb_waveform_consistency;
          Alcotest.test_case "odd cell harmonics" `Quick test_hb_odd_cell_has_no_even_harmonics;
          Alcotest.test_case "K convergence (asym)" `Slow test_hb_asymmetric_k_convergence;
          Alcotest.test_case "dead cell" `Quick test_hb_no_oscillation_raises;
        ] );
      ( "self_consistent",
        [
          Alcotest.test_case "no feedback identity" `Quick test_sc_effective_v_weak_feedback;
          Alcotest.test_case "odd cell matches plain" `Slow test_sc_matches_plain_for_odd_cell;
          Alcotest.test_case "asym band shifts down" `Slow test_sc_shifts_asymmetric_band_down;
        ] );
      ( "fhil",
        [ Alcotest.test_case "adler agreement" `Quick test_fhil_matches_adler_weak_injection ] );
      ( "pulling",
        [
          Alcotest.test_case "zero inside band" `Quick test_pulling_zero_inside_band;
          Alcotest.test_case "sqrt law" `Quick test_pulling_sqrt_law;
          Alcotest.test_case "measured tracks prediction" `Slow test_pulling_measured_tracks_prediction;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "free run amplitude" `Slow test_simulate_free_run_amplitude;
          Alcotest.test_case "locks inside band" `Slow test_simulate_locks_inside_band;
          Alcotest.test_case "unlocked outside band" `Slow test_simulate_unlocked_outside_band;
          Alcotest.test_case "injection current" `Quick test_injection_current;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "run" `Slow test_analysis_run;
          Alcotest.test_case "locks_at" `Slow test_analysis_locks_at;
          Alcotest.test_case "requires oscillation" `Quick test_analysis_requires_oscillation;
        ] );
    ]
