(* Tests for the solver resilience layer: the typed error taxonomy,
   the fault-injection grammar, the recovery-policy ladder, and the
   graceful-degradation paths of the fan-out layers.

   Every recovery rung and degradation path is driven by a
   deterministic fault plan and asserted through its [resilience.*]
   counter, so these tests double as the contract for the
   [--inject-fault] CLI surface. *)

module E = Resilience.Oshil_error
module Fault = Resilience.Fault
module Policy = Resilience.Policy
module Summary = Resilience.Summary

(* Faults, fail-fast and the metrics registry are process-global: every
   test runs inside this bracket so state never leaks between cases. *)
let with_env f () =
  Obs.set_enabled true;
  Obs.reset ();
  Fault.clear ();
  Policy.set_fail_fast false;
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Policy.set_fail_fast false;
      Obs.reset ();
      Obs.set_enabled false)
    f

let arm plan =
  match Fault.configure plan with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "bad fault plan %S: %s" plan msg

let counter = Obs.Metrics.counter_value

let check_counter name expected =
  Alcotest.(check int) (Printf.sprintf "counter %s" name) expected
    (counter name)

let check_counter_at_least name floor =
  Alcotest.(check bool)
    (Printf.sprintf "counter %s >= %d (got %d)" name floor (counter name))
    true
    (counter name >= floor)

let expect_error ~kind f =
  match f () with
  | _ -> Alcotest.fail "expected Oshil_error.Error"
  | exception E.Error e ->
    Alcotest.(check string) "error kind" kind (E.code e);
    e

(* ------------------------------------------------------------------ *)
(* Fault plan grammar *)

let test_fault_parse () =
  (match Fault.parse "newton-singular@0x2" with
  | Ok [ ("newton-singular", { Fault.start = 0; count = 2 }) ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  (match Fault.parse "tran-reject@3" with
  | Ok [ ("tran-reject", { Fault.start = 3; count = 1 }) ] -> ()
  | _ -> Alcotest.fail "START without COUNT must mean one occurrence");
  (match Fault.parse "grid-point,hb-singular@1x4" with
  | Ok [ ("grid-point", _); ("hb-singular", { Fault.start = 1; count = 4 }) ]
    -> ()
  | _ -> Alcotest.fail "comma-separated plan");
  (match Fault.parse "no-such-site" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown site must be rejected");
  (match Fault.parse "newton-singular@x2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed window must be rejected");
  match Fault.parse "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty plan must be rejected"

let test_fault_fire () =
  Alcotest.(check bool) "unarmed" false (Fault.armed ());
  Alcotest.(check bool) "unarmed fire" false (Fault.fire "roots-fail");
  arm "roots-fail@1x2";
  Alcotest.(check bool) "armed" true (Fault.armed ());
  Alcotest.(check (option string)) "plan string" (Some "roots-fail@1x2")
    (Fault.plan_string ());
  (* occurrences 0..3: only 1 and 2 are in the window *)
  Alcotest.(check (list bool)) "occurrence window"
    [ false; true; true; false ]
    (List.init 4 (fun _ -> Fault.fire "roots-fail"));
  check_counter "resilience.faults.injected" 2;
  check_counter "resilience.faults.roots-fail" 2;
  (* index-addressed: fire_at consults the window, not the counter *)
  arm "grid-point@3";
  Alcotest.(check bool) "k=3 hits" true (Fault.fire_at "grid-point" ~k:3);
  Alcotest.(check bool) "k=2 misses" false (Fault.fire_at "grid-point" ~k:2);
  Alcotest.(check bool) "k=3 hits again" true (Fault.fire_at "grid-point" ~k:3);
  Fault.clear ();
  Alcotest.(check bool) "cleared" false (Fault.armed ())

let test_fault_error_value () =
  let e = Fault.error ~site:"grid-point" E.Shil ~phase:"grid" in
  Alcotest.(check string) "code" "fault-injected" (E.code e);
  Alcotest.(check string) "loc" "shil.grid" (E.loc e);
  Alcotest.(check (option string)) "site context" (Some "grid-point")
    (List.assoc_opt "site" e.context)

(* ------------------------------------------------------------------ *)
(* Error taxonomy and rendering *)

let test_error_render () =
  let e =
    E.make Spice ~phase:"op" Solver_divergence "newton diverged"
      ~context:[ ("iteration", "17"); ("residual", "3.2e-1") ]
      ~remedy:"loosen tolerances"
  in
  Alcotest.(check string) "code" "solver-divergence" (E.code e);
  Alcotest.(check string) "loc" "spice.op" (E.loc e);
  let s = E.to_string e in
  List.iter
    (fun frag ->
      Alcotest.(check bool)
        (Printf.sprintf "rendering contains %S" frag)
        true
        (let fl = String.length frag and sl = String.length s in
         let rec scan i =
           i + fl <= sl && (String.sub s i fl = frag || scan (i + 1))
         in
         scan 0))
    [ "newton diverged"; "iteration"; "17"; "loosen tolerances" ];
  let d = E.to_diagnostic e in
  Alcotest.(check string) "diagnostic code" "solver-divergence"
    d.Check.Diagnostic.code;
  Alcotest.(check string) "diagnostic loc" "spice.op" d.Check.Diagnostic.loc

let test_error_of_exn () =
  let e = E.make Shil ~phase:"grid" Singular_system "boom" in
  (* typed errors pass through unchanged *)
  Alcotest.(check string) "passthrough" "singular-system"
    (E.code (E.of_exn Numerics ~phase:"other" (E.Error e)));
  let wrapped = E.of_exn Ppv ~phase:"orbit" (Failure "raw") in
  Alcotest.(check string) "wrapped loc" "ppv.orbit" (E.loc wrapped);
  Alcotest.(check bool) "exception recorded" true
    (List.mem_assoc "exception" wrapped.context)

let test_raise_counters () =
  (try E.raise_ Waveform ~phase:"measure" Measurement_failure "x"
   with E.Error _ -> ());
  check_counter "resilience.errors" 1;
  check_counter "resilience.errors.waveform" 1

(* ------------------------------------------------------------------ *)
(* Recovery-policy ladder *)

let test_escalate_recovery () =
  let r =
    Policy.escalate ~subsystem:Spice ~phase:"ladder"
      [
        Policy.rung "a" (fun () -> Error "a failed");
        Policy.rung "b" (fun () -> Ok 42);
        Policy.rung "c" (fun () -> Alcotest.fail "must not reach c");
      ]
  in
  Alcotest.(check (result int string)) "recovered value" (Ok 42)
    (Result.map_error E.to_string r);
  check_counter "resilience.ladder.rung.b" 1;
  check_counter "resilience.ladder.recovered" 1;
  check_counter "resilience.ladder.failed" 0

let test_escalate_all_fail () =
  let r =
    Policy.escalate ~subsystem:Spice ~phase:"ladder"
      [
        Policy.rung "a" (fun () -> Error "a failed");
        Policy.rung "b" (fun () -> Error "b failed");
      ]
  in
  (match r with
  | Ok _ -> Alcotest.fail "must fail"
  | Error e ->
    Alcotest.(check string) "kind" "solver-divergence" (E.code e);
    Alcotest.(check (option string)) "rungs tried" (Some "a,b")
      (List.assoc_opt "rungs" e.context));
  check_counter "resilience.ladder.failed" 1

let test_escalate_retry_budget () =
  let budget = { Policy.default_budget with max_retries = 1 } in
  match
    Policy.escalate ~budget ~subsystem:Spice ~phase:"ladder"
      [
        Policy.rung "a" (fun () -> Error "a failed");
        Policy.rung "b" (fun () -> Alcotest.fail "budget must stop here");
      ]
  with
  | Ok _ -> Alcotest.fail "must fail"
  | Error e ->
    Alcotest.(check string) "kind" "budget-exhausted" (E.code e);
    check_counter "resilience.budget.exhausted" 1

let test_escalate_typed_abort () =
  let typed = E.make Spice ~phase:"ladder" Budget_exhausted "inner budget" in
  match
    Policy.escalate ~subsystem:Spice ~phase:"ladder"
      [
        Policy.rung "a" (fun () -> raise (E.Error typed));
        Policy.rung "b" (fun () -> Ok ());
      ]
  with
  | Ok _ -> Alcotest.fail "typed raise must abort the ladder"
  | Error e -> Alcotest.(check string) "same error" "budget-exhausted" (E.code e)

(* ------------------------------------------------------------------ *)
(* Operating-point recovery ladder under injected Newton faults *)

let r name n1 n2 rv = Spice.Device.Resistor { name; n1; n2; r = rv }

let diode_circuit () =
  Spice.Circuit.of_devices
    [
      Spice.Device.Vsource
        { name = "V1"; np = "in"; nn = "0"; wave = Spice.Wave.Dc 5.0 };
      r "R1" "in" "d" 1e3;
      Spice.Device.Diode
        { name = "D1"; np = "d"; nn = "0"; p = Spice.Device.default_diode };
    ]

let op_voltage () = Spice.Op.voltage (Spice.Op.run (diode_circuit ())) "d"

let test_op_rung_recovery () =
  let clean = op_voltage () in
  let try_plan plan rung =
    Obs.reset ();
    arm plan;
    let v = op_voltage () in
    (* later rungs settle at gmin 1e-9 instead of 1e-12, so the answer
       may differ at the leak-current scale *)
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "%s: same answer after recovery" plan)
      clean v;
    check_counter (Printf.sprintf "resilience.op.rung.%s" rung) 1;
    check_counter "resilience.op.recovered" 1
  in
  (* each failing Newton solve consumes one occurrence, and a failing
     rung aborts at its first failed solve — so widening the window
     walks the ladder one rung at a time *)
  try_plan "newton-singular@0" "gmin-stepping";
  try_plan "newton-singular@0x2" "source-stepping";
  try_plan "newton-singular@0x3" "damped-newton";
  (* a NaN device evaluation trips the non-finite-iterate guard and
     recovers the same way a singular matrix does *)
  try_plan "device-nan@0" "gmin-stepping"

let test_op_ladder_exhausted () =
  arm "newton-singular@0x4";
  let e = expect_error ~kind:"solver-divergence" op_voltage in
  Alcotest.(check string) "loc" "spice.op" (E.loc e);
  check_counter "resilience.op.failed" 1;
  check_counter "resilience.op.recovered" 0

(* ------------------------------------------------------------------ *)
(* Transient degradation *)

let rc_circuit () =
  Spice.Circuit.of_devices
    [
      Spice.Device.Vsource
        { name = "V1"; np = "in"; nn = "0"; wave = Spice.Wave.Dc 1.0 };
      r "R1" "in" "out" 1e3;
      Spice.Device.Capacitor
        { name = "C1"; n1 = "out"; n2 = "0"; c = 1e-6; ic = None };
    ]

let rc_options ?budget () =
  let o = Spice.Transient.default_options ~dt:1e-5 ~t_stop:1e-3 in
  match budget with None -> o | Some b -> { o with budget = b }

let run_rc ?budget () =
  Spice.Transient.run (rc_circuit ())
    ~probes:[ Spice.Transient.Node "out" ]
    (rc_options ?budget ())

let test_transient_step_halving_recovers () =
  arm "tran-reject@0";
  let res = run_rc () in
  Alcotest.(check bool) "no failure" true (res.failure = None);
  check_counter_at_least "resilience.transient.step_halvings" 1;
  check_counter_at_least "resilience.transient.rejected_steps" 1;
  let t_last = res.times.(Array.length res.times - 1) in
  Alcotest.(check (float 1e-12)) "ran to t_stop" 1e-3 t_last

let test_transient_degrades_to_partial () =
  arm "tran-reject";
  let res = run_rc () in
  (match res.failure with
  | Some e -> Alcotest.(check string) "kind" "step-failure" (E.code e)
  | None -> Alcotest.fail "expected a recorded failure");
  check_counter "resilience.transient.degraded" 1;
  (* the waveform accumulated before the fatal step is still returned *)
  Alcotest.(check bool) "partial waveform kept" true
    (Array.length res.times >= 1);
  let t_last = res.times.(Array.length res.times - 1) in
  Alcotest.(check bool) "stopped early" true (t_last < 1e-3)

let test_transient_fail_fast () =
  arm "tran-reject";
  Policy.set_fail_fast true;
  ignore (expect_error ~kind:"step-failure" (fun () -> run_rc ()))

let test_transient_rejection_budget () =
  arm "tran-reject";
  let budget = { Policy.default_budget with max_rejected_steps = 3 } in
  let res = run_rc ~budget () in
  match res.failure with
  | Some e ->
    Alcotest.(check string) "kind" "budget-exhausted" (E.code e);
    check_counter "resilience.budget.exhausted" 1
  | None -> Alcotest.fail "expected budget exhaustion"

(* ------------------------------------------------------------------ *)
(* Grid / lock-range degradation (the paper pipeline) *)

let tanh_nl = Shil.Nonlinearity.neg_tanh ~g0:2e-3 ~isat:1e-3

let fixture_tank =
  let wc = 2.0 *. Float.pi *. 1e6 in
  Shil.Tank.make ~r:1e3 ~l:(100.0 /. wc) ~c:(1.0 /. (100.0 *. wc))

let small_grid () =
  Shil.Grid.sample ~points:128 ~n_phi:31 ~n_amp:21 tanh_nl ~n:3 ~r:1e3
    ~vi:0.2 ~a_range:(0.3, 1.45) ()

let test_grid_holes () =
  arm "grid-point@2";
  let g = small_grid () in
  Alcotest.(check int) "one hole" 1 (Summary.failed g.failures);
  Alcotest.(check int) "attempted all rows" 31 g.failures.attempted;
  check_counter "resilience.grid.holes" 1;
  Alcotest.(check bool) "failed row is NaN-filled" true
    (Array.for_all (fun z -> Float.is_nan (Numerics.Cx.re z)) g.i1.(2));
  Alcotest.(check bool) "neighbour row survives" true
    (Array.for_all (fun z -> Float.is_finite (Numerics.Cx.re z)) g.i1.(3))

let test_grid_fail_fast () =
  arm "grid-point@2";
  Policy.set_fail_fast true;
  ignore (expect_error ~kind:"fault-injected" small_grid)

let test_grid_zero_fault_bit_identity () =
  (* arming and clearing a plan must leave no trace in the numbers *)
  let a = small_grid () in
  arm "grid-point@2";
  Fault.clear ();
  let b = small_grid () in
  Alcotest.(check bool) "bit-identical i1" true (a.i1 = b.i1);
  Alcotest.(check bool) "clean summaries" true
    (Summary.is_clean a.failures && Summary.is_clean b.failures);
  check_counter "resilience.grid.holes" 0

let test_lock_range_with_bad_grid_point () =
  (* acceptance scenario: one injected bad grid point; the lock-range
     sweep completes with a partial result plus a failure summary *)
  arm "grid-point@1";
  let g = small_grid () in
  let lr = Shil.Lock_range.predict ~tol:1e-3 g ~tank:fixture_tank in
  Alcotest.(check bool) "summary carries the grid hole" false
    (Summary.is_clean lr.failures);
  Alcotest.(check bool) "range still predicted" true
    (Float.is_finite lr.delta_f_inj && lr.delta_f_inj > 0.0);
  check_counter "resilience.grid.holes" 1

let test_lock_probe_holes () =
  arm "lock-probe@0x3";
  let g = small_grid () in
  let lr = Shil.Lock_range.predict ~tol:1e-3 g ~tank:fixture_tank in
  Alcotest.(check bool) "probe holes recorded" false
    (Summary.is_clean lr.failures);
  check_counter_at_least "resilience.lockrange.holes" 1;
  (* failed probes count as unstable, so the range can only shrink *)
  Obs.reset ();
  Fault.clear ();
  let clean = Shil.Lock_range.predict ~tol:1e-3 g ~tank:fixture_tank in
  Alcotest.(check bool) "conservative" true
    (lr.phi_d_max <= clean.phi_d_max +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Pool fan-out and the tongue sweep *)

let test_pool_task_holes () =
  arm "pool-task@4";
  let out =
    Numerics.Pool.parallel_try_map_array ~chunk:1 ~subsystem:Numerics
      ~phase:"pooltest"
      (fun x -> x * x)
      (Array.init 8 Fun.id)
  in
  Array.iteri
    (fun k slot ->
      match (k, slot) with
      | 4, Error e ->
        Alcotest.(check string) "typed fault" "fault-injected" (E.code e)
      | 4, Ok _ -> Alcotest.fail "task 4 must fail"
      | _, Ok v -> Alcotest.(check int) "survivor" (k * k) v
      | _, Error _ -> Alcotest.fail "only task 4 may fail")
    out;
  check_counter "resilience.pool.task_failures" 1

let test_pool_wraps_exceptions () =
  let out =
    Numerics.Pool.parallel_try_map_array ~chunk:1 ~subsystem:Numerics
      ~phase:"pooltest"
      (fun x -> if x = 1 then failwith "boom" else x)
      [| 0; 1; 2 |]
  in
  match out with
  | [| Ok 0; Error e; Ok 2 |] ->
    Alcotest.(check string) "loc" "numerics.pooltest" (E.loc e)
  | _ -> Alcotest.fail "exactly slot 1 must fail"

let test_tongue_holes () =
  arm "pool-task@1";
  let osc = Circuits.Tanh_osc.oscillator Circuits.Tanh_osc.default in
  let pts, failures =
    Experiments.Tongue_experiment.compute ~points:128 ~vis:[ 0.05; 0.15 ]
      osc ~n:3
  in
  Alcotest.(check int) "one surviving cell" 1 (List.length pts);
  Alcotest.(check int) "one hole" 1 (Summary.failed failures);
  Alcotest.(check int) "attempted both" 2 failures.attempted;
  check_counter "resilience.tongue.holes" 1

(* ------------------------------------------------------------------ *)
(* Harmonic balance, measurement, and the S3 fallback paths *)

let test_hb_singular_typed () =
  arm "hb-singular";
  let e =
    expect_error ~kind:"singular-system" (fun () ->
        Shil.Harmonic_balance.solve tanh_nl ~tank:fixture_tank)
  in
  Alcotest.(check string) "loc" "shil.harmonic-balance" (E.loc e)

let test_measure_typed () =
  let s =
    Waveform.Signal.make
      ~times:[| 0.0; 1.0; 2.0; 3.0 |]
      ~values:[| 1.0; 1.0; 1.0; 1.0 |]
  in
  Alcotest.(check (option (float 0.0))) "frequency_opt on flat" None
    (Waveform.Measure.frequency_opt s);
  ignore
    (expect_error ~kind:"measurement-failure" (fun () ->
         Waveform.Measure.frequency s))

let test_solutions_swallow_root_failure () =
  (* Solutions.find refines candidates with Roots.newton2d and drops a
     candidate whose refinement fails — injected root failures must
     yield an empty (not raised) result *)
  let g = small_grid () in
  let clean = Shil.Solutions.find g ~phi_d:0.0 in
  Alcotest.(check bool) "fixture has locks" true (clean <> []);
  arm "roots-fail";
  let pts = Shil.Solutions.find g ~phi_d:0.0 in
  Alcotest.(check int) "all candidates dropped" 0 (List.length pts);
  check_counter_at_least "shil.solutions.refine_fails" 1

let test_self_consistent_swallow_root_failure () =
  let omega_i = Shil.Tank.omega_c fixture_tank in
  arm "roots-fail";
  let pts =
    Shil.Self_consistent.find ~points:128 tanh_nl ~tank:fixture_tank ~n:3
      ~vi:0.2 ~omega_i
  in
  Alcotest.(check int) "refinement failures fall back to no locks" 0
    (List.length pts)

let () =
  let t name f = Alcotest.test_case name `Quick (with_env f) in
  Alcotest.run "resilience"
    [
      ( "fault",
        [
          t "plan grammar" test_fault_parse;
          t "fire windows and determinism" test_fault_fire;
          t "injected error value" test_fault_error_value;
        ] );
      ( "error",
        [
          t "rendering" test_error_render;
          t "of_exn" test_error_of_exn;
          t "raise_ bumps counters" test_raise_counters;
        ] );
      ( "policy",
        [
          t "ladder recovers" test_escalate_recovery;
          t "ladder exhausts" test_escalate_all_fail;
          t "retry budget" test_escalate_retry_budget;
          t "typed abort" test_escalate_typed_abort;
        ] );
      ( "op",
        [
          t "rung-by-rung recovery" test_op_rung_recovery;
          t "ladder exhausted" test_op_ladder_exhausted;
        ] );
      ( "transient",
        [
          t "step halving recovers" test_transient_step_halving_recovers;
          t "degrades to partial waveform" test_transient_degrades_to_partial;
          t "fail-fast raises" test_transient_fail_fast;
          t "rejected-step budget" test_transient_rejection_budget;
        ] );
      ( "grid",
        [
          t "holes" test_grid_holes;
          t "fail-fast raises" test_grid_fail_fast;
          t "zero faults bit-identical" test_grid_zero_fault_bit_identity;
        ] );
      ( "lockrange",
        [
          t "partial result with bad grid point"
            test_lock_range_with_bad_grid_point;
          t "probe holes are conservative" test_lock_probe_holes;
        ] );
      ( "fanout",
        [
          t "pool task holes" test_pool_task_holes;
          t "pool wraps exceptions" test_pool_wraps_exceptions;
          t "tongue sweep holes" test_tongue_holes;
        ] );
      ( "paths",
        [
          t "hb singular is typed" test_hb_singular_typed;
          t "measurement failure is typed" test_measure_typed;
          t "solutions drop failed refinements"
            test_solutions_swallow_root_failure;
          t "self-consistent drops failed refinements"
            test_self_consistent_swallow_root_failure;
        ] );
    ]
