(* Tests for the typed-AST analyzer (tools/dsa). The modules under
   dsa_fixtures/ are each built to trigger (or deliberately not
   trigger) one diagnostic code; the analyzer reads their .cmt
   artifacts straight out of the build tree. The same fixtures are
   snapshotted as `dsa --json` golden output by the rule in ./dune. *)

module D = Check.Diagnostic
module Analyze = Dsa_core.Analyze
module Waiver = Dsa_core.Waiver

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds
let error_codes ds = codes (D.errors ds)

let check_codes msg expected ds =
  Alcotest.(check (list string)) msg expected (List.sort_uniq String.compare ds)

(* The test binary runs in _build/default/test, where the fixture
   library's artifacts live under dsa_fixtures/.dsa_fixtures.objs and
   cmt_sourcefile paths ("test/dsa_fixtures/x.ml") resolve against the
   build-context root one level up. *)
let cmt name =
  Printf.sprintf "dsa_fixtures/.dsa_fixtures.objs/byte/dsa_fixtures__%s.cmt"
    name

let analyze name = Analyze.analyze_file ~src_root:".." (cmt name)

let fixture name ~errors ~warnings () =
  let ds = analyze name in
  check_codes (name ^ " errors") errors (error_codes ds);
  check_codes (name ^ " warnings") warnings
    (codes (List.filter (fun (d : D.t) -> d.D.severity = D.Warning) ds))

(* ------------------------------------------------------------------ *)
(* One failing and one passing fixture per rule family. *)

let test_domain_escape_bad = fixture "Bad_pool_escape"
    ~errors:[ "domain-escape" ] ~warnings:[]

let test_domain_escape_ok = fixture "Ok_pool_atomic" ~errors:[] ~warnings:[]

let test_cache_purity_bad = fixture "Bad_cache_key"
    ~errors:[ "cache-purity" ] ~warnings:[]

let test_cache_purity_bad_count () =
  (* make-without-key, mutable read, nondet clock: three distinct sites *)
  Alcotest.(check int) "three findings" 3
    (List.length (D.errors (analyze "Bad_cache_key")))

let test_cache_purity_ok = fixture "Ok_cache_key" ~errors:[] ~warnings:[]

let test_float_order_bad = fixture "Bad_float_order"
    ~errors:[ "float-order" ] ~warnings:[]

let test_float_order_ok = fixture "Ok_float_order" ~errors:[] ~warnings:[]

let test_raise_escape_bad = fixture "Bad_raise_escape"
    ~errors:[ "raise-escape" ] ~warnings:[]

let test_raise_escape_ok = fixture "Ok_raise_escape" ~errors:[] ~warnings:[]

(* ------------------------------------------------------------------ *)
(* Waiver semantics. *)

let test_waived_ok = fixture "Ok_waived"
    ~errors:[] ~warnings:[ "unused-waiver" ]

let test_bad_waiver = fixture "Bad_waiver"
    ~errors:[ "float-order" ] ~warnings:[ "bad-waiver" ]

let test_waiver_scan () =
  let ws =
    Waiver.scan
      "let a = 1\n\
       (* dsa: allow float-order — table is sorted before folding *)\n\
       let b = 2\n\
       (* dsa: allow domain-escape *)\n\
       let s = \"(* dsa: allow cache-purity — inert in a string *)\"\n\
       let q = {id_x|(* dsa: allow raise-escape — inert in quoted *)|id_x}\n"
  in
  Alcotest.(check (list (pair string bool)))
    "codes and justification"
    [ ("float-order", true); ("domain-escape", false) ]
    (List.map (fun (w : Waiver.t) -> (w.Waiver.code, w.Waiver.justified)) ws);
  let w = List.hd ws in
  Alcotest.(check bool) "covers same line" true
    (Waiver.covers w ~code:"float-order" ~line:2);
  Alcotest.(check bool) "covers line below" true
    (Waiver.covers w ~code:"float-order" ~line:3);
  Alcotest.(check bool) "not two lines below" false
    (Waiver.covers w ~code:"float-order" ~line:4);
  Alcotest.(check bool) "wrong code" false
    (Waiver.covers w ~code:"domain-escape" ~line:2)

(* ------------------------------------------------------------------ *)
(* The report aggregator and the lib/ cleanliness contract. *)

let test_run_report () =
  let report = Analyze.run ~src_root:".." [ "dsa_fixtures" ] in
  Alcotest.(check bool) "analyzed all fixture modules" true
    (report.Analyze.modules >= 10);
  Alcotest.(check int) "one suppressed finding" 1 report.Analyze.waived;
  let files = List.map fst report.Analyze.diags in
  Alcotest.(check bool) "files sorted" true
    (files = List.sort String.compare files);
  Alcotest.(check bool) "ok fixtures absent" true
    (not
       (List.exists
          (fun f -> Filename.basename f = "ok_pool_atomic.ml")
          files))

let test_lib_clean () =
  (* the @analyze alias enforces this at build time; asserting it here
     too keeps the contract visible in the unit-test report *)
  let report = Analyze.run ~src_root:".." [ "../lib" ] in
  Alcotest.(check bool) "lib modules found" true (report.Analyze.modules > 50);
  List.iter
    (fun (file, ds) -> check_codes file [] (codes ds))
    report.Analyze.diags

let () =
  Alcotest.run "dsa"
    [
      ( "domain-escape",
        [
          Alcotest.test_case "bad: shared ref in pool closure" `Quick
            test_domain_escape_bad;
          Alcotest.test_case "ok: atomic / with_bufs / parallel_init" `Quick
            test_domain_escape_ok;
        ] );
      ( "cache-purity",
        [
          Alcotest.test_case "bad: keyless make, mutable + clock in key"
            `Quick test_cache_purity_bad;
          Alcotest.test_case "bad: all three sites found" `Quick
            test_cache_purity_bad_count;
          Alcotest.test_case "ok: keyed make, args-only key" `Quick
            test_cache_purity_ok;
        ] );
      ( "float-order",
        [
          Alcotest.test_case "bad: Hashtbl.fold into float" `Quick
            test_float_order_bad;
          Alcotest.test_case "ok: sorted keys then fold" `Quick
            test_float_order_ok;
        ] );
      ( "raise-escape",
        [
          Alcotest.test_case "bad: undocumented Invalid_argument" `Quick
            test_raise_escape_bad;
          Alcotest.test_case "ok: documented / caught / typed" `Quick
            test_raise_escape_ok;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "justified waiver suppresses" `Quick
            test_waived_ok;
          Alcotest.test_case "unjustified waiver reported, finding stays"
            `Quick test_bad_waiver;
          Alcotest.test_case "scanner: comments only, strings inert" `Quick
            test_waiver_scan;
        ] );
      ( "report",
        [
          Alcotest.test_case "aggregation and ordering" `Quick
            test_run_report;
          Alcotest.test_case "lib/ is analyzer-clean" `Quick test_lib_clean;
        ] );
    ]
