(* Tests for the runtime telemetry layer (lib/obs): span recording and
   nesting, metric semantics, sink round-trips, and the contract that
   enabling telemetry never changes numerical results. *)

(* The registry is process-global; every test starts from a clean,
   disabled state and leaves it that way. *)
let fresh f () =
  Obs.set_enabled false;
  Obs.set_events_enabled false;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.set_events_enabled false;
      Obs.reset ())
    f

let test_disabled_is_noop () =
  let v = Obs.Span.with_ ~name:"t.span" (fun () -> 41 + 1) in
  Alcotest.(check int) "span returns f's value" 42 v;
  Obs.Metrics.incr "t.counter";
  Obs.Metrics.set_gauge "t.gauge" 1.0;
  Obs.Metrics.register_histogram ~name:"t.h0" ~buckets:[| 1.0 |];
  Obs.Metrics.observe "t.h0" 0.5;
  let s = Obs.snapshot () in
  Alcotest.(check int) "no spans recorded" 0 (List.length s.Obs.Registry.spans);
  Alcotest.(check int) "no counters recorded" 0
    (List.length s.Obs.Registry.counters);
  Alcotest.(check int) "no hist samples recorded" 0
    (List.length s.Obs.Registry.hists)

let test_span_nesting_and_ordering () =
  Obs.set_enabled true;
  Obs.Span.with_ ~name:"outer" (fun () ->
      Obs.Span.with_ ~name:"inner_a" (fun () -> ignore (Sys.opaque_identity 1));
      Obs.Span.with_ ~name:"inner_b" (fun () -> ignore (Sys.opaque_identity 2)));
  let s = Obs.snapshot () in
  let spans = s.Obs.Registry.spans in
  Alcotest.(check (list string))
    "timestamp order: outer starts first, then a, then b"
    [ "outer"; "inner_a"; "inner_b" ]
    (List.map (fun (e : Obs.Registry.span_ev) -> e.name) spans);
  let find n =
    List.find (fun (e : Obs.Registry.span_ev) -> e.name = n) spans
  in
  let outer = find "outer" and a = find "inner_a" and b = find "inner_b" in
  Alcotest.(check int) "outer depth" 0 outer.depth;
  Alcotest.(check int) "inner_a depth" 1 a.depth;
  Alcotest.(check int) "inner_b depth" 1 b.depth;
  let ends (e : Obs.Registry.span_ev) = Int64.add e.ts_ns e.dur_ns in
  let contains (o : Obs.Registry.span_ev) (i : Obs.Registry.span_ev) =
    Int64.compare o.ts_ns i.ts_ns <= 0 && Int64.compare (ends i) (ends o) <= 0
  in
  Alcotest.(check bool) "outer contains inner_a" true (contains outer a);
  Alcotest.(check bool) "outer contains inner_b" true (contains outer b);
  Alcotest.(check bool) "inner_a ends before inner_b starts" true
    (Int64.compare (ends a) b.ts_ns <= 0)

let test_span_records_on_exception () =
  Obs.set_enabled true;
  (try Obs.Span.with_ ~name:"raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  let s = Obs.snapshot () in
  Alcotest.(check (list string))
    "span recorded despite the raise" [ "raises" ]
    (List.map (fun (e : Obs.Registry.span_ev) -> e.name) s.Obs.Registry.spans)

let test_counters_across_domains () =
  Obs.set_enabled true;
  let p = Numerics.Pool.create ~size:4 in
  Fun.protect
    ~finally:(fun () -> Numerics.Pool.shutdown p)
    (fun () ->
      Numerics.Pool.parallel_for ~pool:p ~chunk:7 ~n:1000 (fun _ ->
          Obs.Metrics.incr "t.hits"));
  Alcotest.(check int) "increments merge across worker domains" 1000
    (Obs.Metrics.counter_value "t.hits")

let test_histogram_buckets () =
  Obs.set_enabled true;
  Obs.Metrics.register_histogram ~name:"t.hist" ~buckets:[| 1.0; 2.0; 5.0 |];
  List.iter (Obs.Metrics.observe "t.hist") [ 0.5; 1.0; 1.5; 2.0; 5.0; 7.0 ];
  let s = Obs.snapshot () in
  let _, bounds, counts =
    List.find (fun (n, _, _) -> n = "t.hist") s.Obs.Registry.hists
  in
  Alcotest.(check (array (float 0.0))) "bounds" [| 1.0; 2.0; 5.0 |] bounds;
  (* v lands in the first bucket with v <= bound; 7.0 overflows *)
  Alcotest.(check (array int)) "counts" [| 2; 2; 1; 1 |] counts;
  (* re-registration with different buckets is ignored (first wins) *)
  Obs.Metrics.register_histogram ~name:"t.hist" ~buckets:[| 10.0 |];
  Obs.Metrics.observe "t.hist" 0.1;
  let s = Obs.snapshot () in
  let _, bounds, _ =
    List.find (fun (n, _, _) -> n = "t.hist") s.Obs.Registry.hists
  in
  Alcotest.(check int) "bounds unchanged" 3 (Array.length bounds)

let test_histogram_bad_buckets () =
  Alcotest.check_raises "descending bounds rejected"
    (Invalid_argument
       "Obs.Metrics.register_histogram: bounds must be finite and strictly \
        ascending")
    (fun () ->
      Obs.Metrics.register_histogram ~name:"t.bad" ~buckets:[| 2.0; 1.0 |])

let test_gauge_last_write_wins () =
  Obs.set_enabled true;
  Obs.Metrics.set_gauge "t.g" 1.0;
  Obs.Metrics.set_gauge "t.g" 3.5;
  let s = Obs.snapshot () in
  Alcotest.(check (float 0.0))
    "latest value" 3.5
    (List.assoc "t.g" s.Obs.Registry.gauges)

let with_temp_file suffix f =
  let path = Filename.temp_file "oshil_obs_test" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let populate () =
  Obs.set_enabled true;
  Obs.Metrics.register_histogram ~name:"t.rt_hist" ~buckets:[| 1.0; 10.0 |];
  Obs.Span.with_ ~name:"rt.outer" ~attrs:[ ("k", "v one") ] (fun () ->
      Obs.Span.with_ ~name:"rt.inner" (fun () ->
          Obs.Metrics.incr ~by:7 "t.rt_counter"));
  Obs.Metrics.set_gauge "t.rt_gauge" 2.25;
  Obs.Metrics.observe "t.rt_hist" 0.5;
  Obs.Metrics.observe "t.rt_hist" 100.0;
  Obs.snapshot ()

let test_jsonl_round_trip () =
  let s = populate () in
  with_temp_file ".jsonl" (fun path ->
      Obs.Sink.jsonl ~path s;
      let back = Obs.Trace_read.load path in
      Alcotest.(check int)
        "span count" (List.length s.Obs.Registry.spans)
        (List.length back.Obs.Registry.spans);
      List.iter2
        (fun (a : Obs.Registry.span_ev) (b : Obs.Registry.span_ev) ->
          Alcotest.(check string) "span name" a.name b.name;
          Alcotest.(check int64) "span ts" a.ts_ns b.ts_ns;
          Alcotest.(check int64) "span dur" a.dur_ns b.dur_ns;
          Alcotest.(check int) "span depth" a.depth b.depth;
          Alcotest.(check (list (pair string string))) "span attrs" a.attrs
            b.attrs)
        s.Obs.Registry.spans back.Obs.Registry.spans;
      Alcotest.(check (list (pair string int)))
        "counters" s.Obs.Registry.counters back.Obs.Registry.counters;
      Alcotest.(check (list (pair string (float 0.0))))
        "gauges" s.Obs.Registry.gauges back.Obs.Registry.gauges;
      List.iter2
        (fun (n, bounds, counts) (n', bounds', counts') ->
          Alcotest.(check string) "hist name" n n';
          Alcotest.(check (array (float 0.0))) "hist bounds" bounds bounds';
          Alcotest.(check (array int)) "hist counts" counts counts')
        s.Obs.Registry.hists back.Obs.Registry.hists)

let test_jsonl_merge_sums_counters () =
  let s = populate () in
  with_temp_file ".jsonl" (fun path ->
      Obs.Sink.jsonl ~path s;
      let back = Obs.Trace_read.load_many [ path; path ] in
      Alcotest.(check int)
        "counters sum across files"
        (2 * List.assoc "t.rt_counter" s.Obs.Registry.counters)
        (List.assoc "t.rt_counter" back.Obs.Registry.counters);
      let _, _, counts =
        List.find (fun (n, _, _) -> n = "t.rt_hist") back.Obs.Registry.hists
      in
      Alcotest.(check (array int)) "hist counts doubled" [| 2; 0; 2 |] counts)

let test_chrome_trace_is_json () =
  let s = populate () in
  match Obs.Trace_read.json_of_string (Obs.Sink.chrome_trace_string s) with
  | Obs.Trace_read.Obj fields ->
    Alcotest.(check bool) "has traceEvents" true
      (List.mem_assoc "traceEvents" fields);
    let events =
      match List.assoc "traceEvents" fields with
      | Obs.Trace_read.Arr l -> l
      | _ -> Alcotest.fail "traceEvents is not an array"
    in
    let span_names =
      List.filter_map
        (function
          | Obs.Trace_read.Obj ev -> begin
            match (List.assoc_opt "ph" ev, List.assoc_opt "name" ev) with
            | Some (Obs.Trace_read.Str "X"), Some (Obs.Trace_read.Str n) ->
              Some n
            | _ -> None
          end
          | _ -> None)
        events
    in
    Alcotest.(check (list string))
      "complete events in order" [ "rt.outer"; "rt.inner" ] span_names
  | _ -> Alcotest.fail "chrome trace is not a JSON object"

let test_summary_headline_counters () =
  let s = Obs.snapshot () in
  let out = Format.asprintf "%a" Obs.Sink.summary s in
  List.iter
    (fun c ->
      let sub_ok =
        let cl = String.length c and ol = String.length out in
        let rec go i = i + cl <= ol && (String.sub out i cl = c || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (c ^ " always shown") true sub_ok)
    Obs.Sink.headline_counters

let test_stats_accessor () =
  let before = Numerics.Pool.stats () in
  let p = Numerics.Pool.create ~size:3 in
  Fun.protect
    ~finally:(fun () -> Numerics.Pool.shutdown p)
    (fun () ->
      Numerics.Pool.parallel_for ~pool:p ~chunk:10 ~n:200 (fun i ->
          ignore (Sys.opaque_identity (float_of_int i *. 2.0))));
  let after = Numerics.Pool.stats () in
  Alcotest.(check int) "20 chunks recorded" 20
    (after.Numerics.Pool.tasks - before.Numerics.Pool.tasks);
  Alcotest.(check bool) "busy time advanced" true
    (Int64.compare after.Numerics.Pool.busy_ns before.Numerics.Pool.busy_ns
     >= 0);
  Alcotest.(check bool) "per-domain entries exist" true
    (Array.length after.Numerics.Pool.per_domain > 0)

(* ------------------------------------------------------------------ *)
(* Introspection event stream (Obs.Event) *)

let sample_events () =
  let c = Obs.Event.ctx ~cell:(0.1, 1.0) "t.solver" in
  Obs.Event.emit
    (Obs.Event.Newton_iter
       { ctx = c; iter = 1; residual = 0.25; step = 0.5; damping = 1.0 });
  Obs.Event.emit
    (Obs.Event.Newton_done
       { ctx = c; iters = 3; converged = true; residual = 1e-12 });
  Obs.Event.emit
    (Obs.Event.Tran_step { t = 0.0; dt = 1e-9; accepted = true; lte = 1e-8 });
  Obs.Event.emit
    (Obs.Event.Bracket
       { site = "t.site"; lo = 0.0; hi = 1.0; probe = 0.5; hit = true });
  Obs.Event.emit (Obs.Event.Cache_access { kind = "t.kind"; outcome = "miss" });
  Obs.Event.emit
    (Obs.Event.Pool_sample { domains = 2; tasks = 8; busy_ns = 1234L })

let test_events_off_is_noop () =
  (* spans on, events off: the separate gate must hold *)
  Obs.set_enabled true;
  Alcotest.(check bool) "events off by default" false (Obs.events_enabled ());
  sample_events ();
  Obs.Event.gc_sample ~where:"t.here" ();
  let s = Obs.snapshot () in
  Alcotest.(check int) "no events recorded" 0
    (List.length s.Obs.Registry.events)

let test_events_recorded_and_typed () =
  Obs.set_events_enabled true;
  sample_events ();
  let s = Obs.snapshot () in
  let payloads =
    List.map (fun (e : Obs.Registry.event_ev) -> e.payload) s.Obs.Registry.events
  in
  Alcotest.(check int) "all six events recorded" 6 (List.length payloads);
  let count p = List.length (List.filter p payloads) in
  Alcotest.(check int) "one newton_iter" 1
    (count (function Obs.Registry.Newton_iter _ -> true | _ -> false));
  Alcotest.(check int) "one newton_done" 1
    (count (function Obs.Registry.Newton_done _ -> true | _ -> false));
  (match
     List.find
       (function Obs.Registry.Newton_done _ -> true | _ -> false)
       payloads
   with
  | Obs.Registry.Newton_done { ctx; iters; converged; residual } ->
    Alcotest.(check string) "solver carried" "t.solver" ctx.solver;
    Alcotest.(check (option (pair (float 0.0) (float 0.0))))
      "cell carried" (Some (0.1, 1.0)) ctx.cell;
    Alcotest.(check int) "iters" 3 iters;
    Alcotest.(check bool) "converged" true converged;
    Alcotest.(check (float 0.0)) "residual" 1e-12 residual
  | _ -> Alcotest.fail "unreachable")

let test_events_jsonl_round_trip () =
  Obs.set_events_enabled true;
  sample_events ();
  Obs.Event.gc_sample ~where:"t.rt" ();
  let s = Obs.snapshot () in
  with_temp_file ".jsonl" (fun path ->
      Obs.Sink.jsonl ~path s;
      let back = Obs.Trace_read.load path in
      Alcotest.(check int)
        "event count survives" (List.length s.Obs.Registry.events)
        (List.length back.Obs.Registry.events);
      List.iter2
        (fun (a : Obs.Registry.event_ev) (b : Obs.Registry.event_ev) ->
          Alcotest.(check int64) "event ts" a.ts_ns b.ts_ns;
          Alcotest.(check bool) "payload round-trips" true
            (a.payload = b.payload))
        s.Obs.Registry.events back.Obs.Registry.events)

(* ------------------------------------------------------------------ *)
(* Run-health reports (Obs.Report) *)

let health_fixture = "fixtures/trace_health.jsonl"

let test_report_deterministic () =
  let r1 = Obs.Report.of_snapshot (Obs.Trace_read.load health_fixture) in
  let r2 = Obs.Report.of_snapshot (Obs.Trace_read.load health_fixture) in
  Alcotest.(check string)
    "same trace renders to byte-identical JSON" (Obs.Report.to_json r1)
    (Obs.Report.to_json r2);
  Alcotest.(check string)
    "human table is deterministic too"
    (Format.asprintf "%a" Obs.Report.pp r1)
    (Format.asprintf "%a" Obs.Report.pp r2)

let test_report_solver_facts () =
  let r = Obs.Report.of_snapshot (Obs.Trace_read.load health_fixture) in
  let refine =
    List.find (fun s -> s.Obs.Report.ssolver = "shil.refine") r.Obs.Report.solvers
  in
  Alcotest.(check int) "two refine solves" 2 refine.Obs.Report.solves;
  Alcotest.(check int) "one converged" 1 refine.Obs.Report.converged_n;
  Alcotest.(check int) "max iters from newton_done" 8
    refine.Obs.Report.iters_max;
  (* worst cell ranks the unconverged solve first *)
  (match r.Obs.Report.worst with
  | w :: _ ->
    Alcotest.(check bool) "worst cell is the unconverged one" false
      w.Obs.Report.converged;
    Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
      "worst cell coordinates" (Some (0.2, 1.1)) w.Obs.Report.cell
  | [] -> Alcotest.fail "no worst cells ranked");
  (match r.Obs.Report.steps with
  | Some st ->
    Alcotest.(check int) "accepted steps" 2 st.Obs.Report.accepted;
    Alcotest.(check int) "rejected steps" 1 st.Obs.Report.rejected
  | None -> Alcotest.fail "no step stats");
  let br =
    List.find
      (fun b -> b.Obs.Report.site = "shil.lockrange.phi_d")
      r.Obs.Report.brackets
  in
  Alcotest.(check int) "bracket probes" 3 br.Obs.Report.probes;
  Alcotest.(check (float 1e-9)) "bracket narrowed" 0.25 br.Obs.Report.width

let test_merge_order_stable () =
  (* two distinct snapshots written to two files: merged report must
     not depend on the order the files are given *)
  Obs.set_enabled true;
  Obs.set_events_enabled true;
  Obs.Span.with_ ~name:"m.a" (fun () -> ignore (Sys.opaque_identity 1));
  Obs.Metrics.incr ~by:3 "m.counter";
  sample_events ();
  let s1 = Obs.snapshot () in
  Obs.reset ();
  Obs.Span.with_ ~name:"m.b" (fun () -> ignore (Sys.opaque_identity 2));
  Obs.Metrics.incr ~by:4 "m.counter";
  Obs.Event.emit
    (Obs.Event.Cache_access { kind = "t.kind"; outcome = "memory" });
  let s2 = Obs.snapshot () in
  with_temp_file ".jsonl" (fun p1 ->
      with_temp_file ".jsonl" (fun p2 ->
          Obs.Sink.jsonl ~path:p1 s1;
          Obs.Sink.jsonl ~path:p2 s2;
          let ab = Obs.Trace_read.load_many [ p1; p2 ] in
          let ba = Obs.Trace_read.load_many [ p2; p1 ] in
          Alcotest.(check string)
            "merged report independent of file order"
            (Obs.Report.to_json (Obs.Report.of_snapshot ab))
            (Obs.Report.to_json (Obs.Report.of_snapshot ba));
          Alcotest.(check int) "counters sum" 7
            (List.assoc "m.counter" ab.Obs.Registry.counters)))

let test_quantile_estimates () =
  let bounds = [| 1.0; 2.0; 4.0; 8.0 |] in
  (* 10 in (..1], 25 in (1..2], 6 in (2..4], 1 in (4..8], 0 overflow *)
  let counts = [| 10; 25; 6; 1; 0 |] in
  Alcotest.(check (float 0.0)) "p50" 2.0 (Obs.Sink.quantile bounds counts 0.50);
  Alcotest.(check (float 0.0)) "p90" 4.0 (Obs.Sink.quantile bounds counts 0.90);
  Alcotest.(check (float 0.0)) "p99" 8.0 (Obs.Sink.quantile bounds counts 0.99);
  (* overflow samples clamp to the last bound *)
  Alcotest.(check (float 0.0)) "overflow clamps" 8.0
    (Obs.Sink.quantile bounds [| 0; 0; 0; 0; 5 |] 0.99);
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Obs.Sink.quantile bounds [| 0; 0; 0; 0; 0 |] 0.5))

(* The load-bearing contract: running the full analysis with telemetry
   on must be bit-identical to running it with telemetry off. *)
let test_tracing_preserves_results () =
  let osc =
    Circuits.Tanh_osc.oscillator Circuits.Tanh_osc.default
  in
  let run () =
    Shil.Analysis.run ~points:128 ~n_phi:31 ~n_amp:21 osc ~n:3 ~vi:0.03
  in
  Obs.set_enabled false;
  let off = run () in
  Obs.set_enabled true;
  let on = run () in
  (* and once more with the per-iteration event stream on top *)
  Obs.set_events_enabled true;
  let ev = run () in
  Obs.set_events_enabled false;
  Obs.set_enabled false;
  Alcotest.(check bool) "grid bit-identical" true
    (off.Shil.Analysis.grid.Shil.Grid.i1 = on.Shil.Analysis.grid.Shil.Grid.i1);
  Alcotest.(check (float 0.0))
    "phi_d_max identical" off.lock_range.Shil.Lock_range.phi_d_max
    on.lock_range.Shil.Lock_range.phi_d_max;
  Alcotest.(check (float 0.0))
    "delta_f_inj identical" off.lock_range.Shil.Lock_range.delta_f_inj
    on.lock_range.Shil.Lock_range.delta_f_inj;
  Alcotest.(check bool) "grid bit-identical with events on" true
    (off.Shil.Analysis.grid.Shil.Grid.i1 = ev.Shil.Analysis.grid.Shil.Grid.i1);
  Alcotest.(check (float 0.0))
    "phi_d_max identical with events on"
    off.lock_range.Shil.Lock_range.phi_d_max
    ev.lock_range.Shil.Lock_range.phi_d_max;
  Alcotest.(check (float 0.0))
    "delta_f_inj identical with events on"
    off.lock_range.Shil.Lock_range.delta_f_inj
    ev.lock_range.Shil.Lock_range.delta_f_inj;
  (* and the traced run actually recorded the expected instrumentation *)
  let s = Obs.snapshot () in
  let names =
    List.sort_uniq String.compare
      (List.map (fun (e : Obs.Registry.span_ev) -> e.name) s.Obs.Registry.spans)
  in
  Alcotest.(check bool) "analysis span present" true
    (List.mem "shil.analysis.run" names);
  Alcotest.(check bool) "grid span present" true
    (List.mem "shil.grid.sample" names);
  Alcotest.(check bool) "f_evals counted" true
    (Obs.Metrics.counter_value "shil.grid.f_evals" > 0);
  Alcotest.(check bool) "events-on run recorded newton introspection" true
    (List.exists
       (fun (e : Obs.Registry.event_ev) ->
         match e.payload with
         | Obs.Registry.Newton_done _ -> true
         | _ -> false)
       s.Obs.Registry.events)

let () =
  Alcotest.run "obs"
    [
      ( "core",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            (fresh test_disabled_is_noop);
          Alcotest.test_case "span nesting and ordering" `Quick
            (fresh test_span_nesting_and_ordering);
          Alcotest.test_case "span recorded on exception" `Quick
            (fresh test_span_records_on_exception);
          Alcotest.test_case "counters merge across domains" `Quick
            (fresh test_counters_across_domains);
          Alcotest.test_case "histogram bucket boundaries" `Quick
            (fresh test_histogram_buckets);
          Alcotest.test_case "histogram rejects bad buckets" `Quick
            (fresh test_histogram_bad_buckets);
          Alcotest.test_case "gauge last-write-wins" `Quick
            (fresh test_gauge_last_write_wins);
        ] );
      ( "sinks",
        [
          Alcotest.test_case "jsonl round-trip" `Quick
            (fresh test_jsonl_round_trip);
          Alcotest.test_case "jsonl multi-file merge" `Quick
            (fresh test_jsonl_merge_sums_counters);
          Alcotest.test_case "chrome trace is well-formed JSON" `Quick
            (fresh test_chrome_trace_is_json);
          Alcotest.test_case "summary shows headline counters" `Quick
            (fresh test_summary_headline_counters);
        ] );
      ( "events",
        [
          Alcotest.test_case "events off is a no-op" `Quick
            (fresh test_events_off_is_noop);
          Alcotest.test_case "events recorded with typed payloads" `Quick
            (fresh test_events_recorded_and_typed);
          Alcotest.test_case "events survive the jsonl round-trip" `Quick
            (fresh test_events_jsonl_round_trip);
        ] );
      ( "report",
        [
          Alcotest.test_case "report is deterministic" `Quick
            (fresh test_report_deterministic);
          Alcotest.test_case "report derives solver facts" `Quick
            (fresh test_report_solver_facts);
          Alcotest.test_case "merged report stable across file order" `Quick
            (fresh test_merge_order_stable);
          Alcotest.test_case "bucketed quantile estimates" `Quick
            (fresh test_quantile_estimates);
        ] );
      ( "integration",
        [
          Alcotest.test_case "Pool.stats accounting" `Quick
            (fresh test_stats_accessor);
          Alcotest.test_case "tracing preserves results bit-for-bit" `Slow
            (fresh test_tracing_preserves_results);
        ] );
    ]
