#!/usr/bin/env bash
# End-to-end smoke of `oshil serve`: daemon lifecycle, the health and
# stats endpoints, protocol robustness (malformed JSON gets a typed
# parse-failure and the daemon keeps serving), CLI/daemon byte-identity
# on a real scenario, fault-injection through the serve-request site
# (retry recovery, and typed degradation with retries off), and the
# graceful SIGTERM drain contract (exit 0, socket removed, trace
# flushed). Driven by `dune build @serve-smoke`; also in CI.
#
# Usage: serve_smoke.sh path/to/oshil.exe path/to/scenario.scn
set -u

OSHIL=${1:?usage: serve_smoke.sh OSHIL_EXE SCENARIO}
SCN=${2:?usage: serve_smoke.sh OSHIL_EXE SCENARIO}
case "$OSHIL" in /*) ;; *) OSHIL=$PWD/$OSHIL ;; esac
case "$SCN" in /*) ;; *) SCN=$PWD/$SCN ;; esac

# Unix socket paths are length-limited (~107 bytes); dune build dirs can
# exceed that, so the sockets live in a throwaway /tmp dir.
DIR=$(mktemp -d /tmp/oshil-serve-smoke.XXXXXX)
SOCK=$DIR/s.sock
SRV=
cleanup() {
  [ -n "$SRV" ] && kill "$SRV" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  exit 1
}

wait_sock() {
  for _ in $(seq 1 200); do
    [ -S "$1" ] && return 0
    sleep 0.05
  done
  return 1
}

drain() { # drain <pid> <what>: SIGTERM must be a clean exit-0 shutdown
  kill -TERM "$1" 2>/dev/null || fail "$2: daemon already gone"
  wait "$1"
  rc=$?
  [ "$rc" -eq 0 ] || fail "$2: drain exited $rc (want 0)"
  SRV=
}

# --- leg 1: lifecycle, endpoints, robustness, byte-identity ----------

"$OSHIL" serve -l "unix:$SOCK" --trace "$DIR/t1.jsonl" \
  > "$DIR/srv1.log" 2>&1 &
SRV=$!
wait_sock "$SOCK" || fail "daemon socket never appeared"

"$OSHIL" call -c "unix:$SOCK" health | grep -q '"status":"ok"' \
  || fail "health endpoint"

# the report field carries the stats JSON as an escaped string
"$OSHIL" call -c "unix:$SOCK" stats | grep -qF '\"queue\":{\"depth\":' \
  || fail "stats endpoint"

# a garbage line must come back as a typed parse-failure...
"$OSHIL" call -c "unix:$SOCK" --raw 'this is not json' \
  | grep -q '"code":"parse-failure"' || fail "malformed line not typed"

# ...and must not have taken the daemon down
"$OSHIL" call -c "unix:$SOCK" ping | grep -q '"report":"pong"' \
  || fail "daemon did not survive malformed input"

# the daemon's response bytes are exactly the in-process Api bytes
"$OSHIL" api scenario --file "$SCN" --id smoke > "$DIR/local.out"
"$OSHIL" call -c "unix:$SOCK" scenario --file "$SCN" --id smoke \
  > "$DIR/wire.out"
diff "$DIR/local.out" "$DIR/wire.out" \
  || fail "daemon response differs from local api"

drain "$SRV" "leg1"
[ ! -e "$SOCK" ] || fail "socket file not removed on drain"

# --- leg 2: transient fault at serve-request -> retry recovers -------

OSHIL_FAULTS=serve-request@0 "$OSHIL" serve -l "unix:$SOCK" \
  --backoff 0.01 --trace "$DIR/t2.jsonl" > "$DIR/srv2.log" 2>&1 &
SRV=$!
wait_sock "$SOCK" || fail "leg2: daemon socket never appeared"

"$OSHIL" call -c "unix:$SOCK" ping | grep -q '"status":"ok"' \
  || fail "retry did not recover the faulted request"

drain "$SRV" "leg2"
"$OSHIL" stats "$DIR/t2.jsonl" \
  --assert-counter resilience.faults.serve-request \
  --assert-counter serve.retries > /dev/null \
  || fail "leg2: fault/retry counters missing from flushed trace"

# --- leg 3: retries off -> typed degradation, daemon survives --------

OSHIL_FAULTS=serve-request "$OSHIL" serve -l "unix:$SOCK" \
  --retries 0 --trace "$DIR/t3.jsonl" > "$DIR/srv3.log" 2>&1 &
SRV=$!
wait_sock "$SOCK" || fail "leg3: daemon socket never appeared"

"$OSHIL" call -c "unix:$SOCK" ping | grep -q '"code":"fault-injected"' \
  || fail "injected fault not surfaced as a typed error"

# health is answered inline, outside the faulted worker path
"$OSHIL" call -c "unix:$SOCK" health | grep -q '"status":"ok"' \
  || fail "daemon did not survive the injected fault"

drain "$SRV" "leg3"
"$OSHIL" stats "$DIR/t3.jsonl" \
  --assert-counter resilience.faults.serve-request > /dev/null \
  || fail "leg3: fault counter missing from flushed trace"

echo "serve-smoke: PASS"
