(* Unit tests for the bench regression sentinel
   (Experiments.Bench_compare): the per-metric direction policy, the
   judge, and the gate that `bench --compare` exits nonzero on. *)

open Experiments

let entry ?(name = "bench_x") ?(wall_s = 1.0) ?(speedup = 2.0) ?(extra = []) ()
    =
  {
    Bench_json.name;
    jobs = 4;
    wall_s;
    speedup_vs_seq = speedup;
    extra;
    meta = [];
  }

let verdict_of findings metric =
  match
    List.find_opt (fun f -> f.Bench_compare.metric = metric) findings
  with
  | Some f -> f.Bench_compare.verdict
  | None -> Alcotest.failf "no finding for metric %s" metric

let vrd = Alcotest.testable
    (Fmt.of_to_string (function
      | Bench_compare.Ok -> "Ok"
      | Improved -> "Improved"
      | Regression -> "Regression"
      | New_metric -> "New_metric"
      | Missing_metric -> "Missing_metric"))
    ( = )

let test_classify_policy () =
  let check name expect =
    let got =
      match Bench_compare.classify name with
      | Bench_compare.Lower_better t -> Printf.sprintf "lower(%g)" t
      | Higher_better t -> Printf.sprintf "higher(%g)" t
      | Witness -> "witness"
      | Ceiling c -> Printf.sprintf "ceiling(%g)" c
      | Informational -> "info"
    in
    Alcotest.(check string) name expect got
  in
  check "wall_s" "lower(0.5)";
  check "scalar_wall_s" "lower(0.5)";
  check "speedup_vs_seq" "higher(0.3)";
  check "speedup_batch_vs_scalar" "higher(0.3)";
  check "bit_identical_to_seq" "witness";
  check "batch_bit_identical_to_scalar" "witness";
  check "reduced_max_rel_err" "ceiling(1e-06)";
  check "gc_minor_words" "lower(0.25)";
  check "shil_grid_f_evals" "lower(0.05)";
  check "spice_newton_iters" "lower(0.05)";
  check "n_phi" "info";
  check "points" "info"

let test_within_tolerance_is_ok () =
  let baseline = entry ~wall_s:1.0 ~speedup:2.0 () in
  let fresh = entry ~wall_s:1.3 ~speedup:1.8 () in
  let fs = Bench_compare.compare_entries ~baseline ~fresh in
  Alcotest.check vrd "wall_s +30% within 50% band" Bench_compare.Ok
    (verdict_of fs "wall_s");
  Alcotest.check vrd "speedup -10% within 30% band" Bench_compare.Ok
    (verdict_of fs "speedup_vs_seq");
  Alcotest.(check bool) "gate passes" true (Bench_compare.gate fs)

let test_wall_regression_gates () =
  let baseline = entry ~wall_s:1.0 () in
  let fresh = entry ~wall_s:1.6 () in
  let fs = Bench_compare.compare_entries ~baseline ~fresh in
  Alcotest.check vrd "wall_s +60% regresses" Bench_compare.Regression
    (verdict_of fs "wall_s");
  Alcotest.(check bool) "gate fails" false (Bench_compare.gate fs);
  Alcotest.(check int) "regressions subset non-empty" 1
    (List.length
       (List.filter
          (fun f -> f.Bench_compare.metric = "wall_s")
          (Bench_compare.regressions fs)))

let test_improvement_never_gates () =
  let baseline = entry ~wall_s:1.0 ~speedup:2.0 () in
  let fresh = entry ~wall_s:0.4 ~speedup:3.5 () in
  let fs = Bench_compare.compare_entries ~baseline ~fresh in
  Alcotest.check vrd "wall_s improved" Bench_compare.Improved
    (verdict_of fs "wall_s");
  Alcotest.check vrd "speedup improved" Bench_compare.Improved
    (verdict_of fs "speedup_vs_seq");
  Alcotest.(check bool) "gate passes" true (Bench_compare.gate fs)

let test_witness_must_not_drop () =
  let baseline = entry ~extra:[ ("bit_identical_to_seq", 1.0) ] () in
  let ok = entry ~extra:[ ("bit_identical_to_seq", 1.0) ] () in
  let bad = entry ~extra:[ ("bit_identical_to_seq", 0.0) ] () in
  Alcotest.(check bool) "witness held" true
    (Bench_compare.gate (Bench_compare.compare_entries ~baseline ~fresh:ok));
  let fs = Bench_compare.compare_entries ~baseline ~fresh:bad in
  Alcotest.check vrd "witness dropped" Bench_compare.Regression
    (verdict_of fs "bit_identical_to_seq");
  Alcotest.(check bool) "gate fails on dropped witness" false
    (Bench_compare.gate fs)

let test_ceiling_is_absolute () =
  let baseline = entry ~extra:[ ("reduced_max_rel_err", 1e-15) ] () in
  let ok = entry ~extra:[ ("reduced_max_rel_err", 1e-9) ] () in
  let bad = entry ~extra:[ ("reduced_max_rel_err", 1e-3) ] () in
  Alcotest.(check bool) "under the ceiling passes despite huge rel delta" true
    (Bench_compare.gate (Bench_compare.compare_entries ~baseline ~fresh:ok));
  let fs = Bench_compare.compare_entries ~baseline ~fresh:bad in
  Alcotest.check vrd "over the ceiling regresses" Bench_compare.Regression
    (verdict_of fs "reduced_max_rel_err")

let test_new_metric_never_gates () =
  (* committed baselines predate the gc_* fields: their appearance in
     fresh records must not gate *)
  let baseline = entry () in
  let fresh = entry ~extra:[ ("gc_minor_words", 12345.0) ] () in
  let fs = Bench_compare.compare_entries ~baseline ~fresh in
  Alcotest.check vrd "fresh-only metric is New_metric" Bench_compare.New_metric
    (verdict_of fs "gc_minor_words");
  Alcotest.(check bool) "gate passes" true (Bench_compare.gate fs)

let test_missing_gated_metric_gates () =
  let baseline = entry ~extra:[ ("shil_grid_f_evals", 651.0) ] () in
  let fresh = entry () in
  let fs = Bench_compare.compare_entries ~baseline ~fresh in
  Alcotest.check vrd "gated metric vanished" Bench_compare.Missing_metric
    (verdict_of fs "shil_grid_f_evals");
  Alcotest.(check bool) "gate fails" false (Bench_compare.gate fs)

let test_missing_informational_is_fine () =
  let baseline = entry ~extra:[ ("n_phi", 31.0) ] () in
  let fresh = entry () in
  let fs = Bench_compare.compare_entries ~baseline ~fresh in
  Alcotest.(check bool) "informational metric may vanish" true
    (Bench_compare.gate fs)

let test_counter_tight_band () =
  let baseline = entry ~extra:[ ("shil_grid_f_evals", 1000.0) ] () in
  let ok = entry ~extra:[ ("shil_grid_f_evals", 1040.0) ] () in
  let bad = entry ~extra:[ ("shil_grid_f_evals", 1100.0) ] () in
  Alcotest.(check bool) "+4% inside the 5% band" true
    (Bench_compare.gate (Bench_compare.compare_entries ~baseline ~fresh:ok));
  Alcotest.(check bool) "+10% outside the 5% band" false
    (Bench_compare.gate (Bench_compare.compare_entries ~baseline ~fresh:bad))

let test_pp_tally () =
  let baseline = entry ~wall_s:1.0 () in
  let fresh = entry ~wall_s:1.6 () in
  let fs = Bench_compare.compare_entries ~baseline ~fresh in
  let out = Format.asprintf "%a" Bench_compare.pp fs in
  Alcotest.(check bool) "tally mentions a regression" true
    (let needle = "1 regression" in
     let nl = String.length needle and ol = String.length out in
     let rec go i =
       i + nl <= ol && (String.sub out i nl = needle || go (i + 1))
     in
     go 0)

let () =
  Alcotest.run "bench_compare"
    [
      ( "policy",
        [
          Alcotest.test_case "classify directions" `Quick test_classify_policy;
          Alcotest.test_case "within tolerance" `Quick
            test_within_tolerance_is_ok;
          Alcotest.test_case "counter tight band" `Quick test_counter_tight_band;
        ] );
      ( "gate",
        [
          Alcotest.test_case "wall regression gates" `Quick
            test_wall_regression_gates;
          Alcotest.test_case "improvement never gates" `Quick
            test_improvement_never_gates;
          Alcotest.test_case "witness must not drop" `Quick
            test_witness_must_not_drop;
          Alcotest.test_case "ceiling is absolute" `Quick
            test_ceiling_is_absolute;
          Alcotest.test_case "new metric never gates" `Quick
            test_new_metric_never_gates;
          Alcotest.test_case "missing gated metric gates" `Quick
            test_missing_gated_metric_gates;
          Alcotest.test_case "missing informational is fine" `Quick
            test_missing_informational_is_fine;
          Alcotest.test_case "pp prints the tally" `Quick test_pp_tally;
        ] );
    ]
