(* Unit, integration and property tests for the MNA circuit simulator. *)

open Spice

let check_float ?(eps = 1e-9) msg expected got =
  Alcotest.(check (float eps)) msg expected got

let qtest ?(count = 200) name gen prop = Qseed.qtest ~count name gen prop

(* ------------------------------------------------------------------ *)
(* Wave *)

let test_wave_dc () =
  check_float "dc" 3.0 (Wave.value (Wave.Dc 3.0) 12.0);
  check_float "dc_value" 3.0 (Wave.dc_value (Wave.Dc 3.0))

let test_wave_sine () =
  let w = Wave.Sine { offset = 1.0; ampl = 2.0; freq = 10.0; phase = 0.0; delay = 0.0 } in
  check_float "sine t=0" 1.0 (Wave.value w 0.0);
  check_float ~eps:1e-9 "sine quarter" 3.0 (Wave.value w 0.025);
  check_float "sine dc" 1.0 (Wave.dc_value w)

let test_wave_sine_delay () =
  let w = Wave.Sine { offset = 0.0; ampl = 1.0; freq = 1.0; phase = 0.0; delay = 2.0 } in
  check_float "before delay" 0.0 (Wave.value w 1.0);
  check_float ~eps:1e-9 "after delay" (sin (2.0 *. Float.pi *. 0.25)) (Wave.value w 2.25)

let test_wave_pulse () =
  let w =
    Wave.Pulse
      { v1 = 0.0; v2 = 5.0; delay = 1.0; rise = 1.0; fall = 1.0; width = 2.0; period = 0.0 }
  in
  check_float "before" 0.0 (Wave.value w 0.5);
  check_float "mid rise" 2.5 (Wave.value w 1.5);
  check_float "top" 5.0 (Wave.value w 3.0);
  check_float "mid fall" 2.5 (Wave.value w 4.5);
  check_float "after" 0.0 (Wave.value w 6.0)

let test_wave_pulse_periodic () =
  let w =
    Wave.Pulse
      { v1 = 0.0; v2 = 1.0; delay = 0.0; rise = 0.0; fall = 0.0; width = 1.0; period = 2.0 }
  in
  check_float "first high" 1.0 (Wave.value w 0.5);
  check_float "first low" 0.0 (Wave.value w 1.5);
  check_float "second high" 1.0 (Wave.value w 2.5)

let test_wave_pwl () =
  let w = Wave.Pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 2.0); (4.0, 0.0) ] in
  check_float "pwl interp" 1.0 (Wave.value w 0.5);
  check_float "pwl plateau" 2.0 (Wave.value w 2.0);
  check_float "pwl end" 0.0 (Wave.value w 10.0);
  check_float "pwl before" 0.0 (Wave.value w (-1.0))

let prop_wave_scale =
  qtest "wave: scale is multiplicative"
    QCheck.(pair (float_range (-3.0) 3.0) (float_range 0.0 1.0))
    (fun (k, t) ->
      let w = Wave.Sine { offset = 0.5; ampl = 1.5; freq = 3.0; phase = 0.3; delay = 0.0 } in
      Float.abs (Wave.value (Wave.scale w k) t -. (k *. Wave.value w t)) < 1e-12)

(* ------------------------------------------------------------------ *)
(* Device models *)

let test_diode_iv () =
  let p = Device.default_diode in
  let i0, g0 = Device.diode_iv p 0.0 in
  check_float "diode i(0)" 0.0 i0;
  check_float ~eps:1e-16 "diode g(0)" (p.is /. (p.n *. p.vt)) g0;
  let i, _ = Device.diode_iv p 0.6 in
  check_float ~eps:1e-10 "diode i(0.6)" (p.is *. (exp (0.6 /. 0.025) -. 1.0)) i

let prop_diode_g_is_derivative =
  qtest ~count:100 "diode: g = di/dv"
    QCheck.(float_range (-0.5) 0.8)
    (fun v ->
      let p = Device.default_diode in
      let _, g = Device.diode_iv p v in
      let h = 1e-7 in
      let ip, _ = Device.diode_iv p (v +. h) in
      let im, _ = Device.diode_iv p (v -. h) in
      let fd = (ip -. im) /. (2.0 *. h) in
      Float.abs (g -. fd) <= 1e-4 *. (Float.abs fd +. 1e-12))

let test_tunnel_iv_peak () =
  let p = Device.paper_tunnel in
  let v_peak = p.v0 /. sqrt 2.0 in
  let _, g = Device.tunnel_iv p v_peak in
  Alcotest.(check bool) "slope tiny at peak" true (Float.abs g < 1e-4);
  let _, g_neg = Device.tunnel_iv p 0.25 in
  Alcotest.(check bool) "negative resistance at 0.25" true (g_neg < 0.0)

let test_tunnel_matches_paper_formula () =
  let p = Device.paper_tunnel in
  let v = 0.31 in
  let i, _ = Device.tunnel_iv p v in
  let i_tunnel = v /. p.r0 *. exp (-.((v /. p.v0) ** p.m)) in
  let i_diode = p.is *. (exp (v /. (p.eta *. p.vth)) -. 1.0) in
  check_float ~eps:1e-12 "paper eq 11-13" (i_tunnel +. i_diode) i

let prop_bjt_iv_consistent =
  qtest ~count:200 "bjt: bjt_iv agrees with bjt_currents"
    QCheck.(pair (float_range (-0.8) 0.8) (float_range (-0.8) 0.8))
    (fun (vbe, vbc) ->
      let ic, ib = Device.bjt_currents Device.default_npn ~vbe ~vbc in
      let lin = Device.bjt_iv Device.default_npn ~vbe ~vbc in
      Float.abs (lin.ic -. ic) < 1e-15 +. (1e-12 *. Float.abs ic)
      && Float.abs (lin.ib -. ib) < 1e-15 +. (1e-12 *. Float.abs ib))

let prop_bjt_partials =
  qtest ~count:100 "bjt: analytic partials match finite differences"
    QCheck.(pair (float_range (-0.5) 0.7) (float_range (-0.5) 0.7))
    (fun (vbe, vbc) ->
      let p = Device.default_npn in
      let lin = Device.bjt_iv p ~vbe ~vbc in
      let ic0, _ = Device.bjt_currents p ~vbe ~vbc in
      let h = 1e-6 in
      let icp, _ = Device.bjt_currents p ~vbe:(vbe +. h) ~vbc in
      let icm, _ = Device.bjt_currents p ~vbe:(vbe -. h) ~vbc in
      let fd = (icp -. icm) /. (2.0 *. h) in
      (* the FD uncertainty is ~ eps |ic| / h: account for cancellation *)
      let tol = (1e-3 *. Float.abs fd) +. (1e-8 *. Float.abs ic0 /. h) +. 1e-15 in
      Float.abs (lin.dic_dvbe -. fd) <= tol)

let test_bjt_active_region () =
  let p = Device.default_npn in
  let ic, ib = Device.bjt_currents p ~vbe:0.65 ~vbc:(-2.0) in
  check_float ~eps:0.01 "beta" p.beta_f (ic /. ib)

(* ------------------------------------------------------------------ *)
(* Circuit *)

let r name n1 n2 rv = Device.Resistor { name; n1; n2; r = rv }

let test_circuit_duplicate () =
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Circuit.add: duplicate device \"R1\"") (fun () ->
      ignore (Circuit.of_devices [ r "R1" "a" "0" 1.0; r "R1" "b" "0" 2.0 ]))

let test_circuit_nodes () =
  let c = Circuit.of_devices [ r "R1" "a" "gnd" 1.0; r "R2" "b" "0" 1.0; r "R3" "a" "b" 1.0 ] in
  Alcotest.(check (list string)) "nodes" [ "a"; "b" ] (Circuit.node_names c)

let test_circuit_replace () =
  let c = Circuit.of_devices [ r "R1" "a" "0" 1.0 ] in
  let c' = Circuit.replace c "R1" (r "R1" "a" "0" 5.0) in
  match Circuit.find c' "R1" with
  | Some (Device.Resistor { r = rv; _ }) -> check_float "replaced" 5.0 rv
  | _ -> Alcotest.fail "device missing"

let test_circuit_ground_aliases () =
  Alcotest.(check bool) "0" true (Circuit.is_ground "0");
  Alcotest.(check bool) "gnd" true (Circuit.is_ground "GND");
  Alcotest.(check bool) "other" false (Circuit.is_ground "out")

(* ------------------------------------------------------------------ *)
(* Operating point *)

let test_op_divider () =
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "V1"; np = "in"; nn = "0"; wave = Wave.Dc 10.0 };
        r "R1" "in" "mid" 1e3;
        r "R2" "mid" "0" 3e3;
      ]
  in
  let op = Op.run c in
  check_float ~eps:1e-7 "divider" 7.5 (Op.voltage op "mid");
  check_float ~eps:1e-10 "source current" (-2.5e-3) (Op.current op "V1")

let test_op_current_source () =
  let c =
    Circuit.of_devices
      [
        Device.Isource { name = "I1"; np = "0"; nn = "out"; wave = Wave.Dc 1e-3 };
        r "R1" "out" "0" 2e3;
      ]
  in
  let op = Op.run c in
  check_float ~eps:1e-7 "I into R" 2.0 (Op.voltage op "out")

let test_op_diode_analytic () =
  let p = Device.default_diode in
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "V1"; np = "in"; nn = "0"; wave = Wave.Dc 5.0 };
        r "R1" "in" "d" 1e3;
        Device.Diode { name = "D1"; np = "d"; nn = "0"; p };
      ]
  in
  let op = Op.run c in
  let vd = Op.voltage op "d" in
  let i_r = (5.0 -. vd) /. 1e3 in
  let i_d, _ = Device.diode_iv p vd in
  check_float ~eps:1e-9 "KCL at diode node" i_r i_d

let test_op_wheatstone () =
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "V1"; np = "top"; nn = "0"; wave = Wave.Dc 10.0 };
        r "Ra" "top" "l" 1e3;
        r "Rb" "top" "rn" 2e3;
        r "Rc" "l" "0" 2e3;
        r "Rd" "rn" "0" 4e3;
        r "Rdet" "l" "rn" 5e2;
      ]
  in
  let op = Op.run c in
  check_float ~eps:1e-7 "balanced bridge" 0.0 (Op.voltage op "l" -. Op.voltage op "rn")

let test_op_bjt_inverter () =
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "VCC"; np = "vcc"; nn = "0"; wave = Wave.Dc 5.0 };
        Device.Vsource { name = "VB"; np = "b"; nn = "0"; wave = Wave.Dc 2.0 };
        r "RB" "b" "base" 1e4;
        r "RC" "vcc" "c" 1e3;
        Device.Bjt { name = "Q1"; nc = "c"; nb = "base"; ne = "0"; p = Device.default_npn };
      ]
  in
  let op = Op.run c in
  Alcotest.(check bool) "collector pulled low" true (Op.voltage op "c" < 1.0);
  Alcotest.(check bool) "base-emitter in diode range" true
    (Op.voltage op "base" > 0.5 && Op.voltage op "base" < 0.9)

let test_op_gmin_floating () =
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "V1"; np = "in"; nn = "0"; wave = Wave.Dc 1.0 };
        Device.Capacitor { name = "C1"; n1 = "in"; n2 = "fl"; c = 1e-9; ic = None };
        r "R1" "fl" "0" 1e30;
      ]
  in
  let op = Op.run c in
  Alcotest.(check bool) "floating node finite" true (Float.is_finite (Op.voltage op "fl"))

let prop_op_divider_ratio =
  qtest ~count:100 "op: divider ratio for random resistors"
    QCheck.(pair (float_range 10.0 1e6) (float_range 10.0 1e6))
    (fun (r1, r2) ->
      let c =
        Circuit.of_devices
          [
            Device.Vsource { name = "V1"; np = "in"; nn = "0"; wave = Wave.Dc 1.0 };
            r "R1" "in" "mid" r1;
            r "R2" "mid" "0" r2;
          ]
      in
      let op = Op.run c in
      Float.abs (Op.voltage op "mid" -. (r2 /. (r1 +. r2))) < 1e-6)

(* ------------------------------------------------------------------ *)
(* DC sweep *)

let test_sweep_resistor_linear () =
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "VX"; np = "a"; nn = "0"; wave = Wave.Dc 0.0 };
        r "R1" "a" "0" 2e3;
      ]
  in
  let sw = Dc_sweep.run ~circuit:c ~source:"VX" ~start:(-1.0) ~stop:1.0 ~steps:10 () in
  let vs = Dc_sweep.source_values sw in
  let is = Dc_sweep.branch_currents sw "VX" in
  Array.iteri (fun k v -> check_float ~eps:1e-9 "ohm" (-.v /. 2e3) is.(k)) vs

let test_sweep_diode_monotone () =
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "VX"; np = "a"; nn = "0"; wave = Wave.Dc 0.0 };
        Device.Diode { name = "D1"; np = "a"; nn = "0"; p = Device.default_diode };
      ]
  in
  let sw = Dc_sweep.run ~circuit:c ~source:"VX" ~start:0.0 ~stop:0.7 ~steps:50 () in
  let is = Dc_sweep.branch_currents sw "VX" in
  let ok = ref true in
  for k = 0 to Array.length is - 2 do
    if is.(k + 1) > is.(k) +. 1e-15 then ok := false
  done;
  ignore !ok;
  (* branch current of VX flows a -> 0 through the source; the diode pulls
     current out of node a, so I(VX) becomes increasingly negative *)
  Alcotest.(check bool) "diode current monotone decreasing" true !ok

let test_sweep_bad_source () =
  let c = Circuit.of_devices [ r "R1" "a" "0" 1.0 ] in
  Alcotest.check_raises "unknown source"
    (Invalid_argument "Dc_sweep: no device named \"VX\"") (fun () ->
      ignore (Dc_sweep.run ~circuit:c ~source:"VX" ~start:0.0 ~stop:1.0 ~steps:2 ()))

(* ------------------------------------------------------------------ *)
(* Transient *)

let transient_signal circuit probe opts =
  let res = Transient.run circuit ~probes:[ probe ] opts in
  Waveform.Signal.make ~times:res.Transient.times
    ~values:(Transient.signal res probe)

let test_tran_rc_charge () =
  let tau = 1e-3 in
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "V1"; np = "in"; nn = "0"; wave = Wave.Dc 1.0 };
        r "R1" "in" "out" 1e3;
        Device.Capacitor { name = "C1"; n1 = "out"; n2 = "0"; c = 1e-6; ic = Some 0.0 };
      ]
  in
  let opts =
    { (Transient.default_options ~dt:(tau /. 500.0) ~t_stop:(3.0 *. tau)) with use_ic = true }
  in
  let s = transient_signal c (Transient.Node "out") opts in
  List.iter
    (fun t ->
      let expected = 1.0 -. exp (-.t /. tau) in
      check_float ~eps:1e-4 "rc charge" expected (Waveform.Signal.value_at s t))
    [ 0.5 *. tau; tau; 2.0 *. tau ]

let test_tran_rl_decay () =
  let l = 1e-3 and rv = 10.0 and i0 = 1e-2 in
  let tau = l /. rv in
  let c =
    Circuit.of_devices
      [
        Device.Inductor { name = "L1"; n1 = "a"; n2 = "0"; l; ic = Some i0 };
        r "R1" "a" "0" rv;
      ]
  in
  let opts =
    { (Transient.default_options ~dt:(tau /. 500.0) ~t_stop:(3.0 *. tau)) with use_ic = true }
  in
  let s = transient_signal c (Transient.Branch "L1") opts in
  List.iter
    (fun t ->
      check_float ~eps:(i0 *. 1e-3) "rl decay" (i0 *. exp (-.t /. tau))
        (Waveform.Signal.value_at s t))
    [ 0.5 *. tau; tau; 2.0 *. tau ]

let test_tran_lc_energy () =
  let c =
    Circuit.of_devices
      [
        Device.Capacitor { name = "C1"; n1 = "t"; n2 = "0"; c = 1e-9; ic = Some 1.0 };
        Device.Inductor { name = "L1"; n1 = "t"; n2 = "0"; l = 1e-3; ic = None };
      ]
  in
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (1e-3 *. 1e-9)) in
  let opts =
    {
      (Transient.default_options ~dt:(1.0 /. (f0 *. 200.0)) ~t_stop:(50.0 /. f0)) with
      use_ic = true;
      gmin = 0.0;
    }
  in
  let s = transient_signal c (Transient.Node "t") opts in
  let tail = Waveform.Signal.tail_fraction s 0.1 in
  check_float ~eps:1e-3 "LC amplitude conserved" 1.0 (Waveform.Measure.amplitude tail);
  check_float ~eps:(f0 *. 1e-3) "LC frequency" f0 (Waveform.Measure.frequency s)

let test_tran_rlc_decay_rate () =
  let l = 1e-3 and cap = 1e-9 in
  let w0 = 1.0 /. sqrt (l *. cap) in
  let q = 50.0 in
  let rv = q *. sqrt (l /. cap) in
  let c =
    Circuit.of_devices
      [
        Device.Capacitor { name = "C1"; n1 = "t"; n2 = "0"; c = cap; ic = Some 1.0 };
        Device.Inductor { name = "L1"; n1 = "t"; n2 = "0"; l; ic = None };
        r "R1" "t" "0" rv;
      ]
  in
  let f0 = w0 /. (2.0 *. Float.pi) in
  let t_stop = 30.0 /. f0 in
  let opts =
    { (Transient.default_options ~dt:(1.0 /. (f0 *. 400.0)) ~t_stop) with use_ic = true }
  in
  let s = transient_signal c (Transient.Node "t") opts in
  let tail = Waveform.Signal.tail_fraction s 0.05 in
  (* the max excursion of the tail window tracks the envelope near the
     window start *)
  let expected = exp (-.w0 *. (0.95 *. t_stop) /. (2.0 *. q)) in
  check_float ~eps:(expected *. 0.03) "ringdown envelope" expected
    (Waveform.Measure.amplitude tail)

let test_tran_sine_through_rc () =
  let rv = 1e3 and cap = 1e-9 in
  let fc = 1.0 /. (2.0 *. Float.pi *. rv *. cap) in
  let c =
    Circuit.of_devices
      [
        Device.Vsource
          {
            name = "V1";
            np = "in";
            nn = "0";
            wave = Wave.Sine { offset = 0.0; ampl = 1.0; freq = fc; phase = 0.0; delay = 0.0 };
          };
        r "R1" "in" "out" rv;
        Device.Capacitor { name = "C1"; n1 = "out"; n2 = "0"; c = cap; ic = None };
      ]
  in
  let opts = Transient.default_options ~dt:(1.0 /. (fc *. 500.0)) ~t_stop:(20.0 /. fc) in
  let s = transient_signal c (Transient.Node "out") opts in
  let tail = Waveform.Signal.tail_fraction s 0.3 in
  check_float ~eps:2e-3 "corner gain" (1.0 /. sqrt 2.0) (Waveform.Measure.amplitude tail)

let test_tran_be_damps_lc () =
  let c =
    Circuit.of_devices
      [
        Device.Capacitor { name = "C1"; n1 = "t"; n2 = "0"; c = 1e-9; ic = Some 1.0 };
        Device.Inductor { name = "L1"; n1 = "t"; n2 = "0"; l = 1e-3; ic = None };
      ]
  in
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (1e-3 *. 1e-9)) in
  let opts =
    {
      (Transient.default_options ~dt:(1.0 /. (f0 *. 100.0)) ~t_stop:(50.0 /. f0)) with
      use_ic = true;
      integ = Mna.Backward_euler;
    }
  in
  let s = transient_signal c (Transient.Node "t") opts in
  let tail = Waveform.Signal.tail_fraction s 0.1 in
  Alcotest.(check bool) "BE decays" true (Waveform.Measure.amplitude tail < 0.6)

let test_tran_record_window () =
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "V1"; np = "a"; nn = "0"; wave = Wave.Dc 1.0 };
        r "R1" "a" "0" 1.0;
      ]
  in
  let opts = { (Transient.default_options ~dt:1e-3 ~t_stop:1.0) with t_start = 0.5 } in
  let res = Transient.run c ~probes:[ Transient.Node "a" ] opts in
  Alcotest.(check bool) "starts at t_start" true (res.Transient.times.(0) >= 0.5)

let test_tran_stride () =
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "V1"; np = "a"; nn = "0"; wave = Wave.Dc 1.0 };
        r "R1" "a" "0" 1.0;
      ]
  in
  let opts = { (Transient.default_options ~dt:1e-3 ~t_stop:0.1) with record_stride = 10 } in
  let res = Transient.run c ~probes:[ Transient.Node "a" ] opts in
  Alcotest.(check bool) "stride decimates" true (Array.length res.Transient.times <= 12)


(* adaptive stepping *)

let test_tran_adaptive_rc () =
  (* adaptive run matches the analytic RC charge *)
  let tau = 1e-3 in
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "V1"; np = "in"; nn = "0"; wave = Wave.Dc 1.0 };
        r "R1" "in" "out" 1e3;
        Device.Capacitor { name = "C1"; n1 = "out"; n2 = "0"; c = 1e-6; ic = Some 0.0 };
      ]
  in
  let opts =
    Transient.adaptive ~lte_tol:1e-6
      { (Transient.default_options ~dt:(tau /. 50.0) ~t_stop:(3.0 *. tau)) with use_ic = true }
  in
  let s = transient_signal c (Transient.Node "out") opts in
  List.iter
    (fun t ->
      check_float ~eps:1e-4 "adaptive rc" (1.0 -. exp (-.t /. tau))
        (Waveform.Signal.value_at s t))
    [ 0.5 *. tau; tau; 2.0 *. tau ]

let test_tran_adaptive_fewer_steps_when_quiet () =
  (* a pulse followed by a long quiet plateau: the adaptive mesh must use
     far fewer steps than the fixed one at comparable accuracy *)
  let c =
    Circuit.of_devices
      [
        Device.Vsource
          {
            name = "V1";
            np = "in";
            nn = "0";
            wave =
              Wave.Pulse
                { v1 = 0.0; v2 = 1.0; delay = 1e-5; rise = 1e-6; fall = 1e-6;
                  width = 2e-5; period = 0.0 };
          };
        r "R1" "in" "out" 1e3;
        Device.Capacitor { name = "C1"; n1 = "out"; n2 = "0"; c = 1e-9; ic = None };
      ]
  in
  let fixed_opts = Transient.default_options ~dt:1e-7 ~t_stop:1e-3 in
  let adaptive_opts = Transient.adaptive ~lte_tol:1e-5 fixed_opts in
  let fixed = Transient.run c ~probes:[ Transient.Node "out" ] fixed_opts in
  let adap = Transient.run c ~probes:[ Transient.Node "out" ] adaptive_opts in
  Alcotest.(check bool) "adaptive uses fewer points" true
    (Array.length adap.Transient.times < Array.length fixed.Transient.times / 2);
  (* both agree on the final value *)
  let last a = a.(Array.length a - 1) in
  check_float ~eps:1e-6 "final value agrees"
    (last (Transient.signal fixed (Transient.Node "out")))
    (last (Transient.signal adap (Transient.Node "out")))

let test_tran_adaptive_lc_frequency () =
  (* adaptive trap on the lossless LC keeps the frequency *)
  let c =
    Circuit.of_devices
      [
        Device.Capacitor { name = "C1"; n1 = "t"; n2 = "0"; c = 1e-9; ic = Some 1.0 };
        Device.Inductor { name = "L1"; n1 = "t"; n2 = "0"; l = 1e-3; ic = None };
      ]
  in
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (1e-3 *. 1e-9)) in
  let opts =
    Transient.adaptive ~lte_tol:1e-6
      {
        (Transient.default_options ~dt:(1.0 /. (f0 *. 100.0)) ~t_stop:(30.0 /. f0)) with
        use_ic = true;
      }
  in
  let s = transient_signal c (Transient.Node "t") opts in
  check_float ~eps:(f0 *. 2e-3) "adaptive LC frequency" f0 (Waveform.Measure.frequency s)

(* ------------------------------------------------------------------ *)
(* AC *)

let test_ac_rc_lowpass () =
  let rv = 1e3 and cap = 1e-9 in
  let fc = 1.0 /. (2.0 *. Float.pi *. rv *. cap) in
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "V1"; np = "in"; nn = "0"; wave = Wave.Dc 0.0 };
        r "R1" "in" "out" rv;
        Device.Capacitor { name = "C1"; n1 = "out"; n2 = "0"; c = cap; ic = None };
      ]
  in
  let ac = Ac.run ~circuit:c ~source:"V1" ~freqs:[| fc /. 10.0; fc; fc *. 10.0 |] () in
  let h = Ac.transfer ac "out" in
  check_float ~eps:1e-2 "low freq gain" 1.0 (Numerics.Cx.abs h.(0));
  check_float ~eps:1e-6 "corner gain" (1.0 /. sqrt 2.0) (Numerics.Cx.abs h.(1));
  check_float ~eps:1e-6 "corner phase" (-.Float.pi /. 4.0) (Numerics.Cx.arg h.(1));
  Alcotest.(check bool) "high freq attenuated" true (Numerics.Cx.abs h.(2) < 0.2)

let test_ac_tank_matches_analytic () =
  let rv = 1e3 and l = 1e-5 and cap = 1e-9 in
  let tank = Shil.Tank.make ~r:rv ~l ~c:cap in
  let c =
    Circuit.of_devices
      [
        Device.Isource { name = "I1"; np = "0"; nn = "t"; wave = Wave.Dc 0.0 };
        r "R1" "t" "0" rv;
        Device.Inductor { name = "L1"; n1 = "t"; n2 = "0"; l; ic = None };
        Device.Capacitor { name = "C1"; n1 = "t"; n2 = "0"; c = cap; ic = None };
      ]
  in
  let fc = Shil.Tank.f_c tank in
  let freqs = [| 0.8 *. fc; 0.95 *. fc; fc; 1.05 *. fc; 1.3 *. fc |] in
  let ac = Ac.run ~circuit:c ~source:"I1" ~freqs () in
  let h = Ac.transfer ac "t" in
  Array.iteri
    (fun k f ->
      let expected = Shil.Tank.h tank ~omega:(2.0 *. Float.pi *. f) in
      Alcotest.(check bool)
        (Printf.sprintf "tank Z at %.3g" f)
        true
        (Numerics.Cx.abs (Numerics.Cx.sub h.(k) expected) < 1e-6 *. rv))
    freqs


(* ------------------------------------------------------------------ *)
(* Netlist parser *)

let test_parse_value () =
  let ok v s =
    match Netlist.parse_value s with
    | Ok x -> check_float ~eps:(1e-12 *. Float.abs v) s v x
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok 1e3 "1k";
  ok 1e-4 "100u";
  ok 2e6 "2meg";
  ok 1.5e-9 "1.5n";
  ok (-3e-12) "-3p";
  ok 42.0 "42";
  ok 1e9 "1g";
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Netlist.parse_value "abc"))

let test_parse_simple_netlist () =
  let src = {|
* a voltage divider
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 3k
.end
|} in
  match Netlist.parse_string src with
  | Error e -> Alcotest.failf "line %d: %s" e.line e.message
  | Ok c ->
    let op = Op.run c in
    check_float ~eps:1e-7 "parsed divider" 7.5 (Op.voltage op "mid")

let test_parse_sources () =
  let src = {|
V1 a 0 SIN(0 2 1meg)
V2 b 0 PULSE(0 5 1u 1n 1n 2u)
V3 c 0 PWL(0 0 1m 1 2m 0)
I1 0 d 1m
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
|} in
  match Netlist.parse_string src with
  | Error e -> Alcotest.failf "line %d: %s" e.line e.message
  | Ok c -> begin
    (match Circuit.find c "V1" with
    | Some (Device.Vsource { wave = Wave.Sine s; _ }) ->
      check_float "sin ampl" 2.0 s.ampl;
      check_float "sin freq" 1e6 s.freq
    | _ -> Alcotest.fail "V1 not SIN");
    (match Circuit.find c "V2" with
    | Some (Device.Vsource { wave = Wave.Pulse p; _ }) ->
      check_float "pulse v2" 5.0 p.v2;
      check_float "pulse width" 2e-6 p.width
    | _ -> Alcotest.fail "V2 not PULSE");
    match Circuit.find c "V3" with
    | Some (Device.Vsource { wave = Wave.Pwl [ _; (t, v); _ ]; _ }) ->
      check_float "pwl t" 1e-3 t;
      check_float "pwl v" 1.0 v
    | _ -> Alcotest.fail "V3 not PWL"
  end

let test_parse_devices_with_params () =
  let src = {|
Q1 c b e IS=2e-12 BF=50
D1 a 0 IS=1e-15 N=1.5
TD1 t 0 R0=500 V0=0.3
C1 a 0 1n IC=0.7
L1 b 0 10u IC=1m
R1 a b 1 ; keep nodes connected
R2 c 0 1
R3 e 0 1
R4 t 0 1
|} in
  match Netlist.parse_string src with
  | Error e -> Alcotest.failf "line %d: %s" e.line e.message
  | Ok c -> begin
    (match Circuit.find c "Q1" with
    | Some (Device.Bjt { p; _ }) ->
      check_float "bjt is" 2e-12 p.is;
      check_float "bjt bf" 50.0 p.beta_f
    | _ -> Alcotest.fail "Q1 missing");
    (match Circuit.find c "TD1" with
    | Some (Device.Tunnel_diode { p; _ }) ->
      check_float "td r0" 500.0 p.r0;
      check_float "td v0" 0.3 p.v0
    | _ -> Alcotest.fail "TD1 missing");
    match Circuit.find c "C1" with
    | Some (Device.Capacitor { ic = Some v; _ }) -> check_float "cap ic" 0.7 v
    | _ -> Alcotest.fail "C1 ic missing"
  end

let test_parse_errors_carry_line () =
  let src = "R1 a 0 1k\nR2 a\n" in
  match Netlist.parse_string src with
  | Error e -> Alcotest.(check int) "error line" 2 e.line
  | Ok _ -> Alcotest.fail "expected parse error"

let test_netlist_roundtrip () =
  let src = {|
V1 in 0 DC 10
R1 in mid 1k
C1 mid 0 1n IC=0.5
L1 mid 0 1m
D1 mid 0
|} in
  match Netlist.parse_string src with
  | Error e -> Alcotest.failf "line %d: %s" e.line e.message
  | Ok c -> begin
    let text = Netlist.to_string c in
    match Netlist.parse_string text with
    | Error e -> Alcotest.failf "roundtrip line %d: %s" e.line e.message
    | Ok c2 ->
      Alcotest.(check int) "same device count"
        (List.length (Circuit.devices c))
        (List.length (Circuit.devices c2))
  end


(* ------------------------------------------------------------------ *)
(* MOSFET model *)

let test_mos_regions () =
  let p = Device.default_nmos in
  (* cutoff *)
  let lin = Device.mos_iv p ~vgs:0.3 ~vds:1.0 in
  check_float "cutoff id" 0.0 lin.id;
  (* saturation: id = kp/2 vov^2 (1 + lambda vds) *)
  let lin = Device.mos_iv p ~vgs:1.0 ~vds:2.0 in
  let expected = 0.5 *. p.kp *. 0.25 *. (1.0 +. (p.lambda *. 2.0)) in
  check_float ~eps:1e-12 "sat id" expected lin.id;
  (* triode *)
  let lin = Device.mos_iv p ~vgs:1.5 ~vds:0.2 in
  let vov = 1.0 in
  let expected =
    p.kp *. ((vov *. 0.2) -. (0.5 *. 0.2 *. 0.2)) *. (1.0 +. (p.lambda *. 0.2))
  in
  check_float ~eps:1e-12 "triode id" expected lin.id

let test_mos_continuity_at_pinchoff () =
  let p = Device.default_nmos in
  let vgs = 1.2 in
  let vov = vgs -. p.vth in
  let below = Device.mos_iv p ~vgs ~vds:(vov -. 1e-9) in
  let above = Device.mos_iv p ~vgs ~vds:(vov +. 1e-9) in
  check_float ~eps:1e-9 "id continuous" below.id above.id;
  check_float ~eps:1e-4 "gm continuous" below.gm above.gm

let prop_mos_partials =
  qtest ~count:200 "mos: gm/gds match finite differences"
    QCheck.(pair (float_range 0.0 2.0) (float_range (-1.5) 2.0))
    (fun (vgs, vds) ->
      let p = Device.default_nmos in
      let lin = Device.mos_iv p ~vgs ~vds in
      let h = 1e-6 in
      let fd_gm =
        ((Device.mos_iv p ~vgs:(vgs +. h) ~vds).id
        -. (Device.mos_iv p ~vgs:(vgs -. h) ~vds).id)
        /. (2.0 *. h)
      in
      let fd_gds =
        ((Device.mos_iv p ~vgs ~vds:(vds +. h)).id
        -. (Device.mos_iv p ~vgs ~vds:(vds -. h)).id)
        /. (2.0 *. h)
      in
      Float.abs (lin.gm -. fd_gm) <= 1e-4 *. (Float.abs fd_gm +. 1e-6)
      && Float.abs (lin.gds -. fd_gds) <= 1e-4 *. (Float.abs fd_gds +. 1e-6))

let prop_mos_antisymmetry =
  (* drain/source swap: id(vgs, -vds) of the swapped device *)
  qtest ~count:100 "mos: vds < 0 is the mirrored device"
    QCheck.(pair (float_range 0.0 2.0) (float_range 0.0 2.0))
    (fun (vgs, vds) ->
      let p = Device.default_nmos in
      let fwd = Device.mos_iv p ~vgs ~vds in
      let rev = Device.mos_iv p ~vgs:(vgs -. vds) ~vds:(-.vds) in
      Float.abs (fwd.id +. rev.id) < 1e-12)

let test_mos_common_source_op () =
  (* common-source stage in saturation *)
  let c =
    Circuit.of_devices
      [
        Device.Vsource { name = "VDD"; np = "vdd"; nn = "0"; wave = Wave.Dc 3.0 };
        Device.Vsource { name = "VG"; np = "g"; nn = "0"; wave = Wave.Dc 1.0 };
        r "RD" "vdd" "d" 5e3;
        Device.Mosfet { name = "M1"; nd = "d"; ng = "g"; ns = "0"; p = Device.default_nmos };
      ]
  in
  let op = Op.run c in
  (* id = kp/2 (0.5)^2 (1 + lambda vd): solve consistently *)
  let vd = Op.voltage op "d" in
  let id = (3.0 -. vd) /. 5e3 in
  let lin = Device.mos_iv Device.default_nmos ~vgs:1.0 ~vds:vd in
  check_float ~eps:1e-9 "KCL at drain" id lin.id;
  Alcotest.(check bool) "in saturation" true (vd > 0.5)

let () =
  Alcotest.run "spice"
    [
      ( "wave",
        [
          Alcotest.test_case "dc" `Quick test_wave_dc;
          Alcotest.test_case "sine" `Quick test_wave_sine;
          Alcotest.test_case "sine delay" `Quick test_wave_sine_delay;
          Alcotest.test_case "pulse" `Quick test_wave_pulse;
          Alcotest.test_case "pulse periodic" `Quick test_wave_pulse_periodic;
          Alcotest.test_case "pwl" `Quick test_wave_pwl;
          prop_wave_scale;
        ] );
      ( "device",
        [
          Alcotest.test_case "diode iv" `Quick test_diode_iv;
          prop_diode_g_is_derivative;
          Alcotest.test_case "tunnel peak" `Quick test_tunnel_iv_peak;
          Alcotest.test_case "tunnel paper formula" `Quick test_tunnel_matches_paper_formula;
          prop_bjt_iv_consistent;
          prop_bjt_partials;
          Alcotest.test_case "bjt active" `Quick test_bjt_active_region;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "duplicate" `Quick test_circuit_duplicate;
          Alcotest.test_case "nodes" `Quick test_circuit_nodes;
          Alcotest.test_case "replace" `Quick test_circuit_replace;
          Alcotest.test_case "ground aliases" `Quick test_circuit_ground_aliases;
        ] );
      ( "op",
        [
          Alcotest.test_case "divider" `Quick test_op_divider;
          Alcotest.test_case "current source" `Quick test_op_current_source;
          Alcotest.test_case "diode KCL" `Quick test_op_diode_analytic;
          Alcotest.test_case "wheatstone" `Quick test_op_wheatstone;
          Alcotest.test_case "bjt inverter" `Quick test_op_bjt_inverter;
          Alcotest.test_case "gmin floating node" `Quick test_op_gmin_floating;
          prop_op_divider_ratio;
        ] );
      ( "dc_sweep",
        [
          Alcotest.test_case "resistor linear" `Quick test_sweep_resistor_linear;
          Alcotest.test_case "diode monotone" `Quick test_sweep_diode_monotone;
          Alcotest.test_case "bad source" `Quick test_sweep_bad_source;
        ] );
      ( "transient",
        [
          Alcotest.test_case "rc charge" `Quick test_tran_rc_charge;
          Alcotest.test_case "rl decay" `Quick test_tran_rl_decay;
          Alcotest.test_case "lc energy" `Quick test_tran_lc_energy;
          Alcotest.test_case "rlc decay rate" `Quick test_tran_rlc_decay_rate;
          Alcotest.test_case "sine through rc" `Quick test_tran_sine_through_rc;
          Alcotest.test_case "be damps lc" `Quick test_tran_be_damps_lc;
          Alcotest.test_case "record window" `Quick test_tran_record_window;
          Alcotest.test_case "stride" `Quick test_tran_stride;
          Alcotest.test_case "adaptive rc" `Quick test_tran_adaptive_rc;
          Alcotest.test_case "adaptive mesh economy" `Quick test_tran_adaptive_fewer_steps_when_quiet;
          Alcotest.test_case "adaptive lc frequency" `Quick test_tran_adaptive_lc_frequency;
        ] );
      ( "mosfet",
        [
          Alcotest.test_case "regions" `Quick test_mos_regions;
          Alcotest.test_case "pinchoff continuity" `Quick test_mos_continuity_at_pinchoff;
          prop_mos_partials;
          prop_mos_antisymmetry;
          Alcotest.test_case "common source op" `Quick test_mos_common_source_op;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "values" `Quick test_parse_value;
          Alcotest.test_case "divider" `Quick test_parse_simple_netlist;
          Alcotest.test_case "sources" `Quick test_parse_sources;
          Alcotest.test_case "device params" `Quick test_parse_devices_with_params;
          Alcotest.test_case "error lines" `Quick test_parse_errors_carry_line;
          Alcotest.test_case "roundtrip" `Quick test_netlist_roundtrip;
        ] );
      ( "ac",
        [
          Alcotest.test_case "rc lowpass" `Quick test_ac_rc_lowpass;
          Alcotest.test_case "tank matches analytic" `Quick test_ac_tank_matches_analytic;
        ] );
    ]
