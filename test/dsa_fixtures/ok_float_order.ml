(* dsa fixture: the deterministic way to reduce a float table — iterate
   the keys in sorted order, then fold. Expected findings: none. *)

let weights : (string, float) Hashtbl.t = Hashtbl.create 8

let total () =
  let keys =
    List.sort String.compare (List.of_seq (Hashtbl.to_seq_keys weights))
  in
  List.fold_left (fun acc k -> acc +. Hashtbl.find weights k) 0.0 keys
