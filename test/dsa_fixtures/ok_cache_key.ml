(* dsa fixture: cache-pure counterparts — the nonlinearity declares its
   identity and the key depends only on the function's arguments.
   Expected findings: none. *)

let cacheable =
  Shil.Nonlinearity.make ~name:"neg_id" ~key:"neg_id(v1)" (fun v -> -.v)

let pure_key ~n ~vi =
  Cache.Key.v ~kind:"fixture.ok" ~version:1
    [ Cache.Key.int "n" n; Cache.Key.float "vi" vi ]
