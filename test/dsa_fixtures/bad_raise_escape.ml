(* dsa fixture: [Invalid_argument] escaping through a public interface
   whose .mli never mentions it. Expected finding: [raise-escape]. *)

let checked_sqrt x =
  if x < 0.0 then invalid_arg "checked_sqrt: negative input";
  sqrt x
