(* dsa fixture: cache-purity violations — a nonlinearity built without
   a canonical identity, and a Cache.Key preimage fed from module-level
   mutable state and a nondeterministic clock. Expected findings:
   [cache-purity] (three). *)

let uncacheable = Shil.Nonlinearity.make ~name:"mystery" (fun v -> -.v)

let seen : (string, int) Hashtbl.t = Hashtbl.create 8

let impure_key () =
  Cache.Key.v ~kind:"fixture.bad" ~version:1
    [
      Cache.Key.int "population" (Hashtbl.length seen);
      Cache.Key.float "now" (Sys.time ());
    ]
