(* dsa fixture: the safe counterparts of [Bad_pool_escape] — an Atomic
   counter, and per-domain scratch from [Kernel.with_bufs] feeding
   [parallel_init] (each task returns its slot value instead of writing
   shared state). Expected findings: none. *)

let hits = Atomic.make 0

let count n =
  Numerics.Pool.parallel_for ~n (fun _ -> Atomic.incr hits);
  Atomic.get hits

let squares n =
  Numerics.Pool.parallel_init n (fun i ->
      Numerics.Kernel.with_bufs ~len:1 1 @@ fun bufs ->
      bufs.(0).(0) <- float_of_int i;
      bufs.(0).(0) *. bufs.(0).(0))
