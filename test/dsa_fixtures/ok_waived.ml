(* dsa fixture: a justified waiver suppresses its finding; a justified
   waiver that matches nothing is reported as [unused-waiver].
   Expected findings: [unused-waiver] (warning) only. *)

let weights : (string, float) Hashtbl.t = Hashtbl.create 8

let total () =
  (* dsa: allow float-order — fixture: single-entry table populated by the test itself *)
  Hashtbl.fold (fun _ w acc -> acc +. w) weights 0.0

(* dsa: allow domain-escape — fixture: nothing on the next line uses a pool *)
let unrelated = 42
