val checked_sqrt : float -> float
(** Square root. Raises [Invalid_argument] on a negative input — the
    documentation this line provides is exactly what the [raise-escape]
    rule checks for. *)

val caught_locally : unit -> int
val typed_failure : unit -> 'a
