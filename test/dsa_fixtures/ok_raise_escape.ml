(* dsa fixture: exceptions handled the sanctioned ways — documented in
   the module's own .mli, caught by a lexically enclosing handler, or
   raised as the typed [Resilience.Oshil_error]. Expected findings:
   none. *)

let checked_sqrt x =
  if x < 0.0 then invalid_arg "checked_sqrt: negative input";
  sqrt x

let caught_locally () = try failwith "internal" with Failure _ -> 0

let typed_failure () =
  Resilience.Oshil_error.raise_ Shil ~phase:"fixture" Measurement_failure
    "typed errors always pass"
