(* dsa fixture: a waiver without a justification does not suppress —
   the finding stays and the waiver itself is reported. Expected
   findings: [float-order] (error) and [bad-waiver] (warning). *)

let weights : (string, float) Hashtbl.t = Hashtbl.create 8

let total () =
  (* dsa: allow float-order *)
  Hashtbl.fold (fun _ w acc -> acc +. w) weights 0.0
