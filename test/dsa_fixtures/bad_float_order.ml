(* dsa fixture: a float sum accumulated directly by [Hashtbl.fold] —
   iteration order is unspecified, so the result depends on the table's
   internal layout. Expected finding: [float-order]. *)

let weights : (string, float) Hashtbl.t = Hashtbl.create 8

let total () = Hashtbl.fold (fun _ w acc -> acc +. w) weights 0.0
