(* The interface is silent about the exception — that silence is the
   defect this fixture pins. *)

val checked_sqrt : float -> float
(** Square root of a non-negative number. *)
