(* dsa fixture: a shared ref written from a Pool closure — the
   canonical domain-escape. Expected finding: [domain-escape]. *)

let total = ref 0.0

let race n =
  Numerics.Pool.parallel_for ~n (fun i -> total := !total +. float_of_int i);
  !total
