(* Tests for the waveform measurement library. *)

let check_float ?(eps = 1e-9) msg expected got =
  Alcotest.(check (float eps)) msg expected got

let qtest ?(count = 100) name gen prop = Qseed.qtest ~count name gen prop

let sine ?(n = 4000) ?(t1 = 1.0) ?(freq = 10.0) ?(ampl = 1.0) ?(phase = 0.0)
    ?(offset = 0.0) () =
  let times = Array.init n (fun k -> t1 *. float_of_int k /. float_of_int (n - 1)) in
  let values =
    Array.map (fun t -> offset +. (ampl *. cos ((2.0 *. Float.pi *. freq *. t) +. phase))) times
  in
  Waveform.Signal.make ~times ~values

(* Signal *)

let test_signal_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Signal.make: length mismatch") (fun () ->
      ignore (Waveform.Signal.make ~times:[| 0.0; 1.0 |] ~values:[| 1.0 |]));
  Alcotest.check_raises "non-monotone"
    (Invalid_argument "Signal.make: times must be strictly increasing") (fun () ->
      ignore (Waveform.Signal.make ~times:[| 0.0; 0.0 |] ~values:[| 1.0; 2.0 |]))

let test_signal_slice () =
  let s = sine () in
  let w = Waveform.Signal.slice s ~t_min:0.25 ~t_max:0.75 in
  Alcotest.(check bool) "bounds" true
    (w.times.(0) >= 0.25 && w.times.(Waveform.Signal.length w - 1) <= 0.75);
  check_float ~eps:1e-3 "duration" 0.5 (Waveform.Signal.duration w)

let test_signal_value_at () =
  let s =
    Waveform.Signal.make ~times:[| 0.0; 1.0; 2.0 |] ~values:[| 0.0; 2.0; 0.0 |]
  in
  check_float "interp" 1.0 (Waveform.Signal.value_at s 0.5);
  check_float "clamp low" 0.0 (Waveform.Signal.value_at s (-1.0));
  check_float "clamp high" 0.0 (Waveform.Signal.value_at s 5.0)

let test_signal_mean () =
  let s = sine ~offset:0.7 () in
  check_float ~eps:1e-3 "sine mean = offset" 0.7 (Waveform.Signal.mean s)

let test_tail_fraction () =
  let s = sine ~t1:2.0 () in
  let t = Waveform.Signal.tail_fraction s 0.25 in
  check_float ~eps:1e-3 "tail span" 0.5 (Waveform.Signal.duration t)

(* Measure *)

let test_crossings_count () =
  let s = sine ~freq:10.0 ~t1:1.0 () in
  let c = Waveform.Measure.rising_crossings s in
  Alcotest.(check int) "10 rising crossings" 10 (Array.length c)

let prop_frequency_estimate =
  qtest "measure: frequency of pure sine"
    QCheck.(pair (float_range 3.0 50.0) (float_range 0.0 6.0))
    (fun (freq, phase) ->
      let s = sine ~freq ~phase ~n:20000 () in
      match Waveform.Measure.frequency_opt s with
      | None -> false
      | Some f -> Float.abs (f -. freq) /. freq < 1e-4)

let prop_amplitude_estimate =
  qtest "measure: amplitude of pure sine"
    QCheck.(float_range 0.1 10.0)
    (fun ampl ->
      let s = sine ~ampl ~n:20000 () in
      Float.abs (Waveform.Measure.amplitude s -. ampl) /. ampl < 1e-3)

let test_no_oscillation () =
  let times = Array.init 10 float_of_int in
  let values = Array.make 10 1.0 in
  let s = Waveform.Signal.make ~times ~values in
  Alcotest.(check (option (float 0.1))) "flat has no frequency" None
    (Waveform.Measure.frequency_opt s)

let test_peaks () =
  let s = sine ~freq:5.0 ~t1:1.0 ~n:5000 () in
  let peaks = Waveform.Measure.peaks s in
  Alcotest.(check int) "5 maxima (minus boundary)" 4 (Array.length peaks);
  Array.iter (fun (_, v) -> check_float ~eps:1e-5 "peak value" 1.0 v) peaks

let test_is_steady () =
  let steady = sine ~t1:2.0 () in
  Alcotest.(check bool) "steady sine" true (Waveform.Measure.is_steady steady);
  let times = Array.init 4000 (fun k -> float_of_int k /. 2000.0) in
  let values =
    Array.map (fun t -> exp (0.8 *. t) *. cos (2.0 *. Float.pi *. 10.0 *. t)) times
  in
  let growing = Waveform.Signal.make ~times ~values in
  Alcotest.(check bool) "growing not steady" false (Waveform.Measure.is_steady growing)

let prop_fundamental_phasor =
  qtest ~count:50 "measure: fundamental recovers amplitude and phase"
    QCheck.(pair (float_range 0.2 3.0) (float_range (-3.0) 3.0))
    (fun (ampl, phase) ->
      let s = sine ~freq:8.0 ~ampl ~phase ~n:16000 () in
      let x = Waveform.Measure.fundamental s ~freq:8.0 in
      (* waveform a cos(wt + p) has one-sided phasor (a/2) e^{jp} *)
      Float.abs (Numerics.Cx.abs x -. (ampl /. 2.0)) < 1e-3 *. ampl
      && Numerics.Angle.dist (Numerics.Cx.arg x) phase < 1e-2)

let test_phase_profile_flat_for_locked () =
  let s = sine ~freq:10.0 ~t1:4.0 ~n:40000 ~phase:0.7 () in
  let profile = Waveform.Measure.phase_vs_reference s ~freq:10.0 ~windows:8 in
  Array.iter (fun p -> check_float ~eps:1e-3 "flat profile" 0.7 p) profile

let test_phase_profile_drifts_when_detuned () =
  (* a 10.2 Hz tone against a 10 Hz reference drifts 2 pi * 0.2 rad/s *)
  let s = sine ~freq:10.2 ~t1:4.0 ~n:40000 () in
  let profile = Waveform.Measure.phase_vs_reference s ~freq:10.0 ~windows:16 in
  let span = profile.(15) -. profile.(0) in
  check_float ~eps:0.3 "drift slope" (2.0 *. Float.pi *. 0.2 *. 4.0 *. 15.0 /. 16.0) span

(* Spectrum *)

let test_spectrum_dominant () =
  let s = sine ~freq:50.0 ~t1:1.0 ~n:4096 () in
  let spec = Waveform.Spectrum.compute s in
  let f, m = Waveform.Spectrum.dominant spec in
  check_float ~eps:0.5 "dominant freq" 50.0 f;
  check_float ~eps:0.05 "dominant magnitude" 1.0 m

let test_spectrum_two_tone () =
  let times = Array.init 8192 (fun k -> float_of_int k /. 8191.0) in
  let values =
    Array.map
      (fun t ->
        cos (2.0 *. Float.pi *. 40.0 *. t) +. (0.3 *. cos (2.0 *. Float.pi *. 120.0 *. t)))
      times
  in
  let s = Waveform.Signal.make ~times ~values in
  let spec = Waveform.Spectrum.compute s in
  let f, _ = Waveform.Spectrum.dominant spec in
  check_float ~eps:0.5 "strongest tone" 40.0 f;
  Alcotest.(check bool) "second tone visible" true
    (Waveform.Spectrum.magnitude_at spec 120.0 > 0.2)

(* Lock *)

let test_lock_detects_locked () =
  let s = sine ~freq:10.0 ~t1:10.0 ~n:100000 () in
  let v = Waveform.Lock.analyze s ~f_target:10.0 in
  Alcotest.(check bool) "locked" true v.locked;
  check_float ~eps:1e-2 "freq measured" 10.0 v.freq_measured

let test_lock_detects_unlocked () =
  (* 0.5% detuned: drifting phase *)
  let s = sine ~freq:10.05 ~t1:10.0 ~n:100000 () in
  let v = Waveform.Lock.analyze s ~f_target:10.0 in
  Alcotest.(check bool) "unlocked" false v.locked;
  Alcotest.(check bool) "drift detected" true (Float.abs v.phase_drift > 0.1)

let test_relative_phase () =
  let s = sine ~freq:10.0 ~t1:5.0 ~n:50000 ~phase:1.1 () in
  check_float ~eps:1e-2 "relative phase" 1.1 (Waveform.Lock.relative_phase s ~f_target:10.0)

let () =
  Alcotest.run "waveform"
    [
      ( "signal",
        [
          Alcotest.test_case "validation" `Quick test_signal_validation;
          Alcotest.test_case "slice" `Quick test_signal_slice;
          Alcotest.test_case "value_at" `Quick test_signal_value_at;
          Alcotest.test_case "mean" `Quick test_signal_mean;
          Alcotest.test_case "tail fraction" `Quick test_tail_fraction;
        ] );
      ( "measure",
        [
          Alcotest.test_case "crossings count" `Quick test_crossings_count;
          prop_frequency_estimate;
          prop_amplitude_estimate;
          Alcotest.test_case "no oscillation" `Quick test_no_oscillation;
          Alcotest.test_case "peaks" `Quick test_peaks;
          Alcotest.test_case "is_steady" `Quick test_is_steady;
          prop_fundamental_phasor;
          Alcotest.test_case "phase flat when locked" `Quick test_phase_profile_flat_for_locked;
          Alcotest.test_case "phase drifts when detuned" `Quick test_phase_profile_drifts_when_detuned;
        ] );
      ( "spectrum",
        [
          Alcotest.test_case "dominant" `Quick test_spectrum_dominant;
          Alcotest.test_case "two tone" `Quick test_spectrum_two_tone;
        ] );
      ( "lock",
        [
          Alcotest.test_case "locked" `Quick test_lock_detects_locked;
          Alcotest.test_case "unlocked" `Quick test_lock_detects_unlocked;
          Alcotest.test_case "relative phase" `Quick test_relative_phase;
        ] );
    ]
