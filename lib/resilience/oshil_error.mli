(** Unified error taxonomy for the whole solver stack.

    Every failure mode of the numerical pipeline — Newton divergence,
    singular systems, transient step failure, exhausted retry budgets,
    missing oscillation, parse errors — is a value of {!t} carrying
    structured context (subsystem, phase, operating point, iteration or
    residual at failure) and, where known, a suggested remedy. Values
    render through the {!Check.Diagnostic} machinery so CLI output,
    [oshil lint] and failure summaries share one format.

    Library code raises {!Error}; fan-out layers catch it per work item
    and degrade (see {!Summary}), entry points catch it once and turn it
    into a diagnostic + exit code. *)

type subsystem =
  | Numerics
  | Spice
  | Shil
  | Ppv
  | Waveform
  | Circuits
  | Experiments
  | Serve

type kind =
  | Solver_divergence  (** iterative solver failed to converge *)
  | Singular_system  (** linear system singular at the point of use *)
  | Step_failure  (** transient step rejected beyond recovery *)
  | No_oscillation  (** circuit has no (stable) natural oscillation *)
  | Root_failure  (** root finder failed (bracket, Newton 2-D, ...) *)
  | Budget_exhausted  (** retry / rejected-step / wall-clock budget hit *)
  | Measurement_failure  (** waveform measurement ill-posed *)
  | Parse_failure  (** input (netlist, scenario, fault plan) invalid *)
  | Fault_injected  (** deterministic fault from {!Fault} *)
  | Overload  (** server job queue full, or the daemon is draining *)

type t = {
  subsystem : subsystem;
  phase : string;  (** pipeline phase, e.g. ["op"], ["transient"] *)
  kind : kind;
  msg : string;
  context : (string * string) list;
      (** structured details: iteration, residual, t, operating point *)
  remedy : string option;  (** actionable suggestion, if one is known *)
}

exception Error of t

val make :
  ?context:(string * string) list ->
  ?remedy:string ->
  subsystem ->
  phase:string ->
  kind ->
  string ->
  t

val raise_ :
  ?context:(string * string) list ->
  ?remedy:string ->
  subsystem ->
  phase:string ->
  kind ->
  string ->
  'a
(** [raise_ sub ~phase kind msg] builds the error, bumps the
    [resilience.errors] counters and raises {!Error}. *)

val of_exn : subsystem -> phase:string -> exn -> t
(** Wrap an arbitrary exception as a typed error; {!Error} payloads
    pass through unchanged. *)

val subsystem_name : subsystem -> string
val code : t -> string
(** Stable kebab-case code of the kind, e.g. ["solver-divergence"]. *)

val loc : t -> string
(** ["subsystem.phase"] — the diagnostic anchor. *)

val to_diagnostic : t -> Check.Diagnostic.t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
