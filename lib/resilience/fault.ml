let site_names =
  [
    ("newton-singular", "singular Jacobian at the k-th MNA Newton solve");
    ("device-nan", "NaN device evaluation at the k-th MNA Newton solve");
    ("tran-reject", "reject the k-th transient Newton step attempt");
    ("hb-singular", "singular Jacobian at the k-th harmonic-balance iteration");
    ("roots-fail", "Roots.newton2d fails on its k-th call");
    ("grid-point", "fail the k-th amplitude row of Grid.sample");
    ("pool-task", "fail the k-th task of a resilient pool fan-out");
    ("lock-probe", "fail the k-th lock-range stability probe");
    ("validate-point", "fail the k-th Validate.lock_range transient probe");
    ("serve-request", "fail the k-th request handled by the oshil serve daemon");
    ("hb-newton", "fail the k-th harmonic-balance Newton solve attempt");
  ]

type window = { start : int; count : int }

type site_state = {
  name : string;
  window : window;
  occurrences : int Atomic.t;  (* serial occurrence counter for [fire] *)
}

(* The active plan. [None] keeps the hot path to a single atomic load. *)
let plan : site_state list option Atomic.t = Atomic.make None
let plan_text : string option ref = ref None

let armed () = Atomic.get plan <> None
let plan_string () = !plan_text

let clear () =
  Atomic.set plan None;
  plan_text := None

exception Bad_spec of string

let parse_spec spec =
  (* site | site@START | site@STARTxCOUNT *)
  let name, window =
    match String.index_opt spec '@' with
    | None -> (spec, { start = 0; count = max_int })
    | Some i ->
      let name = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let start_s, count_s =
        match String.index_opt rest 'x' with
        | None -> (rest, None)
        | Some j ->
          ( String.sub rest 0 j,
            Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
      in
      let parse_int what s =
        match int_of_string_opt s with
        | Some n when n >= 0 -> n
        | _ ->
          (* dsa: allow raise-escape — Bad_spec is internal: [parse] converts it to [Error] before it crosses the interface *)
          raise (Bad_spec (Printf.sprintf "invalid %s %S in fault %S" what s spec))
      in
      let start = parse_int "start" start_s in
      let count =
        match count_s with
        | None -> 1
        | Some s ->
          let n = parse_int "count" s in
          if n = 0 then
            (* dsa: allow raise-escape — Bad_spec is internal: [parse] converts it to [Error] before it crosses the interface *)
            raise (Bad_spec (Printf.sprintf "zero count in fault %S" spec));
          n
      in
      (name, { start; count })
  in
  if not (List.mem_assoc name site_names) then
    (* dsa: allow raise-escape — Bad_spec is internal: [parse] converts it to [Error] before it crosses the interface *)
    raise
      (Bad_spec
         (Printf.sprintf "unknown fault site %S (known: %s)" name
            (String.concat ", " (List.map fst site_names))));
  (name, window)

let parse text =
  let specs =
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if specs = [] then Error "empty fault plan"
  else
    match List.map parse_spec specs with
    | sites -> Ok sites
    | exception Bad_spec msg -> Error msg

let set_windows sites =
  match sites with
  | [] -> clear ()
  | _ ->
    let states =
      List.map
        (fun (name, window) -> { name; window; occurrences = Atomic.make 0 })
        sites
    in
    Atomic.set plan (Some states)

let configure text =
  match parse text with
  | Error _ as e -> e
  | Ok sites ->
    set_windows sites;
    plan_text := Some text;
    Ok ()

let configure_from_env () =
  match Sys.getenv_opt "OSHIL_FAULTS" with
  | None | Some "" -> ()
  | Some text -> (
    match configure text with
    | Ok () -> ()
    | Error msg ->
      Oshil_error.raise_ Numerics ~phase:"fault-plan" Parse_failure
        ("OSHIL_FAULTS: " ^ msg)
        ~remedy:"use site[@START[xCOUNT]], comma-separated")

let in_window w k = k >= w.start && k - w.start < w.count

let hit name =
  Obs.Metrics.incr "resilience.faults.injected";
  Obs.Metrics.incr ("resilience.faults." ^ name)

let fire name =
  match Atomic.get plan with
  | None -> false
  | Some states -> (
    match List.find_opt (fun s -> s.name = name) states with
    | None -> false
    | Some s ->
      let k = Atomic.fetch_and_add s.occurrences 1 in
      let f = in_window s.window k in
      if f then hit name;
      f)

let fire_at name ~k =
  match Atomic.get plan with
  | None -> false
  | Some states -> (
    match List.find_opt (fun s -> s.name = name) states with
    | None -> false
    | Some s ->
      let f = in_window s.window k in
      if f then hit name;
      f)

let error ~site subsystem ~phase =
  Oshil_error.make subsystem ~phase Fault_injected
    ("injected fault at site " ^ site)
    ~context:[ ("site", site) ]
    ~remedy:"remove the fault plan (OSHIL_FAULTS / --inject-fault)"
