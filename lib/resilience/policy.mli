(** Recovery-policy engine: declarative retry ladders with budgets.

    A ladder is an ordered list of {!rung}s — cheapest first — tried in
    sequence until one succeeds. Each rung taken past the first bumps a
    [resilience.<phase>.rung.<name>] counter, successful recovery bumps
    [resilience.<phase>.recovered], total failure
    [resilience.<phase>.failed]; budgets (retry count, rejected steps,
    wall clock via {!Obs.Clock}) turn runaway retries into a typed
    [Budget_exhausted] error. *)

type budget = {
  max_retries : int;  (** total rungs attempted per {!escalate} *)
  max_rejected_steps : int;  (** per-run transient step rejections *)
  wall_clock_s : float option;  (** cap on elapsed monotonic seconds *)
}

val default_budget : budget
(** [{max_retries = 64; max_rejected_steps = 100_000; wall_clock_s = None}]
    — generous enough that healthy runs never hit it. *)

val set_fail_fast : bool -> unit
(** Global degrade-vs-abort switch: when on, fan-out layers re-raise
    the first per-point error instead of recording a hole. *)

val fail_fast : unit -> bool

type 'a rung

val rung : string -> (unit -> ('a, string) result) -> 'a rung
(** [rung name attempt] — a named recovery strategy. *)

val escalate :
  ?budget:budget ->
  subsystem:Oshil_error.subsystem ->
  phase:string ->
  'a rung list ->
  ('a, Oshil_error.t) result
(** Try each rung in order; first [Ok] wins. A rung raising
    {!Oshil_error.Error} aborts the ladder with that error (used for
    budget propagation from nested machinery). *)

type step_tracker

val track_steps :
  ?budget:budget ->
  subsystem:Oshil_error.subsystem ->
  phase:string ->
  unit ->
  step_tracker

val note_rejection :
  ?context:(string * string) list -> step_tracker -> (unit, Oshil_error.t) result
(** Record one rejected step; [Error] once the rejected-step or
    wall-clock budget is exhausted. *)

val rejections : step_tracker -> int
