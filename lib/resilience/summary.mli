(** Failure summary attached to partial results.

    Fan-out layers ([Grid.sample], lock-range probes, tongue sweeps,
    resilient pool maps) record each failed work item as a typed hole —
    a site label plus the {!Oshil_error.t} that killed it — and keep
    going. The summary travels with the partial result so callers can
    decide whether the holes matter. *)

type failure = { site : string; error : Oshil_error.t }
(** [site] identifies the failed item, e.g. ["row a=1.25"],
    ["f_inj=9.98e8"], ["task 7"]. *)

type t = { attempted : int; failures : failure list }

val empty : t
val make : attempted:int -> failure list -> t
val failed : t -> int
val is_clean : t -> bool
val merge : t -> t -> t
val to_diagnostics : t -> Check.Diagnostic.t list
val pp : Format.formatter -> t -> unit
val to_string : t -> string
