type budget = {
  max_retries : int;
  max_rejected_steps : int;
  wall_clock_s : float option;
}

let default_budget =
  { max_retries = 64; max_rejected_steps = 100_000; wall_clock_s = None }

(* Global degrade-vs-abort switch. Degradation sites consult it and
   re-raise instead of recording a hole when fail-fast is on. *)
let fail_fast_flag = Atomic.make false
let set_fail_fast b = Atomic.set fail_fast_flag b
let fail_fast () = Atomic.get fail_fast_flag

type 'a rung = { name : string; attempt : unit -> ('a, string) result }

let rung name attempt = { name; attempt }

let budget_error ~subsystem ~phase ~budget_name ~limit ~spent last_err =
  Obs.Metrics.incr "resilience.budget.exhausted";
  Oshil_error.make subsystem ~phase Budget_exhausted
    (Printf.sprintf "%s budget exhausted (%d of %d)" budget_name spent limit)
    ~context:
      [
        ("budget", budget_name);
        ("limit", string_of_int limit);
        ("spent", string_of_int spent);
        ("last_error", last_err);
      ]
    ~remedy:"raise the budget or relax tolerances"

let wall_error ~subsystem ~phase ~cap ~spent last_err =
  Obs.Metrics.incr "resilience.budget.exhausted";
  Oshil_error.make subsystem ~phase Budget_exhausted
    (Printf.sprintf "wall-clock budget exhausted (%.3fs of %.3fs cap)" spent cap)
    ~context:
      [
        ("budget", "wall-clock");
        ("cap_s", Printf.sprintf "%.3f" cap);
        ("spent_s", Printf.sprintf "%.3f" spent);
        ("last_error", last_err);
      ]
    ~remedy:"raise wall_clock_s or shrink the problem"

let escalate ?(budget = default_budget) ~subsystem ~phase rungs =
  let t0 = Obs.Clock.wall_s () in
  let metric name = "resilience." ^ phase ^ "." ^ name in
  let over_wall () =
    match budget.wall_clock_s with
    | None -> None
    | Some cap ->
      let spent = Obs.Clock.wall_s () -. t0 in
      if spent > cap then Some (cap, spent) else None
  in
  let rec go i names_tried last = function
    | [] ->
      Obs.Metrics.incr (metric "failed");
      Error
        (Oshil_error.make subsystem ~phase Solver_divergence
           (Printf.sprintf "all %d recovery rungs failed: %s" i last)
           ~context:
             [
               ("rungs", String.concat "," (List.rev names_tried));
               ("last_error", last);
             ]
           ~remedy:"inspect the rung errors; the circuit may be ill-posed")
    | r :: rest -> (
      if i >= budget.max_retries then
        Error
          (budget_error ~subsystem ~phase ~budget_name:"max_retries"
             ~limit:budget.max_retries ~spent:i last)
      else
        match over_wall () with
        | Some (cap, spent) -> Error (wall_error ~subsystem ~phase ~cap ~spent last)
        | None -> (
          if i > 0 then Obs.Metrics.incr (metric "rung." ^ r.name);
          match r.attempt () with
          | Ok v ->
            if i > 0 then Obs.Metrics.incr (metric "recovered");
            Ok v
          | Error msg -> go (i + 1) (r.name :: names_tried) msg rest
          | exception Oshil_error.Error e -> Error e))
  in
  go 0 [] "no rungs attempted" rungs

(* Rejected-step accounting for transient integration. *)
type step_tracker = {
  tbudget : budget;
  tsubsystem : Oshil_error.subsystem;
  tphase : string;
  tstart : float;
  mutable rejected : int;
}

let track_steps ?(budget = default_budget) ~subsystem ~phase () =
  {
    tbudget = budget;
    tsubsystem = subsystem;
    tphase = phase;
    tstart = Obs.Clock.wall_s ();
    rejected = 0;
  }

let rejections t = t.rejected

let note_rejection ?(context = []) t =
  t.rejected <- t.rejected + 1;
  Obs.Metrics.incr ("resilience." ^ t.tphase ^ ".rejected_steps");
  ignore context;
  if t.rejected > t.tbudget.max_rejected_steps then
    Error
      (budget_error ~subsystem:t.tsubsystem ~phase:t.tphase
         ~budget_name:"max_rejected_steps" ~limit:t.tbudget.max_rejected_steps
         ~spent:t.rejected "too many rejected steps")
  else
    match t.tbudget.wall_clock_s with
    | None -> Ok ()
    | Some cap ->
      let spent = Obs.Clock.wall_s () -. t.tstart in
      if spent > cap then
        Error
          (wall_error ~subsystem:t.tsubsystem ~phase:t.tphase ~cap ~spent
             "too slow")
      else Ok ()
