(* Thread-keyed deadline registry. [active] counts threads that currently
   hold a deadline so that the common no-deadline case costs one atomic
   load and never touches the mutex. *)

let active = Atomic.make 0
let mu = Mutex.create ()
let table : (int, float) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let current () =
  if Atomic.get active = 0 then None
  else
    let id = Thread.id (Thread.self ()) in
    locked (fun () -> Hashtbl.find_opt table id)

let save = current

let set_current d =
  let id = Thread.id (Thread.self ()) in
  locked (fun () ->
      match d with
      | Some abs ->
        if not (Hashtbl.mem table id) then Atomic.incr active;
        Hashtbl.replace table id abs
      | None ->
        if Hashtbl.mem table id then begin
          Hashtbl.remove table id;
          Atomic.decr active
        end)

let with_deadline ~seconds f =
  let prev = current () in
  let abs = Obs.Clock.wall_s () +. seconds in
  let abs = match prev with Some p -> Float.min p abs | None -> abs in
  set_current (Some abs);
  Fun.protect ~finally:(fun () -> set_current prev) f

let expired_abs = function
  | None -> false
  | Some abs -> Obs.Clock.wall_s () >= abs

let expired () = expired_abs (current ())

let remaining_s () =
  match current () with
  | None -> None
  | Some abs -> Some (Float.max 0. (abs -. Obs.Clock.wall_s ()))

let error subsystem ~phase =
  Oshil_error.make subsystem ~phase Budget_exhausted
    "wall-clock deadline exceeded"
    ~remedy:"raise the request deadline or reduce the work per request"

let note subsystem ~phase =
  Obs.Metrics.incr "resilience.deadline.expired";
  Obs.Metrics.incr
    ("resilience.deadline.expired." ^ Oshil_error.subsystem_name subsystem);
  error subsystem ~phase

let check_abs d subsystem ~phase =
  if expired_abs d then raise (Oshil_error.Error (note subsystem ~phase))

let check subsystem ~phase = check_abs (current ()) subsystem ~phase

let check_result subsystem ~phase =
  if expired () then Error (note subsystem ~phase) else Ok ()
