type subsystem =
  | Numerics
  | Spice
  | Shil
  | Ppv
  | Waveform
  | Circuits
  | Experiments
  | Serve

type kind =
  | Solver_divergence
  | Singular_system
  | Step_failure
  | No_oscillation
  | Root_failure
  | Budget_exhausted
  | Measurement_failure
  | Parse_failure
  | Fault_injected
  | Overload

type t = {
  subsystem : subsystem;
  phase : string;
  kind : kind;
  msg : string;
  context : (string * string) list;
  remedy : string option;
}

exception Error of t

let subsystem_name = function
  | Numerics -> "numerics"
  | Spice -> "spice"
  | Shil -> "shil"
  | Ppv -> "ppv"
  | Waveform -> "waveform"
  | Circuits -> "circuits"
  | Experiments -> "experiments"
  | Serve -> "serve"

let code t =
  match t.kind with
  | Solver_divergence -> "solver-divergence"
  | Singular_system -> "singular-system"
  | Step_failure -> "step-failure"
  | No_oscillation -> "no-oscillation"
  | Root_failure -> "root-failure"
  | Budget_exhausted -> "budget-exhausted"
  | Measurement_failure -> "measurement-failure"
  | Parse_failure -> "parse-failure"
  | Fault_injected -> "fault-injected"
  | Overload -> "overload"

let loc t = subsystem_name t.subsystem ^ "." ^ t.phase

let make ?(context = []) ?remedy subsystem ~phase kind msg =
  { subsystem; phase; kind; msg; context; remedy }

let raise_ ?context ?remedy subsystem ~phase kind msg =
  let t = make ?context ?remedy subsystem ~phase kind msg in
  Obs.Metrics.incr "resilience.errors";
  Obs.Metrics.incr ("resilience.errors." ^ subsystem_name t.subsystem);
  raise (Error t)

let of_exn subsystem ~phase = function
  | Error t -> t
  | Check.Diagnostic.Failed ds ->
    make subsystem ~phase Parse_failure
      (Format.asprintf "pre-flight checks failed: %a" Check.Diagnostic.pp_report
         (Check.Diagnostic.errors ds))
  | e ->
    make subsystem ~phase Solver_divergence (Printexc.to_string e)
      ~context:[ ("exception", Printexc.exn_slot_name e) ]

let context_string t =
  match t.context with
  | [] -> ""
  | ctx ->
    " ["
    ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) ctx)
    ^ "]"

let to_diagnostic t =
  Check.Diagnostic.error ~code:(code t) ~loc:(loc t)
    (t.msg ^ context_string t
    ^ match t.remedy with None -> "" | Some r -> " (remedy: " ^ r ^ ")")

let pp ppf t = Check.Diagnostic.pp ppf (to_diagnostic t)
let to_string t = Format.asprintf "%a" pp t

let () =
  Printexc.register_printer (function
    | Error t -> Some ("Oshil_error.Error: " ^ to_string t)
    | _ -> None)
