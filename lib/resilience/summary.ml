type failure = { site : string; error : Oshil_error.t }
type t = { attempted : int; failures : failure list }

let empty = { attempted = 0; failures = [] }
let make ~attempted failures = { attempted; failures }
let failed t = List.length t.failures
let is_clean t = t.failures = []

let merge a b =
  { attempted = a.attempted + b.attempted; failures = a.failures @ b.failures }

let to_diagnostics t =
  List.map (fun f -> Oshil_error.to_diagnostic f.error) t.failures

let pp ppf t =
  if is_clean t then
    Format.fprintf ppf "all %d points ok" t.attempted
  else begin
    Format.fprintf ppf "%d/%d points failed:" (failed t) t.attempted;
    List.iter
      (fun f ->
        Format.fprintf ppf "@\n  %s: %a" f.site Oshil_error.pp f.error)
      t.failures
  end

let to_string t = Format.asprintf "%a" pp t
