(** Deterministic fault injection.

    A fault plan is a comma-separated list of [site[@START[xCOUNT]]]
    specs (env [OSHIL_FAULTS], CLI [--inject-fault]):

    - [newton-singular@0] — fail the first Newton solve;
    - [tran-reject@3x2] — reject transient step attempts 3 and 4;
    - [grid-point] — fail every grid row (bare site = always).

    Each site keeps its own occurrence counter, so plans are
    deterministic for serial call sites; index-addressed sites
    ([grid-point], [pool-task], ...) use {!fire_at} with the work-item
    index and are deterministic regardless of pool scheduling.

    With no plan configured every probe is a single atomic load
    returning [false] — zero faults injected means bit-identical
    results. *)

type window = { start : int; count : int }

val site_names : (string * string) list
(** Known sites with one-line descriptions (for [--help] and docs). *)

val parse : string -> ((string * window) list, string) result
val configure : string -> (unit, string) result
(** Parse and install a plan; resets all occurrence counters. *)

val configure_from_env : unit -> unit
(** Install the plan from [OSHIL_FAULTS] if set; raises
    {!Oshil_error.Error} ([Parse_failure]) on a malformed plan. *)

val set_windows : (string * window) list -> unit
val clear : unit -> unit
val armed : unit -> bool
val plan_string : unit -> string option

val fire : string -> bool
(** [fire site] — true iff this occurrence (per-site counter, counted
    from 0) falls in the site's window. Counts even when it misses. *)

val fire_at : string -> k:int -> bool
(** [fire_at site ~k] — true iff work-item index [k] falls in the
    window. Does not touch the occurrence counter. *)

val error : site:string -> Oshil_error.subsystem -> phase:string -> Oshil_error.t
(** The typed error describing an injected fault at [site]. *)
