(** Cooperative per-request wall-clock deadlines.

    A deadline is an absolute {!Obs.Clock.wall_s} instant attached to the
    calling thread for the duration of {!with_deadline}. Long-running
    kernels poll {!check} (or the [_abs] variants below, for work handed
    to {!Numerics.Pool} domains that do not share the submitting thread's
    state) and unwind with a typed [Budget_exhausted] {!Oshil_error.t}
    when the budget is spent, so callers surface partial results as
    {!Summary} holes instead of hanging past their budget.

    Deadlines are keyed by [Thread.id]: the server runs one worker thread
    per in-flight request, so each request sees only its own budget.
    Nested [with_deadline] scopes keep the tighter (earlier) instant.
    When no deadline is active every probe is a single atomic load. *)

val with_deadline : seconds:float -> (unit -> 'a) -> 'a
(** [with_deadline ~seconds f] runs [f] with a deadline [seconds] from
    now attached to the current thread (restoring the previous deadline,
    if any, afterwards — even on exception). [seconds <= 0.] means the
    deadline is already expired: the first {!check} inside [f] raises.
    Nested scopes keep the minimum of the two absolute instants. *)

val save : unit -> float option
(** The current thread's absolute deadline, if one is active. Capture
    this before fanning work out to pool domains and probe it there with
    {!expired_abs} / {!check_abs}: pool workers run on other threads and
    do not inherit the submitter's deadline. *)

val remaining_s : unit -> float option
(** Seconds left on the current thread's deadline ([Some 0.] once
    expired), or [None] when no deadline is active. *)

val expired : unit -> bool
(** [true] iff the current thread has a deadline and it has passed. *)

val expired_abs : float option -> bool
(** [expired_abs d] — has the captured absolute deadline [d] passed? *)

val error : Oshil_error.subsystem -> phase:string -> Oshil_error.t
(** The typed [Budget_exhausted] error reported when a deadline fires. *)

val check : Oshil_error.subsystem -> phase:string -> unit
(** Raise {!Oshil_error.Error} (kind [Budget_exhausted]) if the current
    thread's deadline has passed; no-op otherwise. *)

val check_abs : float option -> Oshil_error.subsystem -> phase:string -> unit
(** {!check} against a deadline captured with {!save}. *)

val check_result :
  Oshil_error.subsystem -> phase:string -> (unit, Oshil_error.t) result
(** Non-raising {!check}, for sites that thread [result] values. *)
