type params = {
  vbias : float;
  tunnel : Spice.Device.tunnel_params;
  r : float;
  l : float;
  c : float;
  kick : float;
}

let fc_paper = 1.0 /. (2.0 *. Float.pi *. sqrt (100e-9 *. 1e-12)) (* 503.292 MHz *)

(* Calibrated via Calibrate.fit_tank (see DESIGN.md §3): R gives the
   paper's natural amplitude 0.199 V; Q gives the paper's 3rd-SHIL lock
   range 5.109 MHz at |Vi| = 0.03 V (phi_d_max = 0.81967). *)
let default =
  let r = 10011.218 in
  let q = 316.51701 in
  let z0 = r /. q in
  let wc = 2.0 *. Float.pi *. fc_paper in
  {
    vbias = 0.25;
    tunnel = Spice.Device.paper_tunnel;
    r;
    l = z0 /. wc;
    c = 1.0 /. (z0 *. wc);
    kick = 20e-6;
  }

let nonlinearity p =
  let params v = Spice.Device.tunnel_iv p.tunnel v in
  Shil.Nonlinearity.tunnel_diode ~params ~bias:p.vbias ()

let extraction_fv ?(v_span = 0.6) ?(steps = 240) p =
  let circuit v =
    Spice.Circuit.of_devices
      [
        Spice.Device.Vsource { name = "VX"; np = "a"; nn = "0"; wave = Spice.Wave.Dc v };
        Spice.Device.Tunnel_diode { name = "TD"; np = "a"; nn = "0"; p = p.tunnel };
      ]
  in
  let vs = Numerics.Kernel.linspace (-0.1) v_span (steps + 1) in
  let is =
    Array.map
      (fun v ->
        let op = Spice.Op.run (circuit v) in
        -.Spice.Op.current op "VX")
      vs
  in
  (vs, is)

let nonlinearity_extracted ?v_span ?steps p =
  let vs, is = extraction_fv ?v_span ?steps p in
  let table = Shil.Nonlinearity.of_table ~name:"tunnel_table" ~vs ~is () in
  Shil.Nonlinearity.shift_bias table p.vbias

let tank p = Shil.Tank.make ~r:p.r ~l:p.l ~c:p.c

let oscillator p : Shil.Analysis.oscillator =
  { nl = nonlinearity p; tank = tank p }

type injection = { vi : float; n : int; f_inj : float; phase : float }

let circuit ?injection ?(extra = []) p =
  let inj_wave =
    match injection with
    | None -> Spice.Wave.Dc 0.0
    | Some inj ->
      Spice.Wave.Sine
        {
          offset = 0.0;
          ampl = 2.0 *. inj.vi;
          freq = inj.f_inj;
          phase = inj.phase +. (Float.pi /. 2.0);
          delay = 0.0;
        }
  in
  let fc = Shil.Tank.f_c (tank p) in
  Spice.Circuit.of_devices
    ([
       Spice.Device.Vsource
         { name = "VB"; np = "b"; nn = "0"; wave = Spice.Wave.Dc p.vbias };
       Spice.Device.Inductor { name = "LT"; n1 = "b"; n2 = "t"; l = p.l; ic = None };
       Spice.Device.Capacitor { name = "CT"; n1 = "t"; n2 = "0"; c = p.c; ic = None };
       Spice.Device.Resistor { name = "RT"; n1 = "t"; n2 = "0"; r = p.r };
       (* series injection between tank node and diode anode *)
       Spice.Device.Vsource { name = "VINJ"; np = "d"; nn = "t"; wave = inj_wave };
       Spice.Device.Tunnel_diode { name = "TD"; np = "d"; nn = "0"; p = p.tunnel };
       Spice.Device.Isource
         {
           name = "IKICK";
           np = "0";
           nn = "t";
           wave =
             Spice.Wave.Pulse
               {
                 v1 = 0.0;
                 v2 = p.kick;
                 delay = 0.0;
                 rise = 0.05 /. fc;
                 fall = 0.05 /. fc;
                 width = 0.25 /. fc;
                 period = 0.0;
               };
         };
     ]
    @ extra)

let osc_probe = Spice.Transient.Node "t"
