type params = {
  vcc : float;
  iee : float;
  bjt : Spice.Device.bjt_params;
  r : float;
  l : float;
  c : float;
  kick : float;
}

(* Calibration (see Calibrate and DESIGN.md §3): with IEE = 1 mA and the
   default NPN, R below makes the predicted natural amplitude the paper's
   0.505 V; Q is then chosen so the predicted 3rd-SHIL lock range at
   |Vi| = 0.03 V is the paper's 0.01767 MHz around the paper's 0.5033 MHz
   centre (phi_d_max = 0.30593 — compare the paper's Fig. 10 boundary of
   0.295). Re-derive with Calibrate.fit_tank. *)
let fc_paper = 1.0 /. (2.0 *. Float.pi *. sqrt (100e-6 *. 1e-9)) (* 503.292 kHz *)

let default =
  let r = 1222.7472 in
  let q = 26.988525 in
  let z0 = r /. q in
  let wc = 2.0 *. Float.pi *. fc_paper in
  {
    vcc = 5.0;
    iee = 1e-3;
    bjt = Spice.Device.default_npn;
    r;
    l = z0 /. wc;
    c = 1.0 /. (z0 *. wc);
    kick = 5e-5;
  }

let pair_devices p =
  [
    Spice.Device.Bjt { name = "QL"; nc = "ncl"; nb = "ncr"; ne = "e"; p = p.bjt };
    Spice.Device.Bjt { name = "QR"; nc = "ncr"; nb = "ncl"; ne = "e"; p = p.bjt };
    Spice.Device.Isource { name = "IEE"; np = "e"; nn = "0"; wave = Spice.Wave.Dc p.iee };
  ]

let core_devices p =
  Spice.Device.Vsource
    { name = "VCC"; np = "vcc"; nn = "0"; wave = Spice.Wave.Dc p.vcc }
  :: pair_devices p

let extraction_fv ?(v_span = 0.85) ?(steps = 240) p =
  (* the extraction rig pins both collectors, so the supply rail would
     dangle: build from the bare pair, without VCC *)
  let build v =
    Spice.Circuit.of_devices
      (pair_devices p
      @ [
          Spice.Device.Vsource
            { name = "VP"; np = "ncl"; nn = "0"; wave = Spice.Wave.Dc (p.vcc +. (v /. 2.0)) };
          Spice.Device.Vsource
            { name = "VM"; np = "ncr"; nn = "0"; wave = Spice.Wave.Dc (p.vcc -. (v /. 2.0)) };
        ])
  in
  (* sweep outward from v = 0 in both directions so the Newton
     continuation tracks the physical branch of the saturated junctions *)
  let vs = Numerics.Kernel.linspace (-.v_span) v_span (steps + 1) in
  let is = Array.make (steps + 1) 0.0 in
  (* every bias point solves the same topology: pre-flight it once *)
  Spice.Preflight.gate (build 0.0);
  let measure ~x0 v =
    let op = Spice.Op.run ~check:`Off ?x0 (build v) in
    (* port current into ncl is -I(VP); differential current is the
       half-difference (see DESIGN.md) *)
    let i_ncl = -.Spice.Op.current op "VP" in
    let i_ncr = -.Spice.Op.current op "VM" in
    (0.5 *. (i_ncl -. i_ncr), op.Spice.Op.x)
  in
  let mid = steps / 2 in
  let i0, x_mid = measure ~x0:None vs.(mid) in
  is.(mid) <- i0;
  let prev = ref (Some x_mid) in
  for k = mid + 1 to steps do
    let i, x = measure ~x0:!prev vs.(k) in
    is.(k) <- i;
    prev := Some x
  done;
  prev := Some x_mid;
  for k = mid - 1 downto 0 do
    let i, x = measure ~x0:!prev vs.(k) in
    is.(k) <- i;
    prev := Some x
  done;
  (vs, is)

let nonlinearity ?v_span ?steps p =
  let vs, is = extraction_fv ?v_span ?steps p in
  Shil.Nonlinearity.of_table ~name:"diff_pair" ~vs ~is ()

let tank p = Shil.Tank.make ~r:p.r ~l:p.l ~c:p.c

let oscillator ?v_span ?steps p : Shil.Analysis.oscillator =
  { nl = nonlinearity ?v_span ?steps p; tank = tank p }

type injection = { vi : float; n : int; f_inj : float; phase : float }

let circuit ?injection ?(extra = []) p =
  let inj_wave =
    match injection with
    | None -> Spice.Wave.Dc 0.0
    | Some inj ->
      Spice.Wave.Sine
        {
          offset = 0.0;
          ampl = 2.0 *. inj.vi;
          freq = inj.f_inj;
          (* Wave.Sine is sin-based; the theory phasor convention is
             cos-based: cos x = sin (x + pi/2) *)
          phase = inj.phase +. (Float.pi /. 2.0);
          delay = 0.0;
        }
  in
  let fc = Shil.Tank.f_c (tank p) in
  let devices =
    core_devices p
    @ [
        (* tank: two L/2 halves centre-tapped at VCC; R and C across *)
        Spice.Device.Inductor
          { name = "LL"; n1 = "vcc"; n2 = "tl"; l = p.l /. 2.0; ic = None };
        Spice.Device.Inductor
          { name = "LR"; n1 = "vcc"; n2 = "ncr"; l = p.l /. 2.0; ic = None };
        Spice.Device.Capacitor
          { name = "CT"; n1 = "tl"; n2 = "ncr"; c = p.c; ic = None };
        Spice.Device.Resistor { name = "RT"; n1 = "tl"; n2 = "ncr"; r = p.r };
        (* series injection: v(ncl) = v(tl) + v_inj -- Fig. 8a *)
        Spice.Device.Vsource { name = "VINJ"; np = "ncl"; nn = "tl"; wave = inj_wave };
        (* start-up kick *)
        Spice.Device.Isource
          {
            name = "IKICK";
            np = "ncr";
            nn = "tl";
            wave =
              Spice.Wave.Pulse
                {
                  v1 = 0.0;
                  v2 = p.kick;
                  delay = 0.0;
                  rise = 0.05 /. fc;
                  fall = 0.05 /. fc;
                  width = 0.25 /. fc;
                  period = 0.0;
                };
          };
      ]
    @ extra
  in
  Spice.Circuit.of_devices devices

let osc_probe = Spice.Transient.Diff ("ncl", "ncr")
