module Signal = Waveform.Signal

type natural_cmp = {
  predicted_a : float;
  simulated_a : float;
  predicted_f : float;
  simulated_f : float;
}

let transient_signal ~circuit ~probe ~dt ~t_stop ~t_start =
  let opts =
    { (Spice.Transient.default_options ~dt ~t_stop) with t_start }
  in
  let res = Spice.Transient.run circuit ~probes:[ probe ] opts in
  (* a truncated waveform would silently corrupt the measurement — turn
     a degraded transient back into a typed failure here *)
  (match res.failure with
  | Some e -> raise (Resilience.Oshil_error.Error e)
  | None -> ());
  Signal.make ~times:res.times ~values:(Spice.Transient.signal res probe)

let natural ?(cycles = 400.0) ?(steps_per_cycle = 120) ~circuit ~probe
    ~(osc : Shil.Analysis.oscillator) () =
  let fc = Shil.Tank.f_c osc.tank in
  let r = (osc.tank : Shil.Tank.t).r in
  let predicted_a =
    match Shil.Natural.predicted_amplitude osc.nl ~r with
    | Some a -> a
    | None -> Float.nan
  in
  let dt = 1.0 /. (fc *. float_of_int steps_per_cycle) in
  let t_stop = cycles /. fc in
  let s = transient_signal ~circuit ~probe ~dt ~t_stop ~t_start:0.0 in
  let tail = Signal.tail_fraction s 0.25 in
  let mean = Signal.mean tail in
  let centred = Signal.shift_values tail (-.mean) in
  {
    predicted_a;
    simulated_a = Waveform.Measure.amplitude centred;
    predicted_f = fc;
    simulated_f = Waveform.Measure.frequency centred;
  }

type lock_cmp = {
  predicted : Shil.Lock_range.t;
  sim_f_low : float;
  sim_f_high : float;
  sim_delta : float;
  failures : Resilience.Summary.t;
}

let lock_range ?(cycles = 600.0) ?(steps_per_cycle = 180) ?(rel_tol = 2e-5)
    ~make_circuit ~probe ~n ~(predicted : Shil.Lock_range.t) () =
  let f_center = 0.5 *. (predicted.f_inj_low +. predicted.f_inj_high) in
  let f_osc_center = f_center /. float_of_int n in
  let dt = 1.0 /. (f_osc_center *. float_of_int steps_per_cycle) in
  let t_stop = cycles /. f_osc_center in
  let probe_holes = ref [] in
  let holes_mu = Mutex.create () in
  let attempts = Atomic.make 0 in
  let locked f_inj =
    Atomic.incr attempts;
    match
      if Resilience.Fault.fire "validate-point" then
        raise
          (Resilience.Oshil_error.Error
             (Resilience.Fault.error ~site:"validate-point" Circuits
                ~phase:"validate"))
      else begin
        let s =
          transient_signal ~circuit:(make_circuit ~f_inj) ~probe ~dt ~t_stop
            ~t_start:0.0
        in
        let mean = Signal.mean s in
        let s = Signal.shift_values s (-.mean) in
        (Waveform.Lock.analyze s ~f_target:(f_inj /. float_of_int n)).locked
      end
    with
    | b -> b
    | exception e ->
      let err = Resilience.Oshil_error.of_exn Circuits ~phase:"validate" e in
      if Resilience.Policy.fail_fast () then
        raise (Resilience.Oshil_error.Error err);
      Obs.Metrics.incr "resilience.validate.holes";
      Mutex.protect holes_mu (fun () ->
          probe_holes :=
            { Resilience.Summary.site = Printf.sprintf "f_inj=%.8g" f_inj;
              error = err }
            :: !probe_holes);
      (* unknown lock state counts as unlocked: conservative for edges *)
      false
  in
  let tol = rel_tol *. f_center in
  let delta = Float.max (predicted.delta_f_inj *. 0.5) (20.0 *. tol) in
  let bisect ~f_guess ~side =
    (* widen the bracket around the predicted edge until it straddles *)
    let want_lo = match side with `Low -> false | `High -> true in
    let rec widen lo hi k =
      if k > 6 then
        Resilience.Oshil_error.raise_ Circuits ~phase:"validate" Root_failure
          "cannot bracket lock edge"
          ~context:
            [
              ("side", (match side with `Low -> "low" | `High -> "high"));
              ("f_guess", Printf.sprintf "%.8g" f_guess);
            ]
          ~remedy:"widen the search (rel_tol) or re-check the prediction"
      else begin
        let lo_ok = locked lo = want_lo and hi_ok = locked hi <> want_lo in
        match (lo_ok, hi_ok) with
        | true, true -> (lo, hi)
        | false, _ -> widen (lo -. delta) hi (k + 1)
        | _, false -> widen lo (hi +. delta) (k + 1)
      end
    in
    let lo, hi = widen (f_guess -. delta) (f_guess +. delta) 0 in
    let lo = ref lo and hi = ref hi in
    while !hi -. !lo > tol do
      let mid = 0.5 *. (!lo +. !hi) in
      if locked mid = want_lo then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  in
  (* the two edge searches are independent chains of transient runs; on a
     multicore pool they proceed concurrently. A failed edge becomes a
     NaN + typed hole instead of killing the whole comparison. *)
  let edges =
    Numerics.Pool.parallel_try_map_array ~chunk:1 ~subsystem:Circuits
      ~phase:"validate"
      (fun side ->
        match side with
        | `Low -> bisect ~f_guess:predicted.f_inj_low ~side:`Low
        | `High -> bisect ~f_guess:predicted.f_inj_high ~side:`High)
      [| `Low; `High |]
  in
  let edge_holes = ref [] in
  let edge name = function
    | Ok v -> v
    | Error e ->
      if Resilience.Policy.fail_fast () then
        raise (Resilience.Oshil_error.Error e);
      edge_holes :=
        { Resilience.Summary.site = name ^ " edge"; error = e } :: !edge_holes;
      Float.nan
  in
  let sim_f_low = edge "low" edges.(0) in
  let sim_f_high = edge "high" edges.(1) in
  let failures =
    Resilience.Summary.make ~attempted:(Atomic.get attempts)
      (List.rev !probe_holes @ List.rev !edge_holes)
  in
  { predicted; sim_f_low; sim_f_high; sim_delta = sim_f_high -. sim_f_low;
    failures }

let lock_states ?(cycles = 900.0) ?(steps_per_cycle = 180) ~make_circuit
    ~probe ~n ~f_inj ~pulse ~pulse_times () =
  let f_osc = f_inj /. float_of_int n in
  let dt = 1.0 /. (f_osc *. float_of_int steps_per_cycle) in
  let t_stop = cycles /. f_osc in
  let extra = List.map (fun at -> pulse ~at) pulse_times in
  let s =
    transient_signal ~circuit:(make_circuit ~extra) ~probe ~dt ~t_stop
      ~t_start:0.0
  in
  let mean = Signal.mean s in
  let s = Signal.shift_values s (-.mean) in
  (* windows: from after each pulse (plus settle margin) to the next *)
  let boundaries = 0.0 :: List.sort Float.compare pulse_times in
  let ends = List.tl boundaries @ [ t_stop ] in
  List.map2
    (fun t0 t1 ->
      let settle = 0.35 *. (t1 -. t0) in
      let w = Signal.slice s ~t_min:(t0 +. settle) ~t_max:t1 in
      Numerics.Cx.arg (Waveform.Measure.fundamental w ~freq:f_osc))
    boundaries ends

let pp_natural ppf c =
  Format.fprintf ppf
    "natural: A pred %.4g V / sim %.4g V (%.2f%% err); f pred %.6g / sim %.6g"
    c.predicted_a c.simulated_a
    (100.0 *. Float.abs (c.simulated_a -. c.predicted_a) /. c.simulated_a)
    c.predicted_f c.simulated_f

let pp_lock ppf c =
  Format.fprintf ppf
    "@[<v>lock range (injection-referred):@,\
     prediction: [%.8g, %.8g] Hz, delta %.6g Hz@,\
     simulation: [%.8g, %.8g] Hz, delta %.6g Hz@]"
    c.predicted.f_inj_low c.predicted.f_inj_high c.predicted.delta_f_inj
    c.sim_f_low c.sim_f_high c.sim_delta
