(** End-to-end validation drivers: the paper's §IV methodology.

    Each function compares a describing-function prediction against a
    brute-force MNA transient on the device-level netlist, returning a
    comparison record ready for the experiment tables. *)

type natural_cmp = {
  predicted_a : float;
  simulated_a : float;
  predicted_f : float;  (** tank centre frequency *)
  simulated_f : float;  (** zero-crossing frequency of the steady state *)
}

val natural :
  ?cycles:float -> ?steps_per_cycle:int -> circuit:Spice.Circuit.t ->
  probe:Spice.Transient.probe -> osc:Shil.Analysis.oscillator -> unit ->
  natural_cmp
(** Runs the free oscillator for [cycles] (default 400) tank periods at
    [steps_per_cycle] (default 120) and measures the steady tail. *)

type lock_cmp = {
  predicted : Shil.Lock_range.t;
  sim_f_low : float;  (** NaN when that edge search failed (see [failures]) *)
  sim_f_high : float;
  sim_delta : float;
  failures : Resilience.Summary.t;
      (** typed holes: failed transient probes (counted as unlocked)
          and failed edge searches *)
}

val lock_range :
  ?cycles:float -> ?steps_per_cycle:int -> ?rel_tol:float ->
  make_circuit:(f_inj:float -> Spice.Circuit.t) ->
  probe:Spice.Transient.probe -> n:int ->
  predicted:Shil.Lock_range.t -> unit -> lock_cmp
(** Binary search for both lock edges of the simulated oscillator,
    bracketing around the predicted edges (the paper's "binary search ...
    over different frequencies"). [cycles] (default 600) oscillator
    periods per trial; [rel_tol] (default 2e-5) of the centre frequency
    stops the bisection.

    A probe or edge search that fails becomes a typed hole in
    [failures] (counter [resilience.validate.holes]) instead of
    aborting, unless {!Resilience.Policy.set_fail_fast} is on. Fault
    site [validate-point] injects probe failures for testing. *)

val lock_states :
  ?cycles:float -> ?steps_per_cycle:int ->
  make_circuit:(extra:Spice.Device.t list -> Spice.Circuit.t) ->
  probe:Spice.Transient.probe -> n:int -> f_inj:float ->
  pulse:(at:float -> Spice.Device.t) -> pulse_times:float list -> unit ->
  float list
(** Runs the locked oscillator with state-flipping pulses at the given
    times (Figs. 15/19) and returns the steady relative phase (rad,
    against a [cos] reference at [f_inj / n]) measured in the window
    after each pulse (including the initial pulse-free window) — [n]
    distinct values spaced [2 pi / n] demonstrate the [n] states. *)

val pp_natural : Format.formatter -> natural_cmp -> unit
val pp_lock : Format.formatter -> lock_cmp -> unit
