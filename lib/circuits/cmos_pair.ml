type params = {
  vdd : float;
  itail : float;
  mos : Spice.Device.mos_params;
  r : float;
  l : float;
  c : float;
  kick : float;
}

let default =
  let fc = 2.4e9 in
  let wc = 2.0 *. Float.pi *. fc in
  let r = 1500.0 in
  let q = 30.0 in
  let z0 = r /. q in
  {
    vdd = 1.2;
    itail = 2e-3;
    mos = { Spice.Device.kp = 2e-3; vth = 0.5; lambda = 0.02 };
    r;
    l = z0 /. wc;
    c = 1.0 /. (z0 *. wc);
    kick = 1e-4;
  }

let pair_devices p =
  [
    Spice.Device.Mosfet { name = "ML"; nd = "ndl"; ng = "ndr"; ns = "s"; p = p.mos };
    Spice.Device.Mosfet { name = "MR"; nd = "ndr"; ng = "ndl"; ns = "s"; p = p.mos };
    Spice.Device.Isource { name = "ITAIL"; np = "s"; nn = "0"; wave = Spice.Wave.Dc p.itail };
  ]

let core_devices p =
  Spice.Device.Vsource
    { name = "VDD"; np = "vdd"; nn = "0"; wave = Spice.Wave.Dc p.vdd }
  :: pair_devices p

let extraction_fv ?(v_span = 2.6) ?(steps = 240) p =
  (* the extraction rig pins both drains, so the supply rail would
     dangle: build from the bare pair, without VDD *)
  let build v =
    Spice.Circuit.of_devices
      (pair_devices p
      @ [
          Spice.Device.Vsource
            { name = "VP"; np = "ndl"; nn = "0"; wave = Spice.Wave.Dc (p.vdd +. (v /. 2.0)) };
          Spice.Device.Vsource
            { name = "VM"; np = "ndr"; nn = "0"; wave = Spice.Wave.Dc (p.vdd -. (v /. 2.0)) };
        ])
  in
  let vs = Numerics.Kernel.linspace (-.v_span) v_span (steps + 1) in
  let is = Array.make (steps + 1) 0.0 in
  (* every bias point solves the same topology: pre-flight it once *)
  Spice.Preflight.gate (build 0.0);
  let measure ~x0 v =
    let op = Spice.Op.run ~check:`Off ?x0 (build v) in
    let i_l = -.Spice.Op.current op "VP" in
    let i_r = -.Spice.Op.current op "VM" in
    (0.5 *. (i_l -. i_r), op.Spice.Op.x)
  in
  let mid = steps / 2 in
  let i0, x_mid = measure ~x0:None vs.(mid) in
  is.(mid) <- i0;
  let prev = ref (Some x_mid) in
  for k = mid + 1 to steps do
    let i, x = measure ~x0:!prev vs.(k) in
    is.(k) <- i;
    prev := Some x
  done;
  prev := Some x_mid;
  for k = mid - 1 downto 0 do
    let i, x = measure ~x0:!prev vs.(k) in
    is.(k) <- i;
    prev := Some x
  done;
  (vs, is)

let nonlinearity ?v_span ?steps p =
  let vs, is = extraction_fv ?v_span ?steps p in
  Shil.Nonlinearity.of_table ~name:"cmos_pair" ~vs ~is ()

let tank p = Shil.Tank.make ~r:p.r ~l:p.l ~c:p.c

let oscillator ?v_span ?steps p : Shil.Analysis.oscillator =
  { nl = nonlinearity ?v_span ?steps p; tank = tank p }

type injection = { vi : float; n : int; f_inj : float; phase : float }

let circuit ?injection ?(extra = []) p =
  let inj_wave =
    match injection with
    | None -> Spice.Wave.Dc 0.0
    | Some inj ->
      Spice.Wave.Sine
        {
          offset = 0.0;
          ampl = 2.0 *. inj.vi;
          freq = inj.f_inj;
          phase = inj.phase +. (Float.pi /. 2.0);
          delay = 0.0;
        }
  in
  let fc = Shil.Tank.f_c (tank p) in
  Spice.Circuit.of_devices
    (core_devices p
    @ [
        Spice.Device.Inductor
          { name = "LL"; n1 = "vdd"; n2 = "tl"; l = p.l /. 2.0; ic = None };
        Spice.Device.Inductor
          { name = "LR"; n1 = "vdd"; n2 = "ndr"; l = p.l /. 2.0; ic = None };
        Spice.Device.Capacitor
          { name = "CT"; n1 = "tl"; n2 = "ndr"; c = p.c; ic = None };
        Spice.Device.Resistor { name = "RT"; n1 = "tl"; n2 = "ndr"; r = p.r };
        Spice.Device.Vsource { name = "VINJ"; np = "ndl"; nn = "tl"; wave = inj_wave };
        Spice.Device.Isource
          {
            name = "IKICK";
            np = "ndr";
            nn = "tl";
            wave =
              Spice.Wave.Pulse
                {
                  v1 = 0.0;
                  v2 = p.kick;
                  delay = 0.0;
                  rise = 0.05 /. fc;
                  fall = 0.05 /. fc;
                  width = 0.25 /. fc;
                  period = 0.0;
                };
          };
      ]
    @ extra)

let osc_probe = Spice.Transient.Diff ("ndl", "ndr")
