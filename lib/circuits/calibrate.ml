let r_for_amplitude ?(r_lo = 10.0) ?(r_hi = 1e6) ~nl ~target_a () =
  (* scale the amplitude scan window to the target so large-R solutions
     do not escape it *)
  let a_min = 1e-4 *. target_a and a_max = 50.0 *. target_a in
  let amp r =
    match Shil.Natural.predicted_amplitude ~a_min ~a_max ~scan:800 nl ~r with
    | Some a -> a
    | None ->
      (* loop gain still above 1 at the window top means the amplitude
         escaped above a_max: report the window edge so the bisection
         still sees a sign change *)
      if Shil.Describing_function.t_f_free nl ~r ~a:a_max >= 1.0 then a_max
      else 0.0
  in
  let g log_r = amp (exp log_r) -. target_a in
  let a = log r_lo and b = log r_hi in
  if g a *. g b > 0.0 then
    Resilience.Oshil_error.raise_ Circuits ~phase:"calibrate" Root_failure
      "target amplitude not bracketed"
      ~context:
        [
          ("target_a", Printf.sprintf "%.6g" target_a);
          ("r_lo", Printf.sprintf "%.6g" r_lo);
          ("r_hi", Printf.sprintf "%.6g" r_hi);
        ]
      ~remedy:"widen [r_lo, r_hi] or check the nonlinearity";
  let log_r = Numerics.Roots.bisect ~tol:1e-9 ~f:g ~a ~b () in
  exp log_r

type tank_fit = { r : float; l : float; c : float; q : float; phi_d_max : float }

let fit_tank ?points ~nl ~target_a ~f_c ~n ~vi ~target_delta_f_inj () =
  let r = r_for_amplitude ~nl ~target_a () in
  let grid =
    Shil.Grid.sample ?points nl ~n ~r ~vi
      ~a_range:(0.25 *. target_a, 1.3 *. target_a)
      ()
  in
  let phi_d_max = Shil.Lock_range.phi_d_boundary ?points grid in
  if phi_d_max <= 0.0 then
    Resilience.Oshil_error.raise_ Circuits ~phase:"calibrate" No_oscillation
      "no lock at phi_d = 0"
      ~context:[ ("vi", Printf.sprintf "%.6g" vi) ]
      ~remedy:"raise the injection amplitude vi";
  (* delta_f_osc = f_c tan(phi_d_max) / Q exactly (the band edges are the
     two roots of Q (u - 1/u) = -+tan(phi_d_max), whose difference is
     tan(phi_d_max)/Q in units of f_c) *)
  let delta_f_osc = target_delta_f_inj /. float_of_int n in
  let q = f_c *. tan phi_d_max /. delta_f_osc in
  let z0 = r /. q in
  let wc = 2.0 *. Float.pi *. f_c in
  { r; l = z0 /. wc; c = 1.0 /. (z0 *. wc); q; phi_d_max }
