(* Each interval [x_i, x_{i+1}) carries cubic coefficients (a, b, c, d) so
   that y(x) = a + b dx + c dx^2 + d dx^3 with dx = x - x_i. All three
   interpolant kinds reduce to this representation. *)

type t = {
  xs : float array;
  ys : float array;
  coeffs : (float * float * float * float) array; (* per interval *)
  x_shift : float;
}

let check_knots xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Interp: xs/ys length mismatch";
  if n < 2 then invalid_arg "Interp: need at least two knots";
  for i = 0 to n - 2 do
    if not (xs.(i) < xs.(i + 1)) then
      invalid_arg "Interp: abscissae must be strictly increasing"
  done

let linear ~xs ~ys =
  check_knots xs ys;
  let n = Array.length xs in
  let coeffs =
    Array.init (n - 1) (fun i ->
        let slope = (ys.(i + 1) -. ys.(i)) /. (xs.(i + 1) -. xs.(i)) in
        (ys.(i), slope, 0.0, 0.0))
  in
  { xs = Array.copy xs; ys = Array.copy ys; coeffs; x_shift = 0.0 }

(* Natural cubic spline: solve the tridiagonal system for second
   derivatives, then convert to per-interval cubics. *)
let cubic_spline ~xs ~ys =
  check_knots xs ys;
  let n = Array.length xs in
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  let m = Array.make n 0.0 in
  if n > 2 then begin
    let sub = Array.make n 0.0
    and diag = Array.make n 0.0
    and sup = Array.make n 0.0
    and rhs = Array.make n 0.0 in
    for i = 1 to n - 2 do
      sub.(i) <- h.(i - 1);
      diag.(i) <- 2.0 *. (h.(i - 1) +. h.(i));
      sup.(i) <- h.(i);
      rhs.(i) <-
        6.0
        *. (((ys.(i + 1) -. ys.(i)) /. h.(i))
            -. ((ys.(i) -. ys.(i - 1)) /. h.(i - 1)))
    done;
    (* Thomas algorithm on rows 1..n-2 (natural ends: m.(0)=m.(n-1)=0) *)
    for i = 2 to n - 2 do
      let w = sub.(i) /. diag.(i - 1) in
      diag.(i) <- diag.(i) -. (w *. sup.(i - 1));
      rhs.(i) <- rhs.(i) -. (w *. rhs.(i - 1))
    done;
    m.(n - 2) <- rhs.(n - 2) /. diag.(n - 2);
    for i = n - 3 downto 1 do
      m.(i) <- (rhs.(i) -. (sup.(i) *. m.(i + 1))) /. diag.(i)
    done
  end;
  let coeffs =
    Array.init (n - 1) (fun i ->
        let a = ys.(i) in
        let c = m.(i) /. 2.0 in
        let d = (m.(i + 1) -. m.(i)) /. (6.0 *. h.(i)) in
        let b =
          ((ys.(i + 1) -. ys.(i)) /. h.(i))
          -. (h.(i) *. ((2.0 *. m.(i)) +. m.(i + 1)) /. 6.0)
        in
        (a, b, c, d))
  in
  { xs = Array.copy xs; ys = Array.copy ys; coeffs; x_shift = 0.0 }

(* Fritsch-Carlson monotone Hermite slopes. *)
let pchip_slopes xs ys =
  let n = Array.length xs in
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  let delta = Array.init (n - 1) (fun i -> (ys.(i + 1) -. ys.(i)) /. h.(i)) in
  let m = Array.make n 0.0 in
  if n = 2 then begin
    m.(0) <- delta.(0);
    m.(1) <- delta.(0)
  end
  else begin
    for i = 1 to n - 2 do
      if delta.(i - 1) *. delta.(i) <= 0.0 then m.(i) <- 0.0
      else begin
        let w1 = (2.0 *. h.(i)) +. h.(i - 1) in
        let w2 = h.(i) +. (2.0 *. h.(i - 1)) in
        m.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
      end
    done;
    (* one-sided three-point endpoint slopes, clamped for shape *)
    let endpoint h0 h1 d0 d1 =
      let m0 = (((2.0 *. h0) +. h1) *. d0 -. (h0 *. d1)) /. (h0 +. h1) in
      if m0 *. d0 <= 0.0 then 0.0
      else if d0 *. d1 <= 0.0 && Float.abs m0 > 3.0 *. Float.abs d0 then
        3.0 *. d0
      else m0
    in
    m.(0) <- endpoint h.(0) h.(1) delta.(0) delta.(1);
    m.(n - 1) <- endpoint h.(n - 2) h.(n - 3) delta.(n - 2) delta.(n - 3)
  end;
  m

let pchip ~xs ~ys =
  check_knots xs ys;
  let n = Array.length xs in
  let m = pchip_slopes xs ys in
  let coeffs =
    Array.init (n - 1) (fun i ->
        let h = xs.(i + 1) -. xs.(i) in
        let delta = (ys.(i + 1) -. ys.(i)) /. h in
        let a = ys.(i) and b = m.(i) in
        let c = ((3.0 *. delta) -. (2.0 *. m.(i)) -. m.(i + 1)) /. h in
        let d = (m.(i) +. m.(i + 1) -. (2.0 *. delta)) /. (h *. h) in
        (a, b, c, d))
  in
  { xs = Array.copy xs; ys = Array.copy ys; coeffs; x_shift = 0.0 }

let interval t x =
  (* binary search: largest i with xs.(i) <= x, clamped to a valid interval *)
  let n = Array.length t.xs in
  if x <= t.xs.(0) then 0
  else if x >= t.xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let x = x +. t.x_shift in
  let i = interval t x in
  let a, b, c, d = t.coeffs.(i) in
  let n = Array.length t.xs in
  if x < t.xs.(0) then
    (* linear extrapolation with the left boundary slope *)
    t.ys.(0) +. (b *. (x -. t.xs.(0)))
  else if x > t.xs.(n - 1) then begin
    let _, b, c, d = t.coeffs.(n - 2) in
    let h = t.xs.(n - 1) -. t.xs.(n - 2) in
    let slope_end = b +. (2.0 *. c *. h) +. (3.0 *. d *. h *. h) in
    t.ys.(n - 1) +. (slope_end *. (x -. t.xs.(n - 1)))
  end
  else begin
    let dx = x -. t.xs.(i) in
    a +. (dx *. (b +. (dx *. (c +. (dx *. d)))))
  end

(* Batch evaluation with a warm-started interval search: quadrature
   waveforms are piecewise-smooth, so consecutive samples almost always
   land in the same or a neighbouring knot interval. Walking from the
   previous interval (and falling back to binary search only on long
   jumps) amortizes [interval] to O(1) per sample. Each element computes
   exactly the [eval] expressions, so results are bit-identical to the
   scalar loop. Supports [src == dst]: slot [i] is read before it is
   written. *)
let eval_batch ?n t ~src ~dst =
  let n = match n with Some n -> n | None -> Array.length src in
  if n < 0 || n > Array.length src || n > Array.length dst then
    invalid_arg "Interp.eval_batch";
  let nk = Array.length t.xs in
  let last = ref 0 in
  for idx = 0 to n - 1 do
    let x = src.(idx) +. t.x_shift in
    let i =
      if x <= t.xs.(0) then 0
      else if x >= t.xs.(nk - 1) then nk - 2
      else begin
        (* walk from the previous hit; give up after a few steps *)
        let i = ref (if !last > nk - 2 then nk - 2 else !last) in
        let steps = ref 0 in
        let wandering = ref true in
        while !wandering do
          if !steps > 4 then begin
            i := interval t x;
            wandering := false
          end
          else if t.xs.(!i) > x then begin
            decr i;
            incr steps
          end
          else if t.xs.(!i + 1) <= x then begin
            incr i;
            incr steps
          end
          else wandering := false
        done;
        !i
      end
    in
    last := i;
    let a, b, c, d = t.coeffs.(i) in
    dst.(idx) <-
      (if x < t.xs.(0) then t.ys.(0) +. (b *. (x -. t.xs.(0)))
       else if x > t.xs.(nk - 1) then begin
         let _, b, c, d = t.coeffs.(nk - 2) in
         let h = t.xs.(nk - 1) -. t.xs.(nk - 2) in
         let slope_end = b +. (2.0 *. c *. h) +. (3.0 *. d *. h *. h) in
         t.ys.(nk - 1) +. (slope_end *. (x -. t.xs.(nk - 1)))
       end
       else begin
         let dx = x -. t.xs.(i) in
         a +. (dx *. (b +. (dx *. (c +. (dx *. d)))))
       end)
  done

let eval_deriv t x =
  let x = x +. t.x_shift in
  let n = Array.length t.xs in
  if x < t.xs.(0) then
    let _, b, _, _ = t.coeffs.(0) in
    b
  else if x > t.xs.(n - 1) then begin
    let _, b, c, d = t.coeffs.(n - 2) in
    let h = t.xs.(n - 1) -. t.xs.(n - 2) in
    b +. (2.0 *. c *. h) +. (3.0 *. d *. h *. h)
  end
  else begin
    let i = interval t x in
    let _, b, c, d = t.coeffs.(i) in
    let dx = x -. t.xs.(i) in
    b +. (dx *. ((2.0 *. c) +. (dx *. 3.0 *. d)))
  end

let domain t = (t.xs.(0) -. t.x_shift, t.xs.(Array.length t.xs - 1) -. t.x_shift)

let knots t =
  Array.init (Array.length t.xs) (fun i -> (t.xs.(i) -. t.x_shift, t.ys.(i)))

let shift_x t dx = { t with x_shift = t.x_shift +. dx }
