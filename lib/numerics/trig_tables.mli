(** Shared, cached cos/sin quadrature tables.

    Every uniform-grid Fourier quadrature in the code base needs
    [cos(2π k s / points)] and [sin(2π k s / points)] for
    [s = 0 .. points - 1]. This module computes each [(points, k)] table
    once and hands out the shared arrays, replacing the per-sample
    [cos]/[sin] calls that used to dominate {!Fourier.coeff} and the
    per-call table rebuilds in grid sampling.

    The tables use the exact expression
    [cos (2π · float (k * s) / float points)] — the same one
    [Fourier.coeff_sampled] and grid sampling historically used — so
    switching call sites to the cache is bit-preserving there.

    Thread-safe: may be called concurrently from pool workers. Returned
    arrays are shared; treat them as read-only.

    The cache is bounded; under pressure it evicts the least-recently
    used half of the entries, so the hot quadrature tables of a running
    analysis are never dropped mid-run by a burst of one-off
    signal-length requests. *)

val get : points:int -> k:int -> float array * float array
(** [get ~points ~k] is [(cos_table, sin_table)], both of length
    [points], with [cos_table.(s) = cos (2π k s / points)]. Raises
    [Invalid_argument] if [points < 1]. *)

val clear : unit -> unit
(** Drop all cached tables (tests / memory pressure). *)
