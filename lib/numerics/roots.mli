(** Scalar root finding. *)

exception No_bracket
(** Raised when the supplied interval does not bracket a sign change. *)

exception No_convergence of string
(** Raised when an iteration cap is hit before the tolerance is met. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> a:float -> b:float ->
  unit -> float
(** Bisection on a bracketing interval [[a, b]] (requires
    [f a *. f b <= 0.]); [tol] is on the interval width (default [1e-12]). *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> a:float -> b:float ->
  unit -> float
(** Brent's method (inverse quadratic / secant / bisection hybrid) on a
    bracketing interval. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) ->
  x0:float -> unit -> float
(** Newton-Raphson from [x0]; [tol] is on the step size. *)

val secant :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> x0:float -> x1:float ->
  unit -> float

val bracket_roots :
  f:(float -> float) -> a:float -> b:float -> n:int -> (float * float) list
(** [bracket_roots ~f ~a ~b ~n] scans [n] uniform sub-intervals of [[a, b]]
    and returns those whose endpoints show a sign change (endpoints where
    [f] vanishes exactly count as a change). In increasing order. *)

val find_all :
  ?tol:float -> f:(float -> float) -> a:float -> b:float -> n:int -> unit ->
  float list
(** Scan + Brent refinement of every bracketed root. *)

val newton2d :
  ?tol:float -> ?max_iter:int -> ?ectx:Obs.Event.solve_ctx ->
  f:(float * float -> float * float) -> x0:float * float -> unit ->
  (float * float)
(** Damped 2-D Newton with finite-difference Jacobian, for refining curve
    intersections in the [(phi, A)] plane. Raises {!No_convergence} if the
    residual does not drop below [tol] (default [1e-10], measured on the
    residual infinity norm). When [ectx] is given and the introspection
    event stream is on, each iteration emits a [Newton_iter] (residual,
    damped step norm, damping factor) and the solve a [Newton_done] —
    observation only. *)
