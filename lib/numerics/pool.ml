type t = {
  size : int;
  mutable workers : unit Domain.t array;
  mutex : Mutex.t;  (* guards [jobs] and [live] *)
  cond : Condition.t;  (* "a job was pushed" / "shutting down" *)
  jobs : (unit -> unit) Queue.t;
  mutable live : bool;
}

(* ------------------------------------------------------------------ *)
(* Execution statistics: per-domain cells registered on first use, read
   by [stats]. Always on — the cost is two clock reads per chunk, not
   per element. Cross-domain reads of the mutable fields are only
   guaranteed fresh after a completed [parallel_for] (the pending
   countdown publishes them); mid-flight reads may lag, which is fine
   for telemetry. *)

type stat_cell = {
  sdom : int;
  mutable c_tasks : int;
  mutable c_busy_ns : int64;
}

type domain_stat = { dom : int; tasks : int; busy_ns : int64 }
type stats = { tasks : int; busy_ns : int64; per_domain : domain_stat array }

let stat_cells : stat_cell list ref = ref []
let stat_mu = Mutex.create ()

let stat_key =
  Domain.DLS.new_key (fun () ->
      let c =
        { sdom = (Domain.self () :> int); c_tasks = 0; c_busy_ns = 0L }
      in
      Mutex.lock stat_mu;
      stat_cells := c :: !stat_cells;
      Mutex.unlock stat_mu;
      c)

let record_task ~t0 =
  let c = Domain.DLS.get stat_key in
  c.c_tasks <- c.c_tasks + 1;
  c.c_busy_ns <- Int64.add c.c_busy_ns (Int64.sub (Obs.Clock.now_ns ()) t0)

let stats () =
  let cells =
    Mutex.lock stat_mu;
    let cs = !stat_cells in
    Mutex.unlock stat_mu;
    cs
  in
  let per_domain =
    List.map
      (fun c -> { dom = c.sdom; tasks = c.c_tasks; busy_ns = c.c_busy_ns })
      cells
    |> List.sort (fun a b -> Int.compare a.dom b.dom)
    |> Array.of_list
  in
  let tasks =
    Array.fold_left (fun acc (d : domain_stat) -> acc + d.tasks) 0 per_domain
  in
  let busy_ns =
    Array.fold_left
      (fun acc (d : domain_stat) -> Int64.add acc d.busy_ns)
      0L per_domain
  in
  { tasks; busy_ns; per_domain }

(* Set while a domain is executing pool tasks; nested parallel calls
   check it and degrade to sequential. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

let with_task_flag f =
  let prev = Domain.DLS.get in_worker_key in
  Domain.DLS.set in_worker_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker_key prev) f

(* Every live pool, so at_exit can join stray workers (a spawned domain
   that is never joined keeps the process alive). *)
let live_pools : t list ref = ref []
let live_pools_mutex = Mutex.create ()

let register p =
  Mutex.lock live_pools_mutex;
  live_pools := p :: !live_pools;
  Mutex.unlock live_pools_mutex

let unregister p =
  Mutex.lock live_pools_mutex;
  (* mlint: allow phys-eq — pool identity, not structural equality *)
  live_pools := List.filter (fun q -> q != p) !live_pools;
  Mutex.unlock live_pools_mutex

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.jobs && pool.live do
    Condition.wait pool.cond pool.mutex
  done;
  if Queue.is_empty pool.jobs then Mutex.unlock pool.mutex (* shutdown *)
  else begin
    let job = Queue.pop pool.jobs in
    Mutex.unlock pool.mutex;
    job ();
    worker_loop pool
  end

let create ~size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let pool =
    {
      size;
      workers = [||];
      mutex = Mutex.create ();
      cond = Condition.create ();
      jobs = Queue.create ();
      live = true;
    }
  in
  pool.workers <-
    Array.init (size - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker_key true;
            worker_loop pool));
  register pool;
  pool

let size p = p.size

let shutdown p =
  Mutex.lock p.mutex;
  if p.live then begin
    p.live <- false;
    Condition.broadcast p.cond;
    Mutex.unlock p.mutex;
    Array.iter Domain.join p.workers;
    p.workers <- [||];
    unregister p
  end
  else Mutex.unlock p.mutex

let () =
  at_exit (fun () ->
      let ps =
        Mutex.lock live_pools_mutex;
        let ps = !live_pools in
        Mutex.unlock live_pools_mutex;
        ps
      in
      List.iter shutdown ps)

(* ------------------------------------------------------------------ *)
(* Default pool *)

let jobs_override = ref None

let env_jobs () =
  match Sys.getenv_opt "OSHIL_JOBS" with
  | None -> None
  | Some s -> begin
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None
  end

let default_size () =
  match !jobs_override with
  | Some n -> n
  | None -> begin
    match env_jobs () with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  end

let default_pool = ref None
let default_mutex = Mutex.create ()

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: jobs must be >= 1";
  Mutex.lock default_mutex;
  jobs_override := Some n;
  (match !default_pool with
  | Some p when p.size <> n ->
    default_pool := None;
    Mutex.unlock default_mutex;
    shutdown p
  | _ -> Mutex.unlock default_mutex)

let get_default () =
  Mutex.lock default_mutex;
  let sz = default_size () in
  let res =
    if sz <= 1 then None
    else begin
      match !default_pool with
      | Some p when p.size = sz && p.live -> Some p
      | stale ->
        let p = create ~size:sz in
        default_pool := Some p;
        (match stale with
        | Some old ->
          (* resize (or replace a shut-down pool): retire the old one *)
          Mutex.unlock default_mutex;
          shutdown old;
          Mutex.lock default_mutex
        | None -> ());
        Some p
    end
  in
  Mutex.unlock default_mutex;
  res

(* ------------------------------------------------------------------ *)
(* Parallel iteration *)

let sequential_for n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for ?pool ?chunk ~n f =
  if n <= 0 then ()
  else if in_worker () then sequential_for n f
  else begin
    let pool = match pool with Some p -> Some p | None -> get_default () in
    match pool with
    | None -> sequential_for n f
    | Some p when p.size <= 1 || not p.live -> sequential_for n f
    | Some p ->
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
        | None -> max 1 ((n + (4 * p.size) - 1) / (4 * p.size))
      in
      let n_chunks = (n + chunk - 1) / chunk in
      if n_chunks <= 1 then sequential_for n f
      else begin
        let pending = Atomic.make n_chunks in
        (* lowest failing chunk wins, so the surfaced exception does not
           depend on scheduling *)
        let first_error = Atomic.make None in
        let done_mutex = Mutex.create () and done_cond = Condition.create () in
        let run_chunk c =
          let t0 = Obs.Clock.now_ns () in
          (try
             with_task_flag (fun () ->
                 let lo = c * chunk and hi = min n ((c + 1) * chunk) in
                 for i = lo to hi - 1 do
                   f i
                 done)
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             let rec save () =
               match Atomic.get first_error with
               | Some (c0, _, _) when c0 <= c -> ()
               | cur ->
                 if not (Atomic.compare_and_set first_error cur (Some (c, e, bt)))
                 then save ()
             in
             save ());
          record_task ~t0;
          if Atomic.fetch_and_add pending (-1) = 1 then begin
            Mutex.lock done_mutex;
            Condition.broadcast done_cond;
            Mutex.unlock done_mutex
          end
        in
        let go () =
          Mutex.lock p.mutex;
          for c = 1 to n_chunks - 1 do
            Queue.push (fun () -> run_chunk c) p.jobs
          done;
          Condition.broadcast p.cond;
          Mutex.unlock p.mutex;
          (* the caller works too: run the first chunk, then help drain *)
          run_chunk 0;
          let rec help () =
            Mutex.lock p.mutex;
            if Queue.is_empty p.jobs then Mutex.unlock p.mutex
            else begin
              let job = Queue.pop p.jobs in
              Mutex.unlock p.mutex;
              job ();
              help ()
            end
          in
          help ();
          Mutex.lock done_mutex;
          while Atomic.get pending > 0 do
            Condition.wait done_cond done_mutex
          done;
          Mutex.unlock done_mutex;
          match Atomic.get first_error with
          | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ()
        in
        if not (Obs.enabled ()) then go ()
        else begin
          let busy0 = (stats ()).busy_ns in
          let w0 = Obs.Clock.now_ns () in
          Obs.Span.with_ ~cat:"numerics" ~name:"numerics.pool.parallel_for"
            ~attrs:
              [ ("n", string_of_int n); ("chunks", string_of_int n_chunks) ]
            go;
          let wall = Int64.sub (Obs.Clock.now_ns ()) w0 in
          let busy = Int64.sub (stats ()).busy_ns busy0 in
          (* idle = capacity the pool had during this call minus the time
             its domains spent in chunks; clamped because concurrent
             parallel_for calls share the busy counters. *)
          let idle =
            Int64.sub (Int64.mul (Int64.of_int p.size) wall) busy
          in
          let idle = if Int64.compare idle 0L < 0 then 0L else idle in
          Obs.Metrics.incr ~by:n_chunks "numerics.pool.tasks";
          Obs.Metrics.incr ~by:(Int64.to_int idle) "numerics.pool.idle_ns";
          (* utilization timeline: one sample per fan-out, events stream *)
          if Obs.Event.enabled () then
            Obs.Event.emit
              (Obs.Event.Pool_sample
                 { domains = p.size; tasks = n_chunks; busy_ns = busy })
        end
      end
  end

let parallel_init ?pool ?chunk n f =
  if n < 0 then invalid_arg "Pool.parallel_init"
  else if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?pool ?chunk ~n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map_array ?pool ?chunk f xs =
  parallel_init ?pool ?chunk (Array.length xs) (fun i -> f xs.(i))

let parallel_reduce ?pool ?chunk ~n ~init ~map ~fold () =
  let vals = parallel_init ?pool ?chunk n map in
  Array.fold_left fold init vals

let parallel_try_map_array ?pool ?chunk ~subsystem ~phase f xs =
  parallel_init ?pool ?chunk (Array.length xs) (fun i ->
      if Resilience.Fault.fire_at "pool-task" ~k:i then begin
        Obs.Metrics.incr "resilience.pool.task_failures";
        Error (Resilience.Fault.error ~site:"pool-task" subsystem ~phase)
      end
      else
        match f xs.(i) with
        | v -> Ok v
        | exception e ->
          Obs.Metrics.incr "resilience.pool.task_failures";
          Error (Resilience.Oshil_error.of_exn subsystem ~phase e))
