(** Persistent multicore work pool built on OCaml 5 [Domain]s.

    The paper's graphical technique lives on dense, embarrassingly
    parallel sweeps: the [(phi, A)] describing-function grid, per-cell
    Arnold-tongue lock ranges, and transient lock-edge bisections. This
    module gives those hot paths a shared, persistent set of worker
    domains with chunked scheduling, so a sweep costs two mutex
    round-trips instead of a domain spawn per row.

    Guarantees:
    - {b Determinism}: work is split into chunks by index arithmetic
      only (never by timing), every result lands in its own slot, and
      reductions fold partial results in index order — parallel output
      is bit-identical to sequential output for pure work functions.
    - {b Exception propagation}: if tasks raise, the exception from the
      lowest-indexed failing chunk is re-raised in the caller (with its
      backtrace), regardless of scheduling order.
    - {b Nested-call fallback}: a [parallel_*] call made from inside a
      pool task runs sequentially instead of deadlocking or
      oversubscribing, so parallel code can call parallel code freely.
    - {b Sequential degeneration}: with an effective size of 1 (or
      [n] too small to chunk) no domains are involved at all; the work
      runs in the caller exactly as a [for] loop would. *)

type t
(** A pool of worker domains. The caller participates in executing
    chunks, so a pool of size [k] runs work on [k] domains total
    ([k - 1] workers plus the submitting domain). *)

val create : size:int -> t
(** [create ~size] spawns [size - 1] worker domains. [size >= 1]
    (raises [Invalid_argument] otherwise); a size-1 pool has no workers
    and runs everything in the caller. Pools not shut down explicitly
    are shut down [at_exit]. *)

val size : t -> int

val shutdown : t -> unit
(** Joins the worker domains. Idempotent. Submitting to a shut-down
    pool falls back to sequential execution. *)

(** {1 Default pool}

    Library code (grid sampling, sweeps…) uses an implicit default pool
    so callers need no plumbing. Its size resolves, in order, from
    {!set_jobs}, the [OSHIL_JOBS] environment variable, then
    [Domain.recommended_domain_count ()]. Size 1 means "stay
    sequential" and no domain is ever spawned. *)

val default_size : unit -> int
(** Effective job count the default pool would use right now. *)

val set_jobs : int -> unit
(** [set_jobs n] forces the default-pool size to [n] (>= 1, raises
    [Invalid_argument] otherwise), shutting down and re-creating the
    default pool if it was already running at a different size. This is
    what [--jobs] flags call. *)

val get_default : unit -> t option
(** The default pool, created on first use; [None] when the effective
    size is 1. *)

val in_worker : unit -> bool
(** True while executing inside a pool task (on any domain, including
    the submitting one while it helps drain the queue). Parallel
    entry points use this for the nested-call fallback. *)

(** {1 Execution statistics}

    Lightweight always-on accounting: every executed chunk bumps a
    per-domain task counter and busy-time accumulator (two monotonic
    clock reads per chunk). With telemetry enabled ([Obs.set_enabled]),
    each top-level [parallel_for] additionally records a
    [numerics.pool.parallel_for] span and the [numerics.pool.tasks] /
    [numerics.pool.idle_ns] counters. *)

type domain_stat = {
  dom : int;  (** domain id ([Domain.self] of the executing domain) *)
  tasks : int;  (** chunks executed on that domain *)
  busy_ns : int64;  (** total wall time spent inside chunks *)
}

type stats = {
  tasks : int;  (** total chunks executed, all domains *)
  busy_ns : int64;  (** total busy time, all domains *)
  per_domain : domain_stat array;  (** sorted by [dom] *)
}

val stats : unit -> stats
(** Cumulative since process start (counts work from every pool,
    including retired default pools). Values are exact after a
    completed [parallel_for]; a snapshot taken while work is in flight
    may lag by the currently running chunks. *)

(** {1 Parallel iteration}

    All entry points take [?pool]; when omitted they use
    {!get_default}. [?chunk] overrides the scheduling grain (default:
    enough chunks for ~4 per domain, load-balanced but deterministic
    in result). Raises [Invalid_argument] on a negative element count
    or a [chunk < 1]. *)

val parallel_for : ?pool:t -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n f] runs [f 0 .. f (n-1)], any order, all complete
    (or an exception from the lowest failing chunk) on return. *)

val parallel_init : ?pool:t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]; element order is by index, as sequential. *)

val parallel_map_array : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; result order matches the input order. *)

val parallel_reduce :
  ?pool:t -> ?chunk:int -> n:int -> init:'acc -> map:(int -> 'a) ->
  fold:('acc -> 'a -> 'acc) -> unit -> 'acc
(** [parallel_reduce ~n ~init ~map ~fold ()] computes
    [fold (... (fold init (map 0)) ...) (map (n-1))]: the [map]s run in
    parallel, the [fold] runs left-to-right in index order, so the
    result is identical to the sequential evaluation. *)

val parallel_try_map_array :
  ?pool:t ->
  ?chunk:int ->
  subsystem:Resilience.Oshil_error.subsystem ->
  phase:string ->
  ('a -> 'b) ->
  'a array ->
  ('b, Resilience.Oshil_error.t) result array
(** Resilient parallel map: a task that raises yields [Error] in its
    slot (typed via {!Resilience.Oshil_error.of_exn}) instead of
    aborting the whole fan-out; each failure bumps
    [resilience.pool.task_failures]. Fault site [pool-task] (by task
    index) injects failures deterministically regardless of pool
    scheduling. *)
