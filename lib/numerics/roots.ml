exception No_bracket
exception No_convergence of string

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f ~a ~b () =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if fa *. fb > 0.0 then raise No_bracket
  else begin
    let a = ref a and b = ref b and fa = ref fa in
    let result = ref None in
    let k = ref 0 in
    while !result = None && !k < max_iter do
      incr k;
      let m = 0.5 *. (!a +. !b) in
      let fm = f m in
      if fm = 0.0 || !b -. !a < tol then result := Some m
      else if !fa *. fm < 0.0 then b := m
      else begin
        a := m;
        fa := fm
      end
    done;
    match !result with
    | Some r -> r
    | None -> 0.5 *. (!a +. !b)
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) ~f ~a ~b () =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if fa *. fb > 0.0 then raise No_bracket
  else begin
    (* classic Brent: keep [b] the best iterate, [a] its counterpoint *)
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let ft = !fa in
      fa := !fb;
      fb := ft
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref None in
    let k = ref 0 in
    while !result = None && !k < max_iter do
      incr k;
      if !fb *. !fc > 0.0 then begin
        c := !a;
        fc := !fa;
        d := !b -. !a;
        e := !d
      end;
      if Float.abs !fc < Float.abs !fb then begin
        a := !b;
        b := !c;
        c := !a;
        fa := !fb;
        fb := !fc;
        fc := !fa
      end;
      let tol1 = (2.0 *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
      let xm = 0.5 *. (!c -. !b) in
      if Float.abs xm <= tol1 || !fb = 0.0 then result := Some !b
      else begin
        if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
          let s = !fb /. !fa in
          let p, q =
            if !a = !c then
              let p = 2.0 *. xm *. s in
              (p, 1.0 -. s)
            else begin
              let q = !fa /. !fc and r = !fb /. !fc in
              let p = s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0))) in
              (p, (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0))
            end
          in
          let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
          let min1 = (3.0 *. xm *. q) -. Float.abs (tol1 *. q) in
          let min2 = Float.abs (!e *. q) in
          if 2.0 *. p < Float.min min1 min2 then begin
            e := !d;
            d := p /. q
          end
          else begin
            d := xm;
            e := !d
          end
        end
        else begin
          d := xm;
          e := !d
        end;
        a := !b;
        fa := !fb;
        if Float.abs !d > tol1 then b := !b +. !d
        else b := !b +. Float.copy_sign tol1 xm;
        fb := f !b
      end
    done;
    match !result with
    | Some r -> r
    | None -> raise (No_convergence "brent")
  end

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df ~x0 () =
  let x = ref x0 in
  let result = ref None in
  let k = ref 0 in
  while !result = None && !k < max_iter do
    incr k;
    let fx = f !x and dfx = df !x in
    if dfx = 0.0 then raise (No_convergence "newton: zero derivative");
    let step = fx /. dfx in
    x := !x -. step;
    if Float.abs step < tol then result := Some !x
  done;
  match !result with
  | Some r -> r
  | None -> raise (No_convergence "newton")

let secant ?(tol = 1e-12) ?(max_iter = 100) ~f ~x0 ~x1 () =
  let xa = ref x0 and xb = ref x1 in
  let fa = ref (f x0) and fb = ref (f x1) in
  let result = ref None in
  let k = ref 0 in
  while !result = None && !k < max_iter do
    incr k;
    if !fb -. !fa = 0.0 then raise (No_convergence "secant: flat");
    let x = !xb -. (!fb *. (!xb -. !xa) /. (!fb -. !fa)) in
    xa := !xb;
    fa := !fb;
    xb := x;
    fb := f x;
    if Float.abs (!xb -. !xa) < tol then result := Some !xb
  done;
  match !result with
  | Some r -> r
  | None -> raise (No_convergence "secant")

let bracket_roots ~f ~a ~b ~n =
  assert (n >= 1);
  let h = (b -. a) /. float_of_int n in
  let brackets = ref [] in
  let x_prev = ref a and f_prev = ref (f a) in
  for k = 1 to n do
    let x = a +. (float_of_int k *. h) in
    let fx = f x in
    if (!f_prev <= 0.0 && fx >= 0.0) || (!f_prev >= 0.0 && fx <= 0.0) then
      if not (!f_prev = 0.0 && fx = 0.0) then
        brackets := (!x_prev, x) :: !brackets;
    x_prev := x;
    f_prev := fx
  done;
  List.rev !brackets

let find_all ?(tol = 1e-12) ~f ~a ~b ~n () =
  let refine (lo, hi) =
    try Some (brent ~tol ~f ~a:lo ~b:hi ()) with No_bracket -> None
  in
  List.filter_map refine (bracket_roots ~f ~a ~b ~n)

let newton2d ?(tol = 1e-10) ?(max_iter = 60) ?ectx ~f ~x0 () =
  if Resilience.Fault.fire "roots-fail" then
    raise (No_convergence "newton2d: injected fault (roots-fail)");
  (* solver-health events: one atomic load when the stream is off *)
  let ectx = if Obs.Event.enabled () then ectx else None in
  let emit_iter k residual step damping =
    match ectx with
    | Some ctx ->
      Obs.Event.emit
        (Obs.Event.Newton_iter { ctx; iter = k; residual; step; damping })
    | None -> ()
  in
  let emit_done k converged residual =
    match ectx with
    | Some ctx ->
      Obs.Event.emit
        (Obs.Event.Newton_done { ctx; iters = k; converged; residual })
    | None -> ()
  in
  let x = ref (fst x0) and y = ref (snd x0) in
  let result = ref None in
  let k = ref 0 in
  let last_res = ref infinity in
  let res_norm (r1, r2) = Float.max (Float.abs r1) (Float.abs r2) in
  while !result = None && !k < max_iter do
    incr k;
    let r1, r2 = f (!x, !y) in
    last_res := res_norm (r1, r2);
    if res_norm (r1, r2) < tol then begin
      emit_iter !k (res_norm (r1, r2)) 0.0 1.0;
      result := Some (!x, !y)
    end
    else begin
      let hx = 1e-7 *. (1.0 +. Float.abs !x) in
      let hy = 1e-7 *. (1.0 +. Float.abs !y) in
      let r1x, r2x = f (!x +. hx, !y) in
      let r1y, r2y = f (!x, !y +. hy) in
      let j11 = (r1x -. r1) /. hx
      and j12 = (r1y -. r1) /. hy
      and j21 = (r2x -. r2) /. hx
      and j22 = (r2y -. r2) /. hy in
      let det = (j11 *. j22) -. (j12 *. j21) in
      if Float.abs det < 1e-300 then begin
        emit_done !k false !last_res;
        raise (No_convergence "newton2d: singular Jacobian")
      end;
      let dx = ((j22 *. r1) -. (j12 *. r2)) /. det in
      let dy = ((j11 *. r2) -. (j21 *. r1)) /. det in
      (* damped update: halve the step until the residual decreases *)
      let base = res_norm (r1, r2) in
      let rec damp lambda tries =
        let xn = !x -. (lambda *. dx) and yn = !y -. (lambda *. dy) in
        let rn = res_norm (f (xn, yn)) in
        if rn < base || tries >= 8 then (xn, yn, lambda)
        else damp (lambda /. 2.0) (tries + 1)
      in
      let xn, yn, lambda = damp 1.0 0 in
      emit_iter !k base
        (Float.max (Float.abs (lambda *. dx)) (Float.abs (lambda *. dy)))
        lambda;
      x := xn;
      y := yn
    end
  done;
  match !result with
  | Some r ->
    emit_done !k true !last_res;
    r
  | None ->
    let r1, r2 = f (!x, !y) in
    if res_norm (r1, r2) < sqrt tol then begin
      emit_done !k true (res_norm (r1, r2));
      (!x, !y)
    end
    else begin
      emit_done !k false (res_norm (r1, r2));
      raise (No_convergence "newton2d")
    end
