(** Descriptive statistics over float arrays (non-empty unless noted;
    an empty array — or a [linear_fit] length mismatch — raises
    [Invalid_argument]). *)

val mean : float array -> float
val variance : float array -> float
(** Population variance (divides by [n]). *)

val stddev : float array -> float
val rms : float array -> float
val min_max : float array -> float * float
val median : float array -> float
(** Does not modify its argument. *)

val linear_fit : xs:float array -> ys:float array -> float * float
(** Least-squares line [(slope, intercept)]; used for detecting phase drift
    (an unlocked oscillator has a linearly growing phase error). *)

val max_abs_dev : float array -> float
(** Maximum absolute deviation from the mean. *)
