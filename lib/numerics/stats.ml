let check x = if Array.length x = 0 then invalid_arg "Stats: empty array"

let mean x =
  check x;
  Array.fold_left ( +. ) 0.0 x /. float_of_int (Array.length x)

let variance x =
  check x;
  let m = mean x in
  let s = Array.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0.0 x in
  s /. float_of_int (Array.length x)

let stddev x = sqrt (variance x)

let rms x =
  check x;
  let s = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x in
  sqrt (s /. float_of_int (Array.length x))

let min_max x =
  check x;
  Array.fold_left
    (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
    (x.(0), x.(0)) x

let median x =
  check x;
  let y = Array.copy x in
  Array.sort Float.compare y;
  let n = Array.length y in
  if n mod 2 = 1 then y.(n / 2) else 0.5 *. (y.((n / 2) - 1) +. y.(n / 2))

let linear_fit ~xs ~ys =
  check xs;
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.linear_fit: length mismatch";
  let n = float_of_int (Array.length xs) in
  let sx = Array.fold_left ( +. ) 0.0 xs in
  let sy = Array.fold_left ( +. ) 0.0 ys in
  let sxx = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
  let sxy = ref 0.0 in
  Array.iteri (fun i x -> sxy := !sxy +. (x *. ys.(i))) xs;
  let denom = (n *. sxx) -. (sx *. sx) in
  if denom = 0.0 then (0.0, sy /. n)
  else begin
    let slope = ((n *. !sxy) -. (sx *. sy)) /. denom in
    let intercept = (sy -. (slope *. sx)) /. n in
    (slope, intercept)
  end

let max_abs_dev x =
  let m = mean x in
  Array.fold_left (fun acc v -> Float.max acc (Float.abs (v -. m))) 0.0 x
