/* Batch nonlinearity kernels for Numerics.Kernel.
 *
 * Two tiers:
 *   - oshil_neg_tanh_batch: scalar loop calling the process libm tanh,
 *     evaluating exactly the OCaml expression
 *     [-. isat *. tanh (g0 *. v /. isat)] operation for operation. The
 *     same libm function on the same doubles yields the same bits, so
 *     this is safe on the bit-identity (default) path; it only removes
 *     the per-sample closure/caml_apply overhead.
 *   - oshil_neg_tanh_batch_fast: 4-wide SIMD tanh via glibc's libmvec
 *     (_ZGVdN4v_tanh), accurate to a few ulp but NOT bit-identical.
 *     Only the tolerance-grade symmetry-reduced path may use it. Gated
 *     at compile time on x86-64 + glibc >= 2.35 (libm.so is a linker
 *     script that pulls libmvec AS_NEEDED, so no extra link flags) and
 *     at run time on AVX2; otherwise it falls back to the scalar loop.
 *
 * Compiled with -ffp-contract=off (see dune) so the compiler can never
 * fuse float operations differently from the OCaml definitions.
 */

#include <caml/mlvalues.h>
#include <math.h>

/* Flat float arrays: an OCaml [float array] is a Double_array_tag block
   whose payload is a packed C double[]. The caller (Kernel) bounds-checks
   n against both array lengths before entering C. */
#define DBL(v) ((double *) Op_val(v))

CAMLprim value oshil_neg_tanh_batch(value src, value dst, value vn,
                                    value vg0, value visat)
{
  const double *s = DBL(src);
  double *d = DBL(dst);
  long n = Long_val(vn);
  double g0 = Double_val(vg0), isat = Double_val(visat);
  for (long i = 0; i < n; i++)
    d[i] = -isat * tanh(g0 * s[i] / isat);
  return Val_unit;
}

#if defined(__x86_64__) && defined(__GNUC__) && defined(__GLIBC__) \
    && defined(__GLIBC_PREREQ)
#if __GLIBC_PREREQ(2, 35)
#define OSHIL_HAVE_VEC_TANH 1
#endif
#endif

#ifdef OSHIL_HAVE_VEC_TANH

/* AVX2 variant of the libmvec vector-math ABI: 4 doubles per call.
   aligned(8) keeps loads/stores unaligned-safe. */
typedef double oshil_v4d __attribute__((vector_size(32), aligned(8)));
extern oshil_v4d oshil_vtanh4(oshil_v4d) __asm__("_ZGVdN4v_tanh");

__attribute__((target("avx2")))
static void oshil_neg_tanh_fast_avx2(const double *s, double *d, long n,
                                     double g0, double isat)
{
  const double r = g0 / isat;
  const oshil_v4d vr = { r, r, r, r };
  const oshil_v4d vm = { -isat, -isat, -isat, -isat };
  long i = 0;
  for (; i + 4 <= n; i += 4) {
    oshil_v4d x;
    __builtin_memcpy(&x, s + i, sizeof x);
    x = oshil_vtanh4(x * vr) * vm;
    __builtin_memcpy(d + i, &x, sizeof x);
  }
  for (; i < n; i++)
    d[i] = -isat * tanh(s[i] * r);
}

#endif /* OSHIL_HAVE_VEC_TANH */

static int oshil_vec_tanh_ok(void)
{
#ifdef OSHIL_HAVE_VEC_TANH
  static int ok = -1;
  if (ok < 0) {
    __builtin_cpu_init();
    ok = __builtin_cpu_supports("avx2") ? 1 : 0;
  }
  return ok;
#else
  return 0;
#endif
}

CAMLprim value oshil_vec_tanh_available(value unit)
{
  (void) unit;
  return Val_bool(oshil_vec_tanh_ok());
}

CAMLprim value oshil_neg_tanh_batch_fast(value src, value dst, value vn,
                                         value vg0, value visat)
{
  const double *s = DBL(src);
  double *d = DBL(dst);
  long n = Long_val(vn);
  double g0 = Double_val(vg0), isat = Double_val(visat);
#ifdef OSHIL_HAVE_VEC_TANH
  if (oshil_vec_tanh_ok()) {
    oshil_neg_tanh_fast_avx2(s, d, n, g0, isat);
    return Val_unit;
  }
#endif
  for (long i = 0; i < n; i++)
    d[i] = -isat * tanh(g0 * s[i] / isat);
  return Val_unit;
}
