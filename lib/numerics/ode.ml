type system = float -> float array -> float array

let axpy acc s x =
  Array.mapi (fun i a -> a +. (s *. x.(i))) acc

let rk4_step f ~t ~dt y =
  let k1 = f t y in
  let k2 = f (t +. (dt /. 2.0)) (axpy y (dt /. 2.0) k1) in
  let k3 = f (t +. (dt /. 2.0)) (axpy y (dt /. 2.0) k2) in
  let k4 = f (t +. dt) (axpy y dt k3) in
  Array.mapi
    (fun i yi ->
      yi +. (dt /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))
    y

let rk4 f ~t0 ~t1 ~dt ~y0 =
  assert (dt > 0.0 && t1 > t0);
  let times = ref [ t0 ] and states = ref [ Array.copy y0 ] in
  let t = ref t0 and y = ref (Array.copy y0) in
  while !t < t1 -. 1e-15 *. Float.max 1.0 (Float.abs t1) do
    let step = Float.min dt (t1 -. !t) in
    y := rk4_step f ~t:!t ~dt:step !y;
    t := !t +. step;
    times := !t :: !times;
    states := !y :: !states
  done;
  ( Array.of_list (List.rev !times),
    Array.of_list (List.rev !states) )

let rk4_final f ~t0 ~t1 ~dt ~y0 =
  assert (dt > 0.0 && t1 > t0);
  let t = ref t0 and y = ref (Array.copy y0) in
  while !t < t1 -. 1e-15 *. Float.max 1.0 (Float.abs t1) do
    let step = Float.min dt (t1 -. !t) in
    y := rk4_step f ~t:!t ~dt:step !y;
    t := !t +. step
  done;
  !y

type dopri_stats = { steps : int; rejected : int }

(* Dormand-Prince 5(4) Butcher tableau *)
let c2 = 1.0 /. 5.0
let c3 = 3.0 /. 10.0
let c4 = 4.0 /. 5.0
let c5 = 8.0 /. 9.0

let a21 = 1.0 /. 5.0
let a31 = 3.0 /. 40.0
let a32 = 9.0 /. 40.0
let a41 = 44.0 /. 45.0
let a42 = -56.0 /. 15.0
let a43 = 32.0 /. 9.0
let a51 = 19372.0 /. 6561.0
let a52 = -25360.0 /. 2187.0
let a53 = 64448.0 /. 6561.0
let a54 = -212.0 /. 729.0
let a61 = 9017.0 /. 3168.0
let a62 = -355.0 /. 33.0
let a63 = 46732.0 /. 5247.0
let a64 = 49.0 /. 176.0
let a65 = -5103.0 /. 18656.0
let b1 = 35.0 /. 384.0
let b3 = 500.0 /. 1113.0
let b4 = 125.0 /. 192.0
let b5 = -2187.0 /. 6784.0
let b6 = 11.0 /. 84.0
let e1 = 71.0 /. 57600.0
let e3 = -71.0 /. 16695.0
let e4 = 71.0 /. 1920.0
let e5 = -17253.0 /. 339200.0
let e6 = 22.0 /. 525.0
let e7 = -1.0 /. 40.0

let dopri5 ?(rtol = 1e-8) ?(atol = 1e-10) ?dt0 ?(max_steps = 2_000_000) f ~t0
    ~t1 ~y0 =
  assert (t1 > t0);
  let n = Array.length y0 in
  let combine y coefs =
    Array.init n (fun i ->
        List.fold_left (fun acc (s, k) -> acc +. (s *. (k : float array).(i))) y.(i) coefs)
  in
  let dt = ref (match dt0 with Some d -> d | None -> (t1 -. t0) /. 1000.0) in
  let t = ref t0 and y = ref (Array.copy y0) in
  let times = ref [ t0 ] and states = ref [ Array.copy y0 ] in
  let steps = ref 0 and rejected = ref 0 in
  let err_prev = ref 1.0 in
  while !t < t1 -. 1e-15 *. Float.max 1.0 (Float.abs t1) do
    if !steps + !rejected > max_steps then
      Resilience.Oshil_error.raise_ Numerics ~phase:"dopri5" Budget_exhausted
        "too many integration steps"
        ~context:
          [
            ("max_steps", string_of_int max_steps);
            ("t", Printf.sprintf "%.6e" !t);
            ("rejected", string_of_int !rejected);
          ]
        ~remedy:"raise max_steps or loosen rtol/atol";
    let h = Float.min !dt (t1 -. !t) in
    let k1 = f !t !y in
    let k2 = f (!t +. (c2 *. h)) (combine !y [ (h *. a21, k1) ]) in
    let k3 = f (!t +. (c3 *. h)) (combine !y [ (h *. a31, k1); (h *. a32, k2) ]) in
    let k4 =
      f (!t +. (c4 *. h))
        (combine !y [ (h *. a41, k1); (h *. a42, k2); (h *. a43, k3) ])
    in
    let k5 =
      f (!t +. (c5 *. h))
        (combine !y
           [ (h *. a51, k1); (h *. a52, k2); (h *. a53, k3); (h *. a54, k4) ])
    in
    let k6 =
      f (!t +. h)
        (combine !y
           [ (h *. a61, k1); (h *. a62, k2); (h *. a63, k3); (h *. a64, k4);
             (h *. a65, k5) ])
    in
    let y5 =
      combine !y
        [ (h *. b1, k1); (h *. b3, k3); (h *. b4, k4); (h *. b5, k5);
          (h *. b6, k6) ]
    in
    let k7 = f (!t +. h) y5 in
    let err_vec =
      combine (Array.make n 0.0)
        [ (h *. e1, k1); (h *. e3, k3); (h *. e4, k4); (h *. e5, k5);
          (h *. e6, k6); (h *. e7, k7) ]
    in
    let err =
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        let sc = atol +. (rtol *. Float.max (Float.abs !y.(i)) (Float.abs y5.(i))) in
        let r = err_vec.(i) /. sc in
        s := !s +. (r *. r)
      done;
      sqrt (!s /. float_of_int n)
    in
    if err <= 1.0 then begin
      incr steps;
      t := !t +. h;
      y := y5;
      times := !t :: !times;
      states := y5 :: !states;
      (* PI controller *)
      let fac =
        0.9 *. (Float.pow (Float.max err 1e-10) (-0.7 /. 5.0))
        *. (Float.pow (Float.max !err_prev 1e-10) (0.4 /. 5.0))
      in
      err_prev := Float.max err 1e-10;
      dt := h *. Float.min 5.0 (Float.max 0.2 fac)
    end
    else begin
      incr rejected;
      dt := h *. Float.max 0.1 (0.9 *. Float.pow err (-1.0 /. 5.0))
    end
  done;
  ( Array.of_list (List.rev !times),
    Array.of_list (List.rev !states),
    { steps = !steps; rejected = !rejected } )

let sample ~times:_ ~states ~component =
  Array.map (fun s -> s.(component)) states
