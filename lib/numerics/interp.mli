(** One-dimensional interpolation over tabulated data.

    Used to turn DC-sweep [i = f(v)] tables extracted from the circuit
    simulator into smooth nonlinearities for the describing-function
    machinery. Knot abscissae must be strictly increasing; the
    constructors raise [Invalid_argument] on a length mismatch, fewer
    than two knots, or non-increasing abscissae. *)

type t
(** An interpolant with an evaluation domain [[x_min, x_max]]. Evaluation
    outside the domain extrapolates linearly from the boundary slope. *)

val linear : xs:float array -> ys:float array -> t
(** Piecewise-linear interpolant. *)

val cubic_spline : xs:float array -> ys:float array -> t
(** Natural cubic spline (zero second derivative at the ends). *)

val pchip : xs:float array -> ys:float array -> t
(** Monotone piecewise-cubic Hermite (Fritsch–Carlson slopes): shape
    preserving, no overshoot — the right choice for device I/V tables. *)

val eval : t -> float -> float

val eval_batch : ?n:int -> t -> src:float array -> dst:float array -> unit
(** [eval_batch t ~src ~dst] stores [eval t src.(i)] into [dst.(i)] for
    [i < n] ([n] defaults to [Array.length src]), bit-identical to the
    scalar loop. The knot-interval search is warm-started from the
    previous sample, which amortizes it to O(1) on piecewise-smooth
    inputs (quadrature waveforms). Supports [src == dst]. Raises
    [Invalid_argument] if [n] exceeds either array's length. *)

val eval_deriv : t -> float -> float
(** First derivative of the interpolant (exact for the polynomial pieces;
    boundary slope outside the domain). *)

val domain : t -> float * float
val knots : t -> (float * float) array

val shift_x : t -> float -> t
(** [shift_x t dx] evaluates as [fun x -> eval t (x +. dx)] — used for
    bias-shifting device curves (the paper shifts the tunnel-diode curve by
    the 0.25 V bias). *)
