(* See kernel.mli for the bit-identity / tolerance-grade contract. The
   C externs live in kernel_stubs.c; every exported wrapper bounds-checks
   [n] before handing raw arrays to C. *)

let two_pi = 2.0 *. Float.pi

(* mlint: allow local-linspace — this is the canonical definition *)
let linspace a b n =
  Array.init n (fun k -> a +. ((b -. a) *. float_of_int k /. float_of_int (n - 1)))

(* Runtime switch for the scalar-fallback escape hatch: benches and the
   kernel-smoke byte-diff run the same binary twice, once per mode. *)
let batch_on =
  ref
    (match Sys.getenv_opt "OSHIL_NO_BATCH" with
    | None | Some "" | Some "0" -> true
    | Some _ -> false)

let batch_enabled () = !batch_on
let set_batch_enabled b = batch_on := b

(* Per-domain scratch: a free list per requested length, in domain-local
   storage so pool workers never contend or share buffers. *)
let scratch : (int, float array list ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let with_bufs ~len k fn =
  if len < 0 || k < 0 then invalid_arg "Kernel.with_bufs";
  let tbl = Domain.DLS.get scratch in
  let free =
    match Hashtbl.find_opt tbl len with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add tbl len r;
      r
  in
  let rec take acc i =
    if i = 0 then acc
    else
      match !free with
      | b :: rest ->
        free := rest;
        take (b :: acc) (i - 1)
      | [] -> take (Array.make len 0.0 :: acc) (i - 1)
  in
  let bufs = Array.of_list (take [] k) in
  Fun.protect
    ~finally:(fun () -> Array.iter (fun b -> free := b :: !free) bufs)
    (fun () -> fn bufs)

let check2 name n a b =
  if n < 0 || n > Array.length a || n > Array.length b then invalid_arg name

let dot2 ?n x ~cos_t ~sin_t =
  let n = match n with Some n -> n | None -> Array.length x in
  check2 "Kernel.dot2" n cos_t sin_t;
  if n > Array.length x then invalid_arg "Kernel.dot2";
  let re = ref 0.0 and im = ref 0.0 in
  for s = 0 to n - 1 do
    re := !re +. (x.(s) *. cos_t.(s));
    im := !im -. (x.(s) *. sin_t.(s))
  done;
  (!re, !im)

let synth_tone ~a ~cos_t ~dst ~n =
  check2 "Kernel.synth_tone" n cos_t dst;
  for s = 0 to n - 1 do
    dst.(s) <- a *. cos_t.(s)
  done

let synth_two_tone ~a ~cos_t ~inj_cos ~inj_sin ~dst ~n =
  check2 "Kernel.synth_two_tone" n cos_t dst;
  check2 "Kernel.synth_two_tone" n inj_cos inj_sin;
  for s = 0 to n - 1 do
    dst.(s) <- (a *. cos_t.(s)) +. inj_cos.(s) -. inj_sin.(s)
  done

let synth_two_tone_direct ~a ~w ~tone ~phi ~cos_t ~points ~dst ~n =
  check2 "Kernel.synth_two_tone_direct" n cos_t dst;
  let nf = float_of_int tone in
  for s = 0 to n - 1 do
    let theta = two_pi *. float_of_int s /. float_of_int points in
    dst.(s) <- (a *. cos_t.(s)) +. (w *. cos ((nf *. theta) +. phi))
  done

external c_neg_tanh_batch :
  float array -> float array -> int -> float -> float -> unit
  = "oshil_neg_tanh_batch"
[@@noalloc]

external c_neg_tanh_batch_fast :
  float array -> float array -> int -> float -> float -> unit
  = "oshil_neg_tanh_batch_fast"
[@@noalloc]

external c_vec_tanh_available : unit -> bool = "oshil_vec_tanh_available"
[@@noalloc]

let neg_tanh_batch ~g0 ~isat ~src ~dst ~n =
  check2 "Kernel.neg_tanh_batch" n src dst;
  c_neg_tanh_batch src dst n g0 isat

let neg_tanh_batch_fast ~g0 ~isat ~src ~dst ~n =
  check2 "Kernel.neg_tanh_batch_fast" n src dst;
  c_neg_tanh_batch_fast src dst n g0 isat

let vec_tanh_available = c_vec_tanh_available
