let two_pi = 2.0 *. Float.pi

(* Keyed by (points, harmonic). Every caller of an N-point quadrature at
   harmonic k wants the same table, and a SHIL analysis asks for it
   millions of times (once per describing-function sample), so the cache
   hit rate is effectively 1. Guarded by a mutex because grid rows are
   sampled from worker domains. Each entry carries a last-use tick so
   eviction under pressure drops the least-recently-used tables instead
   of wiping the process-lifetime hot (points, 1)/(points, n) entries
   mid-analysis. *)
type entry = { tables : float array * float array; mutable last_use : int }

let cache : (int * int, entry) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()
let tick = ref 0

(* Signals of arbitrary length also land here (coeff_sampled on a
   transient tail), so bound the footprint. At the limit, evict the
   stalest half: the recently-used quadrature tables survive, and the
   batched eviction amortizes the sort. *)
let max_entries = 64

(* caller holds [cache_mutex] *)
let evict_lru () =
  let entries =
    Hashtbl.fold (fun key e acc -> (e.last_use, key) :: acc) cache []
  in
  let by_age = List.sort (fun (a, _) (b, _) -> Int.compare a b) entries in
  let drop = List.length by_age - (max_entries / 2) in
  List.iteri
    (fun i (_, key) -> if i < drop then Hashtbl.remove cache key)
    by_age

let compute ~points ~k =
  let cos_t =
    Array.init points (fun s ->
        cos (two_pi *. float_of_int (k * s) /. float_of_int points))
  and sin_t =
    Array.init points (fun s ->
        sin (two_pi *. float_of_int (k * s) /. float_of_int points))
  in
  (cos_t, sin_t)

let get ~points ~k =
  if points < 1 then invalid_arg "Trig_tables.get: points must be >= 1";
  let key = (points, k) in
  Mutex.lock cache_mutex;
  incr tick;
  match Hashtbl.find_opt cache key with
  | Some e ->
    e.last_use <- !tick;
    Mutex.unlock cache_mutex;
    e.tables
  | None ->
    (* compute outside the lock; a racing duplicate computes the exact
       same floats, so whichever insertion wins is equivalent *)
    Mutex.unlock cache_mutex;
    let v = compute ~points ~k in
    Mutex.lock cache_mutex;
    incr tick;
    if Hashtbl.length cache >= max_entries then evict_lru ();
    (match Hashtbl.find_opt cache key with
    | None -> Hashtbl.add cache key { tables = v; last_use = !tick }
    | Some e -> e.last_use <- !tick);
    let v' =
      match Hashtbl.find_opt cache key with
      | Some e -> e.tables
      | None -> v
    in
    Mutex.unlock cache_mutex;
    v'

let clear () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex
