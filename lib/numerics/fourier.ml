let two_pi = 2.0 *. Float.pi

(* All three quadratures below project onto the cached cos/sin tables of
   Trig_tables instead of calling cos/sin per sample: the trig work per
   (points, harmonic) pair is paid once per process, and the inner loops
   reduce to the nonlinearity/signal evaluation plus fused multiply-adds. *)

let project_sampled x ~cos_t ~sin_t =
  let n = Array.length x in
  let re, im = Kernel.dot2 ~n x ~cos_t ~sin_t in
  Cx.make (re /. float_of_int n) (im /. float_of_int n)

let coeffs ?(n = 1024) ~f ~kmax () =
  assert (n >= 1 && kmax >= 0);
  let samples = Array.init n (fun s -> f (two_pi *. float_of_int s /. float_of_int n)) in
  Array.init (kmax + 1) (fun k ->
      let cos_t, sin_t = Trig_tables.get ~points:n ~k in
      project_sampled samples ~cos_t ~sin_t)

let coeff ?(n = 1024) ~f ~k () =
  assert (n >= 1);
  let cos_t, sin_t = Trig_tables.get ~points:n ~k in
  let re = ref 0.0 and im = ref 0.0 in
  for s = 0 to n - 1 do
    let v = f (two_pi *. float_of_int s /. float_of_int n) in
    re := !re +. (v *. cos_t.(s));
    im := !im -. (v *. sin_t.(s))
  done;
  Cx.make (!re /. float_of_int n) (!im /. float_of_int n)

let coeff_sampled x ~k =
  let n = Array.length x in
  assert (n >= 1);
  let cos_t, sin_t = Trig_tables.get ~points:n ~k in
  project_sampled x ~cos_t ~sin_t

let of_time_series ~t ~x ~freq ~k =
  let n = Array.length t in
  assert (n = Array.length x && n >= 2);
  let w = two_pi *. freq *. float_of_int k in
  let g i =
    let theta = w *. t.(i) in
    Cx.scale x.(i) (Cx.exp_j (-.theta))
  in
  let acc = ref Cx.zero in
  for i = 0 to n - 2 do
    let dt = t.(i + 1) -. t.(i) in
    acc := Cx.add !acc (Cx.scale (0.5 *. dt) (Cx.add (g i) (g (i + 1))))
  done;
  let span = t.(n - 1) -. t.(0) in
  Cx.scale (1.0 /. span) !acc

let reconstruct cs ~theta =
  let n = Array.length cs in
  if n = 0 then 0.0
  else begin
    let s = ref (Cx.re cs.(0)) in
    for k = 1 to n - 1 do
      s := !s +. (2.0 *. Cx.re (Cx.mul cs.(k) (Cx.exp_j (float_of_int k *. theta))))
    done;
    !s
  end
