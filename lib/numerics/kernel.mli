(** Flat-array batch kernels for the describing-function hot path.

    Everything the quadrature inner loops need, expressed over reusable
    [float array] buffers: waveform synthesis, fused Fourier projection
    and batched special functions. Two contracts coexist:

    - {b bit-identity}: [dot2], [synth_tone], [synth_two_tone] and
      [neg_tanh_batch] perform exactly the float operations, in exactly
      the association and order, of the historical per-sample loops in
      [Shil.Grid.sample] / [Numerics.Fourier.coeff]. Rewiring those call
      sites through this module changes no output bit, so cache keys
      keyed on the quadrature keep their version.
    - {b tolerance-grade}: [neg_tanh_batch_fast] (SIMD tanh via libmvec
      where available) is accurate to a few ulp but not bit-identical;
      only opt-in reduced paths behind bumped cache-key versions may use
      it.

    Buffer ownership: callers obtain scratch via {!with_bufs}; the
    arrays are per-domain (never shared across [Pool] workers), valid
    only inside the callback, and returned to the domain-local free list
    afterwards. Never retain them. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n >= 2] uniformly spaced samples with
    [x.(0) = a] and [x.(n-1) = b], computed as
    [a +. ((b -. a) *. float k /. float (n - 1))] — the single shared
    definition (mlint flags new private copies in [lib/]). *)

val batch_enabled : unit -> bool
(** Whether batch implementations are allowed. [false] forces every
    [Nonlinearity.eval_batch] through the scalar [f] fallback — the
    pre-batching code path — which benches and smoke tests use to
    measure and byte-compare scalar vs batch. Initialised from the
    [OSHIL_NO_BATCH] environment variable (set non-empty, non-"0" to
    disable batching). *)

val set_batch_enabled : bool -> unit

val with_bufs : len:int -> int -> (float array array -> 'a) -> 'a
(** [with_bufs ~len k f] calls [f] with [k] scratch arrays of length
    [len] from the current domain's free list (allocating on first use),
    returning them when [f] finishes. Contents are unspecified on entry.
    Reentrant: nested calls receive distinct arrays. Raises
    [Invalid_argument] if [len] or [k] is negative. *)

val dot2 :
  ?n:int -> float array -> cos_t:float array -> sin_t:float array ->
  float * float
(** [dot2 x ~cos_t ~sin_t] is [(Σ x.(s)·cos_t.(s), −Σ x.(s)·sin_t.(s))]
    for [s = 0 .. n-1] ([n] defaults to [Array.length x]), accumulated
    in ascending [s] with one add per term — the exact summation order
    of the historical projection loops, so results are bit-identical to
    them. Raises [Invalid_argument] if [n] exceeds any array's
    length. *)

val synth_tone : a:float -> cos_t:float array -> dst:float array -> n:int -> unit
(** [dst.(s) <- a *. cos_t.(s)] for [s < n]. *)

val synth_two_tone :
  a:float -> cos_t:float array -> inj_cos:float array ->
  inj_sin:float array -> dst:float array -> n:int -> unit
(** [dst.(s) <- ((a *. cos_t.(s)) +. inj_cos.(s)) -. inj_sin.(s)] — the
    grid row waveform with the per-row injection terms
    [cp *. cos_nt.(s)] / [sp *. sin_nt.(s)] hoisted into buffers; same
    association as the historical inline expression. *)

val synth_two_tone_direct :
  a:float -> w:float -> tone:int -> phi:float -> cos_t:float array ->
  points:int -> dst:float array -> n:int -> unit
(** [dst.(s) <- (a *. cos_t.(s)) +. (w *. cos ((tone·θ_s) +. phi))] with
    [θ_s = 2π s / points] recomputed per sample — bit-identical to the
    historical [Describing_function.two_tone_input] closure when
    [cos_t] is the [(points, 1)] trig table and [w = 2.0 *. vi]. *)

val neg_tanh_batch :
  g0:float -> isat:float -> src:float array -> dst:float array -> n:int -> unit
(** [dst.(i) <- -.isat *. tanh (g0 *. src.(i) /. isat)] for [i < n],
    evaluated in C against the same libm — bit-identical to the OCaml
    expression. Supports [src == dst]. *)

val neg_tanh_batch_fast :
  g0:float -> isat:float -> src:float array -> dst:float array -> n:int -> unit
(** Tolerance-grade variant: SIMD [tanh] (glibc libmvec, AVX2) when
    available, the scalar loop otherwise. Accurate to a few ulp; never
    use on a bit-identity path. Supports [src == dst]. *)

val vec_tanh_available : unit -> bool
(** Whether {!neg_tanh_batch_fast} actually dispatches to SIMD on this
    build/host (reported in bench records). *)
