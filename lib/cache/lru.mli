(** Bounded in-memory LRU map from key strings to value blobs.

    The hot tier of {!Store}: most-recently-used entries stay resident,
    and inserting past either capacity (entry count or total payload
    bytes) evicts from the cold end. Not thread-safe on its own —
    {!Store} serialises access behind one mutex. *)

type t

val create : ?max_entries:int -> ?max_bytes:int -> unit -> t
(** Defaults: 512 entries, 64 MiB of payload. [max_entries >= 1];
    [max_bytes] counts key + data bytes plus a small per-entry
    overhead. Raises [Invalid_argument] if [max_entries < 1]. *)

val find : t -> string -> string option
(** Refreshes the entry's recency on hit. *)

val add : t -> string -> string -> unit
(** Insert or replace, making the entry most-recent, then evict
    least-recently-used entries until both capacities hold. A single
    blob larger than [max_bytes] is accepted on its own (the cache then
    holds just that entry) so oversized values degrade to a 1-slot
    cache rather than thrashing. *)

val mem : t -> string -> bool
(** Does not refresh recency. *)

val length : t -> int
val bytes : t -> int

val evictions : t -> int
(** Cumulative evictions since [create]/[clear]. *)

val clear : t -> unit
