(** Content-addressed result store: in-memory LRU tier over an optional
    on-disk tier.

    Off by default — while disabled every entry point returns
    immediately and the instrumented kernels compute exactly as before,
    so zero-cache runs are bit-identical to a build without this
    library. Enable with {!set_enabled} (the CLI [--cache] flag) or the
    [OSHIL_CACHE] environment variable; [OSHIL_CACHE_DIR] /
    [--cache-dir] relocate the disk tier from its default
    [out/cache/].

    The bit-identity contract: values are stored as [Marshal] blobs,
    which round-trip every float bit-exactly, and keys ({!Key}) cover
    the full kernel input, so a cache hit returns precisely the value a
    cold computation would have produced. Kernels enforce the contract
    in the test suite by diffing hot and cold outputs byte-for-byte.

    Disk entries are one file per key, [<dir>/<kind>/<digest>.bin],
    written atomically (temp file + rename). Each file carries the key
    preimage in its header; a read whose header does not match the
    requested preimage — digest collision, truncated write, stale
    format — or whose payload fails to decode is treated as a miss and
    the file is quarantined: renamed to [<digest>.bin.bad] (removed if
    the rename fails) so a clean recompute can repopulate the slot, with
    the [cache.corrupt] counter bumped. A long-lived daemon therefore
    survives a torn write or disk bit-rot without manual intervention.
    Version numbers live inside the key, so bumping a kernel's version
    simply stops referencing old entries.

    Metered through [Obs.Metrics] (visible in [oshil stats] when
    tracing): [cache.hits], [cache.memory_hits], [cache.disk_hits],
    [cache.misses], [cache.evictions], [cache.disk_writes],
    [cache.decode_failures], [cache.corrupt] and the
    [cache.store_bytes] gauge.

    Thread-safe: one process-wide mutex serialises tier access, so
    kernels running inside [Numerics.Pool] workers may share the
    cache. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val dir : unit -> string
val set_dir : string -> unit

val configure_from_env : unit -> unit
(** [OSHIL_CACHE] ([1]/[true]/[yes] — enable), [OSHIL_CACHE_DIR] (path,
    implies nothing about enablement). Unset or empty variables change
    nothing. *)

val set_memory_capacity : ?entries:int -> ?bytes:int -> unit -> unit
(** Replace the memory tier with a fresh one of the given capacity
    (defaults as {!Lru.create}). Discards resident entries. *)

val clear_memory : unit -> unit
(** Drop the memory tier (the disk tier is untouched) — lets tests
    force disk-tier round-trips. *)

val to_marshal : 'a -> string
(** [Marshal]-encode (with closure marshalling disabled, so attempting
    to cache a closure-bearing value raises instead of storing garbage). *)

val of_marshal : string -> 'a option
(** [None] on any decode failure. Type safety rests on the key: a blob
    is only ever decoded at the type of the kernel that wrote it,
    because the kind/version/fields of the key pin the producing
    call site. *)

val find : ?disk:bool -> key:Key.t -> decode:(string -> 'a option) -> unit ->
  'a option
(** Memory tier first, then (when [disk], default [true]) the disk
    tier; a disk hit is promoted into the memory tier. Returns [None]
    without touching any tier while the store is disabled. Meters
    hits/misses. *)

val add : ?disk:bool -> key:Key.t -> encode:('a -> string) -> 'a -> unit
(** Store into the memory tier and (when [disk]) the disk tier. A
    failed disk write (permissions, disk full) is silently dropped —
    caching is an optimisation, never a failure source. No-op while
    disabled. *)

val find_or_compute :
  ?disk:bool -> ?cache_if:('a -> bool) -> key:Key.t ->
  encode:('a -> string) -> decode:(string -> 'a option) -> (unit -> 'a) ->
  'a
(** [find_or_compute ~key ~encode ~decode f] — the memoization
    combinator: hit returns the cached value, miss computes [f ()] and
    stores it when [cache_if] (default: always) accepts it. While the
    store is disabled this is exactly [f ()]. *)

val stats_bytes : unit -> int
(** Current memory-tier payload bytes (also exported as the
    [cache.store_bytes] gauge on every mutation). *)
