type field = string

let sanitize s =
  String.map
    (fun c -> match c with ';' | '\n' | '\r' | '|' -> '_' | c -> c)
    s

let str name v = Printf.sprintf "%s=%s" (sanitize name) (sanitize v)
let int name v = Printf.sprintf "%s=%d" (sanitize name) v
let bool name v = Printf.sprintf "%s=%b" (sanitize name) v

(* %h is bit-exact for finite floats; nan/infinity render as words. The
   explicit check keeps -0.0 distinct from 0.0 (%h already does, but be
   explicit about the contract: equal bits <-> equal field). *)
let float name v = Printf.sprintf "%s=%h" (sanitize name) v

let float_opt name = function
  | None -> Printf.sprintf "%s=none" (sanitize name)
  | Some v -> float name v

let digest_of_string s = Digest.to_hex (Digest.string s)

type t = { kind : string; preimage : string }

let v ~kind ~version fields =
  let kind = sanitize kind in
  {
    kind;
    preimage =
      Printf.sprintf "%s/v%d|%s" kind version (String.concat ";" fields);
  }

let kind t = t.kind
let preimage t = t.preimage
let digest t = Digest.to_hex (Digest.string t.preimage)
