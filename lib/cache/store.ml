(* Two-tier content-addressed store. The disabled fast path is a single
   atomic load so instrumented kernels cost nothing when caching is off;
   everything mutable behind it (directory, memory tier) sits under one
   mutex so pool workers can share the cache. Disk I/O runs outside the
   lock — concurrent writers of the same key race harmlessly because
   both write identical bytes and the rename is atomic. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let mu = Mutex.create ()

let with_lock f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let cache_dir = ref (Filename.concat "out" "cache")
let dir () = with_lock (fun () -> !cache_dir)
let set_dir d = with_lock (fun () -> cache_dir := d)

let memory = ref (Lru.create ())

let truthy s =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "true" | "yes" | "on" -> true
  | _ -> false

let configure_from_env () =
  (match Sys.getenv_opt "OSHIL_CACHE" with
  | Some s when not (String.equal (String.trim s) "") ->
    set_enabled (truthy s)
  | _ -> ());
  match Sys.getenv_opt "OSHIL_CACHE_DIR" with
  | Some d when not (String.equal (String.trim d) "") -> set_dir d
  | _ -> ()

let publish_gauge_locked () =
  Obs.Metrics.set_gauge "cache.store_bytes" (float_of_int (Lru.bytes !memory))

let set_memory_capacity ?entries ?bytes () =
  with_lock (fun () ->
      memory := Lru.create ?max_entries:entries ?max_bytes:bytes ();
      publish_gauge_locked ())

let clear_memory () =
  with_lock (fun () ->
      Lru.clear !memory;
      publish_gauge_locked ())

let stats_bytes () = with_lock (fun () -> Lru.bytes !memory)

(* Default Marshal flags reject closures, so a value that cannot be
   reproduced bit-identically from bytes raises at [add] time instead of
   poisoning the store. *)
let to_marshal v = Marshal.to_string v []
let of_marshal s = try Some (Marshal.from_string s 0) with _ -> None

(* --- disk tier ------------------------------------------------------ *)

let header_of key = Printf.sprintf "oshil-cache/1 %s" (Key.preimage key)

let entry_path key =
  Filename.concat
    (Filename.concat (dir ()) (Key.kind key))
    (Key.digest key ^ ".bin")

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if not (String.equal parent d) then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

type disk_read = Disk_miss | Disk_corrupt | Disk_blob of string

let read_disk key =
  match
    In_channel.with_open_bin (entry_path key) (fun ic ->
        let header = In_channel.input_line ic in
        let blob = In_channel.input_all ic in
        (header, blob))
  with
  | exception Sys_error _ -> Disk_miss
  | Some header, blob when String.equal header (header_of key) -> Disk_blob blob
  | _ ->
    (* digest collision, truncated write or stale on-disk format: the
       header is the ground truth, so anything else is corrupt *)
    Disk_corrupt

(* A corrupt entry must never shadow a recompute: move it aside so the
   slot is free for a clean rewrite, keep the bytes around as [.bad] for
   post-mortem. Removal is the fallback when the rename itself fails. *)
let quarantine key =
  let path = entry_path key in
  (try Sys.rename path (path ^ ".bad")
   with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
  Obs.Metrics.incr "cache.corrupt"

let write_disk key blob =
  try
    let shard = Filename.concat (dir ()) (Key.kind key) in
    mkdir_p shard;
    let tmp =
      Filename.concat shard
        (Printf.sprintf ".tmp.%s.%d" (Key.digest key) (Unix.getpid ()))
    in
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (header_of key);
        Out_channel.output_char oc '\n';
        Out_channel.output_string oc blob);
    Sys.rename tmp (entry_path key);
    true
  with Sys_error _ | Unix.Unix_error _ -> false

(* --- lookup / insert ------------------------------------------------ *)

let memory_find key = with_lock (fun () -> Lru.find !memory (Key.preimage key))

let memory_add key blob =
  let evicted =
    with_lock (fun () ->
        let before = Lru.evictions !memory in
        Lru.add !memory (Key.preimage key) blob;
        publish_gauge_locked ();
        Lru.evictions !memory - before)
  in
  if evicted > 0 then Obs.Metrics.incr ~by:evicted "cache.evictions"

let decoded ~tier ~decode blob =
  match decode blob with
  | Some v ->
    Obs.Metrics.incr "cache.hits";
    Obs.Metrics.incr tier;
    Some v
  | None ->
    Obs.Metrics.incr "cache.decode_failures";
    None

let find ?(disk = true) ~key ~decode () =
  if not (enabled ()) then None
  else begin
    (* per-access locality event: which tier served this key's kind *)
    let outcome = ref "miss" in
    let hit =
      match memory_find key with
      | Some blob ->
        let v = decoded ~tier:"cache.memory_hits" ~decode blob in
        if v <> None then outcome := "memory";
        v
      | None -> (
        if not disk then None
        else
          match read_disk key with
          | Disk_miss -> None
          | Disk_corrupt ->
            quarantine key;
            None
          | Disk_blob blob -> (
            match decoded ~tier:"cache.disk_hits" ~decode blob with
            | Some v ->
              memory_add key blob;
              outcome := "disk";
              Some v
            | None ->
              (* header matched but the payload does not unmarshal:
                 quarantine just like a bad header *)
              quarantine key;
              None))
    in
    (match hit with None -> Obs.Metrics.incr "cache.misses" | Some _ -> ());
    if Obs.Event.enabled () then
      Obs.Event.emit
        (Obs.Event.Cache_access { kind = Key.kind key; outcome = !outcome });
    hit
  end

let add ?(disk = true) ~key ~encode v =
  if enabled () then begin
    let blob = encode v in
    memory_add key blob;
    if disk && write_disk key blob then Obs.Metrics.incr "cache.disk_writes"
  end

let find_or_compute ?(disk = true) ?(cache_if = fun _ -> true) ~key ~encode
    ~decode f =
  match find ~disk ~key ~decode () with
  | Some v -> v
  | None ->
    let v = f () in
    if cache_if v then add ~disk ~key ~encode v;
    v
