(** Canonical cache keys: a content address for one kernel invocation.

    A key is built from the {e full} input of an expensive computation —
    tank parameters, nonlinearity identity, grid geometry, tolerances,
    solver options — rendered into a canonical single-line preimage and
    hashed. Two invocations share a cache slot iff their preimages are
    byte-identical, so every field that can influence the result must be
    part of the key.

    Canonical encoding rules:
    - floats are rendered as hexadecimal literals ([%h]) — bit-exact, no
      rounding ambiguity, NaN/infinity safe;
    - fields are [name=value] pairs joined by [;] in the order given
      (callers list fields in a fixed order, so equal inputs produce
      equal preimages);
    - the kernel [kind] and a [version] number prefix the preimage, so
      bumping a kernel's version orphans every stale entry (stale
      formats self-invalidate — nothing ever reads them again). *)

type field

val str : string -> string -> field
(** [str name v] — [v] is sanitized: [';'], ['\n'], ['\r'] and ['|']
    become ['_'] so a hostile value cannot alias another field list. *)

val int : string -> int -> field
val bool : string -> bool -> field

val float : string -> float -> field
(** Bit-exact ([%h]); distinguishes [0.0] from [-0.0] and preserves
    NaN/infinity. *)

val float_opt : string -> float option -> field
(** [None] renders as the literal [none], distinct from every number. *)

val digest_of_string : string -> string
(** Hex digest of arbitrary bytes — for embedding large blobs (sampled
    tables, netlist text) as fixed-size fields. *)

type t

val v : kind:string -> version:int -> field list -> t
(** [v ~kind ~version fields] — [kind] names the kernel
    (e.g. ["shil.grid"]) and doubles as the on-disk shard directory. *)

val kind : t -> string

val preimage : t -> string
(** The canonical single-line rendering, e.g.
    ["shil.grid/v1|nl=neg_tanh(...);n=3;r=0x1.f4p+9;..."]. Stored in
    the header of every disk entry and compared on read, so a digest
    collision can never alias two different computations. *)

val digest : t -> string
(** Hex digest of {!preimage} — the content address used for the
    in-memory table and the on-disk file name. *)
