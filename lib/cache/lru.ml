(* Classic doubly-linked-list LRU: the hashtable maps keys to list
   nodes, the list orders nodes most-recent first. All operations are
   O(1) except eviction sweeps, which are O(evicted). *)

type node = {
  key : string;
  mutable data : string;
  mutable prev : node option;  (* towards MRU *)
  mutable next : node option;  (* towards LRU *)
}

type t = {
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable bytes : int;
  max_entries : int;
  max_bytes : int;
  mutable evictions : int;
}

(* hashtable + list-node bookkeeping per entry, roughly *)
let entry_overhead = 64

let entry_bytes node =
  String.length node.key + String.length node.data + entry_overhead

let create ?(max_entries = 512) ?(max_bytes = 64 * 1024 * 1024) () =
  if max_entries < 1 then invalid_arg "Lru.create: max_entries must be >= 1";
  {
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    max_entries;
    max_bytes;
    evictions = 0;
  }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.data

let mem t key = Hashtbl.mem t.tbl key

let drop_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.tbl node.key;
    t.bytes <- t.bytes - entry_bytes node;
    t.evictions <- t.evictions + 1

let add t key data =
  (match Hashtbl.find_opt t.tbl key with
  | Some node ->
    t.bytes <- t.bytes - entry_bytes node;
    node.data <- data;
    t.bytes <- t.bytes + entry_bytes node;
    unlink t node;
    push_front t node
  | None ->
    let node = { key; data; prev = None; next = None } in
    Hashtbl.replace t.tbl key node;
    t.bytes <- t.bytes + entry_bytes node;
    push_front t node);
  while Hashtbl.length t.tbl > t.max_entries do
    drop_lru t
  done;
  (* never evict the entry just inserted: an oversized blob degrades to
     a one-slot cache instead of an insert/evict livelock *)
  while t.bytes > t.max_bytes && Hashtbl.length t.tbl > 1 do
    drop_lru t
  done

let length t = Hashtbl.length t.tbl
let bytes t = t.bytes
let evictions t = t.evictions

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.bytes <- 0;
  t.evictions <- 0
