(** Waveform measurements: crossings, frequency, amplitude, steady state. *)

val rising_crossings : ?level:float -> Signal.t -> float array
(** Times of rising crossings through [level] (default the signal's
    time-weighted mean), located by linear interpolation. *)

val frequency : ?level:float -> Signal.t -> float
(** Mean frequency from the first to the last rising crossing. Raises
    [Failure] with an explanatory message when fewer than two crossings
    exist (no oscillation). *)

val frequency_opt : ?level:float -> Signal.t -> float option

val amplitude : Signal.t -> float
(** Half the peak-to-peak excursion — the [A] of the paper's sinusoidal
    steady state. *)

val peaks : Signal.t -> (float * float) array
(** Local maxima [(time, value)] found by three-point comparison with
    parabolic refinement. *)

val is_steady : ?window_fraction:float -> ?rel_tol:float -> Signal.t -> bool
(** Compares the amplitude over the last window against the previous one:
    steady when they differ by less than [rel_tol] (default 1%%,
    [window_fraction] default 0.15). *)

val fundamental : Signal.t -> freq:float -> Numerics.Cx.t
(** One-sided phasor of the component at [freq]: the real waveform
    [2|X| cos(2 pi f t + arg X)] matches the signal's component. Uses an
    integer number of periods from the tail of the signal. Raises
    [Invalid_argument] when the signal is shorter than one period. *)

val phase_vs_reference : Signal.t -> freq:float -> windows:int -> float array
(** Splits the signal into [windows] equal spans and returns the phase (in
    radians, unwrapped) of the [freq] component in each — a locked
    oscillator shows a flat profile, an unlocked one a steady drift.
    Raises [Invalid_argument] if [windows < 1]. *)
