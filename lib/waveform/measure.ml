module Cx = Numerics.Cx

let rising_crossings ?level (s : Signal.t) =
  let level = match level with Some l -> l | None -> Signal.mean s in
  let out = ref [] in
  let n = Signal.length s in
  for i = 0 to n - 2 do
    let a = s.values.(i) -. level and b = s.values.(i + 1) -. level in
    if a < 0.0 && b >= 0.0 then begin
      let ta = s.times.(i) and tb = s.times.(i + 1) in
      let t = ta +. ((tb -. ta) *. (-.a /. (b -. a))) in
      out := t :: !out
    end
  done;
  Array.of_list (List.rev !out)

let frequency_opt ?level s =
  let c = rising_crossings ?level s in
  let n = Array.length c in
  if n < 2 then None
  else Some (float_of_int (n - 1) /. (c.(n - 1) -. c.(0)))

let frequency ?level s =
  match frequency_opt ?level s with
  | Some f -> f
  | None ->
    Resilience.Oshil_error.raise_ Waveform ~phase:"measure"
      Measurement_failure "fewer than two rising crossings"
      ~context:[ ("samples", string_of_int (Signal.length s)) ]
      ~remedy:"record a longer waveform or use frequency_opt"

let amplitude (s : Signal.t) =
  let lo, hi = Numerics.Stats.min_max s.values in
  0.5 *. (hi -. lo)

let peaks (s : Signal.t) =
  let out = ref [] in
  let n = Signal.length s in
  for i = 1 to n - 2 do
    let a = s.values.(i - 1) and b = s.values.(i) and c = s.values.(i + 1) in
    if b >= a && b > c then begin
      (* parabolic refinement through the three samples *)
      let denom = a -. (2.0 *. b) +. c in
      if Float.abs denom > 1e-300 then begin
        let delta = 0.5 *. (a -. c) /. denom in
        let dt = s.times.(i + 1) -. s.times.(i) in
        let t = s.times.(i) +. (delta *. dt) in
        let v = b -. (0.25 *. (a -. c) *. delta) in
        out := (t, v) :: !out
      end
      else out := (s.times.(i), b) :: !out
    end
  done;
  Array.of_list (List.rev !out)

let is_steady ?(window_fraction = 0.15) ?(rel_tol = 0.01) s =
  let t1 = s.Signal.times.(Signal.length s - 1) in
  let span = Signal.duration s in
  let w = window_fraction *. span in
  if w <= 0.0 then false
  else begin
    let last = Signal.slice s ~t_min:(t1 -. w) ~t_max:t1 in
    let prev = Signal.slice s ~t_min:(t1 -. (2.0 *. w)) ~t_max:(t1 -. w) in
    let a1 = amplitude last and a0 = amplitude prev in
    let scale = Float.max (Float.abs a1) 1e-30 in
    Float.abs (a1 -. a0) /. scale < rel_tol
  end

let fundamental (s : Signal.t) ~freq =
  (* trim the tail to an integer number of periods for a clean projection *)
  let period = 1.0 /. freq in
  let t1 = s.times.(Signal.length s - 1) in
  let span = Signal.duration s in
  let periods = Float.floor (span /. period) in
  if periods < 1.0 then invalid_arg "Measure.fundamental: signal shorter than one period";
  let t0 = t1 -. (periods *. period) in
  let w = Signal.slice s ~t_min:t0 ~t_max:t1 in
  Numerics.Fourier.of_time_series ~t:w.times ~x:w.values ~freq ~k:1

let phase_vs_reference (s : Signal.t) ~freq ~windows =
  if windows < 1 then invalid_arg "Measure.phase_vs_reference";
  let t0 = s.times.(0) and t1 = s.times.(Signal.length s - 1) in
  let span = (t1 -. t0) /. float_of_int windows in
  let phases =
    Array.init windows (fun k ->
        let a = t0 +. (float_of_int k *. span) in
        let b = a +. span in
        let w = Signal.slice s ~t_min:a ~t_max:b in
        let x = Numerics.Fourier.of_time_series ~t:w.times ~x:w.values ~freq ~k:1 in
        Cx.arg x)
  in
  Numerics.Angle.unwrap phases
