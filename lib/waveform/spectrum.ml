module Fft = Numerics.Fft

type t = { freqs : float array; mags : float array }

let compute ?(hann = true) (s : Signal.t) =
  let n_raw = Signal.length s in
  let n = Fft.next_power_of_two n_raw in
  let t0 = s.times.(0) and t1 = s.times.(n_raw - 1) in
  (* resampling onto the power-of-two grid is a binary search per point
     (O(n log n) total) and dominates for long transients; the points are
     independent, so split them across the pool *)
  let ts = Numerics.Kernel.linspace t0 t1 n in
  let xs = Numerics.Pool.parallel_init n (fun k -> Signal.value_at s ts.(k)) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let coherent_gain = ref 0.0 in
  let windowed =
    Array.mapi
      (fun k x ->
        let w =
          if hann then
            0.5 *. (1.0 -. cos (2.0 *. Float.pi *. float_of_int k /. float_of_int (n - 1)))
          else 1.0
        in
        coherent_gain := !coherent_gain +. w;
        (x -. mean) *. w)
      xs
  in
  let spec = Fft.rdft windowed in
  let half = n / 2 in
  let dt = (t1 -. t0) /. float_of_int (n - 1) in
  let df = 1.0 /. (float_of_int n *. dt) in
  let norm = 2.0 /. !coherent_gain in
  {
    freqs = Array.init half (fun k -> float_of_int k *. df);
    mags = Array.init half (fun k -> norm *. Numerics.Cx.abs spec.(k));
  }

let compute_many ?hann signals =
  Numerics.Pool.parallel_map_array ~chunk:1 (fun s -> compute ?hann s) signals

let dominant t =
  let n = Array.length t.mags in
  let best = ref 1 in
  for k = 2 to n - 1 do
    if t.mags.(k) > t.mags.(!best) then best := k
  done;
  let k = !best in
  if k > 0 && k < n - 1 then begin
    (* parabolic interpolation of the log-magnitude around the peak *)
    let la = log (Float.max t.mags.(k - 1) 1e-300) in
    let lb = log (Float.max t.mags.(k) 1e-300) in
    let lc = log (Float.max t.mags.(k + 1) 1e-300) in
    let denom = la -. (2.0 *. lb) +. lc in
    let delta = if Float.abs denom < 1e-300 then 0.0 else 0.5 *. (la -. lc) /. denom in
    let df = t.freqs.(1) -. t.freqs.(0) in
    (t.freqs.(k) +. (delta *. df), t.mags.(k))
  end
  else (t.freqs.(k), t.mags.(k))

let magnitude_at t f =
  let n = Array.length t.freqs in
  if f <= t.freqs.(0) then t.mags.(0)
  else if f >= t.freqs.(n - 1) then t.mags.(n - 1)
  else begin
    let df = t.freqs.(1) -. t.freqs.(0) in
    let k = int_of_float (f /. df) in
    let k = min (n - 2) (max 0 k) in
    let frac = (f -. t.freqs.(k)) /. df in
    t.mags.(k) +. (frac *. (t.mags.(k + 1) -. t.mags.(k)))
  end
