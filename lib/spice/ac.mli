(** Small-signal AC analysis: linearize every nonlinear device at the DC
    operating point and solve the complex MNA system over a frequency
    list. Used to cross-check the analytic RLC tank transfer function. *)

type t = {
  freqs : float array;
  compiled : Mna.compiled;
  solutions : Numerics.Cx.t array array;
      (** [solutions.(k)] is the unknown vector at [freqs.(k)] *)
}

val run :
  ?newton:Newton.options -> ?check:Preflight.mode -> circuit:Circuit.t ->
  source:string -> freqs:float array -> unit -> t
(** Drives the named independent source with a unit AC amplitude (V or A
    according to its kind), all other independent sources quiesced, and
    solves at each frequency. The circuit first passes the {!Preflight}
    gate ([?check], default [`Enforce]). *)

val voltage : t -> string -> Numerics.Cx.t array
(** Complex node voltage across the sweep. *)

val transfer : t -> string -> Numerics.Cx.t array
(** Same as {!voltage} (the drive has unit amplitude and zero phase). *)
