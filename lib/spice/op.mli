(** DC operating-point analysis. *)

type t = {
  compiled : Mna.compiled;
  x : float array;  (** converged solution: node voltages then branch currents *)
}

val run :
  ?newton:Newton.options -> ?check:Preflight.mode -> ?x0:float array ->
  Circuit.t -> t
(** Finds the DC operating point. The circuit first passes the
    {!Preflight} gate ([?check], default [`Enforce]), which raises
    [Check.Diagnostic.Failed] on structural errors. Solve strategy is a
    {!Resilience.Policy} ladder: plain Newton with a small [gmin]; on
    failure, gmin stepping ([1e-2] down to [1e-12] in decades); on
    failure, source stepping (ramping all independent sources from 10%%
    to 100%%); on failure, heavily damped Newton with an extended
    iteration budget. Each rung taken bumps a
    [resilience.op.rung.<name>] counter. Raises
    {!Resilience.Oshil_error.Error} ([solver-divergence], subsystem
    [spice], phase ["op"]) when every rung fails. *)

val voltage : t -> string -> float
(** Node voltage; raises [Not_found] on unknown node names. *)

val current : t -> string -> float
(** Branch current of a voltage source or inductor. *)

val pp : Format.formatter -> t -> unit
