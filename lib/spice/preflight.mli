(** Static pre-flight analysis of a circuit, run by {!Op.run},
    {!Transient.run} and {!Ac.run} before any matrix is assembled.

    The structural rules live in [Check.Netlist]; this module only
    translates a {!Circuit.t} into the engine-independent device view
    and applies the gate policy. *)

val view : Circuit.t -> Check.Netlist.device list
val check : Circuit.t -> Check.Diagnostic.t list

type mode = Check.Diagnostic.gate_mode

val gate : ?mode:mode -> Circuit.t -> unit
(** [`Enforce] (default) raises [Check.Diagnostic.Failed] when the report
    contains errors and logs warnings on the [oshil.preflight] log
    source; [`Warn] logs everything and proceeds; [`Off] skips the
    analysis entirely (used internally for derived circuits that were
    already vetted). *)
