(** Damped Newton–Raphson on assembled MNA systems. *)

type options = {
  max_iter : int;  (** default 250 *)
  vtol_abs : float;  (** absolute step tolerance, default 1e-9 *)
  vtol_rel : float;  (** relative step tolerance, default 1e-6 *)
  res_tol : float;  (** residual (current) tolerance, default 1e-9 *)
  step_limit : float;  (** per-unknown update clamp, default 2.0 (V/A) *)
}

val defaults : options

type outcome = Converged of { iterations : int } | Diverged of string

val solve :
  ?options:options -> ?clamp_upto:int -> ?ectx:Obs.Event.solve_ctx ->
  size:int ->
  assemble:(x:float array -> jac:Numerics.Linalg.mat -> res:float array -> unit) ->
  x0:float array -> unit -> float array * outcome
(** [solve ~size ~assemble ~x0 ()] iterates from [x0]; clamps each update
    of the first [clamp_upto] unknowns (default all; pass the node count
    so branch currents stay unclamped — they are linear and may
    legitimately move by enormous amounts) componentwise to [step_limit]
    (crucial for exponential junctions) and returns the final iterate
    together with the outcome. The input [x0] is not modified.

    When [ectx] names the solve and the introspection event stream is
    on, every iteration emits a [Newton_iter] record (residual norm
    entering the update, applied step norm, clamp damping factor) and
    the solve ends with a [Newton_done] — pure observation, no effect
    on the iteration itself. *)
