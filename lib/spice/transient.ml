type probe = Node of string | Diff of string * string | Branch of string

type step_control =
  | Fixed
  | Adaptive of { lte_tol : float; dt_min : float; dt_max : float }

type options = {
  dt : float;
  t_stop : float;
  t_start : float;
  integ : Mna.integ;
  use_ic : bool;
  record_stride : int;
  newton : Newton.options;
  gmin : float;
  step_control : step_control;
  budget : Resilience.Policy.budget;
}

let default_options ~dt ~t_stop =
  {
    dt;
    t_stop;
    t_start = 0.0;
    integ = Mna.Trap;
    use_ic = false;
    record_stride = 1;
    newton = Newton.defaults;
    gmin = 1e-12;
    step_control = Fixed;
    budget = Resilience.Policy.default_budget;
  }

let adaptive ?(lte_tol = 1e-4) opts =
  {
    opts with
    step_control =
      Adaptive { lte_tol; dt_min = opts.dt /. 1000.0; dt_max = 10.0 *. opts.dt };
  }

type result = {
  times : float array;
  signals : (probe * float array) list;
  failure : Resilience.Oshil_error.t option;
      (** [Some e] when integration stopped early; the waveform holds
          everything accumulated up to the fatal step *)
}

(* Internal unwind from deep inside the stepping loops; never escapes
   [run_gated]. *)
exception Fatal of Resilience.Oshil_error.t

let probe_reader compiled probe =
  match probe with
  | Node n ->
    let i = Mna.node_index compiled n in
    fun (x : float array) -> if i < 0 then 0.0 else x.(i)
  | Diff (a, b) ->
    let ia = Mna.node_index compiled a and ib = Mna.node_index compiled b in
    fun x ->
      (if ia < 0 then 0.0 else x.(ia)) -. if ib < 0 then 0.0 else x.(ib)
  | Branch name ->
    let i = Mna.branch_index compiled name in
    fun x -> x.(i)

let () =
  Obs.Metrics.register_histogram ~name:"spice.transient.lte"
    ~buckets:[| 1e-8; 1e-6; 1e-4; 1e-2; 1.0 |]

let run_gated ~check circuit ~probes opts =
  Preflight.gate ~mode:check circuit;
  let compiled = Mna.compile circuit in
  let size = Mna.size compiled in
  (* initial solution; with use_ic, solve a DC problem where IC'd
     capacitors become voltage sources and IC'd inductors current
     sources, then map the node voltages back by name *)
  let x0 =
    if opts.use_ic then begin
      let ic_circuit =
        Circuit.of_devices
          (List.map
             (fun (d : Device.t) ->
               match d with
               | Capacitor { name; n1; n2; ic; _ } ->
                 (* UIC: unspecified initial conditions are zero *)
                 let v = Option.value ic ~default:0.0 in
                 Device.Vsource { name; np = n1; nn = n2; wave = Wave.Dc v }
               | Inductor { name; n1; n2; ic; _ } ->
                 let i = Option.value ic ~default:0.0 in
                 Device.Isource { name; np = n1; nn = n2; wave = Wave.Dc i }
               | d -> d)
             (Circuit.devices circuit))
      in
      (* the IC transform rewrites capacitors into voltage sources, which
         can legitimately form source loops; it was vetted above *)
      let op = Op.run ~check:`Off ic_circuit in
      let x = Array.make size 0.0 in
      List.iter
        (fun (d : Device.t) ->
          List.iter
            (fun n ->
              if not (Circuit.is_ground n) then begin
                let i = Mna.node_index compiled n in
                if i >= 0 then x.(i) <- Op.voltage op n
              end)
            (Device.nodes d))
        (Circuit.devices circuit);
      (* branch currents: inductors take their IC (or the solved DC
         current); voltage sources take the solved branch current *)
      List.iter
        (fun (d : Device.t) ->
          match d with
          | Inductor { name; ic; _ } ->
            let br = Mna.branch_index compiled name in
            x.(br) <- Option.value ic ~default:0.0
          | Vsource { name; _ } ->
            let br = Mna.branch_index compiled name in
            x.(br) <- (try Op.current op name with Not_found -> 0.0)
          | Resistor _ | Capacitor _ | Isource _ | Diode _ | Bjt _
          | Tunnel_diode _ | Mosfet _ | Nonlinear_cs _ -> ())
        (Circuit.devices circuit);
      x
    end
    else begin
      let op = Op.run ~check:`Off circuit in
      op.Op.x
    end
  in
  let state = ref (Mna.init_state compiled ~use_ic:opts.use_ic ~x:x0) in
  let readers = List.map (fun p -> (p, probe_reader compiled p)) probes in
  let times = ref [] in
  let buffers = List.map (fun p -> (p, ref [])) probes in
  let record t x =
    times := t :: !times;
    List.iter2
      (fun (_, reader) (_, buf) -> buf := reader x :: !buf)
      readers buffers
  in
  let x = ref (Array.copy x0) in
  if opts.t_start <= 0.0 then record 0.0 !x;
  let tracker =
    Resilience.Policy.track_steps ~budget:opts.budget ~subsystem:Spice
      ~phase:"transient" ()
  in
  let note_rejection ~t =
    match
      Resilience.Policy.note_rejection
        ~context:[ ("t", Printf.sprintf "%.6e" t) ]
        tracker
    with
    | Ok () -> ()
    (* dsa: allow raise-escape — Fatal is internal control flow: the integration loop catches it and surfaces [result.failure] *)
    | Error e -> raise (Fatal e)
  in
  let check_deadline ~t =
    if Resilience.Deadline.expired () then
      (* dsa: allow raise-escape — Fatal is internal control flow: the integration loop catches it and surfaces [result.failure] *)
      raise
        (Fatal
           (Resilience.Oshil_error.make Spice ~phase:"transient"
              Budget_exhausted "wall-clock deadline exceeded mid-integration"
              ~context:[ ("t", Printf.sprintf "%.6e" t) ]
              ~remedy:
                "raise the request deadline, shorten t_stop or coarsen dt"))
  in
  (* one Newton step of the implicit method: returns Ok x' or Error msg *)
  let solve_step ~t ~h ~integ ~state x_guess =
    if Resilience.Fault.fire "tran-reject" then
      Error "injected fault (tran-reject)"
    else begin
      let assemble ~x ~jac ~res =
        Mna.assemble compiled
          ~mode:(Mna.Tran { t; h; integ; state; gmin = opts.gmin })
          ~x ~jac ~res
      in
      let ectx =
        if Obs.Event.enabled () then
          Some (Obs.Event.ctx ~rung:(Printf.sprintf "h=%g" h) "spice.transient")
        else None
      in
      let x', outcome =
        Newton.solve ~options:opts.newton ?ectx
          ~clamp_upto:(Mna.n_nodes compiled) ~size ~assemble ~x0:x_guess ()
      in
      match outcome with
      | Newton.Converged _ -> Ok x'
      | Newton.Diverged msg -> Error msg
    end
  in
  (* advance from t by h, subdividing on failure *)
  let rec advance ~t ~h ~integ ~depth =
    match solve_step ~t:(t +. h) ~h ~integ ~state:!state !x with
    | Ok x' ->
      state := Mna.update_state compiled ~integ ~h ~prev:!state ~x:x';
      x := x'
    | Error msg ->
      if Obs.Event.enabled () then
        Obs.Event.emit
          (Obs.Event.Tran_step
             { t = t +. h; dt = h; accepted = false; lte = Float.nan });
      note_rejection ~t:(t +. h);
      if depth >= 8 then
        (* dsa: allow raise-escape — Fatal is internal control flow: the integration loop catches it and surfaces [result.failure] *)
        raise
          (Fatal
             (Resilience.Oshil_error.make Spice ~phase:"transient" Step_failure
                ("step failed beyond subdivision limit: " ^ msg)
                ~context:
                  [
                    ("t", Printf.sprintf "%.6e" (t +. h));
                    ("h", Printf.sprintf "%.6e" h);
                    ("depth", string_of_int depth);
                  ]
                ~remedy:"reduce dt, loosen Newton tolerances or fix the model"))
      else begin
        Obs.Metrics.incr "spice.transient.step_subdivisions";
        Obs.Metrics.incr "resilience.transient.step_halvings";
        let h2 = h /. 2.0 in
        advance ~t ~h:h2 ~integ ~depth:(depth + 1);
        advance ~t:(t +. h2) ~h:h2 ~integ ~depth:(depth + 1)
      end
  in
  let stride = max 1 opts.record_stride in
  let failure = ref None in
  (try
     match opts.step_control with
  | Fixed ->
    let n_steps = int_of_float (Float.ceil ((opts.t_stop /. opts.dt) -. 1e-9)) in
    for k = 0 to n_steps - 1 do
      let t = float_of_int k *. opts.dt in
      check_deadline ~t;
      let h = Float.min opts.dt (opts.t_stop -. t) in
      (* bootstrap the trapezoidal state with one BE step *)
      let integ = if k = 0 then Mna.Backward_euler else opts.integ in
      advance ~t ~h ~integ ~depth:0;
      let t' = t +. h in
      if t' >= opts.t_start -. 1e-15 && (k + 1) mod stride = 0 then record t' !x
    done;
    Obs.Metrics.incr ~by:n_steps "spice.transient.steps_accepted"
  | Adaptive { lte_tol; dt_min; dt_max } ->
    (* step doubling: compare one h-step against two h/2-steps; the
       trapezoidal rule is 2nd order, so err ~ |x_h - x_h/2| / 3 *)
    let t = ref 0.0 and h = ref opts.dt and k = ref 0 in
    (* tiny BE bootstrap step: backward Euler is only first order, so keep
       its contribution to the global error negligible *)
    let h0 = Float.min (!h /. 64.0) (opts.t_stop -. !t) in
    advance ~t:!t ~h:h0 ~integ:Mna.Backward_euler ~depth:0;
    t := !t +. h0;
    if !t >= opts.t_start -. 1e-15 then record !t !x;
    while !t < opts.t_stop -. 1e-15 *. Float.max 1.0 opts.t_stop do
      check_deadline ~t:!t;
      let hs = Float.min !h (opts.t_stop -. !t) in
      let x_save = Array.copy !x and state_save = !state in
      (* full step *)
      advance ~t:!t ~h:hs ~integ:opts.integ ~depth:0;
      let x_full = Array.copy !x in
      (* two half steps from the saved state *)
      x := x_save;
      state := state_save;
      advance ~t:!t ~h:(hs /. 2.0) ~integ:opts.integ ~depth:0;
      advance ~t:(!t +. (hs /. 2.0)) ~h:(hs /. 2.0) ~integ:opts.integ ~depth:0;
      let err = ref 0.0 in
      Array.iteri
        (fun i v ->
          let scale = 1e-6 +. Float.max (Float.abs v) (Float.abs x_full.(i)) in
          err := Float.max !err (Float.abs (v -. x_full.(i)) /. (3.0 *. scale)))
        !x;
      Obs.Metrics.observe "spice.transient.lte" !err;
      let accepted = !err <= lte_tol || hs <= dt_min *. 1.000001 in
      if Obs.Event.enabled () then
        Obs.Event.emit
          (Obs.Event.Tran_step { t = !t; dt = hs; accepted; lte = !err });
      if accepted then begin
        (* accept the (more accurate) half-step result *)
        Obs.Metrics.incr "spice.transient.steps_accepted";
        t := !t +. hs;
        incr k;
        if !t >= opts.t_start -. 1e-15 && !k mod stride = 0 then record !t !x;
        let grow = 0.9 *. sqrt (lte_tol /. Float.max !err 1e-30) in
        h := Float.min dt_max (Float.max dt_min (hs *. Float.min 2.0 grow))
      end
      else begin
        (* reject: restore and retry smaller *)
        Obs.Metrics.incr "spice.transient.steps_rejected";
        note_rejection ~t:!t;
        x := x_save;
        state := state_save;
        h := Float.max dt_min (hs /. 2.0)
      end
    done
   with Fatal e ->
     (* degrade: keep the waveform accumulated so far (fail-fast mode
        turns the hole back into an exception) *)
     if Resilience.Policy.fail_fast () then
       raise (Resilience.Oshil_error.Error e);
     Obs.Metrics.incr "resilience.transient.degraded";
     failure := Some e);
  {
    times = Array.of_list (List.rev !times);
    signals =
      List.map (fun (p, buf) -> (p, Array.of_list (List.rev !buf))) buffers;
    failure = !failure;
  }

(* Everything the integrator reads is pure data once behavioural
   sources are excluded, so the circuit (device list, insertion order
   preserved), the probe list and the full option record are canonically
   encoded by [Marshal] and folded into the key as digests. Bump the
   version whenever the stepping algorithm or the result layout
   changes. *)
let cache_key ~check circuit ~probes opts =
  let open Cache.Key in
  v ~kind:"spice.transient" ~version:1
    [
      str "circuit"
        (digest_of_string (Marshal.to_string (Circuit.devices circuit) []));
      str "probes" (digest_of_string (Marshal.to_string probes []));
      str "opts" (digest_of_string (Marshal.to_string opts []));
      str "check"
        (match check with `Enforce -> "enforce" | `Warn -> "warn"
        | `Off -> "off");
    ]

let cacheable circuit =
  not
    (List.exists
       (function Device.Nonlinear_cs _ -> true | _ -> false)
       (Circuit.devices circuit))

let run ?(check = `Enforce) circuit ~probes opts =
  if opts.dt <= 0.0 || opts.t_stop <= 0.0 then
    invalid_arg "Transient.run: dt and t_stop must be positive";
  Obs.Span.with_ ~cat:"spice" ~name:"spice.transient.run"
    ~attrs:
      [
        ("t_stop", Printf.sprintf "%g" opts.t_stop);
        ("dt", Printf.sprintf "%g" opts.dt);
      ]
  @@ fun () ->
  if not (Cache.Store.enabled () && cacheable circuit) then
    run_gated ~check circuit ~probes opts
  else
    let key = cache_key ~check circuit ~probes opts in
    (* only complete runs are stored: a waveform truncated by a solver
       failure is a degraded artifact, not a reusable result *)
    (Cache.Store.find_or_compute ~key
       ~cache_if:(fun r -> Option.is_none r.failure)
       ~encode:Cache.Store.to_marshal ~decode:Cache.Store.of_marshal
       (fun () -> run_gated ~check circuit ~probes opts)
      : result)

let signal r probe = List.assoc probe r.signals
