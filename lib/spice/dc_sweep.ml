type point = { value : float; x : float array }
type t = { compiled : Mna.compiled; points : point array }

let with_source_value circuit ~source v =
  match Circuit.find circuit source with
  | Some (Device.Vsource s) ->
    Circuit.replace circuit source (Device.Vsource { s with wave = Wave.Dc v })
  | Some (Device.Isource s) ->
    Circuit.replace circuit source (Device.Isource { s with wave = Wave.Dc v })
  | Some _ -> invalid_arg "Dc_sweep: source is not an independent V/I source"
  | None -> invalid_arg (Printf.sprintf "Dc_sweep: no device named %S" source)

let run ?newton ?(check = `Enforce) ~circuit ~source ~start ~stop ~steps () =
  if steps < 1 then invalid_arg "Dc_sweep: steps must be >= 1";
  (* gate once: the per-point circuits only differ in a source value *)
  Preflight.gate ~mode:check circuit;
  let compiled = Mna.compile circuit in
  let prev_x = ref None in
  let vs = Numerics.Kernel.linspace start stop (steps + 1) in
  let points =
    Array.init (steps + 1) (fun k ->
        let v = vs.(k) in
        let c = with_source_value circuit ~source v in
        let op = Op.run ?newton ~check:`Off ?x0:!prev_x c in
        prev_x := Some op.Op.x;
        { value = v; x = op.Op.x })
  in
  { compiled; points }

let voltages t node =
  Array.map (fun p -> Mna.node_voltage t.compiled p.x node) t.points

let source_values t = Array.map (fun p -> p.value) t.points

let branch_currents t name =
  let idx = Mna.branch_index t.compiled name in
  Array.map (fun p -> p.x.(idx)) t.points
