(* Static pre-flight gate in front of the analysis entry points: a
   structurally bad circuit (floating island, V-source loop, zero-valued
   L/C, rank-deficient zero pattern) is rejected here with located
   diagnostics instead of surfacing as an opaque Newton divergence deep
   inside Op/Transient/Ac. *)

let src = Logs.Src.create "oshil.preflight" ~doc:"netlist pre-flight checks"

module Log = (val Logs.src_log src : Logs.LOG)

let view_device (d : Device.t) : Check.Netlist.device =
  match d with
  | Resistor { name; n1; n2; r } -> Check.Netlist.resistor ~name ~n1 ~n2 r
  | Capacitor { name; n1; n2; c; _ } -> Check.Netlist.capacitor ~name ~n1 ~n2 c
  | Inductor { name; n1; n2; l; _ } -> Check.Netlist.inductor ~name ~n1 ~n2 l
  | Vsource { name; np; nn; _ } -> Check.Netlist.vsource ~name ~np ~nn
  | Isource { name; np; nn; _ } -> Check.Netlist.isource ~name ~np ~nn
  | Diode { name; np; nn; _ }
  | Tunnel_diode { name; np; nn; _ }
  | Nonlinear_cs { name; np; nn; _ } ->
    Check.Netlist.two_terminal ~name ~np ~nn
  | Bjt { name; nc; nb; ne; _ } ->
    (* Ebers-Moll stamps couple all three junction-voltage pairs *)
    Check.Netlist.multi_terminal ~name ~nodes:[ nc; nb; ne ]
      ~conduction:[ (nc, nb); (nb, ne); (nc, ne) ]
      ~control:[]
  | Mosfet { name; nd; ng; ns; _ } ->
    (* the channel conducts drain-source; the gate draws no current but
       its voltage enters the drain/source KCL rows through gm *)
    Check.Netlist.multi_terminal ~name ~nodes:[ nd; ng; ns ]
      ~conduction:[ (nd, ns) ]
      ~control:[ (nd, ng); (ns, ng) ]

let view circuit = List.map view_device (Circuit.devices circuit)
let check circuit = Check.Netlist.check (view circuit)

type mode = Check.Diagnostic.gate_mode

let emit (d : Check.Diagnostic.t) =
  match d.severity with
  | Check.Diagnostic.Error | Check.Diagnostic.Warning ->
    Log.warn (fun m -> m "%a" Check.Diagnostic.pp d)
  | Check.Diagnostic.Info -> Log.info (fun m -> m "%a" Check.Diagnostic.pp d)

let gate ?(mode = `Enforce) circuit =
  match mode with
  | `Off -> ()
  | (`Enforce | `Warn) as mode ->
    Check.Diagnostic.gate ~mode ~emit (check circuit)
