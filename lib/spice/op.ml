type t = { compiled : Mna.compiled; x : float array }

module Policy = Resilience.Policy

let attempt ?newton ?(rung = "direct") compiled ~gmin ~source_scale ~x0 =
  let size = Mna.size compiled in
  let assemble ~x ~jac ~res =
    Mna.assemble compiled ~mode:(Mna.Dc { gmin; source_scale }) ~x ~jac ~res
  in
  (* the rung label lets a report attribute convergence behaviour to
     the recovery ladder step (gmin/source value) that produced it *)
  let ectx =
    if Obs.Event.enabled () then
      Some
        (Obs.Event.ctx
           ~rung:(Printf.sprintf "%s,gmin=%g,src=%g" rung gmin source_scale)
           "spice.op")
    else None
  in
  let x, outcome =
    Newton.solve ?options:newton ?ectx ~clamp_upto:(Mna.n_nodes compiled) ~size
      ~assemble ~x0 ()
  in
  match outcome with
  | Newton.Converged _ -> Ok x
  | Newton.Diverged msg -> Error msg

let run ?newton ?(check = `Enforce) ?x0 circuit =
  Preflight.gate ~mode:check circuit;
  Obs.Span.with_ ~cat:"spice" ~name:"spice.op.run" @@ fun () ->
  let compiled = Mna.compile circuit in
  let size = Mna.size compiled in
  let x0 = match x0 with Some x -> x | None -> Array.make size 0.0 in
  let direct () =
    attempt ?newton ~rung:"direct" compiled ~gmin:1e-12 ~source_scale:1.0 ~x0
  in
  (* gmin stepping: solve with a heavy leak, then relax it *)
  let gmin_stepping () =
    let rec gmin_steps x = function
      | [] -> Ok x
      | g :: rest -> begin
        match
          attempt ?newton ~rung:"gmin-stepping" compiled ~gmin:g
            ~source_scale:1.0 ~x0:x
        with
        | Ok x' -> gmin_steps x' rest
        | Error e -> Error e
      end
    in
    let gmins = [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-8; 1e-10; 1e-12 ] in
    gmin_steps (Array.make size 0.0) gmins
  in
  (* source stepping with a mild gmin, then a polish without it *)
  let source_stepping () =
    let rec src_steps x = function
      | [] -> Ok x
      | s :: rest -> begin
        match
          attempt ?newton ~rung:"source-stepping" compiled ~gmin:1e-9
            ~source_scale:s ~x0:x
        with
        | Ok x' -> src_steps x' rest
        | Error e -> Error e
      end
    in
    let scales = [ 0.1; 0.2; 0.4; 0.6; 0.8; 0.9; 1.0 ] in
    match src_steps (Array.make size 0.0) scales with
    | Ok x -> begin
      match
        attempt ?newton ~rung:"source-stepping" compiled ~gmin:1e-12
          ~source_scale:1.0 ~x0:x
      with
      | Ok x' -> Ok x'
      | Error _ -> Ok x
    end
    | Error e -> Error e
  in
  (* last resort: heavily damped Newton with an extended iteration
     budget — tiny steps crawl down narrow basins of attraction *)
  let damped_newton () =
    let base = match newton with Some o -> o | None -> Newton.defaults in
    let damped =
      {
        base with
        Newton.step_limit = base.Newton.step_limit /. 8.0;
        max_iter = base.Newton.max_iter * 4;
      }
    in
    attempt ~newton:damped ~rung:"damped-newton" compiled ~gmin:1e-9
      ~source_scale:1.0 ~x0:(Array.make size 0.0)
  in
  match
    Policy.escalate ~subsystem:Spice ~phase:"op"
      [
        Policy.rung "direct" direct;
        Policy.rung "gmin-stepping" gmin_stepping;
        Policy.rung "source-stepping" source_stepping;
        Policy.rung "damped-newton" damped_newton;
      ]
  with
  | Ok x -> { compiled; x }
  | Error e -> raise (Resilience.Oshil_error.Error e)

let voltage t name = Mna.node_voltage t.compiled t.x name
let current t name = t.x.(Mna.branch_index t.compiled name)

let pp ppf t =
  Format.fprintf ppf "@[<v>operating point (%d unknowns):@,%a@]"
    (Array.length t.x)
    (Format.pp_print_array ~pp_sep:Format.pp_print_space (fun ppf v ->
         Format.fprintf ppf "%.6g" v))
    t.x
