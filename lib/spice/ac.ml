module Cx = Numerics.Cx
module Linalg = Numerics.Linalg

type t = {
  freqs : float array;
  compiled : Mna.compiled;
  solutions : Cx.t array array;
}

let run ?newton ?(check = `Enforce) ~circuit ~source ~freqs () =
  Preflight.gate ~mode:check circuit;
  let op = Op.run ?newton ~check:`Off circuit in
  let compiled = op.Op.compiled in
  let size = Mna.size compiled in
  let idx n = if Circuit.is_ground n then -1 else Mna.node_index compiled n in
  let v_op n = Mna.node_voltage compiled op.Op.x n in
  let solve_at freq =
    let w = 2.0 *. Float.pi *. freq in
    let a = Array.init size (fun _ -> Array.make size Cx.zero) in
    let b = Array.make size Cx.zero in
    let add_a r c v =
      if r >= 0 && c >= 0 then a.(r).(c) <- Cx.add a.(r).(c) v
    in
    let add_b r v = if r >= 0 then b.(r) <- Cx.add b.(r) v in
    let stamp_g i1 i2 g =
      let gz = Cx.of_float g in
      add_a i1 i1 gz;
      add_a i1 i2 (Cx.neg gz);
      add_a i2 i1 (Cx.neg gz);
      add_a i2 i2 gz
    in
    let stamp_y i1 i2 y =
      add_a i1 i1 y;
      add_a i1 i2 (Cx.neg y);
      add_a i2 i1 (Cx.neg y);
      add_a i2 i2 y
    in
    List.iter
      (fun (d : Device.t) ->
        match d with
        | Resistor { n1; n2; r; _ } -> stamp_g (idx n1) (idx n2) (1.0 /. r)
        | Capacitor { n1; n2; c; _ } ->
          stamp_y (idx n1) (idx n2) (Cx.make 0.0 (w *. c))
        | Inductor { name; n1; n2; l; _ } ->
          let br = Mna.branch_index compiled name in
          let i1 = idx n1 and i2 = idx n2 in
          add_a i1 br Cx.one;
          add_a i2 br (Cx.neg Cx.one);
          add_a br i1 Cx.one;
          add_a br i2 (Cx.neg Cx.one);
          a.(br).(br) <- Cx.sub a.(br).(br) (Cx.make 0.0 (w *. l))
        | Vsource { name; np; nn; _ } ->
          let br = Mna.branch_index compiled name in
          let ip = idx np and inn = idx nn in
          add_a ip br Cx.one;
          add_a inn br (Cx.neg Cx.one);
          add_a br ip Cx.one;
          add_a br inn (Cx.neg Cx.one);
          if name = source then b.(br) <- Cx.one
        | Isource { name; np; nn; _ } ->
          (* unit AC current np -> nn when driven: drawn out of np *)
          if name = source then begin
            add_b (idx np) (Cx.neg Cx.one);
            add_b (idx nn) Cx.one
          end
        | Diode { np; nn; p; _ } ->
          let v = v_op np -. v_op nn in
          let _, g = Device.diode_iv p v in
          stamp_g (idx np) (idx nn) g
        | Tunnel_diode { np; nn; p; _ } ->
          let v = v_op np -. v_op nn in
          let _, g = Device.tunnel_iv p v in
          stamp_g (idx np) (idx nn) g
        | Nonlinear_cs { np; nn; f; df; _ } ->
          let v = v_op np -. v_op nn in
          let g =
            match df with
            | Some df -> df v
            | None ->
              let h = 1e-6 *. (1.0 +. Float.abs v) in
              (f (v +. h) -. f (v -. h)) /. (2.0 *. h)
          in
          stamp_g (idx np) (idx nn) g
        | Mosfet { nd; ng; ns; p; _ } ->
          let vg = v_op ng and vd = v_op nd and vs = v_op ns in
          let lin = Device.mos_iv p ~vgs:(vg -. vs) ~vds:(vd -. vs) in
          let d = idx nd and g = idx ng and s = idx ns in
          List.iter
            (fun (r, c, gv) -> add_a r c (Cx.of_float gv))
            [
              (d, g, lin.gm); (d, d, lin.gds); (d, s, -.(lin.gm +. lin.gds));
              (s, g, -.lin.gm); (s, d, -.lin.gds); (s, s, lin.gm +. lin.gds);
            ]
        | Bjt { nc; nb; ne; p; _ } ->
          let vb = v_op nb and vc = v_op nc and ve = v_op ne in
          let lin = Device.bjt_iv p ~vbe:(vb -. ve) ~vbc:(vb -. vc) in
          let ic_ = idx nc and ib_ = idx nb and ie_ = idx ne in
          let dic_dvb = lin.dic_dvbe +. lin.dic_dvbc in
          let dic_dvc = -.lin.dic_dvbc in
          let dic_dve = -.lin.dic_dvbe in
          let dib_dvb = lin.dib_dvbe +. lin.dib_dvbc in
          let dib_dvc = -.lin.dib_dvbc in
          let dib_dve = -.lin.dib_dvbe in
          let entries =
            [
              (ic_, ib_, dic_dvb); (ic_, ic_, dic_dvc); (ic_, ie_, dic_dve);
              (ib_, ib_, dib_dvb); (ib_, ic_, dib_dvc); (ib_, ie_, dib_dve);
              (ie_, ib_, -.(dic_dvb +. dib_dvb));
              (ie_, ic_, -.(dic_dvc +. dib_dvc));
              (ie_, ie_, -.(dic_dve +. dib_dve));
            ]
          in
          List.iter (fun (r, c, g) -> add_a r c (Cx.of_float g)) entries)
      (Circuit.devices circuit);
    (* small leak keeps floating nodes regular, mirroring the DC gmin *)
    for k = 0 to Mna.n_nodes compiled - 1 do
      a.(k).(k) <- Cx.add a.(k).(k) (Cx.of_float 1e-12)
    done;
    Linalg.solve_complex a b
  in
  { freqs; compiled; solutions = Array.map solve_at freqs }

let voltage t node =
  let i = Mna.node_index t.compiled node in
  Array.map (fun x -> if i < 0 then Cx.zero else x.(i)) t.solutions

let transfer = voltage
