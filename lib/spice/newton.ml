module Linalg = Numerics.Linalg

type options = {
  max_iter : int;
  vtol_abs : float;
  vtol_rel : float;
  res_tol : float;
  step_limit : float;
}

let defaults =
  { max_iter = 250; vtol_abs = 1e-9; vtol_rel = 1e-6; res_tol = 1e-9;
    step_limit = 2.0 }

type outcome = Converged of { iterations : int } | Diverged of string

let () =
  Obs.Metrics.register_histogram ~name:"spice.newton.iters_per_solve"
    ~buckets:[| 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250. |];
  Obs.Metrics.register_histogram ~name:"spice.newton.residual"
    ~buckets:[| 1e-12; 1e-9; 1e-6; 1e-3; 1.; 1e3 |]

let solve ?(options = defaults) ?clamp_upto ?ectx ~size ~assemble ~x0 () =
  let clamp_upto = match clamp_upto with Some k -> k | None -> size in
  (* solver-health events: one atomic load when the stream is off *)
  let ectx = if Obs.Event.enabled () then ectx else None in
  (* fault sites count one occurrence per solve, so plans address the
     k-th Newton solve of a run deterministically *)
  let inject_singular = Resilience.Fault.fire "newton-singular" in
  let inject_nan = Resilience.Fault.fire "device-nan" in
  let x = Array.copy x0 in
  let jac = Linalg.create size size in
  let res = Array.make size 0.0 in
  let outcome = ref None in
  let iter = ref 0 in
  let last_res = ref infinity in
  while !outcome = None && !iter < options.max_iter do
    incr iter;
    assemble ~x ~jac ~res;
    if inject_nan then res.(0) <- Float.nan;
    let res_norm = Linalg.norm_inf res in
    last_res := res_norm;
    (match
       if inject_singular then raise Linalg.Singular else Linalg.lu_factor jac
     with
    | exception Linalg.Singular ->
      (match ectx with
      | Some ctx ->
        Obs.Event.emit
          (Obs.Event.Newton_iter
             { ctx; iter = !iter; residual = res_norm; step = Float.nan;
               damping = 1.0 })
      | None -> ());
      outcome := Some (Diverged "singular Jacobian")
    | f ->
      let dx = Linalg.lu_solve f res in
      (* clamp the per-component update: junction exponentials explode
         without it *)
      let raw_norm =
        match ectx with Some _ -> Linalg.norm_inf dx | None -> 0.0
      in
      let clamped = ref false in
      Array.iteri
        (fun k d ->
          if k < clamp_upto && Float.abs d > options.step_limit then begin
            dx.(k) <- Float.copy_sign options.step_limit d;
            clamped := true
          end)
        dx;
      let dx_norm = Linalg.norm_inf dx in
      (match ectx with
      | Some ctx ->
        Obs.Event.emit
          (Obs.Event.Newton_iter
             {
               ctx;
               iter = !iter;
               residual = res_norm;
               step = dx_norm;
               damping = (if !clamped && raw_norm > 0.0 then dx_norm /. raw_norm else 1.0);
             })
      | None -> ());
      Array.iteri (fun k d -> x.(k) <- x.(k) -. d) dx;
      if Array.exists (fun v -> not (Float.is_finite v)) x then
        outcome := Some (Diverged "non-finite iterate")
      else begin
        let x_norm = Linalg.norm_inf x in
        if
          (not !clamped)
          && dx_norm <= options.vtol_abs +. (options.vtol_rel *. x_norm)
          && res_norm <= options.res_tol *. 10.0
          (* the residual was evaluated before the step; accept when the
             last step is negligible and the entering residual small *)
        then outcome := Some (Converged { iterations = !iter })
      end)
  done;
  let out =
    match !outcome with
    | Some o -> o
    | None -> Diverged (Printf.sprintf "no convergence in %d iterations" options.max_iter)
  in
  (match ectx with
  | Some ctx ->
    Obs.Event.emit
      (Obs.Event.Newton_done
         {
           ctx;
           iters = !iter;
           converged = (match out with Converged _ -> true | Diverged _ -> false);
           residual = !last_res;
         })
  | None -> ());
  if Obs.enabled () then begin
    Obs.Metrics.incr "spice.newton.solves";
    Obs.Metrics.incr ~by:!iter "spice.newton.iters";
    (match out with
    | Diverged _ -> Obs.Metrics.incr "spice.newton.diverged"
    | Converged _ -> ());
    Obs.Metrics.observe "spice.newton.iters_per_solve" (float_of_int !iter);
    if Float.is_finite !last_res then
      Obs.Metrics.observe "spice.newton.residual" !last_res
  end;
  (x, out)
