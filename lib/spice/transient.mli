(** Transient analysis: fixed-step trapezoidal (default) or backward-Euler
    integration with a full Newton solve per step.

    On a Newton failure at a step, the step is retried with up to 8 binary
    subdivisions before giving up. *)

type probe =
  | Node of string  (** node voltage *)
  | Diff of string * string  (** differential voltage [v a - v b] *)
  | Branch of string  (** branch current of a V source or inductor *)

type step_control =
  | Fixed  (** constant [dt] (the last step lands on [t_stop]) *)
  | Adaptive of { lte_tol : float; dt_min : float; dt_max : float }
      (** step-doubling local-truncation-error control: each step is also
          taken as two half steps; the Richardson error estimate must stay
          below [lte_tol] (relative, with a 1 uV/uA floor) or the step is
          retried at half size. [dt] becomes the initial step. *)

type options = {
  dt : float;  (** time step, s *)
  t_stop : float;
  t_start : float;  (** recording starts here (simulation always starts at 0) *)
  integ : Mna.integ;
  use_ic : bool;  (** start from device ICs instead of the DC operating point *)
  record_stride : int;  (** keep every k-th accepted step (>= 1) *)
  newton : Newton.options;
  gmin : float;
  step_control : step_control;
  budget : Resilience.Policy.budget;
      (** caps on rejected steps / wall clock; exhausting one stops
          integration with a typed [budget-exhausted] failure *)
}

val default_options : dt:float -> t_stop:float -> options
(** Trapezoidal, [t_start = 0.], OP start, stride 1, default Newton
    options, [gmin = 1e-12], [Fixed] stepping,
    {!Resilience.Policy.default_budget}. {!run} raises
    [Invalid_argument] unless [dt] and [t_stop] are positive. *)

val adaptive : ?lte_tol:float -> options -> options
(** Switches the options to adaptive stepping ([lte_tol] default 1e-4;
    [dt_min = dt / 1000], [dt_max = 10 dt]). *)

type result = {
  times : float array;
  signals : (probe * float array) list;  (** in the order requested *)
  failure : Resilience.Oshil_error.t option;
      (** [None] for a complete run; [Some e] when integration stopped
          early (step failed beyond the subdivision limit, or a budget
          was exhausted) — [times]/[signals] then hold the waveform
          accumulated up to the fatal step *)
}

val run :
  ?check:Preflight.mode -> Circuit.t -> probes:probe list -> options ->
  result
(** Runs the analysis, recording the probes on [[t_start, t_stop]]. The
    circuit first passes the {!Preflight} gate ([?check], default
    [`Enforce]), which raises [Check.Diagnostic.Failed] on structural
    errors. The very first step uses backward Euler to bootstrap the
    trapezoidal state.

    A fatal step degrades to a partial result (see {!result.failure})
    unless {!Resilience.Policy.set_fail_fast} is on, in which case it
    raises {!Resilience.Oshil_error.Error}.

    When the content-addressed cache is enabled ([Cache.Store], the
    [--cache] flag), complete runs ([failure = None]) of circuits
    without behavioural [Nonlinear_cs] devices are memoized on the full
    (circuit, probes, options, check-mode) input and replayed
    bit-identically; partial runs and closure-bearing circuits always
    recompute. *)

val signal : result -> probe -> float array
(** Raises [Not_found] when the probe was not recorded. *)
