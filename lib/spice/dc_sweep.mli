(** DC sweep of an independent source: the paper's Fig. 11b/12a flow for
    extracting the [i = f(v)] curve of a negative-resistance cell. *)

type point = {
  value : float;  (** swept source value *)
  x : float array;  (** converged solution at that value *)
}

type t = { compiled : Mna.compiled; points : point array }

val run :
  ?newton:Newton.options -> ?check:Preflight.mode -> circuit:Circuit.t ->
  source:string -> start:float -> stop:float -> steps:int -> unit -> t
(** Sweeps the named V or I source from [start] to [stop] in [steps]
    uniform increments (inclusive; [steps + 1] points), warm-starting each
    solve from the previous point. The base circuit passes the
    {!Preflight} gate once up front ([?check], default [`Enforce]).
    Raises [Invalid_argument] if [source] is not an independent source,
    {!Resilience.Oshil_error.Error} if a point fails. *)

val voltages : t -> string -> float array
(** Node voltage at each sweep point. *)

val source_values : t -> float array

val branch_currents : t -> string -> float array
(** Branch current (of a V source or inductor) at each sweep point — for a
    swept V source this is exactly the current meter reading of the
    extraction circuit. *)
