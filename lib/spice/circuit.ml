type t = { devices : Device.t list (* reversed *) }

let empty = { devices = [] }

let is_ground n =
  match String.lowercase_ascii n with "0" | "gnd" -> true | _ -> false

let add t d =
  let n = Device.name d in
  if List.exists (fun d' -> Device.name d' = n) t.devices then
    invalid_arg (Printf.sprintf "Circuit.add: duplicate device %S" n);
  { devices = d :: t.devices }

let of_devices ds = List.fold_left add empty ds
let devices t = List.rev t.devices
let find t name = List.find_opt (fun d -> Device.name d = name) t.devices

let replace t name d =
  if not (List.exists (fun d' -> Device.name d' = name) t.devices) then
    raise Not_found;
  { devices = List.map (fun d' -> if Device.name d' = name then d else d') t.devices }

let node_names t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      List.iter
        (fun n -> if not (is_ground n) then Hashtbl.replace tbl n ())
        (Device.nodes d))
    t.devices;
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let pp ppf t =
  let open Format in
  let pp_dev ppf (d : Device.t) =
    match d with
    | Resistor { name; n1; n2; r } -> fprintf ppf "R %s %s %s %g" name n1 n2 r
    | Capacitor { name; n1; n2; c; _ } -> fprintf ppf "C %s %s %s %g" name n1 n2 c
    | Inductor { name; n1; n2; l; _ } -> fprintf ppf "L %s %s %s %g" name n1 n2 l
    | Vsource { name; np; nn; _ } -> fprintf ppf "V %s %s %s" name np nn
    | Isource { name; np; nn; _ } -> fprintf ppf "I %s %s %s" name np nn
    | Diode { name; np; nn; _ } -> fprintf ppf "D %s %s %s" name np nn
    | Bjt { name; nc; nb; ne; _ } -> fprintf ppf "Q %s %s %s %s" name nc nb ne
    | Tunnel_diode { name; np; nn; _ } -> fprintf ppf "TD %s %s %s" name np nn
    | Mosfet { name; nd; ng; ns; _ } -> fprintf ppf "M %s %s %s %s" name nd ng ns
    | Nonlinear_cs { name; np; nn; _ } -> fprintf ppf "G %s %s %s" name np nn
  in
  pp_print_list ~pp_sep:pp_print_newline pp_dev ppf (devices t)
