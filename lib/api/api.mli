(** Pure request → report functions: the one implementation of every
    analysis the CLI, the batch runner and the [oshil serve] daemon
    expose. Each entry point returns the report as a [string] whose
    bytes are exactly what the corresponding CLI subcommand prints, so
    "server-path report == CLI report" holds by construction rather
    than by test discipline.

    Exception contract: the [*_text], [scenario_*], [netlist_*] and
    {!resolve_oscillator} functions propagate solver and validation
    exceptions — {!Resilience.Oshil_error.Error}, [Check.Diagnostic.Failed],
    and the kernels' legacy [failwith] / [invalid_arg] signals —
    exactly like the library calls they wrap. {!execute} and {!handle}
    catch all of these and return a typed outcome instead; they never
    raise. *)

module Json = Json
module Request = Request

(* --- oscillators ---------------------------------------------------- *)

val resolve_oscillator : Request.osc_spec -> Shil.Analysis.oscillator
(** The CLI's oscillator table: builtin cells by name, or a custom tanh
    cell with the [--g0] family's defaults. Unknown names raise a typed
    [parse-failure]. *)

(* --- report renderers (byte-identical to the CLI) ------------------- *)

val shil_run :
  osc:Shil.Analysis.oscillator ->
  n:int ->
  vi:float ->
  reduced:bool ->
  Shil.Analysis.shil_report
(** The analysis behind [oshil shil] ([`Symmetry] quadrature when
    [reduced]). Split from the rendering so callers that also need the
    structured report (the CLI's [--ascii] plots) run it once. *)

val shil_report_text : Shil.Analysis.shil_report -> finj:float option -> string
(** Render a {!shil_run} report (and, with [finj], its lock section). *)

val shil_text :
  osc:Shil.Analysis.oscillator ->
  n:int ->
  vi:float ->
  reduced:bool ->
  finj:float option ->
  string
(** {!shil_run} composed with {!shil_report_text}: the [oshil shil]
    report bytes. *)

(* --- harmonic balance ------------------------------------------------ *)

val hb_circuit : ?injection:Spice.Wave.t -> Shil.Analysis.oscillator -> Spice.Circuit.t
(** MNA realization of a resolved oscillator: parallel RLC tank with
    the behavioural nonlinearity across it on node ["t"], plus the
    injection current source when [injection] is given. The netlist
    every [oshil hb] analysis runs on. *)

val hb_ident : Shil.Analysis.oscillator -> string option
(** Canonical cache identity of {!hb_circuit}'s free-running form —
    the nonlinearity's cache key joined with the bit-exact tank
    values; [None] (uncacheable) when the nonlinearity has no key. *)

val hb_injection_wave :
  tank:Shil.Tank.t -> n:int -> vi:float -> f_inj:float -> Spice.Wave.t
(** The injected tone as a source waveform:
    [i(t) = Im cos(2 pi f_inj t)] with [Im] from
    {!Shil.Simulate.injection_current}, so HB and the reduced
    time-domain model apply the same drive. *)

type hb_outcome = {
  hb_n : int;
  hb_vi : float;
  free : Hb.Driver.solution;
  hb_mode : hb_mode_result;
}

and hb_mode_result =
  | Hb_free_only
  | Hb_locked of Hb.Driver.verdict
  | Hb_band of { band : Hb.Driver.band; df : Shil.Lock_range.t }

val hb_run :
  osc:Shil.Analysis.oscillator ->
  n:int ->
  vi:float ->
  k_max:int ->
  samples:int ->
  mode:Request.hb_mode ->
  hb_outcome
(** The analysis behind [oshil hb]: oscprobe the free-running steady
    state (seeded from the tank resonance and the describing-function
    amplitude), then per [mode] solve one injected tone or march the
    HB lock band (the DF lock range supplies the guess width and rides
    along in the report). Raises typed [no-oscillation] when the cell
    has no describing-function amplitude to seed from. *)

val hb_text : hb_outcome -> string
(** The [oshil hb] report bytes (also the daemon's [hb] report). *)

val hb_json : hb_outcome -> string
(** The [oshil hb --json] single-line report ({!jf} floats). *)

val op_text : circuit:Spice.Circuit.t -> Spice.Op.t -> string
(** [v(node) = …] lines in the circuit's node order. *)

val tran_csv : Spice.Transient.result -> string
(** The [oshil netlist --analysis tran] CSV. *)

(* --- scenarios ------------------------------------------------------ *)

val is_scenario_file : string -> bool
(** [.scn] / [.scenario], case-insensitive. *)

val jf : float -> string
(** Report-JSON float rendering: [%.17g] (round-trips every double),
    integral values as [x.0], NaN as ["nan"]. *)

type scenario_outcome =
  | Scn_ok of string  (** rendered JSON body fields of a completed run *)
  | Scn_lint_error of string  (** likewise for a lint rejection *)

val scenario_outcome : name:string -> string -> scenario_outcome
(** Lint then analyze one scenario given inline as text; [name] anchors
    diagnostics. Solver failures propagate (the batch pool and
    {!execute} both convert them to typed errors per scenario). *)

val scenario_file_outcome : string -> scenario_outcome
(** Same, reading the scenario from disk ([oshil batch]'s path). *)

val scenario_entry : file:string -> scenario_outcome -> string
(** The [{"file":…, …}] JSON entry of the batch report. *)

(* --- lint ----------------------------------------------------------- *)

val lint_file : string -> Check.Diagnostic.t list
(** Scenario or netlist pre-flight by extension, from disk. *)

val lint_text : name:string -> string -> Check.Diagnostic.t list
(** Same from inline text; netlist parse errors are located
    [basename name:line]. *)

val lint_entry : file:string -> Check.Diagnostic.t list -> string
(** The [oshil lint --json] per-file JSON entry. *)

(* --- netlists ------------------------------------------------------- *)

val netlist_of_text : name:string -> string -> Spice.Circuit.t
(** Parse an inline netlist; parse errors raise a typed
    [parse-failure] located [name:line]. *)

(* --- request execution ---------------------------------------------- *)

type outcome = (string, Resilience.Oshil_error.t) result
(** A finished request: the report text, or a typed error. *)

val parse_request : string -> (Request.t, Resilience.Oshil_error.t) result
(** Decode one wire line; malformed input becomes a typed
    [parse-failure] in the [serve] subsystem (never an exception). *)

val execute : Request.t -> outcome
(** Run the payload under the ambient deadline (if any). Total: every
    exception — typed errors, diagnostics gates, injected faults,
    programming errors — is caught and folded into the outcome, which
    is what makes one crashing request harmless to the daemon. *)

val handle : ?default_deadline_s:float -> Request.t -> outcome
(** {!execute} under the request's own [deadline_s] (or
    [default_deadline_s] when the request carries none): the whole
    payload runs inside {!Resilience.Deadline.with_deadline}, so
    overrunning work unwinds into a typed [budget-exhausted] error. *)

val health_text : unit -> string
(** The local [health] report: [{"status":"ok"}]. *)

val stats_text : unit -> string
(** The local [stats] report: run-health JSON when telemetry is on,
    [null] otherwise, with no server section ([oshil serve] overrides
    this with live queue counters). *)

val run_health_json : unit -> string
(** {!Obs.Report.to_json} of a live snapshot when telemetry is on,
    ["null"] otherwise — the [health] field of the [stats] report. *)

(* --- responses ------------------------------------------------------ *)

val error_json : Resilience.Oshil_error.t -> Json.t
(** Typed error as a JSON object: code, subsystem, phase, msg,
    context, remedy. *)

val response_of_outcome : id:string -> outcome -> string
(** The single-line wire response:
    [{"id":…,"status":"ok","report":…}] or
    [{"id":…,"status":"error","error":{…}}]. Deterministic bytes — no
    timing fields — so the server and CLI paths diff clean. *)
