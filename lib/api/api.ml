module Json = Json
module Request = Request
module Oshil_error = Resilience.Oshil_error
module Deadline = Resilience.Deadline

(* --- oscillators ---------------------------------------------------- *)

let resolve_oscillator (spec : Request.osc_spec) : Shil.Analysis.oscillator =
  match spec with
  | Custom { g0; isat; r; fc; q } ->
    let wc = 2.0 *. Float.pi *. fc in
    let z0 = r /. q in
    {
      nl = Shil.Nonlinearity.neg_tanh ~g0 ~isat;
      tank = Shil.Tank.make ~r ~l:(z0 /. wc) ~c:(1.0 /. (z0 *. wc));
    }
  | Builtin name -> (
    match name with
    | "tanh" -> Circuits.Tanh_osc.oscillator Circuits.Tanh_osc.default
    | "diffpair" | "diff-pair" | "dp" ->
      Circuits.Diff_pair.oscillator Circuits.Diff_pair.default
    | "tunnel" | "td" -> Circuits.Tunnel_osc.oscillator Circuits.Tunnel_osc.default
    | other ->
      Oshil_error.raise_ Shil ~phase:"request" Parse_failure
        (Printf.sprintf "unknown oscillator %S" other)
        ~remedy:"use tanh, diffpair or tunnel, or a custom {g0,...} cell")

(* --- report renderers ----------------------------------------------- *)

(* Every renderer mirrors its CLI subcommand Format/Printf call for
   call: same format strings, one [asprintf]/[sprintf] per original
   [printf], concatenated in emission order — the report bytes are the
   CLI bytes. *)

let shil_run ~osc ~n ~vi ~reduced =
  let reduction = if reduced then `Symmetry else `Exact in
  Shil.Analysis.run ~reduction osc ~n ~vi

let shil_report_text (report : Shil.Analysis.shil_report) ~finj =
  let n = report.n in
  let b = Buffer.create 1024 in
  Buffer.add_string b (Format.asprintf "%a@." Shil.Analysis.pp report);
  (match finj with
  | None -> ()
  | Some f_inj ->
    Buffer.add_string b
      (Format.asprintf "@.locks at f_inj = %.8g Hz:@." f_inj);
    let sols = Shil.Analysis.locks_at report ~f_inj in
    if sols = [] then Buffer.add_string b (Format.asprintf "  (none)@.")
    else
      List.iter
        (fun (p : Shil.Solutions.point) ->
          Buffer.add_string b
            (Format.asprintf "  phi = %.5f rad, A = %.6g V (%s)@." p.phi p.a
               (if p.stable then "stable" else "unstable"));
          if p.stable then
            List.iter
              (fun (psi, _) ->
                Buffer.add_string b
                  (Format.asprintf "    state at psi = %.5f rad@." psi))
              (Shil.Solutions.n_states p ~n))
        sols);
  Buffer.contents b

let shil_text ~osc ~n ~vi ~reduced ~finj =
  shil_report_text (shil_run ~osc ~n ~vi ~reduced) ~finj

let op_text ~circuit op =
  let b = Buffer.create 256 in
  List.iter
    (fun node ->
      Buffer.add_string b
        (Printf.sprintf "v(%s) = %.9g\n" node (Spice.Op.voltage op node)))
    (Spice.Circuit.node_names circuit);
  Buffer.contents b

let tran_csv (res : Spice.Transient.result) =
  let b = Buffer.create 4096 in
  let headers =
    List.map
      (function Spice.Transient.Node n -> n | _ -> "?")
      (List.map fst res.signals)
  in
  Buffer.add_string b (Printf.sprintf "t,%s\n" (String.concat "," headers));
  Array.iteri
    (fun k t ->
      Buffer.add_string b (Printf.sprintf "%.9g" t);
      List.iter
        (fun (_, vs) -> Buffer.add_string b (Printf.sprintf ",%.9g" vs.(k)))
        res.signals;
      Buffer.add_char b '\n')
    res.times;
  Buffer.contents b

(* --- scenarios ------------------------------------------------------ *)

let is_scenario_file f =
  match String.lowercase_ascii (Filename.extension f) with
  | ".scn" | ".scenario" -> true
  | _ -> false

let scenario_nonlinearity (s : Check.Scenario.t) =
  match s.osc with
  | "tanh" | "custom" ->
    let g0 = Option.value s.g0 ~default:2e-3 in
    let isat = Option.value s.isat ~default:1e-3 in
    Some (Shil.Nonlinearity.eval (Shil.Nonlinearity.neg_tanh ~g0 ~isat))
  | "diffpair" | "diff-pair" | "dp" ->
    Some
      (Shil.Nonlinearity.eval
         (Circuits.Diff_pair.nonlinearity Circuits.Diff_pair.default))
  | "tunnel" | "td" ->
    Some
      (Shil.Nonlinearity.eval
         (Circuits.Tunnel_osc.nonlinearity Circuits.Tunnel_osc.default))
  | _ -> None

let scenario_oscillator (s : Check.Scenario.t) : Shil.Analysis.oscillator =
  match s.osc with
  | "diffpair" | "diff-pair" | "dp" ->
    Circuits.Diff_pair.oscillator Circuits.Diff_pair.default
  | "tunnel" | "td" -> Circuits.Tunnel_osc.oscillator Circuits.Tunnel_osc.default
  | _ ->
    (* tanh/custom: the scenario's own cell and tank (lint has already
       rejected unknown oscillator names before we get here) *)
    let g0 = Option.value s.g0 ~default:2e-3 in
    let isat = Option.value s.isat ~default:1e-3 in
    let r, l, c = Check.Scenario.resolve_tank s in
    {
      nl = Shil.Nonlinearity.neg_tanh ~g0 ~isat;
      tank = Shil.Tank.make ~r ~l ~c;
    }

(* %.17g round-trips every double exactly: the report is a faithful
   witness for the cold-vs-warm bit-identity check, not a rounded view *)
let jf v =
  if Float.is_nan v then {|"nan"|}
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

type scenario_outcome =
  | Scn_ok of string
  | Scn_lint_error of string

let scenario_outcome_of (s, parse_diags) =
  let module D = Check.Diagnostic in
  let nl = scenario_nonlinearity s in
  let diags = parse_diags @ Check.Scenario.check ?nl s in
  if D.errors diags <> [] then
    Scn_lint_error
      (Printf.sprintf
         {|"status":"lint-error","errors":%d,"warnings":%d,"diagnostics":%s|}
         (D.count_severity D.Error diags)
         (D.count_severity D.Warning diags)
         (D.list_to_json diags))
  else begin
    let osc = scenario_oscillator s in
    let a_range =
      match (s.a_lo, s.a_hi) with
      | Some lo, Some hi -> Some (lo, hi)
      | _ -> None
    in
    let report =
      Shil.Analysis.run ~check:`Off ?points:s.points ?n_phi:s.n_phi
        ?n_amp:s.n_amp ?a_range osc ~n:s.n ~vi:s.vi
    in
    let lr = report.lock_range in
    let stable =
      List.length
        (List.filter
           (fun (p : Shil.Solutions.point) -> p.stable)
           report.locks_at_center)
    in
    Scn_ok
      (Printf.sprintf
         {|"status":"ok","osc":"%s","n":%d,"vi":%s,"natural_amplitude":%s,"locks_at_center":%d,"stable_locks":%d,"lock_range":{"phi_d_max":%s,"f_inj_low":%s,"f_inj_high":%s,"delta_f_inj":%s},"grid_holes":%d|}
         (D.json_escape s.osc) s.n (jf s.vi)
         (match report.natural_amplitude with
         | Some a -> jf a
         | None -> "null")
         (List.length report.locks_at_center)
         stable (jf lr.phi_d_max) (jf lr.f_inj_low) (jf lr.f_inj_high)
         (jf lr.delta_f_inj)
         (Resilience.Summary.failed report.grid.failures))
  end

let scenario_outcome ~name text =
  scenario_outcome_of (Check.Scenario.parse_string ~name text)

let scenario_file_outcome file =
  scenario_outcome_of (Check.Scenario.parse_file file)

let scenario_entry ~file outcome =
  match outcome with
  | Scn_ok b | Scn_lint_error b ->
    Printf.sprintf {|{"file":"%s",%s}|} (Check.Diagnostic.json_escape file) b

(* --- lint ----------------------------------------------------------- *)

let netlist_parse_diag ~name (e : Spice.Netlist.error) =
  Check.Diagnostic.error ~code:"netlist-parse"
    ~loc:(Printf.sprintf "%s:%d" (Filename.basename name) e.line)
    e.message

let lint_file file =
  if is_scenario_file file then begin
    let s, parse_diags = Check.Scenario.parse_file file in
    let nl = scenario_nonlinearity s in
    parse_diags @ Check.Scenario.check ?nl s
  end
  else begin
    match Spice.Netlist.parse_file file with
    | Error e -> [ netlist_parse_diag ~name:file e ]
    | Ok circuit -> Spice.Preflight.check circuit
  end

let lint_text ~name text =
  if is_scenario_file name then begin
    let s, parse_diags = Check.Scenario.parse_string ~name text in
    let nl = scenario_nonlinearity s in
    parse_diags @ Check.Scenario.check ?nl s
  end
  else begin
    match Spice.Netlist.parse_string text with
    | Error e -> [ netlist_parse_diag ~name e ]
    | Ok circuit -> Spice.Preflight.check circuit
  end

let lint_entry ~file ds =
  let module D = Check.Diagnostic in
  Printf.sprintf {|{"file":"%s","errors":%d,"warnings":%d,"diagnostics":%s}|}
    (D.json_escape file)
    (D.count_severity D.Error ds)
    (D.count_severity D.Warning ds)
    (D.list_to_json ds)

(* --- netlists ------------------------------------------------------- *)

let netlist_of_text ~name text =
  match Spice.Netlist.parse_string text with
  | Ok circuit -> circuit
  | Error e ->
    Oshil_error.raise_ Spice ~phase:"netlist" Parse_failure
      (Printf.sprintf "%s:%d: %s" name e.line e.message)
      ~remedy:"fix the netlist (oshil lint shows the full report)"

(* --- request execution ---------------------------------------------- *)

type outcome = (string, Oshil_error.t) result

let health_text () = {|{"status":"ok"}|}

let run_health_json () =
  if Obs.enabled () then
    Obs.Report.to_json (Obs.Report.of_snapshot (Obs.snapshot ()))
  else "null"

let stats_text () =
  Printf.sprintf {|{"server":null,"health":%s}|} (run_health_json ())

(* The deterministic stand-in for a long solve: burns wall clock in
   small slices, checking the deadline between slices like the real
   kernels do between grid rows / transient steps. *)
let sleep_payload s =
  let start = Obs.Clock.wall_s () in
  let slice = 0.002 in
  let rec loop () =
    Deadline.check Serve ~phase:"sleep";
    let elapsed = Obs.Clock.wall_s () -. start in
    if elapsed < s then begin
      Thread.delay (Float.min slice (s -. elapsed));
      loop ()
    end
  in
  loop ();
  "ok"

let run_payload (payload : Request.payload) =
  match payload with
  | Ping -> "pong"
  | Health -> health_text ()
  | Stats -> stats_text ()
  | Sleep { s } -> sleep_payload s
  | Shil { osc; n; vi; reduced; finj } ->
    shil_text ~osc:(resolve_oscillator osc) ~n ~vi ~reduced ~finj
  | Scenario { name; text } ->
    scenario_entry ~file:name (scenario_outcome ~name text)
  | Lint { name; text } -> lint_entry ~file:name (lint_text ~name text)
  | Netlist_op { name; text } ->
    let circuit = netlist_of_text ~name text in
    op_text ~circuit (Spice.Op.run circuit)
  | Netlist_tran { name; text; t_stop; dt; probes } ->
    let circuit = netlist_of_text ~name text in
    let probes =
      match probes with
      | [] ->
        List.map
          (fun n -> Spice.Transient.Node n)
          (Spice.Circuit.node_names circuit)
      | ps -> List.map (fun n -> Spice.Transient.Node n) ps
    in
    tran_csv
      (Spice.Transient.run circuit ~probes
         (Spice.Transient.default_options ~dt ~t_stop))

let execute (req : Request.t) =
  match run_payload req.payload with
  | report -> Ok report
  | exception Oshil_error.Error e -> Error e
  | exception e ->
    Error (Oshil_error.of_exn Serve ~phase:(Request.op_name req.payload) e)

let handle ?default_deadline_s (req : Request.t) =
  let deadline =
    match req.deadline_s with Some s -> Some s | None -> default_deadline_s
  in
  match deadline with
  | Some seconds -> Deadline.with_deadline ~seconds (fun () -> execute req)
  | None -> execute req

let parse_request line =
  match Request.of_string line with
  | Ok req -> Ok req
  | Error msg ->
    Error
      (Oshil_error.make Serve ~phase:"protocol" Parse_failure msg
         ~remedy:
           "send one JSON object per line: \
            {\"id\":...,\"op\":...,\"params\":{...}}")

(* --- responses ------------------------------------------------------ *)

let error_json (e : Oshil_error.t) =
  Json.Obj
    ([
       ("code", Json.Str (Oshil_error.code e));
       ("subsystem", Json.Str (Oshil_error.subsystem_name e.subsystem));
       ("phase", Json.Str e.phase);
       ("msg", Json.Str e.msg);
       ("context", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.context));
     ]
    @ match e.remedy with None -> [] | Some r -> [ ("remedy", Json.Str r) ])

let response_of_outcome ~id outcome =
  Json.to_string
    (match outcome with
    | Ok report ->
      Json.Obj
        [
          ("id", Json.Str id);
          ("status", Json.Str "ok");
          ("report", Json.Str report);
        ]
    | Error e ->
      Json.Obj
        [
          ("id", Json.Str id);
          ("status", Json.Str "error");
          ("error", error_json e);
        ])
