module Json = Json
module Request = Request
module Oshil_error = Resilience.Oshil_error
module Deadline = Resilience.Deadline

(* --- oscillators ---------------------------------------------------- *)

let resolve_oscillator (spec : Request.osc_spec) : Shil.Analysis.oscillator =
  match spec with
  | Custom { g0; isat; r; fc; q } ->
    let wc = 2.0 *. Float.pi *. fc in
    let z0 = r /. q in
    {
      nl = Shil.Nonlinearity.neg_tanh ~g0 ~isat;
      tank = Shil.Tank.make ~r ~l:(z0 /. wc) ~c:(1.0 /. (z0 *. wc));
    }
  | Builtin name -> (
    match name with
    | "tanh" -> Circuits.Tanh_osc.oscillator Circuits.Tanh_osc.default
    | "diffpair" | "diff-pair" | "dp" ->
      Circuits.Diff_pair.oscillator Circuits.Diff_pair.default
    | "tunnel" | "td" -> Circuits.Tunnel_osc.oscillator Circuits.Tunnel_osc.default
    | other ->
      Oshil_error.raise_ Shil ~phase:"request" Parse_failure
        (Printf.sprintf "unknown oscillator %S" other)
        ~remedy:"use tanh, diffpair or tunnel, or a custom {g0,...} cell")

(* --- report renderers ----------------------------------------------- *)

(* Every renderer mirrors its CLI subcommand Format/Printf call for
   call: same format strings, one [asprintf]/[sprintf] per original
   [printf], concatenated in emission order — the report bytes are the
   CLI bytes. *)

let shil_run ~osc ~n ~vi ~reduced =
  let reduction = if reduced then `Symmetry else `Exact in
  Shil.Analysis.run ~reduction osc ~n ~vi

let shil_report_text (report : Shil.Analysis.shil_report) ~finj =
  let n = report.n in
  let b = Buffer.create 1024 in
  Buffer.add_string b (Format.asprintf "%a@." Shil.Analysis.pp report);
  (match finj with
  | None -> ()
  | Some f_inj ->
    Buffer.add_string b
      (Format.asprintf "@.locks at f_inj = %.8g Hz:@." f_inj);
    let sols = Shil.Analysis.locks_at report ~f_inj in
    if sols = [] then Buffer.add_string b (Format.asprintf "  (none)@.")
    else
      List.iter
        (fun (p : Shil.Solutions.point) ->
          Buffer.add_string b
            (Format.asprintf "  phi = %.5f rad, A = %.6g V (%s)@." p.phi p.a
               (if p.stable then "stable" else "unstable"));
          if p.stable then
            List.iter
              (fun (psi, _) ->
                Buffer.add_string b
                  (Format.asprintf "    state at psi = %.5f rad@." psi))
              (Shil.Solutions.n_states p ~n))
        sols);
  Buffer.contents b

let shil_text ~osc ~n ~vi ~reduced ~finj =
  shil_report_text (shil_run ~osc ~n ~vi ~reduced) ~finj

(* %.17g round-trips every double exactly: the report is a faithful
   witness for the cold-vs-warm bit-identity check, not a rounded view *)
let jf v =
  if Float.is_nan v then {|"nan"|}
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

(* --- harmonic balance ------------------------------------------------ *)

(* The MNA realization every oscillator spec reduces to: parallel RLC
   tank with the behavioural nonlinearity across it, plus (optionally)
   the injection current source. Same topology as the Circuits.*
   netlists, but built from the resolved cell so custom oscillators
   work too. Probe node "t". *)
let hb_circuit ?injection (osc : Shil.Analysis.oscillator) =
  let t = (osc.tank : Shil.Tank.t) in
  let base =
    [
      Spice.Device.Resistor { name = "Rtank"; n1 = "t"; n2 = "0"; r = t.r };
      Spice.Device.Inductor
        { name = "Ltank"; n1 = "t"; n2 = "0"; l = t.l; ic = None };
      Spice.Device.Capacitor
        { name = "Ctank"; n1 = "t"; n2 = "0"; c = t.c; ic = None };
      Spice.Device.Nonlinear_cs
        {
          name = "Gosc";
          np = "t";
          nn = "0";
          f = Shil.Nonlinearity.eval osc.nl;
          df = Some (Shil.Nonlinearity.deriv osc.nl);
        };
    ]
  in
  let inj =
    match injection with
    | None -> []
    | Some wave ->
      [ Spice.Device.Isource { name = "Iinj"; np = "0"; nn = "t"; wave } ]
  in
  Spice.Circuit.of_devices (base @ inj)

let hb_ident (osc : Shil.Analysis.oscillator) =
  match Shil.Nonlinearity.cache_key osc.nl with
  | None -> None
  | Some key ->
    let t = (osc.tank : Shil.Tank.t) in
    Some (Printf.sprintf "%s|r=%h|l=%h|c=%h" key t.r t.l t.c)

(* i_inj(t) = Im cos(2 pi f_inj t): the sine wave with a +pi/2 phase is
   the cosine drive Simulate.injected applies to the reduced model, so
   the two lock phases are directly comparable *)
let hb_injection_wave ~tank ~n ~vi ~f_inj =
  let im =
    Shil.Simulate.injection_current ~tank
      { Shil.Simulate.vi; n; f_inj; phase = 0.0 }
  in
  Spice.Wave.Sine
    {
      offset = 0.0;
      ampl = im;
      freq = f_inj;
      phase = Float.pi /. 2.0;
      delay = 0.0;
    }

type hb_outcome = {
  hb_n : int;
  hb_vi : float;
  free : Hb.Driver.solution;
  hb_mode : hb_mode_result;
}

and hb_mode_result =
  | Hb_free_only
  | Hb_locked of Hb.Driver.verdict
  | Hb_band of { band : Hb.Driver.band; df : Shil.Lock_range.t }

let hb_run ~osc ~n ~vi ~k_max ~samples ~(mode : Request.hb_mode) =
  let tank = (osc.Shil.Analysis.tank : Shil.Tank.t) in
  let ident = hb_ident osc in
  let a_guess =
    match Shil.Natural.predicted_amplitude osc.nl ~r:tank.r with
    | Some a -> a
    | None ->
      Oshil_error.raise_ Shil ~phase:"hb" No_oscillation
        "oscillator has no stable natural oscillation to seed the oscprobe"
        ~remedy:"raise the loop gain (g0 R > 1) or pick another cell"
  in
  let f_guess = Shil.Tank.f_c tank in
  let free =
    Hb.Driver.oscprobe ?ident ~k_max ~samples ~f_guess ~a_guess
      (hb_circuit osc)
  in
  (* the injection wave is part of the circuit, so vi joins its cache
     identity (f_inj and n are already driver key fields) *)
  let inj_ident =
    Option.map (fun id -> Printf.sprintf "%s|vi=%h" id vi) ident
  in
  let inject ~f_inj =
    hb_circuit ~injection:(hb_injection_wave ~tank ~n ~vi ~f_inj) osc
  in
  let hb_mode =
    match mode with
    | Hb_osc -> Hb_free_only
    | Hb_injected f_inj ->
      Hb_locked
        (Hb.Driver.injected ?ident:inj_ident ~free ~n ~f_inj
           (inject ~f_inj))
    | Hb_lockrange ->
      let report = Shil.Analysis.run osc ~n ~vi in
      let df = report.Shil.Analysis.lock_range in
      let band =
        Hb.Driver.lock_range ?ident:inj_ident ~free ~n
          ~guess_width:df.Shil.Lock_range.delta_f_inj ~inject ()
      in
      Hb_band { band; df }
  in
  { hb_n = n; hb_vi = vi; free; hb_mode }

let hb_text (o : hb_outcome) =
  let free = o.free in
  let node = free.Hb.Driver.nodes.(free.Hb.Driver.osc_node) in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "harmonic balance: k_max = %d, samples = %d\n"
       free.Hb.Driver.k_max free.Hb.Driver.samples);
  Buffer.add_string b
    (Printf.sprintf "free-running: f_osc = %.8g Hz, A = %.6g V, THD = %.4g\n"
       free.Hb.Driver.f0 (Hb.Driver.amplitude free) (Hb.Driver.thd free));
  Buffer.add_string b
    (Printf.sprintf "solver: %d Newton iteration(s), scaled residual %.3g\n"
       free.Hb.Driver.iters free.Hb.Driver.residual);
  Buffer.add_string b (Printf.sprintf "spectrum at %s (|V_k|, V):\n" node);
  Array.iteri
    (fun k c ->
      Buffer.add_string b
        (Printf.sprintf "  k=%d  %.6g\n" k (Numerics.Cx.abs c)))
    free.Hb.Driver.spectra.(free.Hb.Driver.osc_node);
  (match o.hb_mode with
  | Hb_free_only -> ()
  | Hb_locked v ->
    Buffer.add_string b
      (Printf.sprintf "injection: n = %d, vi = %.4g V, f_inj = %.8g Hz\n"
         o.hb_n o.hb_vi v.Hb.Driver.f_inj);
    if v.Hb.Driver.locked then
      Buffer.add_string b
        (Printf.sprintf "  locked: yes  A = %.6g V, phase = %.5f rad\n"
           v.Hb.Driver.amp v.Hb.Driver.lock_phase)
    else
      Buffer.add_string b
        (Printf.sprintf "  locked: no  (fundamental suppressed: A = %.6g V)\n"
           v.Hb.Driver.amp)
  | Hb_band { band; df } ->
    Buffer.add_string b
      (Printf.sprintf "lock range (n = %d, vi = %.4g V):\n" o.hb_n o.hb_vi);
    Buffer.add_string b
      (Printf.sprintf
         "  HB: f_inj in [%.8g, %.8g] Hz, width %.6g Hz (%d probes, %d \
          holes)\n"
         band.Hb.Driver.f_lo band.Hb.Driver.f_hi
         (band.Hb.Driver.f_hi -. band.Hb.Driver.f_lo)
         band.Hb.Driver.probes band.Hb.Driver.holes);
    Buffer.add_string b
      (Printf.sprintf "  DF: f_inj in [%.8g, %.8g] Hz, width %.6g Hz\n"
         df.Shil.Lock_range.f_inj_low df.Shil.Lock_range.f_inj_high
         df.Shil.Lock_range.delta_f_inj));
  Buffer.contents b

let hb_json (o : hb_outcome) =
  let free = o.free in
  let sp = free.Hb.Driver.spectra.(free.Hb.Driver.osc_node) in
  let spectrum =
    String.concat ","
      (List.mapi
         (fun k (c : Numerics.Cx.t) ->
           Printf.sprintf {|{"k":%d,"re":%s,"im":%s}|} k (jf c.re) (jf c.im))
         (Array.to_list sp))
  in
  let mode_fields =
    match o.hb_mode with
    | Hb_free_only -> {|"mode":"osc"|}
    | Hb_locked v ->
      Printf.sprintf
        {|"mode":"injected","injected":{"finj":%s,"locked":%b,"amplitude":%s,"phase":%s}|}
        (jf v.Hb.Driver.f_inj) v.Hb.Driver.locked (jf v.Hb.Driver.amp)
        (jf v.Hb.Driver.lock_phase)
    | Hb_band { band; df } ->
      Printf.sprintf
        {|"mode":"lockrange","lockrange":{"f_lo":%s,"f_hi":%s,"width":%s,"probes":%d,"holes":%d,"df":{"f_lo":%s,"f_hi":%s,"width":%s}}|}
        (jf band.Hb.Driver.f_lo) (jf band.Hb.Driver.f_hi)
        (jf (band.Hb.Driver.f_hi -. band.Hb.Driver.f_lo))
        band.Hb.Driver.probes band.Hb.Driver.holes
        (jf df.Shil.Lock_range.f_inj_low)
        (jf df.Shil.Lock_range.f_inj_high)
        (jf df.Shil.Lock_range.delta_f_inj)
  in
  Printf.sprintf
    {|{"analysis":"hb","k_max":%d,"samples":%d,"n":%d,"vi":%s,"osc_node":"%s","f_osc":%s,"amplitude":%s,"thd":%s,"newton_iters":%d,"residual":%s,"spectrum":[%s],%s}|}
    free.Hb.Driver.k_max free.Hb.Driver.samples o.hb_n (jf o.hb_vi)
    free.Hb.Driver.nodes.(free.Hb.Driver.osc_node)
    (jf free.Hb.Driver.f0)
    (jf (Hb.Driver.amplitude free))
    (jf (Hb.Driver.thd free))
    free.Hb.Driver.iters
    (jf free.Hb.Driver.residual)
    spectrum mode_fields

let op_text ~circuit op =
  let b = Buffer.create 256 in
  List.iter
    (fun node ->
      Buffer.add_string b
        (Printf.sprintf "v(%s) = %.9g\n" node (Spice.Op.voltage op node)))
    (Spice.Circuit.node_names circuit);
  Buffer.contents b

let tran_csv (res : Spice.Transient.result) =
  let b = Buffer.create 4096 in
  let headers =
    List.map
      (function Spice.Transient.Node n -> n | _ -> "?")
      (List.map fst res.signals)
  in
  Buffer.add_string b (Printf.sprintf "t,%s\n" (String.concat "," headers));
  Array.iteri
    (fun k t ->
      Buffer.add_string b (Printf.sprintf "%.9g" t);
      List.iter
        (fun (_, vs) -> Buffer.add_string b (Printf.sprintf ",%.9g" vs.(k)))
        res.signals;
      Buffer.add_char b '\n')
    res.times;
  Buffer.contents b

(* --- scenarios ------------------------------------------------------ *)

let is_scenario_file f =
  match String.lowercase_ascii (Filename.extension f) with
  | ".scn" | ".scenario" -> true
  | _ -> false

let scenario_nonlinearity (s : Check.Scenario.t) =
  match s.osc with
  | "tanh" | "custom" ->
    let g0 = Option.value s.g0 ~default:2e-3 in
    let isat = Option.value s.isat ~default:1e-3 in
    Some (Shil.Nonlinearity.eval (Shil.Nonlinearity.neg_tanh ~g0 ~isat))
  | "diffpair" | "diff-pair" | "dp" ->
    Some
      (Shil.Nonlinearity.eval
         (Circuits.Diff_pair.nonlinearity Circuits.Diff_pair.default))
  | "tunnel" | "td" ->
    Some
      (Shil.Nonlinearity.eval
         (Circuits.Tunnel_osc.nonlinearity Circuits.Tunnel_osc.default))
  | _ -> None

let scenario_oscillator (s : Check.Scenario.t) : Shil.Analysis.oscillator =
  match s.osc with
  | "diffpair" | "diff-pair" | "dp" ->
    Circuits.Diff_pair.oscillator Circuits.Diff_pair.default
  | "tunnel" | "td" -> Circuits.Tunnel_osc.oscillator Circuits.Tunnel_osc.default
  | _ ->
    (* tanh/custom: the scenario's own cell and tank (lint has already
       rejected unknown oscillator names before we get here) *)
    let g0 = Option.value s.g0 ~default:2e-3 in
    let isat = Option.value s.isat ~default:1e-3 in
    let r, l, c = Check.Scenario.resolve_tank s in
    {
      nl = Shil.Nonlinearity.neg_tanh ~g0 ~isat;
      tank = Shil.Tank.make ~r ~l ~c;
    }

type scenario_outcome =
  | Scn_ok of string
  | Scn_lint_error of string

let scenario_outcome_of (s, parse_diags) =
  let module D = Check.Diagnostic in
  let nl = scenario_nonlinearity s in
  let diags = parse_diags @ Check.Scenario.check ?nl s in
  if D.errors diags <> [] then
    Scn_lint_error
      (Printf.sprintf
         {|"status":"lint-error","errors":%d,"warnings":%d,"diagnostics":%s|}
         (D.count_severity D.Error diags)
         (D.count_severity D.Warning diags)
         (D.list_to_json diags))
  else begin
    let osc = scenario_oscillator s in
    let a_range =
      match (s.a_lo, s.a_hi) with
      | Some lo, Some hi -> Some (lo, hi)
      | _ -> None
    in
    let report =
      Shil.Analysis.run ~check:`Off ?points:s.points ?n_phi:s.n_phi
        ?n_amp:s.n_amp ?a_range osc ~n:s.n ~vi:s.vi
    in
    let lr = report.lock_range in
    let stable =
      List.length
        (List.filter
           (fun (p : Shil.Solutions.point) -> p.stable)
           report.locks_at_center)
    in
    Scn_ok
      (Printf.sprintf
         {|"status":"ok","osc":"%s","n":%d,"vi":%s,"natural_amplitude":%s,"locks_at_center":%d,"stable_locks":%d,"lock_range":{"phi_d_max":%s,"f_inj_low":%s,"f_inj_high":%s,"delta_f_inj":%s},"grid_holes":%d|}
         (D.json_escape s.osc) s.n (jf s.vi)
         (match report.natural_amplitude with
         | Some a -> jf a
         | None -> "null")
         (List.length report.locks_at_center)
         stable (jf lr.phi_d_max) (jf lr.f_inj_low) (jf lr.f_inj_high)
         (jf lr.delta_f_inj)
         (Resilience.Summary.failed report.grid.failures))
  end

let scenario_outcome ~name text =
  scenario_outcome_of (Check.Scenario.parse_string ~name text)

let scenario_file_outcome file =
  scenario_outcome_of (Check.Scenario.parse_file file)

let scenario_entry ~file outcome =
  match outcome with
  | Scn_ok b | Scn_lint_error b ->
    Printf.sprintf {|{"file":"%s",%s}|} (Check.Diagnostic.json_escape file) b

(* --- lint ----------------------------------------------------------- *)

let netlist_parse_diag ~name (e : Spice.Netlist.error) =
  Check.Diagnostic.error ~code:"netlist-parse"
    ~loc:(Printf.sprintf "%s:%d" (Filename.basename name) e.line)
    e.message

let lint_file file =
  if is_scenario_file file then begin
    let s, parse_diags = Check.Scenario.parse_file file in
    let nl = scenario_nonlinearity s in
    parse_diags @ Check.Scenario.check ?nl s
  end
  else begin
    match Spice.Netlist.parse_file file with
    | Error e -> [ netlist_parse_diag ~name:file e ]
    | Ok circuit -> Spice.Preflight.check circuit
  end

let lint_text ~name text =
  if is_scenario_file name then begin
    let s, parse_diags = Check.Scenario.parse_string ~name text in
    let nl = scenario_nonlinearity s in
    parse_diags @ Check.Scenario.check ?nl s
  end
  else begin
    match Spice.Netlist.parse_string text with
    | Error e -> [ netlist_parse_diag ~name e ]
    | Ok circuit -> Spice.Preflight.check circuit
  end

let lint_entry ~file ds =
  let module D = Check.Diagnostic in
  Printf.sprintf {|{"file":"%s","errors":%d,"warnings":%d,"diagnostics":%s}|}
    (D.json_escape file)
    (D.count_severity D.Error ds)
    (D.count_severity D.Warning ds)
    (D.list_to_json ds)

(* --- netlists ------------------------------------------------------- *)

let netlist_of_text ~name text =
  match Spice.Netlist.parse_string text with
  | Ok circuit -> circuit
  | Error e ->
    Oshil_error.raise_ Spice ~phase:"netlist" Parse_failure
      (Printf.sprintf "%s:%d: %s" name e.line e.message)
      ~remedy:"fix the netlist (oshil lint shows the full report)"

(* --- request execution ---------------------------------------------- *)

type outcome = (string, Oshil_error.t) result

let health_text () = {|{"status":"ok"}|}

let run_health_json () =
  if Obs.enabled () then
    Obs.Report.to_json (Obs.Report.of_snapshot (Obs.snapshot ()))
  else "null"

let stats_text () =
  Printf.sprintf {|{"server":null,"health":%s}|} (run_health_json ())

(* The deterministic stand-in for a long solve: burns wall clock in
   small slices, checking the deadline between slices like the real
   kernels do between grid rows / transient steps. *)
let sleep_payload s =
  let start = Obs.Clock.wall_s () in
  let slice = 0.002 in
  let rec loop () =
    Deadline.check Serve ~phase:"sleep";
    let elapsed = Obs.Clock.wall_s () -. start in
    if elapsed < s then begin
      Thread.delay (Float.min slice (s -. elapsed));
      loop ()
    end
  in
  loop ();
  "ok"

let run_payload (payload : Request.payload) =
  match payload with
  | Ping -> "pong"
  | Health -> health_text ()
  | Stats -> stats_text ()
  | Sleep { s } -> sleep_payload s
  | Shil { osc; n; vi; reduced; finj } ->
    shil_text ~osc:(resolve_oscillator osc) ~n ~vi ~reduced ~finj
  | Hb { osc; n; vi; k_max; samples; mode } ->
    hb_text (hb_run ~osc:(resolve_oscillator osc) ~n ~vi ~k_max ~samples ~mode)
  | Scenario { name; text } ->
    scenario_entry ~file:name (scenario_outcome ~name text)
  | Lint { name; text } -> lint_entry ~file:name (lint_text ~name text)
  | Netlist_op { name; text } ->
    let circuit = netlist_of_text ~name text in
    op_text ~circuit (Spice.Op.run circuit)
  | Netlist_tran { name; text; t_stop; dt; probes } ->
    let circuit = netlist_of_text ~name text in
    let probes =
      match probes with
      | [] ->
        List.map
          (fun n -> Spice.Transient.Node n)
          (Spice.Circuit.node_names circuit)
      | ps -> List.map (fun n -> Spice.Transient.Node n) ps
    in
    tran_csv
      (Spice.Transient.run circuit ~probes
         (Spice.Transient.default_options ~dt ~t_stop))

let execute (req : Request.t) =
  match run_payload req.payload with
  | report -> Ok report
  | exception Oshil_error.Error e -> Error e
  | exception e ->
    Error (Oshil_error.of_exn Serve ~phase:(Request.op_name req.payload) e)

let handle ?default_deadline_s (req : Request.t) =
  let deadline =
    match req.deadline_s with Some s -> Some s | None -> default_deadline_s
  in
  match deadline with
  | Some seconds -> Deadline.with_deadline ~seconds (fun () -> execute req)
  | None -> execute req

let parse_request line =
  match Request.of_string line with
  | Ok req -> Ok req
  | Error msg ->
    Error
      (Oshil_error.make Serve ~phase:"protocol" Parse_failure msg
         ~remedy:
           "send one JSON object per line: \
            {\"id\":...,\"op\":...,\"params\":{...}}")

(* --- responses ------------------------------------------------------ *)

let error_json (e : Oshil_error.t) =
  Json.Obj
    ([
       ("code", Json.Str (Oshil_error.code e));
       ("subsystem", Json.Str (Oshil_error.subsystem_name e.subsystem));
       ("phase", Json.Str e.phase);
       ("msg", Json.Str e.msg);
       ("context", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.context));
     ]
    @ match e.remedy with None -> [] | Some r -> [ ("remedy", Json.Str r) ])

let response_of_outcome ~id outcome =
  Json.to_string
    (match outcome with
    | Ok report ->
      Json.Obj
        [
          ("id", Json.Str id);
          ("status", Json.Str "ok");
          ("report", Json.Str report);
        ]
    | Error e ->
      Json.Obj
        [
          ("id", Json.Str id);
          ("status", Json.Str "error");
          ("error", error_json e);
        ])
