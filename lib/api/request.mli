(** Typed analysis requests: the one description of "a unit of oshil
    work" shared by the CLI, the batch runner and the [oshil serve]
    daemon.

    Wire form is a single-line JSON object:
    {v
      {"id":"r1","op":"shil","deadline_s":5,
       "params":{"osc":"tanh","n":3,"vi":0.03}}
    v}
    [id] is echoed in the response; [deadline_s] (optional) is the
    request's wall-clock budget; [params] depends on [op]. *)

type osc_spec =
  | Builtin of string
      (** ["tanh"], ["diffpair"]/["diff-pair"]/["dp"], ["tunnel"]/["td"] *)
  | Custom of { g0 : float; isat : float; r : float; fc : float; q : float }
      (** inline tanh cell, same defaults as the CLI [--g0] family *)

type hb_mode =
  | Hb_osc  (** autonomous steady state (oscprobe) only *)
  | Hb_injected of float  (** solve the locked spectrum at one [f_inj] *)
  | Hb_lockrange  (** march/bisect the HB lock band *)

type payload =
  | Ping  (** liveness probe; report is ["pong"] *)
  | Sleep of { s : float }
      (** burn [s] seconds of wall clock, checking the deadline
          cooperatively — the protocol's deterministic stand-in for a
          long solve (tests, load probes) *)
  | Shil of {
      osc : osc_spec;
      n : int;
      vi : float;
      reduced : bool;
      finj : float option;
    }  (** full SHIL analysis; report is the [oshil shil] text *)
  | Hb of {
      osc : osc_spec;
      n : int;
      vi : float;
      k_max : int;
      samples : int;
      mode : hb_mode;
    }
      (** multi-harmonic harmonic-balance analysis over the MNA
          system; report is the [oshil hb] text. Wire params: [kmax],
          [samples], and either [finj] (injected-tone solve) or
          [lockrange:true] — never both. *)
  | Scenario of { name : string; text : string }
      (** one [.scn] scenario, inline; report is the [oshil batch]
          per-file JSON entry *)
  | Lint of { name : string; text : string }
      (** scenario or netlist (by [name]'s extension); report is the
          [oshil lint --json] per-file entry *)
  | Netlist_op of { name : string; text : string }
      (** operating point of an inline netlist; report is the
          [oshil netlist] op text *)
  | Netlist_tran of {
      name : string;
      text : string;
      t_stop : float;
      dt : float;
      probes : string list;
    }  (** transient of an inline netlist; report is the CSV *)
  | Health  (** answered inline by the server, locally by the CLI *)
  | Stats  (** likewise; the server adds queue/worker counters *)

type t = { id : string; deadline_s : float option; payload : payload }

val op_name : payload -> string
(** Stable wire name of the operation, e.g. ["netlist-tran"]. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Total: malformed envelopes come back as [Error] with a message
    naming the offending field. *)

val of_string : string -> (t, string) result
(** [of_json] composed with {!Json.parse}. *)

val to_string : t -> string
(** Single-line wire form (deterministic bytes). *)
