(** Minimal JSON: the wire format of the request/response protocol.

    Self-contained (the toolchain ships no JSON library) and
    deliberately small: values, a strict parser returning [result], and
    a deterministic single-line printer — the same value always renders
    to the same bytes, which is what the byte-identity contract between
    the CLI and server paths rests on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** insertion order is preserved *)

val parse : string -> (t, string) result
(** Strict RFC-8259 parser. Rejects trailing garbage, unterminated
    literals and inputs nested deeper than an internal limit (so a
    hostile request cannot blow the daemon's stack). Never raises. *)

val to_string : t -> string
(** Deterministic single-line rendering: no whitespace, object fields
    in insertion order, integral doubles printed without a fraction,
    others via [%.17g] (round-trips every finite double exactly);
    non-finite numbers render as [null] (JSON has no NaN). *)

val escape : string -> string
(** JSON string-escape [s] (without the surrounding quotes): quotes
    and backslashes escaped, control characters as [\u00XX]. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val get_string : t -> string option
val get_float : t -> float option
val get_int : t -> int option
(** [Num] fields that are integral doubles; [None] otherwise. *)

val get_bool : t -> bool option
val get_list : t -> t list option
