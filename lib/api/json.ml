type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num v -> Buffer.add_string b (number_to_string v)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        vs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          go v)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* --- parsing -------------------------------------------------------- *)

(* Recursive descent with an explicit depth cap: a hostile request of
   100k nested brackets must produce [Error], not a stack overflow. *)
let max_depth = 256

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  (* dsa: allow raise-escape — Bad is internal control flow: [parse] catches it below and returns [Error] *)
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.equal (String.sub s !pos l) lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "bad literal (expected %s)" lit)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let add_utf8 b cp =
    (* encode a code point as UTF-8; lone surrogates pass through as the
       replacement character *)
    let cp = if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD else cp in
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' -> Buffer.add_char b '"'; loop ()
        | '\\' -> Buffer.add_char b '\\'; loop ()
        | '/' -> Buffer.add_char b '/'; loop ()
        | 'n' -> Buffer.add_char b '\n'; loop ()
        | 't' -> Buffer.add_char b '\t'; loop ()
        | 'r' -> Buffer.add_char b '\r'; loop ()
        | 'b' -> Buffer.add_char b '\b'; loop ()
        | 'f' -> Buffer.add_char b '\012'; loop ()
        | 'u' ->
          let cp = parse_hex4 () in
          let cp =
            (* surrogate pair *)
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
               && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = parse_hex4 () in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((cp - 0xD800) * 0x400) + (lo - 0xDC00)
              else 0xFFFD
            end
            else cp
          in
          add_utf8 b cp;
          loop ()
        | _ -> fail "bad escape")
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char b c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "bad number"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let acc = ref [] in
        let rec items () =
          acc := parse_value (depth + 1) :: !acc;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items ();
        List (List.rev !acc)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let acc = ref [] in
        let rec fields () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          acc := (k, v) :: !acc;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields ();
        Obj (List.rev !acc)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- accessors ------------------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let get_string = function Str s -> Some s | _ -> None
let get_float = function Num v -> Some v | _ -> None

let get_int = function
  | Num v when Float.is_integer v && Float.abs v <= 1e9 ->
    Some (int_of_float v)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List vs -> Some vs | _ -> None
