type osc_spec =
  | Builtin of string
  | Custom of { g0 : float; isat : float; r : float; fc : float; q : float }

type hb_mode = Hb_osc | Hb_injected of float | Hb_lockrange

type payload =
  | Ping
  | Sleep of { s : float }
  | Shil of {
      osc : osc_spec;
      n : int;
      vi : float;
      reduced : bool;
      finj : float option;
    }
  | Hb of {
      osc : osc_spec;
      n : int;
      vi : float;
      k_max : int;
      samples : int;
      mode : hb_mode;
    }
  | Scenario of { name : string; text : string }
  | Lint of { name : string; text : string }
  | Netlist_op of { name : string; text : string }
  | Netlist_tran of {
      name : string;
      text : string;
      t_stop : float;
      dt : float;
      probes : string list;
    }
  | Health
  | Stats

type t = { id : string; deadline_s : float option; payload : payload }

let op_name = function
  | Ping -> "ping"
  | Sleep _ -> "sleep"
  | Shil _ -> "shil"
  | Hb _ -> "hb"
  | Scenario _ -> "scenario"
  | Lint _ -> "lint"
  | Netlist_op _ -> "netlist-op"
  | Netlist_tran _ -> "netlist-tran"
  | Health -> "health"
  | Stats -> "stats"

(* --- encoding ------------------------------------------------------- *)

let osc_to_json = function
  | Builtin name -> Json.Str name
  | Custom { g0; isat; r; fc; q } ->
    Json.Obj
      [
        ("g0", Json.Num g0);
        ("isat", Json.Num isat);
        ("r", Json.Num r);
        ("fc", Json.Num fc);
        ("q", Json.Num q);
      ]

let params_to_json = function
  | Ping | Health | Stats -> []
  | Sleep { s } -> [ ("s", Json.Num s) ]
  | Shil { osc; n; vi; reduced; finj } ->
    [
      ("osc", osc_to_json osc);
      ("n", Json.Num (float_of_int n));
      ("vi", Json.Num vi);
    ]
    @ (if reduced then [ ("reduced", Json.Bool true) ] else [])
    @ (match finj with None -> [] | Some f -> [ ("finj", Json.Num f) ])
  | Hb { osc; n; vi; k_max; samples; mode } ->
    [
      ("osc", osc_to_json osc);
      ("n", Json.Num (float_of_int n));
      ("vi", Json.Num vi);
      ("kmax", Json.Num (float_of_int k_max));
      ("samples", Json.Num (float_of_int samples));
    ]
    @ (match mode with
      | Hb_osc -> []
      | Hb_injected f -> [ ("finj", Json.Num f) ]
      | Hb_lockrange -> [ ("lockrange", Json.Bool true) ])
  | Scenario { name; text } | Lint { name; text } | Netlist_op { name; text }
    ->
    [ ("name", Json.Str name); ("text", Json.Str text) ]
  | Netlist_tran { name; text; t_stop; dt; probes } ->
    [
      ("name", Json.Str name);
      ("text", Json.Str text);
      ("tstop", Json.Num t_stop);
      ("dt", Json.Num dt);
    ]
    @
    if probes = [] then []
    else [ ("probes", Json.List (List.map (fun p -> Json.Str p) probes)) ]

let to_json t =
  Json.Obj
    ([ ("id", Json.Str t.id); ("op", Json.Str (op_name t.payload)) ]
    @ (match t.deadline_s with
      | None -> []
      | Some s -> [ ("deadline_s", Json.Num s) ])
    @
    match params_to_json t.payload with
    | [] -> []
    | ps -> [ ("params", Json.Obj ps) ])

let to_string t = Json.to_string (to_json t)

(* --- decoding ------------------------------------------------------- *)

let ( let* ) = Result.bind

let field ?default name get params what =
  match Json.member name params with
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing field %S" name))
  | Some v -> (
    match get v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S: expected %s" name what))

let str ?default name p = field ?default name Json.get_string p "a string"
let num ?default name p = field ?default name Json.get_float p "a number"
let int_ ?default name p = field ?default name Json.get_int p "an integer"
let bool_ ?default name p = field ?default name Json.get_bool p "a boolean"

let opt_num name p =
  match Json.member name p with
  | None -> Ok None
  | Some v -> (
    match Json.get_float v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S: expected a number" name))

let osc_of_json params =
  match Json.member "osc" params with
  | None -> Ok (Builtin "tanh")
  | Some (Json.Str name) -> Ok (Builtin name)
  | Some (Json.Obj _ as o) ->
    (* the CLI defaults for the --g0 family *)
    let* g0 = num "g0" o in
    let* isat = num ~default:1e-3 "isat" o in
    let* r = num ~default:1e3 "r" o in
    let* fc = num ~default:1e6 "fc" o in
    let* q = num ~default:10.0 "q" o in
    Ok (Custom { g0; isat; r; fc; q })
  | Some _ -> Error "field \"osc\": expected a name or an object"

let payload_of_json ~op params =
  match op with
  | "ping" -> Ok Ping
  | "health" -> Ok Health
  | "stats" -> Ok Stats
  | "sleep" ->
    let* s = num "s" params in
    Ok (Sleep { s })
  | "shil" ->
    let* osc = osc_of_json params in
    let* n = int_ ~default:3 "n" params in
    let* vi = num ~default:0.03 "vi" params in
    let* reduced = bool_ ~default:false "reduced" params in
    let* finj = opt_num "finj" params in
    Ok (Shil { osc; n; vi; reduced; finj })
  | "hb" ->
    let* osc = osc_of_json params in
    let* n = int_ ~default:3 "n" params in
    let* vi = num ~default:0.03 "vi" params in
    let* k_max = int_ ~default:7 "kmax" params in
    let* samples = int_ ~default:1024 "samples" params in
    let* lockrange = bool_ ~default:false "lockrange" params in
    let* finj = opt_num "finj" params in
    let* mode =
      match (lockrange, finj) with
      | true, Some _ -> Error "fields \"lockrange\" and \"finj\" conflict"
      | true, None -> Ok Hb_lockrange
      | false, Some f -> Ok (Hb_injected f)
      | false, None -> Ok Hb_osc
    in
    Ok (Hb { osc; n; vi; k_max; samples; mode })
  | "scenario" ->
    let* name = str ~default:"<request>" "name" params in
    let* text = str "text" params in
    Ok (Scenario { name; text })
  | "lint" ->
    let* name = str ~default:"<request>" "name" params in
    let* text = str "text" params in
    Ok (Lint { name; text })
  | "netlist-op" ->
    let* name = str ~default:"<request>" "name" params in
    let* text = str "text" params in
    Ok (Netlist_op { name; text })
  | "netlist-tran" ->
    let* name = str ~default:"<request>" "name" params in
    let* text = str "text" params in
    let* t_stop = num ~default:1e-3 "tstop" params in
    let* dt = num ~default:1e-6 "dt" params in
    let* probes =
      match Json.member "probes" params with
      | None -> Ok []
      | Some v -> (
        match Json.get_list v with
        | None -> Error "field \"probes\": expected a list"
        | Some vs ->
          List.fold_right
            (fun v acc ->
              let* acc = acc in
              match Json.get_string v with
              | Some s -> Ok (s :: acc)
              | None -> Error "field \"probes\": expected strings")
            vs (Ok []))
    in
    Ok (Netlist_tran { name; text; t_stop; dt; probes })
  | other -> Error (Printf.sprintf "unknown op %S" other)

let of_json j =
  match j with
  | Json.Obj _ ->
    let* id = str ~default:"" "id" j in
    let* op = str "op" j in
    let* deadline_s = opt_num "deadline_s" j in
    let params =
      match Json.member "params" j with Some p -> p | None -> Json.Obj []
    in
    let* payload = payload_of_json ~op params in
    Ok { id; deadline_s; payload }
  | _ -> Error "request must be a JSON object"

let of_string s =
  let* j = Json.parse s in
  of_json j
