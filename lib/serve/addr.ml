type t =
  | Unix_sock of string
  | Tcp of string * int

let drop_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.equal (String.sub s 0 lp) prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

let host_port s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 && host <> "" -> Some (host, p)
    | _ -> None)

let of_string s =
  let s = String.trim s in
  if s = "" then Error "empty address"
  else
    match drop_prefix ~prefix:"unix:" s with
    | Some path -> Ok (Unix_sock path)
    | None -> (
      match drop_prefix ~prefix:"tcp:" s with
      | Some rest -> (
        match host_port rest with
        | Some (h, p) -> Ok (Tcp (h, p))
        | None -> Error (Printf.sprintf "bad tcp address %S (want HOST:PORT)" s))
      | None -> (
        (* bare HOST:PORT if the suffix parses as a port, else a path *)
        match host_port s with
        | Some (h, p) when not (String.contains s '/') -> Ok (Tcp (h, p))
        | _ -> Ok (Unix_sock s)))

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).h_addr_list.(0)
      with Not_found | Invalid_argument _ -> Unix.inet_addr_loopback
    in
    Unix.ADDR_INET (ip, port)

let domain = function
  | Unix_sock _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET
