(** Line-protocol client for the [oshil serve] daemon.

    Connection failures and mid-request disconnects raise the typed
    {!Resilience.Oshil_error.Error} (subsystem [Serve]); nothing else
    escapes. *)

type conn

val connect : Addr.t -> conn
val close : conn -> unit

val request : conn -> string -> string
(** [request conn line] sends one request line and blocks for the one
    response line. The payload must not contain newlines (the protocol
    is newline-framed); {!Json.to_string} output never does. *)

val with_conn : Addr.t -> (conn -> 'a) -> 'a
(** Connect, run, always close. *)

val call : Addr.t -> string -> string
(** One-shot [with_conn] + {!request}. *)
