(** Bounded blocking FIFO: the server's job queue.

    Producers never block — {!try_push} reports a full (or closed)
    queue immediately, which is the backpressure signal the protocol
    turns into a typed [overload] rejection. Consumers block in {!pop}
    until an item arrives or the queue is closed and drained. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] ([invalid_arg]) when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed; never blocks. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available ([Some]) or the queue is closed
    and empty ([None]). FIFO order. *)

val close : 'a t -> unit
(** Reject further pushes; wake every blocked {!pop}. Items already
    queued still drain. Idempotent. *)

val closed : 'a t -> bool
