(** The [oshil serve] daemon: a resident analysis server multiplexing
    newline-delimited JSON requests (see {!Request}) over a Unix-domain
    or TCP socket.

    Lifecycle state machine:
    {v
      accepting --request_drain()--> draining --queue empty--> stopped
    v}
    - {b accepting}: one reader thread per connection parses request
      lines; [health]/[stats] are answered inline, work requests go
      through a bounded job queue ({!Bq}) onto a fixed worker pool.
      A full queue is explicit backpressure: the request is rejected
      immediately with a typed [overload] error, never queued blind.
    - {b draining} (entered from a SIGTERM/SIGINT handler calling
      {!request_drain}, or programmatically): the listener closes, new
      requests on live connections get typed [overload] rejections,
      queued and in-flight work finishes (or deadlines out), then
      sinks flush and {!run} returns — the bin wrapper exits 0.

    Robustness invariants, enforced per request:
    - a payload that raises returns a typed error response and the
      worker survives (crash isolation via {!Api.execute});
    - transient failures (injected faults, solver divergence, singular
      systems) retry with exponential backoff inside the request's
      deadline, at most [max_retries] times;
    - every request runs under its [deadline_s] (or the server
      default) through {!Resilience.Deadline}, so a stuck solve
      unwinds into a typed [budget-exhausted] error instead of pinning
      a worker forever;
    - the [serve-request] {!Resilience.Fault} site fires at the top of
      request processing for fault-injection drills.

    {!run} raises {!Resilience.Oshil_error.Error} only for startup
    failures (socket bind/listen). *)

type config = {
  address : Addr.t;
  capacity : int;  (** job-queue slots (excludes in-flight work) *)
  workers : int;  (** worker threads executing requests *)
  default_deadline_s : float option;
      (** budget for requests that carry no [deadline_s] *)
  max_retries : int;  (** extra attempts for transient-class failures *)
  retry_backoff_s : float;  (** base backoff, doubled per attempt *)
}

val default_config : Addr.t -> config
(** capacity 16, 2 workers, 30 s default deadline, 2 retries, 50 ms
    backoff. *)

(** Counter snapshot exposed by the [stats] endpoint. *)
type stats = {
  draining : bool;
  workers : int;
  queue_depth : int;
  queue_capacity : int;
  in_flight : int;
  connections : int;
  received : int;  (** requests parsed off the wire *)
  ok : int;
  errors : int;  (** error responses, including protocol errors *)
  rejected_overload : int;
  rejected_draining : int;
  retries : int;
  deadline_expired : int;
  cache_hits : int;
  cache_misses : int;
  cache_corrupt : int;
}

val stats_to_json : ?health:string -> stats -> string
(** Deterministic rendering of the [stats] report; [health] is a raw
    JSON value (default [null]) carrying {!Obs.Report.to_json}
    run-health when telemetry is on. Golden-tested byte layout. *)

val request_drain : unit -> unit
(** Enter drain mode. Async-signal-safe (a single atomic store): this
    is what the daemon's SIGTERM/SIGINT handlers call. Process-global —
    it addresses every {!run} in the process (there is normally one). *)

val draining : unit -> bool

val run : config -> unit
(** Serve until drained. Blocks the calling thread (the accept loop
    runs on it); spawns reader and worker threads internally and joins
    them all before returning. Flushes {!Obs} sinks on the way out. *)
