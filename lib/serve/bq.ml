type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable is_closed : bool;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Bq.create: capacity %d < 1" capacity);
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    is_closed = false;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let capacity t = t.capacity
let length t = locked t (fun () -> Queue.length t.items)
let closed t = locked t (fun () -> t.is_closed)

let try_push t x =
  locked t (fun () ->
      if t.is_closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  locked t (fun () ->
      let rec wait () =
        match Queue.take_opt t.items with
        | Some x -> Some x
        | None ->
          if t.is_closed then None
          else begin
            Condition.wait t.nonempty t.mu;
            wait ()
          end
      in
      wait ())

let close t =
  locked t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)
