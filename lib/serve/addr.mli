(** Server addresses: a Unix-domain socket path or a TCP endpoint. *)

type t =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port *)

val of_string : string -> (t, string) result
(** Accepts [unix:PATH], [tcp:HOST:PORT], a bare [HOST:PORT] whose
    suffix parses as a port, or a bare filesystem path (anything
    else). *)

val to_string : t -> string
(** Round-trips through {!of_string}. *)

val sockaddr : t -> Unix.sockaddr
val domain : t -> Unix.socket_domain
