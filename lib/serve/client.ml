module Oshil_error = Resilience.Oshil_error

type conn = { ic : in_channel; oc : out_channel }

let fail ~phase e =
  raise (Oshil_error.Error (Oshil_error.of_exn Serve ~phase e))

let connect addr =
  let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Addr.sockaddr addr) with
  | () ->
    { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    fail ~phase:"connect" e

let close conn =
  (* in_channel and out_channel share the socket fd: closing one side
     closes the descriptor, the second close must not error *)
  try close_in conn.ic with Sys_error _ -> ()

let request conn line =
  match
    output_string conn.oc line;
    output_char conn.oc '\n';
    flush conn.oc;
    input_line conn.ic
  with
  | response -> response
  | exception End_of_file ->
    raise
      (Oshil_error.Error
         (Oshil_error.make Serve ~phase:"request" Step_failure
            "server closed the connection before responding"
            ~remedy:"check the daemon's log; it may be draining"))
  | exception ((Sys_error _ | Unix.Unix_error _) as e) ->
    fail ~phase:"request" e

let with_conn addr f =
  let conn = connect addr in
  Fun.protect ~finally:(fun () -> close conn) (fun () -> f conn)

let call addr line = with_conn addr (fun conn -> request conn line)
