module Json = Api.Json
module Request = Api.Request
module Oshil_error = Resilience.Oshil_error
module Deadline = Resilience.Deadline
module Fault = Resilience.Fault

type config = {
  address : Addr.t;
  capacity : int;
  workers : int;
  default_deadline_s : float option;
  max_retries : int;
  retry_backoff_s : float;
}

let default_config address =
  {
    address;
    capacity = 16;
    workers = 2;
    default_deadline_s = Some 30.0;
    max_retries = 2;
    retry_backoff_s = 0.05;
  }

type stats = {
  draining : bool;
  workers : int;
  queue_depth : int;
  queue_capacity : int;
  in_flight : int;
  connections : int;
  received : int;
  ok : int;
  errors : int;
  rejected_overload : int;
  rejected_draining : int;
  retries : int;
  deadline_expired : int;
  cache_hits : int;
  cache_misses : int;
  cache_corrupt : int;
}

let stats_to_json ?(health = "null") (s : stats) =
  let server =
    Json.Obj
      [
        ("draining", Json.Bool s.draining);
        ("workers", Json.Num (float_of_int s.workers));
        ( "queue",
          Json.Obj
            [
              ("depth", Json.Num (float_of_int s.queue_depth));
              ("capacity", Json.Num (float_of_int s.queue_capacity));
            ] );
        ("in_flight", Json.Num (float_of_int s.in_flight));
        ("connections", Json.Num (float_of_int s.connections));
        ( "requests",
          Json.Obj
            [
              ("received", Json.Num (float_of_int s.received));
              ("ok", Json.Num (float_of_int s.ok));
              ("errors", Json.Num (float_of_int s.errors));
              ("rejected_overload", Json.Num (float_of_int s.rejected_overload));
              ("rejected_draining", Json.Num (float_of_int s.rejected_draining));
              ("retries", Json.Num (float_of_int s.retries));
              ("deadline_expired", Json.Num (float_of_int s.deadline_expired));
            ] );
        ( "cache",
          Json.Obj
            [
              ("hits", Json.Num (float_of_int s.cache_hits));
              ("misses", Json.Num (float_of_int s.cache_misses));
              ("corrupt", Json.Num (float_of_int s.cache_corrupt));
            ] );
      ]
  in
  Printf.sprintf {|{"server":%s,"health":%s}|} (Json.to_string server) health

(* --- drain flag ----------------------------------------------------- *)

(* Process-global so a signal handler can reach it with one atomic
   store; reset at the top of [run]. *)
let drain_flag = Atomic.make false
let request_drain () = Atomic.set drain_flag true
let draining () = Atomic.get drain_flag

(* --- connections ---------------------------------------------------- *)

type conn = {
  id : int;
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wmu : Mutex.t;
  alive : bool Atomic.t;
}

type job = { conn : conn; req : Request.t }

type state = {
  cfg : config;
  queue : job Bq.t;
  (* counters; plain Atomics — the stats endpoint reads a snapshot *)
  connections : int Atomic.t;
  received : int Atomic.t;
  ok : int Atomic.t;
  errors : int Atomic.t;
  rejected_overload : int Atomic.t;
  rejected_draining : int Atomic.t;
  retries : int Atomic.t;
  deadline_expired : int Atomic.t;
  in_flight : int Atomic.t;
  conns_mu : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  mutable readers : Thread.t list;  (* under conns_mu *)
}

let make_state cfg =
  {
    cfg;
    queue = Bq.create ~capacity:cfg.capacity;
    connections = Atomic.make 0;
    received = Atomic.make 0;
    ok = Atomic.make 0;
    errors = Atomic.make 0;
    rejected_overload = Atomic.make 0;
    rejected_draining = Atomic.make 0;
    retries = Atomic.make 0;
    deadline_expired = Atomic.make 0;
    in_flight = Atomic.make 0;
    conns_mu = Mutex.create ();
    conns = Hashtbl.create 16;
    readers = [];
  }

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let snapshot st =
  {
    draining = draining ();
    workers = st.cfg.workers;
    queue_depth = Bq.length st.queue;
    queue_capacity = Bq.capacity st.queue;
    in_flight = Atomic.get st.in_flight;
    connections = Atomic.get st.connections;
    received = Atomic.get st.received;
    ok = Atomic.get st.ok;
    errors = Atomic.get st.errors;
    rejected_overload = Atomic.get st.rejected_overload;
    rejected_draining = Atomic.get st.rejected_draining;
    retries = Atomic.get st.retries;
    deadline_expired = Atomic.get st.deadline_expired;
    cache_hits = Obs.Metrics.counter_value "cache.hits";
    cache_misses = Obs.Metrics.counter_value "cache.misses";
    cache_corrupt = Obs.Metrics.counter_value "cache.corrupt";
  }

(* --- responses ------------------------------------------------------ *)

let send conn line =
  if Atomic.get conn.alive then
    locked conn.wmu (fun () ->
        try
          output_string conn.oc line;
          output_char conn.oc '\n';
          flush conn.oc
        with Sys_error _ | Unix.Unix_error _ ->
          (* client went away mid-response; the reader loop will reap
             the connection on its next read *)
          Atomic.set conn.alive false)

let respond st conn ~id outcome =
  (match outcome with
  | Ok _ ->
    Atomic.incr st.ok;
    Obs.Metrics.incr "serve.ok"
  | Error (e : Oshil_error.t) ->
    Atomic.incr st.errors;
    Obs.Metrics.incr "serve.errors";
    if e.kind = Budget_exhausted then Atomic.incr st.deadline_expired);
  send conn (Api.response_of_outcome ~id outcome)

let overload_error ~phase msg ~context =
  Oshil_error.make Serve ~phase Overload msg ~context
    ~remedy:"retry after a backoff, or raise --capacity / --workers"

(* --- request processing --------------------------------------------- *)

let transient (e : Oshil_error.t) =
  match e.kind with
  | Fault_injected | Solver_divergence | Singular_system -> true
  | Step_failure | No_oscillation | Root_failure | Budget_exhausted
  | Measurement_failure | Parse_failure | Overload ->
    false

let process st (job : job) =
  let req = job.req in
  let attempt_once () =
    if Fault.fire "serve-request" then
      Error (Fault.error ~site:"serve-request" Serve ~phase:"request")
    else Api.execute req
  in
  let rec attempts k =
    match attempt_once () with
    | Error e
      when transient e && k < st.cfg.max_retries && not (Deadline.expired ())
      ->
      Atomic.incr st.retries;
      Obs.Metrics.incr "serve.retries";
      Thread.delay (st.cfg.retry_backoff_s *. float_of_int (1 lsl k));
      attempts (k + 1)
    | out -> out
  in
  let deadline =
    match req.deadline_s with
    | Some s -> Some s
    | None -> st.cfg.default_deadline_s
  in
  let outcome =
    match deadline with
    | Some seconds -> Deadline.with_deadline ~seconds (fun () -> attempts 0)
    | None -> attempts 0
  in
  respond st job.conn ~id:req.id outcome

let worker st () =
  let rec loop () =
    match Bq.pop st.queue with
    | None -> ()
    | Some job ->
      Atomic.incr st.in_flight;
      Fun.protect
        ~finally:(fun () -> Atomic.decr st.in_flight)
        (fun () ->
          (* [process] only raises on programming errors in the server
             itself ([Api.execute] is total); even then the worker
             survives and the client gets a typed response *)
          try process st job
          with e ->
            respond st job.conn ~id:job.req.id
              (Error (Oshil_error.of_exn Serve ~phase:"worker" e)));
      loop ()
  in
  loop ()

(* --- reader threads ------------------------------------------------- *)

let health_report () =
  Printf.sprintf {|{"status":"%s"}|}
    (if draining () then "draining" else "ok")

let handle_line st conn line =
  match Api.parse_request line with
  | Error e ->
    Atomic.incr st.errors;
    Obs.Metrics.incr "serve.protocol_errors";
    send conn (Api.response_of_outcome ~id:"" (Error e))
  | Ok req -> (
    Atomic.incr st.received;
    Obs.Metrics.incr "serve.requests";
    match req.payload with
    (* control endpoints answer inline — they must respond even when
       the queue is saturated, or they are useless for diagnosis *)
    | Request.Health -> respond st conn ~id:req.id (Ok (health_report ()))
    | Request.Stats ->
      let report =
        stats_to_json ~health:(Api.run_health_json ()) (snapshot st)
      in
      respond st conn ~id:req.id (Ok report)
    | _ ->
      if draining () then begin
        Atomic.incr st.rejected_draining;
        respond st conn ~id:req.id
          (Error
             (overload_error ~phase:"drain" "server is draining"
                ~context:[ ("state", "draining") ]))
      end
      else if not (Bq.try_push st.queue { conn; req }) then begin
        Atomic.incr st.rejected_overload;
        Obs.Metrics.incr "serve.rejected_overload";
        respond st conn ~id:req.id
          (Error
             (overload_error ~phase:"enqueue" "job queue full"
                ~context:
                  [
                    ("capacity", string_of_int (Bq.capacity st.queue));
                    ("in_flight", string_of_int (Atomic.get st.in_flight));
                  ]))
      end)

let reader st conn () =
  let rec loop () =
    match input_line conn.ic with
    | line ->
      if String.trim line <> "" then begin
        (try handle_line st conn line
         with e ->
           send conn
             (Api.response_of_outcome ~id:""
                (Error (Oshil_error.of_exn Serve ~phase:"reader" e))))
      end;
      loop ()
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
  in
  loop ();
  Atomic.set conn.alive false;
  locked st.conns_mu (fun () -> Hashtbl.remove st.conns conn.id);
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Atomic.decr st.connections

(* --- accept loop ---------------------------------------------------- *)

let listen_socket addr =
  match
    let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
    (match addr with
    | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Addr.Unix_sock path ->
      (* a stale socket file from a crashed run blocks bind *)
      if Sys.file_exists path then ( try Sys.remove path with Sys_error _ -> ()));
    Unix.bind fd (Addr.sockaddr addr);
    Unix.listen fd 64;
    fd
  with
  | fd -> fd
  | exception e ->
    raise (Oshil_error.Error (Oshil_error.of_exn Serve ~phase:"listen" e))

let conn_counter = Atomic.make 0

let accept_loop st listen_fd =
  let rec loop () =
    if not (draining ()) then begin
      match Unix.select [ listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
        (match Unix.accept ~cloexec:true listen_fd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
          let conn =
            {
              id = Atomic.fetch_and_add conn_counter 1;
              fd;
              ic = Unix.in_channel_of_descr fd;
              oc = Unix.out_channel_of_descr fd;
              wmu = Mutex.create ();
              alive = Atomic.make true;
            }
          in
          Atomic.incr st.connections;
          Obs.Metrics.incr "serve.connections";
          let t = Thread.create (reader st conn) () in
          locked st.conns_mu (fun () ->
              Hashtbl.replace st.conns conn.id conn;
              st.readers <- t :: st.readers));
        loop ()
    end
  in
  loop ()

(* --- lifecycle ------------------------------------------------------ *)

let run cfg =
  Atomic.set drain_flag false;
  (* a client disconnecting mid-write must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listen_fd = listen_socket cfg.address in
  let st = make_state cfg in
  let workers = List.init cfg.workers (fun _ -> Thread.create (worker st) ()) in
  accept_loop st listen_fd;
  (* drain: stop listening, finish queued + in-flight work, then force
     the readers out and flush telemetry *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match cfg.address with
  | Addr.Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Addr.Tcp _ -> ());
  Bq.close st.queue;
  List.iter Thread.join workers;
  let readers =
    locked st.conns_mu (fun () ->
        Hashtbl.iter
          (fun _ conn ->
            Atomic.set conn.alive false;
            try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          st.conns;
        st.readers)
  in
  List.iter Thread.join readers;
  Obs.flush ()
