(** Lock-range prediction (§III-C, Fig. 10): the largest tank phase
    [|phi_d|] at which a stable lock survives, mapped to frequency through
    the tank and multiplied by [n] to give the injection-referred range. *)

type t = {
  phi_d_max : float;  (** boundary tank phase, rad (> 0) *)
  f_osc_low : float;  (** oscillator-referred lower lock edge, Hz *)
  f_osc_high : float;
  f_inj_low : float;  (** injection-referred edges ([n] x oscillator), Hz *)
  f_inj_high : float;
  delta_f_inj : float;  (** injection-referred lock range, Hz *)
  at_center : Solutions.point list;  (** lock points at [phi_d = 0] *)
  failures : Resilience.Summary.t;
      (** typed holes: failed stability probes (counted as unstable, so
          the range only shrinks) merged with the grid's failed rows *)
}

val phi_d_boundary :
  ?points:int -> ?phi_d_cap:float -> ?tol:float -> Grid.t -> float
(** Bisection on [phi_d in [0, phi_d_cap]] (default cap 1.4 rad, tol 1e-5)
    for the largest phase with a stable lock, reusing one
    describing-function grid for the whole sweep (the [C_{T_f,1}]
    invariance trick). Returns 0. when even [phi_d = 0] has no stable
    lock. By §VI-B3 the boundary is symmetric in [+-phi_d]. *)

val predict :
  ?points:int -> ?phi_d_cap:float -> ?tol:float -> Grid.t -> tank:Tank.t -> t
(** Full prediction. The grid's [r] must equal [tank.r] (raises
    [Invalid_argument] otherwise). The oscillator
    locks on [f_c / p .. f_c * p] style band: edges are
    [omega_of_phase (+-phi_d_max)] (positive [phi_d] = below resonance).

    A stability probe that raises becomes a typed hole in [failures]
    (counter [resilience.lockrange.holes]) and is treated as unstable
    instead of aborting, unless {!Resilience.Policy.set_fail_fast} is
    on. Fault site [lock-probe] injects probe failures for testing. *)

val pp : Format.formatter -> t -> unit
