(** Parallel RLC tank: the linear filter of the oscillator loop.

    Transfer impedance (current in, voltage out):
    [H(jw) = R / (1 + j Q (w/wc - wc/w))] with [wc = 1/sqrt(LC)] and
    [Q = R sqrt(C/L)]. Phase [phi_d(w) = -atan (Q (w/wc - wc/w))] is
    positive below resonance, zero at [wc], negative above — Fig. 6. *)

type t = private { r : float; l : float; c : float }

val make : r:float -> l:float -> c:float -> t
(** All values must be positive; raises [Invalid_argument] otherwise. *)

val with_r : t -> float -> t

val omega_c : t -> float
val f_c : t -> float
val q : t -> float

val h : t -> omega:float -> Numerics.Cx.t
val mag : t -> omega:float -> float
val phase : t -> omega:float -> float
(** [phi_d] in radians, in (-pi/2, pi/2). *)

val omega_of_phase : t -> phi_d:float -> float
(** Inverse of {!phase}: the unique positive frequency at which the tank
    contributes [phi_d]. Requires [|phi_d| < pi/2] (raises
    [Invalid_argument]). *)

val circle_point : t -> b_center:Numerics.Cx.t -> phi_d:float -> Numerics.Cx.t
(** Circle property (§VI-B1): given the output phasor [b_center] at the
    centre frequency, the output phasor at the frequency where the tank
    phase is [phi_d] is the projection
    [b_center * cos(phi_d) * exp(j phi_d)]. *)

val circle_locus : t -> b_center:Numerics.Cx.t -> n:int -> Numerics.Cx.t array
(** [n] samples of the full circle swept by the output phasor as the
    operating frequency runs over (0, infinity) — for the Fig. 20
    visualization. *)

val pp : Format.formatter -> t -> unit
