(** Lock-point solving: intersections of [C_{T_f,1}] with the phase curve
    (§III-C, Fig. 7) and their stability. *)

type point = {
  phi : float;  (** injection phase relative to the fundamental, rad *)
  a : float;  (** locked oscillation amplitude, V *)
  stable : bool;
  trace : float;  (** trace of the restoring-flow Jacobian *)
  det : float;  (** determinant of the restoring-flow Jacobian *)
}

val residuals :
  ?points:int -> ?reduction:Describing_function.reduction ->
  Nonlinearity.t -> n:int -> r:float -> vi:float ->
  phi_d:float -> float * float -> float * float
(** [(T_f - 1, sin(angle(-I_1) + phi_d))] at [(phi, a)] — the exact
    (non-gridded) residual pair that {!refine} drives to zero. *)

val classify :
  ?points:int -> ?reduction:Describing_function.reduction ->
  Nonlinearity.t -> n:int -> r:float -> vi:float ->
  phi_d:float -> phi:float -> a:float -> point
(** Stability from the reduced phase/amplitude flow
    [dA/dt ∝ T_F - 1], [dphi/dt ∝ -(angle(-I_1) + phi_d)]:
    stable iff the Jacobian has negative trace and positive determinant.
    This is the rigorous form of the paper's slope-comparison rule
    (§VI-B3). *)

val find :
  ?points:int -> Grid.t -> phi_d:float -> point list
(** All lock points at tank phase [phi_d]: walks the gridded [C_{T_f,1}]
    polylines, brackets sign changes of the (wrapped) phase residual along
    them, refines each with a damped 2-D Newton on the exact residuals,
    deduplicates, and classifies stability. Sorted by [phi]. The
    refinement quadratures run in the grid's own [reduction] mode. *)

val stable_exists : ?points:int -> Grid.t -> phi_d:float -> bool

val n_states : point -> n:int -> (float * float) list
(** The [n] oscillator states of a lock: physical oscillator phases
    [(psi_k, a)] with [psi_k = -phi/n + 2 pi k / n] (§VI-B4) — equally
    spaced by [2 pi / n]. *)
