module Cx = Numerics.Cx
module Df = Describing_function
module Angle = Numerics.Angle
module Roots = Numerics.Roots

type point = {
  phi : float;
  a : float;
  stable : bool;
  trace : float;
  det : float;
}

let residuals ?points ?reduction nl ~n ~r ~vi ~phi_d (phi, a) =
  if a <= 0.0 then (1e6, 1e6)
  else begin
    let i1 = Df.i1_two_tone ?points ?reduction nl ~n ~a ~vi ~phi in
    let m = Cx.neg i1 in
    let mag = Cx.abs m in
    let r1 = (r *. Cx.re m /. (a /. 2.0)) -. 1.0 in
    let r2 =
      if mag = 0.0 then 1e6
      else ((Cx.im m *. cos phi_d) +. (Cx.re m *. sin phi_d)) /. mag
    in
    (r1, r2)
  end

(* Reduced restoring flow (§VI-B3): dA/dt = F1 = T_F - 1, dphi/dt = F2 =
   -(angle(-I1) + phi_d). Stability = eigenvalues of d(F1,F2)/d(A,phi) in
   the left half plane <=> trace < 0 and det > 0. *)
let flow ?points ?reduction nl ~n ~r ~vi ~phi_d ~phi ~a =
  let i1 = Df.i1_two_tone ?points ?reduction nl ~n ~a ~vi ~phi in
  let m = Cx.neg i1 in
  let f1 = (2.0 *. r *. Cx.abs m *. cos phi_d /. a) -. 1.0 in
  let f2 = -.Angle.wrap_pi (Cx.arg m +. phi_d) in
  (f1, f2)

let classify ?points ?reduction nl ~n ~r ~vi ~phi_d ~phi ~a =
  let ha = 1e-5 *. (1.0 +. Float.abs a) in
  let hp = 1e-5 in
  let flow = flow ?points ?reduction nl ~n ~r ~vi ~phi_d in
  let f1_pa, f2_pa = flow ~phi ~a:(a +. ha) in
  let f1_ma, f2_ma = flow ~phi ~a:(a -. ha) in
  let f1_pp, f2_pp = flow ~phi:(phi +. hp) ~a in
  let f1_mp, f2_mp = flow ~phi:(phi -. hp) ~a in
  let j11 = (f1_pa -. f1_ma) /. (2.0 *. ha) in
  let j12 = (f1_pp -. f1_mp) /. (2.0 *. hp) in
  let j21 = (f2_pa -. f2_ma) /. (2.0 *. ha) in
  let j22 = (f2_pp -. f2_mp) /. (2.0 *. hp) in
  let trace = j11 +. j22 in
  let det = (j11 *. j22) -. (j12 *. j21) in
  { phi; a; stable = trace < 0.0 && det > 0.0; trace; det }

let refine ?points ?reduction nl ~n ~r ~vi ~phi_d ~phi0 ~a0 =
  let f = residuals ?points ?reduction nl ~n ~r ~vi ~phi_d in
  let ectx =
    if Obs.Event.enabled () then
      Some (Obs.Event.ctx ~cell:(phi0, a0) "shil.refine")
    else None
  in
  try Some (Roots.newton2d ~tol:1e-12 ?ectx ~f ~x0:(phi0, a0) ())
  with Roots.No_convergence _ -> None

let find ?points (g : Grid.t) ~phi_d =
  Obs.Span.with_ ~cat:"shil" ~name:"shil.solutions.find"
    ~attrs:[ ("phi_d", Printf.sprintf "%g" phi_d) ]
  @@ fun () ->
  let nl = g.nl and n = g.n and r = g.r and vi = g.vi in
  (* downstream probes quadrate in the same mode the grid was built in *)
  let reduction = g.reduction in
  let curves = Grid.t_f_curve g in
  (* residual of eq. 4 along the T_f = 1 curve, wrapped *)
  let phase_res phi a =
    let i1 = Grid.interp_i1 g ~phi ~a in
    Angle.wrap_pi (Cx.arg (Cx.neg i1) +. phi_d)
  in
  let candidates = ref [] in
  List.iter
    (fun (xs, ys) ->
      let m = Array.length xs in
      let prev = ref None in
      for k = 0 to m - 1 do
        let gk = phase_res xs.(k) ys.(k) in
        (match !prev with
        | Some (gp, kp) ->
          (* bracket only genuine crossings (avoid the +-pi wrap seam) *)
          if gp *. gk <= 0.0 && Float.abs (gp -. gk) < Float.pi /. 2.0 then begin
            let t = if gp = gk then 0.5 else gp /. (gp -. gk) in
            let phi0 = xs.(kp) +. (t *. (xs.(k) -. xs.(kp))) in
            let a0 = ys.(kp) +. (t *. (ys.(k) -. ys.(kp))) in
            if Obs.Event.enabled () then
              Obs.Event.emit
                (Obs.Event.Bracket
                   {
                     site = "shil.solutions.crossing";
                     lo = xs.(kp);
                     hi = xs.(k);
                     probe = phi0;
                     hit = true;
                   });
            candidates := (phi0, a0) :: !candidates
          end
        | None -> ());
        prev := Some (gk, k)
      done)
    curves;
  (* each candidate refines independently (a 2-D Newton iteration full of
     describing-function quadratures): fan them out, keeping candidate
     order so the downstream dedup sees the sequential ordering *)
  Obs.Metrics.incr ~by:(List.length !candidates) "shil.solutions.candidates";
  let refined =
    Numerics.Pool.parallel_map_array ~chunk:1
      (fun (phi0, a0) ->
        match refine ?points ~reduction nl ~n ~r ~vi ~phi_d ~phi0 ~a0 with
        | Some (phi, a) when a > 0.0 ->
          (* reject the spurious cos <= 0 branch *)
          let i1 = Df.i1_two_tone ?points ~reduction nl ~n ~a ~vi ~phi in
          let m = Cx.neg i1 in
          if Float.abs (Angle.wrap_pi (Cx.arg m +. phi_d)) < Float.pi /. 2.0
          then Some (Angle.wrap_two_pi phi, a)
          else None
        | Some _ | None -> None)
      (Array.of_list !candidates)
    |> Array.to_list
    |> List.filter_map Fun.id
  in
  Obs.Metrics.incr
    ~by:(List.length !candidates - List.length refined)
    "shil.solutions.refine_fails";
  (* deduplicate: two solutions are the same within small tolerances *)
  let dedup =
    List.fold_left
      (fun acc (phi, a) ->
        if
          List.exists
            (fun (phi', a') ->
              Angle.dist phi phi' < 1e-5 && Float.abs (a -. a') < 1e-7 *. (1.0 +. a))
            acc
        then acc
        else (phi, a) :: acc)
      [] refined
  in
  (* stability scan: 8 flow evaluations per point, independent per point *)
  let pts =
    Numerics.Pool.parallel_map_array ~chunk:1
      (fun (phi, a) -> classify ?points ~reduction nl ~n ~r ~vi ~phi_d ~phi ~a)
      (Array.of_list dedup)
    |> Array.to_list
  in
  Obs.Metrics.incr ~by:(List.length pts) "shil.solutions.classified";
  List.sort (fun p q -> Float.compare p.phi q.phi) pts

let stable_exists ?points g ~phi_d =
  List.exists (fun p -> p.stable) (find ?points g ~phi_d)

let n_states p ~n =
  List.init n (fun k ->
      let psi =
        Angle.wrap_two_pi
          ((-.p.phi /. float_of_int n)
          +. (2.0 *. Float.pi *. float_of_int k /. float_of_int n))
      in
      (psi, p.a))
