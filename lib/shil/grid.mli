(** Sampled describing-function field over the [(phi, A)] plane.

    This is the object the graphical procedure draws on: the complex
    [I_1(A, V_i, phi)] is evaluated once on a rectilinear grid, after
    which every curve the paper plots — [C_{T_f,1}], [C_{T_F,1}] and the
    isolines of [angle(-I_1)] — is a contour of a derived scalar field.
    Critically the grid does NOT depend on the operating frequency
    [omega_i], so a lock-range sweep reuses one grid (§III-C's
    "invariance of [C_{T_f,1}]"). *)

type t = {
  nl : Nonlinearity.t;
  n : int;  (** sub-harmonic order *)
  r : float;  (** tank resistance *)
  vi : float;  (** injection phasor magnitude *)
  phis : float array;
  amps : float array;
  i1 : Numerics.Cx.t array array;  (** [i1.(i).(j)] at [(phis.(i), amps.(j))] *)
  points : int;  (** quadrature points used per sample *)
  reduction : Describing_function.reduction;
      (** quadrature mode the grid was sampled with; downstream solvers
          ([Solutions], [Lock_range]) inherit it for their own
          describing-function probes *)
  failures : Resilience.Summary.t;
      (** rows that failed to evaluate (typed holes, NaN-filled in
          [i1]); clean grids have [Resilience.Summary.is_clean] *)
}

val cache_key :
  reduction:Describing_function.reduction -> nl_key:string -> n:int ->
  r:float -> vi:float -> p_lo:float -> p_hi:float -> n_phi:int -> n_amp:int ->
  a_lo:float -> a_hi:float -> points:int -> Cache.Key.t
(** The content address of one grid evaluation (exposed for tests and
    tooling). [`Exact] keys are version 1 — unchanged since the scalar
    kernel, because the batch rewrite is bit-identical; [`Symmetry] keys
    are version 2 with a [red=sym] field. *)

val sample :
  ?points:int -> ?phi_range:float * float -> ?n_phi:int -> ?n_amp:int ->
  ?reduction:Describing_function.reduction ->
  Nonlinearity.t -> n:int -> r:float -> vi:float -> a_range:float * float ->
  unit -> t
(** Defaults: [phi_range = (0, 2 pi)], [n_phi = 121], [n_amp = 101],
    [points = 512], [reduction = `Exact]. [a_range] should bracket the
    expected lock amplitudes (e.g. 40%%–120%% of the natural amplitude);
    raises [Invalid_argument] on fewer than 2 samples per axis or a
    non-positive/empty [a_range].

    [`Exact] grids are bit-identical to the historical scalar kernel.
    [~reduction:`Symmetry] grids are tolerance-grade: for an odd
    nonlinearity and odd [n] each row integrates half a period, and over
    the default symmetric [phi_range] only half the rows are computed —
    the rest are conjugate mirrors ([I1(2π−φ) = conj I1(φ)]).

    A row whose evaluation raises becomes a NaN-filled typed hole in
    [failures] (counter [resilience.grid.holes]) instead of aborting
    the sweep — the contour extractors skip NaN cells — unless
    {!Resilience.Policy.set_fail_fast} is on. Fault site [grid-point]
    (by computed-row index) injects row failures for testing; under
    [`Symmetry] mirroring, a failed source row also holes its mirror. *)

val t_f_field : t -> float array array
(** [T_f(phi, A) - 1] (eq. 3 residual). *)

val phase_field : t -> phi_d:float -> float array array
(** [sin(angle(-I_1) + phi_d)] — zero on the eq. 4 curve; pair with
    {!phase_cos_ok} to discard the [cos <= 0] branch. *)

val arg_minus_i1_field : t -> float array array

val phase_cos_ok : t -> phi_d:float -> float * float -> bool
(** Midpoint predicate for {!Contour.filter_segments}: true when
    [cos(angle(-I_1) + phi_d) > 0] at the (bilinearly interpolated) grid
    point. *)

val interp_i1 : t -> phi:float -> a:float -> Numerics.Cx.t
(** Bilinear interpolation of the sampled [I_1]; clamped at the grid
    boundary. *)

val t_f_curve : t -> (float array * float array) list
(** The [C_{T_f,1}] polylines in the [(phi, A)] plane. *)

val phase_curve : t -> phi_d:float -> (float array * float array) list
(** The [C_{angle(-I_1), -phi_d}] polylines (spurious branch removed). *)
