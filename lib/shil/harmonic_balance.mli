(** Multi-harmonic harmonic balance for the free-running reduced
    oscillator — the "more harmonics" generalisation of the paper's
    single-harmonic describing-function analysis (§II is exactly the
    [K = 1] case of this solver).

    The steady state is written [v(t) = sum_{k=1..K} 2 Re (V_k e^{jkwt})]
    with [V_1] pinned real (phase reference); the unknowns are [V_1],
    [V_2..V_K] (complex) and the oscillation frequency [w]. Each harmonic
    must satisfy KCL through the tank:
    [Y(jkw) V_k + I_k = 0], where [I_k] are the Fourier coefficients of
    [f(v(t))] and [Y] is the tank admittance. (The DC component is
    absorbed by the inductor, which forces [V_0 = 0].)

    Uses: predicting the harmonic-distortion-induced frequency shift
    (Groszkowski) that the describing function neglects, and quantifying
    the accuracy of the [K = 1] truncation (ablation A3). *)

type solution = {
  omega : float;  (** oscillation frequency, rad/s *)
  coeffs : Numerics.Cx.t array;  (** [coeffs.(k)] is [V_k]; [coeffs.(0) = 0] *)
  k_max : int;
  residual : float;  (** final KCL residual, A *)
}

val solve :
  ?k_max:int -> ?samples:int -> ?max_iter:int -> ?tol:float ->
  Nonlinearity.t -> tank:Tank.t -> solution
(** Newton on the harmonic-balance system, warm-started from the
    describing-function solution ([V_1 = A/2] at [w_c]). Defaults:
    [k_max = 7], [samples = 256] time points per period, [tol = 1e-12]
    (relative residual). Raises {!Resilience.Oshil_error.Error} with
    kind [no-oscillation] when the oscillator does not start,
    [singular-system] on a singular Jacobian and [solver-divergence]
    when the iteration stalls; [Invalid_argument] if [k_max < 1]. *)

val amplitude : solution -> float
(** Fundamental amplitude [2 |V_1|] (the describing function's [A]). *)

val frequency : solution -> float
(** Oscillation frequency in Hz — includes the Groszkowski shift. *)

val waveform : solution -> theta:float -> float
(** Reconstructs [v] at phase [theta] (radians). *)

val thd : solution -> float
(** Total harmonic distortion: [sqrt (sum_{k>=2} |V_k|^2) / |V_1|]. *)
