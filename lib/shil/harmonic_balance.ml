module Cx = Numerics.Cx
module Linalg = Numerics.Linalg

type solution = {
  omega : float;
  coeffs : Cx.t array;
  k_max : int;
  residual : float;
}

(* unknown vector layout: [ V1_re; V2_re; V2_im; ...; VK_re; VK_im; omega ] *)
let pack_size k_max = 1 + (2 * (k_max - 1)) + 1

let unpack k_max u =
  let coeffs = Array.make (k_max + 1) Cx.zero in
  coeffs.(1) <- Cx.of_float u.(0);
  for k = 2 to k_max do
    let base = 1 + (2 * (k - 2)) in
    coeffs.(k) <- Cx.make u.(base) u.(base + 1)
  done;
  (coeffs, u.(pack_size k_max - 1))

let admittance (tank : Tank.t) omega k =
  let w = float_of_int k *. omega in
  Cx.add
    (Cx.add (Cx.of_float (1.0 /. tank.r)) (Cx.make 0.0 (w *. tank.c)))
    (Cx.div Cx.one (Cx.make 0.0 (w *. tank.l)))

let residual_vec nl tank ~k_max ~samples u =
  let coeffs, omega = unpack k_max u in
  if omega <= 0.0 then Array.make (pack_size k_max) 1.0
  else begin
    (* sample v over one period and take the FFT of f(v) *)
    let i_samples =
      Array.init samples (fun s ->
          let theta = 2.0 *. Float.pi *. float_of_int s /. float_of_int samples in
          let v = ref 0.0 in
          for k = 1 to k_max do
            v :=
              !v
              +. (2.0
                 *. ((Cx.re coeffs.(k) *. cos (float_of_int k *. theta))
                    -. (Cx.im coeffs.(k) *. sin (float_of_int k *. theta))))
          done;
          Nonlinearity.eval nl !v)
    in
    let r = Array.make (pack_size k_max) 0.0 in
    (* scale the equations to volts so the Newton is well conditioned *)
    let z_scale = (tank : Tank.t).r in
    for k = 1 to k_max do
      let ik = Numerics.Fourier.coeff_sampled i_samples ~k in
      let kcl = Cx.add (Cx.mul (admittance tank omega k) coeffs.(k)) ik in
      if k = 1 then begin
        r.(0) <- z_scale *. Cx.re kcl;
        r.(pack_size k_max - 1) <- z_scale *. Cx.im kcl
      end
      else begin
        let base = 1 + (2 * (k - 2)) in
        r.(base) <- z_scale *. Cx.re kcl;
        r.(base + 1) <- z_scale *. Cx.im kcl
      end
    done;
    r
  end

let solve ?(k_max = 7) ?(samples = 256) ?(max_iter = 80) ?(tol = 1e-12) nl
    ~tank =
  if k_max < 1 then invalid_arg "Harmonic_balance.solve: k_max >= 1";
  let r = (tank : Tank.t).r in
  let a0 =
    match Natural.predicted_amplitude nl ~r with
    | Some a -> a
    | None ->
      Resilience.Oshil_error.raise_ Shil ~phase:"harmonic-balance"
        No_oscillation "oscillator does not start"
        ~context:[ ("r", Printf.sprintf "%.6g" r) ]
        ~remedy:"check that the small-signal loop gain exceeds 1/R"
  in
  let m = pack_size k_max in
  let u = Array.make m 0.0 in
  u.(0) <- a0 /. 2.0;
  u.(m - 1) <- Tank.omega_c tank;
  let scale c = if c = m - 1 then Tank.omega_c tank else a0 in
  let res_norm v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 v in
  let converged = ref false in
  let it = ref 0 in
  let last_res = ref infinity in
  while (not !converged) && !it < max_iter do
    incr it;
    let rv = residual_vec nl tank ~k_max ~samples u in
    let rn = res_norm rv in
    last_res := rn;
    if rn < tol *. a0 then converged := true
    else begin
      let jac = Array.make_matrix m m 0.0 in
      for c = 0 to m - 1 do
        let h = 1e-7 *. scale c in
        let u' = Array.copy u in
        u'.(c) <- u'.(c) +. h;
        let rv' = residual_vec nl tank ~k_max ~samples u' in
        for rr = 0 to m - 1 do
          jac.(rr).(c) <- (rv'.(rr) -. rv.(rr)) /. h
        done
      done;
      match
        if Resilience.Fault.fire "hb-singular" then raise Linalg.Singular
        else Linalg.solve jac rv
      with
      | exception Linalg.Singular ->
        Resilience.Oshil_error.raise_ Shil ~phase:"harmonic-balance"
          Singular_system "singular harmonic-balance Jacobian"
          ~context:
            [
              ("iteration", string_of_int !it);
              ("residual", Printf.sprintf "%.3g" !last_res);
            ]
          ~remedy:"perturb the initial amplitude or reduce k_max"
      | du ->
        for c = 0 to m - 1 do
          (* clamp to keep the iteration inside the basin *)
          let lim = 0.3 *. scale c in
          let d = if Float.abs du.(c) > lim then Float.copy_sign lim du.(c) else du.(c) in
          u.(c) <- u.(c) -. d
        done
    end
  done;
  if not !converged then
    Resilience.Oshil_error.raise_ Shil ~phase:"harmonic-balance"
      Solver_divergence
      (Printf.sprintf "residual %.3g after %d iterations" !last_res max_iter)
      ~context:
        [
          ("iterations", string_of_int max_iter);
          ("residual", Printf.sprintf "%.3g" !last_res);
        ]
      ~remedy:"raise max_iter, loosen tol or reduce k_max";
  let coeffs, omega = unpack k_max u in
  { omega; coeffs; k_max; residual = !last_res }

let amplitude s = 2.0 *. Cx.abs s.coeffs.(1)
let frequency s = s.omega /. (2.0 *. Float.pi)

let waveform s ~theta =
  let v = ref 0.0 in
  for k = 1 to s.k_max do
    v := !v +. (2.0 *. Cx.re (Cx.mul s.coeffs.(k) (Cx.exp_j (float_of_int k *. theta))))
  done;
  !v

let thd s =
  let high = ref 0.0 in
  for k = 2 to s.k_max do
    high := !high +. (Cx.abs s.coeffs.(k) ** 2.0)
  done;
  sqrt !high /. Cx.abs s.coeffs.(1)
