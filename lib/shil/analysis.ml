type oscillator = { nl : Nonlinearity.t; tank : Tank.t }

let src = Logs.Src.create "oshil.shil" ~doc:"SHIL analysis pre-flight"

module Log = (val Logs.src_log src : Logs.LOG)

let preflight ?points ?n_phi ?n_amp ?a_range osc ~n ~vi =
  let tank = (osc.tank : Tank.t) in
  let cfg =
    Check.Shil.config ?a_range ?n_phi ?n_amp ?points ~r:tank.r ~l:tank.l
      ~c:tank.c ~n ~vi ()
  in
  let v_scale =
    match a_range with Some (_, hi) -> Float.max hi vi | None -> Float.max 1.0 vi
  in
  Check.Shil.check ~nl:(Nonlinearity.eval osc.nl) ~v_scale cfg

let emit (d : Check.Diagnostic.t) =
  match d.severity with
  | Check.Diagnostic.Error | Check.Diagnostic.Warning ->
    Log.warn (fun m -> m "%a" Check.Diagnostic.pp d)
  | Check.Diagnostic.Info -> Log.info (fun m -> m "%a" Check.Diagnostic.pp d)

let gate ?(mode = `Enforce) ?points ?n_phi ?n_amp ?a_range osc ~n ~vi =
  match (mode : Check.Diagnostic.gate_mode) with
  | `Off -> ()
  | (`Enforce | `Warn) as mode ->
    Check.Diagnostic.gate ~mode ~emit
      (preflight ?points ?n_phi ?n_amp ?a_range osc ~n ~vi)

type shil_report = {
  osc : oscillator;
  n : int;
  vi : float;
  natural : Natural.solution list;
  natural_amplitude : float option;
  grid : Grid.t;
  locks_at_center : Solutions.point list;
  lock_range : Lock_range.t;
  injection_harmonic : Numerics.Cx.t option;
}

let run ?(check = `Enforce) ?points ?n_phi ?n_amp ?a_range ?reduction osc ~n ~vi
    =
  gate ~mode:check ?points ?n_phi ?n_amp ?a_range osc ~n ~vi;
  Obs.Span.with_ ~cat:"shil" ~name:"shil.analysis.run"
    ~attrs:[ ("n", string_of_int n); ("vi", Printf.sprintf "%g" vi) ]
  @@ fun () ->
  let r = (osc.tank : Tank.t).r in
  let natural =
    Obs.Span.with_ ~cat:"shil" ~name:"shil.analysis.natural" (fun () ->
        Natural.solve ?points osc.nl ~r)
  in
  let natural_amplitude =
    List.fold_left
      (fun acc (s : Natural.solution) -> if s.stable then Some s.a else acc)
      None natural
  in
  let a_range =
    match (a_range, natural_amplitude) with
    | Some range, _ -> range
    | None, Some a -> (0.25 *. a, 1.25 *. a)
    | None, None ->
      Resilience.Oshil_error.raise_ Shil ~phase:"analysis" No_oscillation
        "oscillator has no stable natural oscillation"
        ~remedy:"supply ~a_range explicitly"
  in
  (* cooperative deadline probes between pipeline phases: a request
     whose budget expires unwinds with a typed [budget-exhausted] error
     at the next phase boundary instead of running to completion *)
  Resilience.Deadline.check Shil ~phase:"analysis.grid";
  let grid =
    Grid.sample ?points ?n_phi ?n_amp ?reduction osc.nl ~n ~r ~vi ~a_range ()
  in
  Resilience.Deadline.check Shil ~phase:"analysis.solutions";
  let locks_at_center = Solutions.find ?points grid ~phi_d:0.0 in
  Resilience.Deadline.check Shil ~phase:"analysis.lock-range";
  let lock_range = Lock_range.predict ?points grid ~tank:osc.tank in
  (* diagnostic: the n-th harmonic of the current at the reference
     amplitude — how much of the injected tone the nonlinearity itself
     regenerates. Uses the amplitude the study actually centred on. *)
  let injection_harmonic =
    let ref_a =
      match locks_at_center with
      | (p : Solutions.point) :: _ -> Some p.a
      | [] -> natural_amplitude
    in
    Option.map
      (fun a ->
        Describing_function.ik_two_tone ?points ?reduction osc.nl ~n ~a ~vi
          ~phi:0.0 ~k:n)
      ref_a
  in
  {
    osc;
    n;
    vi;
    natural;
    natural_amplitude;
    grid;
    locks_at_center;
    lock_range;
    injection_harmonic;
  }

let locks_at ?points report ~f_inj =
  let omega_i = 2.0 *. Float.pi *. f_inj /. float_of_int report.n in
  let phi_d = Tank.phase report.osc.tank ~omega:omega_i in
  Solutions.find ?points report.grid ~phi_d

let pp ppf r =
  let open Format in
  fprintf ppf "@[<v>SHIL analysis: %s, n = %d, |Vi| = %g@,%a@,"
    (Nonlinearity.name r.osc.nl) r.n r.vi Tank.pp r.osc.tank;
  (match r.natural_amplitude with
  | Some a -> fprintf ppf "natural oscillation: A = %.6g V@," a
  | None -> fprintf ppf "no stable natural oscillation@,");
  fprintf ppf "locks at centre frequency:@,";
  List.iter
    (fun (p : Solutions.point) ->
      fprintf ppf "  phi = %.4f rad, A = %.6g V, %s@," p.phi p.a
        (if p.stable then "stable" else "unstable"))
    r.locks_at_center;
  (match r.injection_harmonic with
  | Some z ->
    fprintf ppf "injection harmonic |I%d| = %.6g A@," r.n (Numerics.Cx.abs z)
  | None -> ());
  fprintf ppf "%a@]" Lock_range.pp r.lock_range
