type t = {
  phi_d_max : float;
  f_osc_low : float;
  f_osc_high : float;
  f_inj_low : float;
  f_inj_high : float;
  delta_f_inj : float;
  at_center : Solutions.point list;
  failures : Resilience.Summary.t;
}

(* The boundary bisection with typed holes: a probe that raises is
   recorded and conservatively counted as unstable, shrinking (never
   widening) the predicted range. *)
let boundary_with_failures ?points ?(phi_d_cap = 1.4) ?(tol = 1e-5) g =
  Obs.Span.with_ ~cat:"shil" ~name:"shil.lockrange.boundary" @@ fun () ->
  let holes = ref [] and attempts = ref 0 in
  let stable phi_d =
    incr attempts;
    Obs.Metrics.incr "shil.lockrange.probes";
    match
      if Resilience.Deadline.expired () then
        raise
          (Resilience.Oshil_error.Error
             (Resilience.Deadline.error Shil ~phase:"lockrange"))
      else if Resilience.Fault.fire "lock-probe" then
        raise
          (Resilience.Oshil_error.Error
             (Resilience.Fault.error ~site:"lock-probe" Shil ~phase:"lockrange"))
      else Solutions.stable_exists ?points g ~phi_d
    with
    | s -> s
    | exception e ->
      let err = Resilience.Oshil_error.of_exn Shil ~phase:"lockrange" e in
      if Resilience.Policy.fail_fast () then
        raise (Resilience.Oshil_error.Error err);
      Obs.Metrics.incr "resilience.lockrange.holes";
      holes :=
        { Resilience.Summary.site = Printf.sprintf "phi_d=%.6g" phi_d;
          error = err }
        :: !holes;
      false
  in
  let phi_d_max =
    if not (stable 0.0) then 0.0
    else begin
      (* grow an upper bound first: the boundary is usually well inside *)
      let probe ~lo ~hi x =
        let s = stable x in
        if Obs.Event.enabled () then
          Obs.Event.emit
            (Obs.Event.Bracket
               { site = "shil.lockrange.phi_d"; lo; hi; probe = x; hit = s });
        s
      in
      let rec find_unstable lo hi =
        if hi >= phi_d_cap then (lo, phi_d_cap)
        else if probe ~lo ~hi hi then
          find_unstable hi (Float.min phi_d_cap (hi *. 2.0))
        else (lo, hi)
      in
      let lo0, hi0 = find_unstable 0.0 0.05 in
      if probe ~lo:lo0 ~hi:hi0 hi0 then hi0 (* stable all the way to the cap *)
      else begin
        let lo = ref lo0 and hi = ref hi0 in
        while !hi -. !lo > tol do
          let mid = 0.5 *. (!lo +. !hi) in
          if probe ~lo:!lo ~hi:!hi mid then lo := mid else hi := mid
        done;
        0.5 *. (!lo +. !hi)
      end
    end
  in
  (phi_d_max, Resilience.Summary.make ~attempted:!attempts (List.rev !holes))

let phi_d_boundary ?points ?phi_d_cap ?tol g =
  fst (boundary_with_failures ?points ?phi_d_cap ?tol g)

let predict ?points ?phi_d_cap ?tol (g : Grid.t) ~tank =
  if Float.abs ((tank : Tank.t).r -. g.r) > 1e-9 *. g.r then
    invalid_arg "Lock_range.predict: grid and tank R differ";
  Obs.Span.with_ ~cat:"shil" ~name:"shil.lockrange.predict" @@ fun () ->
  let phi_d_max, probe_failures =
    boundary_with_failures ?points ?phi_d_cap ?tol g
  in
  (* holes from the underlying grid travel with the prediction *)
  let failures = Resilience.Summary.merge g.failures probe_failures in
  let two_pi = 2.0 *. Float.pi in
  let n = float_of_int g.n in
  if phi_d_max <= 0.0 then
    {
      phi_d_max = 0.0;
      f_osc_low = Float.nan;
      f_osc_high = Float.nan;
      f_inj_low = Float.nan;
      f_inj_high = Float.nan;
      delta_f_inj = 0.0;
      at_center = Solutions.find ?points g ~phi_d:0.0;
      failures;
    }
  else begin
    (* phi_d > 0 below resonance: omega(+phi_d_max) is the lower edge *)
    let w_low = Tank.omega_of_phase tank ~phi_d:phi_d_max in
    let w_high = Tank.omega_of_phase tank ~phi_d:(-.phi_d_max) in
    let f_osc_low = w_low /. two_pi and f_osc_high = w_high /. two_pi in
    {
      phi_d_max;
      f_osc_low;
      f_osc_high;
      f_inj_low = n *. f_osc_low;
      f_inj_high = n *. f_osc_high;
      delta_f_inj = n *. (f_osc_high -. f_osc_low);
      at_center = Solutions.find ?points g ~phi_d:0.0;
      failures;
    }
  end

let pp ppf t =
  Format.fprintf ppf
    "@[<v>lock range: phi_d_max = %.6g rad@,\
     oscillator band: [%.8g, %.8g] Hz@,\
     injection band:  [%.8g, %.8g] Hz (delta = %.6g Hz)@]"
    t.phi_d_max t.f_osc_low t.f_osc_high t.f_inj_low t.f_inj_high
    t.delta_f_inj
