(** Memoryless nonlinearities [i = f(v)] — the negative-resistance element
    of the LC oscillator (Fig. 1b of the paper).

    The describing-function machinery only requires point evaluation; the
    derivative is used for small-signal checks and stability heuristics.

    Constructors validate their numeric domains ([neg_tanh] needs
    positive [g0]/[isat], [of_table] a well-formed table, [sample] at
    least two points) and raise [Invalid_argument] on violation. *)

type t

type batch_fn = src:float array -> dst:float array -> n:int -> unit
(** A fused slice evaluation: [dst.(i) <- f src.(i)] for [i < n]. Must
    support [src == dst] (slot [i] is read before it is written). *)

val make :
  ?name:string -> ?key:string -> ?df:(float -> float) -> ?batch:batch_fn ->
  ?odd:bool -> (float -> float) -> t
(** [make f] wraps a function; missing [df] is computed by central
    differences with a relative step of 1e-6. [key], when given, declares
    a canonical cache identity (see {!cache_key}) — only supply it if the
    string fully determines [f] bit-for-bit. [batch], when given, must be
    bit-identical to mapping [f] (it feeds cached, key-versioned
    quadratures). [odd] (default [false]) declares the mathematical
    symmetry [f (-v) = -f v], which licenses the half-period quadrature
    reduction of [Describing_function]'s [`Symmetry] mode — only set it
    if the symmetry is exact. *)

val name : t -> string

val cache_key : t -> string option
(** Canonical identity for content-addressed caching: equal keys
    guarantee bitwise-equal currents for every input. [None] (custom
    closures, caller-supplied tunnel models) means "uncacheable" and
    makes every kernel keyed on this nonlinearity bypass the cache.
    Built-in constructors ([neg_tanh], [cubic], the default
    [tunnel_diode], [of_table]) always carry keys; [shift_bias] and
    [scale_current] derive wrapped keys from the inner one. *)

val eval : t -> float -> float
val deriv : t -> float -> float

val eval_batch : ?n:int -> t -> src:float array -> dst:float array -> unit
(** [eval_batch t ~src ~dst] stores [eval t src.(i)] into [dst.(i)] for
    [i < n] ([n] defaults to [Array.length src]) — bit-identical to the
    scalar loop, whether it dispatches to a fused batch implementation
    ([neg_tanh], [cubic], the built-in [tunnel_diode], [of_table], and
    [shift_bias]/[scale_current] wrappers thereof) or falls back to
    per-element [eval]. [Numerics.Kernel.set_batch_enabled false] forces
    the fallback, which benches use as the scalar reference. Supports
    [src == dst]. *)

val eval_batch_fast : ?n:int -> t -> src:float array -> dst:float array -> unit
(** Tolerance-grade variant: uses a faster, not-bit-identical batch
    implementation when one exists (SIMD tanh for [neg_tanh] on capable
    hosts), [eval_batch] behaviour otherwise. Results may differ from
    [eval] in the last ulps — only the symmetry-reduced quadratures
    (bumped cache-key versions) consume this. *)

val odd : t -> bool
(** Whether [f (-v) = -f v] holds mathematically ([neg_tanh], [cubic],
    and [scale_current] of an odd nonlinearity). Gates the half-period
    reduction; [false] is always safe. *)

val neg_tanh : g0:float -> isat:float -> t
(** The paper's illustration nonlinearity: [f v = -. isat *. tanh (g0 *. v
    /. isat)]. Small-signal conductance [-g0]; saturation current [isat]. *)

val cubic : g1:float -> g3:float -> t
(** Van der Pol cubic [f v = -. g1 *. v +. g3 *. v ** 3.] — the classic
    textbook negative resistance, used as an analytic cross-check (its
    describing function is known in closed form). *)

val tunnel_diode :
  ?params:(float -> float * float) -> bias:float -> unit -> t
(** Bias-shifted tunnel diode: [f v = i_td (bias + v) - i_td bias], the
    paper's §IV-B treatment (the tank only sees the incremental current).
    [params] defaults to the paper's appendix model; supply a custom
    [v -> (i, di/dv)] to override. *)

val of_table : ?name:string -> vs:float array -> is:float array -> unit -> t
(** Monotone-cubic (PCHIP) interpolation of a DC-sweep table, the output
    of the paper's Fig. 11b extraction flow. Linear extrapolation beyond
    the table. *)

val shift_bias : t -> float -> t
(** [shift_bias nl vb] is [fun v -> eval nl (vb +. v) -. eval nl vb]. *)

val scale_current : t -> float -> t
(** Multiplies the output current (e.g. flipping sign or changing units). *)

val sample : t -> v_min:float -> v_max:float -> n:int -> float array * float array
(** Uniform sampling, for plotting. *)
