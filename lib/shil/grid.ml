module Cx = Numerics.Cx
module Df = Describing_function
module Kernel = Numerics.Kernel

type t = {
  nl : Nonlinearity.t;
  n : int;
  r : float;
  vi : float;
  phis : float array;
  amps : float array;
  i1 : Cx.t array array;
  points : int;
  reduction : Df.reduction;
  failures : Resilience.Summary.t;
}

(* Content address of one grid evaluation: every input that can move a
   single output bit is a field. [phis]/[amps] are derived from the
   ranges by [Kernel.linspace], so only the ranges need to appear. The
   [`Exact] key stays at version 1: the batch kernels reproduce the
   scalar quadrature bit for bit, so grids cached before the batch
   rewrite remain valid. [`Symmetry] grids are tolerance-grade and hash
   under version 2 plus an explicit reduction field. *)
let cache_key ~reduction ~nl_key ~n ~r ~vi ~p_lo ~p_hi ~n_phi ~n_amp ~a_lo
    ~a_hi ~points =
  let open Cache.Key in
  let fields =
    [
      str "nl" nl_key;
      int "n" n;
      float "r" r;
      float "vi" vi;
      float "p_lo" p_lo;
      float "p_hi" p_hi;
      int "n_phi" n_phi;
      int "n_amp" n_amp;
      float "a_lo" a_lo;
      float "a_hi" a_hi;
      int "points" points;
    ]
  in
  match reduction with
  | `Exact -> v ~kind:"shil.grid" ~version:1 fields
  | `Symmetry -> v ~kind:"shil.grid" ~version:2 (fields @ [ str "red" "sym" ])

let sample ?(points = 512) ?(phi_range = (0.0, 2.0 *. Float.pi)) ?(n_phi = 121)
    ?(n_amp = 101) ?(reduction = `Exact) nl ~n ~r ~vi ~a_range () =
  if n_phi < 2 || n_amp < 2 then invalid_arg "Grid.sample: need >= 2 samples";
  let a_lo, a_hi = a_range in
  if a_lo <= 0.0 || a_hi <= a_lo then invalid_arg "Grid.sample: bad a_range";
  let p_lo, p_hi = phi_range in
  Obs.Span.with_ ~cat:"shil" ~name:"shil.grid.sample"
    ~attrs:
      [
        ("n_phi", string_of_int n_phi);
        ("n_amp", string_of_int n_amp);
        ("points", string_of_int points);
      ]
  @@ fun () ->
  let phis = Kernel.linspace p_lo p_hi n_phi in
  let amps = Kernel.linspace a_lo a_hi n_amp in
  (* cacheable iff the nonlinearity carries a canonical identity; the
     stored value is just the [i1] matrix — [phis]/[amps] are rebuilt
     deterministically above, and only clean grids (no typed holes) are
     ever stored, so a hit is bit-identical to a cold clean run *)
  let key =
    Option.map
      (fun nl_key ->
        cache_key ~reduction ~nl_key ~n ~r ~vi ~p_lo ~p_hi ~n_phi ~n_amp ~a_lo
          ~a_hi ~points)
      (Nonlinearity.cache_key nl)
  in
  let cached =
    match key with
    | None -> None
    | Some key ->
      (Cache.Store.find ~key ~decode:Cache.Store.of_marshal ()
        : Cx.t array array option)
  in
  match cached with
  | Some i1 ->
    {
      nl;
      n;
      r;
      vi;
      phis;
      amps;
      i1;
      points;
      reduction;
      failures = Resilience.Summary.make ~attempted:n_phi [];
    }
  | None ->
  (* hot loop: the trig tables shared by every (phi, A) sample come from
     the process-wide cache, and the per-row quadrature runs on the flat
     batch kernels — waveform synthesis into per-domain scratch buffers,
     one fused nonlinearity batch, one fused projection. On the [`Exact]
     path this performs the historical scalar operations in the same
     order, so each cell is bit-identical to Df.i1_two_tone's exact
     quadrature structure (and to the pre-batch implementation). *)
  let cos_t, sin_t = Numerics.Trig_tables.get ~points ~k:1 in
  let cos_nt, sin_nt = Numerics.Trig_tables.get ~points ~k:n in
  let exact = match reduction with `Exact -> true | `Symmetry -> false in
  (* [`Symmetry]: odd f and odd n make the projected integrand
     π-periodic, so half the quadrature samples suffice (harmonic k = 1
     is odd) *)
  let half =
    (not exact) && Nonlinearity.odd nl && n land 1 = 1 && points land 1 = 0
  in
  let m = if half then points / 2 else points in
  let compute_row phi =
    (* one full row: n_amp amplitudes x m quadrature samples *)
    Obs.Metrics.incr ~by:(n_amp * m) "shil.grid.f_evals";
    let cp = 2.0 *. vi *. cos phi and sp = 2.0 *. vi *. sin phi in
    Kernel.with_bufs ~len:points 4 @@ fun bufs ->
    let inj_cos = bufs.(0)
    and inj_sin = bufs.(1)
    and wave = bufs.(2)
    and cur = bufs.(3) in
    for s = 0 to m - 1 do
      inj_cos.(s) <- cp *. cos_nt.(s);
      inj_sin.(s) <- sp *. sin_nt.(s)
    done;
    Array.map
      (fun a ->
        Kernel.synth_two_tone ~a ~cos_t ~inj_cos ~inj_sin ~dst:wave ~n:m;
        if exact then Nonlinearity.eval_batch ~n:m nl ~src:wave ~dst:cur
        else Nonlinearity.eval_batch_fast ~n:m nl ~src:wave ~dst:cur;
        let re, im = Kernel.dot2 ~n:m cur ~cos_t ~sin_t in
        Cx.make (re /. float_of_int m) (im /. float_of_int m))
      amps
  in
  (* [`Symmetry] over the default symmetric phi range also mirrors
     whole rows: I1(A, Vi, 2π − phi) = conj I1(A, Vi, phi) for any real
     f (the prop_conjugate identity), so only the first half of the phi
     rows is computed and the rest are conjugate copies. *)
  let mirror =
    (not exact) && p_lo = 0.0 && p_hi = 2.0 *. Float.pi && n_phi > 2
  in
  let n_work = if mirror then (n_phi + 1) / 2 else n_phi in
  (* rows of the (phi, A) grid are independent: fan them out over the
     default pool. Each row writes only its own slot, so the parallel
     result is bit-identical to the sequential Array.map. *)
  (* the submitting thread's deadline, captured by absolute value: pool
     workers run on their own domains and do not inherit it *)
  let deadline = Resilience.Deadline.save () in
  let work =
    Numerics.Pool.parallel_init n_work (fun idx ->
        if Resilience.Deadline.expired_abs deadline then
          Error (Resilience.Deadline.error Shil ~phase:"grid")
        else if Resilience.Fault.fire_at "grid-point" ~k:idx then
          Error (Resilience.Fault.error ~site:"grid-point" Shil ~phase:"grid")
        else
          match compute_row phis.(idx) with
          | row -> Ok row
          | exception e ->
            Error (Resilience.Oshil_error.of_exn Shil ~phase:"grid" e))
  in
  let rows =
    Array.init n_phi (fun idx ->
        if idx < n_work then work.(idx)
        else
          match work.(n_phi - 1 - idx) with
          | Ok row -> Ok (Array.map Cx.conj row)
          | Error e -> Error e)
  in
  (* failed rows become NaN holes: the contour extractors already treat
     NaN cells as "no curve here", so partial grids stay usable *)
  let holes = ref [] in
  let i1 =
    Array.mapi
      (fun idx result ->
        match result with
        | Ok row -> row
        | Error e ->
          if Resilience.Policy.fail_fast () then
            raise (Resilience.Oshil_error.Error e);
          Obs.Metrics.incr "resilience.grid.holes";
          holes :=
            { Resilience.Summary.site = Printf.sprintf "phi=%.6g" phis.(idx);
              error = e }
            :: !holes;
          Array.map (fun _ -> Cx.make Float.nan Float.nan) amps)
      rows
  in
  let failures = Resilience.Summary.make ~attempted:n_phi (List.rev !holes) in
  if Resilience.Summary.is_clean failures then
    Option.iter
      (fun key -> Cache.Store.add ~key ~encode:Cache.Store.to_marshal i1)
      key;
  { nl; n; r; vi; phis; amps; i1; points; reduction; failures }

let t_f_field g =
  Array.mapi
    (fun i _ ->
      Array.mapi
        (fun j a -> (-.g.r *. Cx.re g.i1.(i).(j) /. (a /. 2.0)) -. 1.0)
        g.amps)
    g.phis

let arg_minus_i1_field g =
  Array.map (fun row -> Array.map (fun z -> Cx.arg (Cx.neg z)) row) g.i1

let phase_field g ~phi_d =
  Array.map
    (fun row ->
      Array.map
        (fun z ->
          let m = Cx.neg z in
          (* sin(arg m + phi_d) computed without atan2 for smoothness *)
          let mag = Cx.abs m in
          if mag = 0.0 then nan
          else ((Cx.im m *. cos phi_d) +. (Cx.re m *. sin phi_d)) /. mag)
        row)
    g.i1

let clamp lo hi v = Float.max lo (Float.min hi v)

let interp_i1 g ~phi ~a =
  let locate grid v =
    let n = Array.length grid in
    let v = clamp grid.(0) grid.(n - 1) v in
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if grid.(mid) <= v then lo := mid else hi := mid
    done;
    let t = (v -. grid.(!lo)) /. (grid.(!hi) -. grid.(!lo)) in
    (!lo, t)
  in
  let i, ti = locate g.phis phi in
  let j, tj = locate g.amps a in
  let mix a b t = Cx.add (Cx.scale (1.0 -. t) a) (Cx.scale t b) in
  mix
    (mix g.i1.(i).(j) g.i1.(i + 1).(j) ti)
    (mix g.i1.(i).(j + 1) g.i1.(i + 1).(j + 1) ti)
    tj

let phase_cos_ok g ~phi_d (phi, a) =
  let m = Cx.neg (interp_i1 g ~phi ~a) in
  let mag = Cx.abs m in
  mag > 0.0
  && ((Cx.re m *. cos phi_d) -. (Cx.im m *. sin phi_d)) /. mag > 0.0

(* The C_{T_f,1} extraction is phi_d-invariant (§III-C), and a boundary
   search probes the SAME grid dozens of times with different phi_d —
   each probe re-deriving the field and re-running marching squares is
   pure overhead. One-slot memo keyed by grid identity: the access
   pattern is always "many probes against the latest grid". A lost race
   just recomputes an identical value. *)
let tf_memo = Atomic.make None

let t_f_curve g =
  match Atomic.get tf_memo with
  (* mlint: allow phys-eq — identity-keyed memo *)
  | Some (g', curves) when g' == g -> curves
  | _ ->
    let curves =
      Contour.polylines ~xs:g.phis ~ys:g.amps ~field:(t_f_field g) ~level:0.0
    in
    Atomic.set tf_memo (Some (g, curves));
    curves

let phase_curve g ~phi_d =
  let segs =
    Contour.segments ~xs:g.phis ~ys:g.amps ~field:(phase_field g ~phi_d)
      ~level:0.0
  in
  let segs = Contour.filter_segments (phase_cos_ok g ~phi_d) segs in
  let span =
    Float.max
      (g.phis.(Array.length g.phis - 1) -. g.phis.(0))
      (g.amps.(Array.length g.amps - 1) -. g.amps.(0))
  in
  Contour.chain ~tol:(1e-7 *. span) segs
