(** One-call convenience layer: a complete SHIL study of an oscillator
    described by a nonlinearity and a tank. *)

type oscillator = {
  nl : Nonlinearity.t;
  tank : Tank.t;
}

type shil_report = {
  osc : oscillator;
  n : int;
  vi : float;
  natural : Natural.solution list;
  natural_amplitude : float option;  (** largest stable natural amplitude *)
  grid : Grid.t;
  locks_at_center : Solutions.point list;  (** at [omega_i = omega_c] *)
  lock_range : Lock_range.t;
  injection_harmonic : Numerics.Cx.t option;
      (** [I_n(A, V_i, 0)] at the first centre-frequency lock amplitude
          (or the natural amplitude): how much of the injected tone the
          nonlinearity regenerates. [None] when no reference amplitude
          exists. *)
}

val preflight :
  ?points:int -> ?n_phi:int -> ?n_amp:int -> ?a_range:float * float ->
  oscillator -> n:int -> vi:float -> Check.Diagnostic.t list
(** The static pre-flight report for a study: tank well-posedness, order
    and injection sanity, grid geometry and pointwise probes of the
    nonlinearity (see [Check.Shil]). *)

val run :
  ?check:Check.Diagnostic.gate_mode -> ?points:int -> ?n_phi:int ->
  ?n_amp:int -> ?a_range:float * float ->
  ?reduction:Describing_function.reduction -> oscillator -> n:int ->
  vi:float -> shil_report
(** Natural-oscillation solve, describing-function grid around the
    natural amplitude (default [a_range] = 25%%–125%% of it), lock points
    at centre frequency, and lock range. [?reduction] selects the
    quadrature mode for the grid and every downstream solve (default
    [`Exact]; see {!Describing_function.reduction}).

    The configuration first passes {!preflight} under the [?check] gate
    policy (default [`Enforce]): errors raise [Check.Diagnostic.Failed],
    warnings go to the [oshil.shil] log source; [`Warn] never raises and
    [`Off] skips the analysis. Raises [Failure] when the oscillator does
    not oscillate (no stable [T_f = 1] solution) and no [a_range]
    override is supplied. *)

val locks_at :
  ?points:int -> shil_report -> f_inj:float -> Solutions.point list
(** Lock points when the injection frequency is [f_inj] (Hz); the
    oscillator then runs at [f_inj / n] and the tank phase adjusts
    accordingly. *)

val pp : Format.formatter -> shil_report -> unit
