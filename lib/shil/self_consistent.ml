module Cx = Numerics.Cx
module Df = Describing_function
module Angle = Numerics.Angle
module Roots = Numerics.Roots

type point = {
  chi : float;
  a : float;
  v_eff : Cx.t;
  stable : bool;
  trace : float;
  det : float;
}

let i_n ?points nl ~n ~a ~v =
  (* n-th harmonic coefficient with harmonic drive given as a phasor *)
  Df.ik_two_tone ?points nl ~n ~a ~vi:(Cx.abs v) ~phi:(Cx.arg v) ~k:n

let effective_v ?points ?(max_iter = 60) ?(tol = 1e-10) nl ~n ~a ~v_inj ~h_n =
  let v = ref v_inj in
  let converged = ref false in
  let it = ref 0 in
  while (not !converged) && !it < max_iter do
    incr it;
    let inh = i_n ?points nl ~n ~a ~v:!v in
    let v' = Cx.sub v_inj (Cx.mul inh h_n) in
    if Cx.abs (Cx.sub v' !v) < tol *. (1.0 +. Cx.abs v') then converged := true;
    (* mild damping guards rare strong-feedback cases *)
    v := Cx.add (Cx.scale 0.3 !v) (Cx.scale 0.7 v')
  done;
  !v

(* fundamental coefficient with the self-consistent harmonic *)
let i1_eff ?points nl ~n ~a ~v_inj ~h_n =
  let v = effective_v ?points nl ~n ~a ~v_inj ~h_n in
  (Df.i1_two_tone ?points nl ~n ~a ~vi:(Cx.abs v) ~phi:(Cx.arg v), v)

let residuals ?points nl ~n ~r ~vi ~phi_d ~h_n (chi, a) =
  if a <= 0.0 then (1e6, 1e6)
  else begin
    let v_inj = Cx.polar vi chi in
    let i1, _ = i1_eff ?points nl ~n ~a ~v_inj ~h_n in
    let m = Cx.neg i1 in
    let mag = Cx.abs m in
    let r1 = (r *. Cx.re m /. (a /. 2.0)) -. 1.0 in
    let r2 =
      if mag = 0.0 then 1e6
      else ((Cx.im m *. cos phi_d) +. (Cx.re m *. sin phi_d)) /. mag
    in
    (r1, r2)
  end

let flow ?points nl ~n ~r ~vi ~phi_d ~h_n ~chi ~a =
  let v_inj = Cx.polar vi chi in
  let i1, _ = i1_eff ?points nl ~n ~a ~v_inj ~h_n in
  let m = Cx.neg i1 in
  let f1 = (2.0 *. r *. Cx.abs m *. cos phi_d /. a) -. 1.0 in
  let f2 = -.Angle.wrap_pi (Cx.arg m +. phi_d) in
  (f1, f2)

let classify ?points nl ~n ~r ~vi ~phi_d ~h_n ~chi ~a ~v_eff =
  let ha = 1e-5 *. (1.0 +. Float.abs a) and hp = 1e-5 in
  let f1_pa, f2_pa = flow ?points nl ~n ~r ~vi ~phi_d ~h_n ~chi ~a:(a +. ha) in
  let f1_ma, f2_ma = flow ?points nl ~n ~r ~vi ~phi_d ~h_n ~chi ~a:(a -. ha) in
  let f1_pp, f2_pp = flow ?points nl ~n ~r ~vi ~phi_d ~h_n ~chi:(chi +. hp) ~a in
  let f1_mp, f2_mp = flow ?points nl ~n ~r ~vi ~phi_d ~h_n ~chi:(chi -. hp) ~a in
  let j11 = (f1_pa -. f1_ma) /. (2.0 *. ha) in
  let j12 = (f1_pp -. f1_mp) /. (2.0 *. hp) in
  let j21 = (f2_pa -. f2_ma) /. (2.0 *. ha) in
  let j22 = (f2_pp -. f2_mp) /. (2.0 *. hp) in
  let trace = j11 +. j22 in
  let det = (j11 *. j22) -. (j12 *. j21) in
  { chi; a; v_eff; stable = trace < 0.0 && det > 0.0; trace; det }

let natural_amplitude nl ~r =
  match Natural.predicted_amplitude nl ~r with
  | Some a -> a
  | None ->
    Resilience.Oshil_error.raise_ Shil ~phase:"self-consistent" No_oscillation
      "oscillator does not oscillate"
      ~context:[ ("r", Printf.sprintf "%.6g" r) ]
      ~remedy:"supply ~a_range explicitly or check the nonlinearity gain"

let find ?points ?(chi_scan = 48) ?a_range nl ~tank ~n ~vi ~omega_i =
  let r = (tank : Tank.t).r in
  let a_lo, a_hi =
    match a_range with
    | Some range -> range
    | None ->
      let a_nat = natural_amplitude nl ~r in
      (0.25 *. a_nat, 1.3 *. a_nat)
  in
  let phi_d = Tank.phase tank ~omega:omega_i in
  let h_n = Tank.h tank ~omega:(float_of_int n *. omega_i) in
  let res = residuals ?points nl ~n ~r ~vi ~phi_d ~h_n in
  (* coarse scan on chi: for each chi, track the A solving r1 = 0, then
     look for sign changes of r2 along that ridge *)
  let a_of_chi chi =
    let g a = fst (res (chi, a)) in
    match Roots.find_all ~f:g ~a:a_lo ~b:a_hi ~n:40 () with
    | [] -> None
    | roots -> Some (List.fold_left Float.max a_lo roots)
  in
  let candidates = ref [] in
  let prev = ref None in
  for k = 0 to chi_scan do
    let chi = 2.0 *. Float.pi *. float_of_int k /. float_of_int chi_scan in
    (match a_of_chi chi with
    | Some a ->
      let r2 = snd (res (chi, a)) in
      (match !prev with
      | Some (chi_p, a_p, r2_p) ->
        if r2_p *. r2 <= 0.0 && Float.abs (r2_p -. r2) < 1.0 then begin
          let t = if r2_p = r2 then 0.5 else r2_p /. (r2_p -. r2) in
          candidates := (chi_p +. (t *. (chi -. chi_p)), a_p +. (t *. (a -. a_p))) :: !candidates
        end
      | None -> ());
      prev := Some (chi, a, r2)
    | None -> prev := None)
  done;
  let refined =
    List.filter_map
      (fun (chi0, a0) ->
        match
          Roots.newton2d ~tol:1e-11 ~f:(fun x -> res x) ~x0:(chi0, a0) ()
        with
        | chi, a when a > 0.0 -> Some (Angle.wrap_two_pi chi, a)
        | _ -> None
        | exception Roots.No_convergence _ -> None)
      !candidates
  in
  let dedup =
    List.fold_left
      (fun acc (chi, a) ->
        if
          List.exists
            (fun (chi', a') ->
              Angle.dist chi chi' < 1e-5 && Float.abs (a -. a') < 1e-7 *. (1.0 +. a))
            acc
        then acc
        else (chi, a) :: acc)
      [] refined
  in
  let pts =
    List.map
      (fun (chi, a) ->
        let v_eff =
          effective_v ?points nl ~n ~a ~v_inj:(Cx.polar vi chi) ~h_n
        in
        classify ?points nl ~n ~r ~vi ~phi_d ~h_n ~chi ~a ~v_eff)
      dedup
  in
  List.sort (fun p q -> Float.compare p.chi q.chi) pts

let lock_range ?points ?(tol = 1e-4) nl ~tank ~n ~vi =
  let stable_at phi_d =
    let omega_i = Tank.omega_of_phase tank ~phi_d in
    List.exists
      (fun p -> p.stable)
      (find ?points ~chi_scan:32 nl ~tank ~n ~vi ~omega_i)
  in
  let boundary side =
    (* side = +1. searches positive phi_d (below resonance), -1. above *)
    if not (stable_at 0.0) then 0.0
    else begin
      let rec grow hi =
        if hi >= 1.4 then 1.4
        else if stable_at (side *. hi) then grow (hi *. 2.0)
        else hi
      in
      let hi0 = grow 0.05 in
      if stable_at (side *. hi0) then hi0
      else begin
        let lo = ref (hi0 /. 2.0) and hi = ref hi0 in
        if not (stable_at (side *. !lo)) then lo := 0.0;
        while !hi -. !lo > tol do
          let mid = 0.5 *. (!lo +. !hi) in
          if stable_at (side *. mid) then lo := mid else hi := mid
        done;
        0.5 *. (!lo +. !hi)
      end
    end
  in
  (* the harmonic feedback breaks the +-phi_d symmetry: search both sides *)
  let phi_pos = boundary 1.0 in
  let phi_neg = boundary (-1.0) in
  let two_pi = 2.0 *. Float.pi in
  let nf = float_of_int n in
  if phi_pos <= 0.0 && phi_neg <= 0.0 then
    {
      Lock_range.phi_d_max = 0.0;
      f_osc_low = Float.nan;
      f_osc_high = Float.nan;
      f_inj_low = Float.nan;
      f_inj_high = Float.nan;
      delta_f_inj = 0.0;
      at_center = [];
      failures = Resilience.Summary.empty;
    }
  else begin
    let w_low = Tank.omega_of_phase tank ~phi_d:phi_pos in
    let w_high = Tank.omega_of_phase tank ~phi_d:(-.phi_neg) in
    {
      Lock_range.phi_d_max = Float.max phi_pos phi_neg;
      f_osc_low = w_low /. two_pi;
      f_osc_high = w_high /. two_pi;
      f_inj_low = nf *. w_low /. two_pi;
      f_inj_high = nf *. w_high /. two_pi;
      delta_f_inj = nf *. (w_high -. w_low) /. two_pi;
      at_center = [];
      failures = Resilience.Summary.empty;
    }
  end
