module Interp = Numerics.Interp

(* [key], when present, is a canonical identity string for caching: two
   values with equal keys must compute identical currents for every
   input. Closures built from unknown functions get [None] and are
   simply never cached. *)
type t = {
  name : string;
  key : string option;
  f : float -> float;
  df : float -> float;
}

let numeric_df f v =
  let h = 1e-6 *. (1.0 +. Float.abs v) in
  (f (v +. h) -. f (v -. h)) /. (2.0 *. h)

let make ?(name = "custom") ?key ?df f =
  { name; key; f; df = (match df with Some d -> d | None -> numeric_df f) }

let name t = t.name
let cache_key t = t.key
let eval t v = t.f v
let deriv t v = t.df v

let neg_tanh ~g0 ~isat =
  if g0 <= 0.0 || isat <= 0.0 then invalid_arg "Nonlinearity.neg_tanh";
  let f v = -.isat *. tanh (g0 *. v /. isat) in
  let df v =
    let c = cosh (g0 *. v /. isat) in
    -.g0 /. (c *. c)
  in
  let key = Some (Printf.sprintf "neg_tanh(g0=%h,isat=%h)" g0 isat) in
  { name = "neg_tanh"; key; f; df }

let cubic ~g1 ~g3 =
  let f v = (-.g1 *. v) +. (g3 *. v *. v *. v) in
  let df v = -.g1 +. (3.0 *. g3 *. v *. v) in
  let key = Some (Printf.sprintf "cubic(g1=%h,g3=%h)" g1 g3) in
  { name = "cubic"; key; f; df }

(* Paper appendix §VI-C model (same constants as Spice.Device.paper_tunnel;
   duplicated here so the core theory library stays independent of the
   circuit simulator). *)
let paper_tunnel_iv v =
  let is = 1e-12 and eta = 1.0 and vth = 0.025 in
  let r0 = 1000.0 and v0 = 0.2 and m = 2.0 in
  let powm = Float.pow (Float.abs (v /. v0)) m in
  let e = exp (-.powm) in
  let i_tun = v /. r0 *. e in
  let g_tun = e /. r0 *. (1.0 -. (m *. powm)) in
  let x = v /. (eta *. vth) in
  let cap = 40.0 in
  let ex = if x > cap then exp cap *. (1.0 +. (x -. cap)) else exp x in
  let dex = if x > cap then exp cap else exp x in
  let i_d = is *. (ex -. 1.0) in
  let g_d = is *. dex /. (eta *. vth) in
  (i_tun +. i_d, g_tun +. g_d)

let tunnel_diode ?params ~bias () =
  (* only the paper's built-in model gets an identity: a caller-supplied
     [params] closure has no canonical description, so the result is
     uncacheable rather than wrongly shared *)
  let params, key =
    match params with
    | None ->
      (paper_tunnel_iv, Some (Printf.sprintf "tunnel_paper(bias=%h)" bias))
    | Some p -> (p, None)
  in
  let i0, _ = params bias in
  let f v = fst (params (bias +. v)) -. i0 in
  let df v = snd (params (bias +. v)) in
  { name = "tunnel_diode"; key; f; df }

let of_table ?(name = "table") ~vs ~is () =
  let itp = Interp.pchip ~xs:vs ~ys:is in
  (* the sampled arrays fully determine the interpolant, so their bytes
     are a faithful identity; the digest keeps the key fixed-size *)
  let key =
    Some
      (Printf.sprintf "table(%s,%s)"
         (Digest.to_hex (Digest.string (Marshal.to_string (vs, is) [])))
         name)
  in
  { name; key; f = Interp.eval itp; df = Interp.eval_deriv itp }

let shift_bias t vb =
  let i0 = t.f vb in
  {
    name = t.name ^ "+bias";
    key = Option.map (fun k -> Printf.sprintf "bias(%s,vb=%h)" k vb) t.key;
    f = (fun v -> t.f (vb +. v) -. i0);
    df = (fun v -> t.df (vb +. v));
  }

let scale_current t k =
  {
    name = t.name;
    key = Option.map (fun ky -> Printf.sprintf "scale(%s,k=%h)" ky k) t.key;
    f = (fun v -> k *. t.f v);
    df = (fun v -> k *. t.df v);
  }

let sample t ~v_min ~v_max ~n =
  if n < 2 then invalid_arg "Nonlinearity.sample";
  let vs =
    Array.init n (fun k ->
        v_min +. ((v_max -. v_min) *. float_of_int k /. float_of_int (n - 1)))
  in
  (vs, Array.map t.f vs)
