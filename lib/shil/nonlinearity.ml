module Interp = Numerics.Interp
module Kernel = Numerics.Kernel

type batch_fn = src:float array -> dst:float array -> n:int -> unit

(* [key], when present, is a canonical identity string for caching: two
   values with equal keys must compute identical currents for every
   input. Closures built from unknown functions get [None] and are
   simply never cached.

   [batch], when present, must be bit-identical to [f] mapped over the
   slice (same operations, same association); [batch_fast] may trade the
   last ulps for speed and is only reachable through [eval_batch_fast],
   which the tolerance-grade reduced paths use. Both must support
   [src == dst]. [odd] declares the mathematical symmetry
   [f (-. v) = -. f v], which licenses the half-period quadrature
   reduction; it is metadata about the ideal function, not a bitwise
   claim. *)
type t = {
  name : string;
  key : string option;
  f : float -> float;
  df : float -> float;
  batch : batch_fn option;
  batch_fast : batch_fn option;
  odd : bool;
}

let numeric_df f v =
  let h = 1e-6 *. (1.0 +. Float.abs v) in
  (f (v +. h) -. f (v -. h)) /. (2.0 *. h)

let make ?(name = "custom") ?key ?df ?batch ?(odd = false) f =
  {
    name;
    key;
    f;
    df = (match df with Some d -> d | None -> numeric_df f);
    batch;
    batch_fast = None;
    odd;
  }

let name t = t.name
let cache_key t = t.key
let eval t v = t.f v
let deriv t v = t.df v
let odd t = t.odd

let check_slice op ?n ~src ~dst () =
  let n = match n with Some n -> n | None -> Array.length src in
  if n < 0 || n > Array.length src || n > Array.length dst then
    invalid_arg ("Nonlinearity." ^ op);
  n

let scalar_batch f ~src ~dst ~n =
  for i = 0 to n - 1 do
    dst.(i) <- f src.(i)
  done

let eval_batch ?n t ~src ~dst =
  let n = check_slice "eval_batch" ?n ~src ~dst () in
  match t.batch with
  | Some b when Kernel.batch_enabled () -> b ~src ~dst ~n
  | Some _ | None -> scalar_batch t.f ~src ~dst ~n

let eval_batch_fast ?n t ~src ~dst =
  let n = check_slice "eval_batch_fast" ?n ~src ~dst () in
  match (t.batch_fast, t.batch) with
  | Some b, _ when Kernel.batch_enabled () -> b ~src ~dst ~n
  | _, Some b when Kernel.batch_enabled () -> b ~src ~dst ~n
  | _ -> scalar_batch t.f ~src ~dst ~n

let neg_tanh ~g0 ~isat =
  if g0 <= 0.0 || isat <= 0.0 then invalid_arg "Nonlinearity.neg_tanh";
  let f v = -.isat *. tanh (g0 *. v /. isat) in
  let df v =
    let c = cosh (g0 *. v /. isat) in
    -.g0 /. (c *. c)
  in
  let key = Some (Printf.sprintf "neg_tanh(g0=%h,isat=%h)" g0 isat) in
  {
    name = "neg_tanh";
    key;
    f;
    df;
    batch = Some (fun ~src ~dst ~n -> Kernel.neg_tanh_batch ~g0 ~isat ~src ~dst ~n);
    batch_fast =
      Some (fun ~src ~dst ~n -> Kernel.neg_tanh_batch_fast ~g0 ~isat ~src ~dst ~n);
    odd = true;
  }

let cubic ~g1 ~g3 =
  let f v = (-.g1 *. v) +. (g3 *. v *. v *. v) in
  let df v = -.g1 +. (3.0 *. g3 *. v *. v) in
  let key = Some (Printf.sprintf "cubic(g1=%h,g3=%h)" g1 g3) in
  let batch ~src ~dst ~n =
    for i = 0 to n - 1 do
      let v = src.(i) in
      dst.(i) <- (-.g1 *. v) +. (g3 *. v *. v *. v)
    done
  in
  { name = "cubic"; key; f; df; batch = Some batch; batch_fast = None; odd = true }

(* Paper appendix §VI-C model (same constants as Spice.Device.paper_tunnel;
   duplicated here so the core theory library stays independent of the
   circuit simulator). *)
let paper_tunnel_iv v =
  let is = 1e-12 and eta = 1.0 and vth = 0.025 in
  let r0 = 1000.0 and v0 = 0.2 and m = 2.0 in
  let powm = Float.pow (Float.abs (v /. v0)) m in
  let e = exp (-.powm) in
  let i_tun = v /. r0 *. e in
  let g_tun = e /. r0 *. (1.0 -. (m *. powm)) in
  let x = v /. (eta *. vth) in
  let cap = 40.0 in
  let ex = if x > cap then exp cap *. (1.0 +. (x -. cap)) else exp x in
  let dex = if x > cap then exp cap else exp x in
  let i_d = is *. (ex -. 1.0) in
  let g_d = is *. dex /. (eta *. vth) in
  (i_tun +. i_d, g_tun +. g_d)

(* Current-only half of [paper_tunnel_iv], fused over a slice: identical
   subexpressions in identical order, skipping only the conductance
   terms (which cannot change the current bits) and the result tuple. *)
let paper_tunnel_batch ~bias ~i0 ~src ~dst ~n =
  let is = 1e-12 and eta = 1.0 and vth = 0.025 in
  let r0 = 1000.0 and v0 = 0.2 and m = 2.0 in
  let cap = 40.0 in
  for idx = 0 to n - 1 do
    let v = bias +. src.(idx) in
    let powm = Float.pow (Float.abs (v /. v0)) m in
    let e = exp (-.powm) in
    let i_tun = v /. r0 *. e in
    let x = v /. (eta *. vth) in
    let ex = if x > cap then exp cap *. (1.0 +. (x -. cap)) else exp x in
    let i_d = is *. (ex -. 1.0) in
    dst.(idx) <- (i_tun +. i_d) -. i0
  done

let tunnel_diode ?params ~bias () =
  (* only the paper's built-in model gets an identity: a caller-supplied
     [params] closure has no canonical description, so the result is
     uncacheable rather than wrongly shared; likewise only the built-in
     model gets the fused batch loop *)
  let params, key, builtin =
    match params with
    | None ->
      (paper_tunnel_iv, Some (Printf.sprintf "tunnel_paper(bias=%h)" bias), true)
    | Some p -> (p, None, false)
  in
  let i0, _ = params bias in
  let f v = fst (params (bias +. v)) -. i0 in
  let df v = snd (params (bias +. v)) in
  let batch =
    if builtin then Some (fun ~src ~dst ~n -> paper_tunnel_batch ~bias ~i0 ~src ~dst ~n)
    else None
  in
  { name = "tunnel_diode"; key; f; df; batch; batch_fast = None; odd = false }

let of_table ?(name = "table") ~vs ~is () =
  let itp = Interp.pchip ~xs:vs ~ys:is in
  (* the sampled arrays fully determine the interpolant, so their bytes
     are a faithful identity; the digest keeps the key fixed-size *)
  let key =
    Some
      (Printf.sprintf "table(%s,%s)"
         (Digest.to_hex (Digest.string (Marshal.to_string (vs, is) [])))
         name)
  in
  {
    name;
    key;
    f = Interp.eval itp;
    df = Interp.eval_deriv itp;
    batch = Some (fun ~src ~dst ~n -> Interp.eval_batch ~n itp ~src ~dst);
    batch_fast = None;
    odd = false;
  }

let shift_bias t vb =
  let i0 = t.f vb in
  let wrap inner ~src ~dst ~n =
    for i = 0 to n - 1 do
      dst.(i) <- vb +. src.(i)
    done;
    inner ~src:dst ~dst ~n;
    for i = 0 to n - 1 do
      dst.(i) <- dst.(i) -. i0
    done
  in
  {
    name = t.name ^ "+bias";
    key = Option.map (fun k -> Printf.sprintf "bias(%s,vb=%h)" k vb) t.key;
    f = (fun v -> t.f (vb +. v) -. i0);
    df = (fun v -> t.df (vb +. v));
    batch = Option.map wrap t.batch;
    batch_fast = Option.map wrap t.batch_fast;
    (* a bias shift breaks odd symmetry in general *)
    odd = false;
  }

let scale_current t k =
  let wrap inner ~src ~dst ~n =
    inner ~src ~dst ~n;
    for i = 0 to n - 1 do
      dst.(i) <- k *. dst.(i)
    done
  in
  {
    name = t.name;
    key = Option.map (fun ky -> Printf.sprintf "scale(%s,k=%h)" ky k) t.key;
    f = (fun v -> k *. t.f v);
    df = (fun v -> k *. t.df v);
    batch = Option.map wrap t.batch;
    batch_fast = Option.map wrap t.batch_fast;
    (* current scaling preserves odd symmetry *)
    odd = t.odd;
  }

let sample t ~v_min ~v_max ~n =
  if n < 2 then invalid_arg "Nonlinearity.sample";
  let vs = Kernel.linspace v_min v_max n in
  (vs, Array.map t.f vs)
