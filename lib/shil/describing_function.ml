module Cx = Numerics.Cx
module Fourier = Numerics.Fourier

let default_points = 1024

let i1 ?(points = default_points) nl ~a =
  let f theta = Nonlinearity.eval nl (a *. cos theta) in
  Cx.re (Fourier.coeff ~n:points ~f ~k:1 ())

let ik ?(points = default_points) nl ~a ~k =
  let f theta = Nonlinearity.eval nl (a *. cos theta) in
  Fourier.coeff ~n:points ~f ~k ()

let two_tone_input nl ~n ~a ~vi ~phi theta =
  Nonlinearity.eval nl
    ((a *. cos theta) +. (2.0 *. vi *. cos ((float_of_int n *. theta) +. phi)))

let i1_two_tone ?(points = default_points) nl ~n ~a ~vi ~phi =
  if n < 1 then invalid_arg "Describing_function: n must be >= 1";
  Obs.Metrics.incr "shil.df.i1_evals";
  let f = two_tone_input nl ~n ~a ~vi ~phi in
  Fourier.coeff ~n:points ~f ~k:1 ()

let ik_two_tone ?(points = default_points) nl ~n ~a ~vi ~phi ~k =
  if n < 1 then invalid_arg "Describing_function: n must be >= 1";
  Obs.Metrics.incr "shil.df.i1_evals";
  let f = two_tone_input nl ~n ~a ~vi ~phi in
  Fourier.coeff ~n:points ~f ~k ()

let t_f_free ?points nl ~r ~a =
  if a <= 0.0 then invalid_arg "Describing_function.t_f_free: a must be > 0";
  -.r *. i1 ?points nl ~a /. (a /. 2.0)

let t_f ?points nl ~n ~r ~a ~vi ~phi =
  if a <= 0.0 then invalid_arg "Describing_function.t_f: a must be > 0";
  let i1c = i1_two_tone ?points nl ~n ~a ~vi ~phi in
  -.r *. Cx.re i1c /. (a /. 2.0)

let t_cap_f ?points nl ~n ~r ~a ~vi ~phi ~phi_d =
  if a <= 0.0 then invalid_arg "Describing_function.t_cap_f: a must be > 0";
  let i1c = i1_two_tone ?points nl ~n ~a ~vi ~phi in
  Float.abs (r *. Cx.abs i1c *. cos phi_d /. (a /. 2.0))

let arg_minus_i1 ?points nl ~n ~a ~vi ~phi =
  Cx.arg (Cx.neg (i1_two_tone ?points nl ~n ~a ~vi ~phi))
