module Cx = Numerics.Cx
module Fourier = Numerics.Fourier

let default_points = 1024

(* Single Fourier coefficients are small and re-requested constantly by
   the solvers (Natural, Solutions, Lock_range all probe the same
   amplitudes), so they get a memory-only cache tier — writing a 16-byte
   complex to disk would cost more than recomputing it. Keys carry every
   input of the quadrature; [vi]/[phi] are folded in as plain fields so
   single-tone and two-tone coefficients share one kind. *)
let coeff_key ~nl_key ~n ~a ~vi ~phi ~k ~points =
  let open Cache.Key in
  v ~kind:"shil.df" ~version:1
    [
      str "nl" nl_key;
      int "n" n;
      float "a" a;
      float "vi" vi;
      float "phi" phi;
      int "k" k;
      int "points" points;
    ]

let cached_coeff ~n ~a ~vi ~phi ~k ~points nl compute =
  match Nonlinearity.cache_key nl with
  | None -> compute ()
  | Some nl_key ->
    let key = coeff_key ~nl_key ~n ~a ~vi ~phi ~k ~points in
    (Cache.Store.find_or_compute ~disk:false ~key
       ~encode:Cache.Store.to_marshal ~decode:Cache.Store.of_marshal compute
      : Cx.t)

let i1 ?(points = default_points) nl ~a =
  Cx.re
    (cached_coeff ~n:1 ~a ~vi:0.0 ~phi:0.0 ~k:1 ~points nl (fun () ->
         let f theta = Nonlinearity.eval nl (a *. cos theta) in
         Fourier.coeff ~n:points ~f ~k:1 ()))

let ik ?(points = default_points) nl ~a ~k =
  cached_coeff ~n:1 ~a ~vi:0.0 ~phi:0.0 ~k ~points nl (fun () ->
      let f theta = Nonlinearity.eval nl (a *. cos theta) in
      Fourier.coeff ~n:points ~f ~k ())

let two_tone_input nl ~n ~a ~vi ~phi theta =
  Nonlinearity.eval nl
    ((a *. cos theta) +. (2.0 *. vi *. cos ((float_of_int n *. theta) +. phi)))

let i1_two_tone ?(points = default_points) nl ~n ~a ~vi ~phi =
  if n < 1 then invalid_arg "Describing_function: n must be >= 1";
  Obs.Metrics.incr "shil.df.i1_evals";
  cached_coeff ~n ~a ~vi ~phi ~k:1 ~points nl (fun () ->
      let f = two_tone_input nl ~n ~a ~vi ~phi in
      Fourier.coeff ~n:points ~f ~k:1 ())

let ik_two_tone ?(points = default_points) nl ~n ~a ~vi ~phi ~k =
  if n < 1 then invalid_arg "Describing_function: n must be >= 1";
  Obs.Metrics.incr "shil.df.i1_evals";
  cached_coeff ~n ~a ~vi ~phi ~k ~points nl (fun () ->
      let f = two_tone_input nl ~n ~a ~vi ~phi in
      Fourier.coeff ~n:points ~f ~k ())

let t_f_free ?points nl ~r ~a =
  if a <= 0.0 then invalid_arg "Describing_function.t_f_free: a must be > 0";
  -.r *. i1 ?points nl ~a /. (a /. 2.0)

let t_f ?points nl ~n ~r ~a ~vi ~phi =
  if a <= 0.0 then invalid_arg "Describing_function.t_f: a must be > 0";
  let i1c = i1_two_tone ?points nl ~n ~a ~vi ~phi in
  -.r *. Cx.re i1c /. (a /. 2.0)

let t_cap_f ?points nl ~n ~r ~a ~vi ~phi ~phi_d =
  if a <= 0.0 then invalid_arg "Describing_function.t_cap_f: a must be > 0";
  let i1c = i1_two_tone ?points nl ~n ~a ~vi ~phi in
  Float.abs (r *. Cx.abs i1c *. cos phi_d /. (a /. 2.0))

let arg_minus_i1 ?points nl ~n ~a ~vi ~phi =
  Cx.arg (Cx.neg (i1_two_tone ?points nl ~n ~a ~vi ~phi))
