module Cx = Numerics.Cx
module Kernel = Numerics.Kernel
module Trig = Numerics.Trig_tables

let default_points = 1024

(* [`Exact] reproduces the historical per-sample quadrature bit for bit
   (same synthesis expressions, same summation order, bit-identical
   batch nonlinearity evaluation). [`Symmetry] exploits the odd-f
   half-period identity and evaluates the injection tone from trig
   tables, trading the last ulps for throughput — so it lives behind its
   own cache-key version. *)
type reduction = [ `Exact | `Symmetry ]

(* Single Fourier coefficients are small and re-requested constantly by
   the solvers (Natural, Solutions, Lock_range all probe the same
   amplitudes), so they get a memory-only cache tier — writing a 16-byte
   complex to disk would cost more than recomputing it. Keys carry every
   input of the quadrature; [vi]/[phi] are folded in as plain fields so
   single-tone and two-tone coefficients share one kind. The [`Exact]
   key is version 1, unchanged since the scalar kernel: batch evaluation
   is bit-identical, so old cached values stay valid. [`Symmetry]
   results are not bit-identical, so they hash under version 2 plus an
   explicit reduction field. *)
let coeff_key ?(reduction = `Exact) ~nl_key ~n ~a ~vi ~phi ~k ~points () =
  let open Cache.Key in
  let fields =
    [
      str "nl" nl_key;
      int "n" n;
      float "a" a;
      float "vi" vi;
      float "phi" phi;
      int "k" k;
      int "points" points;
    ]
  in
  match reduction with
  | `Exact -> v ~kind:"shil.df" ~version:1 fields
  | `Symmetry -> v ~kind:"shil.df" ~version:2 (fields @ [ str "red" "sym" ])

let cached_coeff ?reduction ~n ~a ~vi ~phi ~k ~points nl compute =
  (* key construction is several %h-formatted sprintfs — skip it
     entirely when the store is off, this sits on the solver hot path *)
  if not (Cache.Store.enabled ()) then compute ()
  else
  match Nonlinearity.cache_key nl with
  | None -> compute ()
  | Some nl_key ->
    let key = coeff_key ?reduction ~nl_key ~n ~a ~vi ~phi ~k ~points () in
    (Cache.Store.find_or_compute ~disk:false ~key
       ~encode:Cache.Store.to_marshal ~decode:Cache.Store.of_marshal compute
      : Cx.t)

(* Half-period identity (paper footnote 3 generalized): for odd f and
   odd sub-harmonic order n, v(θ+π) = −v(θ), hence i(θ+π) = −i(θ), and
   for odd harmonic k the projected integrand i(θ)·e^{−jkθ} is
   π-periodic: the second half of the quadrature sum repeats the first.
   Summing half the points and doubling halves the nonlinearity work. *)
let can_halve nl ~n ~k ~points =
  Nonlinearity.odd nl && n land 1 = 1 && k land 1 = 1 && points land 1 = 0

(* Exact quadrature of f applied to a synthesized waveform: the batch
   twin of [Fourier.coeff ~f] over the same θ samples. [synth] fills the
   waveform buffer; [eval] maps the nonlinearity over it. *)
let quad ~points ~k ~eval ~synth nl =
  let cos_t, sin_t = Trig.get ~points ~k in
  Kernel.with_bufs ~len:points 2 @@ fun bufs ->
  let wave = bufs.(0) and cur = bufs.(1) in
  synth ~dst:wave;
  eval nl ~src:wave ~dst:cur;
  let re, im = Kernel.dot2 ~n:points cur ~cos_t ~sin_t in
  Cx.make (re /. float_of_int points) (im /. float_of_int points)

(* Symmetry-reduced quadrature: table-driven synthesis of both tones,
   tolerance-grade nonlinearity evaluation, and the half-period cut when
   the symmetry licenses it. *)
let quad_sym ~points ~k ~n ~a ~vi ~phi nl =
  let m = if can_halve nl ~n ~k ~points then points / 2 else points in
  let cos_t, sin_t = Trig.get ~points ~k in
  let cos_1, _ = Trig.get ~points ~k:1 in
  let cos_n, sin_n = Trig.get ~points ~k:n in
  let w = 2.0 *. vi in
  let cp = w *. cos phi and sp = w *. sin phi in
  Kernel.with_bufs ~len:points 2 @@ fun bufs ->
  let wave = bufs.(0) and cur = bufs.(1) in
  for s = 0 to m - 1 do
    wave.(s) <- (a *. cos_1.(s)) +. (cp *. cos_n.(s)) -. (sp *. sin_n.(s))
  done;
  Nonlinearity.eval_batch_fast ~n:m nl ~src:wave ~dst:cur;
  let re, im = Kernel.dot2 ~n:m cur ~cos_t ~sin_t in
  let norm = float_of_int m in
  Cx.make (re /. norm) (im /. norm)

let single_tone_coeff ?(reduction = `Exact) ~points ~k nl ~a =
  match reduction with
  | `Exact ->
    (* bit-identical to the historical closure path: the (points, 1)
       table entry is the same double as cos θ_s computed inline *)
    quad ~points ~k nl
      ~eval:(fun nl ~src ~dst -> Nonlinearity.eval_batch nl ~src ~dst)
      ~synth:(fun ~dst ->
        let cos_1, _ = Trig.get ~points ~k:1 in
        Kernel.synth_tone ~a ~cos_t:cos_1 ~dst ~n:points)
  | `Symmetry -> quad_sym ~points ~k ~n:1 ~a ~vi:0.0 ~phi:0.0 nl

let i1 ?(points = default_points) ?reduction nl ~a =
  Cx.re
    (cached_coeff ?reduction ~n:1 ~a ~vi:0.0 ~phi:0.0 ~k:1 ~points nl (fun () ->
         single_tone_coeff ?reduction ~points ~k:1 nl ~a))

let ik ?(points = default_points) ?reduction nl ~a ~k =
  cached_coeff ?reduction ~n:1 ~a ~vi:0.0 ~phi:0.0 ~k ~points nl (fun () ->
      single_tone_coeff ?reduction ~points ~k nl ~a)

let two_tone_input nl ~n ~a ~vi ~phi theta =
  Nonlinearity.eval nl
    ((a *. cos theta) +. (2.0 *. vi *. cos ((float_of_int n *. theta) +. phi)))

let two_tone_coeff ?(reduction = `Exact) ~points ~k nl ~n ~a ~vi ~phi =
  match reduction with
  | `Exact ->
    (* exact synthesis recomputes the injection-tone cosine per sample —
       one libm cos — because cos(nθ+φ) must round exactly as the
       historical [two_tone_input] closure did *)
    quad ~points ~k nl
      ~eval:(fun nl ~src ~dst -> Nonlinearity.eval_batch nl ~src ~dst)
      ~synth:(fun ~dst ->
        let cos_1, _ = Trig.get ~points ~k:1 in
        Kernel.synth_two_tone_direct ~a ~w:(2.0 *. vi) ~tone:n ~phi
          ~cos_t:cos_1 ~points ~dst ~n:points)
  | `Symmetry -> quad_sym ~points ~k ~n ~a ~vi ~phi nl

let i1_two_tone ?(points = default_points) ?reduction nl ~n ~a ~vi ~phi =
  if n < 1 then invalid_arg "Describing_function: n must be >= 1";
  Obs.Metrics.incr "shil.df.i1_evals";
  cached_coeff ?reduction ~n ~a ~vi ~phi ~k:1 ~points nl (fun () ->
      two_tone_coeff ?reduction ~points ~k:1 nl ~n ~a ~vi ~phi)

let ik_two_tone ?(points = default_points) ?reduction nl ~n ~a ~vi ~phi ~k =
  if n < 1 then invalid_arg "Describing_function: n must be >= 1";
  Obs.Metrics.incr "shil.df.ik_evals";
  cached_coeff ?reduction ~n ~a ~vi ~phi ~k ~points nl (fun () ->
      two_tone_coeff ?reduction ~points ~k nl ~n ~a ~vi ~phi)

let t_f_free ?points ?reduction nl ~r ~a =
  if a <= 0.0 then invalid_arg "Describing_function.t_f_free: a must be > 0";
  -.r *. i1 ?points ?reduction nl ~a /. (a /. 2.0)

let t_f ?points ?reduction nl ~n ~r ~a ~vi ~phi =
  if a <= 0.0 then invalid_arg "Describing_function.t_f: a must be > 0";
  let i1c = i1_two_tone ?points ?reduction nl ~n ~a ~vi ~phi in
  -.r *. Cx.re i1c /. (a /. 2.0)

let t_cap_f ?points ?reduction nl ~n ~r ~a ~vi ~phi ~phi_d =
  if a <= 0.0 then invalid_arg "Describing_function.t_cap_f: a must be > 0";
  let i1c = i1_two_tone ?points ?reduction nl ~n ~a ~vi ~phi in
  Float.abs (r *. Cx.abs i1c *. cos phi_d /. (a /. 2.0))

let arg_minus_i1 ?points ?reduction nl ~n ~a ~vi ~phi =
  Cx.arg (Cx.neg (i1_two_tone ?points ?reduction nl ~n ~a ~vi ~phi))
