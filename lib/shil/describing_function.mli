(** Describing functions: Fourier coefficients of a nonlinearity driven by
    one or two tones — the computational heart of the paper.

    Conventions (paper eq. 1): for input [x(theta)] with fundamental
    period [2 pi] in [theta = w_i t], the current [i = f(x)] has series
    [i = sum_k I_k exp(j k theta)]. A single tone [A cos theta] makes
    every [I_k] real; the two-tone SHIL input
    [A cos theta + 2 V_i cos (n theta + phi)] makes [I_1] complex and a
    function of [(A, V_i, phi)].

    Argument domains: [n >= 1] and, for the time-domain maps below,
    [a > 0]; violations raise [Invalid_argument]. *)

val default_points : int
(** Quadrature points per period (1024). Spectral accuracy: doubling the
    count is only needed for extremely sharp nonlinearities. *)

type reduction = [ `Exact | `Symmetry ]
(** Quadrature mode. [`Exact] (the default everywhere) evaluates the
    full period with bit-identical batch kernels — results and cache
    keys are unchanged from the scalar implementation. [`Symmetry]
    exploits the odd-[f] half-period identity (for odd [f], odd [n] and
    odd harmonic [k], the projected integrand is π-periodic, so half the
    samples suffice) and synthesizes the injection tone from trig tables
    with tolerance-grade (not bit-identical) nonlinearity batches;
    results agree with [`Exact] to quadrature accuracy and are cached
    under a bumped key version. When the preconditions do not hold
    ([Nonlinearity.odd] is false, even [n] or [k], odd [points]) the
    point count silently stays at the full period. *)

val coeff_key :
  ?reduction:reduction -> nl_key:string -> n:int -> a:float -> vi:float ->
  phi:float -> k:int -> points:int -> unit -> Cache.Key.t
(** The content address of one cached coefficient (exposed for tests and
    tooling). [`Exact] keys are version 1 — unchanged since the scalar
    kernel; [`Symmetry] keys are version 2 with a [red=sym] field. *)

val i1 : ?points:int -> ?reduction:reduction -> Nonlinearity.t -> a:float -> float
(** Single-tone fundamental coefficient [I_1(A)] — real by symmetry
    (footnote 3 of the paper). *)

val ik :
  ?points:int -> ?reduction:reduction -> Nonlinearity.t -> a:float -> k:int ->
  Numerics.Cx.t
(** Single-tone [k]-th coefficient. *)

val two_tone_input :
  Nonlinearity.t -> n:int -> a:float -> vi:float -> phi:float -> float -> float
(** The scalar per-θ evaluation
    [f (A cos θ + 2 V_i cos (n θ + phi))] — the historical reference
    closure, kept public so equivalence tests can pit the batch kernels
    against it via {!Numerics.Fourier.coeff}. *)

val i1_two_tone :
  ?points:int -> ?reduction:reduction -> Nonlinearity.t -> n:int -> a:float ->
  vi:float -> phi:float -> Numerics.Cx.t
(** [I_1(A, V_i, phi)] for the input
    [A cos theta + 2 V_i cos (n theta + phi)] (Fig. 8). [n >= 1]. *)

val ik_two_tone :
  ?points:int -> ?reduction:reduction -> Nonlinearity.t -> n:int -> a:float ->
  vi:float -> phi:float -> k:int -> Numerics.Cx.t

val t_f_free :
  ?points:int -> ?reduction:reduction -> Nonlinearity.t -> r:float -> a:float ->
  float
(** Free-running loop gain (eq. 2): [T_f(A) = -R I_1(A) / (A/2)].
    [A > 0]. *)

val t_f :
  ?points:int -> ?reduction:reduction -> Nonlinearity.t -> n:int -> r:float ->
  a:float -> vi:float -> phi:float -> float
(** Injected loop gain (eq. 3):
    [T_f(A,V_i,phi) = -R Re(I_1(A,V_i,phi)) / (A/2)]. *)

val t_cap_f :
  ?points:int -> ?reduction:reduction -> Nonlinearity.t -> n:int -> r:float ->
  a:float -> vi:float -> phi:float -> phi_d:float -> float
(** The magnitude form (eq. 5):
    [T_F = |R I_1 cos(phi_d) / (A/2)|]. *)

val arg_minus_i1 :
  ?points:int -> ?reduction:reduction -> Nonlinearity.t -> n:int -> a:float ->
  vi:float -> phi:float -> float
(** [angle (-I_1(A, V_i, phi))], the left side of eq. 4. *)
