(** Time-domain simulation of the reduced oscillator model — the circuit
    of Fig. 1b as a two-state ODE:

    [C dv/dt = -v/R - i_L - f(v) + i_inj(t)],  [L di_L/dt = v].

    This is the fast "brute-force" reference for the describing-function
    predictions when no device-level netlist is involved. *)

type injection = {
  vi : float;  (** target injection phasor magnitude at the tank output *)
  n : int;  (** harmonic order: drive frequency is [n * f_inj_osc] *)
  f_inj : float;  (** injection frequency (the [n omega_i] tone), Hz *)
  phase : float;  (** drive phase, rad *)
}

val injection_current : tank:Tank.t -> injection -> float
(** Drive current amplitude [I_m] such that the tank alone would show a
    [2 vi] voltage swing at the injection frequency:
    [I_m = 2 vi / |H(j 2 pi f_inj)|]. *)

type result = {
  signal : Waveform.Signal.t;  (** tank voltage *)
  i_l : float array;  (** inductor current samples *)
}

val free_run :
  ?cycles:float -> ?steps_per_cycle:int -> ?v0:float ->
  Nonlinearity.t -> tank:Tank.t -> result
(** RK4 integration over [cycles] (default 300) tank periods starting from
    a small voltage kick [v0] (default 1e-3). *)

val injected :
  ?cycles:float -> ?steps_per_cycle:int -> ?v0:float ->
  Nonlinearity.t -> tank:Tank.t -> injection:injection -> result
(** As {!free_run} with the sinusoidal injection current applied. *)

val locked :
  ?cycles:float -> ?steps_per_cycle:int ->
  Nonlinearity.t -> tank:Tank.t -> injection:injection -> bool
(** Convenience: simulate and run the lock detector at
    [f_inj / n]. *)

val lock_edge :
  ?cycles:float -> ?tol:float -> Nonlinearity.t -> tank:Tank.t ->
  vi:float -> n:int -> f_lo:float -> f_hi:float -> side:[ `Low | `High ] ->
  float
(** Binary search for a lock edge in injection frequency. For [`Low] the
    band edge has unlocked below / locked above; [`High] the reverse.
    [tol] is in Hz (default [1e-5 * f_lo]). Raises [Invalid_argument]
    when the bracket does not actually straddle the edge. *)
