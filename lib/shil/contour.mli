(** Marching-squares contour extraction on rectilinear grids — the tool
    that draws the paper's [C_{T_f,1}] and [angle(-I_1)] level curves. *)

type segment = { x1 : float; y1 : float; x2 : float; y2 : float }

val segments :
  xs:float array -> ys:float array -> field:float array array ->
  level:float -> segment list
(** [field.(i).(j)] is the value at [(xs.(i), ys.(j))]. Returns the level
    crossings of each grid cell with linear interpolation along the
    edges; ambiguous (saddle) cells are disambiguated with the cell-centre
    average. Cells containing non-finite values are skipped. Raises
    [Invalid_argument] if [field]'s dimensions do not match
    [xs]/[ys]. *)

val polylines :
  xs:float array -> ys:float array -> field:float array array ->
  level:float -> (float array * float array) list
(** {!segments} chained into polylines (endpoints matched with a relative
    tolerance); open curves and closed loops both supported. Each polyline
    is [(x coords, y coords)]. *)

val filter_segments : (float * float -> bool) -> segment list -> segment list
(** Keeps segments whose midpoint satisfies the predicate (used to drop
    the [cos (angle(-I_1) + phi_d) <= 0] spurious branch of the phase
    condition). *)

val chain : ?tol:float -> segment list -> (float array * float array) list
(** Chains an arbitrary segment soup into polylines by greedy endpoint
    matching with absolute tolerance [tol] (default [1e-12] — pass a
    grid-scaled value for marching-squares output). Degenerate zero-length
    segments are dropped. *)
