let run ?(vis = [ 0.01; 0.05; 0.1; 0.2 ]) () =
  let p = Circuits.Tanh_osc.default in
  let osc = Circuits.Tanh_osc.oscillator p in
  let r = (osc.tank : Shil.Tank.t).r in
  let a_nat =
    match Shil.Natural.predicted_amplitude osc.nl ~r with
    | Some a -> a
    | None ->
      Resilience.Oshil_error.raise_ Experiments ~phase:"fhil" No_oscillation
        "oscillator does not oscillate"
        ~remedy:"check the nonlinearity gain against 1/R"
  in
  let rows =
    List.map
      (fun vi ->
        let grid =
          Shil.Fhil.grid osc.nl ~r ~vi
            ~a_range:(0.25 *. a_nat, 1.5 *. a_nat)
        in
        let lr = Shil.Lock_range.predict grid ~tank:osc.tank in
        let f_lo, f_hi = Shil.Fhil.adler_range ~tank:osc.tank ~a:a_nat ~vi in
        let adler = f_hi -. f_lo in
        ( Printf.sprintf "Vi = %.3g" vi,
          Printf.sprintf "rigorous %.6g Hz | Adler %.6g Hz (%+.2f%%)"
            lr.delta_f_inj adler
            (100.0 *. (adler -. lr.delta_f_inj) /. lr.delta_f_inj) ))
      vis
  in
  Output.make ~id:"A3"
    ~title:"ablation: FHIL (n = 1) rigorous vs Adler's formula"
    ~rows:
      (rows
      @ [
          ( "reading",
            "the generic SHIL machinery at n = 1 reduces to the classical \
             FHIL picture; Adler's first-order formula agrees for weak \
             injection and drifts for strong injection" );
        ])
    ()
