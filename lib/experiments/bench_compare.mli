(** Bench regression sentinel: record-vs-record comparison of
    BENCH_*.json perf records with per-metric directions and relative
    thresholds.

    The policy lives in {!classify}: wall-clock metrics tolerate wide
    (+50%) swings because timing is machine-noisy, speedups may shrink
    30%, deterministic solver/cache counters get a tight 5% band,
    allocation ([gc_] fields) 25%, bit-identity witness flags must
    never drop,
    and [reduced_max_rel_err] is bounded by the absolute ceiling the
    bench itself asserts. Everything else (problem sizes, tolerances,
    measured physical values) is informational and never gated.

    Used by [bench/main.exe --compare] and unit-tested directly. *)

type direction =
  | Lower_better of float  (** regression if fresh > baseline * (1+tol) *)
  | Higher_better of float  (** regression if fresh < baseline * (1-tol) *)
  | Witness  (** 0/1 invariant flag: must not drop below the baseline *)
  | Ceiling of float  (** absolute bound: regression if fresh > bound *)
  | Informational  (** recorded, never gated *)

val classify : string -> direction
(** Metric policy by JSON field name. *)

type verdict =
  | Ok
  | Improved
  | Regression
  | New_metric  (** only in fresh (e.g. newly tracked): never gated *)
  | Missing_metric  (** gated metric absent from fresh: a regression *)

type finding = {
  bench : string;
  metric : string;
  baseline : float;  (** nan when the metric is new *)
  fresh : float;  (** nan when the metric disappeared *)
  verdict : verdict;
  note : string;
}

val rel_delta : baseline:float -> fresh:float -> float

val compare_entries :
  baseline:Bench_json.entry -> fresh:Bench_json.entry -> finding list
(** All findings for one record pair: every baseline metric judged
    against the fresh value, plus [New_metric] rows for fresh-only
    fields. *)

val regressions : finding list -> finding list
(** The gating subset: [Regression] and [Missing_metric] findings. *)

val gate : finding list -> bool
(** [true] iff no finding gates (the comparison passes). *)

val pp : Format.formatter -> finding list -> unit
(** Table of the non-[Ok] findings plus a one-line tally. *)
