(** Extension experiment X3: the Arnold tongue.

    Sweeping the injection strength traces the classic V-shaped locking
    region (lock band edges vs [V_i]) — the global picture of which the
    paper's lock-range tables are single vertical slices. The tongue is
    predicted entirely from describing-function grids (one per [V_i]),
    reusing the [C_{T_f,1}]-invariance economy at each strength. *)

type point = {
  vi : float;
  f_inj_low : float;
  f_inj_high : float;
  delta_f_inj : float;
}

val compute :
  ?points:int -> ?vis:float list -> Shil.Analysis.oscillator -> n:int ->
  point list * Resilience.Summary.t
(** Default [vis]: 12 strengths from 0.005 to 0.3 (logarithmic-ish).

    A [vi] cell whose grid or lock-range computation fails becomes a
    typed hole in the returned summary (counter
    [resilience.tongue.holes]) instead of aborting the sweep, unless
    {!Resilience.Policy.set_fail_fast} is on. *)

val run : ?vis:float list -> unit -> Output.t
(** Tongue of the tanh oscillator at n = 3; writes the tongue figure. *)
