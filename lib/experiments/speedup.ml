type result = {
  bench_name : string;
  predict_s : float;
  simulate_s : float;
  speedup : float;
}

let time f =
  let t0 = Obs.Clock.wall_s () in
  let v = f () in
  (v, Obs.Clock.wall_s () -. t0)

let run ?cycles (b : Osc_experiments.bench) =
  let cycles = Option.value cycles ~default:b.Osc_experiments.lock_cycles in
  let r = (b.oscillator.tank : Shil.Tank.t).r in
  let a_nat =
    match Shil.Natural.predicted_amplitude b.oscillator.nl ~r with
    | Some a -> a
    | None ->
      Resilience.Oshil_error.raise_ Experiments ~phase:"speedup"
        No_oscillation "bench does not oscillate"
        ~remedy:"check the bench nonlinearity gain against 1/R"
  in
  let lr, predict_s =
    time (fun () ->
        let grid =
          Shil.Grid.sample b.oscillator.nl ~n:b.n ~r ~vi:b.vi
            ~a_range:(0.25 *. a_nat, 1.3 *. a_nat)
            ()
        in
        Shil.Lock_range.predict grid ~tank:b.oscillator.tank)
  in
  let _, simulate_s =
    time (fun () ->
        Circuits.Validate.lock_range ~cycles
          ~make_circuit:(fun ~f_inj -> b.circuit_injected ~f_inj)
          ~probe:b.probe ~n:b.n ~predicted:lr ())
  in
  {
    bench_name = b.name;
    predict_s;
    simulate_s;
    speedup = simulate_s /. predict_s;
  }

let output r ~paper_speedup =
  Output.make ~id:"S1"
    ~title:(Printf.sprintf "prediction vs simulation runtime, %s" r.bench_name)
    ~rows:
      [
        Output.row_f "prediction (s)" r.predict_s;
        Output.row_f "simulation (s)" r.simulate_s;
        Output.row_f "speedup (x)" r.speedup;
        Output.row_f "paper speedup (x)" paper_speedup;
      ]
    ()
