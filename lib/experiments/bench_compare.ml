(* Bench regression sentinel: compare a fresh BENCH_*.json record
   against a committed baseline, metric by metric, with per-metric
   directions and relative thresholds. Pure record-vs-record logic so
   the gate is unit-testable without running any bench. *)

type direction =
  | Lower_better of float  (** regression if fresh > baseline * (1+tol) *)
  | Higher_better of float  (** regression if fresh < baseline * (1-tol) *)
  | Witness  (** 0/1 invariant flag: must not drop below the baseline *)
  | Ceiling of float  (** absolute bound: regression if fresh > bound *)
  | Informational  (** recorded, never gated (configuration echoes) *)

(* Metric policy, keyed on the JSON field name. Timing is the noisiest
   (machine load, turbo states), so wall-clock tolerances are wide and
   the CI gate stays warn-only; counter metrics are deterministic and
   get tight bounds; witness flags (bit-identity) must never decay. *)
let classify name =
  let has_suffix s = String.length name >= String.length s
    && String.sub name (String.length name - String.length s)
         (String.length s) = s
  in
  let has_prefix p = String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  if name = "wall_s" || has_suffix "_wall_s" then Lower_better 0.5
  else if has_prefix "speedup" then Higher_better 0.3
  else if has_prefix "bit_identical" || has_suffix "bit_identical_to_scalar"
  then Witness
  else if name = "reduced_max_rel_err" then Ceiling 1e-6
  else if has_prefix "gc_" then Lower_better 0.25
  else if
    has_prefix "shil_" || has_prefix "spice_" || has_prefix "cache_"
    || has_prefix "numerics_"
  then Lower_better 0.05
  else Informational

type verdict = Ok | Improved | Regression | New_metric | Missing_metric

type finding = {
  bench : string;  (** record name, e.g. [grid_sample_121x101x512] *)
  metric : string;
  baseline : float;  (** nan when the metric is new *)
  fresh : float;  (** nan when the metric disappeared *)
  verdict : verdict;
  note : string;
}

let rel_delta ~baseline ~fresh =
  if baseline = 0.0 then if fresh = 0.0 then 0.0 else Float.infinity
  else (fresh -. baseline) /. Float.abs baseline

let judge ~bench ~metric ~baseline ~fresh =
  let delta = rel_delta ~baseline ~fresh in
  let pct = 100.0 *. delta in
  match classify metric with
  | Informational ->
    { bench; metric; baseline; fresh; verdict = Ok; note = "info" }
  | Witness ->
    if fresh < baseline then
      { bench; metric; baseline; fresh; verdict = Regression;
        note = "witness flag dropped" }
    else { bench; metric; baseline; fresh; verdict = Ok; note = "witness" }
  | Ceiling bound ->
    if fresh > bound then
      { bench; metric; baseline; fresh; verdict = Regression;
        note = Printf.sprintf "exceeds ceiling %g" bound }
    else
      { bench; metric; baseline; fresh; verdict = Ok;
        note = Printf.sprintf "<= ceiling %g" bound }
  | Lower_better tol ->
    if fresh > baseline *. (1.0 +. tol) then
      { bench; metric; baseline; fresh; verdict = Regression;
        note = Printf.sprintf "+%.1f%% > +%.0f%% tolerance" pct
            (100.0 *. tol) }
    else if fresh < baseline *. (1.0 -. tol) then
      { bench; metric; baseline; fresh; verdict = Improved;
        note = Printf.sprintf "%.1f%%" pct }
    else
      { bench; metric; baseline; fresh; verdict = Ok;
        note = Printf.sprintf "%+.1f%%" pct }
  | Higher_better tol ->
    if fresh < baseline *. (1.0 -. tol) then
      { bench; metric; baseline; fresh; verdict = Regression;
        note = Printf.sprintf "%.1f%% < -%.0f%% tolerance" pct
            (100.0 *. tol) }
    else if fresh > baseline *. (1.0 +. tol) then
      { bench; metric; baseline; fresh; verdict = Improved;
        note = Printf.sprintf "%+.1f%%" pct }
    else
      { bench; metric; baseline; fresh; verdict = Ok;
        note = Printf.sprintf "%+.1f%%" pct }

(* The comparable metrics of a record: the two fixed numeric fields plus
   every numeric extra. [meta] strings (host, git rev) are ignored. *)
let metrics_of (e : Bench_json.entry) =
  ("wall_s", e.wall_s) :: ("speedup_vs_seq", e.speedup_vs_seq) :: e.extra

let compare_entries ~(baseline : Bench_json.entry)
    ~(fresh : Bench_json.entry) =
  let bench = baseline.name in
  let bm = metrics_of baseline and fm = metrics_of fresh in
  let compared =
    List.map
      (fun (metric, bv) ->
        match List.assoc_opt metric fm with
        | Some fv -> judge ~bench ~metric ~baseline:bv ~fresh:fv
        | None ->
          (* a tracked metric that disappeared is a regression of the
             record schema itself, whatever its direction was *)
          if classify metric = Informational then
            { bench; metric; baseline = bv; fresh = Float.nan;
              verdict = Ok; note = "info (absent in fresh)" }
          else
            { bench; metric; baseline = bv; fresh = Float.nan;
              verdict = Missing_metric; note = "metric disappeared" })
      bm
  in
  (* metrics only the fresh record has (e.g. newly added gc fields) are
     surfaced but never gated: committed baselines predate them *)
  let added =
    List.filter_map
      (fun (metric, fv) ->
        if List.mem_assoc metric bm then None
        else
          Some
            { bench; metric; baseline = Float.nan; fresh = fv;
              verdict = New_metric; note = "new metric (not in baseline)" })
      fm
  in
  compared @ added

let regressions findings =
  List.filter
    (fun f ->
      match f.verdict with
      | Regression | Missing_metric -> true
      | Ok | Improved | New_metric -> false)
    findings

let gate findings = regressions findings = []

let verdict_tag = function
  | Ok -> "ok"
  | Improved -> "improved"
  | Regression -> "REGRESSION"
  | New_metric -> "new"
  | Missing_metric -> "MISSING"

let pp_finding ppf f =
  let num v = if Float.is_nan v then "-" else Printf.sprintf "%.6g" v in
  Format.fprintf ppf "  %-34s %-30s %12s %12s  %-10s %s" f.bench f.metric
    (num f.baseline) (num f.fresh) (verdict_tag f.verdict) f.note

let pp ppf findings =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "  %-34s %-30s %12s %12s  %-10s %s" "bench" "metric"
    "baseline" "fresh" "verdict" "note";
  List.iter
    (fun f ->
      (* the quiet verdicts stay out of the table unless interesting *)
      match f.verdict with
      | Ok -> ()
      | _ -> Format.fprintf ppf "@,%a" pp_finding f)
    findings;
  let n_reg = List.length (regressions findings) in
  Format.fprintf ppf "@,  %d metric(s) compared, %d regression(s)@]"
    (List.length findings) n_reg
