let cell () : Shil.Analysis.oscillator =
  let f v =
    let core = (-.2e-3 *. v) +. (0.6e-3 *. v *. v *. v) in
    let clip = if v > 0.8 then 5e-3 *. ((v -. 0.8) ** 2.0) else 0.0 in
    core +. clip
  in
  let wc = 2.0 *. Float.pi *. 2e6 in
  {
    nl =
      Shil.Nonlinearity.make ~name:"asym_clip"
        ~key:"asym_clip(g1=2e-3,g3=0.6e-3,kc=5e-3,vc=0.8)" f;
    tank = Shil.Tank.make ~r:1.2e3 ~l:(150.0 /. wc) ~c:(1.0 /. (150.0 *. wc));
  }

let band (lr : Shil.Lock_range.t) =
  Printf.sprintf "[%.8g, %.8g] Hz (delta %.6g, centre %.8g)" lr.f_inj_low
    lr.f_inj_high lr.delta_f_inj
    (0.5 *. (lr.f_inj_low +. lr.f_inj_high))

let run ?(simulate = false) ?(self_consistent = true) () =
  let osc = cell () in
  let n = 2 and vi = 0.06 in
  let report = Shil.Analysis.run osc ~n ~vi in
  let plain = report.lock_range in
  let f0 = Ppv.Refined.free_running_frequency osc.nl ~tank:osc.tank in
  let recentred = Ppv.Refined.recenter plain ~f0 ~tank:osc.tank in
  let hb = Shil.Harmonic_balance.solve ~k_max:9 osc.nl ~tank:osc.tank in
  let rows =
    [
      Output.row_f "tank f_c (Hz)" (Shil.Tank.f_c osc.tank);
      Output.row_f "orbit f_0 (Hz)" f0;
      Output.row_f "harmonic-balance f_0 (Hz)" (Shil.Harmonic_balance.frequency hb);
      Output.row_f "harmonic-balance THD" (Shil.Harmonic_balance.thd hb);
      ("plain prediction", band plain);
      ("orbit-recentred", band recentred);
    ]
  in
  let rows =
    if self_consistent then begin
      let sc =
        Shil.Self_consistent.lock_range ~points:256 ~tol:1e-3 osc.nl
          ~tank:osc.tank ~n ~vi
      in
      rows @ [ ("self-consistent harmonic", band sc) ]
    end
    else rows
  in
  let rows =
    if simulate then begin
      let low =
        Shil.Simulate.lock_edge ~cycles:900.0 osc.nl ~tank:osc.tank ~vi ~n
          ~f_lo:(recentred.f_inj_low -. 15e3)
          ~f_hi:(recentred.f_inj_low +. 15e3)
          ~side:`Low
      in
      let high =
        Shil.Simulate.lock_edge ~cycles:900.0 osc.nl ~tank:osc.tank ~vi ~n
          ~f_lo:(recentred.f_inj_high -. 15e3)
          ~f_hi:(recentred.f_inj_high +. 15e3)
          ~side:`High
      in
      rows
      @ [
          ( "simulated (ODE truth)",
            Printf.sprintf "[%.8g, %.8g] Hz (delta %.6g, centre %.8g)" low high
              (high -. low)
              (0.5 *. (low +. high)) );
        ]
    end
    else rows
  in
  Output.make ~id:"A2"
    ~title:
      "ablation: filtering assumption on an asymmetric cell (n = 2, Vi = 0.06)"
    ~rows:
      (rows
      @ [
          ( "reading",
            "the plain band is offset by the free-running detuning the \
             paper's method neglects; orbit recentring recovers it, the \
             self-consistent harmonic accounts for part of it" );
        ])
    ()
