module Fig = Plotkit.Fig

type point = {
  vi : float;
  f_inj_low : float;
  f_inj_high : float;
  delta_f_inj : float;
}

let default_vis =
  [ 0.005; 0.0075; 0.01; 0.015; 0.02; 0.03; 0.05; 0.075; 0.1; 0.15; 0.2; 0.3 ]

let compute ?points ?(vis = default_vis) (osc : Shil.Analysis.oscillator) ~n =
  let r = (osc.tank : Shil.Tank.t).r in
  let a_nat =
    match Shil.Natural.predicted_amplitude osc.nl ~r with
    | Some a -> a
    | None ->
      Resilience.Oshil_error.raise_ Experiments ~phase:"tongue" No_oscillation
        "oscillator does not oscillate"
        ~remedy:"check the nonlinearity gain against 1/R"
  in
  (* every tongue cell (one |Vi|) is an independent grid + lock-range
     computation; fan the cells out one per task. Grid sampling inside a
     worker falls back to sequential, so the pool is not oversubscribed. A
     cell that fails becomes a typed hole instead of killing the sweep. *)
  let cells =
    Numerics.Pool.parallel_try_map_array ~chunk:1 ~subsystem:Experiments
      ~phase:"tongue"
      (fun vi ->
        let grid =
          Shil.Grid.sample ?points osc.nl ~n ~r ~vi
            ~a_range:(0.2 *. a_nat, 1.4 *. a_nat)
            ()
        in
        let lr = Shil.Lock_range.predict ?points grid ~tank:osc.tank in
        { vi; f_inj_low = lr.f_inj_low; f_inj_high = lr.f_inj_high;
          delta_f_inj = lr.delta_f_inj })
      (Array.of_list vis)
  in
  let holes = ref [] and pts = ref [] in
  Array.iteri
    (fun i cell ->
      match cell with
      | Ok p -> pts := p :: !pts
      | Error e ->
        if Resilience.Policy.fail_fast () then
          raise (Resilience.Oshil_error.Error e);
        Obs.Metrics.incr "resilience.tongue.holes";
        holes :=
          { Resilience.Summary.site =
              Printf.sprintf "vi=%.6g" (List.nth vis i);
            error = e }
          :: !holes)
    cells;
  ( List.rev !pts,
    Resilience.Summary.make ~attempted:(List.length vis) (List.rev !holes) )

let run ?vis () =
  let osc = Circuits.Tanh_osc.oscillator Circuits.Tanh_osc.default in
  let n = 3 in
  let pts, failures = compute ?vis osc ~n in
  let vis_arr = Array.of_list (List.map (fun p -> p.vi) pts) in
  let fig =
    Fig.create ~title:"Arnold tongue: 3rd-SHIL locking region (tanh cell)"
      ~xlabel:"f_inj (Hz)" ~ylabel:"|Vi| (V)" ()
  in
  let fig =
    Fig.add_line ~label:"lower edge" ~style:(Fig.solid Fig.blue) fig
      ~xs:(Array.of_list (List.map (fun p -> p.f_inj_low) pts))
      ~ys:vis_arr
  in
  let fig =
    Fig.add_line ~label:"upper edge" ~style:(Fig.solid Fig.red) fig
      ~xs:(Array.of_list (List.map (fun p -> p.f_inj_high) pts))
      ~ys:vis_arr
  in
  let fig =
    Fig.add_vline ~style:(Fig.dashed Fig.gray) fig
      ~x:(3.0 *. Shil.Tank.f_c osc.tank)
  in
  let rows =
    List.map
      (fun p ->
        ( Printf.sprintf "Vi = %.4g" p.vi,
          Printf.sprintf "[%.8g, %.8g] Hz (delta %.6g)" p.f_inj_low
            p.f_inj_high p.delta_f_inj ))
      pts
    @
    if Resilience.Summary.is_clean failures then []
    else [ ("failed cells", Resilience.Summary.to_string failures) ]
  in
  Output.make ~id:"X3" ~title:"extension: Arnold tongue (lock band vs Vi)"
    ~rows ~figures:[ ("tongue", fig) ] ()
