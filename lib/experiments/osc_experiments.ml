module Fig = Plotkit.Fig
module Df = Shil.Describing_function

type bench = {
  name : string;
  fc : float;
  natural_target : float;
  oscillator : Shil.Analysis.oscillator;
  fv_table : float array * float array;
  circuit : unit -> Spice.Circuit.t;
  circuit_injected : f_inj:float -> Spice.Circuit.t;
  circuit_with_extra : extra:Spice.Device.t list -> Spice.Circuit.t;
  state_pulse : at:float -> Spice.Device.t;
  state_pulse_offsets : float * float;  (* oscillation-cycle offsets of the two kicks *)
  probe : Spice.Transient.probe;
  vi : float;
  n : int;
  lock_cycles : float;  (* settle length per lock trial (tank-Q dependent) *)
  paper_table : (string * float) list;
}

let pulse_device ~name ~np ~nn ~at ~width ~amplitude =
  Spice.Device.Isource
    {
      name;
      np;
      nn;
      wave =
        Spice.Wave.Pulse
          {
            v1 = 0.0;
            v2 = amplitude;
            delay = at;
            rise = width /. 10.0;
            fall = width /. 10.0;
            width;
            period = 0.0;
          };
    }

let diff_pair ?(params = Circuits.Diff_pair.default) () =
  let vi = 0.03 and n = 3 in
  let fv_table = Circuits.Diff_pair.extraction_fv params in
  let vs, is = fv_table in
  let nl = Shil.Nonlinearity.of_table ~name:"diff_pair" ~vs ~is () in
  let tank = Circuits.Diff_pair.tank params in
  let fc = Shil.Tank.f_c tank in
  (* state-flip pulse: a strong sub-cycle kick (~10 tank charges in 0.3
     cycles) reliably throws the oscillator into a different basin *)
  let width = 0.3 /. fc in
  let amplitude = 10.0 *. params.c *. 0.505 /. width in
  {
    name = "diff-pair";
    fc;
    natural_target = 0.505;
    oscillator = { nl; tank };
    fv_table;
    circuit = (fun () -> Circuits.Diff_pair.circuit params);
    circuit_injected =
      (fun ~f_inj ->
        Circuits.Diff_pair.circuit ~injection:{ vi; n; f_inj; phase = 0.0 } params);
    circuit_with_extra =
      (fun ~extra ->
        Circuits.Diff_pair.circuit
          ~injection:{ vi; n; f_inj = 3.0 *. fc; phase = 0.0 }
          ~extra params);
    state_pulse =
      (fun ~at ->
        pulse_device
          ~name:(Printf.sprintf "IPULSE_%.0fus" (at *. 1e6))
          ~np:"ncr" ~nn:"tl" ~at ~width ~amplitude);
    state_pulse_offsets = (0.41, 0.94);
    probe = Circuits.Diff_pair.osc_probe;
    vi;
    n;
    lock_cycles = 600.0;
    paper_table =
      [
        ("simulation lower lock limit (Hz)", 1.4998e6);
        ("simulation upper lock limit (Hz)", 1.5174e6);
        ("simulation lock range (Hz)", 0.0176e6);
        ("prediction lower lock limit (Hz)", 1.501065e6);
        ("prediction upper lock limit (Hz)", 1.518735e6);
        ("prediction lock range (Hz)", 0.01767e6);
      ];
  }

let tunnel ?(params = Circuits.Tunnel_osc.default) () =
  let vi = 0.03 and n = 3 in
  let fv_table = Circuits.Tunnel_osc.extraction_fv params in
  let nl = Circuits.Tunnel_osc.nonlinearity_extracted params in
  let tank = Circuits.Tunnel_osc.tank params in
  let fc = Shil.Tank.f_c tank in
  let width = 0.3 /. fc in
  let amplitude = 10.0 *. params.c *. 0.199 /. width in
  {
    name = "tunnel-diode";
    fc;
    natural_target = 0.199;
    oscillator = { nl; tank };
    fv_table;
    circuit = (fun () -> Circuits.Tunnel_osc.circuit params);
    circuit_injected =
      (fun ~f_inj ->
        Circuits.Tunnel_osc.circuit ~injection:{ vi; n; f_inj; phase = 0.0 } params);
    circuit_with_extra =
      (fun ~extra ->
        Circuits.Tunnel_osc.circuit
          ~injection:{ vi; n; f_inj = 3.0 *. fc; phase = 0.0 }
          ~extra params);
    state_pulse =
      (fun ~at ->
        pulse_device
          ~name:(Printf.sprintf "IPULSE_%.0fns" (at *. 1e9))
          ~np:"0" ~nn:"t" ~at ~width ~amplitude);
    state_pulse_offsets = (0.41, 0.20);
    probe = Circuits.Tunnel_osc.osc_probe;
    vi;
    n;
    (* Q = 316: near-edge beats are slow, so lock decisions need a long
       settle or the apparent band comes out wide *)
    lock_cycles = 1500.0;
    paper_table =
      [
        ("simulation lower lock limit (Hz)", 1.507185e9);
        ("simulation upper lock limit (Hz)", 1.512293e9);
        ("simulation lock range (Hz)", 0.005108e9);
        ("prediction lower lock limit (Hz)", 1.50732e9);
        ("prediction upper lock limit (Hz)", 1.512429e9);
        ("prediction lock range (Hz)", 0.005109e9);
      ];
  }

let id_prefix b = if b.name = "diff-pair" then "dp" else "td"

let fig_fv b =
  let vs, is = b.fv_table in
  let fig =
    Fig.add_line ~label:"i = f(v)"
      (Fig.create
         ~title:(Printf.sprintf "extracted i = f(v), %s" b.name)
         ~xlabel:"v (V)" ~ylabel:"i (A)" ())
      ~xs:vs ~ys:is
  in
  let nl = b.oscillator.nl in
  let id = if b.name = "diff-pair" then "F12a" else "F16b" in
  Output.make ~id
    ~title:(Printf.sprintf "DC-sweep extraction of f(v) for the %s" b.name)
    ~rows:
      [
        Output.row_f "f'(0) (S)" (Shil.Nonlinearity.deriv nl 0.0);
        Output.row_f "f(0) (A)" (Shil.Nonlinearity.eval nl 0.0);
        ("table points", string_of_int (Array.length vs));
      ]
    ~figures:[ (Printf.sprintf "fv_%s" (id_prefix b), fig) ]
    ()

let fig_natural_prediction b =
  let r = (b.oscillator.tank : Shil.Tank.t).r in
  let nl = b.oscillator.nl in
  let a_pred =
    match Shil.Natural.predicted_amplitude nl ~r with
    | Some a -> a
    | None -> Float.nan
  in
  let fig =
    Fig.create
      ~title:(Printf.sprintf "natural amplitude prediction, %s" b.name)
      ~xlabel:"A (V)" ~ylabel:"T_f(A)" ()
  in
  let fig =
    Fig.add_fun ~label:"T_f(A)" fig
      ~f:(fun a -> Df.t_f_free nl ~r ~a)
      ~a:(1e-3 *. a_pred) ~b:(1.4 *. a_pred)
  in
  let fig = Fig.add_hline ~style:(Fig.dashed Fig.black) fig ~y:1.0 in
  let fig = Fig.add_scatter fig ~xs:[| a_pred |] ~ys:[| 1.0 |] in
  let id = if b.name = "diff-pair" then "F12b" else "F16c" in
  Output.make ~id
    ~title:(Printf.sprintf "natural oscillation prediction for the %s" b.name)
    ~rows:
      [
        Output.row_f "predicted A (V)" a_pred;
        Output.row_f "paper's value (V)" b.natural_target;
      ]
    ~figures:[ (Printf.sprintf "natural_%s" (id_prefix b), fig) ]
    ()

let fig_transient ?(cycles = 400.0) b =
  let cmp =
    Circuits.Validate.natural ~cycles ~circuit:(b.circuit ()) ~probe:b.probe
      ~osc:b.oscillator ()
  in
  (* also record the waveform for the figure: a short startup window *)
  let dt = 1.0 /. (b.fc *. 120.0) in
  let opts = Spice.Transient.default_options ~dt ~t_stop:(60.0 /. b.fc) in
  let res = Spice.Transient.run (b.circuit ()) ~probes:[ b.probe ] opts in
  let values = Spice.Transient.signal res b.probe in
  let mean = Array.fold_left ( +. ) 0.0 values /. float_of_int (Array.length values) in
  let fig =
    Fig.add_line ~label:"v_out"
      (Fig.create
         ~title:(Printf.sprintf "start-up transient, %s" b.name)
         ~xlabel:"t (s)" ~ylabel:"v_out (V)" ())
      ~xs:res.times
      ~ys:(Array.map (fun v -> v -. mean) values)
  in
  let id = if b.name = "diff-pair" then "F13" else "F17" in
  Output.make ~id
    ~title:(Printf.sprintf "transient validation of natural oscillation, %s" b.name)
    ~rows:
      [
        Output.row_f "predicted A (V)" cmp.predicted_a;
        Output.row_f "simulated A (V)" cmp.simulated_a;
        Output.row_f "predicted f (Hz)" cmp.predicted_f;
        Output.row_f "simulated f (Hz)" cmp.simulated_f;
        ( "amplitude error",
          Printf.sprintf "%.3f %%"
            (100.0 *. Float.abs (cmp.simulated_a -. cmp.predicted_a) /. cmp.predicted_a) );
      ]
    ~figures:[ (Printf.sprintf "transient_%s" (id_prefix b), fig) ]
    ()

let predicted_lock_range b =
  let r = (b.oscillator.tank : Shil.Tank.t).r in
  let a_nat =
    match Shil.Natural.predicted_amplitude b.oscillator.nl ~r with
    | Some a -> a
    | None ->
      Resilience.Oshil_error.raise_ Experiments ~phase:"osc-bench"
        No_oscillation "bench oscillator does not oscillate"
        ~remedy:"check the bench nonlinearity gain against 1/R"
  in
  let grid =
    Shil.Grid.sample b.oscillator.nl ~n:b.n ~r ~vi:b.vi
      ~a_range:(0.25 *. a_nat, 1.3 *. a_nat)
      ()
  in
  (grid, Shil.Lock_range.predict grid ~tank:b.oscillator.tank)

let table_lock_range ?cycles ?(predict_only = false) b =
  let cycles = Option.value cycles ~default:b.lock_cycles in
  let _grid, lr = predicted_lock_range b in
  let rows =
    [
      Output.row_f "prediction lower lock limit (Hz)" lr.f_inj_low;
      Output.row_f "prediction upper lock limit (Hz)" lr.f_inj_high;
      Output.row_f "prediction lock range (Hz)" lr.delta_f_inj;
      Output.row_f "prediction phi_d_max (rad)" lr.phi_d_max;
    ]
  in
  let rows =
    if predict_only then rows
    else begin
      let cmp =
        Circuits.Validate.lock_range ~cycles
          ~make_circuit:(fun ~f_inj -> b.circuit_injected ~f_inj)
          ~probe:b.probe ~n:b.n ~predicted:lr ()
      in
      rows
      @ [
          Output.row_f "simulation lower lock limit (Hz)" cmp.sim_f_low;
          Output.row_f "simulation upper lock limit (Hz)" cmp.sim_f_high;
          Output.row_f "simulation lock range (Hz)" cmp.sim_delta;
        ]
    end
  in
  let paper_rows =
    List.map (fun (k, v) -> ("paper " ^ k, Printf.sprintf "%.8g" v)) b.paper_table
  in
  let id = if b.name = "diff-pair" then "T1" else "T2" in
  ( Output.make ~id
      ~title:
        (Printf.sprintf "SHIL lock-range table, %s (|Vi| = %g, n = %d)" b.name
           b.vi b.n)
      ~rows:(rows @ paper_rows) (),
    lr )

let fig_lock_range_curves b =
  let grid, lr = predicted_lock_range b in
  let phi_ds =
    [
      (0.0, Fig.solid Fig.green);
      (0.5 *. lr.phi_d_max, Fig.solid Fig.orange);
      (0.98 *. lr.phi_d_max, Fig.solid Fig.red);
    ]
  in
  let fig =
    Fig.create
      ~title:(Printf.sprintf "SHIL lock range prediction, %s" b.name)
      ~xlabel:"phi (rad)" ~ylabel:"A (V)" ()
  in
  let fig =
    Fig.add_polylines ~label:"C_{T_f,1}" ~style:(Fig.solid Fig.blue) fig
      ~curves:(Shil.Grid.t_f_curve grid)
  in
  let fig =
    List.fold_left
      (fun fig (phi_d, style) ->
        Fig.add_polylines
          ~label:(Printf.sprintf "angle(-I1) = %.3g" (-.phi_d))
          ~style fig
          ~curves:(Shil.Grid.phase_curve grid ~phi_d))
      fig phi_ds
  in
  let id = if b.name = "diff-pair" then "F14" else "F18" in
  Output.make ~id
    ~title:(Printf.sprintf "lock-range isoline picture, %s" b.name)
    ~rows:[ Output.row_f "phi_d_max (rad)" lr.phi_d_max ]
    ~figures:[ (Printf.sprintf "lockrange_%s" (id_prefix b), fig) ]
    ()

let fig_states ?(window_cycles = 800.0) b =
  let f_osc = b.fc in
  let window = window_cycles /. f_osc in
  (* stagger the pulse instants off the lock period so the two kicks hit
     at different oscillation phases (a deterministic simulator otherwise
     reproduces the same state every time) *)
  let off1, off2 = b.state_pulse_offsets in
  let pulse_times =
    [ window +. (off1 /. f_osc); (2.0 *. window) +. (off2 /. f_osc) ]
  in
  let phases =
    Circuits.Validate.lock_states
      ~cycles:(3.0 *. window_cycles)
      ~make_circuit:(fun ~extra -> b.circuit_with_extra ~extra)
      ~probe:b.probe ~n:b.n
      ~f_inj:(3.0 *. b.fc)
      ~pulse:(fun ~at -> b.state_pulse ~at)
      ~pulse_times ()
  in
  let spacing = 2.0 *. Float.pi /. float_of_int b.n in
  let rows =
    List.mapi
      (fun k psi ->
        ( Printf.sprintf "window %d phase (rad)" k,
          Printf.sprintf "%.5f (state %.2f)" psi
            (Numerics.Angle.wrap_two_pi psi /. spacing) ))
      phases
  in
  let distinct =
    List.sort_uniq Int.compare
      (List.map
         (fun psi ->
           int_of_float
             (Float.round (Numerics.Angle.wrap_two_pi psi /. spacing))
           mod b.n)
         phases)
  in
  let id = if b.name = "diff-pair" then "F15" else "F19" in
  Output.make ~id
    ~title:(Printf.sprintf "SHIL states under phase-flip pulses, %s" b.name)
    ~rows:
      (rows
      @ [
          ("distinct states observed", string_of_int (List.length distinct));
          Output.row_f "expected spacing (rad)" spacing;
        ])
    ()
