(** Machine-readable benchmark records.

    The bench harness emits one small JSON object per tracked kernel
    (e.g. [BENCH_grid.json], [BENCH_lockrange.json]) so the performance
    trajectory is comparable across PRs. Schema:

    {v
    {
      "name": "grid_sample_121x101x512",
      "jobs": 4,
      "wall_s": 0.31,
      "speedup_vs_seq": 2.7,
      ... further numeric fields (seq_wall_s, counters, flags) ...
      ... string fields (host_domains, ocaml_version, git_rev) ...
    }
    v}

    Numeric fields other than the fixed four land in [extra] (this is
    where bench runs embed telemetry counter snapshots such as
    [newton_iters]); string fields land in [meta] (host context from
    {!host_meta}).

    [parse] / [read] implement just enough JSON (a flat object of
    strings and numbers) to round-trip that schema, so CI can verify the
    emitted files without external dependencies. *)

type entry = {
  name : string;
  jobs : int;  (** pool size the timed run used *)
  wall_s : float;  (** wall-clock seconds of the timed run *)
  speedup_vs_seq : float;  (** sequential wall time / [wall_s] *)
  extra : (string * float) list;  (** any further numeric fields *)
  meta : (string * string) list;  (** any further string fields *)
}

val host_meta : unit -> (string * string) list
(** Execution context for bench records: recommended domain count,
    OCaml version, OS type, and — when the corresponding environment
    variables are set and non-empty — [git_rev] from [OSHIL_GIT_REV]
    (the revision CI baked in) and [dsa_findings] from
    [OSHIL_DSA_FINDINGS] (the unwaived static-analysis finding count at
    measurement time; the bench harnesses run behind the [@analyze]
    alias and record ["0"], asserting the tree was analyzer-clean when
    the numbers were taken). *)

exception Parse_error of string

val to_json : entry -> string
val write : path:string -> entry -> unit

val parse : string -> entry
(** Raises {!Parse_error} on malformed input or missing required
    fields. NaN round-trips as JSON [null]. *)

val read : path:string -> entry
