type entry = {
  name : string;
  jobs : int;
  wall_s : float;
  speedup_vs_seq : float;
  extra : (string * float) list;
  meta : (string * string) list;
}

let host_meta () =
  let base =
    [
      ("host_domains", string_of_int (Domain.recommended_domain_count ()));
      ("ocaml_version", Sys.ocaml_version);
      ("os_type", Sys.os_type);
    ]
  in
  let opt key = function
    | Some v when String.trim v <> "" -> [ (key, String.trim v) ]
    | _ -> []
  in
  base
  @ opt "git_rev" (Sys.getenv_opt "OSHIL_GIT_REV")
  @ opt "dsa_findings" (Sys.getenv_opt "OSHIL_DSA_FINDINGS")

let json_float x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.9g" x

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json e =
  let fields =
    [
      Printf.sprintf "\"name\": \"%s\"" (escape e.name);
      Printf.sprintf "\"jobs\": %d" e.jobs;
      Printf.sprintf "\"wall_s\": %s" (json_float e.wall_s);
      Printf.sprintf "\"speedup_vs_seq\": %s" (json_float e.speedup_vs_seq);
    ]
    @ List.map
        (fun (k, v) -> Printf.sprintf "\"%s\": %s" (escape k) (json_float v))
        e.extra
    @ List.map
        (fun (k, v) -> Printf.sprintf "\"%s\": \"%s\"" (escape k) (escape v))
        e.meta
  in
  "{\n  " ^ String.concat ",\n  " fields ^ "\n}\n"

let write ~path e =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json e))

(* ------------------------------------------------------------------ *)
(* Minimal JSON-object parser: a flat object of string / number / null
   values, which is exactly the schema emitted above. Used by the
   bench-smoke target and the tests to verify the emitted files parse. *)

exception Parse_error of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = text.[!pos] in
        incr pos;
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          incr pos;
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            if !pos + 4 > n then fail "bad \\u escape";
            (* decode only for validation; emitted names are ASCII *)
            let hex = String.sub text !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?'
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "unsupported escape");
          go ()
        | c -> Buffer.add_char b c; go ()
      end
    in
    go ()
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> `String (parse_string ())
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      while
        !pos < n
        && (match text.[!pos] with
           | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
           | _ -> false)
      do
        incr pos
      done;
      (match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some f -> `Float f
      | None -> fail "bad number")
    | Some 'n' ->
      if !pos + 4 <= n && String.sub text !pos 4 = "null" then begin
        pos := !pos + 4;
        `Float Float.nan
      end
      else fail "expected null"
    | _ -> fail "expected value"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then incr pos
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      let v = parse_value () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' -> incr pos; members ()
      | Some '}' -> incr pos
      | _ -> fail "expected ',' or '}'"
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  let fields = List.rev !fields in
  let find k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "missing field %S" k))
  in
  let get_string k =
    match find k with
    | `String s -> s
    | `Float _ -> raise (Parse_error (Printf.sprintf "field %S: expected string" k))
  in
  let get_float k =
    match find k with
    | `Float f -> f
    | `String _ -> raise (Parse_error (Printf.sprintf "field %S: expected number" k))
  in
  {
    name = get_string "name";
    jobs = int_of_float (get_float "jobs");
    wall_s = get_float "wall_s";
    speedup_vs_seq = get_float "speedup_vs_seq";
    extra =
      List.filter_map
        (fun (k, v) ->
          match (k, v) with
          | ("name" | "jobs" | "wall_s" | "speedup_vs_seq"), _ -> None
          | k, `Float f -> Some (k, f)
          | _, `String _ -> None)
        fields;
    meta =
      List.filter_map
        (fun (k, v) ->
          match (k, v) with
          | "name", _ -> None
          | k, `String s -> Some (k, s)
          | _, `Float _ -> None)
        fields;
  }

let read ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
