module Fig = Plotkit.Fig
module Df = Shil.Describing_function

type setup = { params : Circuits.Tanh_osc.params; vi : float; n : int }

let default_setup = { params = Circuits.Tanh_osc.default; vi = 0.2; n = 3 }

let oscillator s = Circuits.Tanh_osc.oscillator s.params

let grid_of s =
  let osc = oscillator s in
  let a_nat =
    match Shil.Natural.predicted_amplitude osc.nl ~r:s.params.r with
    | Some a -> a
    | None ->
      Resilience.Oshil_error.raise_ Experiments ~phase:"tanh" No_oscillation
        "tanh setup does not oscillate"
        ~remedy:"check the cell gain against 1/R"
  in
  let g =
    Shil.Grid.sample osc.nl ~n:s.n ~r:s.params.r ~vi:s.vi
      ~a_range:(0.25 *. a_nat, 1.3 *. a_nat)
      ()
  in
  (osc, a_nat, g)

let fig3_natural ?(validate = true) s =
  let osc = oscillator s in
  let r = s.params.r in
  let a_pred =
    match Shil.Natural.predicted_amplitude osc.nl ~r with
    | Some a -> a
    | None -> Float.nan
  in
  let fig =
    Fig.create ~title:"Fig. 3: natural oscillation amplitude (neg-tanh)"
      ~xlabel:"A (V)" ~ylabel:"T_f(A)" ()
  in
  let fig =
    Fig.add_fun ~label:"T_f(A)" fig
      ~f:(fun a -> Df.t_f_free osc.nl ~r ~a)
      ~a:1e-3 ~b:(2.2 *. a_pred)
  in
  let fig = Fig.add_hline ~style:(Fig.dashed Fig.black) fig ~y:1.0 in
  let fig = Fig.add_scatter fig ~xs:[| a_pred |] ~ys:[| 1.0 |] in
  let rows = [ Output.row_f "predicted A (V)" a_pred ] in
  let rows =
    if validate then begin
      let res = Shil.Simulate.free_run osc.nl ~tank:osc.tank in
      let tail = Waveform.Signal.tail_fraction res.signal 0.2 in
      rows
      @ [
          Output.row_f "simulated A (V)" (Waveform.Measure.amplitude tail);
          Output.row_f "simulated f (Hz)" (Waveform.Measure.frequency tail);
          Output.row_f "tank f_c (Hz)" (Shil.Tank.f_c osc.tank);
        ]
    end
    else rows
  in
  Output.make ~id:"F3" ~title:"natural oscillation of the tanh oscillator"
    ~rows ~figures:[ ("tf_vs_a", fig) ] ()

let fig6_tank s =
  let tank = Circuits.Tanh_osc.tank s.params in
  let fc = Shil.Tank.f_c tank in
  let mag_fig =
    Fig.add_fun ~label:"|H(j2\xcf\x80f)|"
      (Fig.create ~title:"Fig. 6: RLC tank transfer function (magnitude)"
         ~xlabel:"f (Hz)" ~ylabel:"|H| (Ohm)" ())
      ~f:(fun f -> Shil.Tank.mag tank ~omega:(2.0 *. Float.pi *. f))
      ~a:(0.5 *. fc) ~b:(1.5 *. fc) ~n:512
  in
  let phase_fig =
    Fig.add_fun ~label:"arg H"
      (Fig.create ~title:"Fig. 6: RLC tank transfer function (phase)"
         ~xlabel:"f (Hz)" ~ylabel:"phi_d (rad)" ())
      ~f:(fun f -> Shil.Tank.phase tank ~omega:(2.0 *. Float.pi *. f))
      ~a:(0.5 *. fc) ~b:(1.5 *. fc) ~n:512
  in
  let f45 = Shil.Tank.omega_of_phase tank ~phi_d:(-.Float.pi /. 4.0) /. (2.0 *. Float.pi) in
  Output.make ~id:"F6" ~title:"RLC tank transfer function"
    ~rows:
      [
        Output.row_f "f_c (Hz)" fc;
        Output.row_f "Q" (Shil.Tank.q tank);
        Output.row_f "peak |H| (Ohm)" (Shil.Tank.mag tank ~omega:(Shil.Tank.omega_c tank));
        Output.row_f "-45 deg frequency (Hz)" f45;
      ]
    ~figures:[ ("magnitude", mag_fig); ("phase", phase_fig) ]
    ()

let solution_rows sols =
  List.concat_map
    (fun (p : Shil.Solutions.point) ->
      let tag = Printf.sprintf "lock at phi=%.4f" p.phi in
      [
        (tag, Printf.sprintf "A=%.6g V, %s (tr=%.3g, det=%.3g)" p.a
           (if p.stable then "stable" else "unstable") p.trace p.det);
      ])
    sols

let curves_figure ~title g ~phi_ds =
  let fig =
    Fig.create ~title ~xlabel:"phi (rad)" ~ylabel:"A (V)" ()
  in
  let fig =
    Fig.add_polylines ~label:"C_{T_f,1}" ~style:(Fig.solid Fig.blue) fig
      ~curves:(Shil.Grid.t_f_curve g)
  in
  List.fold_left
    (fun fig (phi_d, style) ->
      Fig.add_polylines
        ~label:(Printf.sprintf "angle(-I1) = %.3g" (-.phi_d))
        ~style fig
        ~curves:(Shil.Grid.phase_curve g ~phi_d))
    fig phi_ds

let fig7_solutions ?(phi_d = 0.1) s =
  let _osc, _a_nat, g = grid_of s in
  let sols = Shil.Solutions.find g ~phi_d in
  let fig =
    curves_figure
      ~title:
        (Printf.sprintf "Fig. 7: SHIL lock solutions at phi_d = %.3g" phi_d)
      g
      ~phi_ds:[ (phi_d, Fig.solid Fig.green) ]
  in
  let stable = List.filter (fun (p : Shil.Solutions.point) -> p.stable) sols in
  let unstable = List.filter (fun (p : Shil.Solutions.point) -> not p.stable) sols in
  let scatter pts color fig =
    Fig.add_scatter ~color fig
      ~xs:(Array.of_list (List.map (fun (p : Shil.Solutions.point) -> p.phi) pts))
      ~ys:(Array.of_list (List.map (fun (p : Shil.Solutions.point) -> p.a) pts))
  in
  let fig = scatter stable Fig.green fig in
  let fig = scatter unstable Fig.red fig in
  Output.make ~id:"F7" ~title:"SHIL solutions in the (phi, A) plane"
    ~rows:
      ((("number of locks", string_of_int (List.length sols)) :: solution_rows sols))
    ~figures:[ ("curves", fig) ]
    ()

let fig9_states s =
  let _osc, _a_nat, g = grid_of s in
  let sols = Shil.Solutions.find g ~phi_d:0.0 in
  match List.find_opt (fun (p : Shil.Solutions.point) -> p.stable) sols with
  | None ->
    Output.make ~id:"F9" ~title:"n states of SHIL"
      ~rows:[ ("error", "no stable lock at centre frequency") ]
      ()
  | Some p ->
    let states = Shil.Solutions.n_states p ~n:s.n in
    let fig =
      Fig.create ~title:"Fig. 9: the n oscillator states (n = 3)"
        ~xlabel:"Re" ~ylabel:"Im" ()
    in
    (* unit circle guide *)
    let t = Array.init 128 (fun k -> 2.0 *. Float.pi *. float_of_int k /. 127.0) in
    let fig =
      Fig.add_line ~style:(Fig.dashed Fig.gray) fig
        ~xs:(Array.map (fun a -> p.a *. cos a) t)
        ~ys:(Array.map (fun a -> p.a *. sin a) t)
    in
    let fig =
      List.fold_left
        (fun fig (psi, a) ->
          Fig.add_line ~style:(Fig.solid Fig.blue) fig
            ~xs:[| 0.0; a *. cos psi |]
            ~ys:[| 0.0; a *. sin psi |])
        fig states
    in
    let rows =
      List.mapi
        (fun k (psi, a) ->
          ( Printf.sprintf "state %d" k,
            Printf.sprintf "psi = %.6g rad, A = %.6g V" psi a ))
        states
    in
    let spacing =
      match states with
      | (psi0, _) :: (psi1, _) :: _ -> Numerics.Angle.dist psi1 psi0
      | _ -> Float.nan
    in
    Output.make ~id:"F9" ~title:"n states of SHIL (phasor picture)"
      ~rows:(rows @ [ Output.row_f "state spacing (rad)" spacing;
                      Output.row_f "2 pi / n (rad)" (2.0 *. Float.pi /. float_of_int s.n) ])
      ~figures:[ ("states", fig) ]
      ()

let fig10_lock_range ?(validate = false) s =
  let osc, _a_nat, g = grid_of s in
  let lr = Shil.Lock_range.predict g ~tank:osc.tank in
  let phi_ds =
    [
      (0.0, Fig.solid Fig.green);
      (0.5 *. lr.phi_d_max, Fig.solid Fig.orange);
      (0.98 *. lr.phi_d_max, Fig.solid Fig.red);
      (-0.5 *. lr.phi_d_max, Fig.dashed Fig.orange);
      (-0.98 *. lr.phi_d_max, Fig.dashed Fig.red);
    ]
  in
  let fig =
    curves_figure ~title:"Fig. 10: lock-range prediction via isolines" g ~phi_ds
  in
  let rows =
    [
      Output.row_f "phi_d_max (rad)" lr.phi_d_max;
      Output.row_f "f_inj low (Hz)" lr.f_inj_low;
      Output.row_f "f_inj high (Hz)" lr.f_inj_high;
      Output.row_f "lock range (Hz)" lr.delta_f_inj;
      ("paper Fig. 10 boundary", "-0.295 rad (their tanh parameters)");
    ]
  in
  let rows =
    if validate then begin
      let nl = osc.nl and tank = osc.tank in
      let delta = lr.delta_f_inj in
      let low =
        Shil.Simulate.lock_edge nl ~tank ~vi:s.vi ~n:s.n
          ~f_lo:(lr.f_inj_low -. (0.4 *. delta))
          ~f_hi:(lr.f_inj_low +. (0.4 *. delta))
          ~side:`Low
      in
      let high =
        Shil.Simulate.lock_edge nl ~tank ~vi:s.vi ~n:s.n
          ~f_lo:(lr.f_inj_high -. (0.4 *. delta))
          ~f_hi:(lr.f_inj_high +. (0.4 *. delta))
          ~side:`High
      in
      rows
      @ [
          Output.row_f "simulated f_inj low (Hz)" low;
          Output.row_f "simulated f_inj high (Hz)" high;
          Output.row_f "simulated lock range (Hz)" (high -. low);
        ]
    end
    else rows
  in
  Output.make ~id:"F10" ~title:"SHIL lock range of the tanh oscillator" ~rows
    ~figures:[ ("isolines", fig) ]
    ()
