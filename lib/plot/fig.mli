(** Figure model: a renderer-independent description of a 2-D plot.

    Build a figure with {!create} and the [add_*] functions (each returns
    the extended figure), then hand it to {!Svg_render} or
    {!Ascii_render}. [add_line] and [add_scatter] raise
    [Invalid_argument] on an [xs]/[ys] length mismatch. *)

type color = { r : int; g : int; b : int }

val black : color
val red : color
val blue : color
val green : color
val orange : color
val purple : color
val gray : color

type line_style = {
  color : color;
  width : float;
  dash : float list; (* empty = solid; else SVG dash pattern *)
}

val solid : ?width:float -> color -> line_style
val dashed : ?width:float -> color -> line_style

type marker = Circle | Cross | Square

type series =
  | Line of { xs : float array; ys : float array; style : line_style; label : string option }
  | Scatter of { xs : float array; ys : float array; marker : marker; color : color; size : float; label : string option }
  | Polylines of { curves : (float array * float array) list; style : line_style; label : string option }
  | Hline of { y : float; style : line_style }
  | Vline of { x : float; style : line_style }
  | Text of { x : float; y : float; text : string; color : color }

type t = {
  title : string;
  xlabel : string;
  ylabel : string;
  x_range : (float * float) option;
  y_range : (float * float) option;
  series : series list; (* in draw order *)
}

val create : ?title:string -> ?xlabel:string -> ?ylabel:string -> unit -> t

val with_x_range : t -> float * float -> t
val with_y_range : t -> float * float -> t

val add_line :
  ?label:string -> ?style:line_style -> t -> xs:float array -> ys:float array -> t

val add_fun :
  ?label:string -> ?style:line_style -> ?n:int -> t ->
  f:(float -> float) -> a:float -> b:float -> t
(** Samples [f] at [n] (default 256) uniform points on [[a, b]]. *)

val add_scatter :
  ?label:string -> ?marker:marker -> ?color:color -> ?size:float -> t ->
  xs:float array -> ys:float array -> t

val add_polylines :
  ?label:string -> ?style:line_style -> t ->
  curves:(float array * float array) list -> t

val add_hline : ?style:line_style -> t -> y:float -> t
val add_vline : ?style:line_style -> t -> x:float -> t
val add_text : ?color:color -> t -> x:float -> y:float -> text:string -> t

val data_bounds : t -> (float * float) * (float * float)
(** [(x_lo, x_hi), (y_lo, y_hi)] over all series data (respecting the
    explicit ranges when set); defaults to the unit square when the figure
    has no located data. *)
