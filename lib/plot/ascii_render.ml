let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let to_string ?(cols = 72) ?(rows = 24) (fig : Fig.t) =
  let (xlo, xhi), (ylo, yhi) = Fig.data_bounds fig in
  let xlo, xhi = if xlo = xhi then (xlo -. 1.0, xhi +. 1.0) else (xlo, xhi) in
  let ylo, yhi = if ylo = yhi then (ylo -. 1.0, yhi +. 1.0) else (ylo, yhi) in
  let grid = Array.make_matrix rows cols ' ' in
  let col_of x =
    int_of_float (Float.round ((x -. xlo) /. (xhi -. xlo) *. float_of_int (cols - 1)))
  in
  let row_of y =
    (rows - 1)
    - int_of_float
        (Float.round ((y -. ylo) /. (yhi -. ylo) *. float_of_int (rows - 1)))
  in
  let put x y ch =
    if Float.is_finite x && Float.is_finite y then begin
      let c = col_of x and r = row_of y in
      if c >= 0 && c < cols && r >= 0 && r < rows then grid.(r).(c) <- ch
    end
  in
  let plot_arrays xs ys ch =
    (* draw with simple linear interpolation between consecutive samples so
       steep curves stay connected *)
    let n = Array.length xs in
    for i = 0 to n - 1 do
      put xs.(i) ys.(i) ch
    done;
    for i = 0 to n - 2 do
      if
        Float.is_finite xs.(i) && Float.is_finite ys.(i)
        && Float.is_finite xs.(i + 1)
        && Float.is_finite ys.(i + 1)
      then begin
        let steps = 4 in
        for s = 1 to steps - 1 do
          let f = float_of_int s /. float_of_int steps in
          put
            (xs.(i) +. (f *. (xs.(i + 1) -. xs.(i))))
            (ys.(i) +. (f *. (ys.(i + 1) -. ys.(i))))
            ch
        done
      end
    done
  in
  let idx = ref 0 in
  let next_glyph () =
    let g = glyphs.(!idx mod Array.length glyphs) in
    incr idx;
    g
  in
  List.iter
    (fun (s : Fig.series) ->
      match s with
      | Line { xs; ys; _ } -> plot_arrays xs ys (next_glyph ())
      | Scatter { xs; ys; _ } -> plot_arrays xs ys (next_glyph ())
      | Polylines { curves; _ } ->
        let g = next_glyph () in
        List.iter (fun (xs, ys) -> plot_arrays xs ys g) curves
      | Hline { y; _ } ->
        let r = row_of y in
        if r >= 0 && r < rows then
          for c = 0 to cols - 1 do
            if grid.(r).(c) = ' ' then grid.(r).(c) <- '-'
          done
      | Vline { x; _ } ->
        let c = col_of x in
        if c >= 0 && c < cols then
          for r = 0 to rows - 1 do
            if grid.(r).(c) = ' ' then grid.(r).(c) <- '|'
          done
      | Text _ -> ())
    fig.series;
  let buf = Buffer.create ((rows + 4) * (cols + 4)) in
  if fig.title <> "" then Buffer.add_string buf (fig.title ^ "\n");
  Buffer.add_string buf (Printf.sprintf "%12s +%s+\n" (Scale.tick_label yhi) (String.make cols '-'));
  Array.iteri
    (fun r row ->
      let label =
        if r = rows - 1 then Printf.sprintf "%12s " (Scale.tick_label ylo)
        else String.make 13 ' '
      in
      Buffer.add_string buf label;
      Buffer.add_char buf '|';
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_string buf "|\n")
    grid;
  Buffer.add_string buf (Printf.sprintf "%12s +%s+\n" "" (String.make cols '-'));
  let xlo_label = Scale.tick_label xlo in
  Buffer.add_string buf
    (Printf.sprintf "%13s%s%*s\n" "" xlo_label
       (cols - String.length xlo_label)
       (Scale.tick_label xhi));
  if fig.xlabel <> "" then
    Buffer.add_string buf (Printf.sprintf "%*s\n" ((cols / 2) + 13 + (String.length fig.xlabel / 2)) fig.xlabel);
  Buffer.contents buf

(* mlint: allow printf — [print] exists precisely to write the figure to stdout *)
let print ?cols ?rows fig = print_string (to_string ?cols ?rows fig)
