(** Analysis drivers over the harmonic-balance engine: autonomous
    oscillator solve (oscprobe), injected-tone SHIL solve, and the
    HB lock-range search.

    Results are cached under kind ["hb"] version 1 when the caller
    supplies [?ident] — a canonical string identifying the circuit (the
    API layer derives it from the resolved oscillator spec and the
    nonlinearity cache key). Cached values are Marshal round-trips of
    plain-data records, honouring the store's bit-identity contract;
    without [ident] (e.g. closures with no cache key) the drivers
    compute directly. *)

type solution = {
  f0 : float;  (** base (fundamental) frequency, Hz *)
  k_max : int;
  samples : int;
  nodes : string array;
  spectra : Numerics.Cx.t array array;  (** per node, [X_0 .. X_kmax] *)
  osc_node : int;  (** index of the reported oscillation node *)
  x : float array;  (** raw unknown vector (warm starts) *)
  iters : int;  (** total inner Newton iterations *)
  residual : float;  (** converged scaled residual *)
}

val amplitude : solution -> float
(** Fundamental amplitude [2 |X_1|] at the oscillation node. *)

val phase : solution -> float
(** [arg X_1] at the oscillation node, radians. *)

val thd : solution -> float
(** Total harmonic distortion [sqrt (Σ_{k>=2} |X_k|²) / |X_1|]. *)

val oscprobe :
  ?ident:string ->
  ?k_max:int ->
  ?samples:int ->
  ?tol:float ->
  ?probe_node:string ->
  f_guess:float ->
  a_guess:float ->
  Spice.Circuit.t ->
  solution
(** Autonomous oscillator steady state via the oscprobe technique: an
    ideal fundamental-only AC probe pins the oscillation node's
    fundamental to [(A/2, 0)], and an outer 2-D Newton on [(A, ω)]
    drives the probe current to zero (zero probe admittance — the
    probe neither sources nor sinks power at the solution).
    [probe_node] defaults to the first nonlinear device's node;
    [f_guess]/[a_guess] seed the outer Newton (resonance frequency and
    a describing-function amplitude are good seeds). Raises typed
    errors: [Root_failure] when the outer Newton fails,
    [No_oscillation] when the circuit has no nonlinear device. *)

type verdict = {
  locked : bool;
  f_inj : float;
  n_sub : int;
  amp : float;  (** fundamental amplitude of the locked spectrum *)
  lock_phase : float;  (** [arg X_1] at the oscillation node, rad *)
  sol : solution;
}

val injected :
  ?ident:string ->
  ?tol:float ->
  free:solution ->
  n:int ->
  f_inj:float ->
  Spice.Circuit.t ->
  verdict
(** Injected-tone SHIL solve: the circuit (which must contain the
    injection source at [f_inj], landing on harmonic [n] of the base
    [f_inj / n]) is solved from the free-running spectrum [free] as
    warm start, with [free]'s [k_max]/[samples]. Locked iff Newton
    converges to a spectrum whose fundamental amplitude exceeds half
    the free-running amplitude; outside the lock range the oscillation
    collapses onto the injection-driven sub-space ([V_k = 0] off the
    harmonics of [n]). Raises [Solver_divergence] when every Newton
    rung fails. *)

type band = {
  n_band : int;
  f_center : float;  (** injection-referred band center, [n * f0] *)
  f_lo : float;  (** innermost-locked band edges, injection-referred *)
  f_hi : float;
  probes : int;
  holes : int;  (** probes that failed on every rung (typed holes) *)
}

val lock_range :
  ?ident:string ->
  ?tol:float ->
  free:solution ->
  n:int ->
  guess_width:float ->
  inject:(f_inj:float -> Spice.Circuit.t) ->
  unit ->
  band
(** HB lock range: march outward from the band center [n * free.f0]
    in 1.5x steps of [guess_width / 2] until unlocked, then bisect
    each edge. Probes are warm-started from the innermost locked
    spectrum; a probe whose warm solve fails is retried cold (the
    suppressed branch is a mild solve), and only a probe failing both
    becomes a typed hole — counted in [holes] and on the
    [resilience.hb.holes] counter, classified unlocked so the band
    only shrinks (degrade, don't abort). Raises [No_oscillation] if
    the center frequency itself does not lock. *)
